// Validates the cost model against the closed-form values the paper reports
// for its Table 3 configuration.
#include "model/cost_model.h"

#include <gtest/gtest.h>

#include "model/layout.h"

namespace tickpoint {
namespace {

TEST(HardwareParamsTest, PaperDefaults) {
  const HardwareParams hw = HardwareParams::Paper();
  EXPECT_DOUBLE_EQ(hw.tick_hz, 30.0);
  EXPECT_EQ(hw.object_size, 512u);
  EXPECT_DOUBLE_EQ(hw.mem_bandwidth, 2.2e9);
  EXPECT_DOUBLE_EQ(hw.mem_latency, 100e-9);
  EXPECT_DOUBLE_EQ(hw.lock_overhead, 145e-9);
  EXPECT_DOUBLE_EQ(hw.bit_overhead, 2e-9);
  EXPECT_DOUBLE_EQ(hw.disk_bandwidth, 60e6);
  EXPECT_NEAR(hw.TickSeconds(), 0.03333, 1e-4);
  EXPECT_NEAR(hw.LatencyLimitSeconds(), 0.01667, 1e-4);
}

TEST(LayoutTest, PaperGeometry) {
  const StateLayout layout = StateLayout::Paper();
  EXPECT_EQ(layout.num_cells(), 10000000u);
  EXPECT_EQ(layout.state_bytes(), 40000000u);
  EXPECT_EQ(layout.num_objects(), 78125u);
  EXPECT_EQ(layout.cells_per_object(), 128u);
}

TEST(LayoutTest, GameGeometry) {
  const StateLayout layout = StateLayout::Game();
  EXPECT_EQ(layout.rows, 400128u);
  EXPECT_EQ(layout.cols, 13u);
  EXPECT_EQ(layout.num_cells(), 5201664u);
  EXPECT_EQ(layout.state_bytes(), 20806656u);
  EXPECT_EQ(layout.num_objects(), 40638u);
}

TEST(LayoutTest, ObjectOfCellIsMonotoneAndDense) {
  const StateLayout layout = StateLayout::Small(64, 10);
  ObjectId prev = 0;
  for (CellId c = 0; c < layout.num_cells(); ++c) {
    const ObjectId o = layout.ObjectOfCell(c);
    EXPECT_GE(o, prev);
    EXPECT_LE(o - prev, 1u);
    EXPECT_LT(o, layout.num_objects());
    prev = o;
  }
  // 128 consecutive 4-byte cells share one 512-byte object.
  EXPECT_EQ(layout.ObjectOfCell(0), layout.ObjectOfCell(127));
  EXPECT_NE(layout.ObjectOfCell(0), layout.ObjectOfCell(128));
}

TEST(LayoutTest, ValidRejectsBadGeometry) {
  StateLayout layout = StateLayout::Paper();
  EXPECT_TRUE(layout.Valid());
  layout.object_size = 500;  // not a multiple of cell_size=4... (it is; 500/4=125)
  EXPECT_TRUE(layout.Valid());
  layout.cell_size = 3;  // 500 % 3 != 0
  EXPECT_FALSE(layout.Valid());
  layout = StateLayout::Paper();
  layout.rows = 0;
  EXPECT_FALSE(layout.Valid());
}

TEST(CostModelTest, FullStateCheckpointMatchesPaper) {
  // 40 MB at 60 MB/s ~= 0.667 s -- the constant "0.68 s" checkpoint time of
  // Figure 2(b).
  const CostModel cost{HardwareParams::Paper()};
  const StateLayout layout = StateLayout::Paper();
  EXPECT_NEAR(cost.LogWriteSeconds(layout.num_objects()), 0.6667, 0.02);
  EXPECT_NEAR(cost.DoubleBackupWriteSeconds(layout.num_objects()), 0.6667,
              0.02);
}

TEST(CostModelTest, NaiveSnapshotPauseMatchesPaper) {
  // Copying 40 MB at 2.2 GB/s ~= 18 ms: the ~17 ms pause of Figure 3.
  const CostModel cost{HardwareParams::Paper()};
  const StateLayout layout = StateLayout::Paper();
  const double pause = cost.SyncCopySeconds(layout.num_objects(), 1);
  EXPECT_NEAR(pause, 0.0182, 0.001);
  // The pause exceeds the half-tick latency limit, as the paper argues.
  EXPECT_GT(pause, HardwareParams::Paper().LatencyLimitSeconds());
}

TEST(CostModelTest, SyncCopyChargesPerRun) {
  const CostModel cost{HardwareParams::Paper()};
  const double one_run = cost.SyncCopySeconds(1000, 1);
  const double many_runs = cost.SyncCopySeconds(1000, 1000);
  EXPECT_NEAR(many_runs - one_run, 999 * 100e-9, 1e-12);
  EXPECT_EQ(cost.SyncCopySeconds(0, 0), 0.0);
}

TEST(CostModelTest, CopyOnUpdateTouchBreakdown) {
  // Obit + (Olock + Omem + Sobj/Bmem) = 2 + 145 + 100 + 232.7 ns ~= 480 ns.
  const CostModel cost{HardwareParams::Paper()};
  const double touch = cost.BitTestSeconds() + cost.CopyOnUpdateTouchSeconds();
  EXPECT_NEAR(touch, 479.7e-9, 2e-9);
}

TEST(CostModelTest, DoubleBackupDurationIndependentOfDirtyCount) {
  // "the amount of data written to the backup file is proportional to k, but
  // the elapsed time to write that data is independent of k".
  const CostModel cost{HardwareParams::Paper()};
  const uint64_t n = StateLayout::Paper().num_objects();
  EXPECT_DOUBLE_EQ(cost.DoubleBackupWriteSeconds(n),
                   cost.DoubleBackupWriteSeconds(n));
  // Log writes DO scale with k (n is odd, so allow the half-object slack).
  EXPECT_NEAR(cost.LogWriteSeconds(n / 2), cost.LogWriteSeconds(n) / 2, 1e-5);
}

TEST(CostModelTest, PartialRedoRestoreFormula) {
  const CostModel cost{HardwareParams::Paper()};
  const StateLayout layout = StateLayout::Paper();
  const uint64_t n = layout.num_objects();
  // k = 0: just the full flush -> same as a sequential full read.
  EXPECT_NEAR(cost.PartialRedoRestoreSeconds(0, 9, n),
              cost.SequentialReadSeconds(n), 1e-9);
  // The paper's headline: at k ~= n and C = 9, restore is ~10x a full read
  // (7.2 s total at 256K updates/tick, Figure 2(c)).
  const double restore = cost.PartialRedoRestoreSeconds(
      static_cast<double>(n) * 0.95, 9, n);
  EXPECT_NEAR(restore, 6.4, 0.4);
}

TEST(CostModelTest, UnsortedWritesFarSlowerThanSorted) {
  // The ablation premise: per-object random writes pay a seek each.
  const CostModel cost{HardwareParams::Paper()};
  const uint64_t n = StateLayout::Paper().num_objects();
  EXPECT_GT(cost.UnsortedWriteSeconds(n / 10),
            10 * cost.DoubleBackupWriteSeconds(n));
}

}  // namespace
}  // namespace tickpoint
