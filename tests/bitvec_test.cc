#include "util/bitvec.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace tickpoint {
namespace {

TEST(BitVectorTest, StartsClear) {
  BitVector bits(130);
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_EQ(bits.CountSet(), 0u);
  for (uint64_t i = 0; i < 130; ++i) EXPECT_FALSE(bits.Get(i));
}

TEST(BitVectorTest, SetClearAssign) {
  BitVector bits(100);
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(99);
  EXPECT_TRUE(bits.Get(0));
  EXPECT_TRUE(bits.Get(63));
  EXPECT_TRUE(bits.Get(64));
  EXPECT_TRUE(bits.Get(99));
  EXPECT_EQ(bits.CountSet(), 4u);
  bits.Clear(63);
  EXPECT_FALSE(bits.Get(63));
  bits.Assign(63, true);
  EXPECT_TRUE(bits.Get(63));
  bits.Assign(63, false);
  EXPECT_FALSE(bits.Get(63));
}

TEST(BitVectorTest, FillRespectsPadding) {
  BitVector bits(70);
  bits.Fill(true);
  EXPECT_EQ(bits.CountSet(), 70u);
  bits.Fill(false);
  EXPECT_EQ(bits.CountSet(), 0u);
}

TEST(BitVectorTest, ConstructedFullRespectsPadding) {
  BitVector bits(65, true);
  EXPECT_EQ(bits.CountSet(), 65u);
}

TEST(BitVectorTest, FindNextSet) {
  BitVector bits(256);
  bits.Set(3);
  bits.Set(64);
  bits.Set(255);
  EXPECT_EQ(bits.FindNextSet(0), 3u);
  EXPECT_EQ(bits.FindNextSet(3), 3u);
  EXPECT_EQ(bits.FindNextSet(4), 64u);
  EXPECT_EQ(bits.FindNextSet(65), 255u);
  EXPECT_EQ(bits.FindNextSet(256), 256u);
  BitVector empty(64);
  EXPECT_EQ(empty.FindNextSet(0), 64u);
}

TEST(BitVectorTest, RandomizedAgainstReference) {
  Rng rng(21);
  BitVector bits(513);
  std::vector<bool> reference(513, false);
  for (int step = 0; step < 5000; ++step) {
    const uint64_t i = rng.Uniform(513);
    const bool set = rng.Chance(0.5);
    bits.Assign(i, set);
    reference[i] = set;
  }
  uint64_t expected = 0;
  for (uint64_t i = 0; i < 513; ++i) {
    EXPECT_EQ(bits.Get(i), reference[i]) << i;
    expected += reference[i];
  }
  EXPECT_EQ(bits.CountSet(), expected);
}

TEST(InvertibleBitVectorTest, InvertIsConstantTimeClear) {
  InvertibleBitVector bits(50);
  for (uint64_t i = 0; i < 50; ++i) {
    EXPECT_FALSE(bits.Get(i));
    bits.Set(i);
    EXPECT_TRUE(bits.Get(i));
  }
  EXPECT_TRUE(bits.AllSet());
  bits.InvertInterpretation();
  for (uint64_t i = 0; i < 50; ++i) EXPECT_FALSE(bits.Get(i));
  // Second round works identically (the Pu trick across checkpoints).
  for (uint64_t i = 0; i < 50; ++i) bits.Set(i);
  EXPECT_TRUE(bits.AllSet());
  bits.InvertInterpretation();
  for (uint64_t i = 0; i < 50; ++i) EXPECT_FALSE(bits.Get(i));
}

TEST(InvertibleBitVectorTest, AllSetDetectsStragglers) {
  InvertibleBitVector bits(10);
  for (uint64_t i = 0; i < 9; ++i) bits.Set(i);
  EXPECT_FALSE(bits.AllSet());
  bits.Set(9);
  EXPECT_TRUE(bits.AllSet());
}

TEST(EpochVectorTest, ClearAllIsBulk) {
  EpochVector epochs(64);
  epochs.Set(1);
  epochs.Set(33);
  EXPECT_TRUE(epochs.Get(1));
  EXPECT_TRUE(epochs.Get(33));
  EXPECT_FALSE(epochs.Get(2));
  EXPECT_EQ(epochs.CountSet(), 2u);
  epochs.ClearAll();
  EXPECT_FALSE(epochs.Get(1));
  EXPECT_FALSE(epochs.Get(33));
  EXPECT_EQ(epochs.CountSet(), 0u);
}

TEST(EpochVectorTest, ManyEpochsStayIsolated) {
  EpochVector epochs(8);
  for (int round = 0; round < 1000; ++round) {
    const uint64_t idx = static_cast<uint64_t>(round) % 8;
    epochs.Set(idx);
    EXPECT_TRUE(epochs.Get(idx));
    EXPECT_EQ(epochs.CountSet(), 1u);
    epochs.ClearAll();
  }
}

}  // namespace
}  // namespace tickpoint
