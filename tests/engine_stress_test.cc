// Concurrency stress tests: hammer the copy-on-update protocol (mutator
// saving pre-images vs writer reading live objects under per-object locks)
// and verify that every produced checkpoint is a consistent tick-boundary
// image. These are the races the paper's Olock models.
#include <gtest/gtest.h>

#include <filesystem>

#include "engine/engine.h"
#include "engine/mutator.h"
#include "engine/recovery.h"
#include "trace/zipf_source.h"

namespace tickpoint {
namespace {

class EngineStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string name = ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name();
    for (auto& c : name) {
      if (c == '/') c = '_';
    }
    dir_ = (std::filesystem::temp_directory_path() / ("tp_stress_" + name))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

// A trace that rewrites the SAME few hot objects every tick -- maximal
// contention between the mutator's pre-image copies and the writer's live
// reads, sustained across many checkpoints.
class HotspotSource : public UpdateSource {
 public:
  HotspotSource(const StateLayout& layout, uint64_t ticks,
                uint64_t updates_per_tick, uint64_t hot_cells)
      : layout_(layout),
        ticks_(ticks),
        updates_per_tick_(updates_per_tick),
        hot_cells_(hot_cells) {}

  const StateLayout& layout() const override { return layout_; }
  uint64_t num_ticks() const override { return ticks_; }
  void Reset() override { tick_ = 0; }
  bool NextTick(std::vector<TraceCell>* cells) override {
    if (tick_ >= ticks_) return false;
    ++tick_;
    cells->clear();
    for (uint64_t i = 0; i < updates_per_tick_; ++i) {
      cells->push_back(static_cast<TraceCell>((tick_ * 31 + i) % hot_cells_));
    }
    return true;
  }

 private:
  StateLayout layout_;
  uint64_t ticks_;
  uint64_t updates_per_tick_;
  uint64_t hot_cells_;
  uint64_t tick_ = 0;
};

class HotspotStressTest
    : public EngineStressTest,
      public ::testing::WithParamInterface<AlgorithmKind> {};

TEST_P(HotspotStressTest, HotObjectContentionKeepsImagesConsistent) {
  const StateLayout layout = StateLayout::Small(2048, 10);
  EngineConfig config;
  config.layout = layout;
  config.algorithm = GetParam();
  config.dir = dir_;
  config.fsync = false;
  config.full_flush_period = 3;

  auto engine_or = Engine::Open(config);
  ASSERT_TRUE(engine_or.ok());
  Engine& engine = *engine_or.value();

  // 2,000 updates per tick into 512 cells (4 atomic objects): the writer
  // and the mutator collide on the same objects checkpoint after
  // checkpoint.
  HotspotSource source(layout, 120, 2000, 512);
  MutatorOptions options;
  options.crash_after_tick = 119;
  auto report = RunWorkload(&engine, &source, options);
  ASSERT_TRUE(report.ok());
  ASSERT_GE(engine.metrics().checkpoints.size(), 2u);

  StateTable reference(layout);
  ApplyWorkloadToTable(&source, 120, &reference);
  ASSERT_TRUE(engine.state().ContentEquals(reference));

  StateTable recovered(layout);
  auto result = Recover(config, &recovered);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(recovered.ContentEquals(reference))
      << AlgorithmName(GetParam())
      << ": hot-object contention corrupted a checkpoint image";
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, HotspotStressTest,
                         ::testing::ValuesIn(AllAlgorithms()),
                         [](const auto& info) {
                           std::string name =
                               GetTraits(info.param).short_name;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST_F(EngineStressTest, ManySmallCheckpointsUnderSustainedLoad) {
  // Long run with a tiny state: dozens of complete checkpoint cycles with
  // continuous updates; final state and a post-crash recovery must both
  // match the reference.
  const StateLayout layout = StateLayout::Small(512, 10);
  EngineConfig config;
  config.layout = layout;
  config.algorithm = AlgorithmKind::kCopyOnUpdate;
  config.dir = dir_;
  config.fsync = false;

  ZipfTraceConfig trace;
  trace.layout = layout;
  trace.num_ticks = 400;
  trace.updates_per_tick = 300;
  trace.theta = 0.9;
  trace.seed = 3;

  auto engine_or = Engine::Open(config);
  ASSERT_TRUE(engine_or.ok());
  ZipfUpdateSource source(trace);
  MutatorOptions options;
  options.crash_after_tick = 399;
  ASSERT_TRUE(RunWorkload(engine_or.value().get(), &source, options).ok());
  EXPECT_GE(engine_or.value()->metrics().checkpoints.size(), 10u);

  StateTable reference(layout);
  ApplyWorkloadToTable(&source, 400, &reference);
  StateTable recovered(layout);
  auto result = Recover(config, &recovered);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(recovered.ContentEquals(reference));
}

TEST_F(EngineStressTest, AlternatingBackupsConvergeOverManyCycles) {
  // After N checkpoints, both backup files must hold restorable images and
  // recovery must prefer the newer one.
  const StateLayout layout = StateLayout::Small(512, 10);
  EngineConfig config;
  config.layout = layout;
  config.algorithm = AlgorithmKind::kAtomicCopyDirty;
  config.dir = dir_;
  config.fsync = false;

  ZipfTraceConfig trace;
  trace.layout = layout;
  trace.num_ticks = 200;
  trace.updates_per_tick = 200;
  trace.theta = 0.7;

  auto engine_or = Engine::Open(config);
  ASSERT_TRUE(engine_or.ok());
  ZipfUpdateSource source(trace);
  ASSERT_TRUE(RunWorkload(engine_or.value().get(), &source, MutatorOptions{})
                  .ok());
  ASSERT_TRUE(engine_or.value()->Shutdown().ok());

  auto store_or = BackupStore::Open(dir_, layout, false);
  ASSERT_TRUE(store_or.ok());
  ImageInfo infos[2];
  for (int i = 0; i < 2; ++i) {
    auto info = store_or.value()->Inspect(i);
    ASSERT_TRUE(info.ok());
    infos[i] = *info;
    EXPECT_TRUE(infos[i].valid) << "backup " << i;
  }
  EXPECT_NE(infos[0].seq, infos[1].seq);

  StateTable recovered(layout);
  auto result = Recover(config, &recovered);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->image_seq, std::max(infos[0].seq, infos[1].seq));
  EXPECT_TRUE(recovered.ContentEquals(engine_or.value()->state()));
}

}  // namespace
}  // namespace tickpoint
