// Tests for the checkpoint-interval scheduling extension (simulator and
// real engine).
#include <gtest/gtest.h>

#include <filesystem>

#include "core/sim_executor.h"
#include "engine/mutator.h"
#include "engine/recovery.h"
#include "sim/simulator.h"
#include "trace/zipf_source.h"

namespace tickpoint {
namespace {

TEST(IntervalSimTest, ZeroIntervalIsBackToBack) {
  // Default behavior unchanged: checkpoints chain as soon as one drains.
  SimParams back_to_back;
  SimParams spaced;
  spaced.checkpoint_interval_ticks = 60;
  const StateLayout layout = StateLayout::Small(4096, 10);
  CheckpointSim fast(AlgorithmKind::kNaiveSnapshot, layout,
                     HardwareParams::Paper(), back_to_back);
  CheckpointSim slow(AlgorithmKind::kNaiveSnapshot, layout,
                     HardwareParams::Paper(), spaced);
  for (int t = 0; t < 120; ++t) {
    fast.BeginTick();
    fast.EndTick();
    slow.BeginTick();
    slow.EndTick();
  }
  // The small state checkpoints within a tick: back-to-back yields ~one
  // checkpoint per tick; the spaced one starts only every 60 ticks.
  EXPECT_GT(fast.metrics().checkpoints.size(), 100u);
  EXPECT_LE(slow.metrics().checkpoints.size(), 3u);
}

TEST(IntervalSimTest, StartsRespectMinimumSpacing) {
  SimParams params;
  params.checkpoint_interval_ticks = 25;
  CheckpointSim sim(AlgorithmKind::kCopyOnUpdate, StateLayout::Small(4096, 10),
                    HardwareParams::Paper(), params);
  for (int t = 0; t < 200; ++t) {
    sim.BeginTick();
    sim.OnObjectUpdate(static_cast<ObjectId>(t % 320));
    sim.EndTick();
  }
  const auto& checkpoints = sim.metrics().checkpoints;
  ASSERT_GE(checkpoints.size(), 3u);
  for (size_t i = 1; i < checkpoints.size(); ++i) {
    EXPECT_GE(checkpoints[i].start_tick,
              checkpoints[i - 1].start_tick + 25)
        << "checkpoints " << i - 1 << " and " << i;
  }
}

TEST(IntervalSimTest, IntervalLowersOverheadRaisesRecovery) {
  ZipfTraceConfig trace;
  trace.layout = StateLayout::Paper();
  trace.num_ticks = 150;
  trace.updates_per_tick = 16000;
  trace.theta = 0.8;

  SimulationOptions dense;
  SimulationOptions sparse;
  sparse.params.checkpoint_interval_ticks = 90;

  ZipfUpdateSource source_a(trace);
  auto dense_results =
      RunSimulation(dense, {AlgorithmKind::kCopyOnUpdate}, &source_a);
  ZipfUpdateSource source_b(trace);
  auto sparse_results =
      RunSimulation(sparse, {AlgorithmKind::kCopyOnUpdate}, &source_b);

  EXPECT_LT(sparse_results[0].avg_overhead_seconds,
            dense_results[0].avg_overhead_seconds);
  EXPECT_GT(sparse_results[0].recovery_seconds,
            dense_results[0].recovery_seconds);
}

TEST(IntervalEngineTest, EngineHonorsIntervalAndStillRecovers) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "tp_interval_engine")
          .string();
  std::filesystem::remove_all(dir);
  const StateLayout layout = StateLayout::Small(1024, 10);
  EngineConfig config;
  config.layout = layout;
  config.algorithm = AlgorithmKind::kCopyOnUpdate;
  config.dir = dir;
  config.fsync = false;
  config.checkpoint_interval_ticks = 10;

  ZipfTraceConfig trace;
  trace.layout = layout;
  trace.num_ticks = 40;
  trace.updates_per_tick = 100;
  trace.theta = 0.7;

  auto engine_or = Engine::Open(config);
  ASSERT_TRUE(engine_or.ok());
  ZipfUpdateSource source(trace);
  MutatorOptions options;
  options.crash_after_tick = 39;
  ASSERT_TRUE(RunWorkload(engine_or.value().get(), &source, options).ok());

  const auto& checkpoints = engine_or.value()->metrics().checkpoints;
  ASSERT_GE(checkpoints.size(), 2u);
  for (size_t i = 1; i < checkpoints.size(); ++i) {
    EXPECT_GE(checkpoints[i].start_tick, checkpoints[i - 1].start_tick + 10);
  }

  StateTable recovered(layout);
  auto result = Recover(config, &recovered);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(recovered.ContentEquals(engine_or.value()->state()));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tickpoint
