#include <gtest/gtest.h>

#include <vector>

#include "util/random.h"
#include "util/zipf.h"

namespace tickpoint {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng rng(99);
  std::vector<uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(rng.Next());
  rng.Reseed(99);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.Next(), first[i]);
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(5);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Uniform(kBuckets)];
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformRangeCoversBothEndpoints) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfGenerator zipf(100, 0.0);
  Rng rng(1);
  constexpr int kDraws = 200000;
  std::vector<int> counts(100, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Next(&rng)];
  for (int r = 0; r < 100; ++r) {
    EXPECT_NEAR(counts[r], kDraws / 100, kDraws / 100 * 0.15) << "rank " << r;
  }
}

TEST(ZipfTest, RanksAlwaysInRange) {
  ZipfGenerator zipf(50, 0.9);
  Rng rng(2);
  for (int i = 0; i < 50000; ++i) {
    EXPECT_LT(zipf.Next(&rng), 50u);
  }
}

TEST(ZipfTest, SkewConcentratesOnHotRanks) {
  Rng rng(3);
  ZipfGenerator mild(10000, 0.5);
  ZipfGenerator heavy(10000, 0.99);
  constexpr int kDraws = 100000;
  auto top100_share = [&](ZipfGenerator& zipf) {
    int hits = 0;
    for (int i = 0; i < kDraws; ++i) hits += (zipf.Next(&rng) < 100);
    return static_cast<double>(hits) / kDraws;
  };
  const double mild_share = top100_share(mild);
  const double heavy_share = top100_share(heavy);
  EXPECT_GT(heavy_share, mild_share * 2);
  EXPECT_GT(heavy_share, 0.4);
}

TEST(ZipfTest, EmpiricalFrequencyMatchesProbability) {
  ZipfGenerator zipf(1000, 0.8);
  Rng rng(17);
  constexpr int kDraws = 500000;
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Next(&rng)];
  // Check the head of the distribution where counts are statistically solid.
  for (int r : {0, 1, 2, 5, 10}) {
    const double expected = zipf.Probability(r) * kDraws;
    EXPECT_NEAR(counts[r], expected, expected * 0.2 + 30) << "rank " << r;
  }
}

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfGenerator zipf(500, 0.7);
  double sum = 0.0;
  for (uint64_t r = 0; r < 500; ++r) sum += zipf.Probability(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, SingleItemAlwaysRankZero) {
  ZipfGenerator zipf(1, 0.8);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Next(&rng), 0u);
}

TEST(ZipfTest, MonotoneDecreasingProbabilities) {
  ZipfGenerator zipf(100, 0.6);
  for (uint64_t r = 1; r < 100; ++r) {
    EXPECT_LE(zipf.Probability(r), zipf.Probability(r - 1));
  }
}

}  // namespace
}  // namespace tickpoint
