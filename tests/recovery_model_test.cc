// Focused tests of the recovery-time model (paper Section 4.2) and its
// interaction with measured checkpoint metrics.
#include "core/recovery_model.h"

#include <gtest/gtest.h>

namespace tickpoint {
namespace {

SimMetrics MetricsWithCheckpoints(
    std::initializer_list<std::tuple<uint64_t, bool, double, double>>
        checkpoints) {
  // tuple: (objects, full_flush, sync_seconds, async_seconds)
  SimMetrics metrics;
  uint64_t seq = 0;
  for (const auto& [objects, full, sync, async] : checkpoints) {
    CheckpointRecord record;
    record.seq = seq++;
    record.objects_written = objects;
    record.full_flush = full;
    record.sync_seconds = sync;
    record.async_seconds = async;
    metrics.checkpoints.push_back(record);
  }
  return metrics;
}

TEST(RecoveryModelTest, NonPartialRedoIsRestorePlusReplay) {
  const StateLayout layout = StateLayout::Paper();
  const CostModel cost{HardwareParams::Paper()};
  const SimMetrics metrics =
      MetricsWithCheckpoints({{78125, false, 0.018, 0.667},
                              {78125, false, 0.018, 0.667}});
  const RecoveryEstimate estimate =
      EstimateRecovery(GetTraits(AlgorithmKind::kNaiveSnapshot), metrics,
                       layout, cost, SimParams{});
  EXPECT_NEAR(estimate.restore_seconds, 0.667, 0.01);
  EXPECT_NEAR(estimate.replay_seconds, 0.685, 0.001);
  EXPECT_NEAR(estimate.total_seconds(),
              estimate.restore_seconds + estimate.replay_seconds, 1e-12);
}

TEST(RecoveryModelTest, PartialRedoExcludesFullFlushesFromK) {
  const StateLayout layout = StateLayout::Paper();
  const CostModel cost{HardwareParams::Paper()};
  // Two incremental checkpoints of 1000 objects and one full flush: k must
  // be 1000, not the average over all three.
  const SimMetrics metrics = MetricsWithCheckpoints(
      {{78125, true, 0.0, 0.667}, {1000, false, 0.0, 0.009},
       {1000, false, 0.0, 0.009}});
  SimParams params;
  params.full_flush_period = 9;
  const RecoveryEstimate estimate = EstimateRecovery(
      GetTraits(AlgorithmKind::kPartialRedo), metrics, layout, cost, params);
  EXPECT_DOUBLE_EQ(
      estimate.restore_seconds,
      cost.PartialRedoRestoreSeconds(1000.0, 9, layout.num_objects()));
  EXPECT_EQ(metrics.AvgObjectsPerCheckpoint(true), 1000.0);
  EXPECT_NE(metrics.AvgObjectsPerCheckpoint(false), 1000.0);
}

TEST(RecoveryModelTest, RecoveryGrowsWithFullFlushPeriod) {
  const StateLayout layout = StateLayout::Paper();
  const CostModel cost{HardwareParams::Paper()};
  const SimMetrics metrics =
      MetricsWithCheckpoints({{20000, false, 0.0, 0.17}});
  double previous = 0.0;
  for (uint64_t period : {2u, 4u, 8u, 16u}) {
    SimParams params;
    params.full_flush_period = period;
    const RecoveryEstimate estimate =
        EstimateRecovery(GetTraits(AlgorithmKind::kCopyOnUpdatePartialRedo),
                         metrics, layout, cost, params);
    EXPECT_GT(estimate.restore_seconds, previous);
    previous = estimate.restore_seconds;
  }
}

TEST(RecoveryModelTest, NoCheckpointsMeansZeroReplay) {
  const StateLayout layout = StateLayout::Paper();
  const CostModel cost{HardwareParams::Paper()};
  const SimMetrics metrics;
  const RecoveryEstimate estimate =
      EstimateRecovery(GetTraits(AlgorithmKind::kCopyOnUpdate), metrics,
                       layout, cost, SimParams{});
  EXPECT_DOUBLE_EQ(estimate.replay_seconds, 0.0);
  EXPECT_GT(estimate.restore_seconds, 0.0);
}

TEST(SimMetricsTest, CheckpointAverages) {
  const SimMetrics metrics = MetricsWithCheckpoints(
      {{100, false, 0.01, 0.10}, {200, false, 0.02, 0.20}});
  EXPECT_DOUBLE_EQ(metrics.AvgCheckpointSeconds(), (0.11 + 0.22) / 2);
  EXPECT_DOUBLE_EQ(metrics.AvgObjectsPerCheckpoint(false), 150.0);
  EXPECT_DOUBLE_EQ(metrics.checkpoints[0].TotalSeconds(), 0.11);
  EXPECT_DOUBLE_EQ(metrics.checkpoints[0].EndTime(),
                   metrics.checkpoints[0].start_time + 0.10);
}

TEST(SimMetricsTest, EmptyMetricsAreZero) {
  const SimMetrics metrics;
  EXPECT_DOUBLE_EQ(metrics.AvgCheckpointSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.AvgObjectsPerCheckpoint(true), 0.0);
  EXPECT_DOUBLE_EQ(metrics.AvgOverheadSeconds(), 0.0);
}

// Property sweep: the closed-form restore formula is monotone in all its
// arguments, for every algorithm that uses it.
class RestoreFormulaTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RestoreFormulaTest, MonotoneInDirtyCount) {
  const uint64_t period = GetParam();
  const CostModel cost{HardwareParams::Paper()};
  const uint64_t n = StateLayout::Paper().num_objects();
  double previous = 0.0;
  for (double k : {0.0, 100.0, 10000.0, 50000.0, static_cast<double>(n)}) {
    const double restore = cost.PartialRedoRestoreSeconds(k, period, n);
    EXPECT_GE(restore, previous);
    EXPECT_GE(restore, cost.SequentialReadSeconds(n) - 1e-12);
    previous = restore;
  }
}

INSTANTIATE_TEST_SUITE_P(Periods, RestoreFormulaTest,
                         ::testing::Values(1, 2, 9, 50));

}  // namespace
}  // namespace tickpoint
