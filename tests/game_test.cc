// Tests for the Knights-and-Archers prototype game server.
#include "game/world.h"

#include <gtest/gtest.h>

#include <set>

#include "trace/stats.h"

namespace tickpoint {
namespace game {
namespace {

WorldConfig SmallWorld() {
  WorldConfig config;
  config.num_units = 6000;
  config.map_size = 1024;
  config.spawn_radius = 420;
  config.seed = 12345;
  return config;
}

TEST(WorldTest, ActiveSetSizeIsTenPercentAndConstant) {
  World world(SmallWorld());
  const size_t expected =
      static_cast<size_t>(SmallWorld().num_units * 0.10);
  EXPECT_EQ(world.active_units().size(), expected);
  for (int t = 0; t < 50; ++t) {
    world.Tick();
    EXPECT_EQ(world.active_units().size(), expected);
  }
}

TEST(WorldTest, ActiveSetHasNoDuplicates) {
  World world(SmallWorld());
  for (int t = 0; t < 20; ++t) {
    world.Tick();
    std::set<UnitId> seen(world.active_units().begin(),
                          world.active_units().end());
    EXPECT_EQ(seen.size(), world.active_units().size());
  }
}

TEST(WorldTest, ActiveSetRenewsOverTime) {
  // Paper: "completely renewed every 100 ticks with high probability".
  // "Renewed" means no unit stays continuously active for 100 ticks; a unit
  // may leave and randomly rejoin later (at the ~10% background rate).
  World world(SmallWorld());
  std::set<UnitId> continuously_active(world.active_units().begin(),
                                       world.active_units().end());
  const size_t initial_size = continuously_active.size();
  for (int t = 0; t < 100; ++t) {
    world.Tick();
    std::set<UnitId> now(world.active_units().begin(),
                         world.active_units().end());
    std::set<UnitId> still;
    for (UnitId u : continuously_active) {
      if (now.count(u)) still.insert(u);
    }
    continuously_active.swap(still);
  }
  // Expectation: 600 * 0.95^100 ~= 3.5 continuous survivors.
  EXPECT_LT(continuously_active.size(), initial_size / 20);
  // And the set as a whole is mostly fresh (overlap ~10% by chance).
  std::set<UnitId> initial_again;  // recompute deterministic initial set
  World fresh(SmallWorld());
  initial_again.insert(fresh.active_units().begin(),
                       fresh.active_units().end());
  size_t overlap = 0;
  for (UnitId u : world.active_units()) overlap += initial_again.count(u);
  EXPECT_LT(overlap, initial_size / 4);
}

TEST(WorldTest, UnitsStayOnTheMap) {
  World world(SmallWorld());
  for (int t = 0; t < 60; ++t) world.Tick();
  const UnitTable& units = world.units();
  for (UnitId u = 0; u < world.num_units(); ++u) {
    EXPECT_GE(units.x(u), 0);
    EXPECT_LT(units.x(u), SmallWorld().map_size);
    EXPECT_GE(units.y(u), 0);
    EXPECT_LT(units.y(u), SmallWorld().map_size);
  }
}

TEST(WorldTest, HealthStaysInRange) {
  World world(SmallWorld());
  for (int t = 0; t < 120; ++t) {
    world.Tick();
    for (UnitId u : world.active_units()) {
      EXPECT_GE(world.units().health(u), 0);
      EXPECT_LE(world.units().health(u), kMaxHealth);
    }
  }
}

TEST(WorldTest, CombatActuallyHappens) {
  World world(SmallWorld());
  for (int t = 0; t < 200; ++t) world.Tick();
  int64_t total_kills = 0;
  int damaged = 0;
  for (UnitId u = 0; u < world.num_units(); ++u) {
    total_kills += world.units().Get(u, kAttrKills);
    damaged += (world.units().health(u) < kMaxHealth);
  }
  EXPECT_GT(damaged, 0) << "no unit ever took damage";
  EXPECT_GT(total_kills, 0) << "no unit was ever defeated";
}

TEST(WorldTest, AllThreeTypesSpawn) {
  World world(SmallWorld());
  int counts[3] = {0, 0, 0};
  for (UnitId u = 0; u < world.num_units(); ++u) {
    ++counts[static_cast<int>(world.units().type(u))];
  }
  EXPECT_GT(counts[0], 0);  // knights
  EXPECT_GT(counts[1], 0);  // archers
  EXPECT_GT(counts[2], 0);  // healers
  // Roughly half the units are knights.
  EXPECT_NEAR(counts[0], world.num_units() / 2.0, world.num_units() * 0.05);
}

TEST(WorldTest, TeamsAreBalanced) {
  World world(SmallWorld());
  int team0 = 0;
  for (UnitId u = 0; u < world.num_units(); ++u) {
    team0 += (world.units().team(u) == 0);
  }
  EXPECT_EQ(team0, static_cast<int>(world.num_units()) / 2);
}

TEST(WorldTest, DeterministicAcrossRuns) {
  World a(SmallWorld());
  World b(SmallWorld());
  for (int t = 0; t < 50; ++t) {
    a.Tick();
    b.Tick();
  }
  for (UnitId u = 0; u < a.num_units(); ++u) {
    for (uint32_t attr = 0; attr < kNumAttributes; ++attr) {
      ASSERT_EQ(a.units().Get(u, attr), b.units().Get(u, attr))
          << "unit " << u << " attr " << attr;
    }
  }
}

TEST(GameTraceTest, TraceIsDeterministic) {
  MaterializedTrace a = RecordGameTrace(SmallWorld(), 30);
  MaterializedTrace b = RecordGameTrace(SmallWorld(), 30);
  EXPECT_TRUE(a == b);
}

TEST(GameTraceTest, TraceLayoutMatchesWorld) {
  MaterializedTrace trace = RecordGameTrace(SmallWorld(), 10);
  EXPECT_EQ(trace.layout().rows, SmallWorld().num_units);
  EXPECT_EQ(trace.layout().cols, kNumAttributes);
  EXPECT_EQ(trace.num_ticks(), 10u);
}

TEST(GameTraceTest, UpdatesComeFromActiveUnitsAtPlausibleRate) {
  const WorldConfig config = SmallWorld();
  MaterializedTrace trace = RecordGameTrace(config, 60);
  const TraceStats stats = ComputeTraceStats(&trace);
  const double active = config.num_units * config.active_fraction;
  // Paper Table 5: ~0.9 attribute updates per active unit per tick.
  // Accept a generous band; the shape (order of magnitude) is what matters.
  EXPECT_GT(stats.avg_updates_per_tick, active * 0.2);
  EXPECT_LT(stats.avg_updates_per_tick, active * 4.0);
  // Updates must reference valid cells.
  trace.Reset();
  std::vector<TraceCell> cells;
  while (trace.NextTick(&cells)) {
    for (TraceCell cell : cells) {
      ASSERT_LT(cell, trace.layout().num_cells());
    }
  }
}

TEST(GameTraceTest, PositionUpdatesDominate) {
  // Paper Section 5.4: "many characters update their position during each
  // tick ... other attributes such as health remain relatively stable".
  MaterializedTrace trace = RecordGameTrace(SmallWorld(), 60);
  trace.Reset();
  std::vector<TraceCell> cells;
  uint64_t position_updates = 0, health_updates = 0, total = 0;
  while (trace.NextTick(&cells)) {
    for (TraceCell cell : cells) {
      const uint32_t attr = cell % kNumAttributes;
      position_updates += (attr == kAttrX || attr == kAttrY);
      health_updates += (attr == kAttrHealth);
      ++total;
    }
  }
  EXPECT_GT(position_updates, total / 4);
  EXPECT_LT(health_updates, position_updates);
}

TEST(GameTraceTest, SinkSuppressesNoOpWrites) {
  UnitTable table(4);
  class CountingSink : public UpdateSink {
   public:
    void OnUpdate(UnitId, uint32_t, int32_t) override { ++count; }
    int count = 0;
  } sink;
  table.set_sink(&sink);
  table.Set(0, kAttrHealth, 50);
  EXPECT_EQ(sink.count, 1);
  table.Set(0, kAttrHealth, 50);  // unchanged: suppressed
  EXPECT_EQ(sink.count, 1);
  table.Set(0, kAttrHealth, 51);
  EXPECT_EQ(sink.count, 2);
}

TEST(GridTest, FindsNearestEnemyOnly) {
  UnitTable units(4);
  auto place = [&](UnitId u, int32_t team, int32_t x, int32_t y) {
    units.SetRaw(u, kAttrTeam, team);
    units.SetRaw(u, kAttrX, x);
    units.SetRaw(u, kAttrY, y);
    units.SetRaw(u, kAttrHealth, kMaxHealth);
  };
  place(0, 0, 100, 100);
  place(1, 0, 110, 100);  // ally
  place(2, 1, 130, 100);  // enemy, near
  place(3, 1, 300, 100);  // enemy, far
  SpatialGrid grid(1024, 6);
  grid.Rebuild(units, {0, 1, 2, 3});
  EXPECT_EQ(grid.NearestEnemy(units, 0, 64), 2u);
  EXPECT_EQ(grid.NearestAlly(units, 0, 64), 1u);
  // Radius excludes the near enemy -> none found.
  EXPECT_EQ(grid.NearestEnemy(units, 0, 16), kNoUnit);
}

TEST(GridTest, WeakestAllyPrefersLowestHealth) {
  UnitTable units(4);
  auto place = [&](UnitId u, int32_t health, int32_t x) {
    units.SetRaw(u, kAttrTeam, 0);
    units.SetRaw(u, kAttrX, x);
    units.SetRaw(u, kAttrY, 100);
    units.SetRaw(u, kAttrHealth, health);
  };
  place(0, kMaxHealth, 100);
  place(1, 70, 110);
  place(2, 30, 120);
  place(3, kMaxHealth, 130);  // full health: not a patient
  SpatialGrid grid(1024, 6);
  grid.Rebuild(units, {0, 1, 2, 3});
  EXPECT_EQ(grid.WeakestAlly(units, 0, 100), 2u);
  // Dead allies are not patients.
  units.SetRaw(2, kAttrHealth, 0);
  grid.Rebuild(units, {0, 1, 2, 3});
  EXPECT_EQ(grid.WeakestAlly(units, 0, 100), 1u);
}

}  // namespace
}  // namespace game
}  // namespace tickpoint
