#include "model/baselines.h"

#include <gtest/gtest.h>

#include "model/cost_model.h"
#include "model/layout.h"

namespace tickpoint {
namespace {

TEST(PhysicalLoggingTest, BandwidthScalesLinearly) {
  PhysicalLoggingModel aries;
  EXPECT_DOUBLE_EQ(aries.RequiredBandwidth(1e6), 40e6);
  EXPECT_DOUBLE_EQ(aries.RequiredBandwidth(2e6),
                   2 * aries.RequiredBandwidth(1e6));
}

TEST(PhysicalLoggingTest, PaperDiskCapsUpdateRate) {
  // The paper's motivation: 256K updates/tick at 30 Hz (7.7M/s) cannot be
  // physically logged on a 60 MB/s disk.
  const HardwareParams hw = HardwareParams::Paper();
  PhysicalLoggingModel aries;
  const double mmo_rate = 256000.0 * hw.tick_hz;
  EXPECT_GT(aries.RequiredBandwidth(mmo_rate), hw.disk_bandwidth);
  // And the cap is far below that rate.
  EXPECT_LT(aries.MaxUpdatesPerTick(hw), 256000.0);
  EXPECT_GT(aries.MaxUpdatesPerTick(hw), 0.0);
}

TEST(PhysicalLoggingTest, FractionLeavesRoomForCheckpoints) {
  const HardwareParams hw = HardwareParams::Paper();
  PhysicalLoggingModel aries;
  EXPECT_DOUBLE_EQ(aries.MaxUpdatesPerSecond(hw, 0.5),
                   aries.MaxUpdatesPerSecond(hw) / 2);
}

TEST(LogicalLoggingTest, ActionCompressionHelps) {
  const HardwareParams hw = HardwareParams::Paper();
  PhysicalLoggingModel aries;
  LogicalLoggingModel logical;
  // Logical logging sustains a much higher cell-update rate than physical
  // logging on the same disk (the reason the paper pairs checkpoints with
  // logical logs).
  EXPECT_GT(logical.MaxUpdatesPerSecond(hw),
            5 * aries.MaxUpdatesPerSecond(hw));
}

TEST(KSafetyTest, UtilizationIsOneOverK) {
  EXPECT_DOUBLE_EQ(KSafetyModel{1}.Utilization(), 1.0);
  EXPECT_DOUBLE_EQ(KSafetyModel{2}.Utilization(), 0.5);
  EXPECT_DOUBLE_EQ(KSafetyModel{4}.Utilization(), 0.25);
  EXPECT_EQ(KSafetyModel{3}.ServersRequired(100), 300u);
}

TEST(BaselineComparisonTest, CheckpointRecoveryBeatsKSafetyOnUtilization) {
  // The trade the paper describes: checkpointing's downtime (seconds) buys
  // back the (K-1)/K of hardware that active replication burns.
  const HardwareParams hw = HardwareParams::Paper();
  const CostModel cost(hw);
  const StateLayout layout = StateLayout::Paper();
  const double checkpoint_recovery_downtime =
      2 * cost.SequentialReadSeconds(layout.num_objects());
  KSafetyModel ksafety{2};
  EXPECT_LT(checkpoint_recovery_downtime, 60.0);  // "several minutes" budget
  EXPECT_GT(checkpoint_recovery_downtime, ksafety.RecoverySeconds());
  EXPECT_LT(ksafety.Utilization(), 1.0);
}

}  // namespace
}  // namespace tickpoint
