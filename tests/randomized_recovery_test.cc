// Randomized (seeded, reproducible) sweeps of the end-to-end recovery
// property: for arbitrary workload shapes, algorithms, and crash points,
// recovery rebuilds exactly the crash-time state. Each seed derives a
// different combination deterministically, widening coverage beyond the
// hand-picked cases in engine_test.cc.
#include <gtest/gtest.h>

#include <filesystem>

#include "engine/engine.h"
#include "engine/mutator.h"
#include "engine/recovery.h"
#include "trace/zipf_source.h"
#include "util/random.h"

namespace tickpoint {
namespace {

class RandomizedRecoveryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomizedRecoveryTest, RecoveryIsExactForDerivedScenario) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);

  // Derive the scenario from the seed.
  const StateLayout layout = StateLayout::Small(
      1024 + rng.Uniform(4096), 4 + rng.Uniform(16));
  const AlgorithmKind kind = AllAlgorithms()[rng.Uniform(6)];
  const uint64_t ticks = 10 + rng.Uniform(40);
  const uint64_t crash_tick = rng.Uniform(ticks);
  const uint64_t updates_per_tick = 1 + rng.Uniform(600);
  const double theta = rng.NextDouble() * 0.99;
  const uint64_t full_flush_period = 1 + rng.Uniform(6);
  const uint64_t interval = rng.Uniform(8);
  const uint64_t sync_every = 1 + rng.Uniform(3);

  SCOPED_TRACE(testing::Message()
               << "seed=" << seed << " algo=" << AlgorithmName(kind)
               << " rows=" << layout.rows << " cols=" << layout.cols
               << " ticks=" << ticks << " crash@" << crash_tick
               << " rate=" << updates_per_tick << " theta=" << theta
               << " C=" << full_flush_period << " interval=" << interval);

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("tp_rand_" + std::to_string(seed)))
          .string();
  std::filesystem::remove_all(dir);

  EngineConfig config;
  config.layout = layout;
  config.algorithm = kind;
  config.dir = dir;
  config.fsync = false;
  config.full_flush_period = full_flush_period;
  config.checkpoint_interval_ticks = interval;
  config.logical_sync_every = sync_every;

  ZipfTraceConfig trace;
  trace.layout = layout;
  trace.num_ticks = ticks;
  trace.updates_per_tick = updates_per_tick;
  trace.theta = theta;
  trace.seed = seed;

  auto engine_or = Engine::Open(config);
  ASSERT_TRUE(engine_or.ok());
  ZipfUpdateSource source(trace);
  MutatorOptions options;
  options.crash_after_tick = crash_tick;
  auto report = RunWorkload(engine_or.value().get(), &source, options);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->crashed);

  StateTable reference(layout);
  ApplyWorkloadToTable(&source, crash_tick + 1, &reference);
  ASSERT_TRUE(engine_or.value()->state().ContentEquals(reference));

  StateTable recovered(layout);
  auto result = Recover(config, &recovered);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // SimulateCrash syncs the logical log, so recovery is exact regardless
  // of the group-commit window.
  EXPECT_EQ(result->recovered_ticks, crash_tick + 1);
  EXPECT_TRUE(recovered.ContentEquals(reference));

  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, RandomizedRecoveryTest,
                         ::testing::Range<uint64_t>(0, 24));

}  // namespace
}  // namespace tickpoint
