#include "engine/state_table.h"

#include <gtest/gtest.h>

#include "engine/dirty_map.h"

#include <thread>

namespace tickpoint {
namespace {

TEST(StateTableTest, StartsZeroed) {
  StateTable table(StateLayout::Small(64, 10));
  for (CellId c = 0; c < table.layout().num_cells(); c += 97) {
    EXPECT_EQ(table.ReadCell(c), 0);
  }
  EXPECT_EQ(table.buffer_bytes(),
            table.num_objects() * table.layout().object_size);
}

TEST(StateTableTest, CellRoundTrip) {
  StateTable table(StateLayout::Small(64, 10));
  table.WriteCell(0, 42);
  table.WriteCell(639, -7);
  EXPECT_EQ(table.ReadCell(0), 42);
  EXPECT_EQ(table.ReadCell(639), -7);
  EXPECT_EQ(table.ReadCell(1), 0);
}

TEST(StateTableTest, CellsLandInTheirObject) {
  StateTable table(StateLayout::Small(64, 10));
  // Cell 130 lives in object 1 (128 cells of 4 bytes per 512-byte object).
  table.WriteCell(130, 0x11223344);
  const ObjectId object = table.layout().ObjectOfCell(130);
  EXPECT_EQ(object, 1u);
  int32_t stored;
  std::memcpy(&stored, table.ObjectData(object) + (130 - 128) * 4, 4);
  EXPECT_EQ(stored, 0x11223344);
}

TEST(StateTableTest, ObjectCopyAndLoad) {
  StateTable table(StateLayout::Small(64, 10));
  for (CellId c = 128; c < 256; ++c) {
    table.WriteCell(c, static_cast<int32_t>(c));
  }
  std::vector<uint8_t> buffer(table.layout().object_size);
  table.CopyObjectTo(1, buffer.data());

  StateTable other(StateLayout::Small(64, 10));
  other.LoadObject(1, buffer.data());
  for (CellId c = 128; c < 256; ++c) {
    EXPECT_EQ(other.ReadCell(c), static_cast<int32_t>(c));
  }
}

TEST(StateTableTest, DigestTracksContent) {
  StateTable a(StateLayout::Small(64, 10));
  StateTable b(StateLayout::Small(64, 10));
  EXPECT_EQ(a.Digest(), b.Digest());
  EXPECT_TRUE(a.ContentEquals(b));
  a.WriteCell(5, 1);
  EXPECT_NE(a.Digest(), b.Digest());
  EXPECT_FALSE(a.ContentEquals(b));
  b.WriteCell(5, 1);
  EXPECT_EQ(a.Digest(), b.Digest());
  a.Clear();
  b.Clear();
  EXPECT_TRUE(a.ContentEquals(b));
}

TEST(AtomicBitMapTest, BasicOps) {
  AtomicBitMap bits(130);
  EXPECT_FALSE(bits.Test(0));
  bits.Set(0);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_EQ(bits.CountSet(), 3u);
  EXPECT_TRUE(bits.TestAndSet(0));    // already set
  EXPECT_FALSE(bits.TestAndSet(1));   // newly set
  EXPECT_EQ(bits.CountSet(), 4u);
  bits.Clear(0);
  EXPECT_FALSE(bits.Test(0));
  bits.ClearAll();
  EXPECT_EQ(bits.CountSet(), 0u);
}

TEST(AtomicBitMapTest, ExchangeIntoMovesAndClears) {
  AtomicBitMap source(256);
  AtomicBitMap snapshot(256);
  source.Set(3);
  source.Set(200);
  snapshot.Set(77);  // stale content must be overwritten
  source.ExchangeInto(&snapshot);
  EXPECT_EQ(source.CountSet(), 0u);
  EXPECT_TRUE(snapshot.Test(3));
  EXPECT_TRUE(snapshot.Test(200));
  EXPECT_FALSE(snapshot.Test(77));
  EXPECT_EQ(snapshot.CountSet(), 2u);
}

TEST(AtomicBitMapTest, ConcurrentSettersDoNotLoseBits) {
  AtomicBitMap bits(4096);
  auto setter = [&](uint64_t start) {
    for (uint64_t i = start; i < 4096; i += 2) bits.Set(i);
  };
  std::thread a(setter, 0), b(setter, 1);
  a.join();
  b.join();
  EXPECT_EQ(bits.CountSet(), 4096u);
}

TEST(ObjectLockTableTest, MutualExclusion) {
  ObjectLockTable locks(8);
  int64_t counter = 0;
  auto worker = [&] {
    for (int i = 0; i < 50000; ++i) {
      ObjectLockGuard guard(&locks, 3);
      ++counter;  // data race unless the lock works
    }
  };
  std::thread a(worker), b(worker);
  a.join();
  b.join();
  EXPECT_EQ(counter, 100000);
}

}  // namespace
}  // namespace tickpoint
