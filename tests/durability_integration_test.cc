// Integration tests spanning game -> engine -> crash -> recovery -> resume:
// the full lifecycle of a durable MMO shard.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "engine/engine.h"
#include "engine/mutator.h"
#include "engine/recovery.h"
#include "game/world.h"
#include "trace/zipf_source.h"

namespace tickpoint {
namespace {

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string name = ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name();
    for (auto& c : name) {
      if (c == '/') c = '_';
    }
    dir_ = (std::filesystem::temp_directory_path() / ("tp_dur_" + name))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

// Mirrors game writes into the engine (the durable_game_server wiring).
class EngineSink : public game::UpdateSink {
 public:
  explicit EngineSink(Engine* engine) : engine_(engine) {}
  void OnUpdate(game::UnitId unit, uint32_t attr, int32_t value) override {
    engine_->ApplyUpdate(unit * game::kNumAttributes + attr, value);
  }

 private:
  Engine* engine_;
};

game::WorldConfig SmallWorld() {
  game::WorldConfig config;
  config.num_units = 4000;
  config.map_size = 1024;
  config.spawn_radius = 420;
  config.seed = 99;
  return config;
}

TEST_F(DurabilityTest, GameStateSurvivesCrash) {
  game::World world(SmallWorld());
  EngineConfig config;
  config.layout = world.TraceLayout();
  config.algorithm = AlgorithmKind::kCopyOnUpdate;
  config.dir = dir_;
  config.fsync = false;
  auto engine_or = Engine::Open(config);
  ASSERT_TRUE(engine_or.ok());
  Engine& engine = *engine_or.value();

  // Tick 0: bulk-load the spawned world.
  engine.BeginTick();
  for (game::UnitId u = 0; u < world.num_units(); ++u) {
    for (uint32_t attr = 0; attr < game::kNumAttributes; ++attr) {
      engine.ApplyUpdate(u * game::kNumAttributes + attr,
                         world.units().Get(u, attr));
    }
  }
  ASSERT_TRUE(engine.EndTick().ok());

  // Battle with every write mirrored.
  EngineSink sink(&engine);
  world.set_sink(&sink);
  for (int t = 0; t < 60; ++t) {
    engine.BeginTick();
    world.Tick();
    ASSERT_TRUE(engine.EndTick().ok());
  }
  world.set_sink(nullptr);
  ASSERT_GT(engine.metrics().updates, 0u);

  const uint32_t lost = engine.state().Digest();
  ASSERT_TRUE(engine.SimulateCrash().ok());

  StateTable recovered(config.layout);
  auto result = Recover(config, &recovered);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(recovered.Digest(), lost);
  // The recovered state must equal the game's own table, cell by cell.
  for (game::UnitId u = 0; u < world.num_units(); u += 37) {
    for (uint32_t attr = 0; attr < game::kNumAttributes; ++attr) {
      ASSERT_EQ(recovered.ReadCell(u * game::kNumAttributes + attr),
                world.units().Get(u, attr))
          << "unit " << u << " attr " << attr;
    }
  }
}

// The full lifecycle: run, crash, recover, RESUME on a new engine,
// continue the same trace, crash again, recover again. Final state must
// equal the uninterrupted reference execution.
class ResumeCycleTest : public DurabilityTest,
                        public ::testing::WithParamInterface<AlgorithmKind> {};

TEST_P(ResumeCycleTest, CrashRecoverResumeCrashRecover) {
  const AlgorithmKind kind = GetParam();
  const StateLayout layout = StateLayout::Small(2048, 10);
  ZipfTraceConfig trace;
  trace.layout = layout;
  trace.num_ticks = 60;
  trace.updates_per_tick = 250;
  trace.theta = 0.7;
  trace.seed = 5;

  EngineConfig config;
  config.layout = layout;
  config.algorithm = kind;
  config.dir = dir_;
  config.fsync = false;
  config.full_flush_period = 3;

  constexpr uint64_t kFirstCrash = 24;
  constexpr uint64_t kSecondCrash = 51;

  // Phase 1: run from scratch, crash at kFirstCrash.
  {
    auto engine_or = Engine::Open(config);
    ASSERT_TRUE(engine_or.ok());
    ZipfUpdateSource source(trace);
    MutatorOptions options;
    options.crash_after_tick = kFirstCrash;
    auto report = RunWorkload(engine_or.value().get(), &source, options);
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(report->crashed);
  }

  // Phase 2: recover and resume the SAME trace from the next tick.
  StateTable recovered(layout);
  {
    auto result = Recover(config, &recovered);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->recovered_ticks, kFirstCrash + 1);
  }
  {
    auto engine_or = Engine::OpenResumed(config, recovered, kFirstCrash + 1);
    ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
    EXPECT_EQ(engine_or.value()->current_tick(), kFirstCrash + 1);
    ZipfUpdateSource source(trace);
    MutatorOptions options;
    options.skip_ticks = kFirstCrash + 1;
    options.crash_after_tick = kSecondCrash;
    auto report = RunWorkload(engine_or.value().get(), &source, options);
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(report->crashed);
  }

  // Phase 3: recover again; compare against the uninterrupted reference.
  StateTable final_state(layout);
  auto result = Recover(config, &final_state);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->recovered_ticks, kSecondCrash + 1);

  StateTable reference(layout);
  ZipfUpdateSource source(trace);
  ApplyWorkloadToTable(&source, kSecondCrash + 1, &reference);
  EXPECT_TRUE(final_state.ContentEquals(reference))
      << AlgorithmName(kind) << ": resumed run diverged from reference";
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ResumeCycleTest,
                         ::testing::ValuesIn(AllAlgorithms()),
                         [](const auto& info) {
                           std::string name =
                               GetTraits(info.param).short_name;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST_F(DurabilityTest, GroupCommitWindowBoundsLoss) {
  // With sync_every = 8 the logical log may lose up to 7 ticks on a crash;
  // recovery must still produce a consistent prefix state.
  const StateLayout layout = StateLayout::Small(2048, 10);
  EngineConfig config;
  config.layout = layout;
  config.algorithm = AlgorithmKind::kCopyOnUpdate;
  config.dir = dir_;
  config.fsync = false;
  config.logical_sync_every = 8;

  ZipfTraceConfig trace;
  trace.layout = layout;
  trace.num_ticks = 40;
  trace.updates_per_tick = 200;
  trace.theta = 0.7;

  auto engine_or = Engine::Open(config);
  ASSERT_TRUE(engine_or.ok());
  ZipfUpdateSource source(trace);
  MutatorOptions options;
  options.crash_after_tick = 29;
  auto report = RunWorkload(engine_or.value().get(), &source, options);
  ASSERT_TRUE(report.ok());

  StateTable recovered(layout);
  auto result = Recover(config, &recovered);
  ASSERT_TRUE(result.ok());
  // SimulateCrash closes (and thereby syncs) the log, so in this harness
  // nothing is lost; the essential property is that the recovered tick
  // count never exceeds the crash point and the state matches the
  // reference at exactly that tick.
  ASSERT_LE(result->recovered_ticks, 30u);
  StateTable reference(layout);
  ZipfUpdateSource ref_source(trace);
  ApplyWorkloadToTable(&ref_source, result->recovered_ticks, &reference);
  EXPECT_TRUE(recovered.ContentEquals(reference));
}

TEST_F(DurabilityTest, HardCrashBetweenGroupCommitsRecoversLastSyncedTick) {
  // logical_sync_every = 8 and a hard crash after 30 ticks: ticks 24..29
  // never reached stable storage, and a torn fragment of tick 24's record
  // is left on disk. With no checkpoint image (manual mode, never
  // scheduled) the logical log is the only recovery source, so the
  // recovery window is exactly the group-commit window: Recover must land
  // on tick 24 -- the last synced group commit -- and must not apply the
  // torn tail.
  const StateLayout layout = StateLayout::Small(512, 10);
  EngineConfig config;
  config.layout = layout;
  config.algorithm = AlgorithmKind::kCopyOnUpdate;
  config.dir = dir_;
  config.fsync = false;
  config.logical_sync_every = 8;
  config.manual_checkpoints = true;  // no image: recovery is log-only

  constexpr uint64_t kTicks = 30;
  constexpr uint64_t kSyncedTicks = 24;  // last group commit before 30
  constexpr uint64_t kUpdates = 120;
  const uint64_t num_cells = layout.num_cells();

  auto engine_or = Engine::Open(config);
  ASSERT_TRUE(engine_or.ok());
  Engine& engine = *engine_or.value();
  StateTable reference(layout);  // state at the last synced tick
  for (uint64_t tick = 0; tick < kTicks; ++tick) {
    engine.BeginTick();
    for (uint64_t i = 0; i < kUpdates; ++i) {
      const uint32_t cell = WorkloadCell(0, tick, i, num_cells);
      const int32_t value = WorkloadValue(tick, cell, i);
      engine.ApplyUpdate(cell, value);
      if (tick < kSyncedTicks) reference.WriteCell(cell, value);
    }
    ASSERT_TRUE(engine.EndTick().ok());
  }
  ASSERT_TRUE(engine.SimulateCrashLosingUnsyncedLog().ok());

  // The on-disk log carries exactly the synced prefix...
  auto durable_or =
      LogicalLog::CountDurableTicks(Engine::LogicalLogPath(dir_));
  ASSERT_TRUE(durable_or.ok());
  EXPECT_EQ(durable_or.value(), kSyncedTicks);

  // ...and recovery lands exactly on the last group commit.
  StateTable recovered(layout);
  auto result = Recover(config, &recovered);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->restored_from_checkpoint);
  EXPECT_EQ(result->recovered_ticks, kSyncedTicks);
  EXPECT_TRUE(recovered.ContentEquals(reference));
}

TEST_F(DurabilityTest, HardCrashWithCheckpointsStaysWithinDurableSources) {
  // Same hard crash, now with back-to-back checkpoints running: the newest
  // complete image may cover ticks past the synced log (the image is its
  // own durable source), so recovery returns max(image, synced log) -- and
  // never a tick that reached neither.
  const StateLayout layout = StateLayout::Small(512, 10);
  EngineConfig config;
  config.layout = layout;
  config.algorithm = AlgorithmKind::kCopyOnUpdate;
  config.dir = dir_;
  config.fsync = false;
  config.logical_sync_every = 8;

  constexpr uint64_t kTicks = 30;
  constexpr uint64_t kSyncedTicks = 24;
  constexpr uint64_t kUpdates = 120;
  const uint64_t num_cells = layout.num_cells();

  auto engine_or = Engine::Open(config);
  ASSERT_TRUE(engine_or.ok());
  Engine& engine = *engine_or.value();
  for (uint64_t tick = 0; tick < kTicks; ++tick) {
    engine.BeginTick();
    for (uint64_t i = 0; i < kUpdates; ++i) {
      const uint32_t cell = WorkloadCell(0, tick, i, num_cells);
      engine.ApplyUpdate(cell, WorkloadValue(tick, cell, i));
    }
    ASSERT_TRUE(engine.EndTick().ok());
  }
  ASSERT_TRUE(engine.SimulateCrashLosingUnsyncedLog().ok());

  StateTable recovered(layout);
  auto result = Recover(config, &recovered);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->recovered_ticks, kSyncedTicks);
  EXPECT_LE(result->recovered_ticks, kTicks);

  // Whatever tick recovery landed on, the state is that tick's exact
  // prefix of the deterministic workload.
  StateTable reference(layout);
  for (uint64_t tick = 0; tick < result->recovered_ticks; ++tick) {
    for (uint64_t i = 0; i < kUpdates; ++i) {
      const uint32_t cell = WorkloadCell(0, tick, i, num_cells);
      reference.WriteCell(cell, WorkloadValue(tick, cell, i));
    }
  }
  EXPECT_TRUE(recovered.ContentEquals(reference));
}

TEST_F(DurabilityTest, FallsBackWhenNewestBackupCorrupted) {
  const StateLayout layout = StateLayout::Small(2048, 10);
  EngineConfig config;
  config.layout = layout;
  config.algorithm = AlgorithmKind::kNaiveSnapshot;
  config.dir = dir_;
  config.fsync = false;

  ZipfTraceConfig trace;
  trace.layout = layout;
  trace.num_ticks = 40;
  trace.updates_per_tick = 200;
  trace.theta = 0.7;

  uint32_t lost = 0;
  uint64_t newest_seq = 0;
  {
    auto engine_or = Engine::Open(config);
    ASSERT_TRUE(engine_or.ok());
    ZipfUpdateSource source(trace);
    ASSERT_TRUE(RunWorkload(engine_or.value().get(), &source,
                            MutatorOptions{})
                    .ok());
    ASSERT_TRUE(engine_or.value()->Shutdown().ok());
    lost = engine_or.value()->state().Digest();
    newest_seq = engine_or.value()->metrics().checkpoints.back().seq;
  }

  // Smash the header of whichever backup holds the newest image.
  {
    auto store_or = BackupStore::Open(dir_, layout, false);
    ASSERT_TRUE(store_or.ok());
    int newest = -1;
    for (int i = 0; i < 2; ++i) {
      auto info = store_or.value()->Inspect(i);
      ASSERT_TRUE(info.ok());
      if (info->valid && info->seq == newest_seq) newest = i;
    }
    ASSERT_GE(newest, 0);
    FileWriter vandal;
    ASSERT_TRUE(
        vandal.OpenForUpdate(store_or.value()->path(newest)).ok());
    const uint64_t garbage = 0xDEADBEEFDEADBEEFULL;
    ASSERT_TRUE(vandal.WriteAt(8, &garbage, sizeof(garbage)).ok());
    ASSERT_TRUE(vandal.Close().ok());
  }

  // Recovery falls back to the older image and replays further -- ending
  // at the same final state.
  StateTable recovered(layout);
  auto result = Recover(config, &recovered);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->image_seq, newest_seq);
  EXPECT_EQ(recovered.Digest(), lost);
}

// ---- The resume bootstrap handoff (the dribble resume-cycle flake) ----
//
// OpenResumed truncates the logical log BEFORE writing its bootstrap
// checkpoint, so from that moment every checkpoint of the previous
// incarnation is poison: restoring one would skip the ticks between its
// consistent tick and the resume tick. These tests pin the required
// handoff ordering -- bootstrap durable first, stale state demoted second,
// and the bootstrap numbered ABOVE everything stale -- by crashing
// immediately after the resume, when the bootstrap is the only correct
// recovery source. Pre-fix, dribble's bootstrap restarted generation
// numbering at 0 under the stale pre-crash generations, and recovery's
// newest-generation scan silently rewound the shard (the ~2/30
// ResumeCycleTest dribble divergence: whether the stale generation
// outnumbered the resumed run's depended on writer-thread timing).

namespace {

/// Drives `engine` with the deterministic workload until it has finalized
/// `target` checkpoints (manual mode: each checkpoint is scheduled here and
/// completes while later ticks run). Returns the tick reached.
uint64_t RunUntilCheckpoints(Engine* engine, uint64_t target,
                             uint64_t updates_per_tick) {
  const uint64_t num_cells = engine->config().layout.num_cells();
  uint64_t scheduled = 0;
  for (int guard = 0; guard < 4096; ++guard) {
    if (engine->metrics().checkpoints.size() >= target) break;
    if (scheduled == engine->metrics().checkpoints.size() &&
        !engine->checkpoint_in_flight()) {
      engine->ScheduleCheckpoint();
      ++scheduled;
    }
    const uint64_t tick = engine->current_tick();
    engine->BeginTick();
    for (uint64_t i = 0; i < updates_per_tick; ++i) {
      const uint32_t cell = WorkloadCell(0, tick, i, num_cells);
      engine->ApplyUpdate(cell, WorkloadValue(tick, cell, i));
    }
    EXPECT_TRUE(engine->EndTick().ok());
  }
  EXPECT_GE(engine->metrics().checkpoints.size(), target);
  return engine->current_tick();
}

}  // namespace

TEST_F(DurabilityTest, ResumeBootstrapOutranksStaleLogGenerations) {
  const StateLayout layout = StateLayout::Small(1024, 10);
  EngineConfig config;
  config.layout = layout;
  config.algorithm = AlgorithmKind::kDribble;  // every checkpoint = new gen
  config.dir = dir_;
  config.fsync = false;
  config.manual_checkpoints = true;  // pin the checkpoint count exactly

  uint64_t crash_tick = 0;
  {
    auto engine_or = Engine::Open(config);
    ASSERT_TRUE(engine_or.ok());
    // Exactly 3 completed checkpoints = dribble generations 0, 1, 2 on
    // disk: a bootstrap restarting at generation 0 is guaranteed to be
    // shadowed by a stale higher generation.
    crash_tick = RunUntilCheckpoints(engine_or.value().get(), 3, 150);
    ASSERT_TRUE(engine_or.value()->SimulateCrash().ok());
  }
  {
    auto store_or = LogStore::Open(dir_, layout, false);
    ASSERT_TRUE(store_or.ok());
    ASSERT_GE(store_or.value()->NextFreshGeneration(), 2u);
  }

  StateTable recovered(layout);
  {
    auto result = Recover(config, &recovered);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->recovered_ticks, crash_tick);
  }
  // Resume and crash before a single tick runs: the bootstrap image is now
  // the ONLY durable source that reaches the resume tick.
  {
    auto engine_or = Engine::OpenResumed(config, recovered, crash_tick);
    ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
    ASSERT_TRUE(engine_or.value()->SimulateCrash().ok());
  }
  StateTable after(layout);
  auto result = Recover(config, &after);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->recovered_ticks, crash_tick)
      << "recovery preferred a stale pre-resume generation";
  EXPECT_TRUE(after.ContentEquals(recovered));
}

TEST_F(DurabilityTest, ResumeBootstrapOutranksStaleBackupImages) {
  // The double-backup twin: the bootstrap must claim a seq above both
  // stale images and invalidate the sibling slot, or a crash in the window
  // before the first resumed checkpoint overwrites it would recover the
  // higher-seq pre-crash image instead of the bootstrap.
  const StateLayout layout = StateLayout::Small(1024, 10);
  EngineConfig config;
  config.layout = layout;
  config.algorithm = AlgorithmKind::kCopyOnUpdate;
  config.dir = dir_;
  config.fsync = false;
  config.manual_checkpoints = true;

  uint64_t crash_tick = 0;
  {
    auto engine_or = Engine::Open(config);
    ASSERT_TRUE(engine_or.ok());
    // Exactly 3 completed checkpoints: seqs 0, 2 in slot 0 and seq 1 in
    // slot 1, so the newest STALE image sits in the slot the bootstrap
    // overwrites and the surviving sibling (seq 1) outnumbers a bootstrap
    // that naively restarts at seq 0.
    crash_tick = RunUntilCheckpoints(engine_or.value().get(), 3, 150);
    ASSERT_TRUE(engine_or.value()->SimulateCrash().ok());
  }
  {
    auto store_or = BackupStore::Open(dir_, layout, false);
    ASSERT_TRUE(store_or.ok());
    uint64_t max_seq = 0;
    for (int index = 0; index < 2; ++index) {
      auto info = store_or.value()->Inspect(index);
      ASSERT_TRUE(info.ok());
      if (info->valid) max_seq = std::max(max_seq, info->seq);
    }
    ASSERT_GE(max_seq, 1u);
  }

  StateTable recovered(layout);
  {
    auto result = Recover(config, &recovered);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->recovered_ticks, crash_tick);
  }
  {
    auto engine_or = Engine::OpenResumed(config, recovered, crash_tick);
    ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
    ASSERT_TRUE(engine_or.value()->SimulateCrash().ok());
  }
  StateTable after(layout);
  auto result = Recover(config, &after);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->recovered_ticks, crash_tick)
      << "recovery preferred a stale pre-resume backup image";
  EXPECT_TRUE(after.ContentEquals(recovered));
}

TEST_F(DurabilityTest, DeathInsideOpenResumedAfterBootstrapStaysRecoverable) {
  // The crash window INSIDE OpenResumed: the bootstrap must be made
  // durable BEFORE the previous incarnation's logical log is truncated.
  // This test forges the state a death between those two steps leaves
  // behind -- bootstrap committed, OLD logical log still on disk -- by
  // restoring a pre-resume copy of logical.log over the truncated one, and
  // proves recovery still lands exactly on the resume tick (the bootstrap
  // outranks everything; the old log's ticks all precede it and replay to
  // nothing). Under the pre-fix ordering (log truncated first, bootstrap
  // second) this window instead recovered a stale pre-resume image with
  // the intervening ticks silently missing.
  const StateLayout layout = StateLayout::Small(1024, 10);
  EngineConfig config;
  config.layout = layout;
  config.algorithm = AlgorithmKind::kDribble;
  config.dir = dir_;
  config.fsync = false;
  config.manual_checkpoints = true;

  uint64_t crash_tick = 0;
  {
    auto engine_or = Engine::Open(config);
    ASSERT_TRUE(engine_or.ok());
    crash_tick = RunUntilCheckpoints(engine_or.value().get(), 3, 150);
    ASSERT_TRUE(engine_or.value()->SimulateCrash().ok());
  }
  const std::string log_path = Engine::LogicalLogPath(dir_);
  const std::string saved_log = dir_ + "/logical.log.pre-resume";
  std::error_code ec;
  std::filesystem::copy_file(log_path, saved_log, ec);
  ASSERT_FALSE(ec);

  StateTable recovered(layout);
  {
    auto result = Recover(config, &recovered);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->recovered_ticks, crash_tick);
  }
  {
    auto engine_or = Engine::OpenResumed(config, recovered, crash_tick);
    ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
    ASSERT_TRUE(engine_or.value()->SimulateCrash().ok());
  }
  // Forge the mid-OpenResumed state: bootstrap durable, old log present.
  std::filesystem::copy_file(saved_log, log_path,
                             std::filesystem::copy_options::overwrite_existing,
                             ec);
  ASSERT_FALSE(ec);

  StateTable after(layout);
  auto result = Recover(config, &after);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->restored_from_checkpoint);
  EXPECT_EQ(result->recovered_ticks, crash_tick);
  EXPECT_TRUE(after.ContentEquals(recovered));
}

TEST_P(ResumeCycleTest, FreshOpenOverDirtyDirDiscardsStaleCheckpoints) {
  // The fresh-open sibling of the resume handoff: Engine::Open over a
  // directory a previous incarnation crashed in truncates the logical log,
  // so the stale checkpoints must be wiped -- otherwise an early crash of
  // the NEW run recovers a pre-crash image whose ticks the new log no
  // longer covers.
  const AlgorithmKind kind = GetParam();
  const StateLayout layout = StateLayout::Small(1024, 10);
  EngineConfig config;
  config.layout = layout;
  config.algorithm = kind;
  config.dir = dir_;
  config.fsync = false;
  config.manual_checkpoints = true;

  {
    auto engine_or = Engine::Open(config);
    ASSERT_TRUE(engine_or.ok());
    RunUntilCheckpoints(engine_or.value().get(), 3, 150);
    ASSERT_TRUE(engine_or.value()->SimulateCrash().ok());
  }
  // New incarnation from tick 0 over the dirty directory: run ONE tick
  // with no checkpoint, crash. The only durable source reaching tick 1 is
  // the new logical log.
  StateTable reference(layout);
  {
    auto engine_or = Engine::Open(config);
    ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
    Engine& engine = *engine_or.value();
    const uint64_t num_cells = layout.num_cells();
    engine.BeginTick();
    for (uint64_t i = 0; i < 150; ++i) {
      const uint32_t cell = WorkloadCell(0, 0, i, num_cells);
      engine.ApplyUpdate(cell, WorkloadValue(0, cell, i));
      reference.WriteCell(cell, WorkloadValue(0, cell, i));
    }
    ASSERT_TRUE(engine.EndTick().ok());
    ASSERT_TRUE(engine.SimulateCrash().ok());
  }
  StateTable recovered(layout);
  auto result = Recover(config, &recovered);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->restored_from_checkpoint)
      << "recovery restored a stale pre-incarnation checkpoint";
  EXPECT_EQ(result->recovered_ticks, 1u);
  EXPECT_TRUE(recovered.ContentEquals(reference));
}

TEST_F(DurabilityTest, RepeatedCrashesAtEveryEarlyTick) {
  // Exhaustive sweep over crash points in the critical early window (first
  // checkpoints in flight).
  const StateLayout layout = StateLayout::Small(1024, 10);
  ZipfTraceConfig trace;
  trace.layout = layout;
  trace.num_ticks = 12;
  trace.updates_per_tick = 150;
  trace.theta = 0.7;

  for (uint64_t crash = 0; crash < 12; ++crash) {
    const std::string dir = dir_ + "_t" + std::to_string(crash);
    std::filesystem::remove_all(dir);
    EngineConfig config;
    config.layout = layout;
    config.algorithm = AlgorithmKind::kCopyOnUpdate;
    config.dir = dir;
    config.fsync = false;
    auto engine_or = Engine::Open(config);
    ASSERT_TRUE(engine_or.ok());
    ZipfUpdateSource source(trace);
    MutatorOptions options;
    options.crash_after_tick = crash;
    ASSERT_TRUE(RunWorkload(engine_or.value().get(), &source, options).ok());

    StateTable recovered(layout);
    auto result = Recover(config, &recovered);
    ASSERT_TRUE(result.ok()) << "crash@" << crash;
    EXPECT_EQ(result->recovered_ticks, crash + 1) << "crash@" << crash;
    EXPECT_TRUE(recovered.ContentEquals(engine_or.value()->state()))
        << "crash@" << crash;
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace tickpoint
