// Integration tests spanning game -> engine -> crash -> recovery -> resume:
// the full lifecycle of a durable MMO shard.
#include <gtest/gtest.h>

#include <filesystem>

#include "engine/engine.h"
#include "engine/mutator.h"
#include "engine/recovery.h"
#include "game/world.h"
#include "trace/zipf_source.h"

namespace tickpoint {
namespace {

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string name = ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name();
    for (auto& c : name) {
      if (c == '/') c = '_';
    }
    dir_ = (std::filesystem::temp_directory_path() / ("tp_dur_" + name))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

// Mirrors game writes into the engine (the durable_game_server wiring).
class EngineSink : public game::UpdateSink {
 public:
  explicit EngineSink(Engine* engine) : engine_(engine) {}
  void OnUpdate(game::UnitId unit, uint32_t attr, int32_t value) override {
    engine_->ApplyUpdate(unit * game::kNumAttributes + attr, value);
  }

 private:
  Engine* engine_;
};

game::WorldConfig SmallWorld() {
  game::WorldConfig config;
  config.num_units = 4000;
  config.map_size = 1024;
  config.spawn_radius = 420;
  config.seed = 99;
  return config;
}

TEST_F(DurabilityTest, GameStateSurvivesCrash) {
  game::World world(SmallWorld());
  EngineConfig config;
  config.layout = world.TraceLayout();
  config.algorithm = AlgorithmKind::kCopyOnUpdate;
  config.dir = dir_;
  config.fsync = false;
  auto engine_or = Engine::Open(config);
  ASSERT_TRUE(engine_or.ok());
  Engine& engine = *engine_or.value();

  // Tick 0: bulk-load the spawned world.
  engine.BeginTick();
  for (game::UnitId u = 0; u < world.num_units(); ++u) {
    for (uint32_t attr = 0; attr < game::kNumAttributes; ++attr) {
      engine.ApplyUpdate(u * game::kNumAttributes + attr,
                         world.units().Get(u, attr));
    }
  }
  ASSERT_TRUE(engine.EndTick().ok());

  // Battle with every write mirrored.
  EngineSink sink(&engine);
  world.set_sink(&sink);
  for (int t = 0; t < 60; ++t) {
    engine.BeginTick();
    world.Tick();
    ASSERT_TRUE(engine.EndTick().ok());
  }
  world.set_sink(nullptr);
  ASSERT_GT(engine.metrics().updates, 0u);

  const uint32_t lost = engine.state().Digest();
  ASSERT_TRUE(engine.SimulateCrash().ok());

  StateTable recovered(config.layout);
  auto result = Recover(config, &recovered);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(recovered.Digest(), lost);
  // The recovered state must equal the game's own table, cell by cell.
  for (game::UnitId u = 0; u < world.num_units(); u += 37) {
    for (uint32_t attr = 0; attr < game::kNumAttributes; ++attr) {
      ASSERT_EQ(recovered.ReadCell(u * game::kNumAttributes + attr),
                world.units().Get(u, attr))
          << "unit " << u << " attr " << attr;
    }
  }
}

// The full lifecycle: run, crash, recover, RESUME on a new engine,
// continue the same trace, crash again, recover again. Final state must
// equal the uninterrupted reference execution.
class ResumeCycleTest : public DurabilityTest,
                        public ::testing::WithParamInterface<AlgorithmKind> {};

TEST_P(ResumeCycleTest, CrashRecoverResumeCrashRecover) {
  const AlgorithmKind kind = GetParam();
  const StateLayout layout = StateLayout::Small(2048, 10);
  ZipfTraceConfig trace;
  trace.layout = layout;
  trace.num_ticks = 60;
  trace.updates_per_tick = 250;
  trace.theta = 0.7;
  trace.seed = 5;

  EngineConfig config;
  config.layout = layout;
  config.algorithm = kind;
  config.dir = dir_;
  config.fsync = false;
  config.full_flush_period = 3;

  constexpr uint64_t kFirstCrash = 24;
  constexpr uint64_t kSecondCrash = 51;

  // Phase 1: run from scratch, crash at kFirstCrash.
  {
    auto engine_or = Engine::Open(config);
    ASSERT_TRUE(engine_or.ok());
    ZipfUpdateSource source(trace);
    MutatorOptions options;
    options.crash_after_tick = kFirstCrash;
    auto report = RunWorkload(engine_or.value().get(), &source, options);
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(report->crashed);
  }

  // Phase 2: recover and resume the SAME trace from the next tick.
  StateTable recovered(layout);
  {
    auto result = Recover(config, &recovered);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->recovered_ticks, kFirstCrash + 1);
  }
  {
    auto engine_or = Engine::OpenResumed(config, recovered, kFirstCrash + 1);
    ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
    EXPECT_EQ(engine_or.value()->current_tick(), kFirstCrash + 1);
    ZipfUpdateSource source(trace);
    MutatorOptions options;
    options.skip_ticks = kFirstCrash + 1;
    options.crash_after_tick = kSecondCrash;
    auto report = RunWorkload(engine_or.value().get(), &source, options);
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(report->crashed);
  }

  // Phase 3: recover again; compare against the uninterrupted reference.
  StateTable final_state(layout);
  auto result = Recover(config, &final_state);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->recovered_ticks, kSecondCrash + 1);

  StateTable reference(layout);
  ZipfUpdateSource source(trace);
  ApplyWorkloadToTable(&source, kSecondCrash + 1, &reference);
  EXPECT_TRUE(final_state.ContentEquals(reference))
      << AlgorithmName(kind) << ": resumed run diverged from reference";
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ResumeCycleTest,
                         ::testing::ValuesIn(AllAlgorithms()),
                         [](const auto& info) {
                           std::string name =
                               GetTraits(info.param).short_name;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST_F(DurabilityTest, GroupCommitWindowBoundsLoss) {
  // With sync_every = 8 the logical log may lose up to 7 ticks on a crash;
  // recovery must still produce a consistent prefix state.
  const StateLayout layout = StateLayout::Small(2048, 10);
  EngineConfig config;
  config.layout = layout;
  config.algorithm = AlgorithmKind::kCopyOnUpdate;
  config.dir = dir_;
  config.fsync = false;
  config.logical_sync_every = 8;

  ZipfTraceConfig trace;
  trace.layout = layout;
  trace.num_ticks = 40;
  trace.updates_per_tick = 200;
  trace.theta = 0.7;

  auto engine_or = Engine::Open(config);
  ASSERT_TRUE(engine_or.ok());
  ZipfUpdateSource source(trace);
  MutatorOptions options;
  options.crash_after_tick = 29;
  auto report = RunWorkload(engine_or.value().get(), &source, options);
  ASSERT_TRUE(report.ok());

  StateTable recovered(layout);
  auto result = Recover(config, &recovered);
  ASSERT_TRUE(result.ok());
  // SimulateCrash closes (and thereby syncs) the log, so in this harness
  // nothing is lost; the essential property is that the recovered tick
  // count never exceeds the crash point and the state matches the
  // reference at exactly that tick.
  ASSERT_LE(result->recovered_ticks, 30u);
  StateTable reference(layout);
  ZipfUpdateSource ref_source(trace);
  ApplyWorkloadToTable(&ref_source, result->recovered_ticks, &reference);
  EXPECT_TRUE(recovered.ContentEquals(reference));
}

TEST_F(DurabilityTest, HardCrashBetweenGroupCommitsRecoversLastSyncedTick) {
  // logical_sync_every = 8 and a hard crash after 30 ticks: ticks 24..29
  // never reached stable storage, and a torn fragment of tick 24's record
  // is left on disk. With no checkpoint image (manual mode, never
  // scheduled) the logical log is the only recovery source, so the
  // recovery window is exactly the group-commit window: Recover must land
  // on tick 24 -- the last synced group commit -- and must not apply the
  // torn tail.
  const StateLayout layout = StateLayout::Small(512, 10);
  EngineConfig config;
  config.layout = layout;
  config.algorithm = AlgorithmKind::kCopyOnUpdate;
  config.dir = dir_;
  config.fsync = false;
  config.logical_sync_every = 8;
  config.manual_checkpoints = true;  // no image: recovery is log-only

  constexpr uint64_t kTicks = 30;
  constexpr uint64_t kSyncedTicks = 24;  // last group commit before 30
  constexpr uint64_t kUpdates = 120;
  const uint64_t num_cells = layout.num_cells();

  auto engine_or = Engine::Open(config);
  ASSERT_TRUE(engine_or.ok());
  Engine& engine = *engine_or.value();
  StateTable reference(layout);  // state at the last synced tick
  for (uint64_t tick = 0; tick < kTicks; ++tick) {
    engine.BeginTick();
    for (uint64_t i = 0; i < kUpdates; ++i) {
      const uint32_t cell = WorkloadCell(0, tick, i, num_cells);
      const int32_t value = WorkloadValue(tick, cell, i);
      engine.ApplyUpdate(cell, value);
      if (tick < kSyncedTicks) reference.WriteCell(cell, value);
    }
    ASSERT_TRUE(engine.EndTick().ok());
  }
  ASSERT_TRUE(engine.SimulateCrashLosingUnsyncedLog().ok());

  // The on-disk log carries exactly the synced prefix...
  auto durable_or =
      LogicalLog::CountDurableTicks(Engine::LogicalLogPath(dir_));
  ASSERT_TRUE(durable_or.ok());
  EXPECT_EQ(durable_or.value(), kSyncedTicks);

  // ...and recovery lands exactly on the last group commit.
  StateTable recovered(layout);
  auto result = Recover(config, &recovered);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->restored_from_checkpoint);
  EXPECT_EQ(result->recovered_ticks, kSyncedTicks);
  EXPECT_TRUE(recovered.ContentEquals(reference));
}

TEST_F(DurabilityTest, HardCrashWithCheckpointsStaysWithinDurableSources) {
  // Same hard crash, now with back-to-back checkpoints running: the newest
  // complete image may cover ticks past the synced log (the image is its
  // own durable source), so recovery returns max(image, synced log) -- and
  // never a tick that reached neither.
  const StateLayout layout = StateLayout::Small(512, 10);
  EngineConfig config;
  config.layout = layout;
  config.algorithm = AlgorithmKind::kCopyOnUpdate;
  config.dir = dir_;
  config.fsync = false;
  config.logical_sync_every = 8;

  constexpr uint64_t kTicks = 30;
  constexpr uint64_t kSyncedTicks = 24;
  constexpr uint64_t kUpdates = 120;
  const uint64_t num_cells = layout.num_cells();

  auto engine_or = Engine::Open(config);
  ASSERT_TRUE(engine_or.ok());
  Engine& engine = *engine_or.value();
  for (uint64_t tick = 0; tick < kTicks; ++tick) {
    engine.BeginTick();
    for (uint64_t i = 0; i < kUpdates; ++i) {
      const uint32_t cell = WorkloadCell(0, tick, i, num_cells);
      engine.ApplyUpdate(cell, WorkloadValue(tick, cell, i));
    }
    ASSERT_TRUE(engine.EndTick().ok());
  }
  ASSERT_TRUE(engine.SimulateCrashLosingUnsyncedLog().ok());

  StateTable recovered(layout);
  auto result = Recover(config, &recovered);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->recovered_ticks, kSyncedTicks);
  EXPECT_LE(result->recovered_ticks, kTicks);

  // Whatever tick recovery landed on, the state is that tick's exact
  // prefix of the deterministic workload.
  StateTable reference(layout);
  for (uint64_t tick = 0; tick < result->recovered_ticks; ++tick) {
    for (uint64_t i = 0; i < kUpdates; ++i) {
      const uint32_t cell = WorkloadCell(0, tick, i, num_cells);
      reference.WriteCell(cell, WorkloadValue(tick, cell, i));
    }
  }
  EXPECT_TRUE(recovered.ContentEquals(reference));
}

TEST_F(DurabilityTest, FallsBackWhenNewestBackupCorrupted) {
  const StateLayout layout = StateLayout::Small(2048, 10);
  EngineConfig config;
  config.layout = layout;
  config.algorithm = AlgorithmKind::kNaiveSnapshot;
  config.dir = dir_;
  config.fsync = false;

  ZipfTraceConfig trace;
  trace.layout = layout;
  trace.num_ticks = 40;
  trace.updates_per_tick = 200;
  trace.theta = 0.7;

  uint32_t lost = 0;
  uint64_t newest_seq = 0;
  {
    auto engine_or = Engine::Open(config);
    ASSERT_TRUE(engine_or.ok());
    ZipfUpdateSource source(trace);
    ASSERT_TRUE(RunWorkload(engine_or.value().get(), &source,
                            MutatorOptions{})
                    .ok());
    ASSERT_TRUE(engine_or.value()->Shutdown().ok());
    lost = engine_or.value()->state().Digest();
    newest_seq = engine_or.value()->metrics().checkpoints.back().seq;
  }

  // Smash the header of whichever backup holds the newest image.
  {
    auto store_or = BackupStore::Open(dir_, layout, false);
    ASSERT_TRUE(store_or.ok());
    int newest = -1;
    for (int i = 0; i < 2; ++i) {
      auto info = store_or.value()->Inspect(i);
      ASSERT_TRUE(info.ok());
      if (info->valid && info->seq == newest_seq) newest = i;
    }
    ASSERT_GE(newest, 0);
    FileWriter vandal;
    ASSERT_TRUE(
        vandal.OpenForUpdate(store_or.value()->path(newest)).ok());
    const uint64_t garbage = 0xDEADBEEFDEADBEEFULL;
    ASSERT_TRUE(vandal.WriteAt(8, &garbage, sizeof(garbage)).ok());
    ASSERT_TRUE(vandal.Close().ok());
  }

  // Recovery falls back to the older image and replays further -- ending
  // at the same final state.
  StateTable recovered(layout);
  auto result = Recover(config, &recovered);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->image_seq, newest_seq);
  EXPECT_EQ(recovered.Digest(), lost);
}

TEST_F(DurabilityTest, RepeatedCrashesAtEveryEarlyTick) {
  // Exhaustive sweep over crash points in the critical early window (first
  // checkpoints in flight).
  const StateLayout layout = StateLayout::Small(1024, 10);
  ZipfTraceConfig trace;
  trace.layout = layout;
  trace.num_ticks = 12;
  trace.updates_per_tick = 150;
  trace.theta = 0.7;

  for (uint64_t crash = 0; crash < 12; ++crash) {
    const std::string dir = dir_ + "_t" + std::to_string(crash);
    std::filesystem::remove_all(dir);
    EngineConfig config;
    config.layout = layout;
    config.algorithm = AlgorithmKind::kCopyOnUpdate;
    config.dir = dir;
    config.fsync = false;
    auto engine_or = Engine::Open(config);
    ASSERT_TRUE(engine_or.ok());
    ZipfUpdateSource source(trace);
    MutatorOptions options;
    options.crash_after_tick = crash;
    ASSERT_TRUE(RunWorkload(engine_or.value().get(), &source, options).ok());

    StateTable recovered(layout);
    auto result = Recover(config, &recovered);
    ASSERT_TRUE(result.ok()) << "crash@" << crash;
    EXPECT_EQ(result->recovered_ticks, crash + 1) << "crash@" << crash;
    EXPECT_TRUE(recovered.ContentEquals(engine_or.value()->state()))
        << "crash@" << crash;
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace tickpoint
