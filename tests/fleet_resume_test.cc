// Fleet-level resume: Fleet::Recover / Fleet::RecoverToCut read the whole
// K-shard fleet back from its root directory and RecoveredFleet::Resume
// restarts it in one call -- the workflow tests previously had to
// hand-roll per engine. The lifecycle under test: run -> crash -> recover
// -> fleet resume -> more ticks -> crash again -> recover again, with the
// final state byte-compared against an uninterrupted reference execution.
#include "engine/fleet.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "engine/mutator.h"
#include "engine/recovery.h"
#include "engine/sharded_engine.h"
#include "fleet_test_util.h"
#include "game/shard_adapter.h"

namespace tickpoint {
namespace {

StateLayout ShardLayout() { return StateLayout::Small(512, 10); }  // 40 objects

constexpr uint64_t kUpdatesPerTick = 150;

class FleetResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string name(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    for (auto& c : name) {
      if (c == '/') c = '_';
    }
    dir_ = (std::filesystem::temp_directory_path() / ("tp_resume_" + name))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  ShardedEngineConfig Config(AlgorithmKind kind, uint32_t num_shards,
                             bool threaded = true) {
    ShardedEngineConfig config;
    config.shard.layout = ShardLayout();
    config.shard.algorithm = kind;
    config.shard.dir = dir_;
    config.shard.fsync = false;  // simulated crashes: page cache is durable
    config.shard.full_flush_period = 3;
    config.num_shards = num_shards;
    config.checkpoint_period_ticks = 5;
    config.threaded = threaded;
    return config;
  }

  /// Drives `ticks` fleet ticks of the deterministic workload from the
  /// engine's CURRENT tick (so the same helper serves the original and the
  /// resumed incarnation), mirroring every update into `reference`.
  void RunTicks(ShardedEngine* engine, uint64_t ticks,
                std::vector<StateTable>* reference) {
    const uint64_t num_cells = ShardLayout().num_cells();
    if (reference->empty()) {
      for (uint32_t i = 0; i < engine->num_shards(); ++i) {
        reference->emplace_back(ShardLayout());
      }
    }
    for (uint64_t t = 0; t < ticks; ++t) {
      const uint64_t tick = engine->current_tick();
      engine->BeginTick();
      for (uint32_t shard = 0; shard < engine->num_shards(); ++shard) {
        for (uint64_t i = 0; i < kUpdatesPerTick; ++i) {
          const uint32_t cell = WorkloadCell(shard, tick, i, num_cells);
          const int32_t value = WorkloadValue(tick, cell, i);
          engine->ApplyUpdate(shard, cell, value);
          (*reference)[shard].WriteCell(cell, value);
        }
      }
      ASSERT_TRUE(engine->EndTick().ok());
    }
  }

  std::string dir_;
};

struct ResumeCase {
  AlgorithmKind kind;
  bool threaded;
};

class FleetResumeRoundTripTest
    : public FleetResumeTest,
      public ::testing::WithParamInterface<ResumeCase> {};

TEST_P(FleetResumeRoundTripTest, CrashResumeCrashRecover) {
  const ResumeCase param = GetParam();
  const auto config = Config(param.kind, 3, param.threaded);
  constexpr uint64_t kFirstCrash = 13;
  constexpr uint64_t kSecondCrash = 27;

  // Phase 1: run from scratch, crash after kFirstCrash + 1 fleet ticks.
  std::vector<StateTable> reference;
  {
    auto fleet_or = Fleet::Create(config.shard.dir, config);
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    RunTicks(&fleet_or.value()->engine(), kFirstCrash + 1, &reference);
    ASSERT_TRUE(fleet_or.value()->SimulateCrash().ok());
  }

  // Phase 2: whole-fleet recovery from the root alone, then the one-call
  // fleet resume.
  {
    auto recovered_or = Fleet::Recover(config.shard.dir);
    ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
    ASSERT_EQ(recovered_or->result().fleet.min_recovered_ticks,
              kFirstCrash + 1);
    ASSERT_EQ(recovered_or->result().fleet.max_recovered_ticks,
              kFirstCrash + 1);
    ASSERT_EQ(recovered_or->resume_tick(), kFirstCrash + 1);
    auto fleet_or = recovered_or->Resume();
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    ShardedEngine& engine = fleet_or.value()->engine();
    EXPECT_EQ(engine.current_tick(), kFirstCrash + 1);
    ASSERT_TRUE(engine.WaitForIdle().ok());
    for (uint32_t i = 0; i < 3; ++i) {
      EXPECT_EQ(engine.shard(i).current_tick(), kFirstCrash + 1)
          << "shard " << i;
      EXPECT_TRUE(engine.shard(i).state().ContentEquals(reference[i]))
          << "shard " << i;
    }
    // Phase 3: continue the same deterministic workload, crash again.
    RunTicks(&engine, kSecondCrash - kFirstCrash, &reference);
    ASSERT_TRUE(engine.SimulateCrash().ok());
  }

  // Phase 4: recover again; the fleet must equal the uninterrupted
  // reference execution through kSecondCrash + 1 ticks.
  auto final_or = Fleet::Recover(config.shard.dir);
  ASSERT_TRUE(final_or.ok()) << final_or.status().ToString();
  const ShardedRecoveryResult& result = final_or->result().fleet;
  std::vector<StateTable>& final_state = final_or->tables();
  EXPECT_EQ(result.min_recovered_ticks, kSecondCrash + 1);
  EXPECT_EQ(result.max_recovered_ticks, kSecondCrash + 1);
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(final_state[i].ContentEquals(reference[i]))
        << AlgorithmName(param.kind) << " shard " << i
        << " diverged after the resume";
  }
}

std::string ResumeCaseName(const ::testing::TestParamInfo<ResumeCase>& info) {
  std::string name = std::string(GetTraits(info.param.kind).short_name) +
                     (info.param.threaded ? "" : "_inline");
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllOrganizations, FleetResumeRoundTripTest,
    ::testing::ValuesIn(std::vector<ResumeCase>{
        {AlgorithmKind::kCopyOnUpdate, true},
        {AlgorithmKind::kCopyOnUpdate, false},
        {AlgorithmKind::kCopyOnUpdatePartialRedo, true},
        {AlgorithmKind::kDribble, true},
        {AlgorithmKind::kNaiveSnapshot, true},
    }),
    ResumeCaseName);

TEST_F(FleetResumeTest, CrashImmediatelyAfterResumeRecoversTheBootstrap) {
  // The fleet twin of ResumeBootstrapOutranksStale*: crash before the
  // resumed fleet runs a single tick. Each shard's bootstrap checkpoint is
  // then the ONLY durable source reaching the resume tick -- a shard that
  // restarted its seq/generation numbering under the stale pre-crash files
  // would silently rewind.
  const auto config = Config(AlgorithmKind::kDribble, 2);
  std::vector<StateTable> reference;
  {
    auto fleet_or = Fleet::Create(config.shard.dir, config);
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    RunTicks(&fleet_or.value()->engine(), 12, &reference);
    ASSERT_TRUE(fleet_or.value()->SimulateCrash().ok());
  }
  {
    auto recovered_or = Fleet::Recover(config.shard.dir);
    ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
    auto fleet_or = recovered_or->Resume();
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    ASSERT_TRUE(fleet_or.value()->SimulateCrash().ok());
  }
  auto after_or = Fleet::Recover(config.shard.dir);
  ASSERT_TRUE(after_or.ok()) << after_or.status().ToString();
  EXPECT_EQ(after_or->result().fleet.min_recovered_ticks, 12u);
  EXPECT_EQ(after_or->result().fleet.max_recovered_ticks, 12u);
  for (uint32_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(after_or->tables()[i].ContentEquals(reference[i]))
        << "shard " << i;
  }
}

TEST_F(FleetResumeTest, ResumesFromAConsistentCut) {
  // Cut recovery + fleet resume: restore the whole fleet to the committed
  // cut tick T (discarding everything after it), resume at T + 1, and
  // re-run the discarded ticks. Because the workload is deterministic, the
  // re-run must land exactly on the uninterrupted reference.
  const auto config = Config(AlgorithmKind::kCopyOnUpdate, 3);
  std::vector<StateTable> reference;
  uint64_t cut_tick = 0;
  {
    auto fleet_or = Fleet::Create(config.shard.dir, config);
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    ShardedEngine& engine = fleet_or.value()->engine();
    RunTicks(&engine, 2, &reference);
    auto cut_or = engine.RequestConsistentCut();
    ASSERT_TRUE(cut_or.ok()) << cut_or.status().ToString();
    cut_tick = cut_or.value();
    RunTicks(&engine, cut_tick + 1 - engine.current_tick(), &reference);
    ASSERT_TRUE(engine.CommitConsistentCut().ok());
    RunTicks(&engine, 5, &reference);  // ticks the cut restore discards
    ASSERT_TRUE(engine.SimulateCrash().ok());
  }
  const uint64_t crash_ticks = cut_tick + 1 + 5;

  auto at_cut_or = Fleet::RecoverToCut(config.shard.dir);
  ASSERT_TRUE(at_cut_or.ok()) << at_cut_or.status().ToString();
  ASSERT_TRUE(at_cut_or->at_cut());
  ASSERT_EQ(at_cut_or->result().cut_tick, cut_tick);
  ASSERT_EQ(at_cut_or->result().fleet.min_recovered_ticks, cut_tick + 1);
  ASSERT_EQ(at_cut_or->resume_tick(), cut_tick + 1);
  // Resume at T + 1 and replay the deterministic ticks the restore
  // discarded, then a few more.
  std::vector<StateTable> resumed_reference =
      SnapshotTables(at_cut_or->tables());
  {
    auto fleet_or = at_cut_or->Resume();
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    ShardedEngine& engine = fleet_or.value()->engine();
    EXPECT_EQ(engine.current_tick(), cut_tick + 1);
    RunTicks(&engine, crash_ticks - (cut_tick + 1) + 3, &resumed_reference);
    ASSERT_TRUE(engine.SimulateCrash().ok());
  }
  auto final_or = Fleet::Recover(config.shard.dir);
  ASSERT_TRUE(final_or.ok()) << final_or.status().ToString();
  std::vector<StateTable>& final_state = final_or->tables();
  EXPECT_EQ(final_or->result().fleet.min_recovered_ticks, crash_ticks + 3);
  EXPECT_EQ(final_or->result().fleet.max_recovered_ticks, crash_ticks + 3);
  for (uint32_t i = 0; i < 3; ++i) {
    // The resumed run's own mirror and recovery agree...
    EXPECT_TRUE(final_state[i].ContentEquals(resumed_reference[i]))
        << "shard " << i;
  }
  // ...and the re-run of the discarded ticks reproduced the original
  // timeline exactly (reference holds the uninterrupted execution through
  // crash_ticks; the resumed run replayed those same ticks).
  // Rebuild the uninterrupted reference at crash_ticks + 3 by extending
  // the mirror deterministically.
  std::vector<StateTable> original_at_crash = SnapshotTables(reference);
  for (uint64_t tick = crash_ticks; tick < crash_ticks + 3; ++tick) {
    MirrorWorkloadTick(tick, kUpdatesPerTick, &original_at_crash);
  }
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(final_state[i].ContentEquals(original_at_crash[i]))
        << "shard " << i << " diverged from the uninterrupted timeline";
  }
}

TEST_F(FleetResumeTest, ResumedFleetCanCutAgain) {
  // A resumed fleet is a full citizen: it can arm and commit a NEW
  // consistent cut, and cut recovery then lands on the new cut, not any
  // pre-crash state.
  const auto config = Config(AlgorithmKind::kCopyOnUpdate, 2);
  std::vector<StateTable> reference;
  {
    auto fleet_or = Fleet::Create(config.shard.dir, config);
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    RunTicks(&fleet_or.value()->engine(), 8, &reference);
    ASSERT_TRUE(fleet_or.value()->SimulateCrash().ok());
  }

  uint64_t cut_tick = 0;
  std::vector<StateTable> reference_at_cut;
  {
    auto recovered_or = Fleet::Recover(config.shard.dir);
    ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
    auto fleet_or = recovered_or->Resume();
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    ShardedEngine& engine = fleet_or.value()->engine();
    auto cut_or = engine.RequestConsistentCut();
    ASSERT_TRUE(cut_or.ok()) << cut_or.status().ToString();
    cut_tick = cut_or.value();
    EXPECT_GE(cut_tick, 8u);
    RunTicks(&engine, cut_tick + 1 - engine.current_tick(), &reference);
    reference_at_cut = SnapshotTables(reference);
    ASSERT_TRUE(engine.CommitConsistentCut().ok());
    RunTicks(&engine, 4, &reference);
    ASSERT_TRUE(engine.SimulateCrash().ok());
  }
  auto at_cut_or = Fleet::RecoverToCut(config.shard.dir);
  ASSERT_TRUE(at_cut_or.ok()) << at_cut_or.status().ToString();
  EXPECT_TRUE(at_cut_or->at_cut());
  EXPECT_EQ(at_cut_or->result().cut_tick, cut_tick);
  EXPECT_EQ(at_cut_or->result().fleet.min_recovered_ticks, cut_tick + 1);
  for (uint32_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(at_cut_or->tables()[i].ContentEquals(reference_at_cut[i]))
        << "shard " << i;
  }
}

TEST_F(FleetResumeTest, ResumeValidatesTheShardCount) {
  // The shard-count validation lives behind RecoveredFleet::Resume: a
  // recovered fleet whose table vector was truncated (a caller mutating
  // tables() before resuming) must be refused, not half-resumed.
  const auto config = Config(AlgorithmKind::kCopyOnUpdate, 3);
  {
    auto fleet_or = Fleet::Create(config.shard.dir, config);
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    std::vector<StateTable> reference;
    RunTicks(&fleet_or.value()->engine(), 3, &reference);
    ASSERT_TRUE(fleet_or.value()->SimulateCrash().ok());
  }
  auto recovered_or = Fleet::Recover(config.shard.dir);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  recovered_or->tables().pop_back();
  auto fleet_or = recovered_or->Resume();
  EXPECT_EQ(fleet_or.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FleetResumeTest, CrashMidResumePreservesTheCutRestorePoint) {
  // The mid-resume death window: a fleet resume retires the cut manifest
  // only after EVERY shard's bootstrap is durable. Forge a death between
  // shard 0's bootstrap and shard 1's (doctor shard 1's recovered table so
  // its Engine::OpenResumed fails after shard 0's bootstrap landed):
  // because the fleet was being resumed from the cut itself, shard 0's
  // bootstrap IS a valid image at the cut, and Fleet::RecoverToCut must
  // still reproduce the fleet-consistent state at the cut exactly.
  // Pre-fix, the manifest was removed before any bootstrap, so this window
  // silently downgraded the fleet to inconsistent per-shard recovery.
  const auto config = Config(AlgorithmKind::kCopyOnUpdate, 2);
  std::vector<StateTable> reference;
  uint64_t cut_tick = 0;
  std::vector<StateTable> reference_at_cut;
  {
    auto fleet_or = Fleet::Create(config.shard.dir, config);
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    ShardedEngine& engine = fleet_or.value()->engine();
    RunTicks(&engine, 1, &reference);
    auto cut_or = engine.RequestConsistentCut();
    ASSERT_TRUE(cut_or.ok());
    cut_tick = cut_or.value();
    RunTicks(&engine, cut_tick + 1 - engine.current_tick(), &reference);
    reference_at_cut = SnapshotTables(reference);
    ASSERT_TRUE(engine.CommitConsistentCut().ok());
    RunTicks(&engine, 4, &reference);
    ASSERT_TRUE(engine.SimulateCrash().ok());
  }
  {
    // Drive the REAL resume into a mid-loop abort: shard 0's table is
    // correct (its bootstrap gets written), shard 1's has the wrong layout
    // (its Engine::OpenResumed fails), so the resume dies between the two
    // bootstraps -- the same on-disk state a process death there leaves.
    auto at_cut_or = Fleet::RecoverToCut(config.shard.dir);
    ASSERT_TRUE(at_cut_or.ok()) << at_cut_or.status().ToString();
    ASSERT_TRUE(at_cut_or->at_cut());
    at_cut_or->tables()[1] = StateTable(StateLayout::Small(256, 10));
    auto fleet_or = at_cut_or->Resume();
    ASSERT_FALSE(fleet_or.ok());
    EXPECT_EQ(fleet_or.status().code(), StatusCode::kInvalidArgument);
  }
  auto recovered_or = Fleet::RecoverToCut(config.shard.dir);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  EXPECT_TRUE(recovered_or->at_cut())
      << "the cut restore point was destroyed mid-resume";
  EXPECT_EQ(recovered_or->result().cut_tick, cut_tick);
  EXPECT_EQ(recovered_or->result().fleet.min_recovered_ticks, cut_tick + 1);
  EXPECT_EQ(recovered_or->result().fleet.max_recovered_ticks, cut_tick + 1);
  for (uint32_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(recovered_or->tables()[i].ContentEquals(reference_at_cut[i]))
        << "shard " << i;
  }
}

TEST_F(FleetResumeTest, MidResumeCrashWithOlderCutFallsBackPerShard) {
  // The other mid-resume window: the fleet is resumed from a PLAIN crash
  // recovery (first_tick past the committed cut), so an already-resumed
  // shard's truncated log can no longer reproduce the older cut. The
  // still-present manifest must degrade to the per-shard exact fallback
  // -- not half-apply, and not surface Corruption.
  const auto config = Config(AlgorithmKind::kCopyOnUpdate, 2);
  std::vector<StateTable> reference;
  {
    auto fleet_or = Fleet::Create(config.shard.dir, config);
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    ShardedEngine& engine = fleet_or.value()->engine();
    RunTicks(&engine, 1, &reference);
    auto cut_or = engine.RequestConsistentCut();
    ASSERT_TRUE(cut_or.ok());
    RunTicks(&engine, cut_or.value() + 1 - engine.current_tick(), &reference);
    ASSERT_TRUE(engine.CommitConsistentCut().ok());
    RunTicks(&engine, 5, &reference);  // well past the cut
    ASSERT_TRUE(engine.SimulateCrash().ok());
  }
  auto crash_or = Fleet::Recover(config.shard.dir);
  ASSERT_TRUE(crash_or.ok()) << crash_or.status().ToString();
  const uint64_t resume_tick = crash_or->resume_tick();
  {
    // Shard 0 resumes at the crash tick (not the cut), then death before
    // shard 1 starts.
    EngineConfig shard0 = config.shard;
    shard0.dir = ShardedEngine::ShardDir(config.shard.dir, 0);
    shard0.manual_checkpoints = true;
    auto engine_or =
        Engine::OpenResumed(shard0, crash_or->tables()[0], resume_tick);
    ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
    ASSERT_TRUE(engine_or.value()->SimulateCrash().ok());
  }
  auto after_or = Fleet::RecoverToCut(config.shard.dir);
  ASSERT_TRUE(after_or.ok()) << after_or.status().ToString();
  EXPECT_FALSE(after_or->at_cut());
  EXPECT_EQ(after_or->result().fleet.min_recovered_ticks, resume_tick);
  EXPECT_EQ(after_or->result().fleet.max_recovered_ticks, resume_tick);
  for (uint32_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(after_or->tables()[i].ContentEquals(reference[i]))
        << "shard " << i;
  }
}

TEST_F(FleetResumeTest, ResumeRetiresThePreCrashCutManifest) {
  // A cut committed BEFORE the crash must not survive the resume: the
  // resumed incarnation truncates the logical logs that cut depended on,
  // so Fleet::RecoverToCut after a post-resume crash must fall back to
  // per-shard exactness instead of half-applying the stale manifest.
  const auto config = Config(AlgorithmKind::kCopyOnUpdate, 2);
  std::vector<StateTable> reference;
  {
    auto fleet_or = Fleet::Create(config.shard.dir, config);
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    ShardedEngine& engine = fleet_or.value()->engine();
    RunTicks(&engine, 1, &reference);
    auto cut_or = engine.RequestConsistentCut();
    ASSERT_TRUE(cut_or.ok());
    RunTicks(&engine, cut_or.value() + 1 - engine.current_tick(), &reference);
    ASSERT_TRUE(engine.CommitConsistentCut().ok());
    RunTicks(&engine, 3, &reference);
    ASSERT_TRUE(engine.SimulateCrash().ok());
  }
  auto crash_or = Fleet::Recover(config.shard.dir);
  ASSERT_TRUE(crash_or.ok()) << crash_or.status().ToString();
  const uint64_t resume_tick = crash_or->resume_tick();
  {
    auto fleet_or = crash_or->Resume();
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    RunTicks(&fleet_or.value()->engine(), 2, &reference);
    ASSERT_TRUE(fleet_or.value()->SimulateCrash().ok());
  }
  auto after_or = Fleet::RecoverToCut(config.shard.dir);
  ASSERT_TRUE(after_or.ok()) << after_or.status().ToString();
  EXPECT_FALSE(after_or->at_cut())
      << "recovery honored a cut manifest from before the resume";
  EXPECT_EQ(after_or->result().fleet.min_recovered_ticks, resume_tick + 2);
  for (uint32_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(after_or->tables()[i].ContentEquals(reference[i]))
        << "shard " << i;
  }
}

// ---- Game-level resume: the same battle, bit for bit ----

TEST_F(FleetResumeTest, ResumedBattleContinuesBitIdentically) {
  // The regression this pins: resuming a zone used to rebuild the unit
  // table but RESEED the world's RNG and resample its active set, so the
  // resumed battle silently diverged from the uncrashed one on the first
  // post-resume rotation. The World now serializes its RNG, active-set,
  // and tick bookkeeping through the partition's system rows, so a
  // crash + Fleet::Recover + GameShardAdapter::OpenResumed continues the
  // SAME battle: after M more ticks, every zone digest must equal the
  // golden (never-crashed) run at the same world tick -- including the
  // cross-zone morale pipeline, whose kill tally also rides the system
  // rows.
  game::GameShardAdapterConfig config;
  config.zone_world.num_units = 64;
  config.zone_world.map_size = 256;
  config.zone_world.bucket_shift = 5;
  config.zone_world.spawn_radius = 100;
  config.zone_world.seed = 4321;
  config.engine = Config(AlgorithmKind::kCopyOnUpdate, 2);
  constexpr uint64_t kCrashTicks = 9;  // engine ticks before the crash
  constexpr uint64_t kMoreTicks = 7;   // engine ticks after the resume
  const auto golden = game::GameShardAdapter::GoldenZoneDigests(
      config, kCrashTicks - 1 + kMoreTicks);

  {
    auto adapter_or = game::GameShardAdapter::Open(config);
    ASSERT_TRUE(adapter_or.ok()) << adapter_or.status().ToString();
    ASSERT_TRUE(adapter_or.value()->RunTicks(kCrashTicks).ok());
    for (uint32_t z = 0; z < 2; ++z) {
      ASSERT_EQ(adapter_or.value()->ZoneDigest(z), golden[kCrashTicks - 1][z])
          << "pre-crash zone " << z << " already off the golden timeline";
    }
    ASSERT_TRUE(adapter_or.value()->fleet()->SimulateCrash().ok());
  }

  auto recovered_or = Fleet::Recover(config.engine.shard.dir);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  ASSERT_EQ(recovered_or->resume_tick(), kCrashTicks);
  auto resumed_or = game::GameShardAdapter::OpenResumed(
      config, std::move(recovered_or).value());
  ASSERT_TRUE(resumed_or.ok()) << resumed_or.status().ToString();
  game::GameShardAdapter& resumed = *resumed_or.value();
  EXPECT_EQ(resumed.engine_ticks(), kCrashTicks);
  EXPECT_EQ(resumed.world_ticks(), kCrashTicks - 1);
  for (uint32_t z = 0; z < 2; ++z) {
    EXPECT_EQ(resumed.ZoneDigest(z), golden[kCrashTicks - 1][z])
        << "resumed zone " << z << " does not match the crash point";
  }
  ASSERT_TRUE(resumed.RunTicks(kMoreTicks).ok());
  for (uint32_t z = 0; z < 2; ++z) {
    EXPECT_EQ(resumed.ZoneDigest(z), golden[kCrashTicks - 1 + kMoreTicks][z])
        << "zone " << z << " diverged after the resume: the battle did not "
           "continue bit-identically";
  }
  // The resumed fleet's durability is intact too: crash again and the
  // recovered tables digest-match the live (golden) worlds.
  ASSERT_TRUE(resumed.fleet()->SimulateCrash().ok());
  auto again_or = Fleet::Recover(config.engine.shard.dir);
  ASSERT_TRUE(again_or.ok()) << again_or.status().ToString();
  ASSERT_EQ(again_or->resume_tick(), kCrashTicks + kMoreTicks);
  for (uint32_t z = 0; z < 2; ++z) {
    EXPECT_EQ(game::TableStateDigest(again_or->tables()[z],
                                     config.zone_world.num_units),
              golden[kCrashTicks - 1 + kMoreTicks][z])
        << "zone " << z;
  }
}

TEST_F(FleetResumeTest, GameResumeValidatesShapeAndSystemRows) {
  game::GameShardAdapterConfig config;
  config.zone_world.num_units = 64;
  config.zone_world.map_size = 256;
  config.zone_world.bucket_shift = 5;
  config.zone_world.spawn_radius = 100;
  config.zone_world.seed = 99;
  config.engine = Config(AlgorithmKind::kCopyOnUpdate, 2);
  {
    auto adapter_or = game::GameShardAdapter::Open(config);
    ASSERT_TRUE(adapter_or.ok()) << adapter_or.status().ToString();
    ASSERT_TRUE(adapter_or.value()->RunTicks(5).ok());
    ASSERT_TRUE(adapter_or.value()->fleet()->SimulateCrash().ok());
  }
  {
    // A different zone shape must be refused, not silently misread.
    auto recovered_or = Fleet::Recover(config.engine.shard.dir);
    ASSERT_TRUE(recovered_or.ok());
    game::GameShardAdapterConfig wrong = config;
    wrong.zone_world.num_units = 128;
    auto resumed_or = game::GameShardAdapter::OpenResumed(
        wrong, std::move(recovered_or).value());
    EXPECT_EQ(resumed_or.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // Clobbered system rows surface as Corruption (here: the recovered
    // world-tick cell disagrees with the recovery tick).
    auto recovered_or = Fleet::Recover(config.engine.shard.dir);
    ASSERT_TRUE(recovered_or.ok());
    const uint32_t base = config.zone_world.num_units * game::kNumAttributes;
    recovered_or->tables()[0].WriteCell(base + 8, 1000);  // world-tick cell
    auto resumed_or = game::GameShardAdapter::OpenResumed(
        config, std::move(recovered_or).value());
    EXPECT_EQ(resumed_or.status().code(), StatusCode::kCorruption);
  }
}

}  // namespace
}  // namespace tickpoint
