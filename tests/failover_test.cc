// Hot failover via in-memory cross-shard delta replication: each
// partition's per-tick delta streams to a peer shard's bounded
// ReplicaBuffer, and FailoverShard revives a crashed shard from that
// buffer -- byte-identical to what disk recovery would produce, which is
// exactly what these tests pin: every peer-memory rebuild is compared
// against a disk-recovered oracle taken BEFORE the failover touched the
// shard directory, plus the test's own mirrored reference tables. The
// fallback matrix (torn buffer, dead peer, replication off) and the
// replication-knob validation ride along.
#include "engine/fleet.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "engine/mutator.h"
#include "engine/recovery.h"
#include "engine/replica_buffer.h"
#include "engine/sharded_engine.h"
#include "fleet_test_util.h"

namespace tickpoint {
namespace {

StateLayout ShardLayout() { return StateLayout::Small(512, 10); }  // 40 objects

constexpr uint64_t kUpdatesPerTick = 150;

class FailoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string name(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    for (auto& c : name) {
      if (c == '/') c = '_';
    }
    dir_ = (std::filesystem::temp_directory_path() / ("tp_failover_" + name))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  ShardedEngineConfig Config(uint32_t num_shards, bool threaded = true,
                             IoBackendKind io = IoBackendKind::kSync) {
    ShardedEngineConfig config;
    config.shard.layout = ShardLayout();
    config.shard.algorithm = AlgorithmKind::kCopyOnUpdate;
    config.shard.dir = dir_;
    config.shard.fsync = false;  // simulated crashes: page cache is durable
    config.shard.full_flush_period = 3;
    config.shard.io_backend = io;
    config.num_shards = num_shards;
    config.checkpoint_period_ticks = 5;
    config.threaded = threaded;
    config.replicate = true;
    return config;
  }

  /// Drives `ticks` fleet ticks of the deterministic workload from the
  /// engine's current tick, mirroring every update into `reference`.
  void RunTicks(ShardedEngine* engine, uint64_t ticks,
                std::vector<StateTable>* reference) {
    const uint64_t num_cells = ShardLayout().num_cells();
    if (reference->empty()) {
      for (uint32_t i = 0; i < engine->num_shards(); ++i) {
        reference->emplace_back(ShardLayout());
      }
    }
    for (uint64_t t = 0; t < ticks; ++t) {
      const uint64_t tick = engine->current_tick();
      engine->BeginTick();
      for (uint32_t shard = 0; shard < engine->num_shards(); ++shard) {
        for (uint64_t i = 0; i < kUpdatesPerTick; ++i) {
          const uint32_t cell = WorkloadCell(shard, tick, i, num_cells);
          const int32_t value = WorkloadValue(tick, cell, i);
          engine->ApplyUpdate(shard, cell, value);
          (*reference)[shard].WriteCell(cell, value);
        }
      }
      ASSERT_TRUE(engine->EndTick().ok());
    }
  }

  /// Disk-recovers partition `p`'s state from its shard directory (the
  /// oracle a peer-memory rebuild must byte-match). Must run BEFORE
  /// FailoverShard, whose bootstrap checkpoint rewrites the directory.
  StateTable DiskOracle(const ShardedEngineConfig& config,
                        const ShardedEngine& engine, uint32_t p,
                        uint64_t expect_ticks) {
    EngineConfig shard_config = config.shard;
    shard_config.dir =
        ShardedEngine::ShardDir(config.shard.dir, engine.manifest().assignment[p]);
    shard_config.manual_checkpoints = true;
    StateTable table(config.shard.layout);
    auto result_or = Recover(shard_config, &table);
    EXPECT_TRUE(result_or.ok()) << result_or.status().ToString();
    if (result_or.ok()) {
      EXPECT_EQ(result_or.value().recovered_ticks, expect_ticks)
          << "disk oracle for partition " << p;
    }
    return table;
  }

  std::string dir_;
};

// ---- Crash-at-every-tick sweep ----

struct SweepCase {
  uint32_t num_shards;
  bool threaded;
  IoBackendKind io;
};

class FailoverSweepTest : public FailoverTest,
                          public ::testing::WithParamInterface<SweepCase> {};

TEST_P(FailoverSweepTest, CrashEveryTickRecoversFromPeerMemory) {
  const SweepCase param = GetParam();
  for (uint64_t crash_tick = 1; crash_tick <= 8; ++crash_tick) {
    SCOPED_TRACE("crash_tick=" + std::to_string(crash_tick));
    std::filesystem::remove_all(dir_);
    const auto config = Config(param.num_shards, param.threaded, param.io);
    auto fleet_or = Fleet::Create(config.shard.dir, config);
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    Fleet& fleet = *fleet_or.value();
    ShardedEngine& engine = fleet.engine();
    std::vector<StateTable> reference;
    RunTicks(&engine, crash_tick, &reference);

    const uint32_t victim =
        static_cast<uint32_t>(crash_tick % param.num_shards);
    ASSERT_TRUE(fleet.SimulateShardCrash(victim).ok());
    // The disk oracle first: peer-memory recovery must be byte-identical
    // to what a disk replay of the dead shard would have produced.
    StateTable oracle = DiskOracle(config, engine, victim, crash_tick);
    ASSERT_TRUE(oracle.ContentEquals(reference[victim]));
    const uint64_t oracle_digest = oracle.Digest();

    ASSERT_TRUE(fleet.FailoverShard(victim).ok());
    const FailoverReport& report = fleet.last_failover_report();
    EXPECT_TRUE(report.used_peer_memory)
        << "peer buffer did not cover tick " << crash_tick;
    EXPECT_EQ(report.partition, victim);
    EXPECT_EQ(report.rebuilt_ticks, crash_tick);
    ASSERT_TRUE(engine.WaitForIdle().ok());
    EXPECT_EQ(engine.shard(victim).state().Digest(), oracle_digest);
    EXPECT_TRUE(engine.shard(victim).state().ContentEquals(oracle));

    // The revived fleet keeps playing; a later whole-fleet crash recovers
    // everything (the bootstrap checkpoint outranks pre-crash images).
    RunTicks(&engine, 4, &reference);
    ASSERT_TRUE(fleet.SimulateCrash().ok());
    auto recovered_or = Fleet::Recover(config.shard.dir);
    ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
    ASSERT_EQ(recovered_or->result().fleet.min_recovered_ticks,
              crash_tick + 4);
    for (uint32_t i = 0; i < param.num_shards; ++i) {
      EXPECT_TRUE(recovered_or->tables()[i].ContentEquals(reference[i]))
          << "shard " << i;
    }
  }
}

std::string SweepCaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  return "K" + std::to_string(info.param.num_shards) +
         (info.param.threaded ? "" : "_inline") + "_" +
         IoBackendKindName(info.param.io);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FailoverSweepTest,
    ::testing::ValuesIn(std::vector<SweepCase>{
        {2, true, IoBackendKind::kSync},
        {2, false, IoBackendKind::kSync},
        {2, true, IoBackendKind::kAsync},
        {4, true, IoBackendKind::kSync},
        {4, false, IoBackendKind::kAsync},
        {4, true, IoBackendKind::kAsync},
    }),
    SweepCaseName);

// ---- Fallback matrix ----

TEST_F(FailoverTest, TornReplicaBufferFallsBackToDisk) {
  const auto config = Config(3);
  auto fleet_or = Fleet::Create(config.shard.dir, config);
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  Fleet& fleet = *fleet_or.value();
  ShardedEngine& engine = fleet.engine();
  std::vector<StateTable> reference;
  RunTicks(&engine, 6, &reference);
  ASSERT_TRUE(fleet.SimulateShardCrash(1).ok());
  // Tear the replica (as if the host had restarted and lost the ring).
  ReplicaBuffer* buffer = engine.replica_buffer(1);
  ASSERT_NE(buffer, nullptr);
  buffer->MarkTorn();
  ASSERT_TRUE(fleet.FailoverShard(1).ok());
  EXPECT_FALSE(fleet.last_failover_report().used_peer_memory);
  ASSERT_TRUE(engine.WaitForIdle().ok());
  EXPECT_TRUE(engine.shard(1).state().ContentEquals(reference[1]));
  // The disk-path failover re-anchored the buffer: the NEXT death takes
  // the fast path again.
  RunTicks(&engine, 3, &reference);
  ASSERT_TRUE(fleet.SimulateShardCrash(1).ok());
  ASSERT_TRUE(fleet.FailoverShard(1).ok());
  EXPECT_TRUE(fleet.last_failover_report().used_peer_memory);
  ASSERT_TRUE(engine.WaitForIdle().ok());
  EXPECT_TRUE(engine.shard(1).state().ContentEquals(reference[1]));
}

TEST_F(FailoverTest, AFailedFailoverNeverExposesTheLastReport) {
  // Regression: FailoverShard populated last_failover_report_ only on
  // success, so an ERROR return left the PREVIOUS failover's report in
  // place -- a monitoring caller reading the report after a failed
  // failover saw a stale "rebuilt from peer memory in N ms" for a shard
  // that is in fact still dead. The report must reset to a blank at
  // entry, so error paths expose nothing.
  const auto config = Config(2);
  auto fleet_or = Fleet::Create(config.shard.dir, config);
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  Fleet& fleet = *fleet_or.value();
  ShardedEngine& engine = fleet.engine();
  std::vector<StateTable> reference;
  RunTicks(&engine, 5, &reference);
  // First death: the happy peer-memory path fills the report.
  ASSERT_TRUE(fleet.SimulateShardCrash(0).ok());
  ASSERT_TRUE(fleet.FailoverShard(0).ok());
  ASSERT_TRUE(fleet.last_failover_report().used_peer_memory);
  ASSERT_GT(fleet.last_failover_report().rebuilt_ticks, 0u);
  RunTicks(&engine, 3, &reference);

  // Second death with BOTH paths destroyed: tear the replica (memory
  // path) and delete the shard directory (disk fallback).
  ASSERT_TRUE(fleet.SimulateShardCrash(0).ok());
  ASSERT_NE(engine.replica_buffer(0), nullptr);
  engine.replica_buffer(0)->MarkTorn();
  std::filesystem::remove_all(
      ShardedEngine::ShardDir(config.shard.dir, engine.manifest().assignment[0]));
  EXPECT_FALSE(fleet.FailoverShard(0).ok());
  EXPECT_FALSE(fleet.last_failover_report().used_peer_memory)
      << "the failed failover leaked the previous success's report";
  EXPECT_EQ(fleet.last_failover_report().rebuilt_ticks, 0u);
  EXPECT_EQ(fleet.last_failover_report().rebuild_seconds, 0.0);
  // The fleet (one partition permanently dead) still tears down safely.
}

TEST_F(FailoverTest, DeadPeerFallsBackToDiskThenReArms) {
  // K=2 double death: both shards down, both replicas lost (each hosted
  // the other's). Both failovers must fall back to disk; once both are
  // back, the re-anchored buffers serve the next death from memory.
  const auto config = Config(2);
  auto fleet_or = Fleet::Create(config.shard.dir, config);
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  Fleet& fleet = *fleet_or.value();
  ShardedEngine& engine = fleet.engine();
  std::vector<StateTable> reference;
  RunTicks(&engine, 7, &reference);
  ASSERT_TRUE(fleet.SimulateShardCrash(0).ok());
  ASSERT_TRUE(fleet.SimulateShardCrash(1).ok());
  ASSERT_TRUE(fleet.FailoverShard(0).ok());
  EXPECT_FALSE(fleet.last_failover_report().used_peer_memory)
      << "host of partition 0's replica was dead; memory path impossible";
  ASSERT_TRUE(fleet.FailoverShard(1).ok());
  EXPECT_FALSE(fleet.last_failover_report().used_peer_memory)
      << "partition 1's replica was recreated torn while its source was "
         "down";
  ASSERT_TRUE(engine.WaitForIdle().ok());
  EXPECT_TRUE(engine.shard(0).state().ContentEquals(reference[0]));
  EXPECT_TRUE(engine.shard(1).state().ContentEquals(reference[1]));
  RunTicks(&engine, 3, &reference);
  ASSERT_TRUE(fleet.SimulateShardCrash(0).ok());
  ASSERT_TRUE(fleet.FailoverShard(0).ok());
  EXPECT_TRUE(fleet.last_failover_report().used_peer_memory);
  ASSERT_TRUE(engine.WaitForIdle().ok());
  EXPECT_TRUE(engine.shard(0).state().ContentEquals(reference[0]));
}

TEST_F(FailoverTest, ReplicationOffStillFailsOverFromDisk) {
  auto config = Config(2);
  config.replicate = false;
  auto fleet_or = Fleet::Create(config.shard.dir, config);
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  Fleet& fleet = *fleet_or.value();
  ShardedEngine& engine = fleet.engine();
  EXPECT_EQ(engine.replica_buffer(0), nullptr);
  std::vector<StateTable> reference;
  RunTicks(&engine, 5, &reference);
  ASSERT_TRUE(fleet.SimulateShardCrash(0).ok());
  ASSERT_TRUE(fleet.FailoverShard(0).ok());
  EXPECT_FALSE(fleet.last_failover_report().used_peer_memory);
  ASSERT_TRUE(engine.WaitForIdle().ok());
  EXPECT_TRUE(engine.shard(0).state().ContentEquals(reference[0]));
  RunTicks(&engine, 3, &reference);
  ASSERT_TRUE(engine.WaitForIdle().ok());
  EXPECT_TRUE(engine.shard(0).state().ContentEquals(reference[0]));
}

// ---- Replica-ring bounds and trim-at-cut ----

TEST_F(FailoverTest, BoundedRingFoldsAndTrimsAtCommittedCuts) {
  auto config = Config(2);
  config.replica_depth = 4;
  auto fleet_or = Fleet::Create(config.shard.dir, config);
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  Fleet& fleet = *fleet_or.value();
  ShardedEngine& engine = fleet.engine();
  std::vector<StateTable> reference;
  RunTicks(&engine, 11, &reference);
  ASSERT_TRUE(engine.WaitForIdle().ok());
  ReplicaBuffer* buffer = engine.replica_buffer(0);
  ASSERT_NE(buffer, nullptr);
  // Overflow folded the ring down to its depth; coverage never lapsed.
  EXPECT_LE(buffer->size(), 4u);
  EXPECT_EQ(buffer->consistent_ticks(), 11u);
  EXPECT_FALSE(buffer->torn());

  // A committed cut trims eagerly: the batches at or below the cut fold
  // into the base on the next tick, regardless of depth.
  auto cut_or = fleet.RequestConsistentCut();
  ASSERT_TRUE(cut_or.ok()) << cut_or.status().ToString();
  const uint64_t cut_tick = cut_or.value();
  while (engine.current_tick() <= cut_tick) {
    RunTicks(&engine, 1, &reference);
  }
  ASSERT_TRUE(fleet.CommitConsistentCut().ok());
  RunTicks(&engine, 1, &reference);  // the batch carrying the trim
  ASSERT_TRUE(engine.WaitForIdle().ok());
  // The trim folds every COMMITTED batch at or below the cut; the cut
  // tick's own batch may still be the prepared tip, so the anchor lands
  // at (at least) the cut tick itself -- far past what depth-4 overflow
  // folding alone would have reached.
  EXPECT_GE(buffer->anchor_ticks(), cut_tick)
      << "ring was not trimmed at the committed cut";
  EXPECT_EQ(buffer->consistent_ticks(), engine.current_tick());

  // And the buffer still fails over correctly after all that folding.
  ASSERT_TRUE(fleet.SimulateShardCrash(0).ok());
  ASSERT_TRUE(fleet.FailoverShard(0).ok());
  EXPECT_TRUE(fleet.last_failover_report().used_peer_memory);
  ASSERT_TRUE(engine.WaitForIdle().ok());
  EXPECT_TRUE(engine.shard(0).state().ContentEquals(reference[0]));
}

// ---- Failover survives a fleet restart (manifest-carried topology) ----

TEST_F(FailoverTest, FailoverWorksAfterFleetReopen) {
  const auto config = Config(3);
  {
    auto fleet_or = Fleet::Create(config.shard.dir, config);
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    std::vector<StateTable> scratch;
    RunTicks(&fleet_or.value()->engine(), 5, &scratch);
    ASSERT_TRUE(fleet_or.value()->SimulateCrash().ok());
  }
  // Reopen from the root alone: the manifest carries replicate,
  // replica_depth, and the active-replica designation.
  auto fleet_or = Fleet::Open(config.shard.dir);
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  Fleet& fleet = *fleet_or.value();
  ASSERT_TRUE(fleet.manifest().replicate);
  EXPECT_EQ(fleet.manifest().replica_depth, config.replica_depth);
  ASSERT_EQ(fleet.manifest().replica_peer.size(), 3u);
  ShardedEngine& engine = fleet.engine();
  std::vector<StateTable> reference;
  // Rebuild the reference from the recovered state, then keep playing.
  for (uint32_t i = 0; i < 3; ++i) {
    reference.push_back(StateTable(ShardLayout()));
  }
  ASSERT_TRUE(engine.WaitForIdle().ok());
  for (uint32_t i = 0; i < 3; ++i) {
    std::memcpy(reference[i].mutable_data(), engine.shard(i).state().data(),
                reference[i].buffer_bytes());
  }
  RunTicks(&engine, 4, &reference);
  ASSERT_TRUE(fleet.SimulateShardCrash(2).ok());
  ASSERT_TRUE(fleet.FailoverShard(2).ok());
  EXPECT_TRUE(fleet.last_failover_report().used_peer_memory);
  ASSERT_TRUE(engine.WaitForIdle().ok());
  EXPECT_TRUE(engine.shard(2).state().ContentEquals(reference[2]));
}

// ---- Preconditions and knob validation ----

TEST_F(FailoverTest, CrashAndFailoverPreconditions) {
  const auto config = Config(2);
  auto fleet_or = Fleet::Create(config.shard.dir, config);
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  Fleet& fleet = *fleet_or.value();
  std::vector<StateTable> reference;
  RunTicks(&fleet.engine(), 3, &reference);

  EXPECT_EQ(fleet.SimulateShardCrash(9).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fleet.FailoverShard(9).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fleet.FailoverShard(0).code(),
            StatusCode::kFailedPrecondition)
      << "failover of a live shard must be refused";

  // A cut in flight blocks crash injection...
  auto cut_or = fleet.RequestConsistentCut();
  ASSERT_TRUE(cut_or.ok());
  EXPECT_EQ(fleet.SimulateShardCrash(0).code(),
            StatusCode::kFailedPrecondition);
  while (fleet.current_tick() <= cut_or.value()) {
    RunTicks(&fleet.engine(), 1, &reference);
  }
  ASSERT_TRUE(fleet.CommitConsistentCut().ok());

  // ...and a crashed shard blocks cuts, migration, and double-crash.
  ASSERT_TRUE(fleet.SimulateShardCrash(0).ok());
  EXPECT_EQ(fleet.SimulateShardCrash(0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(fleet.RequestConsistentCut().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(fleet.MigratePartition(1, 5).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(fleet.FailoverShard(0).ok());
  RunTicks(&fleet.engine(), 2, &reference);
}

TEST_F(FailoverTest, CreateValidatesReplicationKnobs) {
  {
    auto config = Config(2);
    config.replica_depth = 0;
    EXPECT_EQ(Fleet::Create(dir_, config).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    auto config = Config(2);
    config.replica_peer = {1, 1};  // partition 1 self-peered
    EXPECT_EQ(Fleet::Create(dir_, config).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    auto config = Config(2);
    config.replica_peer = {1, 7};  // out of range
    EXPECT_EQ(Fleet::Create(dir_, config).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    auto config = Config(2);
    config.replica_peer = {1};  // wrong size
    EXPECT_EQ(Fleet::Create(dir_, config).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    auto config = Config(1);
    EXPECT_EQ(Fleet::Create(dir_, config).status().code(),
              StatusCode::kInvalidArgument)
        << "a 1-shard fleet has nowhere to host a replica";
  }
  // And a VALID explicit (non-ring) designation is accepted.
  {
    auto config = Config(3);
    config.replica_peer = {2, 0, 1};  // reverse ring
    auto fleet_or = Fleet::Create(dir_, config);
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    EXPECT_EQ(fleet_or.value()->manifest().replica_peer,
              (std::vector<uint32_t>{2, 0, 1}));
    std::vector<StateTable> reference;
    RunTicks(&fleet_or.value()->engine(), 4, &reference);
    ASSERT_TRUE(fleet_or.value()->SimulateShardCrash(0).ok());
    ASSERT_TRUE(fleet_or.value()->FailoverShard(0).ok());
    EXPECT_TRUE(fleet_or.value()->last_failover_report().used_peer_memory);
  }
}

TEST_F(FailoverTest, OpenRefusesAForgedSelfPeeredManifest) {
  // The read path's structural validation (Corruption) deliberately does
  // NOT reject self-peering -- a structurally corrupt newest manifest
  // would silently fall back to the previous epoch. Instead the Open path
  // surfaces InvalidArgument through the same validation Create uses.
  const auto config = Config(2);
  {
    auto fleet_or = Fleet::Create(dir_, config);
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    std::vector<StateTable> scratch;
    RunTicks(&fleet_or.value()->engine(), 3, &scratch);
    ASSERT_TRUE(fleet_or.value()->Shutdown().ok());
  }
  auto manifest_or = ReadNewestFleetManifest(dir_);
  ASSERT_TRUE(manifest_or.ok()) << manifest_or.status().ToString();
  FleetManifest forged = manifest_or.value();
  forged.epoch += 1;
  forged.replica_peer = {0, 1};  // both self-peered, CRC-valid
  ASSERT_TRUE(WriteFleetManifest(dir_, forged, /*fsync=*/false).ok());
  EXPECT_EQ(Fleet::Open(dir_).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tickpoint
