// Load-driven auto-rebalancing (rebalancer.h): the policy that watches
// per-partition dirty-mark rates and moves a hot partition to a freshly
// spawned shard slot -- optionally on a different disk -- through the
// committed-cut migration protocol, all from Fleet::EndTick. These tests
// pin the detector's determinism (inline mode scripts the exact decision
// boundary), every anti-oscillation guard (hysteresis, warmup, cooldown,
// min-marks floor, never-re-migrate), the stand-down around user cuts,
// the v3 mount-root landing, the scheduler EWMA reset on migration, the
// failover-after-rebalance replica re-anchor, and -- the acceptance
// sweep -- a crash at EVERY step of the automated decide -> cut ->
// commit+migrate timeline recovering to a digest-equal fleet.
#include "engine/rebalancer.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "engine/fleet.h"
#include "engine/mutator.h"
#include "engine/paths.h"
#include "engine/recovery.h"
#include "engine/replica_buffer.h"
#include "engine/sharded_engine.h"
#include "fleet_test_util.h"
#include "util/io_backend.h"

namespace tickpoint {
namespace {

StateLayout ShardLayout() { return StateLayout::Small(384, 10); }

// The skewed battle: the hot partition writes 10x what the others do, so
// its smoothed mark rate clears any imbalance_ratio below 10.
constexpr uint64_t kHotUpdates = 200;
constexpr uint64_t kColdUpdates = 20;

class RebalancerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string name(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    for (auto& c : name) {
      if (c == '/') c = '_';
    }
    dir_ = (std::filesystem::temp_directory_path() / ("tp_rebal_" + name))
               .string();
    mount_ = dir_ + "_mount";
    std::filesystem::remove_all(dir_);
    std::filesystem::remove_all(mount_);
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    std::filesystem::remove_all(mount_);
  }

  ShardedEngineConfig Config(uint32_t num_shards, bool threaded = true,
                             IoBackendKind io = IoBackendKind::kSync) {
    ShardedEngineConfig config;
    config.shard.layout = ShardLayout();
    config.shard.algorithm = AlgorithmKind::kCopyOnUpdate;
    config.shard.fsync = false;  // simulated crashes: page cache is durable
    config.shard.full_flush_period = 4;
    config.shard.io_backend = io;
    config.num_shards = num_shards;
    config.checkpoint_period_ticks = 5;
    config.threaded = threaded;
    return config;
  }

  /// A fast-firing detector for tests: decision at the earliest boundary
  /// the guards allow (warmup 2 + hysteresis 2), one migration max.
  RebalancePolicy TestPolicy() {
    RebalancePolicy policy;
    policy.imbalance_ratio = 2.0;
    policy.hysteresis_ticks = 2;
    policy.warmup_ticks = 2;
    policy.cooldown_ticks = 4;
    policy.min_marks_per_tick = 1.0;
    policy.max_migrations = 1;
    return policy;
  }

  /// Drives `ticks` fleet ticks of the deterministic workload with
  /// partition `hot` receiving kHotUpdates updates per tick and every
  /// other partition kColdUpdates, mirroring into `reference`. `hot` out
  /// of range (e.g. UINT32_MAX) makes the load uniform at kColdUpdates.
  void RunSkewedTicks(Fleet* fleet, uint64_t ticks,
                      std::vector<StateTable>* reference, uint32_t hot) {
    const uint64_t num_cells = ShardLayout().num_cells();
    if (reference->empty()) {
      for (uint32_t i = 0; i < fleet->num_partitions(); ++i) {
        reference->emplace_back(ShardLayout());
      }
    }
    for (uint64_t t = 0; t < ticks; ++t) {
      const uint64_t tick = fleet->current_tick();
      fleet->BeginTick();
      for (uint32_t p = 0; p < fleet->num_partitions(); ++p) {
        const uint64_t updates = p == hot ? kHotUpdates : kColdUpdates;
        for (uint64_t i = 0; i < updates; ++i) {
          const uint32_t cell = WorkloadCell(p, tick, i, num_cells);
          const int32_t value = WorkloadValue(tick, cell, i);
          fleet->ApplyUpdate(p, cell, value);
          (*reference)[p].WriteCell(cell, value);
        }
      }
      ASSERT_TRUE(fleet->EndTick().ok());
    }
  }

  /// Runs skewed ticks until the rebalancer commits its first migration,
  /// bounded by `max_ticks`. Paced: each tick waits for the runners to
  /// apply its batch, so every boundary is informative to the detector
  /// (an unpaced threaded loop can outrun the runners indefinitely, and
  /// the detector -- correctly -- learns nothing from such boundaries).
  void RunUntilMigrated(Fleet* fleet, std::vector<StateTable>* reference,
                        uint32_t hot, uint64_t max_ticks = 60) {
    for (uint64_t t = 0;
         t < max_ticks && fleet->rebalancer()->migrations() == 0; ++t) {
      RunSkewedTicks(fleet, 1, reference, hot);
      ASSERT_TRUE(fleet->WaitForIdle().ok());
    }
    ASSERT_EQ(fleet->rebalancer()->migrations(), 1u)
        << "skewed battle never triggered a migration in " << max_ticks
        << " ticks";
  }

  std::string dir_;
  std::string mount_;
};

TEST_F(RebalancerTest, EnableAutoRebalanceValidatesThePolicy) {
  auto fleet_or = Fleet::Create(dir_, Config(2));
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  Fleet& fleet = *fleet_or.value();
  EXPECT_EQ(fleet.rebalancer(), nullptr);
  {
    RebalancePolicy policy = TestPolicy();
    policy.imbalance_ratio = 1.0;  // "hotter than 1x the mean" is everything
    EXPECT_EQ(fleet.EnableAutoRebalance(policy).code(),
              StatusCode::kInvalidArgument);
  }
  {
    RebalancePolicy policy = TestPolicy();
    policy.hysteresis_ticks = 0;  // no streak: one noisy sample migrates
    EXPECT_EQ(fleet.EnableAutoRebalance(policy).code(),
              StatusCode::kInvalidArgument);
  }
  {
    RebalancePolicy policy = TestPolicy();
    policy.ewma_alpha = 1.5;
    EXPECT_EQ(fleet.EnableAutoRebalance(policy).code(),
              StatusCode::kInvalidArgument);
  }
  EXPECT_EQ(fleet.rebalancer(), nullptr)
      << "a refused policy must not install a rebalancer";
  ASSERT_TRUE(fleet.EnableAutoRebalance(TestPolicy()).ok());
  ASSERT_NE(fleet.rebalancer(), nullptr);
  EXPECT_EQ(fleet.rebalancer()->migrations(), 0u);
  fleet.DisableAutoRebalance();
  EXPECT_EQ(fleet.rebalancer(), nullptr);
  ASSERT_TRUE(fleet_or.value()->Shutdown().ok());
}

TEST_F(RebalancerTest, InlineSkewMigratesAtTheEarliestLegalBoundary) {
  // Inline mode is fully deterministic: the mark deltas at each boundary
  // are exactly the tick's update counts, so the whole decide -> cut ->
  // migrate timeline is scripted. warmup 2 + hysteresis 2 => the decision
  // fires at boundary 4 (the earliest the guards allow -- "within the
  // hysteresis window"), the cut lands at 4 + cut_lead(2) = 6, and the
  // migration commits at boundary 7.
  auto fleet_or = Fleet::Create(dir_, Config(2, /*threaded=*/false));
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  Fleet& fleet = *fleet_or.value();
  const RebalancePolicy policy = TestPolicy();
  ASSERT_TRUE(fleet.EnableAutoRebalance(policy).ok());

  std::vector<StateTable> reference;
  RunSkewedTicks(&fleet, 5, &reference, /*hot=*/1);
  EXPECT_TRUE(fleet.rebalancer()->migration_pending())
      << "decision boundary 4 should have armed the rebalancer's cut";
  EXPECT_EQ(fleet.engine().pending_cut_tick(), 6u);
  EXPECT_GE(fleet.rebalancer()->RatePerTick(1),
            static_cast<double>(kHotUpdates) - 1.0);

  RunSkewedTicks(&fleet, 2, &reference, /*hot=*/1);
  // The state at the cut (end of tick 6) is exactly the reference now.
  std::vector<StateTable> reference_at_cut = SnapshotTables(reference);
  ASSERT_EQ(fleet.rebalancer()->migrations(), 1u);
  EXPECT_FALSE(fleet.rebalancer()->migration_pending());
  const RebalanceEvent& event = fleet.rebalancer()->last_event();
  EXPECT_EQ(event.partition, 1u);
  EXPECT_EQ(event.to_slot, 2u) << "the target must be a freshly spawned slot";
  EXPECT_EQ(event.decided_tick, policy.warmup_ticks + policy.hysteresis_ticks);
  EXPECT_EQ(event.cut_tick, 6u);
  EXPECT_GT(event.hot_ratio, policy.imbalance_ratio);
  EXPECT_EQ(fleet.epoch(), 1u);
  EXPECT_EQ(fleet.engine().SlotOfPartition(1), 2u);
  EXPECT_EQ(fleet.last_migration_report().first_tick_on_new_shard, 7u);

  // The fleet keeps playing across the automated boundary; a crash then
  // recovers the migrated topology with exact state, and the committed
  // cut stays reproducible on the new topology.
  RunSkewedTicks(&fleet, 5, &reference, /*hot=*/1);
  ASSERT_TRUE(fleet.SimulateCrash().ok());
  auto recovered_or = Fleet::Recover(dir_);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  EXPECT_EQ(recovered_or.value().manifest().epoch, 1u);
  EXPECT_EQ(recovered_or.value().manifest().assignment,
            (std::vector<uint32_t>{0, 2}));
  for (uint32_t p = 0; p < 2; ++p) {
    EXPECT_TRUE(recovered_or.value().tables()[p].ContentEquals(reference[p]))
        << "partition " << p;
  }
  auto at_cut_or = Fleet::RecoverToCut(dir_);
  ASSERT_TRUE(at_cut_or.ok()) << at_cut_or.status().ToString();
  EXPECT_TRUE(at_cut_or.value().at_cut());
  EXPECT_EQ(at_cut_or.value().result().cut_tick, 6u);
  for (uint32_t p = 0; p < 2; ++p) {
    EXPECT_TRUE(
        at_cut_or.value().tables()[p].ContentEquals(reference_at_cut[p]))
        << "partition " << p << " at the cut";
  }
}

TEST_F(RebalancerTest, UniformLoadNeverTriggersARebalance) {
  auto fleet_or = Fleet::Create(dir_, Config(3));
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  Fleet& fleet = *fleet_or.value();
  ASSERT_TRUE(fleet.EnableAutoRebalance(TestPolicy()).ok());
  std::vector<StateTable> reference;
  RunSkewedTicks(&fleet, 20, &reference, /*hot=*/UINT32_MAX);  // uniform
  EXPECT_EQ(fleet.rebalancer()->migrations(), 0u);
  EXPECT_FALSE(fleet.rebalancer()->migration_pending());
  EXPECT_EQ(fleet.epoch(), 0u);
  ASSERT_TRUE(fleet.Shutdown().ok());
}

TEST_F(RebalancerTest, AnIdleFleetNeverLooksImbalanced) {
  // A 4-vs-0 split is an infinite ratio, but 4 marks per tick is noise,
  // not load: the min_marks_per_tick floor must keep the fleet in place.
  auto fleet_or = Fleet::Create(dir_, Config(2, /*threaded=*/false));
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  Fleet& fleet = *fleet_or.value();
  RebalancePolicy policy = TestPolicy();
  policy.min_marks_per_tick = 50.0;
  ASSERT_TRUE(fleet.EnableAutoRebalance(policy).ok());
  std::vector<StateTable> reference;
  for (uint64_t t = 0; t < 12; ++t) {
    fleet.BeginTick();
    for (uint32_t i = 0; i < 4; ++i) {
      fleet.ApplyUpdate(0, i, static_cast<int32_t>(t));
    }
    ASSERT_TRUE(fleet.EndTick().ok());
  }
  EXPECT_EQ(fleet.rebalancer()->migrations(), 0u);
  EXPECT_FALSE(fleet.rebalancer()->migration_pending());
  ASSERT_TRUE(fleet.Shutdown().ok());
}

TEST_F(RebalancerTest, StandsDownWhileAUserCutIsInFlight) {
  // A user-armed cut freezes the detector (no second cut may be armed);
  // once the user commits, the still-warm streaks fire on the next legal
  // boundary and the automated migration proceeds.
  auto fleet_or = Fleet::Create(dir_, Config(2, /*threaded=*/false));
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  Fleet& fleet = *fleet_or.value();
  ASSERT_TRUE(fleet.EnableAutoRebalance(TestPolicy()).ok());
  std::vector<StateTable> reference;
  RunSkewedTicks(&fleet, 3, &reference, /*hot=*/1);  // one boundary short
  auto cut_or = fleet.RequestConsistentCut();
  ASSERT_TRUE(cut_or.ok()) << cut_or.status().ToString();
  while (fleet.current_tick() <= cut_or.value()) {
    RunSkewedTicks(&fleet, 1, &reference, /*hot=*/1);
    EXPECT_FALSE(fleet.rebalancer()->migration_pending())
        << "the detector must stand down while the user's cut is armed";
  }
  ASSERT_TRUE(fleet.CommitConsistentCut().ok());
  EXPECT_EQ(fleet.rebalancer()->migrations(), 0u);
  RunSkewedTicks(&fleet, 6, &reference, /*hot=*/1);
  EXPECT_EQ(fleet.rebalancer()->migrations(), 1u);
  EXPECT_EQ(fleet.engine().SlotOfPartition(1), 2u);
  RunSkewedTicks(&fleet, 3, &reference, /*hot=*/1);
  ASSERT_TRUE(fleet.SimulateCrash().ok());
  auto recovered_or = Fleet::Recover(dir_);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  for (uint32_t p = 0; p < 2; ++p) {
    EXPECT_TRUE(recovered_or.value().tables()[p].ContentEquals(reference[p]))
        << "partition " << p;
  }
}

TEST_F(RebalancerTest, NeverRemigratesAHotPartition) {
  // Even with no migration cap and a zero cooldown, a partition moves at
  // most ONCE per rebalancer lifetime -- the strongest anti-thrash
  // guarantee. The skew stays on partition 1 the whole run; after its
  // move the fleet must simply live with the imbalance.
  auto fleet_or = Fleet::Create(dir_, Config(2, /*threaded=*/false));
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  Fleet& fleet = *fleet_or.value();
  RebalancePolicy policy = TestPolicy();
  policy.max_migrations = 0;  // unlimited
  policy.cooldown_ticks = 0;
  ASSERT_TRUE(fleet.EnableAutoRebalance(policy).ok());
  std::vector<StateTable> reference;
  RunSkewedTicks(&fleet, 30, &reference, /*hot=*/1);
  EXPECT_EQ(fleet.rebalancer()->migrations(), 1u);
  EXPECT_EQ(fleet.epoch(), 1u);
  EXPECT_EQ(fleet.rebalancer()->HotStreak(1), 0u)
      << "a migrated partition must never re-enter the hot streak";
  ASSERT_TRUE(fleet.Shutdown().ok());
}

TEST_F(RebalancerTest, SpawnMountRootLandsTheMigrationOnAnotherDisk) {
  // The v3 manifest end-to-end: the automated migration's destination
  // directory lives under the policy's mount root, the manifest records
  // the override durably, and BOTH recovery paths plus a full reopen
  // resolve the relocated directory from the root alone.
  auto fleet_or = Fleet::Create(dir_, Config(2, /*threaded=*/false));
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  Fleet& fleet = *fleet_or.value();
  RebalancePolicy policy = TestPolicy();
  policy.spawn_mount_root = mount_;
  ASSERT_TRUE(fleet.EnableAutoRebalance(policy).ok());
  std::vector<StateTable> reference;
  RunSkewedTicks(&fleet, 7, &reference, /*hot=*/1);
  ASSERT_EQ(fleet.rebalancer()->migrations(), 1u);
  EXPECT_EQ(fleet.manifest().MountRootOf(1), mount_);
  EXPECT_EQ(fleet.manifest().MountRootOf(0), "");
  EXPECT_TRUE(std::filesystem::is_directory(paths::ShardDir(mount_, 2)))
      << "the spawned slot must live under the mount root";
  EXPECT_FALSE(std::filesystem::exists(paths::ShardDir(dir_, 1)))
      << "the source slot under the fleet root must be retired";
  RunSkewedTicks(&fleet, 4, &reference, /*hot=*/1);
  ASSERT_TRUE(fleet.Shutdown().ok());

  // Reopen from the fleet root ALONE: the manifest's mount entry is the
  // only pointer to the other disk.
  auto reopened_or = Fleet::Open(dir_);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
  Fleet& reopened = *reopened_or.value();
  EXPECT_EQ(reopened.epoch(), 1u);
  EXPECT_EQ(reopened.manifest().MountRootOf(1), mount_);
  ASSERT_TRUE(reopened.WaitForIdle().ok());
  for (uint32_t p = 0; p < 2; ++p) {
    EXPECT_TRUE(reopened.engine().shard(p).state().ContentEquals(reference[p]))
        << "partition " << p;
  }
  RunSkewedTicks(&reopened, 3, &reference, /*hot=*/1);
  ASSERT_TRUE(reopened.SimulateCrash().ok());
  auto recovered_or = Fleet::Recover(dir_);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  EXPECT_EQ(recovered_or.value().manifest().assignment,
            (std::vector<uint32_t>{0, 2}));
  for (uint32_t p = 0; p < 2; ++p) {
    EXPECT_TRUE(recovered_or.value().tables()[p].ContentEquals(reference[p]))
        << "partition " << p;
  }
}

TEST_F(RebalancerTest, MigrationResetsTheSchedulerEwmaState) {
  // Regression (adaptive stagger x migration): MigratePartition used to
  // leave the scheduler's learned write-time EWMAs -- measured on the OLD
  // slot's disk -- attached to the migrated partition, and leaked the
  // disk-budget reservation of any in-flight checkpoint the swap
  // swallowed. The reset must zero the migrated partition's estimates
  // only; the sibling keeps its learning, and the new slot re-learns.
  auto config = Config(2, /*threaded=*/false);
  config.adaptive = true;
  auto fleet_or = Fleet::Create(dir_, config);
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  Fleet& fleet = *fleet_or.value();
  std::vector<StateTable> reference;
  RunSkewedTicks(&fleet, 12, &reference, /*hot=*/1);
  const StaggerScheduler& scheduler = fleet.engine().scheduler();
  ASSERT_GT(scheduler.EwmaWriteSeconds(0), 0.0);
  ASSERT_GT(scheduler.EwmaWriteSeconds(1), 0.0);

  auto cut_or = fleet.RequestConsistentCut();
  ASSERT_TRUE(cut_or.ok()) << cut_or.status().ToString();
  while (fleet.current_tick() <= cut_or.value()) {
    RunSkewedTicks(&fleet, 1, &reference, /*hot=*/1);
  }
  ASSERT_TRUE(fleet.CommitConsistentCut().ok());
  ASSERT_TRUE(fleet.MigratePartition(1, 2).ok());
  EXPECT_EQ(scheduler.EwmaWriteSeconds(1), 0.0)
      << "the migrated partition's write-time estimate describes the old "
         "slot and must be forgotten";
  EXPECT_EQ(scheduler.EwmaTicks(1), 0.0);
  // The sibling checkpoints again at the cut itself, so its estimate
  // moves -- but the reset must not have zeroed it.
  EXPECT_GT(scheduler.EwmaWriteSeconds(0), 0.0)
      << "the sibling's learning must survive the neighbor's migration";
  EXPECT_EQ(scheduler.inflight(), 0u)
      << "a reservation leak: the swallowed in-flight checkpoint's budget "
         "slot was never released";

  // The fresh slot re-learns from its own measurements.
  RunSkewedTicks(&fleet, 12, &reference, /*hot=*/1);
  EXPECT_GT(scheduler.EwmaWriteSeconds(1), 0.0);
  ASSERT_TRUE(fleet.SimulateCrash().ok());
  auto recovered_or = Fleet::Recover(dir_);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  for (uint32_t p = 0; p < 2; ++p) {
    EXPECT_TRUE(recovered_or.value().tables()[p].ContentEquals(reference[p]))
        << "partition " << p;
  }
}

TEST_F(RebalancerTest, FailoverAfterAutoRebalanceRebuildsFromPeerMemory) {
  // The replica topology across an AUTOMATED migration: partition 0's own
  // replica (hosted on partition 1's runner) is re-anchored, and the
  // replica partition 0's runner hosted for partition 2 is re-hosted on
  // the migrated runner. Both subsequent failovers must take the
  // peer-memory path and land digest-equal to the mirrored reference.
  auto config = Config(3, /*threaded=*/true);
  config.replicate = true;
  auto fleet_or = Fleet::Create(dir_, config);
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  Fleet& fleet = *fleet_or.value();
  ASSERT_TRUE(fleet.EnableAutoRebalance(TestPolicy()).ok());
  std::vector<StateTable> reference;
  RunUntilMigrated(&fleet, &reference, /*hot=*/0);
  EXPECT_EQ(fleet.engine().SlotOfPartition(0), 3u);
  EXPECT_EQ(fleet.epoch(), 1u);
  RunSkewedTicks(&fleet, 3, &reference, /*hot=*/0);

  // The migrated partition itself dies: its replica lives on partition
  // 1's runner and was re-anchored at the move.
  ASSERT_TRUE(fleet.SimulateShardCrash(0).ok());
  ASSERT_TRUE(fleet.FailoverShard(0).ok());
  EXPECT_TRUE(fleet.last_failover_report().used_peer_memory)
      << "partition 0's replica must survive its own migration";
  ASSERT_TRUE(fleet.WaitForIdle().ok());
  EXPECT_TRUE(fleet.engine().shard(0).state().ContentEquals(reference[0]));

  RunSkewedTicks(&fleet, 2, &reference, /*hot=*/0);
  // A partition whose replica was HOSTED by the migrated runner dies: the
  // ring default peers partition 2 on partition 0, whose runner was
  // replaced wholesale by the migration.
  ASSERT_EQ(fleet.manifest().replica_peer[2], 0u);
  ASSERT_TRUE(fleet.SimulateShardCrash(2).ok());
  ASSERT_TRUE(fleet.FailoverShard(2).ok());
  EXPECT_TRUE(fleet.last_failover_report().used_peer_memory)
      << "replicas hosted by the migrated runner must be re-hosted";
  ASSERT_TRUE(fleet.WaitForIdle().ok());
  EXPECT_TRUE(fleet.engine().shard(2).state().ContentEquals(reference[2]));

  // And the whole fleet still crash-recovers digest-equal under epoch 1.
  RunSkewedTicks(&fleet, 3, &reference, /*hot=*/0);
  ASSERT_TRUE(fleet.SimulateCrash().ok());
  auto recovered_or = Fleet::Recover(dir_);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  EXPECT_EQ(recovered_or.value().manifest().epoch, 1u);
  for (uint32_t p = 0; p < 3; ++p) {
    EXPECT_TRUE(recovered_or.value().tables()[p].ContentEquals(reference[p]))
        << "partition " << p;
  }
}

// ---- The acceptance sweep: crash at EVERY step of the automated path ----
//
// The rebalancer's whole timeline -- observe, decide (cut request), wait
// for the cut tick, commit + migrate + v3 manifest commit, keep playing --
// advances one step per fleet tick. Crashing after EVERY prefix must
// recover a fleet whose topology equals what the live fleet reported just
// before the crash, with per-partition state exactly equal to the
// deterministic reference. Inline cases additionally pin the scripted
// timeline (migration committed exactly at boundary 7); threaded and
// async-IO cases cover the racy facade/runner interleavings.

struct RebalanceCrashCase {
  int crash_after_tick;
  bool threaded;
  IoBackendKind io;
};

class RebalanceCrashSweepTest
    : public RebalancerTest,
      public ::testing::WithParamInterface<RebalanceCrashCase> {};

TEST_P(RebalanceCrashSweepTest, RecoversTopologyAndExactState) {
  const RebalanceCrashCase param = GetParam();
  const auto config = Config(2, param.threaded, param.io);
  std::vector<StateTable> reference;
  uint64_t pre_epoch = 0;
  std::vector<uint32_t> pre_assignment;
  uint32_t pre_migrations = 0;
  uint64_t pre_cut_tick = 0;
  {
    auto fleet_or = Fleet::Create(dir_, config);
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    Fleet& fleet = *fleet_or.value();
    ASSERT_TRUE(fleet.EnableAutoRebalance(TestPolicy()).ok());
    RunSkewedTicks(&fleet, static_cast<uint64_t>(param.crash_after_tick),
                   &reference, /*hot=*/1);
    if (!param.threaded) {
      // The inline timeline is scripted: decision at boundary 4, cut at
      // tick 6, commit+migrate at boundary 7.
      EXPECT_EQ(fleet.rebalancer()->migrations(),
                param.crash_after_tick >= 7 ? 1u : 0u);
    }
    pre_epoch = fleet.epoch();
    pre_assignment = fleet.manifest().assignment;
    pre_migrations = fleet.rebalancer()->migrations();
    pre_cut_tick = fleet.rebalancer()->last_event().cut_tick;
    ASSERT_TRUE(fleet.SimulateCrash().ok());
  }

  auto recovered_or = Fleet::Recover(dir_);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  RecoveredFleet& recovered = recovered_or.value();
  EXPECT_EQ(recovered.manifest().epoch, pre_epoch);
  EXPECT_EQ(recovered.manifest().assignment, pre_assignment);
  EXPECT_EQ(recovered.result().fleet.min_recovered_ticks,
            static_cast<uint64_t>(param.crash_after_tick));
  ASSERT_EQ(recovered.tables().size(), 2u);
  for (uint32_t p = 0; p < 2; ++p) {
    EXPECT_TRUE(recovered.tables()[p].ContentEquals(reference[p]))
        << "partition " << p << " after a crash at tick "
        << param.crash_after_tick;
  }
  if (pre_migrations > 0) {
    // The automated migration's cut stays reproducible on the new
    // topology, exactly like a manual migration's.
    auto at_cut_or = Fleet::RecoverToCut(dir_);
    ASSERT_TRUE(at_cut_or.ok()) << at_cut_or.status().ToString();
    EXPECT_TRUE(at_cut_or.value().at_cut());
    EXPECT_EQ(at_cut_or.value().result().cut_tick, pre_cut_tick);
  }
}

std::vector<RebalanceCrashCase> AllRebalanceCrashCases() {
  std::vector<RebalanceCrashCase> cases;
  // Inline + sync IO: the deterministic scripted timeline, every step
  // (observe-only, streak-building, cut armed, cut tick, commit+migrate,
  // post-migration play).
  for (int tick = 1; tick <= 10; ++tick) {
    cases.push_back({tick, /*threaded=*/false, IoBackendKind::kSync});
  }
  // Threaded facade over both IO backends at the boundary-adjacent steps
  // (detection timing shifts with runner lag; the sweep's self-consistency
  // checks hold at any step).
  for (int tick : {4, 6, 7, 8, 10}) {
    cases.push_back({tick, /*threaded=*/true, IoBackendKind::kSync});
    cases.push_back({tick, /*threaded=*/true, IoBackendKind::kAsync});
  }
  // Inline + async IO at the commit-adjacent steps.
  for (int tick : {6, 7, 8}) {
    cases.push_back({tick, /*threaded=*/false, IoBackendKind::kAsync});
  }
  return cases;
}

std::string RebalanceCrashCaseName(
    const ::testing::TestParamInfo<RebalanceCrashCase>& info) {
  return "tick" + std::to_string(info.param.crash_after_tick) +
         (info.param.threaded ? "" : "_inline") + "_" +
         IoBackendKindName(info.param.io);
}

INSTANTIATE_TEST_SUITE_P(EveryStep, RebalanceCrashSweepTest,
                         ::testing::ValuesIn(AllRebalanceCrashCases()),
                         RebalanceCrashCaseName);

// The other half of the sweep: the crash is pinned AFTER the migration
// committed (threaded detection timing varies, so the sweep above cannot
// guarantee post-migration coverage there -- this one runs until the
// migration lands, then crashes 0..3 ticks later).
struct PostMigrationCrashCase {
  uint64_t extra_ticks;
  bool threaded;
  IoBackendKind io;
};

class RebalancePostMigrationCrashTest
    : public RebalancerTest,
      public ::testing::WithParamInterface<PostMigrationCrashCase> {};

TEST_P(RebalancePostMigrationCrashTest, RecoversTheMigratedTopology) {
  const PostMigrationCrashCase param = GetParam();
  const auto config = Config(2, param.threaded, param.io);
  std::vector<StateTable> reference;
  uint64_t crash_tick = 0;
  {
    auto fleet_or = Fleet::Create(dir_, config);
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    Fleet& fleet = *fleet_or.value();
    ASSERT_TRUE(fleet.EnableAutoRebalance(TestPolicy()).ok());
    RunUntilMigrated(&fleet, &reference, /*hot=*/1);
    RunSkewedTicks(&fleet, param.extra_ticks, &reference, /*hot=*/1);
    crash_tick = fleet.current_tick();
    ASSERT_TRUE(fleet.SimulateCrash().ok());
  }
  auto recovered_or = Fleet::Recover(dir_);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  EXPECT_EQ(recovered_or.value().manifest().epoch, 1u);
  EXPECT_EQ(recovered_or.value().manifest().assignment,
            (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(recovered_or.value().result().fleet.min_recovered_ticks,
            crash_tick);
  for (uint32_t p = 0; p < 2; ++p) {
    EXPECT_TRUE(recovered_or.value().tables()[p].ContentEquals(reference[p]))
        << "partition " << p;
  }
}

std::string PostMigrationCrashCaseName(
    const ::testing::TestParamInfo<PostMigrationCrashCase>& info) {
  return "plus" + std::to_string(info.param.extra_ticks) +
         (info.param.threaded ? "" : "_inline") + "_" +
         IoBackendKindName(info.param.io);
}

INSTANTIATE_TEST_SUITE_P(
    AfterCommit, RebalancePostMigrationCrashTest,
    ::testing::ValuesIn(std::vector<PostMigrationCrashCase>{
        {0, true, IoBackendKind::kSync},
        {1, true, IoBackendKind::kAsync},
        {2, true, IoBackendKind::kSync},
        {3, true, IoBackendKind::kAsync},
        {0, false, IoBackendKind::kAsync},
    }),
    PostMigrationCrashCaseName);

}  // namespace
}  // namespace tickpoint
