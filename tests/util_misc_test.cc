// Tests for CRC32, histogram/stats, flags, table printer, and file I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/crc32.h"
#include "util/flags.h"
#include "util/histogram.h"
#include "util/io.h"
#include "util/table_printer.h"

namespace tickpoint {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Crc32Test, KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const char* data = "123456789";
  EXPECT_EQ(Crc32(data, 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32("", 0), 0u); }

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t part = Crc32(data.data(), split);
    const uint32_t chained =
        Crc32(data.data() + split, data.size() - split, part);
    EXPECT_EQ(chained, whole) << "split " << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(128, 'a');
  const uint32_t clean = Crc32(data.data(), data.size());
  data[77] ^= 1;
  EXPECT_NE(Crc32(data.data(), data.size()), clean);
}

TEST(RunningStatTest, BasicMoments) {
  RunningStat stat;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.Add(v);
  EXPECT_EQ(stat.count(), 8u);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stat.sum(), 40.0);
}

TEST(RunningStatTest, EmptyIsZeroes) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.variance(), 0.0);
}

TEST(SampleSeriesTest, PercentilesExact) {
  SampleSeries series;
  for (int i = 100; i >= 1; --i) series.Add(i);  // 1..100 reversed
  EXPECT_EQ(series.count(), 100u);
  EXPECT_DOUBLE_EQ(series.Min(), 1.0);
  EXPECT_DOUBLE_EQ(series.Max(), 100.0);
  EXPECT_DOUBLE_EQ(series.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(series.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(series.Percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(series.Percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(series.Percentile(0), 1.0);
}

TEST(FlagsTest, ParsesBothSyntaxes) {
  const char* argv[] = {"prog", "--ticks=500", "--skew", "0.8", "--csv"};
  Flags flags;
  ASSERT_TRUE(flags.Parse(5, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetInt64("ticks", 0), 500);
  EXPECT_DOUBLE_EQ(flags.GetDouble("skew", 0.0), 0.8);
  EXPECT_TRUE(flags.GetBool("csv", false));
  EXPECT_EQ(flags.GetInt64("missing", 7), 7);
}

TEST(FlagsTest, RejectsBareTokens) {
  const char* argv[] = {"prog", "oops"};
  Flags flags;
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, HelpDetected) {
  const char* argv[] = {"prog", "--help"};
  Flags flags;
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_TRUE(flags.help_requested());
}

TEST(FlagsTest, TracksUnusedKeys) {
  const char* argv[] = {"prog", "--used=1", "--unused=2"};
  Flags flags;
  ASSERT_TRUE(flags.Parse(3, const_cast<char**>(argv)).ok());
  flags.GetInt64("used", 0);
  const auto unused = flags.UnusedKeys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "unused");
}

TEST(TablePrinterTest, FormatsSeconds) {
  EXPECT_EQ(TablePrinter::Seconds(1.5), "1.500 s");
  EXPECT_EQ(TablePrinter::Seconds(0.0123), "12.300 ms");
  EXPECT_EQ(TablePrinter::Seconds(45e-6), "45.000 us");
  EXPECT_EQ(TablePrinter::Seconds(12e-9), "12.0 ns");
}

TEST(TablePrinterTest, FormatsBytes) {
  EXPECT_EQ(TablePrinter::Bytes(512), "512 B");
  EXPECT_EQ(TablePrinter::Bytes(40e6), "38.15 MB");
  EXPECT_EQ(TablePrinter::Bytes(2.5 * 1073741824.0), "2.50 GB");
}

TEST(TablePrinterTest, PrintsAlignedTable) {
  TablePrinter table({"algo", "value"});
  table.AddRow({"naive", "1"});
  table.AddRow({"copy-on-update", "2"});
  const std::string path = TempPath("tp_table_test.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  table.Print(f);
  std::fclose(f);
  std::string contents;
  ASSERT_TRUE(ReadFileToString(path, &contents).ok());
  EXPECT_NE(contents.find("algo"), std::string::npos);
  EXPECT_NE(contents.find("copy-on-update  2"), std::string::npos);
  ASSERT_TRUE(RemoveFileIfExists(path).ok());
}

TEST(IoTest, RoundTripWholeFile) {
  const std::string path = TempPath("tp_io_test.bin");
  const std::string payload = "hello checkpoint\0world";
  ASSERT_TRUE(WriteStringToFile(path, payload).ok());
  EXPECT_TRUE(FileExists(path));
  std::string readback;
  ASSERT_TRUE(ReadFileToString(path, &readback).ok());
  EXPECT_EQ(readback, payload);
  ASSERT_TRUE(RemoveFileIfExists(path).ok());
  EXPECT_FALSE(FileExists(path));
}

TEST(IoTest, WriteAtAndReadAt) {
  const std::string path = TempPath("tp_io_positional.bin");
  FileWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  const char zeros[16] = {0};
  ASSERT_TRUE(writer.Append(zeros, sizeof(zeros)).ok());
  ASSERT_TRUE(writer.WriteAt(4, "ABCD", 4).ok());
  ASSERT_TRUE(writer.Sync().ok());
  ASSERT_TRUE(writer.Close().ok());

  FileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  char buf[4];
  ASSERT_TRUE(reader.ReadAt(4, buf, 4).ok());
  EXPECT_EQ(std::string(buf, 4), "ABCD");
  auto size = reader.Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), 16u);
  ASSERT_TRUE(reader.Close().ok());
  ASSERT_TRUE(RemoveFileIfExists(path).ok());
}

TEST(IoTest, ShortReadIsError) {
  const std::string path = TempPath("tp_io_short.bin");
  ASSERT_TRUE(WriteStringToFile(path, "xy").ok());
  FileReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  char buf[8];
  EXPECT_EQ(reader.ReadExact(buf, 8).code(), StatusCode::kIOError);
  ASSERT_TRUE(RemoveFileIfExists(path).ok());
}

TEST(IoTest, MissingFileIsError) {
  FileReader reader;
  EXPECT_EQ(reader.Open(TempPath("definitely_missing_tp")).code(),
            StatusCode::kIOError);
}

TEST(IoTest, RemoveMissingIsOk) {
  EXPECT_TRUE(RemoveFileIfExists(TempPath("never_existed_tp")).ok());
}

TEST(IoTest, EnsureDirectoryCreatesNested) {
  const std::string dir = TempPath("tp_dir_a/b/c");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  EXPECT_TRUE(std::filesystem::is_directory(dir));
  std::filesystem::remove_all(TempPath("tp_dir_a"));
}

}  // namespace
}  // namespace tickpoint
