#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "trace/materialized.h"
#include "trace/stats.h"
#include "trace/zipf_source.h"
#include "util/io.h"

namespace tickpoint {
namespace {

ZipfTraceConfig SmallConfig() {
  ZipfTraceConfig config;
  config.layout = StateLayout::Small(1024, 10);
  config.num_ticks = 20;
  config.updates_per_tick = 500;
  config.theta = 0.8;
  config.seed = 11;
  return config;
}

TEST(ZipfSourceTest, ProducesConfiguredShape) {
  ZipfUpdateSource source(SmallConfig());
  std::vector<TraceCell> cells;
  uint64_t ticks = 0;
  while (source.NextTick(&cells)) {
    ++ticks;
    EXPECT_EQ(cells.size(), 500u);
    for (TraceCell cell : cells) {
      EXPECT_LT(cell, source.layout().num_cells());
    }
  }
  EXPECT_EQ(ticks, 20u);
}

TEST(ZipfSourceTest, ResetReproducesExactly) {
  ZipfUpdateSource source(SmallConfig());
  std::vector<std::vector<TraceCell>> first;
  std::vector<TraceCell> cells;
  while (source.NextTick(&cells)) first.push_back(cells);
  source.Reset();
  size_t tick = 0;
  while (source.NextTick(&cells)) {
    ASSERT_LT(tick, first.size());
    EXPECT_EQ(cells, first[tick]) << "tick " << tick;
    ++tick;
  }
  EXPECT_EQ(tick, first.size());
}

TEST(ZipfSourceTest, SkewConcentratesUpdates) {
  auto distinct_objects = [](double theta) {
    ZipfTraceConfig config = SmallConfig();
    // A layout with enough objects (5,120) that 10K draws cannot saturate it.
    config.layout = StateLayout::Small(65536, 10);
    config.theta = theta;
    config.num_ticks = 5;
    config.updates_per_tick = 2000;
    ZipfUpdateSource source(config);
    std::set<ObjectId> objects;
    std::vector<TraceCell> cells;
    while (source.NextTick(&cells)) {
      for (TraceCell cell : cells) {
        objects.insert(source.layout().ObjectOfCell(cell));
      }
    }
    return objects.size();
  };
  EXPECT_LT(distinct_objects(0.99), distinct_objects(0.0));
}

TEST(ZipfSourceTest, ScatterPreservesRowUniverse) {
  ZipfTraceConfig config = SmallConfig();
  config.scatter_rows = true;
  config.theta = 0.0;
  ZipfUpdateSource source(config);
  std::vector<TraceCell> cells;
  ASSERT_TRUE(source.NextTick(&cells));
  for (TraceCell cell : cells) {
    EXPECT_LT(cell, config.layout.num_cells());
  }
}

TEST(ZipfSourceTest, DifferentSeedsDiffer) {
  ZipfTraceConfig config_a = SmallConfig();
  ZipfTraceConfig config_b = SmallConfig();
  config_b.seed = config_a.seed + 1;
  ZipfUpdateSource a(config_a), b(config_b);
  std::vector<TraceCell> cells_a, cells_b;
  ASSERT_TRUE(a.NextTick(&cells_a));
  ASSERT_TRUE(b.NextTick(&cells_b));
  EXPECT_NE(cells_a, cells_b);
}

TEST(MaterializedTraceTest, RecordMatchesSource) {
  ZipfUpdateSource source(SmallConfig());
  MaterializedTrace trace = MaterializedTrace::Record(&source);
  EXPECT_EQ(trace.num_ticks(), 20u);
  EXPECT_EQ(trace.total_updates(), 20u * 500u);

  source.Reset();
  std::vector<TraceCell> cells;
  uint64_t tick = 0;
  while (source.NextTick(&cells)) {
    const auto stored = trace.Tick(tick);
    ASSERT_EQ(stored.size(), cells.size());
    EXPECT_TRUE(std::equal(stored.begin(), stored.end(), cells.begin()));
    ++tick;
  }
}

TEST(MaterializedTraceTest, ActsAsUpdateSource) {
  ZipfUpdateSource source(SmallConfig());
  MaterializedTrace trace = MaterializedTrace::Record(&source);
  // Drain twice: Reset must rewind.
  for (int round = 0; round < 2; ++round) {
    trace.Reset();
    std::vector<TraceCell> cells;
    uint64_t ticks = 0;
    while (trace.NextTick(&cells)) {
      EXPECT_EQ(cells.size(), 500u);
      ++ticks;
    }
    EXPECT_EQ(ticks, 20u);
  }
}

TEST(MaterializedTraceTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tp_trace_roundtrip.trace")
          .string();
  ZipfUpdateSource source(SmallConfig());
  MaterializedTrace trace = MaterializedTrace::Record(&source);
  ASSERT_TRUE(trace.WriteTo(path).ok());
  auto loaded = MaterializedTrace::ReadFrom(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value() == trace);
  std::filesystem::remove(path);
}

TEST(MaterializedTraceTest, CorruptionDetected) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tp_trace_corrupt.trace")
          .string();
  ZipfUpdateSource source(SmallConfig());
  MaterializedTrace trace = MaterializedTrace::Record(&source);
  ASSERT_TRUE(trace.WriteTo(path).ok());
  // Flip one byte in the middle of the payload.
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(path, &bytes).ok());
  bytes[bytes.size() / 2] ^= 0x5A;
  ASSERT_TRUE(WriteStringToFile(path, bytes).ok());
  auto loaded = MaterializedTrace::ReadFrom(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::filesystem::remove(path);
}

TEST(MaterializedTraceTest, BadMagicRejected) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tp_trace_magic.trace")
          .string();
  ASSERT_TRUE(WriteStringToFile(path, std::string(256, 'q')).ok());
  auto loaded = MaterializedTrace::ReadFrom(path);
  EXPECT_FALSE(loaded.ok());
  std::filesystem::remove(path);
}

TEST(MaterializedTraceTest, EmptyTicksSupported) {
  MaterializedTrace trace(StateLayout::Small(16, 4));
  trace.AppendTick({});
  std::vector<TraceCell> one = {5};
  trace.AppendTick(one);
  trace.AppendTick({});
  EXPECT_EQ(trace.num_ticks(), 3u);
  EXPECT_EQ(trace.total_updates(), 1u);
  EXPECT_EQ(trace.Tick(0).size(), 0u);
  EXPECT_EQ(trace.Tick(1).size(), 1u);
  EXPECT_EQ(trace.Tick(2).size(), 0u);
}

TEST(TraceStatsTest, CountsDistinctAndPerTick) {
  MaterializedTrace trace(StateLayout::Small(1024, 10));
  // Object size 512 / cell 4 => 128 cells per object.
  std::vector<TraceCell> t0 = {0, 1, 2, 0};        // 3 distinct cells, 1 object
  std::vector<TraceCell> t1 = {128, 256, 10000};   // 3 cells, 3 objects
  trace.AppendTick(t0);
  trace.AppendTick(t1);
  const TraceStats stats = ComputeTraceStats(&trace);
  EXPECT_EQ(stats.num_ticks, 2u);
  EXPECT_EQ(stats.total_updates, 7u);
  EXPECT_DOUBLE_EQ(stats.avg_updates_per_tick, 3.5);
  EXPECT_EQ(stats.min_updates_per_tick, 3u);
  EXPECT_EQ(stats.max_updates_per_tick, 4u);
  EXPECT_EQ(stats.distinct_cells, 6u);
  EXPECT_EQ(stats.distinct_objects, 4u);
}

TEST(TraceStatsTest, ZipfSkewShowsInTopShare) {
  ZipfTraceConfig config = SmallConfig();
  config.theta = 0.99;
  ZipfUpdateSource hot(config);
  config.theta = 0.0;
  config.seed = 11;
  ZipfUpdateSource uniform(config);
  const TraceStats hot_stats = ComputeTraceStats(&hot);
  const TraceStats uniform_stats = ComputeTraceStats(&uniform);
  EXPECT_GT(hot_stats.hottest_percentile_share,
            uniform_stats.hottest_percentile_share);
}

}  // namespace
}  // namespace tickpoint
