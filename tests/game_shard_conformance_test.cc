// Game-workload conformance: the Knights-and-Archers world driven through
// the sharded checkpoint fleet (game/shard_adapter.h), with recovery
// correctness reduced to an exact digest equality -- for K zones, either
// disk organization, threaded or inline, and ANY crash tick, every
// recovered partition must digest-equal the golden (uncrashed) run's zone
// at the same world tick. This is the paper's own workload (Table 5)
// finally exercising the fleet the synthetic sweeps validated.
#include "game/shard_adapter.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "engine/fleet.h"
#include "engine/recovery.h"

namespace tickpoint {
namespace game {
namespace {

/// Engine ticks per sweep case: crash ticks 0..kSweepTicks-1 cover the
/// bulk-load tick, several checkpoint periods (period 4), and a full flush
/// of the log organization (full_flush_period 3).
constexpr uint64_t kSweepTicks = 10;

WorldConfig TinyZone() {
  WorldConfig config;
  config.num_units = 64;
  config.map_size = 256;
  config.bucket_shift = 5;
  config.spawn_radius = 100;
  config.seed = 1234;  // explicit: the golden digests depend on it
  return config;
}

class GameShardConformanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string name(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    for (auto& c : name) {
      if (c == '/') c = '_';
    }
    dir_ = (std::filesystem::temp_directory_path() / ("tp_game_" + name))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  GameShardAdapterConfig Config(AlgorithmKind kind, uint32_t num_zones,
                                bool threaded) {
    GameShardAdapterConfig config;
    config.zone_world = TinyZone();
    config.engine.shard.algorithm = kind;
    config.engine.shard.dir = dir_;
    config.engine.shard.fsync = false;  // simulated crashes: cache durable
    config.engine.shard.full_flush_period = 3;
    config.engine.num_shards = num_zones;
    config.engine.checkpoint_period_ticks = 4;
    config.engine.threaded = threaded;
    return config;
  }

  std::string dir_;
};

/// Golden digests are a pure function of (zone template, K, cross-zone
/// rules) -- not of the engine configuration -- so one replay per K serves
/// every (algorithm, threaded, crash tick) case.
const std::vector<std::vector<uint64_t>>& GoldenForZones(uint32_t num_zones,
                                                         uint64_t world_ticks) {
  static std::map<uint32_t, std::vector<std::vector<uint64_t>>> cache;
  auto it = cache.find(num_zones);
  if (it == cache.end()) {
    GameShardAdapterConfig config;
    config.zone_world = TinyZone();
    config.engine.num_shards = num_zones;
    it = cache
             .emplace(num_zones,
                      GameShardAdapter::GoldenZoneDigests(config, world_ticks))
             .first;
  }
  EXPECT_GT(it->second.size(), world_ticks);
  return it->second;
}

// ---- The digest oracle itself ----

TEST(GameDigestTest, TableDigestMatchesLiveWorld) {
  WorldConfig config = TinyZone();
  World world(config);
  for (int t = 0; t < 5; ++t) world.Tick();
  // Copy the unit table into an engine StateTable cell by cell; the two
  // digest implementations must agree bit for bit.
  StateTable table(GameShardAdapter::ZoneLayout(config));
  for (UnitId u = 0; u < config.num_units; ++u) {
    for (uint32_t attr = 0; attr < kNumAttributes; ++attr) {
      table.WriteCell(u * kNumAttributes + attr, world.units().Get(u, attr));
    }
  }
  EXPECT_EQ(TableStateDigest(table, config.num_units), world.StateDigest());
  // And any single-cell difference must flip it.
  table.WriteCell(7 * kNumAttributes + kAttrHealth,
                  world.units().health(7) - 1);
  EXPECT_NE(TableStateDigest(table, config.num_units), world.StateDigest());
}

TEST(GameDigestTest, DigestIsOrderIndependentButValueSensitive) {
  UnitTable a(16), b(16);
  // Same per-unit states written in different orders digest equal...
  for (UnitId u = 0; u < 16; ++u) a.SetRaw(u, kAttrX, 100 + u);
  for (UnitId u = 16; u-- > 0;) b.SetRaw(u, kAttrX, 100 + u);
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
  // ...and swapping two units' states (a symmetric difference a plain sum
  // of raw values would cancel) does not.
  b.SetRaw(3, kAttrX, 100 + 4);
  b.SetRaw(4, kAttrX, 100 + 3);
  EXPECT_NE(a.StateDigest(), b.StateDigest());
}

TEST_F(GameShardConformanceTest, ParallelAndSequentialSteppingAreIdentical) {
  // The fork-join zone stepping must be bit-identical to the sequential
  // loop at every tick: zones share no mutable state, and cross-zone
  // effects land before the fork.
  for (const uint32_t num_zones : {2u, 4u}) {
    GameShardAdapterConfig parallel;
    parallel.zone_world = TinyZone();
    parallel.engine.num_shards = num_zones;
    parallel.parallel_step = true;
    GameShardAdapterConfig sequential = parallel;
    sequential.parallel_step = false;
    const auto a = GameShardAdapter::GoldenZoneDigests(parallel, 30);
    const auto b = GameShardAdapter::GoldenZoneDigests(sequential, 30);
    EXPECT_EQ(a, b) << "K=" << num_zones;
  }
}

TEST_F(GameShardConformanceTest, CrossZoneNewsChangesTheBattle) {
  // The tick-boundary cross-zone resolution must actually do something:
  // with war news disabled the zones play a different (still
  // deterministic) battle once combat produces kills.
  GameShardAdapterConfig with_news;
  with_news.zone_world = TinyZone();
  with_news.engine.num_shards = 2;
  GameShardAdapterConfig without_news = with_news;
  without_news.cross_zone = false;
  const auto a = GameShardAdapter::GoldenZoneDigests(with_news, 60);
  const auto b = GameShardAdapter::GoldenZoneDigests(without_news, 60);
  EXPECT_NE(a.back(), b.back())
      << "cross-zone morale effects never fired in 60 ticks";
}

// ---- Crash-at-every-tick conformance sweep ----

struct GameCrashCase {
  AlgorithmKind kind;
  uint32_t num_zones;
  uint64_t crash_tick;  // engine tick the fleet crashes after
  bool threaded;
};

class GameShardCrashRecoveryTest
    : public GameShardConformanceTest,
      public ::testing::WithParamInterface<GameCrashCase> {};

TEST_P(GameShardCrashRecoveryTest, RecoveredZonesMatchTheGoldenDigest) {
  const GameCrashCase param = GetParam();
  const auto config = Config(param.kind, param.num_zones, param.threaded);
  auto adapter_or = GameShardAdapter::Open(config);
  ASSERT_TRUE(adapter_or.ok()) << adapter_or.status().ToString();
  GameShardAdapter& adapter = *adapter_or.value();

  ASSERT_TRUE(adapter.RunTicks(param.crash_tick + 1).ok());
  ASSERT_TRUE(adapter.engine()->SimulateCrash().ok());

  // recovered_ticks = crash_tick + 1 engine ticks, of which tick 0 was the
  // bulk load: the recovered state is the world after crash_tick world
  // ticks.
  const uint64_t world_tick = param.crash_tick;
  const auto& golden = GoldenForZones(param.num_zones, kSweepTicks);
  auto recovered_or = Fleet::Recover(adapter.config().engine.shard.dir);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  const ShardedRecoveryResult& result = recovered_or->result().fleet;
  std::vector<StateTable>& recovered = recovered_or->tables();
  ASSERT_EQ(recovered.size(), param.num_zones);
  EXPECT_EQ(result.min_recovered_ticks, param.crash_tick + 1);
  EXPECT_EQ(result.max_recovered_ticks, param.crash_tick + 1);
  for (uint32_t z = 0; z < param.num_zones; ++z) {
    // The live world tracked the golden replay...
    ASSERT_EQ(adapter.ZoneDigest(z), golden[world_tick][z])
        << "zone " << z << " diverged from the golden replay (determinism "
        << "bug, not a recovery bug)";
    // ...and recovery must reproduce it exactly.
    EXPECT_EQ(TableStateDigest(recovered[z], config.zone_world.num_units),
              golden[world_tick][z])
        << AlgorithmName(param.kind) << " K=" << param.num_zones << " crash@"
        << param.crash_tick << (param.threaded ? " threaded" : " inline")
        << ": zone " << z << " recovered wrong";
  }
}

std::vector<GameCrashCase> AllGameCrashCases() {
  std::vector<GameCrashCase> cases;
  // Both disk organizations (double backup and log), K in {1, 2, 4},
  // threaded and inline, crash at EVERY engine tick.
  for (AlgorithmKind kind : {AlgorithmKind::kCopyOnUpdate,
                             AlgorithmKind::kCopyOnUpdatePartialRedo}) {
    for (uint32_t num_zones : {1u, 2u, 4u}) {
      for (bool threaded : {true, false}) {
        for (uint64_t tick = 0; tick < kSweepTicks; ++tick) {
          cases.push_back({kind, num_zones, tick, threaded});
        }
      }
    }
  }
  return cases;
}

std::string GameCrashCaseName(
    const ::testing::TestParamInfo<GameCrashCase>& info) {
  std::string name = std::string(GetTraits(info.param.kind).short_name) +
                     "_k" + std::to_string(info.param.num_zones) + "_tick" +
                     std::to_string(info.param.crash_tick) +
                     (info.param.threaded ? "" : "_inline");
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(GameCrashPoints, GameShardCrashRecoveryTest,
                         ::testing::ValuesIn(AllGameCrashCases()),
                         GameCrashCaseName);

// ---- The CI conformance shard: K=2, longer run ----

TEST_F(GameShardConformanceTest, SoakK2LongRun) {
  // The long-run shard the CI matrix pins at ~200 ticks (TP_GAME_SOAK_TICKS;
  // 60 locally): many staggered checkpoint generations, full flushes, and
  // cross-zone traffic before the crash, then exact recovery of both zones.
  //
  // TP_GAME_SOAK_UNITS additionally scales the PER-ZONE population for the
  // nightly large-world variant (200064/zone makes the K=2 fleet exactly
  // the paper's Table-5 400,128 units, exercising object-level dirty
  // tracking under real update skew); the zone geometry grows to the full
  // Table-5 map so spawn density stays sane.
  uint64_t ticks = 60;
  if (const char* env = std::getenv("TP_GAME_SOAK_TICKS")) {
    const uint64_t parsed = std::strtoull(env, nullptr, 10);
    // 0 (also what garbage parses to) would underflow the golden-replay
    // bound below; keep the default instead of hanging the suite.
    if (parsed > 0) ticks = parsed;
  }
  auto config = Config(AlgorithmKind::kCopyOnUpdate, 2,
                       /*threaded=*/true);
  if (const char* env = std::getenv("TP_GAME_SOAK_UNITS")) {
    const uint64_t parsed = std::strtoull(env, nullptr, 10);
    if (parsed > 0) {
      config.zone_world.num_units = static_cast<uint32_t>(parsed);
      config.zone_world.map_size = 4096;
      config.zone_world.bucket_shift = 6;
      config.zone_world.spawn_radius = 1400;
    }
  }
  auto adapter_or = GameShardAdapter::Open(config);
  ASSERT_TRUE(adapter_or.ok()) << adapter_or.status().ToString();
  GameShardAdapter& adapter = *adapter_or.value();
  ASSERT_TRUE(adapter.RunTicks(ticks).ok());
  ASSERT_TRUE(adapter.engine()->SimulateCrash().ok());

  // Independent golden replay of the same fleet seed.
  const auto golden = GameShardAdapter::GoldenZoneDigests(config, ticks - 1);
  auto recovered_or = Fleet::Recover(adapter.config().engine.shard.dir);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  std::vector<StateTable>& recovered = recovered_or->tables();
  EXPECT_EQ(recovered_or->result().fleet.min_recovered_ticks, ticks);
  for (uint32_t z = 0; z < 2; ++z) {
    EXPECT_EQ(TableStateDigest(recovered[z], config.zone_world.num_units),
              golden[ticks - 1][z])
        << "zone " << z;
  }
  // The run produced real checkpoint traffic, not just log replay.
  EXPECT_GE(adapter.engine()->CheckpointStats().checkpoints, 4u);
  EXPECT_GT(adapter.game_updates(), 0u);
}

// ---- Zone migration on the game workload ----

TEST_F(GameShardConformanceTest, MigrateZoneKeepsRecoveryExact) {
  // The MMOG zone hand-off: the Knights-and-Archers battle keeps playing
  // while zone 1's partition moves to a fresh shard slot at a committed
  // cut. The zone worlds follow their PARTITION (ids are stable across
  // the move), so recovery correctness stays one digest equality per
  // zone -- now across a fleet epoch boundary, via the no-config
  // manifest-driven recovery.
  const auto config = Config(AlgorithmKind::kCopyOnUpdate, 2,
                             /*threaded=*/true);
  auto adapter_or = GameShardAdapter::Open(config);
  ASSERT_TRUE(adapter_or.ok()) << adapter_or.status().ToString();
  GameShardAdapter& adapter = *adapter_or.value();
  ASSERT_TRUE(adapter.RunTicks(4).ok());
  auto status = adapter.MigrateZone(1, 2);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(adapter.engine()->epoch(), 1u);
  EXPECT_EQ(adapter.engine()->SlotOfPartition(1), 2u);
  // The battle continues on the migrated fleet, then crashes.
  ASSERT_TRUE(adapter.RunTicks(6).ok());
  const uint64_t ticks = adapter.engine_ticks();
  ASSERT_TRUE(adapter.engine()->SimulateCrash().ok());

  auto recovered_or = Fleet::Recover(dir_);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  RecoveredFleet& recovered = recovered_or.value();
  EXPECT_EQ(recovered.manifest().epoch, 1u);
  EXPECT_EQ(recovered.manifest().assignment,
            (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(recovered.result().fleet.min_recovered_ticks, ticks);
  const auto golden = GameShardAdapter::GoldenZoneDigests(config, ticks - 1);
  for (uint32_t z = 0; z < 2; ++z) {
    EXPECT_EQ(TableStateDigest(recovered.tables()[z],
                               config.zone_world.num_units),
              golden[ticks - 1][z])
        << "zone " << z << " recovered wrong across the migration";
  }
}

// ---- Seeded randomized game-crash fuzz ----

TEST_F(GameShardConformanceTest, SeededRandomizedGameCrashFuzz) {
  // Random (algorithm, K, threaded, parallel stepping, crash tick) shapes
  // against the digest oracle. The seed is printed via SCOPED_TRACE on any
  // failure; set TP_GAME_FUZZ_SEED to replay a reported failure exactly
  // (the TP_FLEET_FUZZ_SEED pattern from the sharded-engine fuzz).
  uint64_t seed;
  if (const char* env = std::getenv("TP_GAME_FUZZ_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  } else {
    std::random_device device;
    seed = (static_cast<uint64_t>(device()) << 32) ^ device();
  }
  SCOPED_TRACE("replay with TP_GAME_FUZZ_SEED=" + std::to_string(seed));
  std::mt19937_64 rng(seed);
  const AlgorithmKind kinds[] = {AlgorithmKind::kNaiveSnapshot,
                                 AlgorithmKind::kCopyOnUpdate,
                                 AlgorithmKind::kDribble,
                                 AlgorithmKind::kCopyOnUpdatePartialRedo};

  constexpr int kIterations = 5;
  for (int iter = 0; iter < kIterations; ++iter) {
    const AlgorithmKind kind = kinds[rng() % std::size(kinds)];
    const uint32_t num_zones = 1 + static_cast<uint32_t>(rng() % 4);
    const bool threaded = (rng() & 1) != 0;
    const bool parallel_step = (rng() & 1) != 0;
    const uint64_t crash_tick = rng() % 14;
    SCOPED_TRACE("iter " + std::to_string(iter) + ": " +
                 std::string(AlgorithmName(kind)) + " K=" +
                 std::to_string(num_zones) +
                 (threaded ? " threaded" : " inline") +
                 (parallel_step ? " parallel" : " sequential") + " crash@" +
                 std::to_string(crash_tick));

    auto config = Config(kind, num_zones, threaded);
    config.engine.shard.dir = dir_ + "/iter" + std::to_string(iter);
    config.parallel_step = parallel_step;
    auto adapter_or = GameShardAdapter::Open(config);
    ASSERT_TRUE(adapter_or.ok()) << adapter_or.status().ToString();
    GameShardAdapter& adapter = *adapter_or.value();
    ASSERT_TRUE(adapter.RunTicks(crash_tick + 1).ok());
    ASSERT_TRUE(adapter.engine()->SimulateCrash().ok());

    const auto golden =
        GameShardAdapter::GoldenZoneDigests(config, crash_tick);
    auto recovered_or = Fleet::Recover(adapter.config().engine.shard.dir);
    ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
    const ShardedRecoveryResult& result = recovered_or->result().fleet;
    std::vector<StateTable>& recovered = recovered_or->tables();
    EXPECT_EQ(result.min_recovered_ticks, crash_tick + 1);
    EXPECT_EQ(result.max_recovered_ticks, crash_tick + 1);
    for (uint32_t z = 0; z < num_zones; ++z) {
      EXPECT_EQ(TableStateDigest(recovered[z], config.zone_world.num_units),
                golden[crash_tick][z])
          << "zone " << z;
    }
  }
}

}  // namespace
}  // namespace game
}  // namespace tickpoint
