// Sharded-engine tests: the stagger schedule itself, and the central
// crash-recovery property lifted to a fleet -- for K shards, any algorithm,
// and ANY crash tick, RecoverSharded() rebuilds every shard's partition
// exactly, even though staggering leaves the shards at different checkpoint
// generations when the crash lands.
#include "engine/sharded_engine.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "engine/mutator.h"
#include "engine/recovery.h"
#include "engine/stagger_scheduler.h"

namespace tickpoint {
namespace {

StateLayout ShardLayout() { return StateLayout::Small(512, 10); }  // 40 objects

constexpr uint64_t kUpdatesPerTick = 150;

// ---- StaggerScheduler ----

TEST(StaggerSchedulerTest, StaggeredOffsetsPartitionThePeriod) {
  StaggerScheduler scheduler(StaggerConfig{4, 8, /*staggered=*/true});
  EXPECT_EQ(scheduler.OffsetTicks(0), 0u);
  EXPECT_EQ(scheduler.OffsetTicks(1), 2u);
  EXPECT_EQ(scheduler.OffsetTicks(2), 4u);
  EXPECT_EQ(scheduler.OffsetTicks(3), 6u);
}

TEST(StaggerSchedulerTest, SynchronizedModeStartsEveryShardTogether) {
  StaggerScheduler scheduler(StaggerConfig{4, 8, /*staggered=*/false});
  for (uint32_t shard = 0; shard < 4; ++shard) {
    EXPECT_EQ(scheduler.OffsetTicks(shard), 0u);
    EXPECT_TRUE(scheduler.ShouldCheckpoint(shard, 0));
    EXPECT_TRUE(scheduler.ShouldCheckpoint(shard, 8));
    EXPECT_FALSE(scheduler.ShouldCheckpoint(shard, 5));
  }
}

TEST(StaggerSchedulerTest, AtMostOneShardStartsPerTick) {
  StaggerScheduler scheduler(StaggerConfig{4, 8, /*staggered=*/true});
  for (uint64_t tick = 0; tick < 64; ++tick) {
    int starts = 0;
    for (uint32_t shard = 0; shard < 4; ++shard) {
      starts += scheduler.ShouldCheckpoint(shard, tick) ? 1 : 0;
    }
    EXPECT_LE(starts, 1) << "tick " << tick;
  }
}

TEST(StaggerSchedulerTest, EveryShardCheckpointsOncePerPeriod) {
  StaggerScheduler scheduler(StaggerConfig{3, 9, /*staggered=*/true});
  for (uint32_t shard = 0; shard < 3; ++shard) {
    int starts = 0;
    for (uint64_t tick = 0; tick < 90; ++tick) {
      starts += scheduler.ShouldCheckpoint(shard, tick) ? 1 : 0;
    }
    EXPECT_EQ(starts, 10) << "shard " << shard;
  }
}

TEST(StaggerSchedulerTest, NextCheckpointTickIsTheSchedule) {
  StaggerScheduler scheduler(StaggerConfig{4, 8, /*staggered=*/true});
  EXPECT_EQ(scheduler.NextCheckpointTick(1, 0), 2u);
  EXPECT_EQ(scheduler.NextCheckpointTick(1, 2), 2u);
  EXPECT_EQ(scheduler.NextCheckpointTick(1, 3), 10u);
  EXPECT_EQ(scheduler.NextCheckpointTick(0, 1), 8u);
  for (uint32_t shard = 0; shard < 4; ++shard) {
    for (uint64_t tick = 0; tick < 40; ++tick) {
      const uint64_t next = scheduler.NextCheckpointTick(shard, tick);
      EXPECT_GE(next, tick);
      EXPECT_TRUE(scheduler.ShouldCheckpoint(shard, next));
    }
  }
}

// ---- ShardedEngine fixture ----

class ShardedEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string name(::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name());
    for (auto& c : name) {
      if (c == '/') c = '_';
    }
    dir_ = (std::filesystem::temp_directory_path() / ("tp_sharded_" + name))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  ShardedEngineConfig Config(AlgorithmKind kind, uint32_t num_shards,
                             bool staggered = true) {
    ShardedEngineConfig config;
    config.shard.layout = ShardLayout();
    config.shard.algorithm = kind;
    config.shard.dir = dir_;
    config.shard.fsync = false;  // simulated crashes: page cache is durable
    config.shard.full_flush_period = 3;
    config.num_shards = num_shards;
    config.checkpoint_period_ticks = 5;
    config.staggered = staggered;
    return config;
  }

  /// Runs ticks [0, ticks) of the deterministic workload, mirroring every
  /// update into the per-shard reference tables.
  void RunTicks(ShardedEngine* engine, uint64_t ticks,
                std::vector<StateTable>* reference) {
    const uint64_t num_cells = ShardLayout().num_cells();
    if (reference->empty()) {
      for (uint32_t i = 0; i < engine->num_shards(); ++i) {
        reference->emplace_back(ShardLayout());
      }
    }
    for (uint64_t t = 0; t < ticks; ++t) {
      const uint64_t tick = engine->current_tick();
      engine->BeginTick();
      for (uint32_t shard = 0; shard < engine->num_shards(); ++shard) {
        for (uint64_t i = 0; i < kUpdatesPerTick; ++i) {
          const uint32_t cell = WorkloadCell(shard, tick, i, num_cells);
          const int32_t value = WorkloadValue(tick, cell, i);
          engine->ApplyUpdate(shard, cell, value);
          (*reference)[shard].WriteCell(cell, value);
        }
      }
      ASSERT_TRUE(engine->EndTick().ok());
    }
  }

  std::string dir_;
};

TEST_F(ShardedEngineTest, RunsAndShutsDownCleanly) {
  const auto config = Config(AlgorithmKind::kCopyOnUpdate, 3);
  auto engine_or = ShardedEngine::Open(config);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  ShardedEngine& engine = *engine_or.value();
  std::vector<StateTable> reference;
  RunTicks(&engine, 20, &reference);
  ASSERT_TRUE(engine.Shutdown().ok());
  for (uint32_t i = 0; i < engine.num_shards(); ++i) {
    EXPECT_TRUE(engine.shard(i).state().ContentEquals(reference[i]))
        << "shard " << i;
    EXPECT_GE(engine.shard(i).metrics().checkpoints.size(), 3u);
  }
  const ShardedCheckpointStats stats = engine.CheckpointStats();
  EXPECT_GE(stats.checkpoints, 9u);
  EXPECT_GT(stats.avg_total_seconds, 0.0);
  EXPECT_GE(stats.max_total_seconds, stats.avg_total_seconds);
}

TEST_F(ShardedEngineTest, RecoverAfterCleanShutdown) {
  const auto config = Config(AlgorithmKind::kCopyOnUpdatePartialRedo, 2);
  std::vector<StateTable> reference;
  {
    auto engine_or = ShardedEngine::Open(config);
    ASSERT_TRUE(engine_or.ok());
    RunTicks(engine_or.value().get(), 25, &reference);
    ASSERT_TRUE(engine_or.value()->Shutdown().ok());
  }
  std::vector<StateTable> recovered;
  auto result = RecoverSharded(config, &recovered);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_EQ(result->min_recovered_ticks, 25u);
  EXPECT_EQ(result->max_recovered_ticks, 25u);
  for (uint32_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(recovered[i].ContentEquals(reference[i])) << "shard " << i;
  }
}

TEST_F(ShardedEngineTest, StaggeredShardsSitAtDifferentGenerations) {
  // Period 8, K=4: offsets 0/2/4/6, so at crash tick 13 each shard's newest
  // complete image covers a different consistent tick.
  auto config = Config(AlgorithmKind::kCopyOnUpdate, 4);
  config.checkpoint_period_ticks = 8;
  auto engine_or = ShardedEngine::Open(config);
  ASSERT_TRUE(engine_or.ok());
  std::vector<StateTable> reference;
  RunTicks(engine_or.value().get(), 14, &reference);
  ASSERT_TRUE(engine_or.value()->SimulateCrash().ok());

  std::vector<StateTable> recovered;
  auto result = RecoverSharded(config, &recovered);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::set<uint64_t> image_ticks;
  for (const RecoveryResult& shard : result->shards) {
    ASSERT_TRUE(shard.restored_from_checkpoint);
    image_ticks.insert(shard.image_consistent_ticks);
  }
  EXPECT_GE(image_ticks.size(), 2u)
      << "staggered shards should restore from different generations";
  EXPECT_EQ(result->min_recovered_ticks, 14u);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(recovered[i].ContentEquals(reference[i])) << "shard " << i;
  }
}

// ---- The fleet crash-recovery property ----

struct ShardedCrashCase {
  AlgorithmKind kind;
  uint32_t num_shards;
  uint64_t crash_tick;
  bool staggered;
};

class ShardedCrashRecoveryTest
    : public ShardedEngineTest,
      public ::testing::WithParamInterface<ShardedCrashCase> {};

TEST_P(ShardedCrashRecoveryTest, EveryShardRecoversExactly) {
  const ShardedCrashCase param = GetParam();
  const auto config =
      Config(param.kind, param.num_shards, param.staggered);
  auto engine_or = ShardedEngine::Open(config);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  ShardedEngine& engine = *engine_or.value();

  std::vector<StateTable> reference;
  RunTicks(&engine, param.crash_tick + 1, &reference);
  ASSERT_TRUE(engine.SimulateCrash().ok());

  std::vector<StateTable> recovered;
  auto result = RecoverSharded(config, &recovered);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(recovered.size(), param.num_shards);
  EXPECT_EQ(result->min_recovered_ticks, param.crash_tick + 1);
  EXPECT_EQ(result->max_recovered_ticks, param.crash_tick + 1);
  for (uint32_t i = 0; i < param.num_shards; ++i) {
    // The in-memory state at the crash is the gold reference...
    ASSERT_TRUE(engine.shard(i).state().ContentEquals(reference[i]))
        << "shard " << i << " diverged from reference before the crash";
    // ...and recovery must rebuild it bit-for-bit.
    EXPECT_TRUE(recovered[i].ContentEquals(reference[i]))
        << AlgorithmName(param.kind) << " K=" << param.num_shards
        << " crash@" << param.crash_tick << ": shard " << i << " diverges";
  }
}

std::vector<ShardedCrashCase> AllShardedCrashCases() {
  constexpr uint64_t kTicks = 18;  // > 3 periods: covers offsets and flushes
  std::vector<ShardedCrashCase> cases;
  // The two paper-validated algorithms: crash at EVERY tick, K in {2, 4}.
  for (AlgorithmKind kind :
       {AlgorithmKind::kNaiveSnapshot, AlgorithmKind::kCopyOnUpdate}) {
    for (uint32_t num_shards : {2u, 4u}) {
      for (uint64_t tick = 0; tick < kTicks; ++tick) {
        cases.push_back({kind, num_shards, tick, /*staggered=*/true});
      }
    }
  }
  // The remaining four: sampled crash ticks (early / mid-period / late),
  // both shard counts, plus the synchronized schedule.
  for (AlgorithmKind kind :
       {AlgorithmKind::kDribble, AlgorithmKind::kAtomicCopyDirty,
        AlgorithmKind::kPartialRedo,
        AlgorithmKind::kCopyOnUpdatePartialRedo}) {
    for (uint32_t num_shards : {2u, 4u}) {
      for (uint64_t tick : {3ull, 11ull, 16ull}) {
        cases.push_back({kind, num_shards, tick, /*staggered=*/true});
      }
    }
  }
  for (AlgorithmKind kind :
       {AlgorithmKind::kNaiveSnapshot, AlgorithmKind::kCopyOnUpdate}) {
    for (uint64_t tick : {0ull, 7ull, 13ull}) {
      cases.push_back({kind, 4, tick, /*staggered=*/false});
    }
  }
  return cases;
}

std::string ShardedCrashCaseName(
    const ::testing::TestParamInfo<ShardedCrashCase>& info) {
  std::string name = std::string(GetTraits(info.param.kind).short_name) +
                     "_k" + std::to_string(info.param.num_shards) + "_tick" +
                     std::to_string(info.param.crash_tick) +
                     (info.param.staggered ? "" : "_sync");
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(FleetCrashPoints, ShardedCrashRecoveryTest,
                         ::testing::ValuesIn(AllShardedCrashCases()),
                         ShardedCrashCaseName);

}  // namespace
}  // namespace tickpoint
