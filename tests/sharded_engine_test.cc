// Sharded-engine tests: the stagger schedule itself, and the central
// crash-recovery property lifted to a fleet -- for K shards, any algorithm,
// and ANY crash tick, Fleet::Recover() rebuilds every shard's partition
// exactly, even though staggering leaves the shards at different checkpoint
// generations when the crash lands. Fleets are built through Fleet::Create
// (the only construction path) and exercised through Fleet::engine() where
// a test needs per-shard inspection.
#include "engine/sharded_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/consistent_cut.h"
#include "engine/fleet.h"
#include "engine/mutator.h"
#include "engine/recovery.h"
#include "engine/stagger_scheduler.h"
#include "fleet_test_util.h"

namespace tickpoint {
namespace {

StateLayout ShardLayout() { return StateLayout::Small(512, 10); }  // 40 objects

constexpr uint64_t kUpdatesPerTick = 150;

// ---- StaggerScheduler ----

TEST(StaggerSchedulerTest, StaggeredOffsetsPartitionThePeriod) {
  StaggerScheduler scheduler(StaggerConfig{4, 8, /*staggered=*/true});
  EXPECT_EQ(scheduler.OffsetTicks(0), 0u);
  EXPECT_EQ(scheduler.OffsetTicks(1), 2u);
  EXPECT_EQ(scheduler.OffsetTicks(2), 4u);
  EXPECT_EQ(scheduler.OffsetTicks(3), 6u);
}

TEST(StaggerSchedulerTest, SynchronizedModeStartsEveryShardTogether) {
  StaggerScheduler scheduler(StaggerConfig{4, 8, /*staggered=*/false});
  for (uint32_t shard = 0; shard < 4; ++shard) {
    EXPECT_EQ(scheduler.OffsetTicks(shard), 0u);
    EXPECT_TRUE(scheduler.ShouldCheckpoint(shard, 0));
    EXPECT_TRUE(scheduler.ShouldCheckpoint(shard, 8));
    EXPECT_FALSE(scheduler.ShouldCheckpoint(shard, 5));
  }
}

TEST(StaggerSchedulerTest, AtMostOneShardStartsPerTick) {
  StaggerScheduler scheduler(StaggerConfig{4, 8, /*staggered=*/true});
  for (uint64_t tick = 0; tick < 64; ++tick) {
    int starts = 0;
    for (uint32_t shard = 0; shard < 4; ++shard) {
      starts += scheduler.ShouldCheckpoint(shard, tick) ? 1 : 0;
    }
    EXPECT_LE(starts, 1) << "tick " << tick;
  }
}

TEST(StaggerSchedulerTest, EveryShardCheckpointsOncePerPeriod) {
  StaggerScheduler scheduler(StaggerConfig{3, 9, /*staggered=*/true});
  for (uint32_t shard = 0; shard < 3; ++shard) {
    int starts = 0;
    for (uint64_t tick = 0; tick < 90; ++tick) {
      starts += scheduler.ShouldCheckpoint(shard, tick) ? 1 : 0;
    }
    EXPECT_EQ(starts, 10) << "shard " << shard;
  }
}

TEST(StaggerSchedulerTest, NextCheckpointTickIsTheSchedule) {
  StaggerScheduler scheduler(StaggerConfig{4, 8, /*staggered=*/true});
  EXPECT_EQ(scheduler.NextCheckpointTick(1, 0), 2u);
  EXPECT_EQ(scheduler.NextCheckpointTick(1, 3), 10u);
  EXPECT_EQ(scheduler.NextCheckpointTick(0, 1), 8u);
  for (uint32_t shard = 0; shard < 4; ++shard) {
    for (uint64_t tick = 0; tick < 40; ++tick) {
      const uint64_t next = scheduler.NextCheckpointTick(shard, tick);
      EXPECT_GT(next, tick);
      EXPECT_TRUE(scheduler.ShouldCheckpoint(shard, next));
    }
  }
}

TEST(StaggerSchedulerTest, NextCheckpointTickIsStrictlyAfterTheQueryTick) {
  // The boundary that used to be wrong: querying AT a scheduled start must
  // answer the following period's start ("next"), not echo "now" back --
  // ShouldCheckpoint(shard, start) already covers "now".
  StaggerScheduler scheduler(StaggerConfig{4, 8, /*staggered=*/true});
  for (uint32_t shard = 0; shard < 4; ++shard) {
    const uint64_t offset = scheduler.OffsetTicks(shard);
    for (uint64_t start = offset; start < offset + 40; start += 8) {
      ASSERT_TRUE(scheduler.ShouldCheckpoint(shard, start));
      EXPECT_EQ(scheduler.NextCheckpointTick(shard, start), start + 8)
          << "shard " << shard << " start " << start;
    }
  }
  // Before the first start, the first start is the next one.
  EXPECT_EQ(scheduler.NextCheckpointTick(1, 1), 2u);
  // Synchronized schedule: same rule at tick 0.
  StaggerScheduler synced(StaggerConfig{4, 8, /*staggered=*/false});
  EXPECT_EQ(synced.NextCheckpointTick(0, 0), 8u);
}

// ---- Adaptive stagger ----

// Deterministic disk model: every checkpoint occupies the disk for
// `duration` ticks after its start; completions are reported before the
// next tick's scheduling decisions, the same order ShardedEngine uses.
struct AdaptiveSimResult {
  uint32_t max_concurrent = 0;
  std::vector<int> starts_per_shard;
};

AdaptiveSimResult RunAdaptiveSim(StaggerScheduler* scheduler, uint32_t shards,
                                 uint64_t ticks, uint64_t duration) {
  AdaptiveSimResult result;
  result.starts_per_shard.assign(shards, 0);
  std::vector<uint64_t> busy_until(shards, 0);
  std::vector<bool> inflight(shards, false);
  uint32_t active = 0;
  for (uint64_t tick = 0; tick < ticks; ++tick) {
    for (uint32_t shard = 0; shard < shards; ++shard) {
      if (inflight[shard] && tick >= busy_until[shard]) {
        scheduler->ObserveCheckpointEnd(shard, tick, 0.001 * duration);
        inflight[shard] = false;
        --active;
      }
    }
    for (uint32_t shard = 0; shard < shards; ++shard) {
      if (scheduler->ShouldCheckpoint(shard, tick)) {
        EXPECT_FALSE(inflight[shard]);
        inflight[shard] = true;
        busy_until[shard] = tick + duration;
        ++active;
        ++result.starts_per_shard[shard];
        result.max_concurrent = std::max(result.max_concurrent, active);
      }
    }
  }
  return result;
}

TEST(StaggerSchedulerTest, AdaptiveNeverExceedsDiskBudget) {
  // Writes take 5 ticks but the fixed slot width is period/K = 2: the fixed
  // schedule would overlap up to 3 flushes; adaptive must keep it at 1.
  StaggerConfig config{4, 8, /*staggered=*/true};
  config.adaptive = true;
  config.disk_budget = 1;
  StaggerScheduler scheduler(config);
  const AdaptiveSimResult result =
      RunAdaptiveSim(&scheduler, 4, 400, /*duration=*/5);
  EXPECT_EQ(result.max_concurrent, 1u);
  EXPECT_LE(scheduler.max_concurrent_starts(), 1u);
  EXPECT_GT(scheduler.deferrals(), 0u);
  for (uint32_t shard = 0; shard < 4; ++shard) {
    // Oversubscribed disk: shards checkpoint less often than the period,
    // but none starves.
    EXPECT_GE(result.starts_per_shard[shard], 5) << "shard " << shard;
    EXPECT_GT(scheduler.EwmaTicks(shard), 0.0);
    EXPECT_GT(scheduler.EwmaWriteSeconds(shard), 0.0);
  }
}

TEST(StaggerSchedulerTest, AdaptiveHonorsLargerBudgets) {
  StaggerConfig config{6, 12, /*staggered=*/true};
  config.adaptive = true;
  config.disk_budget = 2;
  StaggerScheduler scheduler(config);
  const AdaptiveSimResult result =
      RunAdaptiveSim(&scheduler, 6, 600, /*duration=*/7);
  EXPECT_LE(result.max_concurrent, 2u);
  EXPECT_LE(scheduler.max_concurrent_starts(), 2u);
}

TEST(StaggerSchedulerTest, AdaptiveFifoGrantsSlotsInClaimAgeOrderAtBudgetOne) {
  // Direct coverage of the FIFO anti-starvation rule (previously only
  // implied by the per-shard start counts): on a disk oversubscribed to a
  // budget of 1 (writes of 7 ticks vs period/K slots of 2), a freed slot
  // must go to the OLDEST due claim -- in particular, shard 0 coming due
  // again must yield to shards 2 and 3, which have been waiting since
  // their first offsets. Without the yield, the per-tick index-order scan
  // hands every slot to shard 0 and starves the tail.
  StaggerConfig config{4, 8, /*staggered=*/true};
  config.adaptive = true;
  config.disk_budget = 1;
  StaggerScheduler scheduler(config);

  constexpr uint64_t kDuration = 7;
  std::vector<uint32_t> start_order;
  std::vector<uint64_t> start_ticks;
  std::vector<uint64_t> busy_until(4, 0);
  std::vector<bool> inflight(4, false);
  for (uint64_t tick = 0; tick < 48; ++tick) {
    for (uint32_t shard = 0; shard < 4; ++shard) {
      if (inflight[shard] && tick >= busy_until[shard]) {
        scheduler.ObserveCheckpointEnd(shard, tick, 0.001 * kDuration);
        inflight[shard] = false;
      }
    }
    for (uint32_t shard = 0; shard < 4; ++shard) {
      if (scheduler.ShouldCheckpoint(shard, tick)) {
        inflight[shard] = true;
        busy_until[shard] = tick + kDuration;
        start_order.push_back(shard);
        start_ticks.push_back(tick);
      }
    }
  }
  // One write drains every 7 ticks, and each grant goes to the oldest
  // claim: strict round-robin 0,1,2,3,0,1 -- shard 0's second claim (due
  // at tick 8) waits behind shards 2 and 3 until tick 28.
  ASSERT_GE(start_order.size(), 6u);
  const std::vector<uint32_t> expected_order = {0, 1, 2, 3, 0, 1};
  const std::vector<uint64_t> expected_ticks = {0, 7, 14, 21, 28, 35};
  for (size_t i = 0; i < expected_order.size(); ++i) {
    EXPECT_EQ(start_order[i], expected_order[i]) << "start " << i;
    EXPECT_EQ(start_ticks[i], expected_ticks[i]) << "start " << i;
  }
  EXPECT_EQ(scheduler.max_concurrent_starts(), 1u);
  EXPECT_GT(scheduler.deferrals(), 0u);
}

TEST(StaggerSchedulerTest, AdaptiveNarrowsBackToThePeriodWhenWritesAreFast) {
  // Writes fit the slot: the adaptive plan should settle on the fixed
  // cadence (one start per shard per period) with no deferrals.
  StaggerConfig config{4, 8, /*staggered=*/true};
  config.adaptive = true;
  config.disk_budget = 1;
  StaggerScheduler scheduler(config);
  const AdaptiveSimResult result =
      RunAdaptiveSim(&scheduler, 4, 400, /*duration=*/1);
  EXPECT_EQ(result.max_concurrent, 1u);
  EXPECT_EQ(scheduler.deferrals(), 0u);
  for (uint32_t shard = 0; shard < 4; ++shard) {
    // 400 ticks / period 8 = 50 slots; allow slack for the offset ramp-in.
    EXPECT_GE(result.starts_per_shard[shard], 48) << "shard " << shard;
  }
}

// ---- ShardedEngine fixture ----

class ShardedEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string name(::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name());
    for (auto& c : name) {
      if (c == '/') c = '_';
    }
    dir_ = (std::filesystem::temp_directory_path() / ("tp_sharded_" + name))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  ShardedEngineConfig Config(AlgorithmKind kind, uint32_t num_shards,
                             bool staggered = true) {
    ShardedEngineConfig config;
    config.shard.layout = ShardLayout();
    config.shard.algorithm = kind;
    config.shard.dir = dir_;
    config.shard.fsync = false;  // simulated crashes: page cache is durable
    config.shard.full_flush_period = 3;
    config.num_shards = num_shards;
    config.checkpoint_period_ticks = 5;
    config.staggered = staggered;
    return config;
  }

  /// Runs ticks [0, ticks) of the deterministic workload, mirroring every
  /// update into the per-shard reference tables.
  void RunTicks(ShardedEngine* engine, uint64_t ticks,
                std::vector<StateTable>* reference) {
    const uint64_t num_cells = ShardLayout().num_cells();
    if (reference->empty()) {
      for (uint32_t i = 0; i < engine->num_shards(); ++i) {
        reference->emplace_back(ShardLayout());
      }
    }
    for (uint64_t t = 0; t < ticks; ++t) {
      const uint64_t tick = engine->current_tick();
      engine->BeginTick();
      for (uint32_t shard = 0; shard < engine->num_shards(); ++shard) {
        for (uint64_t i = 0; i < kUpdatesPerTick; ++i) {
          const uint32_t cell = WorkloadCell(shard, tick, i, num_cells);
          const int32_t value = WorkloadValue(tick, cell, i);
          engine->ApplyUpdate(shard, cell, value);
          (*reference)[shard].WriteCell(cell, value);
        }
      }
      ASSERT_TRUE(engine->EndTick().ok());
    }
  }

  std::string dir_;
};

TEST_F(ShardedEngineTest, OpenValidatesItsConfig) {
  // Regression: num_shards == 0 and cut_lead_ticks == 0 must be caught at
  // fleet creation as InvalidArgument, never reach the
  // scheduler/coordinator unchecked (a zero cut lead would arm a cut at
  // the CURRENT tick and race the tick being assembled).
  {
    auto config = Config(AlgorithmKind::kCopyOnUpdate, 2);
    config.num_shards = 0;
    EXPECT_EQ(Fleet::Create(config.shard.dir, config).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    auto config = Config(AlgorithmKind::kCopyOnUpdate, 2);
    config.cut_lead_ticks = 0;
    EXPECT_EQ(Fleet::Create(config.shard.dir, config).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    auto config = Config(AlgorithmKind::kCopyOnUpdate, 2);
    config.checkpoint_period_ticks = 0;
    EXPECT_EQ(Fleet::Create(config.shard.dir, config).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    auto config = Config(AlgorithmKind::kCopyOnUpdate, 2);
    config.max_queue_ticks = 0;
    EXPECT_EQ(Fleet::Create(config.shard.dir, config).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    auto config = Config(AlgorithmKind::kCopyOnUpdate, 2);
    config.disk_budget = 0;
    EXPECT_EQ(Fleet::Create(config.shard.dir, config).status().code(),
              StatusCode::kInvalidArgument);
  }
}

TEST_F(ShardedEngineTest, RunsAndShutsDownCleanly) {
  const auto config = Config(AlgorithmKind::kCopyOnUpdate, 3);
  auto fleet_or = Fleet::Create(config.shard.dir, config);
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  ShardedEngine& engine = fleet_or.value()->engine();
  std::vector<StateTable> reference;
  RunTicks(&engine, 20, &reference);
  ASSERT_TRUE(engine.Shutdown().ok());
  for (uint32_t i = 0; i < engine.num_shards(); ++i) {
    EXPECT_TRUE(engine.shard(i).state().ContentEquals(reference[i]))
        << "shard " << i;
    EXPECT_GE(engine.shard(i).metrics().checkpoints.size(), 3u);
  }
  const ShardedCheckpointStats stats = engine.CheckpointStats();
  EXPECT_GE(stats.checkpoints, 9u);
  EXPECT_GT(stats.avg_total_seconds, 0.0);
  EXPECT_GE(stats.max_total_seconds, stats.avg_total_seconds);
}

TEST_F(ShardedEngineTest, RecoverAfterCleanShutdown) {
  const auto config = Config(AlgorithmKind::kCopyOnUpdatePartialRedo, 2);
  std::vector<StateTable> reference;
  {
    auto fleet_or = Fleet::Create(config.shard.dir, config);
    ASSERT_TRUE(fleet_or.ok());
    RunTicks(&fleet_or.value()->engine(), 25, &reference);
    ASSERT_TRUE(fleet_or.value()->Shutdown().ok());
  }
  auto recovered_or = Fleet::Recover(config.shard.dir);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  const ShardedRecoveryResult& result = recovered_or->result().fleet;
  std::vector<StateTable>& recovered = recovered_or->tables();
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_EQ(result.min_recovered_ticks, 25u);
  EXPECT_EQ(result.max_recovered_ticks, 25u);
  for (uint32_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(recovered[i].ContentEquals(reference[i])) << "shard " << i;
  }
}

TEST_F(ShardedEngineTest, StaggeredShardsSitAtDifferentGenerations) {
  // Period 8, K=4: offsets 0/2/4/6, so at crash tick 13 each shard's newest
  // complete image covers a different consistent tick.
  auto config = Config(AlgorithmKind::kCopyOnUpdate, 4);
  config.checkpoint_period_ticks = 8;
  auto fleet_or = Fleet::Create(config.shard.dir, config);
  ASSERT_TRUE(fleet_or.ok());
  std::vector<StateTable> reference;
  RunTicks(&fleet_or.value()->engine(), 14, &reference);
  ASSERT_TRUE(fleet_or.value()->SimulateCrash().ok());

  auto recovered_or = Fleet::Recover(config.shard.dir);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  const ShardedRecoveryResult& result = recovered_or->result().fleet;
  std::vector<StateTable>& recovered = recovered_or->tables();
  std::set<uint64_t> image_ticks;
  for (const RecoveryResult& shard : result.shards) {
    ASSERT_TRUE(shard.restored_from_checkpoint);
    image_ticks.insert(shard.image_consistent_ticks);
  }
  EXPECT_GE(image_ticks.size(), 2u)
      << "staggered shards should restore from different generations";
  EXPECT_EQ(result.min_recovered_ticks, 14u);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(recovered[i].ContentEquals(reference[i])) << "shard " << i;
  }
}

// ---- Partial failure (the EndTick desync regression) ----

TEST_F(ShardedEngineTest, EndTickPartialFailureLeavesNoShardMidTick) {
  // Inject an EndTick failure on shard 1 of 4. The regression: EndTick
  // used to early-return on the first failing shard, leaving shards 2-3
  // stuck with in_tick_ == true and the fleet tick not advanced.
  auto config = Config(AlgorithmKind::kCopyOnUpdate, 4);
  config.threaded = false;  // deterministic: the error surfaces in-tick
  auto fleet_or = Fleet::Create(config.shard.dir, config);
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  ShardedEngine& engine = fleet_or.value()->engine();
  std::vector<StateTable> reference;
  RunTicks(&engine, 3, &reference);

  engine.shard(1).InjectEndTickErrorForTest(Status::IOError("injected"));
  const uint64_t num_cells = ShardLayout().num_cells();
  engine.BeginTick();
  for (uint32_t shard = 0; shard < 4; ++shard) {
    for (uint64_t i = 0; i < kUpdatesPerTick; ++i) {
      const uint32_t cell = WorkloadCell(shard, 3, i, num_cells);
      const int32_t value = WorkloadValue(3, cell, i);
      engine.ApplyUpdate(shard, cell, value);
      // Shard 1 loses this tick; every other shard must still commit it.
      if (shard != 1) reference[shard].WriteCell(cell, value);
    }
  }
  const Status status = engine.EndTick();
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(engine.failed());

  // The fleet tick advanced exactly once; shards 0/2/3 finished the tick
  // (not left mid-tick) and shard 1 froze at its failure tick.
  EXPECT_EQ(engine.current_tick(), 4u);
  EXPECT_EQ(engine.shard(0).current_tick(), 4u);
  EXPECT_EQ(engine.shard(1).current_tick(), 3u);
  EXPECT_EQ(engine.shard(2).current_tick(), 4u);
  EXPECT_EQ(engine.shard(3).current_tick(), 4u);

  // The hard-failed fleet shuts down in a defined way: engines close
  // cleanly, and Shutdown reports the sticky shard error instead of
  // swallowing it.
  EXPECT_FALSE(engine.Shutdown().ok());

  // Every shard recovers its own durable prefix: the healthy shards to the
  // fleet tick, the failed shard to its frozen tick.
  auto recovered_or = Fleet::Recover(config.shard.dir);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  const ShardedRecoveryResult& result = recovered_or->result().fleet;
  std::vector<StateTable>& recovered = recovered_or->tables();
  EXPECT_EQ(result.min_recovered_ticks, 3u);
  EXPECT_EQ(result.max_recovered_ticks, 4u);
  EXPECT_EQ(result.shards[1].recovered_ticks, 3u);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(recovered[i].ContentEquals(reference[i])) << "shard " << i;
  }
}

TEST_F(ShardedEngineTest, ThreadedPartialFailureHardFailsTheFleet) {
  // Threaded mode: the failing shard's error surfaces on a later EndTick
  // poll (or the WaitForIdle barrier), the healthy shards keep consuming
  // every submitted tick, and the fleet lands in the defined failed state.
  auto config = Config(AlgorithmKind::kCopyOnUpdate, 4);
  ASSERT_TRUE(config.threaded);
  auto fleet_or = Fleet::Create(config.shard.dir, config);
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  ShardedEngine& engine = fleet_or.value()->engine();
  std::vector<StateTable> reference;
  RunTicks(&engine, 5, &reference);

  // Quiesce the fleet so the injection happens on a parked shard.
  ASSERT_TRUE(engine.WaitForIdle().ok());
  engine.shard(1).InjectEndTickErrorForTest(Status::IOError("injected"));

  const uint64_t num_cells = ShardLayout().num_cells();
  Status status = Status::OK();
  while (status.ok() && engine.current_tick() < 20) {
    const uint64_t tick = engine.current_tick();
    engine.BeginTick();
    for (uint32_t shard = 0; shard < 4; ++shard) {
      for (uint64_t i = 0; i < kUpdatesPerTick; ++i) {
        const uint32_t cell = WorkloadCell(shard, tick, i, num_cells);
        const int32_t value = WorkloadValue(tick, cell, i);
        engine.ApplyUpdate(shard, cell, value);
        // Shard 1 fails at tick 5 and discards everything after.
        if (shard != 1) reference[shard].WriteCell(cell, value);
      }
    }
    status = engine.EndTick();
  }
  // Always barrier before inspecting per-shard engines: the healthy
  // runners may still be consuming when the error surfaces.
  const Status drain_status = engine.WaitForIdle();
  if (status.ok()) status = drain_status;
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(engine.failed());

  // No shard is left mid-tick: the healthy shards consumed every submitted
  // tick, the failed shard froze at its failure tick.
  EXPECT_EQ(engine.shard(1).current_tick(), 5u);
  for (uint32_t healthy : {0u, 2u, 3u}) {
    EXPECT_EQ(engine.shard(healthy).current_tick(), engine.current_tick())
        << "shard " << healthy;
  }
  const uint64_t fleet_ticks = engine.current_tick();
  EXPECT_FALSE(engine.Shutdown().ok());

  auto recovered_or = Fleet::Recover(config.shard.dir);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  const ShardedRecoveryResult& result = recovered_or->result().fleet;
  std::vector<StateTable>& recovered = recovered_or->tables();
  EXPECT_EQ(result.min_recovered_ticks, 5u);
  EXPECT_EQ(result.max_recovered_ticks, fleet_ticks);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(recovered[i].ContentEquals(reference[i])) << "shard " << i;
  }
}

// ---- Threaded/inline equivalence and the adaptive fleet ----

TEST_F(ShardedEngineTest, ThreadedMatchesTheInlineFacade) {
  // Same workload, same schedule: per-shard final states must be identical
  // whether the shards run on their own mutator threads or multiplexed on
  // the facade's, and the checkpoint cadence must agree. (Exact start
  // ticks are NOT compared: a request is served at the first EndTick that
  // observes the previous flush drained, which depends on real writer
  // timing.)
  std::vector<std::unique_ptr<Fleet>> fleets;
  for (const bool threaded : {false, true}) {
    auto config = Config(AlgorithmKind::kCopyOnUpdate, 3);
    config.shard.dir = dir_ + (threaded ? "/threaded" : "/inline");
    config.threaded = threaded;
    auto fleet_or = Fleet::Create(config.shard.dir, config);
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    std::vector<StateTable> reference;
    RunTicks(&fleet_or.value()->engine(), 20, &reference);
    ASSERT_TRUE(fleet_or.value()->Shutdown().ok());
    fleets.push_back(std::move(fleet_or.value()));
  }
  for (uint32_t i = 0; i < 3; ++i) {
    const Engine& inline_shard = fleets[0]->engine().shard(i);
    const Engine& threaded_shard = fleets[1]->engine().shard(i);
    EXPECT_TRUE(threaded_shard.state().ContentEquals(inline_shard.state()))
        << "shard " << i;
    const size_t inline_count = inline_shard.metrics().checkpoints.size();
    const size_t threaded_count =
        threaded_shard.metrics().checkpoints.size();
    EXPECT_GE(inline_count, 3u) << "shard " << i;
    EXPECT_GE(threaded_count, 3u) << "shard " << i;
    const size_t difference = inline_count > threaded_count
                                  ? inline_count - threaded_count
                                  : threaded_count - inline_count;
    EXPECT_LE(difference, 1u) << "shard " << i;
  }
}

TEST_F(ShardedEngineTest, AdaptiveFleetRespectsTheDiskBudget) {
  auto config = Config(AlgorithmKind::kCopyOnUpdate, 4);
  config.adaptive = true;
  config.disk_budget = 1;
  auto fleet_or = Fleet::Create(config.shard.dir, config);
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  ShardedEngine& engine = fleet_or.value()->engine();
  // Pace the ticks (a 30 Hz loop would): unpaced, the runners outrun the
  // writer threads so completions only surface at shutdown and the budget
  // correctly blocks every later start.
  const uint64_t num_cells = ShardLayout().num_cells();
  std::vector<StateTable> reference;
  for (uint32_t i = 0; i < 4; ++i) reference.emplace_back(ShardLayout());
  uint64_t tick = 0;
  const auto run_ticks = [&](uint64_t count) {
    for (uint64_t end = tick + count; tick < end; ++tick) {
      engine.BeginTick();
      for (uint32_t shard = 0; shard < 4; ++shard) {
        for (uint64_t i = 0; i < kUpdatesPerTick; ++i) {
          const uint32_t cell = WorkloadCell(shard, tick, i, num_cells);
          const int32_t value = WorkloadValue(tick, cell, i);
          engine.ApplyUpdate(shard, cell, value);
          reference[shard].WriteCell(cell, value);
        }
      }
      ASSERT_TRUE(engine.EndTick().ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  run_ticks(40);
  // Budget-1 serializes every flush, so how many ticks the last shard's
  // second checkpoint needs depends on measured write times -- under a
  // sanitizer's slowdown, 40 ticks may not be enough. Keep ticking until
  // every shard has two, bounded far above what an unslowed run needs.
  while (tick < 400) {
    ASSERT_TRUE(engine.WaitForIdle().ok());
    bool all_twice = true;
    for (uint32_t i = 0; i < 4; ++i) {
      all_twice &= engine.shard(i).metrics().checkpoints.size() >= 2;
    }
    if (all_twice) break;
    run_ticks(20);
  }
  ASSERT_TRUE(engine.Shutdown().ok());
  // The hard budget invariant, measured on the real engine: never more
  // than disk_budget concurrent scheduled flushes.
  EXPECT_LE(engine.scheduler().max_concurrent_starts(), 1u);
  // Every shard still checkpoints and the fleet stays exact.
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_GE(engine.shard(i).metrics().checkpoints.size(), 2u)
        << "shard " << i;
    EXPECT_TRUE(engine.shard(i).state().ContentEquals(reference[i]))
        << "shard " << i;
  }
}

// ---- The fleet crash-recovery property ----

struct ShardedCrashCase {
  AlgorithmKind kind;
  uint32_t num_shards;
  uint64_t crash_tick;
  bool staggered;
  bool threaded = true;
  bool adaptive = false;
};

class ShardedCrashRecoveryTest
    : public ShardedEngineTest,
      public ::testing::WithParamInterface<ShardedCrashCase> {};

TEST_P(ShardedCrashRecoveryTest, EveryShardRecoversExactly) {
  const ShardedCrashCase param = GetParam();
  auto config = Config(param.kind, param.num_shards, param.staggered);
  config.threaded = param.threaded;
  config.adaptive = param.adaptive;
  auto fleet_or = Fleet::Create(config.shard.dir, config);
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  ShardedEngine& engine = fleet_or.value()->engine();

  std::vector<StateTable> reference;
  RunTicks(&engine, param.crash_tick + 1, &reference);
  ASSERT_TRUE(engine.SimulateCrash().ok());

  auto recovered_or = Fleet::Recover(config.shard.dir);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  const ShardedRecoveryResult& result = recovered_or->result().fleet;
  std::vector<StateTable>& recovered = recovered_or->tables();
  ASSERT_EQ(recovered.size(), param.num_shards);
  EXPECT_EQ(result.min_recovered_ticks, param.crash_tick + 1);
  EXPECT_EQ(result.max_recovered_ticks, param.crash_tick + 1);
  for (uint32_t i = 0; i < param.num_shards; ++i) {
    // The in-memory state at the crash is the gold reference...
    ASSERT_TRUE(engine.shard(i).state().ContentEquals(reference[i]))
        << "shard " << i << " diverged from reference before the crash";
    // ...and recovery must rebuild it bit-for-bit.
    EXPECT_TRUE(recovered[i].ContentEquals(reference[i]))
        << AlgorithmName(param.kind) << " K=" << param.num_shards
        << " crash@" << param.crash_tick << ": shard " << i << " diverges";
  }
}

std::vector<ShardedCrashCase> AllShardedCrashCases() {
  constexpr uint64_t kTicks = 18;  // > 3 periods: covers offsets and flushes
  std::vector<ShardedCrashCase> cases;
  // The two paper-validated algorithms: crash at EVERY tick, K in {2, 4}.
  for (AlgorithmKind kind :
       {AlgorithmKind::kNaiveSnapshot, AlgorithmKind::kCopyOnUpdate}) {
    for (uint32_t num_shards : {2u, 4u}) {
      for (uint64_t tick = 0; tick < kTicks; ++tick) {
        cases.push_back({kind, num_shards, tick, /*staggered=*/true});
      }
    }
  }
  // The remaining four: sampled crash ticks (early / mid-period / late),
  // both shard counts, plus the synchronized schedule.
  for (AlgorithmKind kind :
       {AlgorithmKind::kDribble, AlgorithmKind::kAtomicCopyDirty,
        AlgorithmKind::kPartialRedo,
        AlgorithmKind::kCopyOnUpdatePartialRedo}) {
    for (uint32_t num_shards : {2u, 4u}) {
      for (uint64_t tick : {3ull, 11ull, 16ull}) {
        cases.push_back({kind, num_shards, tick, /*staggered=*/true});
      }
    }
  }
  for (AlgorithmKind kind :
       {AlgorithmKind::kNaiveSnapshot, AlgorithmKind::kCopyOnUpdate}) {
    for (uint64_t tick : {0ull, 7ull, 13ull}) {
      cases.push_back({kind, 4, tick, /*staggered=*/false});
    }
  }
  // The inline (single-thread facade) path stays covered...
  for (AlgorithmKind kind :
       {AlgorithmKind::kNaiveSnapshot, AlgorithmKind::kCopyOnUpdate}) {
    for (uint64_t tick : {2ull, 9ull, 16ull}) {
      cases.push_back(
          {kind, 4, tick, /*staggered=*/true, /*threaded=*/false});
    }
  }
  // ...and the adaptive schedule must be recovery-exact too (whatever
  // starts it picked, every shard's durable prefix rebuilds bit-for-bit).
  for (uint64_t tick : {4ull, 12ull, 17ull}) {
    cases.push_back({AlgorithmKind::kCopyOnUpdate, 4, tick,
                     /*staggered=*/true, /*threaded=*/true,
                     /*adaptive=*/true});
  }
  return cases;
}

std::string ShardedCrashCaseName(
    const ::testing::TestParamInfo<ShardedCrashCase>& info) {
  std::string name = std::string(GetTraits(info.param.kind).short_name) +
                     "_k" + std::to_string(info.param.num_shards) + "_tick" +
                     std::to_string(info.param.crash_tick) +
                     (info.param.staggered ? "" : "_sync") +
                     (info.param.threaded ? "" : "_inline") +
                     (info.param.adaptive ? "_adaptive" : "");
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(FleetCrashPoints, ShardedCrashRecoveryTest,
                         ::testing::ValuesIn(AllShardedCrashCases()),
                         ShardedCrashCaseName);

// ---- The fleet-wide consistent cut ----

struct CutCrashCase {
  AlgorithmKind kind;
  uint32_t num_shards;
  uint64_t crash_tick;
  bool threaded;
};

class ConsistentCutCrashRecoveryTest
    : public ShardedEngineTest,
      public ::testing::WithParamInterface<CutCrashCase> {};

// The central tentpole property: with the cut requested at fleet tick 2
// (cut tick T = 4), a crash at ANY tick either recovers the whole fleet to
// exactly T from the committed manifest (crash after the commit, however
// many staggered checkpoints landed since), or falls back to per-shard
// exactness (crash before the commit -- including the crash BETWEEN the
// last shard ack and the manifest commit, which is exactly the
// crash_tick == T case: every shard's cut checkpoint is durable but
// CommitConsistentCut never ran).
TEST_P(ConsistentCutCrashRecoveryTest, FleetRecoversExactlyToTheCut) {
  const CutCrashCase param = GetParam();
  auto config = Config(param.kind, param.num_shards);
  config.threaded = param.threaded;
  auto fleet_or = Fleet::Create(config.shard.dir, config);
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  ShardedEngine& engine = fleet_or.value()->engine();

  constexpr uint64_t kRequestAt = 2;
  std::vector<StateTable> reference;
  std::vector<StateTable> reference_at_cut;
  uint64_t cut_tick = 0;
  bool armed = false;
  bool committed = false;
  for (uint64_t t = 0; t <= param.crash_tick; ++t) {
    if (!armed && engine.current_tick() == kRequestAt) {
      auto cut_or = engine.RequestConsistentCut();
      ASSERT_TRUE(cut_or.ok()) << cut_or.status().ToString();
      cut_tick = cut_or.value();
      ASSERT_EQ(cut_tick, kRequestAt + config.cut_lead_ticks);
      armed = true;
    }
    RunTicks(&engine, 1, &reference);
    if (armed && !committed && engine.current_tick() == cut_tick + 1) {
      reference_at_cut = SnapshotTables(reference);
      if (param.crash_tick > cut_tick) {
        const Status commit = engine.CommitConsistentCut();
        ASSERT_TRUE(commit.ok()) << commit.ToString();
        committed = true;
        EXPECT_EQ(engine.last_cut_report().cut_tick, cut_tick);
      }
      // crash_tick == cut_tick: fall through WITHOUT committing -- the
      // ack/commit gap case.
    }
  }
  ASSERT_TRUE(engine.SimulateCrash().ok());

  auto recovered_or = Fleet::RecoverToCut(config.shard.dir);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  const ShardedCutRecoveryResult& result = recovered_or->result();
  std::vector<StateTable>& recovered = recovered_or->tables();
  ASSERT_EQ(recovered.size(), param.num_shards);
  if (committed) {
    EXPECT_TRUE(result.used_manifest);
    EXPECT_TRUE(recovered_or->at_cut());
    EXPECT_EQ(result.cut_tick, cut_tick);
    EXPECT_EQ(result.fleet.min_recovered_ticks, cut_tick + 1);
    EXPECT_EQ(result.fleet.max_recovered_ticks, cut_tick + 1);
    for (uint32_t i = 0; i < param.num_shards; ++i) {
      EXPECT_TRUE(recovered[i].ContentEquals(reference_at_cut[i]))
          << AlgorithmName(param.kind) << " K=" << param.num_shards
          << " crash@" << param.crash_tick << ": shard " << i
          << " diverges from the cut state";
    }
  } else {
    EXPECT_FALSE(result.used_manifest);
    EXPECT_EQ(result.fleet.min_recovered_ticks, param.crash_tick + 1);
    EXPECT_EQ(result.fleet.max_recovered_ticks, param.crash_tick + 1);
    for (uint32_t i = 0; i < param.num_shards; ++i) {
      EXPECT_TRUE(recovered[i].ContentEquals(reference[i]))
          << AlgorithmName(param.kind) << " K=" << param.num_shards
          << " crash@" << param.crash_tick << ": shard " << i
          << " diverges in the per-shard fallback";
    }
  }
}

std::vector<CutCrashCase> AllCutCrashCases() {
  constexpr uint64_t kTicks = 18;  // well past the cut: later staggered
                                   // checkpoints overwrite the cut images
  std::vector<CutCrashCase> cases;
  // Double-backup organization: crash at EVERY tick, K in {2, 4},
  // threaded and inline.
  for (bool threaded : {true, false}) {
    for (uint32_t num_shards : {2u, 4u}) {
      for (uint64_t tick = 0; tick < kTicks; ++tick) {
        cases.push_back(
            {AlgorithmKind::kCopyOnUpdate, num_shards, tick, threaded});
      }
    }
  }
  // Log organization: cut segments live inside generations that later full
  // flushes retire, forcing the zero+bounded-replay path.
  for (uint32_t num_shards : {2u, 4u}) {
    for (uint64_t tick = 0; tick < kTicks; ++tick) {
      cases.push_back({AlgorithmKind::kCopyOnUpdatePartialRedo, num_shards,
                       tick, /*threaded=*/true});
    }
  }
  // Dribble: every checkpoint is a fresh all-objects generation.
  for (uint64_t tick : {0ull, 4ull, 9ull, 16ull}) {
    cases.push_back({AlgorithmKind::kDribble, 2, tick, /*threaded=*/true});
  }
  return cases;
}

std::string CutCrashCaseName(
    const ::testing::TestParamInfo<CutCrashCase>& info) {
  std::string name = std::string(GetTraits(info.param.kind).short_name) +
                     "_k" + std::to_string(info.param.num_shards) + "_tick" +
                     std::to_string(info.param.crash_tick) +
                     (info.param.threaded ? "" : "_inline");
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(CutCrashPoints, ConsistentCutCrashRecoveryTest,
                         ::testing::ValuesIn(AllCutCrashCases()),
                         CutCrashCaseName);

TEST_F(ShardedEngineTest, ConsistentCutProtocolGuards) {
  auto config = Config(AlgorithmKind::kCopyOnUpdate, 2);
  auto fleet_or = Fleet::Create(config.shard.dir, config);
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  ShardedEngine& engine = fleet_or.value()->engine();
  std::vector<StateTable> reference;

  // Commit with nothing armed.
  EXPECT_EQ(engine.CommitConsistentCut().code(),
            StatusCode::kFailedPrecondition);

  auto cut_or = engine.RequestConsistentCut();
  ASSERT_TRUE(cut_or.ok());
  const uint64_t cut_tick = cut_or.value();
  EXPECT_TRUE(engine.cut_in_flight());
  EXPECT_EQ(engine.pending_cut_tick(), cut_tick);
  // Only one cut may be in flight.
  EXPECT_EQ(engine.RequestConsistentCut().status().code(),
            StatusCode::kFailedPrecondition);
  // Committing before tick T has been driven is refused.
  EXPECT_EQ(engine.CommitConsistentCut().code(),
            StatusCode::kFailedPrecondition);

  RunTicks(&engine, cut_tick + 1, &reference);
  ASSERT_TRUE(engine.CommitConsistentCut().ok());
  EXPECT_FALSE(engine.cut_in_flight());
  EXPECT_GT(engine.last_cut_report().commit_latency_seconds, 0.0);

  // The committed manifest is well-formed: one ack per shard, each at
  // exactly the cut tick's end.
  auto manifest_or = ReadCutManifest(config.shard.dir);
  ASSERT_TRUE(manifest_or.ok()) << manifest_or.status().ToString();
  EXPECT_EQ(manifest_or->cut_tick, cut_tick);
  ASSERT_EQ(manifest_or->shards.size(), 2u);
  for (const CutShardRecord& shard : manifest_or->shards) {
    EXPECT_EQ(shard.consistent_ticks, cut_tick + 1);
  }

  // A second cut after the first committed is legal and replaces the
  // manifest.
  auto second_or = engine.RequestConsistentCut();
  ASSERT_TRUE(second_or.ok());
  RunTicks(&engine, second_or.value() + 1 - engine.current_tick() + 1,
           &reference);
  ASSERT_TRUE(engine.CommitConsistentCut().ok());
  auto second_manifest_or = ReadCutManifest(config.shard.dir);
  ASSERT_TRUE(second_manifest_or.ok());
  EXPECT_EQ(second_manifest_or->cut_tick, second_or.value());
  ASSERT_TRUE(engine.Shutdown().ok());
}

TEST_F(ShardedEngineTest, TornCutManifestFallsBackToPerShardRecovery) {
  auto config = Config(AlgorithmKind::kCopyOnUpdate, 2);
  auto fleet_or = Fleet::Create(config.shard.dir, config);
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  ShardedEngine& engine = fleet_or.value()->engine();
  std::vector<StateTable> reference;
  RunTicks(&engine, 2, &reference);
  auto cut_or = engine.RequestConsistentCut();
  ASSERT_TRUE(cut_or.ok());
  RunTicks(&engine, cut_or.value() + 1 - engine.current_tick(), &reference);
  ASSERT_TRUE(engine.CommitConsistentCut().ok());
  RunTicks(&engine, 3, &reference);
  const uint64_t crash_ticks = engine.current_tick();
  ASSERT_TRUE(engine.SimulateCrash().ok());

  // Tear the committed manifest (crash-during-publish damage model): the
  // cut must be ignored, not half-applied.
  const std::string manifest_path = CutManifestPath(config.shard.dir);
  std::error_code ec;
  const uint64_t size = std::filesystem::file_size(manifest_path, ec);
  ASSERT_FALSE(ec);
  std::filesystem::resize_file(manifest_path, size / 2, ec);
  ASSERT_FALSE(ec);

  auto recovered_or = Fleet::RecoverToCut(config.shard.dir);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  const ShardedCutRecoveryResult& result = recovered_or->result();
  std::vector<StateTable>& recovered = recovered_or->tables();
  EXPECT_FALSE(result.used_manifest);
  EXPECT_EQ(result.fleet.min_recovered_ticks, crash_ticks);
  EXPECT_EQ(result.fleet.max_recovered_ticks, crash_ticks);
  for (uint32_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(recovered[i].ContentEquals(reference[i])) << "shard " << i;
  }
}

// ---- Seeded randomized fleet crash injection ----

// One fuzz iteration's shape, fully derived from the seed so a failure
// line names everything needed to replay it.
struct FuzzShape {
  AlgorithmKind kind;
  uint32_t num_shards;
  bool threaded;
  uint64_t crash_tick;
  bool with_cut;
  uint64_t request_at;
};

TEST_F(ShardedEngineTest, SeededRandomizedFleetCrashInjection) {
  // Randomized sweep over (algorithm, shard count, threaded/inline, crash
  // tick, cut-in-flight-or-not). The seed is printed via SCOPED_TRACE on
  // any failure; set TP_FLEET_FUZZ_SEED to replay a reported failure
  // exactly.
  uint64_t seed;
  if (const char* env = std::getenv("TP_FLEET_FUZZ_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  } else {
    std::random_device device;
    seed = (static_cast<uint64_t>(device()) << 32) ^ device();
  }
  SCOPED_TRACE("replay with TP_FLEET_FUZZ_SEED=" + std::to_string(seed));
  std::mt19937_64 rng(seed);
  const AlgorithmKind kinds[] = {
      AlgorithmKind::kNaiveSnapshot, AlgorithmKind::kCopyOnUpdate,
      AlgorithmKind::kDribble, AlgorithmKind::kCopyOnUpdatePartialRedo};

  constexpr int kIterations = 6;
  for (int iter = 0; iter < kIterations; ++iter) {
    FuzzShape shape;
    shape.kind = kinds[rng() % std::size(kinds)];
    shape.num_shards = 2 + static_cast<uint32_t>(rng() % 3);
    shape.threaded = (rng() & 1) != 0;
    shape.crash_tick = rng() % 20;
    shape.with_cut = (rng() & 1) != 0;
    shape.request_at = rng() % (shape.crash_tick + 1);
    SCOPED_TRACE("iter " + std::to_string(iter) + ": " +
                 std::string(AlgorithmName(shape.kind)) + " K=" +
                 std::to_string(shape.num_shards) +
                 (shape.threaded ? " threaded" : " inline") + " crash@" +
                 std::to_string(shape.crash_tick) +
                 (shape.with_cut
                      ? " cut-requested@" + std::to_string(shape.request_at)
                      : " no-cut"));

    auto config = Config(shape.kind, shape.num_shards);
    config.shard.dir = dir_ + "/iter" + std::to_string(iter);
    config.threaded = shape.threaded;
    auto fleet_or = Fleet::Create(config.shard.dir, config);
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    ShardedEngine& engine = fleet_or.value()->engine();

    std::vector<StateTable> reference;
    std::vector<StateTable> reference_at_cut;
    uint64_t cut_tick = 0;
    bool armed = false;
    bool committed = false;
    for (uint64_t t = 0; t <= shape.crash_tick; ++t) {
      if (shape.with_cut && !armed &&
          engine.current_tick() == shape.request_at) {
        auto cut_or = engine.RequestConsistentCut();
        ASSERT_TRUE(cut_or.ok()) << cut_or.status().ToString();
        cut_tick = cut_or.value();
        armed = true;
      }
      RunTicks(&engine, 1, &reference);
      if (armed && !committed && engine.current_tick() == cut_tick + 1) {
        reference_at_cut = SnapshotTables(reference);
        if (shape.crash_tick > cut_tick) {
          const Status commit = engine.CommitConsistentCut();
          ASSERT_TRUE(commit.ok()) << commit.ToString();
          committed = true;
        }
      }
    }
    ASSERT_TRUE(engine.SimulateCrash().ok());

    auto recovered_or = Fleet::RecoverToCut(config.shard.dir);
    ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
    const ShardedCutRecoveryResult& result = recovered_or->result();
    std::vector<StateTable>& recovered = recovered_or->tables();
    ASSERT_EQ(recovered.size(), shape.num_shards);
    const std::vector<StateTable>& expected =
        committed ? reference_at_cut : reference;
    const uint64_t expected_ticks =
        committed ? cut_tick + 1 : shape.crash_tick + 1;
    EXPECT_EQ(result.used_manifest, committed);
    EXPECT_EQ(result.fleet.min_recovered_ticks, expected_ticks);
    EXPECT_EQ(result.fleet.max_recovered_ticks, expected_ticks);
    for (uint32_t i = 0; i < shape.num_shards; ++i) {
      EXPECT_TRUE(recovered[i].ContentEquals(expected[i])) << "shard " << i;
    }
  }
}

}  // namespace
}  // namespace tickpoint
