// Unit tests of the decision-tree AI building blocks (movement, combat
// outcomes, healer behavior) on hand-built miniature worlds.
#include "game/ai.h"

#include <gtest/gtest.h>

#include "game/world.h"

namespace tickpoint {
namespace game {
namespace {

// A miniature arena with hand-placed units.
struct Arena {
  explicit Arena(uint32_t n = 8) : units(n), grid(1024, 6) {
    ctx.units = &units;
    ctx.grid = &grid;
    ctx.tick = 0;
    ctx.enemy_base_x[0] = 900;
    ctx.enemy_base_y[0] = 512;
    ctx.enemy_base_x[1] = 100;
    ctx.enemy_base_y[1] = 512;
  }

  void Place(UnitId u, UnitType type, int32_t team, int32_t x, int32_t y,
             int32_t health = kMaxHealth) {
    units.SetRaw(u, kAttrType, static_cast<int32_t>(type));
    units.SetRaw(u, kAttrTeam, team);
    units.SetRaw(u, kAttrX, x);
    units.SetRaw(u, kAttrY, y);
    units.SetRaw(u, kAttrHealth, health);
    units.SetRaw(u, kAttrTarget, static_cast<int32_t>(kNoUnit));
    units.SetRaw(u, kAttrReadyTick, 0);
    active.push_back(u);
  }

  void Step(UnitId u) {
    grid.Rebuild(units, active);
    StepUnit(ctx, u);
  }

  UnitTable units;
  SpatialGrid grid;
  AiContext ctx;
  std::vector<UnitId> active;
};

TEST(MoveTowardTest, StepsDominantAxisOnly) {
  Arena arena;
  arena.Place(0, UnitType::kKnight, 0, 100, 100);
  // Target mostly to the east: x moves, y does not.
  MoveToward(arena.ctx, 0, 200, 110);
  EXPECT_EQ(arena.units.x(0), 100 + kMoveStep);
  EXPECT_EQ(arena.units.y(0), 100);
  // Target mostly to the north: y moves.
  MoveToward(arena.ctx, 0, 108 + kMoveStep, 300);
  EXPECT_EQ(arena.units.y(0), 100 + kMoveStep);
}

TEST(MoveTowardTest, ClampsShortSteps) {
  Arena arena;
  arena.Place(0, UnitType::kKnight, 0, 100, 100);
  MoveToward(arena.ctx, 0, 103, 100);  // closer than one step
  EXPECT_EQ(arena.units.x(0), 103);
  MoveToward(arena.ctx, 0, 103, 100);  // already there: no movement
  EXPECT_EQ(arena.units.x(0), 103);
  EXPECT_EQ(arena.units.y(0), 100);
}

TEST(MoveTowardTest, StaysOnMap) {
  Arena arena;
  arena.Place(0, UnitType::kKnight, 0, 2, 100);
  MoveToward(arena.ctx, 0, -500, 100);
  EXPECT_GE(arena.units.x(0), 0);
}

TEST(KnightTest, AttacksAdjacentEnemy) {
  Arena arena;
  arena.Place(0, UnitType::kKnight, 0, 100, 100);
  arena.Place(1, UnitType::kKnight, 1, 110, 100);  // in melee range
  arena.Step(0);
  EXPECT_EQ(arena.units.health(1), kMaxHealth - kKnightDamage);
  EXPECT_EQ(arena.units.state(0), UnitState::kAttacking);
  // Cooldown set: next step must not attack again.
  arena.ctx.tick = 1;
  arena.Step(0);
  EXPECT_EQ(arena.units.health(1), kMaxHealth - kKnightDamage);
}

TEST(KnightTest, PursuesVisibleEnemy) {
  Arena arena;
  arena.Place(0, UnitType::kKnight, 0, 100, 100);
  arena.Place(1, UnitType::kArcher, 1, 170, 100);  // visible, out of reach
  arena.Step(0);
  EXPECT_EQ(arena.units.state(0), UnitState::kPursuing);
  EXPECT_EQ(arena.units.x(0), 100 + kMoveStep);
  EXPECT_EQ(arena.units.target(0), 1u);
}

TEST(KnightTest, KillCreditsAttacker) {
  Arena arena;
  arena.Place(0, UnitType::kKnight, 0, 100, 100);
  arena.Place(1, UnitType::kHealer, 1, 110, 100, /*health=*/kKnightDamage);
  arena.Step(0);
  EXPECT_EQ(arena.units.health(1), 0);
  EXPECT_EQ(arena.units.Get(0, kAttrKills), 1);
  EXPECT_EQ(arena.units.state(1), UnitState::kDead);
}

TEST(ArcherTest, ShootsFromRange) {
  Arena arena;
  arena.Place(0, UnitType::kArcher, 0, 100, 100);
  arena.Place(1, UnitType::kKnight, 1, 100 + kArcherAttackRange - 10, 100);
  arena.Step(0);
  EXPECT_EQ(arena.units.health(1), kMaxHealth - kArcherDamage);
  EXPECT_EQ(arena.units.state(0), UnitState::kAttacking);
  // The archer holds position while shooting.
  EXPECT_EQ(arena.units.x(0), 100);
}

TEST(ArcherTest, KitesWhenEnemyTooClose) {
  Arena arena;
  arena.Place(0, UnitType::kArcher, 0, 100, 100);
  arena.Place(1, UnitType::kKnight, 1, 100 + kArcherPanicRange - 8, 100);
  arena.Step(0);
  EXPECT_EQ(arena.units.state(0), UnitState::kRetreating);
  EXPECT_EQ(arena.units.x(0), 100 - kMoveStep);  // away from the threat
  EXPECT_EQ(arena.units.health(1), kMaxHealth);  // no shot while fleeing
}

TEST(HealerTest, HealsWeakestAllyInRange) {
  Arena arena;
  arena.Place(0, UnitType::kHealer, 0, 100, 100);
  arena.Place(1, UnitType::kKnight, 0, 120, 100, 80);
  arena.Place(2, UnitType::kKnight, 0, 130, 100, 40);  // weakest
  arena.Step(0);
  EXPECT_EQ(arena.units.health(2), 40 + kHealAmount);
  EXPECT_EQ(arena.units.health(1), 80);
  EXPECT_EQ(arena.units.state(0), UnitState::kHealing);
}

TEST(HealerTest, HealNeverExceedsMaxHealth) {
  Arena arena;
  arena.Place(0, UnitType::kHealer, 0, 100, 100);
  arena.Place(1, UnitType::kKnight, 0, 120, 100, kMaxHealth - 2);
  arena.Step(0);
  EXPECT_EQ(arena.units.health(1), kMaxHealth);
}

TEST(HealerTest, IgnoresEnemiesAndCorpses) {
  Arena arena;
  arena.Place(0, UnitType::kHealer, 0, 100, 100);
  arena.Place(1, UnitType::kKnight, 1, 120, 100, 10);  // hurt enemy
  arena.Place(2, UnitType::kKnight, 0, 130, 100, 0);   // dead ally
  arena.Step(0);
  EXPECT_EQ(arena.units.health(1), 10);
  EXPECT_EQ(arena.units.health(2), 0);
  EXPECT_NE(arena.units.state(0), UnitState::kHealing);
}

TEST(DamageTest, MoraleDropsWhenBadlyHurt) {
  Arena arena;
  arena.Place(0, UnitType::kKnight, 0, 100, 100);
  arena.Place(1, UnitType::kKnight, 1, 110, 100, kLowHealth + 5);
  arena.units.SetRaw(1, kAttrMorale, 10);
  arena.Step(0);  // drops target below kLowHealth
  ASSERT_LT(arena.units.health(1), kLowHealth);
  EXPECT_EQ(arena.units.Get(1, kAttrMorale), 10 - kMoraleDrop);
}

}  // namespace
}  // namespace game
}  // namespace tickpoint
