// Helpers shared by the fleet test suites (sharded_engine_test,
// fleet_resume_test): deep-copying reference fleets and mirroring the
// deterministic WorkloadCell/WorkloadValue workload without an engine.
#ifndef TICKPOINT_TESTS_FLEET_TEST_UTIL_H_
#define TICKPOINT_TESTS_FLEET_TEST_UTIL_H_

#include <cstring>
#include <vector>

#include "engine/mutator.h"
#include "engine/state_table.h"

namespace tickpoint {

/// Deep-copies a fleet of reference tables (StateTable is move-only).
inline std::vector<StateTable> SnapshotTables(
    const std::vector<StateTable>& from) {
  std::vector<StateTable> snapshot;
  snapshot.reserve(from.size());
  for (const StateTable& table : from) {
    snapshot.emplace_back(table.layout());
    std::memcpy(snapshot.back().mutable_data(), table.data(),
                table.buffer_bytes());
  }
  return snapshot;
}

/// Applies fleet tick `tick` of the deterministic workload directly to the
/// per-shard reference tables (no engine): the same cells and values
/// RunTicks-style drivers feed through ApplyUpdate.
inline void MirrorWorkloadTick(uint64_t tick, uint64_t updates_per_tick,
                               std::vector<StateTable>* tables) {
  for (uint32_t shard = 0; shard < tables->size(); ++shard) {
    StateTable& table = (*tables)[shard];
    const uint64_t num_cells = table.layout().num_cells();
    for (uint64_t i = 0; i < updates_per_tick; ++i) {
      const uint32_t cell = WorkloadCell(shard, tick, i, num_cells);
      table.WriteCell(cell, WorkloadValue(tick, cell, i));
    }
  }
}

}  // namespace tickpoint

#endif  // TICKPOINT_TESTS_FLEET_TEST_UTIL_H_
