// SpscRing unit tests: the full/empty boundary, index wraparound, FIFO
// order under a real producer/consumer thread pair, and the drain pattern
// the ShardRunner mailbox relies on. The threaded tests run with the
// schedule fuzzer enabled (TP_SCHED_FUZZ_SEED overrides the seed for
// replay), so the release/acquire pairing is exercised under perturbed
// interleavings, not just the scheduler's habitual ones.
#include "util/spsc_ring.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "util/sched_fuzz.h"

namespace tickpoint {
namespace {

TEST(SpscRingTest, StartsEmptyAndPopFails) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_TRUE(ring.Empty());
  int out = -1;
  EXPECT_FALSE(ring.TryPop(&out));
  EXPECT_EQ(out, -1);
}

TEST(SpscRingTest, FillsToCapacityAndRefusesTheNext) {
  SpscRing<std::string> ring(3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(ring.TryPush("item" + std::to_string(i)));
  }
  // Full: the push fails and the rejected item is NOT consumed (the
  // caller retries with it -- SubmitTick's backpressure loop depends on
  // this).
  std::string rejected = "rejected";
  EXPECT_FALSE(ring.TryPush(std::move(rejected)));
  EXPECT_EQ(rejected, "rejected");
  // One pop frees exactly one slot.
  std::string out;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, "item0");
  EXPECT_TRUE(ring.TryPush(std::move(rejected)));
  EXPECT_FALSE(ring.TryPush("one too many"));
}

TEST(SpscRingTest, WrapsAroundPreservingFifoOrder) {
  // A small ring cycled far past its capacity: the monotonic indices wrap
  // the slot array many times and must keep strict FIFO order. Batch
  // sizes vary so head/tail land on every relative offset.
  SpscRing<uint64_t> ring(4);
  std::mt19937 rng(123);
  uint64_t next_push = 0;
  uint64_t next_pop = 0;
  while (next_pop < 10000) {
    const uint64_t burst = rng() % 5;
    for (uint64_t i = 0; i < burst; ++i) {
      if (!ring.TryPush(uint64_t{next_push})) break;
      ++next_push;
    }
    const uint64_t drain = rng() % 5;
    for (uint64_t i = 0; i < drain; ++i) {
      uint64_t out = 0;
      if (!ring.TryPop(&out)) break;
      ASSERT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  EXPECT_GE(next_push, 10000u);
}

TEST(SpscRingTest, MoveOnlyElementsMoveThrough) {
  SpscRing<std::unique_ptr<int>> ring(2);
  ASSERT_TRUE(ring.TryPush(std::make_unique<int>(7)));
  ASSERT_TRUE(ring.TryPush(std::make_unique<int>(8)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.TryPop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(*out, 8);
  EXPECT_TRUE(ring.Empty());
}

TEST(SpscRingTest, DrainsAfterTheProducerStops) {
  // The mailbox drain pattern: the producer stops pushing (error or
  // shutdown) and the consumer must still see and pop everything already
  // committed, then observe Empty().
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.TryPush(int{i}));
  }
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.TryPop(&out));
  EXPECT_TRUE(ring.Empty());
}

TEST(SpscRingTest, ThreadedFifoUnderScheduleFuzz) {
  // One real producer thread against one real consumer thread, schedule
  // fuzzing on: every value must arrive exactly once, in order, and the
  // occupancy must never exceed the capacity (checked via the rejected
  // pushes the producer retries). Failures replay with the printed seed.
  uint64_t seed = 20260808;
  if (const char* env = std::getenv("TP_SCHED_FUZZ_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  SCOPED_TRACE("replay with TP_SCHED_FUZZ_SEED=" + std::to_string(seed));
  SchedFuzz::Enable(seed);

  constexpr uint64_t kItems = 200000;
  SpscRing<uint64_t> ring(4);
  uint64_t retries = 0;
  std::thread producer([&ring, &retries] {
    for (uint64_t value = 0; value < kItems; ++value) {
      while (!ring.TryPush(uint64_t{value})) {
        ++retries;  // full: backpressure, spin until the consumer frees a slot
      }
    }
  });
  uint64_t received = 0;
  bool in_order = true;
  while (received < kItems) {
    uint64_t out = 0;
    if (ring.TryPop(&out)) {
      in_order = in_order && out == received;
      ++received;
    }
  }
  producer.join();
  SchedFuzz::Disable();
  EXPECT_TRUE(in_order);
  EXPECT_EQ(received, kItems);
  EXPECT_TRUE(ring.Empty());
  // The bound did real work: a 4-slot ring fed by a free-running producer
  // must hit full at least once.
  EXPECT_GT(retries, 0u);
}

}  // namespace
}  // namespace tickpoint
