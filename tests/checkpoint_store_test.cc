// Tests for the on-disk checkpoint organizations and the logical log.
#include "engine/checkpoint_store.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "engine/doublewrite.h"
#include "engine/logical_log.h"
#include "engine/paths.h"

namespace tickpoint {
namespace {

/// Offset of object 0 in a backup image (one sector-aligned header block).
constexpr uint64_t kBackupDataOffset = 512;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("tp_store_" + std::string(::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name())))
               .string();
    std::filesystem::remove_all(dir_);
    layout_ = StateLayout::Small(256, 10);  // 20 objects
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  // Fills a table with a recognizable pattern keyed by `salt`.
  StateTable MakeState(int32_t salt) {
    StateTable table(layout_);
    for (CellId c = 0; c < layout_.num_cells(); ++c) {
      table.WriteCell(c, static_cast<int32_t>(c) * 31 + salt);
    }
    return table;
  }

  // Writes `state` as a full valid checkpoint of image `index` via the
  // unstaged path.
  void WriteFullImage(BackupStore& store, int index, StateTable& state,
                      uint64_t seq, uint64_t tick) {
    ASSERT_TRUE(store.BeginCheckpoint(index).ok());
    ASSERT_TRUE(
        store.WriteRange(index, 0, state.data(), layout_.num_objects()).ok());
    ASSERT_TRUE(store.FinishCheckpoint(index, seq, tick, 0).ok());
  }

  // Raw bytes of backup image `index`'s data region (past the header).
  std::string ImageDataBytes(int index) {
    std::string bytes;
    EXPECT_TRUE(
        ReadFileToString(dir_ + "/" + BackupStore::ImageFileName(index),
                         &bytes)
            .ok());
    EXPECT_GE(bytes.size(), kBackupDataOffset);
    return bytes.substr(kBackupDataOffset);
  }

  std::string dir_;
  StateLayout layout_;
};

TEST_F(StoreTest, BackupFullImageRoundTrip) {
  auto store_or = BackupStore::Open(dir_, layout_, /*fsync=*/false);
  ASSERT_TRUE(store_or.ok());
  auto& store = *store_or.value();
  StateTable state = MakeState(1);

  ASSERT_TRUE(store.BeginCheckpoint(0).ok());
  ASSERT_TRUE(store.WriteRange(0, 0, state.data(), layout_.num_objects()).ok());
  ASSERT_TRUE(store.FinishCheckpoint(0, 7, 42, state.Digest()).ok());

  auto info = store.Inspect(0);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->valid);
  EXPECT_EQ(info->seq, 7u);
  EXPECT_EQ(info->consistent_tick, 42u);

  StateTable restored(layout_);
  ASSERT_TRUE(store.ReadAll(0, &restored).ok());
  EXPECT_TRUE(restored.ContentEquals(state));
}

TEST_F(StoreTest, BackupBeginWithoutFinishIsInvalid) {
  auto store_or = BackupStore::Open(dir_, layout_, false);
  ASSERT_TRUE(store_or.ok());
  auto& store = *store_or.value();
  StateTable state = MakeState(2);
  ASSERT_TRUE(store.BeginCheckpoint(1).ok());
  ASSERT_TRUE(store.WriteRange(1, 0, state.data(), 5).ok());
  // No FinishCheckpoint: a crash here must leave the image unusable.
  auto info = store.Inspect(1);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->valid);
  StateTable restored(layout_);
  EXPECT_FALSE(store.ReadAll(1, &restored).ok());
}

TEST_F(StoreTest, BackupSiblingSurvivesRewrite) {
  auto store_or = BackupStore::Open(dir_, layout_, false);
  ASSERT_TRUE(store_or.ok());
  auto& store = *store_or.value();
  StateTable old_state = MakeState(3);
  ASSERT_TRUE(store.BeginCheckpoint(0).ok());
  ASSERT_TRUE(
      store.WriteRange(0, 0, old_state.data(), layout_.num_objects()).ok());
  ASSERT_TRUE(store.FinishCheckpoint(0, 1, 10, 0).ok());

  // Start (and tear) a write to backup 1: backup 0 stays recoverable.
  ASSERT_TRUE(store.BeginCheckpoint(1).ok());
  ASSERT_TRUE(store.WriteRange(1, 0, old_state.data(), 3).ok());
  StateTable restored(layout_);
  ASSERT_TRUE(store.ReadAll(0, &restored).ok());
  EXPECT_TRUE(restored.ContentEquals(old_state));
}

TEST_F(StoreTest, BackupIncrementalUpdateInPlace) {
  auto store_or = BackupStore::Open(dir_, layout_, false);
  ASSERT_TRUE(store_or.ok());
  auto& store = *store_or.value();
  StateTable state = MakeState(4);
  ASSERT_TRUE(store.BeginCheckpoint(0).ok());
  ASSERT_TRUE(store.WriteRange(0, 0, state.data(), layout_.num_objects()).ok());
  ASSERT_TRUE(store.FinishCheckpoint(0, 1, 5, 0).ok());

  // Change two objects and write only those at their offsets.
  for (CellId c = 128; c < 256; ++c) state.WriteCell(c, -1);
  for (CellId c = 640; c < 768; ++c) state.WriteCell(c, -2);
  ASSERT_TRUE(store.BeginCheckpoint(0).ok());
  ASSERT_TRUE(store.WriteRange(0, 1, state.ObjectData(1), 1).ok());
  ASSERT_TRUE(store.WriteRange(0, 5, state.ObjectData(5), 1).ok());
  ASSERT_TRUE(store.FinishCheckpoint(0, 2, 9, state.Digest()).ok());

  StateTable restored(layout_);
  ASSERT_TRUE(store.ReadAll(0, &restored).ok());
  EXPECT_TRUE(restored.ContentEquals(state));
}

TEST_F(StoreTest, BackupStateCrcDetectsBitRot) {
  auto store_or = BackupStore::Open(dir_, layout_, false);
  ASSERT_TRUE(store_or.ok());
  auto& store = *store_or.value();
  StateTable state = MakeState(5);
  ASSERT_TRUE(store.BeginCheckpoint(0).ok());
  ASSERT_TRUE(store.WriteRange(0, 0, state.data(), layout_.num_objects()).ok());
  ASSERT_TRUE(store.FinishCheckpoint(0, 1, 1, state.Digest()).ok());

  // Flip one data byte on disk behind the store's back.
  {
    FileWriter vandal;
    ASSERT_TRUE(vandal.OpenForUpdate(store.path(0)).ok());
    const char evil = 0x66;
    ASSERT_TRUE(vandal.WriteAt(512 + 1000, &evil, 1).ok());
    ASSERT_TRUE(vandal.Close().ok());
  }
  StateTable restored(layout_);
  const Status status = store.ReadAll(0, &restored);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST_F(StoreTest, BackupStagedCheckpointRoundTrip) {
  auto store_or = BackupStore::Open(dir_, layout_, false);
  ASSERT_TRUE(store_or.ok());
  auto& store = *store_or.value();
  StateTable state = MakeState(11);
  const uint64_t half = layout_.num_objects() / 2;

  ASSERT_TRUE(store.BeginStagedCheckpoint(0).ok());
  ASSERT_TRUE(store.StageRun(0, 0, state.ObjectData(0), half).ok());
  ASSERT_TRUE(
      store.StageRun(0, half, state.ObjectData(half),
                     layout_.num_objects() - half)
          .ok());
  ASSERT_TRUE(store.SealAndApplyStaged(0).ok());
  ASSERT_TRUE(store.FinishCheckpoint(0, 5, 50, state.Digest()).ok());

  auto info = store.Inspect(0);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->valid);
  EXPECT_EQ(info->seq, 5u);
  StateTable restored(layout_);
  ASSERT_TRUE(store.ReadAll(0, &restored).ok());
  EXPECT_TRUE(restored.ContentEquals(state));
}

TEST_F(StoreTest, BackupTornStageNeverCorruptsSibling) {
  StateTable old0 = MakeState(12);
  StateTable old1 = MakeState(13);
  StateTable next = MakeState(14);
  {
    auto store_or = BackupStore::Open(dir_, layout_, false);
    ASSERT_TRUE(store_or.ok());
    auto& store = *store_or.value();
    WriteFullImage(store, 0, old0, 1, 10);
    WriteFullImage(store, 1, old1, 2, 20);

    // Crash mid-stage: the doublewrite region holds one unsealed chunk.
    store.SetStageCrashPointForTest(
        BackupStore::StageCrashPoint::kAfterFirstStage);
    ASSERT_TRUE(store.BeginStagedCheckpoint(0).ok());
    const Status crash =
        store.StageRun(0, 0, next.data(), layout_.num_objects());
    ASSERT_FALSE(crash.ok());
  }
  // Tear the chunk's payload too (a real torn write would cut mid-sector):
  // recovery must discard it, not apply garbage.
  const std::string dw_path = paths::DoublewritePath(dir_);
  std::string dw_bytes;
  ASSERT_TRUE(ReadFileToString(dw_path, &dw_bytes).ok());
  ASSERT_GT(dw_bytes.size(), 100u);
  dw_bytes.resize(dw_bytes.size() - 100);
  ASSERT_TRUE(WriteStringToFile(dw_path, dw_bytes).ok());

  const std::string sibling_before = ImageDataBytes(1);
  auto reopened_or = BackupStore::Open(dir_, layout_, false);
  ASSERT_TRUE(reopened_or.ok());
  auto& reopened = *reopened_or.value();

  // The target image was invalidated before any staging, so nothing
  // recoverable was at risk; the sibling is byte-identical.
  auto info0 = reopened.Inspect(0);
  ASSERT_TRUE(info0.ok());
  EXPECT_FALSE(info0->valid);
  EXPECT_EQ(ImageDataBytes(1), sibling_before);
  StateTable restored(layout_);
  ASSERT_TRUE(reopened.ReadAll(1, &restored).ok());
  EXPECT_TRUE(restored.ContentEquals(old1));
  // The torn batch was discarded: the region is empty again.
  auto chunks = DoublewriteRegion::Scan(dw_path);
  ASSERT_TRUE(chunks.ok());
  EXPECT_TRUE(chunks.value().empty());
}

TEST_F(StoreTest, BackupSealedBatchReplaysOnReopen) {
  StateTable old_state = MakeState(15);
  StateTable next = MakeState(16);
  const uint64_t half = layout_.num_objects() / 2;
  {
    auto store_or = BackupStore::Open(dir_, layout_, false);
    ASSERT_TRUE(store_or.ok());
    auto& store = *store_or.value();
    WriteFullImage(store, 0, old_state, 1, 10);
    store.SetStageCrashPointForTest(BackupStore::StageCrashPoint::kAfterSeal);
    ASSERT_TRUE(store.BeginStagedCheckpoint(0).ok());
    ASSERT_TRUE(store.StageRun(0, 0, next.ObjectData(0), half).ok());
    ASSERT_TRUE(
        store.StageRun(0, half, next.ObjectData(half),
                       layout_.num_objects() - half)
            .ok());
    const Status crash = store.SealAndApplyStaged(0);
    ASSERT_FALSE(crash.ok());
  }
  // The crash hit after the seal fsync but before any in-place write: the
  // image still holds the old bytes, the region the whole new batch.
  const uint64_t data_size = layout_.num_objects() * layout_.object_size;
  EXPECT_EQ(std::memcmp(ImageDataBytes(0).data(), old_state.data(),
                        data_size),
            0);

  auto reopened_or = BackupStore::Open(dir_, layout_, false);
  ASSERT_TRUE(reopened_or.ok());
  // Reopen replayed the sealed batch into the image, then discarded it.
  EXPECT_EQ(std::memcmp(ImageDataBytes(0).data(), next.data(), data_size), 0);
  auto chunks = DoublewriteRegion::Scan(paths::DoublewritePath(dir_));
  ASSERT_TRUE(chunks.ok());
  EXPECT_TRUE(chunks.value().empty());
}

TEST_F(StoreTest, BackupTornInPlaceApplyRepairedByReplay) {
  StateTable old_state = MakeState(17);
  StateTable next = MakeState(18);
  const uint64_t half = layout_.num_objects() / 2;
  {
    auto store_or = BackupStore::Open(dir_, layout_, false);
    ASSERT_TRUE(store_or.ok());
    auto& store = *store_or.value();
    WriteFullImage(store, 0, old_state, 1, 10);
    store.SetStageCrashPointForTest(
        BackupStore::StageCrashPoint::kAfterFirstApply);
    ASSERT_TRUE(store.BeginStagedCheckpoint(0).ok());
    ASSERT_TRUE(store.StageRun(0, 0, next.ObjectData(0), half).ok());
    ASSERT_TRUE(
        store.StageRun(0, half, next.ObjectData(half),
                       layout_.num_objects() - half)
            .ok());
    // Crash mid-apply: the first run landed in place, the second did not.
    const Status crash = store.SealAndApplyStaged(0);
    ASSERT_FALSE(crash.ok());
  }
  const uint64_t data_size = layout_.num_objects() * layout_.object_size;
  // Reopen replays the whole sealed batch: the torn in-place write is
  // repaired deterministically, every object carrying the new bytes.
  auto reopened_or = BackupStore::Open(dir_, layout_, false);
  ASSERT_TRUE(reopened_or.ok());
  EXPECT_EQ(std::memcmp(ImageDataBytes(0).data(), next.data(), data_size), 0);
}

TEST_F(StoreTest, DoublewriteReplayIsIdempotent) {
  StateTable next = MakeState(19);
  const uint64_t half = layout_.num_objects() / 2;
  {
    auto store_or = BackupStore::Open(dir_, layout_, false);
    ASSERT_TRUE(store_or.ok());
    auto& store = *store_or.value();
    StateTable old_state = MakeState(20);
    WriteFullImage(store, 0, old_state, 1, 10);
    store.SetStageCrashPointForTest(BackupStore::StageCrashPoint::kAfterSeal);
    ASSERT_TRUE(store.BeginStagedCheckpoint(0).ok());
    ASSERT_TRUE(store.StageRun(0, 0, next.ObjectData(0), half).ok());
    ASSERT_TRUE(
        store.StageRun(0, half, next.ObjectData(half),
                       layout_.num_objects() - half)
            .ok());
    ASSERT_FALSE(store.SealAndApplyStaged(0).ok());
  }
  // A replay that itself crashes after one chunk leaves the region intact;
  // the next full replay starts over and still converges on the batch.
  const std::string dw_path = paths::DoublewritePath(dir_);
  const std::string image_paths[2] = {
      dir_ + "/" + BackupStore::ImageFileName(0),
      dir_ + "/" + BackupStore::ImageFileName(1)};
  auto partial = DoublewriteRegion::Replay(dw_path, image_paths, 2,
                                           /*fsync_enabled=*/false,
                                           /*apply_at_most=*/1);
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial.value(), 1u);
  auto mid_chunks = DoublewriteRegion::Scan(dw_path);
  ASSERT_TRUE(mid_chunks.ok());
  EXPECT_EQ(mid_chunks.value().size(), 2u);  // region untouched

  auto reopened_or = BackupStore::Open(dir_, layout_, false);
  ASSERT_TRUE(reopened_or.ok());
  const uint64_t data_size = layout_.num_objects() * layout_.object_size;
  EXPECT_EQ(std::memcmp(ImageDataBytes(0).data(), next.data(), data_size), 0);
  auto final_chunks = DoublewriteRegion::Scan(dw_path);
  ASSERT_TRUE(final_chunks.ok());
  EXPECT_TRUE(final_chunks.value().empty());
}

TEST_F(StoreTest, LogFullFlushAndIncrementsRestore) {
  auto store_or = LogStore::Open(dir_, layout_, false);
  ASSERT_TRUE(store_or.ok());
  auto& store = *store_or.value();
  StateTable state = MakeState(6);

  // Generation 0: full flush of the pristine state.
  ASSERT_TRUE(store.BeginGeneration(0).ok());
  ASSERT_TRUE(store.BeginSegment(0, 1, true, layout_.num_objects()).ok());
  for (ObjectId o = 0; o < layout_.num_objects(); ++o) {
    ASSERT_TRUE(store.AppendObject(o, state.ObjectData(o)).ok());
  }
  ASSERT_TRUE(store.CommitSegment().ok());

  // Two incremental segments with object changes.
  for (CellId c = 0; c < 128; ++c) state.WriteCell(c, 111);
  ASSERT_TRUE(store.BeginSegment(1, 2, false, 1).ok());
  ASSERT_TRUE(store.AppendObject(0, state.ObjectData(0)).ok());
  ASSERT_TRUE(store.CommitSegment().ok());

  for (CellId c = 1280; c < 1408; ++c) state.WriteCell(c, 222);
  ASSERT_TRUE(store.BeginSegment(2, 3, false, 1).ok());
  ASSERT_TRUE(store.AppendObject(10, state.ObjectData(10)).ok());
  ASSERT_TRUE(store.CommitSegment().ok());

  StateTable restored(layout_);
  auto image = store.Restore(&restored);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->seq, 2u);
  EXPECT_EQ(image->consistent_tick, 3u);
  EXPECT_TRUE(restored.ContentEquals(state));
}

TEST_F(StoreTest, LogTornTailIgnored) {
  auto store_or = LogStore::Open(dir_, layout_, false);
  ASSERT_TRUE(store_or.ok());
  auto& store = *store_or.value();
  StateTable state = MakeState(7);
  ASSERT_TRUE(store.BeginGeneration(0).ok());
  ASSERT_TRUE(store.BeginSegment(0, 1, true, layout_.num_objects()).ok());
  for (ObjectId o = 0; o < layout_.num_objects(); ++o) {
    ASSERT_TRUE(store.AppendObject(o, state.ObjectData(o)).ok());
  }
  ASSERT_TRUE(store.CommitSegment().ok());
  const StateTable committed = MakeState(7);

  // Torn segment: declared 3 objects, only 1 appended, never committed.
  state.WriteCell(0, -99);
  ASSERT_TRUE(store.BeginSegment(1, 2, false, 3).ok());
  ASSERT_TRUE(store.AppendObject(0, state.ObjectData(0)).ok());
  store.AbortSegment();

  StateTable restored(layout_);
  auto image = store.Restore(&restored);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->seq, 0u);
  EXPECT_TRUE(restored.ContentEquals(committed));
}

TEST_F(StoreTest, LogFallsBackToOlderGeneration) {
  auto store_or = LogStore::Open(dir_, layout_, false);
  ASSERT_TRUE(store_or.ok());
  auto& store = *store_or.value();
  StateTable gen0_state = MakeState(8);
  ASSERT_TRUE(store.BeginGeneration(0).ok());
  ASSERT_TRUE(store.BeginSegment(0, 1, true, layout_.num_objects()).ok());
  for (ObjectId o = 0; o < layout_.num_objects(); ++o) {
    ASSERT_TRUE(store.AppendObject(o, gen0_state.ObjectData(o)).ok());
  }
  ASSERT_TRUE(store.CommitSegment().ok());

  // Generation 1's full flush tears mid-way (crash before commit).
  ASSERT_TRUE(store.BeginGeneration(1).ok());
  ASSERT_TRUE(store.BeginSegment(1, 9, true, layout_.num_objects()).ok());
  ASSERT_TRUE(store.AppendObject(0, gen0_state.ObjectData(0)).ok());
  store.AbortSegment();

  StateTable restored(layout_);
  auto image = store.Restore(&restored);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->consistent_tick, 1u);
  EXPECT_TRUE(restored.ContentEquals(gen0_state));
}

TEST_F(StoreTest, LogReopenDiscoversGenerations) {
  {
    auto store_or = LogStore::Open(dir_, layout_, false);
    ASSERT_TRUE(store_or.ok());
    auto& store = *store_or.value();
    StateTable state = MakeState(9);
    ASSERT_TRUE(store.BeginGeneration(3).ok());
    ASSERT_TRUE(store.BeginSegment(12, 30, true, layout_.num_objects()).ok());
    for (ObjectId o = 0; o < layout_.num_objects(); ++o) {
      ASSERT_TRUE(store.AppendObject(o, state.ObjectData(o)).ok());
    }
    ASSERT_TRUE(store.CommitSegment().ok());
  }
  // A cold open (as recovery does) must find generation 3.
  auto reopened_or = LogStore::Open(dir_, layout_, false);
  ASSERT_TRUE(reopened_or.ok());
  EXPECT_EQ(reopened_or.value()->current_generation(), 3u);
  StateTable restored(layout_);
  auto image = reopened_or.value()->Restore(&restored);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->seq, 12u);
  EXPECT_TRUE(restored.ContentEquals(MakeState(9)));
}

TEST_F(StoreTest, LogDropGenerations) {
  auto store_or = LogStore::Open(dir_, layout_, false);
  ASSERT_TRUE(store_or.ok());
  auto& store = *store_or.value();
  StateTable state = MakeState(10);
  for (uint64_t gen = 0; gen < 3; ++gen) {
    ASSERT_TRUE(store.BeginGeneration(gen).ok());
    ASSERT_TRUE(
        store.BeginSegment(gen, gen + 1, true, layout_.num_objects()).ok());
    for (ObjectId o = 0; o < layout_.num_objects(); ++o) {
      ASSERT_TRUE(store.AppendObject(o, state.ObjectData(o)).ok());
    }
    ASSERT_TRUE(store.CommitSegment().ok());
  }
  ASSERT_TRUE(store.DropGenerationsBefore(2).ok());
  EXPECT_FALSE(FileExists(dir_ + "/log-0.img"));
  EXPECT_FALSE(FileExists(dir_ + "/log-1.img"));
  EXPECT_TRUE(FileExists(dir_ + "/log-2.img"));
}

TEST_F(StoreTest, LogicalLogRoundTrip) {
  const std::string path = dir_ + "/logical.log";
  ASSERT_TRUE(EnsureDirectory(dir_).ok());
  {
    auto log_or = LogicalLog::Create(path, 1);
    ASSERT_TRUE(log_or.ok());
    auto& log = *log_or.value();
    std::vector<CellUpdate> t0 = {{0, 10}, {5, 50}};
    std::vector<CellUpdate> t1 = {};  // empty tick is legal
    std::vector<CellUpdate> t2 = {{0, 11}, {9, 90}};
    ASSERT_TRUE(log.AppendTick(0, t0).ok());
    ASSERT_TRUE(log.AppendTick(1, t1).ok());
    ASSERT_TRUE(log.AppendTick(2, t2).ok());
    EXPECT_EQ(log.ticks_appended(), 3u);
    ASSERT_TRUE(log.Close().ok());
  }
  auto count = LogicalLog::CountDurableTicks(path);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 3u);

  StateTable table(layout_);
  auto stats = LogicalLog::Replay(path, 0, UINT64_MAX, &table);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records_applied, 3u);
  EXPECT_EQ(stats->last_tick, 2u);
  EXPECT_EQ(table.ReadCell(0), 11);  // overwritten by tick 2
  EXPECT_EQ(table.ReadCell(5), 50);
  EXPECT_EQ(table.ReadCell(9), 90);
}

TEST_F(StoreTest, LogicalLogRangeFilter) {
  const std::string path = dir_ + "/logical.log";
  ASSERT_TRUE(EnsureDirectory(dir_).ok());
  {
    auto log_or = LogicalLog::Create(path, 1);
    ASSERT_TRUE(log_or.ok());
    for (uint64_t t = 0; t < 5; ++t) {
      std::vector<CellUpdate> updates = {
          {static_cast<uint32_t>(t), static_cast<int32_t>(t + 100)}};
      ASSERT_TRUE(log_or.value()->AppendTick(t, updates).ok());
    }
    ASSERT_TRUE(log_or.value()->Close().ok());
  }
  StateTable table(layout_);
  auto stats = LogicalLog::Replay(path, 2, 3, &table);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records_applied, 2u);
  EXPECT_EQ(table.ReadCell(0), 0);    // tick 0 excluded
  EXPECT_EQ(table.ReadCell(2), 102);  // tick 2 included
  EXPECT_EQ(table.ReadCell(3), 103);  // tick 3 included
  EXPECT_EQ(table.ReadCell(4), 0);    // tick 4 excluded
}

TEST_F(StoreTest, LogicalLogTornTailStopsReplay) {
  const std::string path = dir_ + "/logical.log";
  ASSERT_TRUE(EnsureDirectory(dir_).ok());
  {
    auto log_or = LogicalLog::Create(path, 1);
    ASSERT_TRUE(log_or.ok());
    std::vector<CellUpdate> updates = {{1, 5}};
    ASSERT_TRUE(log_or.value()->AppendTick(0, updates).ok());
    ASSERT_TRUE(log_or.value()->AppendTick(1, updates).ok());
    ASSERT_TRUE(log_or.value()->Close().ok());
  }
  // Truncate mid-way through the second record (simulated torn write).
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(path, &bytes).ok());
  bytes.resize(bytes.size() - 5);
  ASSERT_TRUE(WriteStringToFile(path, bytes).ok());

  StateTable table(layout_);
  auto stats = LogicalLog::Replay(path, 0, UINT64_MAX, &table);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records_applied, 1u);
  EXPECT_EQ(stats->last_tick, 0u);
}

TEST_F(StoreTest, LogicalLogGroupCommitWindow) {
  const std::string path = dir_ + "/logical.log";
  ASSERT_TRUE(EnsureDirectory(dir_).ok());
  auto log_or = LogicalLog::Create(path, /*sync_every=*/4);
  ASSERT_TRUE(log_or.ok());
  std::vector<CellUpdate> updates = {{1, 5}};
  for (uint64_t t = 0; t < 10; ++t) {
    ASSERT_TRUE(log_or.value()->AppendTick(t, updates).ok());
  }
  // Records are buffered; before Close/Sync only whole group commits are
  // guaranteed durable. After Close, all 10 are.
  ASSERT_TRUE(log_or.value()->Close().ok());
  auto count = LogicalLog::CountDurableTicks(path);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 10u);
}

}  // namespace
}  // namespace tickpoint
