// Tests for the pluggable checkpoint write backends: both kinds must
// honor the ticket-frontier, sticky-error, and bounded-depth contracts
// the staged pipeline is built on.
#include "util/io_backend.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "util/io.h"

namespace tickpoint {
namespace {

class IoBackendTest : public ::testing::TestWithParam<IoBackendKind> {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("tp_iobackend_" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name())))
               .string();
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(EnsureDirectory(dir_).ok());
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_P(IoBackendTest, KindRoundTrip) {
  auto backend = IoBackend::Create(GetParam());
  EXPECT_EQ(backend->kind(), GetParam());
  auto parsed = ParseIoBackendKind(IoBackendKindName(GetParam()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), GetParam());
}

TEST_P(IoBackendTest, WritesLandAfterWaitFor) {
  auto backend = IoBackend::Create(GetParam());
  IoFile file;
  ASSERT_TRUE(file.OpenForUpdate(dir_ + "/data").ok());

  const std::string a(1024, 'a');
  const std::string b(512, 'b');
  backend->SubmitWrite(&file, 0, a.data(), a.size());
  const IoTicket last = backend->SubmitWrite(&file, a.size(), b.data(),
                                             b.size());
  // The frontier covers every earlier ticket too.
  ASSERT_TRUE(backend->WaitFor(last).ok());

  std::string bytes;
  ASSERT_TRUE(ReadFileToString(dir_ + "/data", &bytes).ok());
  ASSERT_EQ(bytes.size(), a.size() + b.size());
  EXPECT_EQ(bytes.substr(0, a.size()), a);
  EXPECT_EQ(bytes.substr(a.size()), b);
}

TEST_P(IoBackendTest, TicketsAreMonotonic) {
  auto backend = IoBackend::Create(GetParam());
  IoFile file;
  ASSERT_TRUE(file.OpenForUpdate(dir_ + "/data").ok());
  const char byte = 'x';
  IoTicket previous = 0;
  for (int i = 0; i < 16; ++i) {
    const IoTicket ticket =
        backend->SubmitWrite(&file, static_cast<uint64_t>(i), &byte, 1);
    EXPECT_GT(ticket, previous);
    previous = ticket;
  }
  EXPECT_TRUE(backend->Drain().ok());
}

TEST_P(IoBackendTest, DrainIsABarrierOverManyWrites) {
  // More writes than the in-flight bound: SubmitWrite must backpressure,
  // not drop or deadlock, and Drain must cover all of them.
  auto backend = IoBackend::Create(GetParam(), /*max_in_flight=*/4);
  IoFile file;
  ASSERT_TRUE(file.OpenForUpdate(dir_ + "/data").ok());
  constexpr int kWrites = 64;
  std::vector<std::string> payloads;
  payloads.reserve(kWrites);
  for (int i = 0; i < kWrites; ++i) {
    payloads.push_back(std::string(256, static_cast<char>('A' + (i % 26))));
    backend->SubmitWrite(&file, static_cast<uint64_t>(i) * 256,
                         payloads.back().data(), payloads.back().size());
  }
  ASSERT_TRUE(backend->Drain().ok());
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(dir_ + "/data", &bytes).ok());
  ASSERT_EQ(bytes.size(), static_cast<size_t>(kWrites) * 256);
  for (int i = 0; i < kWrites; ++i) {
    EXPECT_EQ(bytes[static_cast<size_t>(i) * 256],
              static_cast<char>('A' + (i % 26)))
        << "write " << i;
  }
}

TEST_P(IoBackendTest, WriteErrorIsStickyAndSurfacesFromWait) {
  auto backend = IoBackend::Create(GetParam());
  IoFile file;
  ASSERT_TRUE(file.OpenForUpdate(dir_ + "/data").ok());
  // Close the descriptor behind the backend's back: every subsequent
  // pwrite fails with EBADF.
  ASSERT_TRUE(file.Close().ok());
  const char byte = 'x';
  const IoTicket ticket = backend->SubmitWrite(&file, 0, &byte, 1);
  const Status first = backend->WaitFor(ticket);
  EXPECT_FALSE(first.ok());
  // The error is sticky: later barriers keep reporting it.
  EXPECT_FALSE(backend->Drain().ok());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, IoBackendTest,
                         ::testing::Values(IoBackendKind::kSync,
                                           IoBackendKind::kAsync),
                         [](const auto& info) {
                           return std::string(IoBackendKindName(info.param));
                         });

}  // namespace
}  // namespace tickpoint
