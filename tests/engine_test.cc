// End-to-end tests of the real checkpointing engine: the central property
// is that for EVERY algorithm and EVERY crash point, Recover() rebuilds
// exactly the state the engine held when it crashed.
#include "engine/engine.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "engine/mutator.h"
#include "engine/recovery.h"
#include "trace/zipf_source.h"

namespace tickpoint {
namespace {

StateLayout TestLayout() { return StateLayout::Small(2048, 10); }  // 160 objects

ZipfTraceConfig TraceConfig(uint64_t ticks, uint64_t updates_per_tick) {
  ZipfTraceConfig config;
  config.layout = TestLayout();
  config.num_ticks = ticks;
  config.updates_per_tick = updates_per_tick;
  config.theta = 0.6;
  config.seed = 1234;
  return config;
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("tp_engine_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name())))
               .string();
    // Parameterized test names contain '/', which breaks paths.
    for (auto& c : dir_) {
      if (c == '/') c = '_';
    }
    dir_ = (std::filesystem::temp_directory_path() / dir_).string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  EngineConfig Config(AlgorithmKind kind) {
    EngineConfig config;
    config.layout = TestLayout();
    config.algorithm = kind;
    config.dir = dir_;
    config.fsync = false;  // simulated crashes: page cache is "durable"
    config.full_flush_period = 3;
    return config;
  }

  std::string dir_;
};

TEST_F(EngineTest, RunsAndShutsDownCleanly) {
  auto engine_or = Engine::Open(Config(AlgorithmKind::kCopyOnUpdate));
  ASSERT_TRUE(engine_or.ok());
  Engine& engine = *engine_or.value();
  ZipfUpdateSource source(TraceConfig(30, 200));
  auto report = RunWorkload(&engine, &source, MutatorOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ticks, 30u);
  EXPECT_FALSE(report->crashed);
  ASSERT_TRUE(engine.Shutdown().ok());
  EXPECT_EQ(engine.metrics().updates, 30u * 200u);
  EXPECT_GE(engine.metrics().checkpoints.size(), 1u);
}

TEST_F(EngineTest, StateMatchesReferenceExecution) {
  auto engine_or = Engine::Open(Config(AlgorithmKind::kDribble));
  ASSERT_TRUE(engine_or.ok());
  Engine& engine = *engine_or.value();
  ZipfUpdateSource source(TraceConfig(25, 300));
  ASSERT_TRUE(RunWorkload(&engine, &source, MutatorOptions{}).ok());
  ASSERT_TRUE(engine.Shutdown().ok());

  StateTable reference(TestLayout());
  ApplyWorkloadToTable(&source, 25, &reference);
  EXPECT_TRUE(engine.state().ContentEquals(reference));
}

TEST_F(EngineTest, RecoverAfterCleanShutdownRebuildsFinalState) {
  const EngineConfig config = Config(AlgorithmKind::kCopyOnUpdate);
  uint32_t final_digest = 0;
  {
    auto engine_or = Engine::Open(config);
    ASSERT_TRUE(engine_or.ok());
    ZipfUpdateSource source(TraceConfig(40, 250));
    ASSERT_TRUE(RunWorkload(engine_or.value().get(), &source,
                            MutatorOptions{})
                    .ok());
    ASSERT_TRUE(engine_or.value()->Shutdown().ok());
    final_digest = engine_or.value()->state().Digest();
  }
  StateTable recovered(TestLayout());
  auto result = Recover(config, &recovered);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(recovered.Digest(), final_digest);
  EXPECT_EQ(result->recovered_ticks, 40u);
}

TEST_F(EngineTest, EarlyCrashRecoversFromLogicalLogAlone) {
  // Crash after tick 0: no checkpoint has completed. Recovery must rebuild
  // purely from the logical log on a zeroed table.
  const EngineConfig config = Config(AlgorithmKind::kNaiveSnapshot);
  auto engine_or = Engine::Open(config);
  ASSERT_TRUE(engine_or.ok());
  Engine& engine = *engine_or.value();
  ZipfUpdateSource source(TraceConfig(10, 100));
  MutatorOptions options;
  options.crash_after_tick = 0;
  auto report = RunWorkload(&engine, &source, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->crashed);

  StateTable recovered(TestLayout());
  auto result = Recover(config, &recovered);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->recovered_ticks, 1u);
  EXPECT_TRUE(recovered.ContentEquals(engine.state()));
}

TEST_F(EngineTest, ChecksummedSnapshotSurvivesRestore) {
  EngineConfig config = Config(AlgorithmKind::kNaiveSnapshot);
  config.checksum_state = true;
  auto engine_or = Engine::Open(config);
  ASSERT_TRUE(engine_or.ok());
  Engine& engine = *engine_or.value();
  ZipfUpdateSource source(TraceConfig(20, 150));
  ASSERT_TRUE(RunWorkload(&engine, &source, MutatorOptions{}).ok());
  ASSERT_TRUE(engine.Shutdown().ok());
  ASSERT_GE(engine.metrics().checkpoints.size(), 1u);

  StateTable recovered(TestLayout());
  auto result = Recover(config, &recovered);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->restored_from_checkpoint);
  EXPECT_TRUE(recovered.ContentEquals(engine.state()));
}

TEST_F(EngineTest, EagerCheckpointsRecordPauses) {
  auto engine_or = Engine::Open(Config(AlgorithmKind::kNaiveSnapshot));
  ASSERT_TRUE(engine_or.ok());
  Engine& engine = *engine_or.value();
  ZipfUpdateSource source(TraceConfig(20, 100));
  ASSERT_TRUE(RunWorkload(&engine, &source, MutatorOptions{}).ok());
  ASSERT_TRUE(engine.Shutdown().ok());
  for (const auto& record : engine.metrics().checkpoints) {
    EXPECT_GT(record.sync_seconds, 0.0);
    EXPECT_GT(record.async_seconds, 0.0);
    EXPECT_TRUE(record.all_objects);
    EXPECT_EQ(record.objects_written, TestLayout().num_objects());
  }
  // Naive-Snapshot never copies on update.
  EXPECT_EQ(engine.metrics().cou_copies, 0u);
}

TEST_F(EngineTest, CopyOnUpdateCopiesAreBounded) {
  auto engine_or = Engine::Open(Config(AlgorithmKind::kCopyOnUpdate));
  ASSERT_TRUE(engine_or.ok());
  Engine& engine = *engine_or.value();
  ZipfUpdateSource source(TraceConfig(40, 400));
  ASSERT_TRUE(RunWorkload(&engine, &source, MutatorOptions{}).ok());
  ASSERT_TRUE(engine.Shutdown().ok());
  // Per checkpoint, at most one pre-image copy per member object; across
  // the run, copies can never exceed checkpoints * objects.
  const uint64_t n = TestLayout().num_objects();
  EXPECT_LE(engine.metrics().cou_copies,
            (engine.metrics().checkpoints.size() + 1) * n);
  EXPECT_GT(engine.metrics().updates, 0u);
}

TEST_F(EngineTest, PartialRedoWritesFullFlushEveryC) {
  auto engine_or = Engine::Open(Config(AlgorithmKind::kPartialRedo));
  ASSERT_TRUE(engine_or.ok());
  Engine& engine = *engine_or.value();
  ZipfUpdateSource source(TraceConfig(60, 200));
  ASSERT_TRUE(RunWorkload(&engine, &source, MutatorOptions{}).ok());
  ASSERT_TRUE(engine.Shutdown().ok());
  ASSERT_GE(engine.metrics().checkpoints.size(), 4u);
  uint64_t prev_start = 0;
  bool some_partial = false;
  for (const auto& record : engine.metrics().checkpoints) {
    EXPECT_EQ(record.full_flush, record.seq % 3 == 0) << record.seq;
    if (!record.full_flush) {
      // An incremental flush covers the objects dirtied in
      // [prev start, this start). Interval 0 restarts checkpoints
      // back-to-back, so that window is normally a tick or two -- but on
      // a loaded machine one flush can straddle enough ticks that every
      // object is legitimately dirty, so only narrow windows must come
      // out partial.
      if (record.start_tick - prev_start <= 2) {
        EXPECT_LT(record.objects_written, TestLayout().num_objects())
            << record.seq;
      }
      some_partial |= record.objects_written < TestLayout().num_objects();
    }
    prev_start = record.start_tick;
  }
  EXPECT_TRUE(some_partial);
}

TEST_F(EngineTest, PacedRunHoldsTickRate) {
  auto engine_or = Engine::Open(Config(AlgorithmKind::kCopyOnUpdate));
  ASSERT_TRUE(engine_or.ok());
  Engine& engine = *engine_or.value();
  ZipfUpdateSource source(TraceConfig(20, 50));
  MutatorOptions options;
  options.tick_hz = 200.0;  // 5 ms ticks: fast but schedulable
  options.query_reads_per_tick = 100;
  auto report = RunWorkload(&engine, &source, options);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(engine.Shutdown().ok());
  // 20 ticks at 5 ms = 100 ms minimum.
  EXPECT_GE(report->wall_seconds, 0.095);
}

// ---- The crash-recovery property, across algorithms and crash points ----

struct CrashCase {
  AlgorithmKind kind;
  uint64_t crash_tick;
};

class CrashRecoveryTest : public EngineTest,
                          public ::testing::WithParamInterface<CrashCase> {
 protected:
  void SetUp() override { EngineTest::SetUp(); }
};

TEST_P(CrashRecoveryTest, RecoveredStateEqualsStateAtCrash) {
  const CrashCase param = GetParam();
  const EngineConfig config = Config(param.kind);
  auto engine_or = Engine::Open(config);
  ASSERT_TRUE(engine_or.ok());
  Engine& engine = *engine_or.value();

  ZipfUpdateSource source(TraceConfig(40, 300));
  MutatorOptions options;
  options.crash_after_tick = param.crash_tick;
  auto report = RunWorkload(&engine, &source, options);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->crashed);

  // Reference: the same workload applied to a bare table up to the crash.
  StateTable reference(TestLayout());
  ApplyWorkloadToTable(&source, param.crash_tick + 1, &reference);
  ASSERT_TRUE(engine.state().ContentEquals(reference))
      << "engine diverged from reference before the crash";

  StateTable recovered(TestLayout());
  auto result = Recover(config, &recovered);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->recovered_ticks, param.crash_tick + 1);
  EXPECT_TRUE(recovered.ContentEquals(reference))
      << AlgorithmName(param.kind) << " crash@" << param.crash_tick
      << ": recovered state diverges";
}

std::string CrashCaseName(const ::testing::TestParamInfo<CrashCase>& info) {
  return std::string(GetTraits(info.param.kind).short_name) + "_tick" +
         std::to_string(info.param.crash_tick);
}

std::vector<CrashCase> AllCrashCases() {
  std::vector<CrashCase> cases;
  for (AlgorithmKind kind : AllAlgorithms()) {
    for (uint64_t tick : {2ull, 9ull, 23ull, 38ull}) {
      cases.push_back({kind, tick});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithmsAllCrashPoints, CrashRecoveryTest,
                         ::testing::ValuesIn(AllCrashCases()),
                         [](const auto& info) {
                           std::string name = CrashCaseName(info);
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace tickpoint
