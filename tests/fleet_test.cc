// The unified Fleet handle (fleet.h): create / open / recover / resume
// from the root directory alone -- NO config argument anywhere after
// Create; topology, layout, algorithm, disk organization, and every knob
// come from the durable fleet manifest. Plus the tentpole's acceptance
// sweep: a crash at EVERY step across a MigratePartition epoch boundary
// recovers the correct topology and the exact state on both sides of the
// migration.
#include "engine/fleet.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "engine/mutator.h"
#include "engine/paths.h"
#include "engine/recovery.h"
#include "fleet_test_util.h"
#include "util/io.h"

namespace tickpoint {
namespace {

StateLayout ShardLayout() { return StateLayout::Small(384, 10); }

constexpr uint64_t kUpdatesPerTick = 120;

class FleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string name(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    for (auto& c : name) {
      if (c == '/') c = '_';
    }
    dir_ = (std::filesystem::temp_directory_path() / ("tp_fleet_" + name))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// A deliberately non-default config: the round-trip tests prove these
  /// values come back from the MANIFEST, not from defaults.
  ShardedEngineConfig Config(uint32_t num_shards,
                             AlgorithmKind kind = AlgorithmKind::kCopyOnUpdate,
                             bool threaded = true) {
    ShardedEngineConfig config;
    config.shard.layout = ShardLayout();
    config.shard.algorithm = kind;
    config.shard.fsync = false;  // simulated crashes: page cache is durable
    config.shard.full_flush_period = 4;
    config.num_shards = num_shards;
    config.checkpoint_period_ticks = 5;
    config.threaded = threaded;
    return config;
  }

  /// Drives `ticks` fleet ticks of the deterministic workload from the
  /// fleet's CURRENT tick, mirroring every update into `reference`.
  void RunTicks(Fleet* fleet, uint64_t ticks,
                std::vector<StateTable>* reference) {
    const uint64_t num_cells = ShardLayout().num_cells();
    if (reference->empty()) {
      for (uint32_t i = 0; i < fleet->num_partitions(); ++i) {
        reference->emplace_back(ShardLayout());
      }
    }
    for (uint64_t t = 0; t < ticks; ++t) {
      const uint64_t tick = fleet->current_tick();
      fleet->BeginTick();
      for (uint32_t p = 0; p < fleet->num_partitions(); ++p) {
        for (uint64_t i = 0; i < kUpdatesPerTick; ++i) {
          const uint32_t cell = WorkloadCell(p, tick, i, num_cells);
          const int32_t value = WorkloadValue(tick, cell, i);
          fleet->ApplyUpdate(p, cell, value);
          (*reference)[p].WriteCell(cell, value);
        }
      }
      ASSERT_TRUE(fleet->EndTick().ok());
    }
  }

  std::string dir_;
};

TEST_F(FleetTest, CreateOpenRecoverRoundTripWithNoConfig) {
  const auto config =
      Config(3, AlgorithmKind::kCopyOnUpdatePartialRedo);
  std::vector<StateTable> reference;
  {
    auto fleet_or = Fleet::Create(dir_, config);
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    Fleet& fleet = *fleet_or.value();
    EXPECT_EQ(fleet.epoch(), 0u);
    EXPECT_EQ(fleet.root(), dir_);
    RunTicks(&fleet, 9, &reference);
    ASSERT_TRUE(fleet.Shutdown().ok());
  }
  // Reopen from the root ALONE: layout, algorithm, K, and the knobs all
  // come back from the manifest.
  {
    auto fleet_or = Fleet::Open(dir_);
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    Fleet& fleet = *fleet_or.value();
    EXPECT_EQ(fleet.num_partitions(), 3u);
    EXPECT_EQ(fleet.current_tick(), 9u);
    EXPECT_EQ(fleet.manifest().algorithm,
              AlgorithmKind::kCopyOnUpdatePartialRedo);
    EXPECT_EQ(fleet.manifest().layout.rows, ShardLayout().rows);
    EXPECT_EQ(fleet.manifest().checkpoint_period_ticks, 5u);
    EXPECT_EQ(fleet.manifest().full_flush_period, 4u);
    EXPECT_FALSE(fleet.manifest().fsync);
    ASSERT_TRUE(fleet.WaitForIdle().ok());
    for (uint32_t p = 0; p < 3; ++p) {
      EXPECT_TRUE(fleet.engine().shard(p).state().ContentEquals(reference[p]))
          << "partition " << p;
    }
    RunTicks(&fleet, 5, &reference);
    ASSERT_TRUE(fleet.SimulateCrash().ok());
  }
  // Recover from the root alone; the tables must equal the reference.
  auto recovered_or = Fleet::Recover(dir_);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  RecoveredFleet& recovered = recovered_or.value();
  EXPECT_FALSE(recovered.at_cut());
  EXPECT_EQ(recovered.resume_tick(), 14u);
  EXPECT_EQ(recovered.manifest().epoch, 0u);
  ASSERT_EQ(recovered.tables().size(), 3u);
  for (uint32_t p = 0; p < 3; ++p) {
    EXPECT_TRUE(recovered.tables()[p].ContentEquals(reference[p]))
        << "partition " << p;
  }
  // ...and the recovered fleet resumes into a live one.
  auto resumed_or = recovered.Resume();
  ASSERT_TRUE(resumed_or.ok()) << resumed_or.status().ToString();
  EXPECT_EQ(resumed_or.value()->current_tick(), 14u);
  ASSERT_TRUE(resumed_or.value()->Shutdown().ok());
}

TEST_F(FleetTest, CreateRefusesAnExistingFleet) {
  {
    auto fleet_or = Fleet::Create(dir_, Config(2));
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    ASSERT_TRUE(fleet_or.value()->Shutdown().ok());
  }
  auto again_or = Fleet::Create(dir_, Config(2));
  EXPECT_EQ(again_or.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(FleetTest, CreateRefusesAPreManifestFleetToo) {
  // A pre-manifest root carries shard dirs but NO superblock; Create must
  // still refuse -- its fresh open would truncate every shard's logical
  // log and checkpoints.
  {
    auto fleet_or = Fleet::Create(dir_, Config(2));
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    ASSERT_TRUE(fleet_or.value()->Shutdown().ok());
  }
  // Forge the pre-manifest era: the superblock vanishes, the data stays.
  for (const uint64_t epoch : ListFleetManifestEpochs(dir_)) {
    std::filesystem::remove(paths::FleetManifestPath(dir_, epoch));
  }
  auto create_or = Fleet::Create(dir_, Config(2));
  EXPECT_EQ(create_or.status().code(), StatusCode::kFailedPrecondition);
  // The shard data survived the refusal.
  EXPECT_TRUE(std::filesystem::is_directory(paths::ShardDir(dir_, 0)));
  EXPECT_TRUE(
      FileExists(paths::LogicalLogPath(paths::ShardDir(dir_, 0))));
}

TEST_F(FleetTest, OpenOnANonFleetRootIsNotFound) {
  EXPECT_EQ(Fleet::Open(dir_).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(EnsureDirectory(dir_).ok());
  EXPECT_EQ(Fleet::Open(dir_).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(Fleet::Recover(dir_).status().code(), StatusCode::kNotFound);
}

TEST_F(FleetTest, MigratePartitionEnforcesItsPreconditions) {
  auto fleet_or = Fleet::Create(dir_, Config(2));
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  Fleet& fleet = *fleet_or.value();
  std::vector<StateTable> reference;
  RunTicks(&fleet, 2, &reference);
  // No committed cut at the previous tick.
  EXPECT_EQ(fleet.MigratePartition(0, 7).code(),
            StatusCode::kFailedPrecondition);
  // Unknown partition / occupied destination slot.
  auto cut_or = fleet.RequestConsistentCut();
  ASSERT_TRUE(cut_or.ok());
  // A cut still in flight also refuses.
  EXPECT_EQ(fleet.MigratePartition(0, 7).code(),
            StatusCode::kFailedPrecondition);
  RunTicks(&fleet, cut_or.value() + 1 - fleet.current_tick(), &reference);
  ASSERT_TRUE(fleet.CommitConsistentCut().ok());
  EXPECT_EQ(fleet.MigratePartition(9, 7).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fleet.MigratePartition(0, 1).code(),
            StatusCode::kInvalidArgument);
  // One tick past the committed cut: the hand-off point is gone.
  RunTicks(&fleet, 1, &reference);
  EXPECT_EQ(fleet.MigratePartition(0, 7).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(fleet.Shutdown().ok());
}

TEST_F(FleetTest, MigrationMovesThePartitionAndBumpsTheEpoch) {
  auto fleet_or = Fleet::Create(dir_, Config(2));
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  Fleet& fleet = *fleet_or.value();
  std::vector<StateTable> reference;
  RunTicks(&fleet, 3, &reference);
  auto cut_or = fleet.RequestConsistentCut();
  ASSERT_TRUE(cut_or.ok());
  RunTicks(&fleet, cut_or.value() + 1 - fleet.current_tick(), &reference);
  ASSERT_TRUE(fleet.CommitConsistentCut().ok());
  auto status = fleet.MigratePartition(1, 5);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(fleet.epoch(), 1u);
  EXPECT_EQ(fleet.engine().SlotOfPartition(0), 0u);
  EXPECT_EQ(fleet.engine().SlotOfPartition(1), 5u);
  EXPECT_EQ(fleet.last_migration_report().partition, 1u);
  EXPECT_EQ(fleet.last_migration_report().from_slot, 1u);
  EXPECT_EQ(fleet.last_migration_report().to_slot, 5u);
  EXPECT_EQ(fleet.last_migration_report().first_tick_on_new_shard,
            cut_or.value() + 1);
  // On disk: only the epoch-1 manifest, the destination populated, the
  // source directory retired.
  EXPECT_EQ(ListFleetManifestEpochs(dir_), (std::vector<uint64_t>{1}));
  EXPECT_TRUE(std::filesystem::is_directory(paths::ShardDir(dir_, 5)));
  EXPECT_FALSE(std::filesystem::exists(paths::ShardDir(dir_, 1)));
  // The fleet keeps playing across the boundary, and a full no-config
  // round trip lands on the migrated topology with exact state.
  RunTicks(&fleet, 6, &reference);
  ASSERT_TRUE(fleet.SimulateCrash().ok());
  auto recovered_or = Fleet::Recover(dir_);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  EXPECT_EQ(recovered_or.value().manifest().epoch, 1u);
  EXPECT_EQ(recovered_or.value().manifest().assignment,
            (std::vector<uint32_t>{0, 5}));
  for (uint32_t p = 0; p < 2; ++p) {
    EXPECT_TRUE(recovered_or.value().tables()[p].ContentEquals(reference[p]))
        << "partition " << p;
  }
}

TEST_F(FleetTest, MigrationPreservesTheDurableKnobsAcrossAResume) {
  // A resume followed by a migration re-commits the manifest (epoch
  // bump); it must carry the ORIGINAL durable knobs (full_flush_period 4
  // here, not a default) -- the disk keeps telling the truth Fleet::Open
  // relies on. With the Fleet-only lifecycle there is no config-supplying
  // resume left that could drift them, so the knobs must round-trip
  // through Recover -> Resume -> MigratePartition untouched.
  const auto config = Config(2);  // full_flush_period 4 is the durable truth
  std::vector<StateTable> reference;
  {
    auto fleet_or = Fleet::Create(dir_, config);
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    RunTicks(fleet_or.value().get(), 4, &reference);
    ASSERT_TRUE(fleet_or.value()->SimulateCrash().ok());
  }
  {
    auto crash_or = Fleet::Recover(dir_);
    ASSERT_TRUE(crash_or.ok()) << crash_or.status().ToString();
    auto fleet_or = crash_or->Resume();
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    Fleet& fleet = *fleet_or.value();
    auto cut_or = fleet.RequestConsistentCut();
    ASSERT_TRUE(cut_or.ok());
    while (fleet.current_tick() <= cut_or.value()) {
      fleet.BeginTick();
      for (uint32_t p = 0; p < 2; ++p) {
        fleet.ApplyUpdate(p, p, 1);
      }
      ASSERT_TRUE(fleet.EndTick().ok());
    }
    ASSERT_TRUE(fleet.CommitConsistentCut().ok());
    ASSERT_TRUE(fleet.MigratePartition(0, 2).ok());
    ASSERT_TRUE(fleet.Shutdown().ok());
  }
  auto recovered_or = Fleet::Recover(dir_);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  EXPECT_EQ(recovered_or.value().manifest().epoch, 1u);
  EXPECT_EQ(recovered_or.value().manifest().full_flush_period, 4u)
      << "the migration re-committed drifted knobs";
}

TEST_F(FleetTest, MigratesTwoPartitionsAtOneCut) {
  // Multi-partition rebalance: both moves happen at the SAME committed
  // cut (no tick runs in between), each bumping the epoch.
  auto fleet_or = Fleet::Create(dir_, Config(3));
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  Fleet& fleet = *fleet_or.value();
  std::vector<StateTable> reference;
  RunTicks(&fleet, 2, &reference);
  auto cut_or = fleet.RequestConsistentCut();
  ASSERT_TRUE(cut_or.ok());
  RunTicks(&fleet, cut_or.value() + 1 - fleet.current_tick(), &reference);
  ASSERT_TRUE(fleet.CommitConsistentCut().ok());
  ASSERT_TRUE(fleet.MigratePartition(0, 3).ok());
  ASSERT_TRUE(fleet.MigratePartition(2, 4).ok());
  EXPECT_EQ(fleet.epoch(), 2u);
  RunTicks(&fleet, 4, &reference);
  ASSERT_TRUE(fleet.SimulateCrash().ok());
  auto recovered_or = Fleet::Recover(dir_);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  EXPECT_EQ(recovered_or.value().manifest().assignment,
            (std::vector<uint32_t>{3, 1, 4}));
  for (uint32_t p = 0; p < 3; ++p) {
    EXPECT_TRUE(recovered_or.value().tables()[p].ContentEquals(reference[p]))
        << "partition " << p;
  }
}

TEST_F(FleetTest, CutRecoverySurvivesTheMigrationEpochBoundary) {
  // The committed cut manifest is deliberately NOT retired by a
  // migration: the destination bootstrap IS the migrated partition's
  // image at the cut, so Fleet::RecoverToCut must land the whole fleet at
  // exactly the cut tick on the NEW topology.
  auto fleet_or = Fleet::Create(dir_, Config(2));
  ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
  Fleet& fleet = *fleet_or.value();
  std::vector<StateTable> reference;
  RunTicks(&fleet, 2, &reference);
  auto cut_or = fleet.RequestConsistentCut();
  ASSERT_TRUE(cut_or.ok());
  const uint64_t cut_tick = cut_or.value();
  RunTicks(&fleet, cut_tick + 1 - fleet.current_tick(), &reference);
  std::vector<StateTable> reference_at_cut = SnapshotTables(reference);
  ASSERT_TRUE(fleet.CommitConsistentCut().ok());
  ASSERT_TRUE(fleet.MigratePartition(0, 2).ok());
  RunTicks(&fleet, 5, &reference);  // ticks the cut restore discards
  ASSERT_TRUE(fleet.SimulateCrash().ok());

  auto recovered_or = Fleet::RecoverToCut(dir_);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  RecoveredFleet& recovered = recovered_or.value();
  EXPECT_TRUE(recovered.at_cut());
  EXPECT_EQ(recovered.result().cut_tick, cut_tick);
  EXPECT_EQ(recovered.manifest().epoch, 1u);
  EXPECT_EQ(recovered.resume_tick(), cut_tick + 1);
  for (uint32_t p = 0; p < 2; ++p) {
    EXPECT_TRUE(recovered.tables()[p].ContentEquals(reference_at_cut[p]))
        << "partition " << p;
  }
  // And the cut landing resumes into a live fleet on the new topology.
  auto resumed_or = recovered.Resume();
  ASSERT_TRUE(resumed_or.ok()) << resumed_or.status().ToString();
  EXPECT_EQ(resumed_or.value()->epoch(), 1u);
  EXPECT_EQ(resumed_or.value()->current_tick(), cut_tick + 1);
  ASSERT_TRUE(resumed_or.value()->Shutdown().ok());
}

// ---- The acceptance sweep: crash at EVERY step across a migration ----
//
// Scripted timeline (K=2, partition 1 migrates from slot 1 to slot 2):
//   steps 1..7   : fleet ticks 0..6 (the consistent cut is requested
//                  after tick 3 and lands on tick 6, the last pre-move
//                  tick)
//   step 8       : CommitConsistentCut + MigratePartition(1, 2)
//   steps 9..13  : fleet ticks 7..11 on the migrated topology
// A crash after step s must recover: the correct epoch (0 before the
// migration committed, 1 after), the correct assignment, and per-partition
// state exactly equal to the deterministic reference -- on BOTH sides of
// the epoch boundary.

struct MigrationCrashCase {
  int crash_after_step;
  bool threaded;
};

class FleetMigrationCrashSweepTest
    : public FleetTest,
      public ::testing::WithParamInterface<MigrationCrashCase> {};

TEST_P(FleetMigrationCrashSweepTest, RecoversTopologyAndExactState) {
  const MigrationCrashCase param = GetParam();
  constexpr int kMigrationStep = 8;
  constexpr uint64_t kCutRequestAfterTicks = 4;  // cut lead 2 -> cut tick 6
  const auto config =
      Config(2, AlgorithmKind::kCopyOnUpdate, param.threaded);

  std::vector<StateTable> reference;
  uint64_t cut_tick = 0;
  bool migrated = false;
  {
    auto fleet_or = Fleet::Create(dir_, config);
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    Fleet& fleet = *fleet_or.value();
    for (int step = 1; step <= param.crash_after_step; ++step) {
      if (step == kMigrationStep) {
        ASSERT_TRUE(fleet.CommitConsistentCut().ok());
        auto status = fleet.MigratePartition(1, 2);
        ASSERT_TRUE(status.ok()) << status.ToString();
        migrated = true;
        continue;
      }
      RunTicks(&fleet, 1, &reference);
      if (fleet.current_tick() == kCutRequestAfterTicks) {
        auto cut_or = fleet.RequestConsistentCut();
        ASSERT_TRUE(cut_or.ok()) << cut_or.status().ToString();
        cut_tick = cut_or.value();
        ASSERT_EQ(cut_tick, 6u);
      }
    }
    ASSERT_TRUE(fleet.SimulateCrash().ok());
  }
  const uint64_t expected_ticks =
      param.crash_after_step < kMigrationStep
          ? static_cast<uint64_t>(param.crash_after_step)
          : static_cast<uint64_t>(param.crash_after_step - 1);

  auto recovered_or = Fleet::Recover(dir_);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  RecoveredFleet& recovered = recovered_or.value();
  EXPECT_EQ(recovered.manifest().epoch, migrated ? 1u : 0u);
  EXPECT_EQ(recovered.manifest().assignment,
            migrated ? (std::vector<uint32_t>{0, 2})
                     : (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(recovered.result().fleet.min_recovered_ticks, expected_ticks);
  EXPECT_EQ(recovered.result().fleet.max_recovered_ticks, expected_ticks);
  ASSERT_EQ(recovered.tables().size(), 2u);
  for (uint32_t p = 0; p < 2; ++p) {
    EXPECT_TRUE(recovered.tables()[p].ContentEquals(reference[p]))
        << "partition " << p << " after crash step "
        << param.crash_after_step;
  }
  if (migrated) {
    // Both sides of the boundary stay reachable: the committed cut is
    // still exactly reproducible on the NEW topology.
    auto at_cut_or = Fleet::RecoverToCut(dir_);
    ASSERT_TRUE(at_cut_or.ok()) << at_cut_or.status().ToString();
    EXPECT_TRUE(at_cut_or.value().at_cut());
    EXPECT_EQ(at_cut_or.value().result().cut_tick, cut_tick);
  }
}

std::vector<MigrationCrashCase> AllMigrationCrashCases() {
  std::vector<MigrationCrashCase> cases;
  for (int step = 1; step <= 13; ++step) {
    cases.push_back({step, /*threaded=*/true});
  }
  // The inline facade takes the same sweep (deterministic single-thread
  // scheduling) at the boundary-adjacent steps.
  for (int step : {7, 8, 9}) {
    cases.push_back({step, /*threaded=*/false});
  }
  return cases;
}

std::string MigrationCrashCaseName(
    const ::testing::TestParamInfo<MigrationCrashCase>& info) {
  return "step" + std::to_string(info.param.crash_after_step) +
         (info.param.threaded ? "" : "_inline");
}

INSTANTIATE_TEST_SUITE_P(EveryStep, FleetMigrationCrashSweepTest,
                         ::testing::ValuesIn(AllMigrationCrashCases()),
                         MigrationCrashCaseName);

}  // namespace
}  // namespace tickpoint
