// Direct ShardRunner unit tests: the mailbox backpressure bound and the
// sticky-error drain contract, previously exercised only through the
// ShardedEngine facade.
#include "engine/shard_runner.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "util/sched_fuzz.h"

namespace tickpoint {
namespace {

class ShardRunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string name = ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name();
    dir_ = (std::filesystem::temp_directory_path() / ("tp_runner_" + name))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    std::filesystem::remove_all(dir_ + "_threaded");
    std::filesystem::remove_all(dir_ + "_inline");
  }

  std::unique_ptr<Engine> OpenEngine(const std::string& suffix = "") {
    EngineConfig config;
    config.layout = StateLayout::Small(512, 10);
    config.algorithm = AlgorithmKind::kCopyOnUpdate;
    config.dir = dir_ + suffix;
    config.fsync = false;
    config.manual_checkpoints = true;
    auto engine_or = Engine::Open(config);
    EXPECT_TRUE(engine_or.ok()) << engine_or.status().ToString();
    return std::move(engine_or.value());
  }

  static ShardTickBatch MakeBatch(uint64_t tick, uint64_t updates) {
    ShardTickBatch batch;
    batch.tick = tick;
    batch.updates.reserve(updates);
    for (uint64_t i = 0; i < updates; ++i) {
      batch.updates.push_back(
          CellUpdate{static_cast<uint32_t>((tick * 31 + i) % 512),
                     static_cast<int32_t>(tick * 1000 + i)});
    }
    return batch;
  }

  std::string dir_;
};

TEST_F(ShardRunnerTest, BackpressureBoundsTheMailboxLag) {
  // The contract: SubmitTick blocks while the mailbox holds
  // max_queue_ticks batches, so after ANY SubmitTick returns the producer
  // leads the runner by at most max_queue_ticks queued batches plus the
  // one batch popped and mid-application. The batches are heavy (2000
  // updates each) and the submit loop is free-running, so the producer
  // genuinely outruns the consumer and the bound does real work.
  constexpr uint64_t kMaxQueue = 4;
  constexpr uint64_t kTicks = 200;
  ShardRunner runner(0, OpenEngine(), /*threaded=*/true, kMaxQueue, nullptr);
  for (uint64_t tick = 0; tick < kTicks; ++tick) {
    runner.SubmitTick(MakeBatch(tick, 2000));
    const uint64_t submitted = tick + 1;
    EXPECT_GE(runner.ticks_completed() + kMaxQueue + 1, submitted)
        << "mailbox exceeded its bound at tick " << tick;
  }
  ASSERT_TRUE(runner.Drain().ok());
  EXPECT_EQ(runner.ticks_completed(), kTicks);
  runner.Stop();
  EXPECT_EQ(runner.engine().current_tick(), kTicks);
  ASSERT_TRUE(runner.engine().Shutdown().ok());
}

TEST_F(ShardRunnerTest, StickyErrorFreezesTheEngineButDrainsTheMailbox) {
  ShardRunner runner(0, OpenEngine(), /*threaded=*/true, /*max_queue_ticks=*/8,
                     nullptr);
  for (uint64_t tick = 0; tick < 3; ++tick) {
    runner.SubmitTick(MakeBatch(tick, 50));
  }
  ASSERT_TRUE(runner.Drain().ok());
  EXPECT_FALSE(runner.has_error());

  // Inject on the parked runner (Drain quiesced it), then keep submitting:
  // tick 3 fails, ticks 4..8 must be discarded-but-accounted so Drain and
  // Stop still terminate, and the engine stays frozen at its failure tick.
  runner.engine().InjectEndTickErrorForTest(Status::IOError("injected"));
  for (uint64_t tick = 3; tick < 9; ++tick) {
    runner.SubmitTick(MakeBatch(tick, 50));
  }
  const Status drain = runner.Drain();
  EXPECT_EQ(drain.code(), StatusCode::kIOError);
  EXPECT_TRUE(runner.has_error());
  EXPECT_EQ(runner.ticks_completed(), 9u);  // every batch accounted
  EXPECT_EQ(runner.engine().current_tick(), 3u);  // frozen at the failure

  // The first error is sticky across further submissions and drains.
  runner.SubmitTick(MakeBatch(9, 50));
  EXPECT_EQ(runner.Drain(), drain);
  EXPECT_EQ(runner.status(), drain);
  runner.Stop();
  runner.Stop();  // idempotent
  ASSERT_TRUE(runner.engine().Shutdown().ok());
}

TEST_F(ShardRunnerTest, InlineModeAppliesSynchronously) {
  ShardRunner runner(0, OpenEngine(), /*threaded=*/false,
                     /*max_queue_ticks=*/4, nullptr);
  for (uint64_t tick = 0; tick < 5; ++tick) {
    runner.SubmitTick(MakeBatch(tick, 50));
    // Inline: the batch is applied before SubmitTick returns.
    EXPECT_EQ(runner.ticks_completed(), tick + 1);
    EXPECT_EQ(runner.engine().current_tick(), tick + 1);
  }
  ASSERT_TRUE(runner.Drain().ok());
  runner.Stop();
  ASSERT_TRUE(runner.engine().Shutdown().ok());
}

TEST_F(ShardRunnerTest, ThreadedMatchesInlineOnTheMailboxContract) {
  // Mailbox-contract parity: the same batch sequence through a threaded
  // runner (batches cross the lock-free ring to a mutator thread) and an
  // inline runner (applied on the caller) must land on identical engine
  // state at every Drain barrier and at the end.
  ShardRunner threaded(0, OpenEngine("_threaded"), /*threaded=*/true,
                       /*max_queue_ticks=*/4, nullptr);
  ShardRunner inline_runner(0, OpenEngine("_inline"), /*threaded=*/false,
                            /*max_queue_ticks=*/4, nullptr);
  constexpr uint64_t kTicks = 60;
  for (uint64_t tick = 0; tick < kTicks; ++tick) {
    threaded.SubmitTick(MakeBatch(tick, 300));
    inline_runner.SubmitTick(MakeBatch(tick, 300));
    if (tick % 17 == 16) {
      // Drain is a barrier: afterwards the threaded runner must be
      // indistinguishable from the inline one.
      ASSERT_TRUE(threaded.Drain().ok());
      ASSERT_TRUE(inline_runner.Drain().ok());
      ASSERT_EQ(threaded.ticks_completed(), inline_runner.ticks_completed());
      ASSERT_EQ(threaded.engine().current_tick(),
                inline_runner.engine().current_tick());
      ASSERT_EQ(threaded.engine().state().Digest(),
                inline_runner.engine().state().Digest());
    }
  }
  ASSERT_TRUE(threaded.Drain().ok());
  ASSERT_TRUE(inline_runner.Drain().ok());
  EXPECT_EQ(threaded.ticks_completed(), kTicks);
  EXPECT_EQ(inline_runner.ticks_completed(), kTicks);
  EXPECT_EQ(threaded.engine().state().Digest(),
            inline_runner.engine().state().Digest());
  threaded.Stop();
  inline_runner.Stop();
  ASSERT_TRUE(threaded.engine().Shutdown().ok());
  ASSERT_TRUE(inline_runner.engine().Shutdown().ok());
}

TEST_F(ShardRunnerTest, FuzzedScheduleKeepsTheContract) {
  // The schedule-perturbing stress: with SchedFuzz enabled the ring's
  // fuzz points yield/spin at the interesting interleaving windows, and
  // the threaded runner must still match a deterministic inline replay of
  // the same batches. TP_SCHED_FUZZ_SEED replays a reported failure.
  uint64_t seed = 314159;
  if (const char* env = std::getenv("TP_SCHED_FUZZ_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  SCOPED_TRACE("replay with TP_SCHED_FUZZ_SEED=" + std::to_string(seed));
  SchedFuzz::Enable(seed);
  ShardRunner threaded(0, OpenEngine("_threaded"), /*threaded=*/true,
                       /*max_queue_ticks=*/2, nullptr);
  ShardRunner inline_runner(0, OpenEngine("_inline"), /*threaded=*/false,
                            /*max_queue_ticks=*/2, nullptr);
  constexpr uint64_t kTicks = 400;
  for (uint64_t tick = 0; tick < kTicks; ++tick) {
    threaded.SubmitTick(MakeBatch(tick, 64));
    inline_runner.SubmitTick(MakeBatch(tick, 64));
    EXPECT_GE(threaded.ticks_completed() + 2 + 1, tick + 1)
        << "mailbox exceeded its bound at tick " << tick;
  }
  ASSERT_TRUE(threaded.Drain().ok());
  ASSERT_TRUE(inline_runner.Drain().ok());
  SchedFuzz::Disable();
  EXPECT_EQ(threaded.ticks_completed(), kTicks);
  EXPECT_EQ(threaded.engine().current_tick(), kTicks);
  EXPECT_EQ(threaded.engine().state().Digest(),
            inline_runner.engine().state().Digest());
  threaded.Stop();
  inline_runner.Stop();
  ASSERT_TRUE(threaded.engine().Shutdown().ok());
  ASSERT_TRUE(inline_runner.engine().Shutdown().ok());
}

}  // namespace
}  // namespace tickpoint
