#include "util/status.h"

#include <gtest/gtest.h>

namespace tickpoint {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::IOError("a"), Status::IOError("a"));
  EXPECT_FALSE(Status::IOError("a") == Status::IOError("b"));
  EXPECT_FALSE(Status::IOError("a") == Status::Corruption("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = Status::NotFound("nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result = std::string("payload");
  ASSERT_TRUE(result.ok());
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

StatusOr<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseMacros(int x, int* out) {
  TP_RETURN_NOT_OK(FailIfNegative(x));
  TP_ASSIGN_OR_RETURN(*out, HalveEven(x));
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnNotOkPropagates) {
  int out = 0;
  EXPECT_EQ(UseMacros(-1, &out).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(UseMacros(3, &out).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(UseMacros(8, &out).ok());
  EXPECT_EQ(out, 4);
}

}  // namespace
}  // namespace tickpoint
