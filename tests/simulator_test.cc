// Integration tests: lockstep simulation over Zipf traces, checked against
// the closed-form values and orderings the paper reports.
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <map>

#include "trace/zipf_source.h"

namespace tickpoint {
namespace {

std::map<AlgorithmKind, AlgorithmRunResult> ResultMap(
    std::vector<AlgorithmRunResult> results) {
  std::map<AlgorithmKind, AlgorithmRunResult> map;
  for (auto& result : results) map.emplace(result.kind, std::move(result));
  return map;
}

// Paper-scale layout but few ticks, to keep tests fast.
ZipfTraceConfig PaperishConfig(uint64_t updates_per_tick, double theta,
                               uint64_t ticks = 120) {
  ZipfTraceConfig config;
  config.layout = StateLayout::Paper();
  config.num_ticks = ticks;
  config.updates_per_tick = updates_per_tick;
  config.theta = theta;
  config.seed = 99;
  return config;
}

TEST(LockstepSimulatorTest, AllSixAlgorithmsRun) {
  ZipfUpdateSource source(PaperishConfig(4000, 0.8, 60));
  SimulationOptions options;
  auto results = RunSimulation(options, AllAlgorithms(), &source);
  ASSERT_EQ(results.size(), 6u);
  for (const auto& result : results) {
    EXPECT_EQ(result.ticks, 60u);
    EXPECT_GT(result.sim_seconds, 0.0);
    EXPECT_GE(result.metrics.checkpoints.size(), 1u)
        << AlgorithmName(result.kind);
  }
}

TEST(LockstepSimulatorTest, FullStateMethodsCheckpointInConstantTime) {
  // Figure 2(b): Naive, Dribble, Atomic-Copy, and Copy-on-Update write the
  // whole state (or a full rotation) per checkpoint: ~0.67 s regardless of
  // update rate.
  for (uint64_t rate : {1000u, 64000u}) {
    ZipfUpdateSource source(PaperishConfig(rate, 0.8, 80));
    auto results = ResultMap(RunSimulation(
        SimulationOptions{},
        {AlgorithmKind::kNaiveSnapshot, AlgorithmKind::kDribble,
         AlgorithmKind::kAtomicCopyDirty, AlgorithmKind::kCopyOnUpdate},
        &source));
    for (const auto& [kind, result] : results) {
      EXPECT_NEAR(result.avg_checkpoint_seconds, 0.667, 0.03)
          << AlgorithmName(kind) << " at rate " << rate;
    }
  }
}

TEST(LockstepSimulatorTest, PartialRedoCheckpointsFasterAtLowRates) {
  // Figure 2(b): at 1,000 updates/tick the log-based dirty methods
  // checkpoint ~6.8x faster than the full-state methods.
  ZipfUpdateSource source(PaperishConfig(1000, 0.8, 150));
  auto results = ResultMap(RunSimulation(
      SimulationOptions{},
      {AlgorithmKind::kNaiveSnapshot, AlgorithmKind::kPartialRedo,
       AlgorithmKind::kCopyOnUpdatePartialRedo},
      &source));
  const double naive = results.at(AlgorithmKind::kNaiveSnapshot)
                           .avg_checkpoint_seconds;
  const double pr = results.at(AlgorithmKind::kPartialRedo)
                        .avg_checkpoint_seconds;
  const double coupr = results.at(AlgorithmKind::kCopyOnUpdatePartialRedo)
                           .avg_checkpoint_seconds;
  EXPECT_LT(pr, naive / 3);
  EXPECT_LT(coupr, naive / 3);
  EXPECT_NEAR(naive, 0.667, 0.03);
}

TEST(LockstepSimulatorTest, CopyOnUpdateBeatsEagerOverheadAtLowRates) {
  // Figure 2(a): below ~8,000 updates/tick the copy-on-update family has
  // up to 5x less average overhead than Naive-Snapshot.
  ZipfUpdateSource source(PaperishConfig(1000, 0.8, 150));
  auto results =
      ResultMap(RunSimulation(SimulationOptions{}, AllAlgorithms(), &source));
  const double naive =
      results.at(AlgorithmKind::kNaiveSnapshot).avg_overhead_seconds;
  for (AlgorithmKind kind :
       {AlgorithmKind::kDribble, AlgorithmKind::kCopyOnUpdate,
        AlgorithmKind::kCopyOnUpdatePartialRedo}) {
    EXPECT_LT(results.at(kind).avg_overhead_seconds, naive / 2)
        << AlgorithmName(kind);
  }
}

TEST(LockstepSimulatorTest, EagerConcentratesOverheadIntoPeaks) {
  // Figure 3: at 64K updates/tick the eager methods pause ~17-18 ms (beyond
  // the half-tick latency limit) while copy-on-update methods stay below it
  // on every tick but spread overhead across ticks.
  ZipfUpdateSource source(PaperishConfig(64000, 0.8, 100));
  auto results =
      ResultMap(RunSimulation(SimulationOptions{}, AllAlgorithms(), &source));
  const double limit = HardwareParams::Paper().LatencyLimitSeconds();
  for (AlgorithmKind kind :
       {AlgorithmKind::kNaiveSnapshot, AlgorithmKind::kAtomicCopyDirty,
        AlgorithmKind::kPartialRedo}) {
    EXPECT_GT(results.at(kind).metrics.tick_overhead.Max(), limit)
        << AlgorithmName(kind);
  }
  for (AlgorithmKind kind :
       {AlgorithmKind::kDribble, AlgorithmKind::kCopyOnUpdate,
        AlgorithmKind::kCopyOnUpdatePartialRedo}) {
    EXPECT_LT(results.at(kind).metrics.tick_overhead.Max(), limit)
        << AlgorithmName(kind);
  }
}

TEST(LockstepSimulatorTest, PartialRedoRecoveryWorstAtHighRates) {
  // Figure 2(c): at high update rates the partial-redo methods recover
  // several times slower than everything else (7.2 s vs 1.4 s in the paper).
  ZipfUpdateSource source(PaperishConfig(64000, 0.8, 120));
  auto results =
      ResultMap(RunSimulation(SimulationOptions{}, AllAlgorithms(), &source));
  const double naive = results.at(AlgorithmKind::kNaiveSnapshot)
                           .recovery_seconds;
  EXPECT_NEAR(naive, 1.33, 0.1);  // 2x the 0.67 s full write
  for (AlgorithmKind kind : {AlgorithmKind::kPartialRedo,
                             AlgorithmKind::kCopyOnUpdatePartialRedo}) {
    EXPECT_GT(results.at(kind).recovery_seconds, 3 * naive)
        << AlgorithmName(kind);
  }
  // Non-partial-redo methods all recover in about the same time.
  for (AlgorithmKind kind :
       {AlgorithmKind::kDribble, AlgorithmKind::kAtomicCopyDirty,
        AlgorithmKind::kCopyOnUpdate}) {
    EXPECT_NEAR(results.at(kind).recovery_seconds, naive, 0.2)
        << AlgorithmName(kind);
  }
}

TEST(LockstepSimulatorTest, SkewReducesCopyOnUpdateOverhead) {
  // Figure 4(a): higher skew -> fewer distinct dirty objects -> less
  // copy-on-update work. Naive-Snapshot is unaffected.
  ZipfUpdateSource uniform(PaperishConfig(64000, 0.0, 100));
  ZipfUpdateSource skewed(PaperishConfig(64000, 0.99, 100));
  auto at_uniform =
      ResultMap(RunSimulation(SimulationOptions{}, AllAlgorithms(), &uniform));
  auto at_skew =
      ResultMap(RunSimulation(SimulationOptions{}, AllAlgorithms(), &skewed));
  EXPECT_LT(at_skew.at(AlgorithmKind::kCopyOnUpdate).avg_overhead_seconds,
            at_uniform.at(AlgorithmKind::kCopyOnUpdate).avg_overhead_seconds);
  EXPECT_NEAR(
      at_skew.at(AlgorithmKind::kNaiveSnapshot).avg_overhead_seconds,
      at_uniform.at(AlgorithmKind::kNaiveSnapshot).avg_overhead_seconds,
      1e-4);
}

TEST(LockstepSimulatorTest, LockstepMatchesIndividualRuns) {
  // Running algorithms together must give identical results to running them
  // alone (no cross-algorithm interference).
  ZipfUpdateSource source(PaperishConfig(2000, 0.8, 40));
  auto together =
      RunSimulation(SimulationOptions{}, AllAlgorithms(), &source);
  for (const auto& expected : together) {
    ZipfUpdateSource solo_source(PaperishConfig(2000, 0.8, 40));
    auto solo =
        RunSimulation(SimulationOptions{}, {expected.kind}, &solo_source);
    ASSERT_EQ(solo.size(), 1u);
    EXPECT_DOUBLE_EQ(solo[0].avg_overhead_seconds,
                     expected.avg_overhead_seconds)
        << AlgorithmName(expected.kind);
    EXPECT_DOUBLE_EQ(solo[0].avg_checkpoint_seconds,
                     expected.avg_checkpoint_seconds);
    EXPECT_DOUBLE_EQ(solo[0].recovery_seconds, expected.recovery_seconds);
    EXPECT_EQ(solo[0].metrics.checkpoints.size(),
              expected.metrics.checkpoints.size());
  }
}

TEST(LockstepSimulatorTest, MaxTicksLimitsRun) {
  ZipfUpdateSource source(PaperishConfig(1000, 0.8, 100));
  SimulationOptions options;
  options.max_ticks = 25;
  auto results = RunSimulation(options, {AlgorithmKind::kNaiveSnapshot},
                               &source);
  EXPECT_EQ(results[0].ticks, 25u);
}

TEST(LockstepSimulatorTest, DeterministicAcrossRuns) {
  for (int round = 0; round < 2; ++round) {
    static double first_overhead = -1.0;
    ZipfUpdateSource source(PaperishConfig(8000, 0.8, 50));
    auto results = RunSimulation(SimulationOptions{},
                                 {AlgorithmKind::kCopyOnUpdate}, &source);
    if (first_overhead < 0) {
      first_overhead = results[0].avg_overhead_seconds;
    } else {
      EXPECT_DOUBLE_EQ(results[0].avg_overhead_seconds, first_overhead);
    }
  }
}

// --- Property sweep: paper-invariants across the update-rate grid -------.

class RateSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RateSweepTest, InvariantsHoldAtEveryRate) {
  const uint64_t rate = GetParam();
  ZipfUpdateSource source(PaperishConfig(rate, 0.8, 80));
  auto results =
      ResultMap(RunSimulation(SimulationOptions{}, AllAlgorithms(), &source));

  const StateLayout layout = StateLayout::Paper();
  for (const auto& [kind, result] : results) {
    const auto& traits = GetTraits(kind);
    for (const auto& record : result.metrics.checkpoints) {
      // No checkpoint ever writes more than the whole state.
      EXPECT_LE(record.objects_written, layout.num_objects());
      // Full-state methods always write everything.
      if (!traits.dirty_only) {
        EXPECT_EQ(record.objects_written, layout.num_objects());
      }
      // Copy-on-update never copies more objects than it writes.
      EXPECT_LE(record.cou_copies, record.objects_written);
      // Eager checkpoints never record copy-on-update copies.
      if (traits.eager_copy && !record.full_flush) {
        EXPECT_EQ(record.cou_copies, 0u);
      }
    }
    // Overhead is nonnegative and recovery includes a full-state restore.
    EXPECT_GE(result.avg_overhead_seconds, 0.0);
    const CostModel cost{HardwareParams::Paper()};
    EXPECT_GE(result.recovery_seconds,
              cost.SequentialReadSeconds(layout.num_objects()) - 1e-9);
  }

  // Naive-Snapshot has the lowest total overhead at extreme rates
  // (recommendation #2 of the paper).
  if (rate >= 128000) {
    const double naive =
        results.at(AlgorithmKind::kNaiveSnapshot).avg_overhead_seconds;
    for (const auto& [kind, result] : results) {
      EXPECT_GE(result.avg_overhead_seconds, naive * 0.999)
          << AlgorithmName(kind);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(UpdatesPerTick, RateSweepTest,
                         ::testing::Values(1000, 8000, 64000, 128000));

// --- Property sweep: skew grid ------------------------------------------.

class SkewSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(SkewSweepTest, CheckpointsStayConsistentUnderSkew) {
  ZipfUpdateSource source(PaperishConfig(16000, GetParam(), 60));
  auto results =
      RunSimulation(SimulationOptions{}, AllAlgorithms(), &source);
  for (const auto& result : results) {
    EXPECT_GE(result.metrics.checkpoints.size(), 1u);
    // Completed checkpoints are ordered and non-overlapping.
    double prev_end = -1.0;
    for (const auto& record : result.metrics.checkpoints) {
      EXPECT_GE(record.start_time, prev_end) << AlgorithmName(result.kind);
      prev_end = record.start_time + record.async_seconds;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Skews, SkewSweepTest,
                         ::testing::Values(0.0, 0.4, 0.8, 0.99));

}  // namespace
}  // namespace tickpoint
