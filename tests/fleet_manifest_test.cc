// Robustness of the fleet-manifest superblock (fleet_manifest.h): every
// way the durable fleet description can be damaged -- torn file, foreign
// bytes, bit rot, a future format version, an assignment that disagrees
// with the directory tree -- must surface a clean Status, never UB and
// never a silent misrecovery. Includes the migration crash window: with
// both the old and the new epoch's manifest on disk (retirement did not
// happen yet), recovery picks the newest; with the newest torn, it falls
// back to the previous epoch.
#include "engine/fleet_manifest.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "engine/fleet.h"
#include "engine/paths.h"
#include "util/crc32.h"
#include "util/io.h"

namespace tickpoint {
namespace {

class FleetManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string name(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    dir_ = (std::filesystem::temp_directory_path() / ("tp_manifest_" + name))
               .string();
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(EnsureDirectory(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  FleetManifest Sample(uint64_t epoch = 0) {
    FleetManifest manifest;
    manifest.epoch = epoch;
    manifest.num_partitions = 3;
    manifest.assignment = {0, 4, 2};  // a migrated topology
    manifest.layout = StateLayout::Small(512, 10);
    manifest.algorithm = AlgorithmKind::kCopyOnUpdatePartialRedo;
    manifest.full_flush_period = 5;
    manifest.logical_sync_every = 2;
    manifest.fsync = false;
    manifest.checksum_state = true;
    manifest.checkpoint_period_ticks = 7;
    manifest.staggered = false;
    manifest.adaptive = true;
    manifest.disk_budget = 3;
    manifest.threaded = false;
    manifest.max_queue_ticks = 17;
    manifest.cut_lead_ticks = 4;
    return manifest;
  }

  std::string Path(uint64_t epoch) {
    return paths::FleetManifestPath(dir_, epoch);
  }

  /// Truncates the file at `path` to `bytes`.
  void Truncate(const std::string& path, uint64_t bytes) {
    std::string contents;
    ASSERT_TRUE(ReadFileToString(path, &contents).ok());
    ASSERT_LT(bytes, contents.size());
    contents.resize(bytes);
    ASSERT_TRUE(WriteStringToFile(path, contents).ok());
  }

  /// Flips one byte of the file at `path`.
  void FlipByte(const std::string& path, uint64_t offset) {
    std::string contents;
    ASSERT_TRUE(ReadFileToString(path, &contents).ok());
    ASSERT_LT(offset, contents.size());
    contents[offset] = static_cast<char>(contents[offset] ^ 0x5A);
    ASSERT_TRUE(WriteStringToFile(path, contents).ok());
  }

  std::string dir_;
};

TEST_F(FleetManifestTest, RoundTripsEveryField) {
  const FleetManifest written = Sample(/*epoch=*/9);
  ASSERT_TRUE(WriteFleetManifest(dir_, written, /*fsync=*/false).ok());
  auto read_or = ReadFleetManifestFile(Path(9));
  ASSERT_TRUE(read_or.ok()) << read_or.status().ToString();
  const FleetManifest& read = read_or.value();
  EXPECT_EQ(read.epoch, 9u);
  EXPECT_EQ(read.num_partitions, 3u);
  EXPECT_EQ(read.assignment, (std::vector<uint32_t>{0, 4, 2}));
  EXPECT_EQ(read.layout.rows, written.layout.rows);
  EXPECT_EQ(read.layout.cols, written.layout.cols);
  EXPECT_EQ(read.layout.cell_size, written.layout.cell_size);
  EXPECT_EQ(read.layout.object_size, written.layout.object_size);
  EXPECT_EQ(read.algorithm, written.algorithm);
  EXPECT_EQ(read.full_flush_period, 5u);
  EXPECT_EQ(read.logical_sync_every, 2u);
  EXPECT_FALSE(read.fsync);
  EXPECT_TRUE(read.checksum_state);
  EXPECT_EQ(read.checkpoint_period_ticks, 7u);
  EXPECT_FALSE(read.staggered);
  EXPECT_TRUE(read.adaptive);
  EXPECT_EQ(read.disk_budget, 3u);
  EXPECT_FALSE(read.threaded);
  EXPECT_EQ(read.max_queue_ticks, 17u);
  EXPECT_EQ(read.cut_lead_ticks, 4u);
  EXPECT_FALSE(read.IsIdentityAssignment());
  EXPECT_EQ(read.PartitionDir(dir_, 1), paths::ShardDir(dir_, 4));
}

TEST_F(FleetManifestTest, RoundTripsReplicationTopology) {
  FleetManifest written = Sample(/*epoch=*/2);
  written.replicate = true;
  written.replica_depth = 48;
  written.replica_peer = {2, 0, 1};  // reverse ring
  ASSERT_TRUE(WriteFleetManifest(dir_, written, /*fsync=*/false).ok());
  auto read_or = ReadFleetManifestFile(Path(2));
  ASSERT_TRUE(read_or.ok()) << read_or.status().ToString();
  EXPECT_TRUE(read_or.value().replicate);
  EXPECT_EQ(read_or.value().replica_depth, 48u);
  EXPECT_EQ(read_or.value().replica_peer, (std::vector<uint32_t>{2, 0, 1}));

  // With replication off, an empty peer vector is still written resolved
  // (the default ring) so the record length is a pure function of K --
  // and it reads back with the flag correctly off.
  ASSERT_TRUE(WriteFleetManifest(dir_, Sample(3), false).ok());
  auto off_or = ReadFleetManifestFile(Path(3));
  ASSERT_TRUE(off_or.ok()) << off_or.status().ToString();
  EXPECT_FALSE(off_or.value().replicate);
  EXPECT_EQ(off_or.value().replica_peer, (std::vector<uint32_t>{1, 2, 0}));
}

TEST_F(FleetManifestTest, ReadsAVersionOneManifestWithReplicationOff) {
  // Backward compatibility: a fleet created before the replication era
  // carries a v1 superblock -- 112-byte header + assignment + CRC, no
  // extension, no peer vector. Synthesize one from a real v2 file by
  // stripping the v2 payload and re-stamping version + CRC at their
  // frozen offsets (8 and end-of-file), then prove it reads back with
  // replication off and every other field intact.
  const FleetManifest sample = Sample();
  ASSERT_TRUE(WriteFleetManifest(dir_, sample, false).ok());
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(Path(0), &bytes).ok());
  const size_t kHeaderSize = 112, kExtSize = 16, kRetentionExtSize = 24;
  const size_t peers_bytes = sample.num_partitions * sizeof(uint32_t);
  // v4 layout: header + ext + assignment + replica peers + one u32 mount
  // length per partition (all zero here) + retention ext + CRC.
  ASSERT_EQ(bytes.size(),
            kHeaderSize + kExtSize + 3 * peers_bytes + kRetentionExtSize + 4);
  std::string v1 = bytes.substr(0, kHeaderSize) +
                   bytes.substr(kHeaderSize + kExtSize, peers_bytes);
  const uint32_t version = 1;
  std::memcpy(&v1[8], &version, sizeof(version));
  const uint32_t crc = Crc32(v1.data(), v1.size());
  v1.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  ASSERT_TRUE(WriteStringToFile(Path(0), v1).ok());

  auto read_or = ReadFleetManifestFile(Path(0));
  ASSERT_TRUE(read_or.ok()) << read_or.status().ToString();
  const FleetManifest& read = read_or.value();
  EXPECT_FALSE(read.replicate);
  EXPECT_TRUE(read.replica_peer.empty());
  EXPECT_EQ(read.num_partitions, 3u);
  EXPECT_EQ(read.assignment, (std::vector<uint32_t>{0, 4, 2}));
  EXPECT_EQ(read.checkpoint_period_ticks, 7u);
  EXPECT_EQ(read.algorithm, sample.algorithm);
}

TEST_F(FleetManifestTest, RoundTripsMountRoots) {
  // The v3 payload: a per-partition mount-point root, the durable record
  // of a rebalance that spawned a slot on another disk. PartitionDir must
  // resolve through it, and partitions without an override stay under the
  // fleet root.
  FleetManifest written = Sample(/*epoch=*/6);
  written.mount_root = {"", "/mnt/fast", ""};
  ASSERT_TRUE(WriteFleetManifest(dir_, written, /*fsync=*/false).ok());
  auto read_or = ReadFleetManifestFile(Path(6));
  ASSERT_TRUE(read_or.ok()) << read_or.status().ToString();
  const FleetManifest& read = read_or.value();
  ASSERT_EQ(read.mount_root.size(), 3u);
  EXPECT_EQ(read.MountRootOf(0), "");
  EXPECT_EQ(read.MountRootOf(1), "/mnt/fast");
  EXPECT_EQ(read.PartitionDir(dir_, 1), paths::ShardDir("/mnt/fast", 4));
  EXPECT_EQ(read.PartitionDir(dir_, 0), paths::ShardDir(dir_, 0));
  EXPECT_EQ(read.PartitionDir(dir_, 2), paths::ShardDir(dir_, 2));
}

TEST_F(FleetManifestTest, ReadsAVersionTwoManifestWithoutMountRoots) {
  // Backward compatibility with the replication-era format: synthesize a
  // v2 file from a real v3 one by stripping the mount-length section and
  // re-stamping version + CRC. It must read back with every partition
  // under the fleet root.
  const FleetManifest sample = Sample();
  ASSERT_TRUE(WriteFleetManifest(dir_, sample, false).ok());
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(Path(0), &bytes).ok());
  const size_t kHeaderSize = 112, kExtSize = 16, kRetentionExtSize = 24;
  const size_t peers_bytes = sample.num_partitions * sizeof(uint32_t);
  ASSERT_EQ(bytes.size(),
            kHeaderSize + kExtSize + 3 * peers_bytes + kRetentionExtSize + 4);
  std::string v2 =
      bytes.substr(0, kHeaderSize + kExtSize + 2 * peers_bytes);
  const uint32_t version = 2;
  std::memcpy(&v2[8], &version, sizeof(version));
  const uint32_t crc = Crc32(v2.data(), v2.size());
  v2.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  ASSERT_TRUE(WriteStringToFile(Path(0), v2).ok());

  auto read_or = ReadFleetManifestFile(Path(0));
  ASSERT_TRUE(read_or.ok()) << read_or.status().ToString();
  EXPECT_TRUE(read_or.value().mount_root.empty());
  EXPECT_EQ(read_or.value().assignment, (std::vector<uint32_t>{0, 4, 2}));
  EXPECT_EQ(read_or.value().PartitionDir(dir_, 1), paths::ShardDir(dir_, 4));
}

TEST_F(FleetManifestTest, ImplausibleMountRootLengthIsCorruption) {
  // Forge a mount length beyond the defensive bound (the write side
  // refuses to produce one) with a fixed-up CRC: the length guard must
  // reject it BEFORE trusting the length word to drive an allocation.
  const FleetManifest sample = Sample();
  ASSERT_TRUE(WriteFleetManifest(dir_, sample, false).ok());
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(Path(0), &bytes).ok());
  const size_t kHeaderSize = 112, kExtSize = 16;
  const size_t peers_bytes = sample.num_partitions * sizeof(uint32_t);
  const size_t first_mount_len = kHeaderSize + kExtSize + 2 * peers_bytes;
  const uint32_t forged = 64 * 1024;  // > kMaxMountRootBytes
  std::memcpy(&bytes[first_mount_len], &forged, sizeof(forged));
  const uint32_t crc = Crc32(bytes.data(), bytes.size() - sizeof(uint32_t));
  std::memcpy(&bytes[bytes.size() - sizeof(uint32_t)], &crc, sizeof(crc));
  ASSERT_TRUE(WriteStringToFile(Path(0), bytes).ok());
  auto read_or = ReadFleetManifestFile(Path(0));
  EXPECT_EQ(read_or.status().code(), StatusCode::kCorruption);
  EXPECT_NE(read_or.status().message().find("mount root"),
            std::string::npos);
}

TEST_F(FleetManifestTest, StructurallyBadReplicationBytesAreCorruption) {
  // The read-side guards: depth 0 with the flag on, and a peer index
  // beyond the partition count, must both be Corruption (they can only
  // come from damaged or forged bytes -- Create/Open validate the knobs
  // before a manifest is ever written).
  FleetManifest manifest = Sample();
  manifest.replicate = true;
  manifest.replica_depth = 0;
  manifest.replica_peer = {1, 2, 0};
  ASSERT_TRUE(WriteFleetManifest(dir_, manifest, false).ok());
  auto read_or = ReadFleetManifestFile(Path(0));
  EXPECT_EQ(read_or.status().code(), StatusCode::kCorruption);
  EXPECT_NE(read_or.status().message().find("replica_depth"),
            std::string::npos);

  manifest.replica_depth = 32;
  manifest.replica_peer = {1, 2, 9};  // beyond num_partitions
  ASSERT_TRUE(WriteFleetManifest(dir_, manifest, false).ok());
  EXPECT_EQ(ReadFleetManifestFile(Path(0)).status().code(),
            StatusCode::kCorruption);
}

TEST_F(FleetManifestTest, MissingManifestIsNotFound) {
  EXPECT_EQ(ReadFleetManifestFile(Path(0)).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ReadNewestFleetManifest(dir_).status().code(),
            StatusCode::kNotFound);
  // A root that does not exist at all is equally NotFound, not UB.
  EXPECT_EQ(ReadNewestFleetManifest(dir_ + "/nope").status().code(),
            StatusCode::kNotFound);
}

TEST_F(FleetManifestTest, TornSuperblockIsCorruption) {
  ASSERT_TRUE(WriteFleetManifest(dir_, Sample(), false).ok());
  // Every prefix is a clean Corruption: inside the header, after the
  // header but inside the assignment, and just short of the CRC.
  for (const uint64_t bytes : {5ull, 30ull, 113ull, 123ull}) {
    SCOPED_TRACE("truncated to " + std::to_string(bytes));
    ASSERT_TRUE(WriteFleetManifest(dir_, Sample(), false).ok());
    Truncate(Path(0), bytes);
    EXPECT_EQ(ReadFleetManifestFile(Path(0)).status().code(),
              StatusCode::kCorruption);
    EXPECT_EQ(ReadNewestFleetManifest(dir_).status().code(),
              StatusCode::kCorruption);
  }
}

TEST_F(FleetManifestTest, WrongMagicIsCorruption) {
  ASSERT_TRUE(WriteFleetManifest(dir_, Sample(), false).ok());
  FlipByte(Path(0), 0);  // inside the magic
  auto read_or = ReadFleetManifestFile(Path(0));
  EXPECT_EQ(read_or.status().code(), StatusCode::kCorruption);
  EXPECT_NE(read_or.status().message().find("magic"), std::string::npos);
}

TEST_F(FleetManifestTest, BitRotFailsTheCrc) {
  ASSERT_TRUE(WriteFleetManifest(dir_, Sample(), false).ok());
  FlipByte(Path(0), 40);  // a layout field: magic/version stay intact
  EXPECT_EQ(ReadFleetManifestFile(Path(0)).status().code(),
            StatusCode::kCorruption);
}

TEST_F(FleetManifestTest, FutureVersionIsARefusalNotCorruption) {
  ASSERT_TRUE(WriteFleetManifest(dir_, Sample(), false).ok());
  // Version lives at offset 8 (after the 8-byte magic). Bump it and fix
  // nothing else: a future version must be refused BEFORE the CRC check,
  // since a newer format may have moved the CRC itself.
  FlipByte(Path(0), 8);
  auto read_or = ReadFleetManifestFile(Path(0));
  EXPECT_EQ(read_or.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(read_or.status().message().find("version"), std::string::npos);
  // And the newest-first scan must NOT silently fall back past it to an
  // older epoch: a half-upgraded fleet is an operator problem, not a
  // recovery fallback.
  ASSERT_TRUE(WriteFleetManifest(dir_, Sample(0), false).ok());
  ASSERT_TRUE(WriteFleetManifest(dir_, Sample(1), false).ok());
  FlipByte(Path(1), 8);  // the NEWEST epoch claims a future version
  EXPECT_EQ(ReadNewestFleetManifest(dir_).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(FleetManifestTest, DuplicateSlotAssignmentIsCorruption) {
  FleetManifest manifest = Sample();
  manifest.assignment = {1, 1, 2};  // two partitions on one shard slot
  ASSERT_TRUE(WriteFleetManifest(dir_, manifest, false).ok());
  auto read_or = ReadFleetManifestFile(Path(0));
  EXPECT_EQ(read_or.status().code(), StatusCode::kCorruption);
  EXPECT_NE(read_or.status().message().find("two partitions"),
            std::string::npos);
}

TEST_F(FleetManifestTest, MigrationCrashWindowPicksTheNewestEpoch) {
  // The commit protocol writes fleet-manifest-<E+1> and only then retires
  // fleet-manifest-<E>; a crash in between leaves both. Recovery must act
  // under E+1.
  FleetManifest old_epoch = Sample(4);
  FleetManifest new_epoch = Sample(5);
  new_epoch.assignment = {0, 4, 7};  // the migration epoch 5 committed
  ASSERT_TRUE(WriteFleetManifest(dir_, old_epoch, false).ok());
  ASSERT_TRUE(WriteFleetManifest(dir_, new_epoch, false).ok());
  auto read_or = ReadNewestFleetManifest(dir_);
  ASSERT_TRUE(read_or.ok()) << read_or.status().ToString();
  EXPECT_EQ(read_or.value().epoch, 5u);
  EXPECT_EQ(read_or.value().assignment, (std::vector<uint32_t>{0, 4, 7}));
  EXPECT_EQ(ListFleetManifestEpochs(dir_),
            (std::vector<uint64_t>{5, 4}));
}

TEST_F(FleetManifestTest, TornNewestEpochFallsBackToThePrevious) {
  // The other half of the window: the new epoch's file is damaged (it can
  // only be a real corruption -- the tmp+rename publish never leaves a
  // torn file under the committed name). The previous epoch still
  // describes a recoverable fleet; use it rather than refusing.
  ASSERT_TRUE(WriteFleetManifest(dir_, Sample(4), false).ok());
  ASSERT_TRUE(WriteFleetManifest(dir_, Sample(5), false).ok());
  Truncate(Path(5), 60);
  auto read_or = ReadNewestFleetManifest(dir_);
  ASSERT_TRUE(read_or.ok()) << read_or.status().ToString();
  EXPECT_EQ(read_or.value().epoch, 4u);
  // With EVERY epoch torn, the newest file's own error surfaces.
  Truncate(Path(4), 60);
  EXPECT_EQ(ReadNewestFleetManifest(dir_).status().code(),
            StatusCode::kCorruption);
}

TEST_F(FleetManifestTest, RetireSweepsOnlyOlderEpochs) {
  ASSERT_TRUE(WriteFleetManifest(dir_, Sample(1), false).ok());
  ASSERT_TRUE(WriteFleetManifest(dir_, Sample(3), false).ok());
  ASSERT_TRUE(WriteFleetManifest(dir_, Sample(7), false).ok());
  ASSERT_TRUE(RetireFleetManifestsBefore(dir_, 7).ok());
  EXPECT_EQ(ListFleetManifestEpochs(dir_), (std::vector<uint64_t>{7}));
}

TEST_F(FleetManifestTest, RetireSweepsOrphanedTempFiles) {
  // A crash inside WriteFleetManifest (before its rename) orphans the
  // .tmp; the next retirement must sweep it, while unrelated files
  // survive.
  ASSERT_TRUE(WriteFleetManifest(dir_, Sample(5), false).ok());
  ASSERT_TRUE(
      WriteStringToFile(Path(4) + ".tmp", "torn half-written manifest")
          .ok());
  ASSERT_TRUE(WriteStringToFile(dir_ + "/unrelated.tmp", "keep me").ok());
  ASSERT_TRUE(RetireFleetManifestsBefore(dir_, 5).ok());
  EXPECT_FALSE(FileExists(Path(4) + ".tmp"));
  EXPECT_TRUE(FileExists(dir_ + "/unrelated.tmp"));
  EXPECT_EQ(ListFleetManifestEpochs(dir_), (std::vector<uint64_t>{5}));
}

TEST_F(FleetManifestTest, ManifestDirectoryMismatchIsCorruption) {
  // The superblock says partition 1 lives in shard-4; nothing under the
  // root does. Fleet recovery must report the disagreement instead of
  // "recovering" a zeroed partition from a directory that is not there.
  ASSERT_TRUE(WriteFleetManifest(dir_, Sample(), false).ok());
  ASSERT_TRUE(EnsureDirectory(paths::ShardDir(dir_, 0)).ok());
  ASSERT_TRUE(EnsureDirectory(paths::ShardDir(dir_, 2)).ok());
  auto recovered_or = Fleet::Recover(dir_);
  ASSERT_FALSE(recovered_or.ok());
  EXPECT_EQ(recovered_or.status().code(), StatusCode::kCorruption);
  EXPECT_NE(recovered_or.status().message().find("shard-4"),
            std::string::npos);
}

TEST_F(FleetManifestTest, RecoveryRefusesAFutureVersionManifest) {
  // Regression: fleet recovery must not treat a future-version manifest
  // (FailedPrecondition from the read) like a missing one -- a newer
  // binary may have migrated partitions, and guessing a topology would
  // silently resurrect pre-migration state. Both recovery entry points
  // must surface the refusal.
  ShardedEngineConfig config;
  config.shard.layout = StateLayout::Small(256, 10);
  config.shard.fsync = false;
  config.num_shards = 2;
  {
    auto fleet_or = Fleet::Create(dir_, config);
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    ASSERT_TRUE(fleet_or.value()->Shutdown().ok());
  }
  FlipByte(Path(0), 8);  // version byte: now claims a future format
  EXPECT_EQ(Fleet::Recover(dir_).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Fleet::RecoverToCut(dir_).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(FleetManifestTest, FleetOpenSurfacesManifestDamageCleanly) {
  // End-to-end: a real fleet whose superblock is then torn. Open must
  // fail with Corruption -- not guess a topology, not crash.
  ShardedEngineConfig config;
  config.shard.layout = StateLayout::Small(256, 10);
  config.shard.fsync = false;
  config.num_shards = 2;
  {
    auto fleet_or = Fleet::Create(dir_, config);
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    ASSERT_TRUE(fleet_or.value()->Shutdown().ok());
  }
  Truncate(Path(0), 50);
  EXPECT_EQ(Fleet::Open(dir_).status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace tickpoint
