// Point-in-time recovery (ROADMAP item 4): checkpoint generations,
// logical-log history retention, and bounded compaction. Four layers under
// test:
//
//   1. PlanCompaction -- the pure retention policy over a HistoryIndex;
//   2. the ShardHistory crash-atomic protocol -- archival, compaction, and
//      truncation swept with a one-shot injected crash after every durable
//      step, each followed by a writable reopen (orphan sweep) and a retry
//      that must converge on the no-crash outcome;
//   3. the v4 fleet manifest retention extension (round-trip, v3 compat,
//      forged-invalid rejection);
//   4. Fleet::RecoverToTick / RestorableWindow end to end -- every tick in
//      the advertised window restores to a state byte-equal to the
//      deterministic reference (and digest-equal to the golden battle for
//      the game workload), under both IO backends, across resume epochs,
//      and degrading to latest recovery when a shard's index is torn.
#include "engine/history.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "engine/compactor.h"
#include "engine/fleet.h"
#include "engine/fleet_manifest.h"
#include "engine/logical_log.h"
#include "engine/mutator.h"
#include "engine/paths.h"
#include "engine/recovery.h"
#include "engine/sharded_engine.h"
#include "fleet_test_util.h"
#include "game/shard_adapter.h"
#include "util/crc32.h"
#include "util/io.h"

namespace tickpoint {
namespace {

// ---- 1. PlanCompaction: pure policy ----

HistoryIndex::Generation Gen(uint64_t seq, uint64_t tick, uint64_t bytes) {
  return {seq, tick, bytes};
}
HistoryIndex::Segment Seg(uint64_t id, uint64_t first, uint64_t last,
                          uint64_t bytes) {
  return {id, first, last, bytes};
}

TEST(CompactorPlanTest, NoOpUnderBudget) {
  HistoryIndex index;
  index.generations = {Gen(0, 0, 100), Gen(1, 5, 100)};
  index.segments = {Seg(0, 0, 4, 50)};
  RetentionPolicy policy;
  policy.enabled = true;
  policy.max_generations = 4;
  const CompactionPlan plan = PlanCompaction(index, policy);
  EXPECT_TRUE(plan.NoOp());
  EXPECT_EQ(plan.window_base, 0u);
}

TEST(CompactorPlanTest, DropsOldestBeyondMaxGenerations) {
  HistoryIndex index;
  index.generations = {Gen(0, 0, 100), Gen(1, 5, 100), Gen(2, 10, 100),
                       Gen(3, 15, 100)};
  // Segment wholly below the new base, one straddling it, one above.
  index.segments = {Seg(0, 0, 4, 50), Seg(1, 5, 12, 50), Seg(2, 13, 20, 50)};
  RetentionPolicy policy;
  policy.enabled = true;
  policy.max_generations = 2;
  const CompactionPlan plan = PlanCompaction(index, policy);
  EXPECT_EQ(plan.window_base, 10u);  // oldest survivor is C=10
  EXPECT_EQ(plan.drop_generations, (std::vector<uint64_t>{0, 1}));
  EXPECT_EQ(plan.drop_segments, (std::vector<uint64_t>{0}));
  EXPECT_EQ(plan.rewrite_segments, (std::vector<uint64_t>{1}));
}

TEST(CompactorPlanTest, TickBoundDropsTrailersButNeverTheNewest) {
  HistoryIndex index;
  index.generations = {Gen(0, 0, 100), Gen(1, 40, 100), Gen(2, 100, 100)};
  RetentionPolicy policy;
  policy.enabled = true;
  policy.max_generations = 10;  // count alone would keep everything
  policy.max_retained_ticks = 30;
  const CompactionPlan plan = PlanCompaction(index, policy);
  // floor = 100 - 30 = 70: C=0 and C=40 trail it, C=100 survives.
  EXPECT_EQ(plan.drop_generations, (std::vector<uint64_t>{0, 1}));
  EXPECT_EQ(plan.window_base, 100u);

  // Even a bound of zero ticks never drops the newest generation.
  policy.max_retained_ticks = 1;
  const CompactionPlan aggressive = PlanCompaction(index, policy);
  EXPECT_EQ(aggressive.drop_generations, (std::vector<uint64_t>{0, 1}));
}

// ---- 2. ShardHistory protocol: crash-at-every-step sweeps ----

class HistoryProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string name(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    dir_ = (std::filesystem::temp_directory_path() / ("tp_history_" + name))
               .string();
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(EnsureDirectory(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  StateLayout layout_ = StateLayout::Small(64, 4);

  /// A fresh shard-like directory for one sweep iteration.
  std::string FreshShardDir(int i) {
    const std::string shard = dir_ + "/case-" + std::to_string(i);
    std::filesystem::remove_all(shard);
    EXPECT_TRUE(EnsureDirectory(shard).ok());
    return shard;
  }

  StateTable MakeState(uint32_t salt) {
    StateTable table(layout_);
    for (uint32_t c = 0; c < 16; ++c) {
      table.WriteCell(c, static_cast<int32_t>(salt * 31 + c));
    }
    return table;
  }

  /// Writes a live logical.log covering ticks [first, last].
  void WriteLiveLog(const std::string& shard_dir, uint64_t first,
                    uint64_t last) {
    auto log_or = LogicalLog::Create(paths::LogicalLogPath(shard_dir), 1);
    ASSERT_TRUE(log_or.ok()) << log_or.status().ToString();
    for (uint64_t t = first; t <= last; ++t) {
      const CellUpdate update{static_cast<uint32_t>(t % 16),
                              static_cast<int32_t>(t * 7)};
      ASSERT_TRUE(log_or.value()->AppendTick(t, {&update, 1}).ok());
    }
    ASSERT_TRUE(log_or.value()->Close().ok());
  }

  StatusOr<std::unique_ptr<ShardHistory>> OpenHistory(
      const std::string& shard_dir, uint64_t max_generations) {
    RetentionPolicy policy;
    policy.enabled = true;
    policy.max_generations = max_generations;
    return ShardHistory::Open(shard_dir, layout_, policy, /*fsync=*/false);
  }

  /// Full referential-integrity check: the index reads back clean, every
  /// referenced payload file exists and validates, and (after a writable
  /// reopen swept orphans) nothing unreferenced is left behind.
  void VerifyIntegrity(const std::string& shard_dir) {
    auto index_or = ShardHistory::ReadIndex(shard_dir);
    ASSERT_TRUE(index_or.ok()) << index_or.status().ToString();
    const HistoryIndex& index = index_or.value();
    for (const auto& gen : index.generations) {
      StateTable table(layout_);
      auto tick_or =
          ShardHistory::ReadGenerationImage(shard_dir, gen.seq, &table);
      ASSERT_TRUE(tick_or.ok())
          << "gen " << gen.seq << ": " << tick_or.status().ToString();
      EXPECT_EQ(tick_or.value(), gen.consistent_tick);
    }
    const std::string history_dir = paths::HistoryDir(shard_dir);
    for (const auto& seg : index.segments) {
      auto range_or = LogicalLog::ScanRange(
          history_dir + "/" + paths::HistorySegmentFileName(seg.id));
      ASSERT_TRUE(range_or.ok())
          << "seg " << seg.id << ": " << range_or.status().ToString();
      EXPECT_EQ(range_or.value().first_tick, seg.first_tick);
      EXPECT_EQ(range_or.value().last_tick, seg.last_tick);
    }
    for (const auto& entry :
         std::filesystem::directory_iterator(history_dir)) {
      const std::string name = entry.path().filename().string();
      if (name == "index.bin") continue;
      uint64_t id = 0;
      bool referenced = false;
      if (paths::ParseHistoryGenerationFileName(name, &id)) {
        for (const auto& gen : index.generations) {
          referenced |= gen.seq == id;
        }
      } else if (paths::ParseHistorySegmentFileName(name, &id)) {
        for (const auto& seg : index.segments) {
          referenced |= seg.id == id;
        }
      }
      EXPECT_TRUE(referenced) << "unreferenced file survived the sweep: "
                              << name;
    }
  }

  std::string dir_;
};

TEST_F(HistoryProtocolTest, GenerationsRoundTripThroughTheIndex) {
  const std::string shard = FreshShardDir(0);
  auto history_or = OpenHistory(shard, 4);
  ASSERT_TRUE(history_or.ok()) << history_or.status().ToString();
  ShardHistory& history = *history_or.value();
  const StateTable a = MakeState(1), b = MakeState(2);
  ASSERT_TRUE(history.RecordGeneration(a, 5).ok());
  ASSERT_TRUE(history.RecordGeneration(b, 10).ok());
  // Re-recording an already-archived consistent tick is an idempotent
  // no-op (the crash-retry path depends on it).
  ASSERT_TRUE(history.RecordGeneration(b, 10).ok());
  ASSERT_EQ(history.index().generations.size(), 2u);

  auto index_or = ShardHistory::ReadIndex(shard);
  ASSERT_TRUE(index_or.ok());
  ASSERT_EQ(index_or->generations.size(), 2u);
  StateTable readback(layout_);
  auto tick_or = ShardHistory::ReadGenerationImage(
      shard, index_or->generations[1].seq, &readback);
  ASSERT_TRUE(tick_or.ok()) << tick_or.status().ToString();
  EXPECT_EQ(tick_or.value(), 10u);
  EXPECT_TRUE(readback.ContentEquals(b));
  VerifyIntegrity(shard);
}

TEST_F(HistoryProtocolTest, RecordGenerationCrashSweep) {
  const HistoryCrashPoint points[] = {HistoryCrashPoint::kAfterGenerationFile,
                                      HistoryCrashPoint::kAfterIndexTmp,
                                      HistoryCrashPoint::kAfterIndexRename};
  int i = 0;
  for (const HistoryCrashPoint point : points) {
    SCOPED_TRACE(static_cast<int>(point));
    const std::string shard = FreshShardDir(i++);
    const StateTable a = MakeState(1), b = MakeState(2);
    {
      auto history_or = OpenHistory(shard, 4);
      ASSERT_TRUE(history_or.ok());
      ASSERT_TRUE(history_or.value()->RecordGeneration(a, 5).ok());
      history_or.value()->SetCrashPointForTest(point);
      EXPECT_EQ(history_or.value()->RecordGeneration(b, 10).code(),
                StatusCode::kInternal);
    }
    // The index on disk is intact (old or new); a writable reopen sweeps
    // whatever the interrupted step left and the retry converges.
    auto reopened_or = OpenHistory(shard, 4);
    ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
    ASSERT_TRUE(reopened_or.value()->RecordGeneration(b, 10).ok());
    ASSERT_EQ(reopened_or.value()->index().generations.size(), 2u);
    EXPECT_EQ(reopened_or.value()->index().generations[1].consistent_tick,
              10u);
    StateTable readback(layout_);
    auto tick_or = ShardHistory::ReadGenerationImage(
        shard, reopened_or.value()->index().generations[1].seq, &readback);
    ASSERT_TRUE(tick_or.ok());
    EXPECT_TRUE(readback.ContentEquals(b));
    VerifyIntegrity(shard);
  }
}

TEST_F(HistoryProtocolTest, ArchiveLiveLogCrashSweep) {
  const HistoryCrashPoint points[] = {HistoryCrashPoint::kAfterSegmentFile,
                                      HistoryCrashPoint::kAfterIndexTmp,
                                      HistoryCrashPoint::kAfterIndexRename};
  int i = 0;
  for (const HistoryCrashPoint point : points) {
    SCOPED_TRACE(static_cast<int>(point));
    const std::string shard = FreshShardDir(i++);
    WriteLiveLog(shard, 5, 9);
    const std::string live = paths::LogicalLogPath(shard);
    {
      auto history_or = OpenHistory(shard, 4);
      ASSERT_TRUE(history_or.ok());
      ASSERT_TRUE(history_or.value()->RecordGeneration(MakeState(1), 5).ok());
      history_or.value()->SetCrashPointForTest(point);
      EXPECT_EQ(history_or.value()->ArchiveLiveLog(live, 9).code(),
                StatusCode::kInternal);
    }
    auto reopened_or = OpenHistory(shard, 4);
    ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
    // Idempotent retry: either the crashed attempt committed the segment
    // (re-run archives nothing) or it did not (re-run archives [5, 9]).
    ASSERT_TRUE(reopened_or.value()->ArchiveLiveLog(live, 9).ok());
    ASSERT_EQ(reopened_or.value()->index().segments.size(), 1u);
    EXPECT_EQ(reopened_or.value()->index().segments[0].first_tick, 5u);
    EXPECT_EQ(reopened_or.value()->index().segments[0].last_tick, 9u);
    VerifyIntegrity(shard);
  }
}

TEST_F(HistoryProtocolTest, CompactionCrashSweep) {
  const HistoryCrashPoint points[] = {
      HistoryCrashPoint::kAfterRewriteSegmentFile,
      HistoryCrashPoint::kAfterIndexTmp, HistoryCrashPoint::kAfterIndexRename,
      HistoryCrashPoint::kBeforeCompactionDeletes};
  int i = 0;
  for (const HistoryCrashPoint point : points) {
    SCOPED_TRACE(static_cast<int>(point));
    const std::string shard = FreshShardDir(i++);
    WriteLiveLog(shard, 0, 14);
    const std::string live = paths::LogicalLogPath(shard);
    {
      // Build four generations and two segments under a policy loose
      // enough that nothing compacts during setup.
      auto history_or = OpenHistory(shard, 4);
      ASSERT_TRUE(history_or.ok());
      ShardHistory& history = *history_or.value();
      ASSERT_TRUE(history.RecordGeneration(MakeState(0), 0).ok());
      ASSERT_TRUE(history.ArchiveLiveLog(live, 4).ok());
      ASSERT_TRUE(history.RecordGeneration(MakeState(1), 5).ok());
      ASSERT_TRUE(history.ArchiveLiveLog(live, 12).ok());
      ASSERT_TRUE(history.RecordGeneration(MakeState(2), 10).ok());
      ASSERT_TRUE(history.RecordGeneration(MakeState(3), 15).ok());
      ASSERT_EQ(history.index().generations.size(), 4u);
      ASSERT_EQ(history.index().segments.size(), 2u);
    }
    // Tighten to two generations: base becomes C=10, segment [0,4] must
    // drop, segment [5,12] must be rewritten to [10,12] under a new id.
    auto tight_or = OpenHistory(shard, 2);
    ASSERT_TRUE(tight_or.ok());
    tight_or.value()->SetCrashPointForTest(point);
    EXPECT_EQ(tight_or.value()->Compact(nullptr).code(),
              StatusCode::kInternal);

    auto reopened_or = OpenHistory(shard, 2);
    ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
    ASSERT_TRUE(reopened_or.value()->Compact(nullptr).ok());
    const HistoryIndex& index = reopened_or.value()->index();
    ASSERT_EQ(index.generations.size(), 2u);
    EXPECT_EQ(index.generations[0].consistent_tick, 10u);
    EXPECT_EQ(index.generations[1].consistent_tick, 15u);
    ASSERT_EQ(index.segments.size(), 1u);
    EXPECT_EQ(index.segments[0].first_tick, 10u);
    EXPECT_EQ(index.segments[0].last_tick, 12u);
    VerifyIntegrity(shard);
    // The post-compaction window is exactly as advertised: base C=10
    // serves tick 9, and segment + live coverage reaches tick 14.
    auto window_or = ShardHistory::ComputeWindow(shard, index);
    ASSERT_TRUE(window_or.ok());
    ASSERT_TRUE(window_or->any);
    EXPECT_EQ(window_or->low_tick, 9u);
    EXPECT_EQ(window_or->high_tick, 14u);
  }
}

TEST_F(HistoryProtocolTest, TruncateAboveCrashSweep) {
  const HistoryCrashPoint points[] = {
      HistoryCrashPoint::kAfterRewriteSegmentFile,
      HistoryCrashPoint::kAfterIndexTmp, HistoryCrashPoint::kAfterIndexRename,
      HistoryCrashPoint::kBeforeCompactionDeletes};
  int i = 0;
  for (const HistoryCrashPoint point : points) {
    SCOPED_TRACE(static_cast<int>(point));
    const std::string shard = FreshShardDir(i++);
    WriteLiveLog(shard, 0, 9);
    const std::string live = paths::LogicalLogPath(shard);
    {
      auto history_or = OpenHistory(shard, 8);
      ASSERT_TRUE(history_or.ok());
      ShardHistory& history = *history_or.value();
      ASSERT_TRUE(history.RecordGeneration(MakeState(0), 0).ok());
      ASSERT_TRUE(history.RecordGeneration(MakeState(1), 5).ok());
      ASSERT_TRUE(history.ArchiveLiveLog(live, 9).ok());
      ASSERT_TRUE(history.RecordGeneration(MakeState(2), 10).ok());
    }
    // Resume at tick 6: generation C=10 is the divergent future, segment
    // [0,9] must be trimmed back to [0,5].
    auto history_or = OpenHistory(shard, 8);
    ASSERT_TRUE(history_or.ok());
    history_or.value()->SetCrashPointForTest(point);
    EXPECT_EQ(history_or.value()->TruncateAbove(6).code(),
              StatusCode::kInternal);

    auto reopened_or = OpenHistory(shard, 8);
    ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
    ASSERT_TRUE(reopened_or.value()->TruncateAbove(6).ok());
    const HistoryIndex& index = reopened_or.value()->index();
    ASSERT_EQ(index.generations.size(), 2u);
    EXPECT_EQ(index.generations[1].consistent_tick, 5u);
    ASSERT_EQ(index.segments.size(), 1u);
    EXPECT_EQ(index.segments[0].first_tick, 0u);
    EXPECT_EQ(index.segments[0].last_tick, 5u);
    VerifyIntegrity(shard);
  }
}

TEST_F(HistoryProtocolTest, TornIndexIsCorruptionForReadersResetForWriters) {
  const std::string shard = FreshShardDir(0);
  {
    auto history_or = OpenHistory(shard, 4);
    ASSERT_TRUE(history_or.ok());
    ASSERT_TRUE(history_or.value()->RecordGeneration(MakeState(1), 5).ok());
  }
  const std::string index_path = paths::HistoryIndexPath(shard);
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(index_path, &bytes).ok());
  bytes[bytes.size() / 2] ^= 0x40;
  ASSERT_TRUE(WriteStringToFile(index_path, bytes).ok());

  // Readers surface Corruption (point-in-time recovery then falls back).
  EXPECT_EQ(ShardHistory::ReadIndex(shard).status().code(),
            StatusCode::kCorruption);
  // The writer-side open resets the history (the live stores stay the
  // authority) and starts a fresh, usable index.
  auto reopened_or = OpenHistory(shard, 4);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
  EXPECT_TRUE(reopened_or.value()->index().generations.empty());
  ASSERT_TRUE(reopened_or.value()->RecordGeneration(MakeState(2), 7).ok());
  VerifyIntegrity(shard);
}

// ---- 3. The v4 manifest retention extension ----

class HistoryManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string name(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    dir_ = (std::filesystem::temp_directory_path() / ("tp_histman_" + name))
               .string();
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(EnsureDirectory(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  FleetManifest Sample() {
    FleetManifest manifest;
    manifest.num_partitions = 2;
    manifest.assignment = {0, 1};
    manifest.layout = StateLayout::Small(256, 10);
    manifest.algorithm = AlgorithmKind::kCopyOnUpdate;
    return manifest;
  }

  std::string dir_;
};

TEST_F(HistoryManifestTest, RetentionRoundTripsThroughTheManifest) {
  FleetManifest written = Sample();
  written.retention.enabled = true;
  written.retention.max_generations = 5;
  written.retention.max_retained_ticks = 40;
  ASSERT_TRUE(WriteFleetManifest(dir_, written, /*fsync=*/false).ok());
  auto read_or = ReadFleetManifestFile(paths::FleetManifestPath(dir_, 0));
  ASSERT_TRUE(read_or.ok()) << read_or.status().ToString();
  EXPECT_EQ(read_or->retention, written.retention);
}

TEST_F(HistoryManifestTest, ReadsAVersionThreeManifestWithRetentionOff) {
  // Backward compatibility: a v3 superblock (pre-retention era) is a v4
  // one minus the trailing 24-byte extension. Synthesize one by stripping
  // the extension and re-stamping version + CRC: it must read back with
  // retention off and every other field intact.
  const FleetManifest sample = Sample();
  ASSERT_TRUE(WriteFleetManifest(dir_, sample, /*fsync=*/false).ok());
  const std::string path = paths::FleetManifestPath(dir_, 0);
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(path, &bytes).ok());
  constexpr size_t kRetentionExtSize = 24;
  ASSERT_GT(bytes.size(), kRetentionExtSize + 4);
  std::string v3 = bytes.substr(0, bytes.size() - kRetentionExtSize - 4);
  const uint32_t version = 3;
  std::memcpy(&v3[8], &version, sizeof(version));
  const uint32_t crc = Crc32(v3.data(), v3.size());
  v3.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  ASSERT_TRUE(WriteStringToFile(path, v3).ok());

  auto read_or = ReadFleetManifestFile(path);
  ASSERT_TRUE(read_or.ok()) << read_or.status().ToString();
  EXPECT_EQ(read_or->retention, RetentionPolicy{});
  EXPECT_FALSE(read_or->retention.enabled);
  EXPECT_EQ(read_or->num_partitions, 2u);
  EXPECT_EQ(read_or->assignment, (std::vector<uint32_t>{0, 1}));
}

TEST_F(HistoryManifestTest, ForgedInvalidRetentionIsCorruption) {
  // retention enabled with max_generations == 0 cannot be produced by the
  // writer; a forged file carrying it (CRC fixed up) must be rejected by
  // validation, not acted on.
  ASSERT_TRUE(WriteFleetManifest(dir_, Sample(), /*fsync=*/false).ok());
  const std::string path = paths::FleetManifestPath(dir_, 0);
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(path, &bytes).ok());
  const size_t ext_off = bytes.size() - 4 - 24;
  const uint64_t zero_generations = 0;
  const uint8_t enabled = 1;
  std::memcpy(&bytes[ext_off], &zero_generations, sizeof(zero_generations));
  std::memcpy(&bytes[ext_off + 16], &enabled, sizeof(enabled));
  bytes.resize(bytes.size() - 4);
  const uint32_t crc = Crc32(bytes.data(), bytes.size());
  bytes.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  ASSERT_TRUE(WriteStringToFile(path, bytes).ok());
  EXPECT_EQ(ReadFleetManifestFile(path).status().code(),
            StatusCode::kCorruption);
}

// ---- 4. Fleet-level point-in-time recovery ----

StateLayout ShardLayout() { return StateLayout::Small(256, 10); }

constexpr uint64_t kUpdatesPerTick = 60;

class FleetPitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string name(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    for (auto& c : name) {
      if (c == '/') c = '_';
    }
    dir_ = (std::filesystem::temp_directory_path() / ("tp_pit_" + name))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  ShardedEngineConfig Config(uint32_t num_shards,
                             IoBackendKind backend = IoBackendKind::kSync) {
    ShardedEngineConfig config;
    config.shard.layout = ShardLayout();
    config.shard.algorithm = AlgorithmKind::kCopyOnUpdate;
    config.shard.dir = dir_;
    config.shard.fsync = false;  // simulated crashes: page cache is durable
    config.shard.full_flush_period = 3;
    config.shard.io_backend = backend;
    config.shard.retention.enabled = true;
    config.shard.retention.max_generations = 3;
    config.num_shards = num_shards;
    config.checkpoint_period_ticks = 5;
    config.threaded = true;
    return config;
  }

  /// Drives `ticks` fleet ticks of the deterministic workload, with every
  /// value offset by `salt` (a nonzero salt makes a resumed timeline
  /// observably diverge from the original -- the workload is otherwise a
  /// pure function of the tick). Appends the post-tick fleet state to
  /// `per_tick` for later byte-comparison against restores.
  void RunTicks(ShardedEngine* engine, uint64_t ticks, int32_t salt,
                std::vector<StateTable>* reference,
                std::vector<std::vector<StateTable>>* per_tick) {
    const uint64_t num_cells = ShardLayout().num_cells();
    if (reference->empty()) {
      for (uint32_t i = 0; i < engine->num_shards(); ++i) {
        reference->emplace_back(ShardLayout());
      }
    }
    for (uint64_t t = 0; t < ticks; ++t) {
      const uint64_t tick = engine->current_tick();
      engine->BeginTick();
      for (uint32_t shard = 0; shard < engine->num_shards(); ++shard) {
        for (uint64_t i = 0; i < kUpdatesPerTick; ++i) {
          const uint32_t cell = WorkloadCell(shard, tick, i, num_cells);
          const int32_t value = WorkloadValue(tick, cell, i) + salt;
          engine->ApplyUpdate(shard, cell, value);
          (*reference)[shard].WriteCell(cell, value);
        }
      }
      ASSERT_TRUE(engine->EndTick().ok());
      if (per_tick != nullptr) {
        if (per_tick->size() <= tick) per_tick->resize(tick + 1);
        (*per_tick)[tick] = SnapshotTables(*reference);
      }
    }
  }

  /// Restores the fleet to `tick` and byte-compares every shard against
  /// the recorded post-tick snapshot.
  void ExpectRestoreMatches(
      uint64_t tick, const std::vector<std::vector<StateTable>>& per_tick) {
    SCOPED_TRACE("restore to tick " + std::to_string(tick));
    auto restored_or = Fleet::RecoverToTick(dir_, tick);
    ASSERT_TRUE(restored_or.ok()) << restored_or.status().ToString();
    ASSERT_TRUE(restored_or->at_requested_tick())
        << "tick " << tick << " fell back to latest recovery";
    EXPECT_EQ(restored_or->resume_tick(), tick + 1);
    EXPECT_EQ(restored_or->target_tick(), tick);
    ASSERT_LT(tick, per_tick.size());
    for (uint32_t i = 0; i < restored_or->tables().size(); ++i) {
      EXPECT_TRUE(restored_or->tables()[i].ContentEquals(per_tick[tick][i]))
          << "shard " << i << " at tick " << tick;
    }
  }

  std::string dir_;
};

class FleetPitBackendTest
    : public FleetPitTest,
      public ::testing::WithParamInterface<IoBackendKind> {};

TEST_P(FleetPitBackendTest, EveryTickInTheWindowRestoresExactly) {
  const auto config = Config(3, GetParam());
  constexpr uint64_t kTicks = 23;
  std::vector<StateTable> reference;
  std::vector<std::vector<StateTable>> per_tick;
  {
    auto fleet_or = Fleet::Create(dir_, config);
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    RunTicks(&fleet_or.value()->engine(), kTicks, 0, &reference, &per_tick);
    ASSERT_TRUE(fleet_or.value()->SimulateCrash().ok());
  }

  auto window_or = Fleet::RestorableWindow(dir_);
  ASSERT_TRUE(window_or.ok()) << window_or.status().ToString();
  ASSERT_TRUE(window_or->any);
  EXPECT_EQ(window_or->high_tick, kTicks - 1);
  // Enough checkpoints ran that compaction dropped the oldest
  // generations: the window genuinely starts after tick zero, so the
  // sweep exercises both boundaries non-trivially.
  EXPECT_GT(window_or->low_tick, 0u);

  for (uint64_t tick = window_or->low_tick; tick <= window_or->high_tick;
       ++tick) {
    ExpectRestoreMatches(tick, per_tick);
  }

  // Beyond the newest tick no source can reach the target: the fleet
  // degrades to latest recovery, never half-applies.
  {
    auto fallback_or = Fleet::RecoverToTick(dir_, window_or->high_tick + 10);
    ASSERT_TRUE(fallback_or.ok()) << fallback_or.status().ToString();
    EXPECT_FALSE(fallback_or->at_requested_tick());
    for (uint32_t i = 0; i < 3; ++i) {
      EXPECT_TRUE(fallback_or->tables()[i].ContentEquals(reference[i]))
          << "shard " << i << " (fallback must equal latest recovery)";
    }
  }
  // Below the window the guarantee lapses but the outcome must still be
  // sound: either an exact landing (the live stores happened to retain
  // enough -- the window is a floor, not a ceiling) or a clean fleet-wide
  // fallback to latest.
  {
    const uint64_t below = window_or->low_tick - 1;
    auto below_or = Fleet::RecoverToTick(dir_, below);
    ASSERT_TRUE(below_or.ok()) << below_or.status().ToString();
    for (uint32_t i = 0; i < 3; ++i) {
      const StateTable& expected = below_or->at_requested_tick()
                                       ? per_tick[below][i]
                                       : reference[i];
      EXPECT_TRUE(below_or->tables()[i].ContentEquals(expected))
          << "shard " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothIoBackends, FleetPitBackendTest,
                         ::testing::Values(IoBackendKind::kSync,
                                           IoBackendKind::kAsync),
                         [](const auto& info) {
                           return info.param == IoBackendKind::kSync
                                      ? "sync"
                                      : "async";
                         });

TEST_F(FleetPitTest, WindowHoldsAtEveryCrashTick) {
  // Crash-at-every-phase sweep: whatever tick the fleet dies at -- before
  // the first periodic checkpoint, right after one, mid-period, after
  // compaction kicked in -- every tick the window advertises restores
  // exactly.
  for (const uint64_t crash_ticks : {2u, 6u, 11u, 17u}) {
    SCOPED_TRACE("crash after " + std::to_string(crash_ticks) + " ticks");
    std::filesystem::remove_all(dir_);
    const auto config = Config(2);
    std::vector<StateTable> reference;
    std::vector<std::vector<StateTable>> per_tick;
    {
      auto fleet_or = Fleet::Create(dir_, config);
      ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
      RunTicks(&fleet_or.value()->engine(), crash_ticks, 0, &reference,
               &per_tick);
      ASSERT_TRUE(fleet_or.value()->SimulateCrash().ok());
    }
    auto window_or = Fleet::RestorableWindow(dir_);
    ASSERT_TRUE(window_or.ok()) << window_or.status().ToString();
    ASSERT_TRUE(window_or->any);
    EXPECT_EQ(window_or->high_tick, crash_ticks - 1);
    for (uint64_t tick = window_or->low_tick; tick <= window_or->high_tick;
         ++tick) {
      ExpectRestoreMatches(tick, per_tick);
    }
  }
}

TEST_F(FleetPitTest, ResumeStartsANewEpochAndRetiresTheOldFuture) {
  const auto config = Config(2);
  constexpr uint64_t kFirstRun = 18;
  constexpr uint64_t kSecondRun = 8;
  std::vector<StateTable> reference;
  std::vector<std::vector<StateTable>> original_timeline;
  {
    auto fleet_or = Fleet::Create(dir_, config);
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    RunTicks(&fleet_or.value()->engine(), kFirstRun, 0, &reference,
             &original_timeline);
    ASSERT_TRUE(fleet_or.value()->SimulateCrash().ok());
  }
  auto window_or = Fleet::RestorableWindow(dir_);
  ASSERT_TRUE(window_or.ok());
  ASSERT_TRUE(window_or->any);
  const uint64_t resume_at = (window_or->low_tick + window_or->high_tick) / 2;
  ASSERT_LT(resume_at, kFirstRun - 1);

  // Land on the past, resume as a new epoch, and run a SALTED workload so
  // the new timeline observably diverges from the old one's future.
  std::vector<std::vector<StateTable>> new_timeline;
  uint64_t old_epoch = 0, new_epoch = 0;
  {
    auto restored_or = Fleet::RecoverToTick(dir_, resume_at);
    ASSERT_TRUE(restored_or.ok()) << restored_or.status().ToString();
    ASSERT_TRUE(restored_or->at_requested_tick());
    old_epoch = restored_or->manifest().epoch;
    std::vector<StateTable> resumed_reference =
        SnapshotTables(restored_or->tables());
    auto fleet_or = restored_or->Resume();
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    new_epoch = fleet_or.value()->epoch();
    EXPECT_EQ(fleet_or.value()->engine().current_tick(), resume_at + 1);
    new_timeline.resize(resume_at + 1);
    RunTicks(&fleet_or.value()->engine(), kSecondRun, /*salt=*/1000,
             &resumed_reference, &new_timeline);
    ASSERT_TRUE(fleet_or.value()->SimulateCrash().ok());
  }
  EXPECT_EQ(new_epoch, old_epoch + 1)
      << "a point-in-time resume must commit a new fleet epoch";

  // Extend the original (unsalted) timeline deterministically past its
  // crash point: what the retired future WOULD have produced at the ticks
  // the new timeline re-ran.
  while (original_timeline.size() <= resume_at + kSecondRun) {
    const uint64_t tick = original_timeline.size();
    std::vector<StateTable> next = SnapshotTables(original_timeline.back());
    MirrorWorkloadTick(tick, kUpdatesPerTick, &next);
    original_timeline.push_back(std::move(next));
  }

  // Restores after the resume point land on the NEW timeline...
  auto after_or = Fleet::RecoverToTick(dir_, resume_at + kSecondRun);
  ASSERT_TRUE(after_or.ok()) << after_or.status().ToString();
  ASSERT_TRUE(after_or->at_requested_tick());
  for (uint32_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(after_or->tables()[i].ContentEquals(
        new_timeline[resume_at + kSecondRun][i]))
        << "shard " << i;
    // ...and the retired original future can never shadow it: the old
    // timeline ran these same ticks with different (unsalted) values.
    EXPECT_FALSE(after_or->tables()[i].ContentEquals(
        original_timeline[resume_at + kSecondRun][i]))
        << "shard " << i << " restored the retired timeline";
  }

  // Restores BEFORE the resume point still work across the epoch bump
  // (the shared past is one history), and the whole window stays honest.
  auto resumed_window_or = Fleet::RestorableWindow(dir_);
  ASSERT_TRUE(resumed_window_or.ok());
  ASSERT_TRUE(resumed_window_or->any);
  EXPECT_EQ(resumed_window_or->high_tick, resume_at + kSecondRun);
  if (resumed_window_or->low_tick < resume_at) {
    auto before_or =
        Fleet::RecoverToTick(dir_, resumed_window_or->low_tick);
    ASSERT_TRUE(before_or.ok()) << before_or.status().ToString();
    ASSERT_TRUE(before_or->at_requested_tick());
    for (uint32_t i = 0; i < 2; ++i) {
      EXPECT_TRUE(before_or->tables()[i].ContentEquals(
          original_timeline[resumed_window_or->low_tick][i]))
          << "shard " << i;
    }
  }
}

TEST_F(FleetPitTest, TornHistoryIndexFallsBackToLatestRecovery) {
  // A resume in the middle truncates the live logs and retires the stale
  // live images, so ticks BEFORE the resume point are reachable only
  // through the history subsystem -- exactly the regime where a torn
  // index must degrade cleanly.
  const auto config = Config(2);
  constexpr uint64_t kFirstRun = 14;
  std::vector<StateTable> reference;
  std::vector<std::vector<StateTable>> per_tick;
  {
    auto fleet_or = Fleet::Create(dir_, config);
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    RunTicks(&fleet_or.value()->engine(), kFirstRun, 0, &reference, &per_tick);
    ASSERT_TRUE(fleet_or.value()->SimulateCrash().ok());
  }
  {
    auto recovered_or = Fleet::Recover(dir_);
    ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
    auto fleet_or = recovered_or->Resume();
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    RunTicks(&fleet_or.value()->engine(), 4, 0, &reference, &per_tick);
    ASSERT_TRUE(fleet_or.value()->SimulateCrash().ok());
  }
  auto window_or = Fleet::RestorableWindow(dir_);
  ASSERT_TRUE(window_or.ok());
  ASSERT_TRUE(window_or->any);
  ASSERT_LT(window_or->low_tick, kFirstRun - 1);
  const uint64_t target = (window_or->low_tick + (kFirstRun - 1)) / 2;

  // Sanity: with an intact index this pre-resume tick restores exactly
  // (through a generation image + archived segments, not the live log).
  ExpectRestoreMatches(target, per_tick);

  // Tear shard 0's index: a CRC failure there means real corruption, and
  // the whole-fleet restore must degrade to consistent latest recovery
  // rather than half-apply one shard's history.
  const std::string index_path =
      paths::HistoryIndexPath(paths::ShardDir(dir_, 0));
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(index_path, &bytes).ok());
  bytes[bytes.size() / 2] ^= 0x01;
  ASSERT_TRUE(WriteStringToFile(index_path, bytes).ok());

  EXPECT_FALSE(Fleet::RestorableWindow(dir_).value().any);
  auto fallback_or = Fleet::RecoverToTick(dir_, target);
  ASSERT_TRUE(fallback_or.ok()) << fallback_or.status().ToString();
  EXPECT_FALSE(fallback_or->at_requested_tick());
  EXPECT_EQ(fallback_or->target_tick(), target);
  for (uint32_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(fallback_or->tables()[i].ContentEquals(reference[i]))
        << "shard " << i;
  }
}

TEST_F(FleetPitTest, DiskStaysBoundedAcrossCompactionCycles) {
  // The bounded-compaction acceptance: cycle run -> clean shutdown ->
  // reopen (each reopen archives the live log into a history segment, so
  // segments accumulate too) and assert at every quiesced boundary that
  // the index-referenced history bytes stay under a budget INDEPENDENT of
  // how long the fleet has run. Scaled up by TP_HISTORY_SOAK_TICKS for
  // the nightly soak.
  uint64_t total_ticks = 60;
  if (const char* soak = std::getenv("TP_HISTORY_SOAK_TICKS")) {
    total_ticks = std::max<uint64_t>(std::strtoull(soak, nullptr, 10), 20);
  }
  const auto config = Config(2);
  const uint64_t image_bytes = 48 + StateTable(ShardLayout()).buffer_bytes();
  // Three generation images plus the archived-log slack the retained tick
  // window can reference (a constant: compaction truncates segments below
  // the window base).
  const uint64_t budget =
      config.shard.retention.max_generations * image_bytes + 16 * 1024;

  std::vector<StateTable> reference;
  uint64_t max_observed_bytes = 0;
  bool first_cycle = true;
  for (uint64_t done = 0; done < total_ticks;
       done += config.checkpoint_period_ticks) {
    StatusOr<std::unique_ptr<Fleet>> fleet_or =
        first_cycle ? Fleet::Create(dir_, config) : Fleet::Open(dir_);
    first_cycle = false;
    ASSERT_TRUE(fleet_or.ok()) << fleet_or.status().ToString();
    RunTicks(&fleet_or.value()->engine(), config.checkpoint_period_ticks, 0,
             &reference, nullptr);
    ASSERT_TRUE(fleet_or.value()->Shutdown().ok());
    for (uint32_t i = 0; i < 2; ++i) {
      auto index_or = ShardHistory::ReadIndex(paths::ShardDir(dir_, i));
      ASSERT_TRUE(index_or.ok()) << index_or.status().ToString();
      const uint64_t bytes = index_or->TotalBytes();
      max_observed_bytes = std::max(max_observed_bytes, bytes);
      EXPECT_LE(bytes, budget)
          << "shard " << i << " after "
          << done + config.checkpoint_period_ticks
          << " ticks: history grew past the retention budget";
      EXPECT_LE(index_or->generations.size(),
                config.shard.retention.max_generations);
    }
  }
  for (uint32_t i = 0; i < 2; ++i) {
    auto index_or = ShardHistory::ReadIndex(paths::ShardDir(dir_, i));
    ASSERT_TRUE(index_or.ok());
    EXPECT_GE(index_or->compactions_run, 3u)
        << "shard " << i << ": the soak must cover >= 3 compaction cycles";
  }
  EXPECT_GT(max_observed_bytes, 0u);
}

TEST_F(FleetPitTest, RestoredBattleDigestsEqualTheGoldenReplay) {
  // The game-layer oracle: RecoverToTick(T) must digest-equal a golden
  // (never-crashed) replay stopped at T, for every engine tick in the
  // window. End of engine tick T = T + 1 engine ticks executed =
  // golden[T] (engine tick 0 is the bulk load).
  game::GameShardAdapterConfig config;
  config.zone_world.num_units = 64;
  config.zone_world.map_size = 256;
  config.zone_world.bucket_shift = 5;
  config.zone_world.spawn_radius = 100;
  config.zone_world.seed = 777;
  config.engine = Config(2);
  constexpr uint64_t kEngineTicks = 12;
  const auto golden = game::GameShardAdapter::GoldenZoneDigests(
      config, kEngineTicks - 1);

  {
    auto adapter_or = game::GameShardAdapter::Open(config);
    ASSERT_TRUE(adapter_or.ok()) << adapter_or.status().ToString();
    ASSERT_TRUE(adapter_or.value()->RunTicks(kEngineTicks).ok());
    ASSERT_TRUE(adapter_or.value()->fleet()->SimulateCrash().ok());
  }

  auto window_or = Fleet::RestorableWindow(dir_);
  ASSERT_TRUE(window_or.ok()) << window_or.status().ToString();
  ASSERT_TRUE(window_or->any);
  EXPECT_EQ(window_or->high_tick, kEngineTicks - 1);
  for (uint64_t tick = window_or->low_tick; tick <= window_or->high_tick;
       ++tick) {
    SCOPED_TRACE("engine tick " + std::to_string(tick));
    auto restored_or = Fleet::RecoverToTick(dir_, tick);
    ASSERT_TRUE(restored_or.ok()) << restored_or.status().ToString();
    ASSERT_TRUE(restored_or->at_requested_tick());
    for (uint32_t z = 0; z < 2; ++z) {
      EXPECT_EQ(game::TableStateDigest(restored_or->tables()[z],
                                       config.zone_world.num_units),
                golden[tick][z])
          << "zone " << z << " diverged from the golden replay";
    }
  }
}

}  // namespace
}  // namespace tickpoint
