// Behavioral tests of the simulated checkpoint executor: checkpoint
// lifecycle, write-set selection, copy-on-update mechanics, and the cost
// accounting for each of the six algorithms.
#include "core/sim_executor.h"

#include <gtest/gtest.h>

#include "core/recovery_model.h"

namespace tickpoint {
namespace {

// A small layout where timing is easy to reason about:
// 320 objects * 512 B = 160 KB state; full log write = 160KB/60MB/s = 2.73ms
// (completes within one 33ms tick); full double-backup write the same.
StateLayout TestLayout() { return StateLayout::Small(4096, 10); }

// Runs `ticks` empty ticks.
void RunIdleTicks(CheckpointSim* sim, int ticks) {
  for (int t = 0; t < ticks; ++t) {
    sim->BeginTick();
    sim->EndTick();
  }
}

// Runs one tick updating the given objects (in order).
void RunTick(CheckpointSim* sim, const std::vector<ObjectId>& objects) {
  sim->BeginTick();
  for (ObjectId o : objects) sim->OnObjectUpdate(o);
  sim->EndTick();
}

TEST(CheckpointSimTest, FirstCheckpointStartsAtEndOfFirstTick) {
  for (AlgorithmKind kind : AllAlgorithms()) {
    CheckpointSim sim(kind, TestLayout(), HardwareParams::Paper());
    EXPECT_FALSE(sim.checkpoint_active());
    RunIdleTicks(&sim, 1);
    EXPECT_TRUE(sim.checkpoint_active()) << AlgorithmName(kind);
    EXPECT_TRUE(sim.active_all_objects()) << AlgorithmName(kind);
  }
}

TEST(CheckpointSimTest, CheckpointsCompleteAndChain) {
  // Async duration 2.73 ms < 33 ms tick: each checkpoint completes at the
  // next tick end and a new one starts immediately (back-to-back).
  CheckpointSim sim(AlgorithmKind::kNaiveSnapshot, TestLayout(),
                    HardwareParams::Paper());
  RunIdleTicks(&sim, 10);
  // Tick 0 starts #0; ticks 1..9 complete one and start the next.
  EXPECT_EQ(sim.metrics().checkpoints.size(), 9u);
  for (const auto& record : sim.metrics().checkpoints) {
    EXPECT_TRUE(record.all_objects);
    EXPECT_EQ(record.objects_written, TestLayout().num_objects());
  }
}

TEST(CheckpointSimTest, NaiveSnapshotOverheadIndependentOfUpdates) {
  const HardwareParams hw = HardwareParams::Paper();
  CheckpointSim idle(AlgorithmKind::kNaiveSnapshot, TestLayout(), hw);
  CheckpointSim busy(AlgorithmKind::kNaiveSnapshot, TestLayout(), hw);
  for (int t = 0; t < 20; ++t) {
    RunTick(&idle, {});
    RunTick(&busy, std::vector<ObjectId>(1000, t % 320));
  }
  EXPECT_DOUBLE_EQ(idle.metrics().AvgOverheadSeconds(),
                   busy.metrics().AvgOverheadSeconds());
  EXPECT_EQ(busy.metrics().bit_tests, 0u);
  EXPECT_EQ(busy.metrics().cou_copies, 0u);
}

TEST(CheckpointSimTest, NaiveSnapshotSyncCostMatchesModel) {
  const HardwareParams hw = HardwareParams::Paper();
  const StateLayout layout = TestLayout();
  CheckpointSim sim(AlgorithmKind::kNaiveSnapshot, layout, hw);
  RunIdleTicks(&sim, 1);
  const CostModel cost(hw);
  // The single tick's overhead is exactly the eager full-state copy.
  EXPECT_DOUBLE_EQ(sim.metrics().tick_overhead.samples()[0],
                   cost.SyncCopySeconds(layout.num_objects(), 1));
}

TEST(CheckpointSimTest, EagerDirtyWriteSetIsDirtyObjectsOnly) {
  const StateLayout layout = TestLayout();
  CheckpointSim sim(AlgorithmKind::kAtomicCopyDirty, layout,
                    HardwareParams::Paper());
  // Ticks 0 and 1: bootstrap full images for both backups.
  RunTick(&sim, {1, 2, 3});
  ASSERT_TRUE(sim.checkpoint_active());
  EXPECT_TRUE(sim.active_all_objects());
  RunTick(&sim, {10, 11});
  ASSERT_TRUE(sim.checkpoint_active());
  EXPECT_TRUE(sim.active_all_objects());
  // Third checkpoint (backup 0 again): dirty since backup 0's image =
  // updates from ticks 1 and 2.
  RunTick(&sim, {20});
  ASSERT_TRUE(sim.checkpoint_active());
  EXPECT_FALSE(sim.active_all_objects());
  EXPECT_EQ(sim.active_write_count(), 3u);  // {10, 11, 20}
  // Fourth (backup 1): dirty since backup 1's image = tick 3's updates.
  RunTick(&sim, {30, 31});
  ASSERT_TRUE(sim.checkpoint_active());
  EXPECT_EQ(sim.active_write_count(), 3u);  // {20, 30, 31}
}

TEST(CheckpointSimTest, DirtyObjectCountedOncePerCheckpointWindow) {
  CheckpointSim sim(AlgorithmKind::kAtomicCopyDirty, TestLayout(),
                    HardwareParams::Paper());
  RunTick(&sim, {});  // full image backup 0
  RunTick(&sim, std::vector<ObjectId>(100, 42));  // 100 updates, one object
  ASSERT_TRUE(sim.checkpoint_active());
  EXPECT_TRUE(sim.active_all_objects());  // still bootstrap of backup 1
  RunTick(&sim, {});
  EXPECT_EQ(sim.active_write_count(), 1u);  // only object 42 is dirty
}

TEST(CheckpointSimTest, DribbleCopiesAtMostOncePerObject) {
  // A long checkpoint: use paper layout so the async write spans many ticks.
  const StateLayout layout = StateLayout::Paper();
  CheckpointSim sim(AlgorithmKind::kDribble, layout, HardwareParams::Paper());
  RunIdleTicks(&sim, 1);  // start checkpoint
  ASSERT_TRUE(sim.checkpoint_active());
  // Update the same object in many consecutive ticks: only the first tick
  // (before the writer reaches it) may copy.
  for (int t = 0; t < 5; ++t) RunTick(&sim, {77777, 77777, 77777});
  EXPECT_EQ(sim.metrics().cou_copies, 1u);
  EXPECT_EQ(sim.metrics().lock_acquisitions, 1u);
  // Every update paid a bit test.
  EXPECT_EQ(sim.metrics().bit_tests, 15u);
}

TEST(CheckpointSimTest, DribbleDoesNotCopyAlreadyFlushedObjects) {
  const StateLayout layout = StateLayout::Paper();  // 78125 objects, 0.67 s
  CheckpointSim sim(AlgorithmKind::kDribble, layout, HardwareParams::Paper());
  RunIdleTicks(&sim, 1);  // checkpoint starts; writer flushes in id order
  // After ~10 ticks (0.33 s of a 0.67 s write), object 0 has long been
  // flushed; updating it must not copy.
  RunIdleTicks(&sim, 10);
  const uint64_t copies_before = sim.metrics().cou_copies;
  RunTick(&sim, {0});
  EXPECT_EQ(sim.metrics().cou_copies, copies_before);
  // A tail object (not yet flushed) does get copied.
  RunTick(&sim, {layout.num_objects() - 1});
  EXPECT_EQ(sim.metrics().cou_copies, copies_before + 1);
}

TEST(CheckpointSimTest, CopyOnUpdateOnlyCopiesWriteSetMembers) {
  const StateLayout layout = StateLayout::Paper();
  CheckpointSim sim(AlgorithmKind::kCopyOnUpdate, layout,
                    HardwareParams::Paper());
  // Let the bootstrap image start first (it covers tick 0), then dirty
  // object 9000 and run until a dirty-only checkpoint whose write set
  // captured it is active.
  RunIdleTicks(&sim, 1);
  RunTick(&sim, {9000});
  while (!(sim.checkpoint_active() && !sim.active_all_objects() &&
           sim.active_write_count() > 0)) {
    RunTick(&sim, {});
    ASSERT_LT(sim.current_tick(), 400u);
  }
  EXPECT_EQ(sim.active_write_count(), 1u);  // exactly {9000}
  const uint64_t copies_before = sim.metrics().cou_copies;
  // Updating a non-member must not copy; updating the member must. (The
  // writer head is still far from offset 9000 one tick into a 0.67 s write.)
  RunTick(&sim, {60000});
  EXPECT_EQ(sim.metrics().cou_copies, copies_before);
  RunTick(&sim, {9000});
  EXPECT_EQ(sim.metrics().cou_copies, copies_before + 1);
}

TEST(CheckpointSimTest, PartialRedoFullFlushEveryC) {
  SimParams params;
  params.full_flush_period = 3;
  CheckpointSim sim(AlgorithmKind::kPartialRedo, TestLayout(),
                    HardwareParams::Paper(), params);
  for (int t = 0; t < 20; ++t) RunTick(&sim, {static_cast<ObjectId>(t)});
  const auto& checkpoints = sim.metrics().checkpoints;
  ASSERT_GE(checkpoints.size(), 6u);
  for (const auto& record : checkpoints) {
    EXPECT_EQ(record.full_flush, record.seq % 3 == 0) << "seq " << record.seq;
    if (record.full_flush) {
      EXPECT_TRUE(record.all_objects);
      EXPECT_EQ(record.objects_written, TestLayout().num_objects());
    } else {
      EXPECT_FALSE(record.all_objects);
      EXPECT_LE(record.objects_written, 2u);  // at most 2 dirty objects
    }
  }
}

TEST(CheckpointSimTest, LogCheckpointDurationScalesWithDirtyCount) {
  SimParams params;
  params.full_flush_period = 100;  // keep full flushes out of the way
  CheckpointSim sim(AlgorithmKind::kCopyOnUpdatePartialRedo, TestLayout(),
                    HardwareParams::Paper(), params);
  const CostModel cost{HardwareParams::Paper()};
  RunTick(&sim, {});  // full image
  RunTick(&sim, {1, 2, 3, 4, 5});
  // Next checkpoint writes the 5 dirty objects.
  RunTick(&sim, {});
  const auto& checkpoints = sim.metrics().checkpoints;
  const auto& last = checkpoints.back();
  EXPECT_EQ(last.objects_written, 5u);
  EXPECT_DOUBLE_EQ(last.async_seconds, cost.LogWriteSeconds(5));
  EXPECT_EQ(last.bytes_written, 5 * 512u);
}

TEST(CheckpointSimTest, DoubleBackupDurationIsFullRotation) {
  CheckpointSim sim(AlgorithmKind::kCopyOnUpdate, TestLayout(),
                    HardwareParams::Paper());
  const CostModel cost{HardwareParams::Paper()};
  RunTick(&sim, {});   // tick 0: bootstrap image for backup 0
  RunTick(&sim, {1});  // tick 1: bootstrap image for backup 1
  RunTick(&sim, {});   // tick 2: dirty checkpoint {1} starts
  RunTick(&sim, {});   // tick 3: dirty checkpoint completes
  const auto& last = sim.metrics().checkpoints.back();
  ASSERT_FALSE(last.all_objects);
  EXPECT_EQ(last.objects_written, 1u);
  // One dirty object, but the sorted sweep still takes the full rotation.
  EXPECT_DOUBLE_EQ(last.async_seconds,
                   cost.DoubleBackupWriteSeconds(TestLayout().num_objects()));
  EXPECT_EQ(last.bytes_written, 512u);
}

TEST(CheckpointSimTest, UnsortedIoAblationChangesDuration) {
  SimParams sorted;
  SimParams unsorted;
  unsorted.sorted_io = false;
  CheckpointSim a(AlgorithmKind::kCopyOnUpdate, TestLayout(),
                  HardwareParams::Paper(), sorted);
  CheckpointSim b(AlgorithmKind::kCopyOnUpdate, TestLayout(),
                  HardwareParams::Paper(), unsorted);
  RunTick(&a, {1});
  RunTick(&b, {1});
  // Both now run their bootstrap full-state write. Sorted: one sequential
  // pass (2.7 ms here). Unsorted: a seek + half rotation per object -- ~12 ms
  // each, ~3.9 s total. This is why the paper calls the sorted-I/O
  // optimization "crucial" for double-backup schemes.
  ASSERT_TRUE(a.checkpoint_active());
  ASSERT_TRUE(b.checkpoint_active());
  const CostModel cost{HardwareParams::Paper()};
  EXPECT_DOUBLE_EQ(a.active_async_seconds(),
                   cost.DoubleBackupWriteSeconds(TestLayout().num_objects()));
  EXPECT_DOUBLE_EQ(b.active_async_seconds(),
                   cost.UnsortedWriteSeconds(TestLayout().num_objects()));
  EXPECT_GT(b.active_async_seconds(), 100 * a.active_async_seconds());
}

TEST(CheckpointSimTest, OverheadSpreadVsConcentrated) {
  // The paper's core latency claim (Figure 3): eager methods concentrate
  // overhead into the checkpoint-start tick; copy-on-update methods spread
  // it. Compare max per-tick overhead under identical load.
  const StateLayout layout = StateLayout::Paper();
  const HardwareParams hw = HardwareParams::Paper();
  CheckpointSim naive(AlgorithmKind::kNaiveSnapshot, layout, hw);
  CheckpointSim cou(AlgorithmKind::kCopyOnUpdate, layout, hw);
  std::vector<ObjectId> updates;
  for (int i = 0; i < 2000; ++i) {
    updates.push_back(static_cast<ObjectId>((i * 37) % layout.num_objects()));
  }
  for (int t = 0; t < 100; ++t) {
    RunTick(&naive, updates);
    RunTick(&cou, updates);
  }
  EXPECT_GT(naive.metrics().tick_overhead.Max(),
            5 * cou.metrics().tick_overhead.Max());
}

TEST(CheckpointSimTest, RecoveryEstimateNonPartialRedo) {
  const StateLayout layout = TestLayout();
  const HardwareParams hw = HardwareParams::Paper();
  CheckpointSim sim(AlgorithmKind::kNaiveSnapshot, layout, hw);
  RunIdleTicks(&sim, 10);
  const CostModel cost(hw);
  const RecoveryEstimate estimate =
      EstimateRecovery(sim.traits(), sim.metrics(), layout, cost, SimParams{});
  EXPECT_DOUBLE_EQ(estimate.restore_seconds,
                   cost.SequentialReadSeconds(layout.num_objects()));
  EXPECT_DOUBLE_EQ(estimate.replay_seconds,
                   sim.metrics().AvgCheckpointSeconds());
  EXPECT_GT(estimate.total_seconds(), estimate.restore_seconds);
}

TEST(CheckpointSimTest, RecoveryEstimatePartialRedoReadsBackThroughLog) {
  const StateLayout layout = TestLayout();
  const HardwareParams hw = HardwareParams::Paper();
  SimParams params;
  params.full_flush_period = 4;
  CheckpointSim sim(AlgorithmKind::kPartialRedo, layout, hw, params);
  std::vector<ObjectId> updates;
  for (int i = 0; i < 200; ++i) updates.push_back(i % 320);
  for (int t = 0; t < 30; ++t) RunTick(&sim, updates);
  const CostModel cost(hw);
  const RecoveryEstimate estimate =
      EstimateRecovery(sim.traits(), sim.metrics(), layout, cost, params);
  const double k = sim.metrics().AvgObjectsPerCheckpoint(true);
  EXPECT_GT(k, 0.0);
  EXPECT_DOUBLE_EQ(estimate.restore_seconds,
                   cost.PartialRedoRestoreSeconds(k, 4, layout.num_objects()));
  EXPECT_GT(estimate.restore_seconds,
            cost.SequentialReadSeconds(layout.num_objects()));
}

TEST(CheckpointSimTest, ZeroUpdateWorkloadStillCheckpoints) {
  for (AlgorithmKind kind : AllAlgorithms()) {
    CheckpointSim sim(kind, TestLayout(), HardwareParams::Paper());
    RunIdleTicks(&sim, 40);
    EXPECT_GE(sim.metrics().checkpoints.size(), 2u) << AlgorithmName(kind);
    EXPECT_EQ(sim.metrics().updates, 0u);
  }
}

TEST(CheckpointSimTest, ClockAdvancesByStretchedTicks) {
  const HardwareParams hw = HardwareParams::Paper();
  CheckpointSim sim(AlgorithmKind::kNaiveSnapshot, TestLayout(), hw);
  RunIdleTicks(&sim, 10);
  const double base = 10 * hw.TickSeconds();
  const double overhead = sim.metrics().tick_overhead.Sum();
  EXPECT_NEAR(sim.now(), base + overhead, 1e-12);
  EXPECT_GT(overhead, 0.0);
}

TEST(CheckpointSimTest, TraitsTableMatchesPaper) {
  // Table 1 placement of all six algorithms.
  const auto& naive = GetTraits(AlgorithmKind::kNaiveSnapshot);
  EXPECT_TRUE(naive.eager_copy);
  EXPECT_FALSE(naive.dirty_only);
  EXPECT_FALSE(naive.partial_redo);

  const auto& dribble = GetTraits(AlgorithmKind::kDribble);
  EXPECT_FALSE(dribble.eager_copy);
  EXPECT_FALSE(dribble.dirty_only);
  EXPECT_EQ(dribble.disk, DiskOrganization::kLog);
  EXPECT_FALSE(dribble.partial_redo);

  const auto& acdo = GetTraits(AlgorithmKind::kAtomicCopyDirty);
  EXPECT_TRUE(acdo.eager_copy);
  EXPECT_TRUE(acdo.dirty_only);
  EXPECT_EQ(acdo.disk, DiskOrganization::kDoubleBackup);

  const auto& pr = GetTraits(AlgorithmKind::kPartialRedo);
  EXPECT_TRUE(pr.eager_copy);
  EXPECT_TRUE(pr.partial_redo);
  EXPECT_EQ(pr.disk, DiskOrganization::kLog);

  const auto& cou = GetTraits(AlgorithmKind::kCopyOnUpdate);
  EXPECT_FALSE(cou.eager_copy);
  EXPECT_TRUE(cou.dirty_only);
  EXPECT_EQ(cou.disk, DiskOrganization::kDoubleBackup);
  EXPECT_FALSE(cou.partial_redo);

  const auto& coupr = GetTraits(AlgorithmKind::kCopyOnUpdatePartialRedo);
  EXPECT_FALSE(coupr.eager_copy);
  EXPECT_TRUE(coupr.dirty_only);
  EXPECT_TRUE(coupr.partial_redo);
}

TEST(CheckpointSimTest, ParseAlgorithmNames) {
  EXPECT_EQ(ParseAlgorithm("naive"), AlgorithmKind::kNaiveSnapshot);
  EXPECT_EQ(ParseAlgorithm("Copy-on-Update"), AlgorithmKind::kCopyOnUpdate);
  EXPECT_EQ(ParseAlgorithm("cou-partial-redo"),
            AlgorithmKind::kCopyOnUpdatePartialRedo);
  EXPECT_FALSE(ParseAlgorithm("bogus").has_value());
}

}  // namespace
}  // namespace tickpoint
