// A durable MMO shard: the Knights-and-Archers battle running on top of the
// real checkpointing engine, with a mid-battle crash and full recovery.
//
//   build/examples/durable_game_server [ticks] [units] [checkpoint_dir]
//
// When checkpoint_dir is given, the durability artifacts are left behind
// for inspection with tools/tickpoint_inspect.
//
// Wiring: every attribute write of the game world is mirrored -- through the
// UpdateSink instrumentation hook -- into an Engine running Copy-on-Update
// with a double-backup store and a logical log (the paper's recommended
// configuration). Mid-battle the process "crashes"; recovery restores the
// newest complete checkpoint and replays the logical log, and the rebuilt
// state is byte-compared against the lost in-memory state.
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "engine/engine.h"
#include "engine/recovery.h"
#include "game/world.h"
#include "util/table_printer.h"

using namespace tickpoint;

namespace {

/// Mirrors game-state writes into the durable engine.
class EngineSink : public game::UpdateSink {
 public:
  explicit EngineSink(Engine* engine) : engine_(engine) {}
  void OnUpdate(game::UnitId unit, uint32_t attr, int32_t value) override {
    engine_->ApplyUpdate(unit * game::kNumAttributes + attr, value);
  }

 private:
  Engine* engine_;
};

}  // namespace

int main(int argc, char** argv) {
  const uint64_t ticks = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 240;
  const uint32_t units =
      argc > 2 ? static_cast<uint32_t>(std::strtoul(argv[2], nullptr, 10))
               : 20000;
  const uint64_t crash_tick = ticks * 2 / 3;

  game::WorldConfig world_config;
  world_config.num_units = units;
  world_config.map_size = 2048;
  world_config.spawn_radius = 700;
  game::World world(world_config);

  EngineConfig config;
  config.layout = world.TraceLayout();
  config.algorithm = AlgorithmKind::kCopyOnUpdate;  // paper recommendation
  const bool keep_artifacts = argc > 3;
  config.dir = keep_artifacts
                   ? std::string(argv[3])
                   : (std::filesystem::temp_directory_path() /
                      "tickpoint_durable_game")
                         .string();
  std::filesystem::remove_all(config.dir);
  auto engine_or = Engine::Open(config);
  TP_CHECK_OK(engine_or.status());
  Engine& engine = *engine_or.value();

  std::printf("Knights & Archers: %u units (%.1f MB state, %llu atomic "
              "objects), %s\n",
              units, config.layout.state_bytes() / 1e6,
              static_cast<unsigned long long>(config.layout.num_objects()),
              AlgorithmName(config.algorithm));

  // Tick 0: world creation. The pristine unit table enters the engine as
  // one bulk "spawn" tick so durability covers the initial state too.
  EngineSink sink(&engine);
  engine.BeginTick();
  for (game::UnitId u = 0; u < units; ++u) {
    for (uint32_t attr = 0; attr < game::kNumAttributes; ++attr) {
      engine.ApplyUpdate(u * game::kNumAttributes + attr,
                         world.units().Get(u, attr));
    }
  }
  TP_CHECK_OK(engine.EndTick());

  // Battle ticks, every update mirrored into the engine.
  world.set_sink(&sink);
  for (uint64_t t = 1; t <= crash_tick; ++t) {
    engine.BeginTick();
    world.Tick();
    TP_CHECK_OK(engine.EndTick());
  }
  world.set_sink(nullptr);

  std::printf("played %llu ticks; %llu updates, %zu checkpoints, "
              "avg overhead %s/tick\n",
              static_cast<unsigned long long>(crash_tick),
              static_cast<unsigned long long>(engine.metrics().updates),
              engine.metrics().checkpoints.size(),
              TablePrinter::Seconds(engine.metrics().AvgOverheadSeconds())
                  .c_str());

  // --- crash ---
  const uint32_t lost_digest = engine.state().Digest();
  TP_CHECK_OK(engine.SimulateCrash());
  std::printf("*** server crashed at tick %llu (in-flight checkpoint torn); "
              "state digest %08x lost with the process\n",
              static_cast<unsigned long long>(crash_tick), lost_digest);

  // --- recovery ---
  StateTable recovered(config.layout);
  auto result_or = Recover(config, &recovered);
  TP_CHECK_OK(result_or.status());
  const RecoveryResult& recovery = *result_or;
  std::printf("recovered: restored checkpoint #%llu (consistent through "
              "tick %llu) in %s, replayed %llu ticks in %s\n",
              static_cast<unsigned long long>(recovery.image_seq),
              static_cast<unsigned long long>(recovery.image_consistent_ticks),
              TablePrinter::Seconds(recovery.restore_seconds).c_str(),
              static_cast<unsigned long long>(recovery.ticks_replayed),
              TablePrinter::Seconds(recovery.replay_seconds).c_str());

  const uint32_t recovered_digest = recovered.Digest();
  std::printf("recovered state digest %08x -> %s\n", recovered_digest,
              recovered_digest == lost_digest
                  ? "EXACT MATCH: no player progress lost"
                  : "MISMATCH (bug!)");
  if (keep_artifacts) {
    std::printf("artifacts kept in %s (try: tickpoint_inspect --dir %s "
                "--rows %u --cols %u)\n",
                config.dir.c_str(), config.dir.c_str(), units,
                game::kNumAttributes);
  } else {
    std::filesystem::remove_all(config.dir);
  }
  return recovered_digest == lost_digest ? 0 : 1;
}
