// Capacity planning: calibrate the cost model on THIS machine, then predict
// checkpoint latency, throughput overhead, and recovery time for a shard
// configuration you are designing -- the workflow paper Section 4.2's model
// enables without owning the production hardware.
//
//   build/examples/capacity_planner [state_mb] [updates_per_tick]
#include <cstdio>
#include <cstdlib>

#include "calib/microbench.h"
#include "model/cost_model.h"
#include "sim/simulator.h"
#include "trace/zipf_source.h"
#include "util/table_printer.h"

using namespace tickpoint;

int main(int argc, char** argv) {
  const double state_mb = argc > 1 ? std::strtod(argv[1], nullptr) : 80.0;
  const uint64_t rate =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 24000;

  // 1. Calibrate this host (quick settings; see bench_table3_calibration
  //    for the full run).
  std::printf("calibrating host...\n");
  CalibrationOptions calib;
  calib.mem_iterations = 3;
  calib.small_copy_count = 50000;
  calib.lock_ops = 200000;
  calib.bit_ops = 2000000;
  calib.disk_write_bytes = 64ull << 20;
  auto measured_or = RunCalibration(calib);
  TP_CHECK_OK(measured_or.status());
  HardwareParams hw = measured_or->ToHardwareParams();
  std::printf("  %s\n\n", hw.ToString().c_str());

  // 2. Describe the shard: state size -> table geometry.
  StateLayout layout = StateLayout::Paper();
  layout.rows = static_cast<uint64_t>(state_mb * 1e6 /
                                      (layout.cols * layout.cell_size));
  std::printf("shard: %.1f MB state (%llu objects), %llu updates/tick at "
              "%.0f Hz\n\n",
              layout.state_bytes() / 1e6,
              static_cast<unsigned long long>(layout.num_objects()),
              static_cast<unsigned long long>(rate), hw.tick_hz);

  // 3. Closed-form model answers (before any simulation).
  const CostModel cost(hw);
  std::printf("closed-form model:\n");
  std::printf("  full checkpoint write: %s\n",
              TablePrinter::Seconds(
                  cost.DoubleBackupWriteSeconds(layout.num_objects()))
                  .c_str());
  std::printf("  eager full-state pause: %s (latency limit %s)\n",
              TablePrinter::Seconds(
                  cost.SyncCopySeconds(layout.num_objects(), 1))
                  .c_str(),
              TablePrinter::Seconds(hw.LatencyLimitSeconds()).c_str());
  std::printf("  full-state restore: %s\n\n",
              TablePrinter::Seconds(
                  cost.SequentialReadSeconds(layout.num_objects()))
                  .c_str());

  // 4. Simulate the six algorithms on the projected workload.
  ZipfTraceConfig trace;
  trace.layout = layout;
  trace.num_ticks = 200;
  trace.updates_per_tick = rate;
  trace.theta = 0.8;
  ZipfUpdateSource source(trace);
  SimulationOptions options;
  options.hw = hw;
  auto results = RunSimulation(options, AllAlgorithms(), &source);

  TablePrinter table({"algorithm", "avg overhead/tick", "peak pause",
                      "checkpoint", "recovery", "fits latency budget"});
  for (const auto& result : results) {
    const double peak = result.metrics.tick_overhead.Max();
    table.AddRow({AlgorithmName(result.kind),
                  TablePrinter::Seconds(result.avg_overhead_seconds),
                  TablePrinter::Seconds(peak),
                  TablePrinter::Seconds(result.avg_checkpoint_seconds),
                  TablePrinter::Seconds(result.recovery_seconds),
                  peak <= hw.LatencyLimitSeconds() ? "yes" : "NO"});
  }
  table.Print();
  return 0;
}
