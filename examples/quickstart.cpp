// Quickstart: evaluate the six checkpoint-recovery algorithms on a
// synthetic MMO workload and print the paper's three decision metrics.
//
//   build/examples/quickstart
//
// This is the 60-second tour of the library: build a workload (an
// UpdateSource), pick hardware parameters, run the simulator, read results.
#include <cstdio>

#include "sim/simulator.h"
#include "trace/zipf_source.h"
#include "util/table_printer.h"

using namespace tickpoint;

int main() {
  // 1. A workload: 10M-cell game state, 16K cell updates per tick with
  //    Zipf(0.8) skew -- a mid-size MMO shard under load.
  ZipfTraceConfig trace;
  trace.layout = StateLayout::Paper();  // 1M rows x 10 attrs x 4 B = 40 MB
  trace.num_ticks = 300;
  trace.updates_per_tick = 16000;
  trace.theta = 0.8;
  ZipfUpdateSource source(trace);

  // 2. Hardware: the paper's Table 3 server (swap in calibrated values from
  //    bench_table3_calibration to model your own machine).
  SimulationOptions options;
  options.hw = HardwareParams::Paper();

  // 3. Run all six algorithms in lockstep over the same trace.
  auto results = RunSimulation(options, AllAlgorithms(), &source);

  // 4. Read the three metrics that matter for an MMO (paper Section 5).
  TablePrinter table({"algorithm", "avg overhead/tick", "peak tick pause",
                      "time to checkpoint", "recovery time"});
  for (const auto& result : results) {
    table.AddRow({AlgorithmName(result.kind),
                  TablePrinter::Seconds(result.avg_overhead_seconds),
                  TablePrinter::Seconds(result.metrics.tick_overhead.Max()),
                  TablePrinter::Seconds(result.avg_checkpoint_seconds),
                  TablePrinter::Seconds(result.recovery_seconds)});
  }
  table.Print();

  // 5. The paper's recommendation, recomputed from this run: the method
  //    with the best latency among those with near-best recovery.
  const double latency_limit = options.hw.LatencyLimitSeconds();
  const AlgorithmRunResult* best = nullptr;
  double best_recovery = 1e300;
  for (const auto& r : results) best_recovery = std::min(best_recovery, r.recovery_seconds);
  for (const auto& result : results) {
    if (result.recovery_seconds > 1.5 * best_recovery) continue;
    if (best == nullptr ||
        result.metrics.tick_overhead.Max() <
            best->metrics.tick_overhead.Max()) {
      best = &result;
    }
  }
  std::printf("\nRecommended for this workload: %s\n",
              AlgorithmName(best->kind));
  std::printf("  peak pause %s vs half-tick latency limit %s\n",
              TablePrinter::Seconds(best->metrics.tick_overhead.Max()).c_str(),
              TablePrinter::Seconds(latency_limit).c_str());
  std::printf(
      "  (paper Section 8: Copy-on-Update is the best method in terms of "
      "both latency and recovery time)\n");
  return 0;
}
