// Latency budgeting: drive CheckpointSim tick by tick (the low-level API)
// to find the highest update rate at which each algorithm still respects
// the half-tick latency limit -- the go/no-go analysis an MMO team would
// run before picking a persistence strategy (paper Sections 5.2 and 8).
//
//   build/examples/latency_budget
#include <cstdio>

#include "core/sim_executor.h"
#include "trace/zipf_source.h"
#include "util/table_printer.h"

using namespace tickpoint;

namespace {

// Peak tick pause at a given update rate (runs a short simulation).
double PeakPause(AlgorithmKind kind, uint64_t rate) {
  const StateLayout layout = StateLayout::Paper();
  CheckpointSim sim(kind, layout, HardwareParams::Paper());
  ZipfTraceConfig trace;
  trace.layout = layout;
  trace.num_ticks = 90;  // a few checkpoint cycles
  trace.updates_per_tick = rate;
  trace.theta = 0.8;
  ZipfUpdateSource source(trace);

  // The manual driving loop: BeginTick / OnCellUpdate / EndTick. A game
  // server embedding the simulator for capacity planning would do exactly
  // this with its own predicted update stream.
  std::vector<TraceCell> cells;
  while (source.NextTick(&cells)) {
    sim.BeginTick();
    for (TraceCell cell : cells) sim.OnCellUpdate(cell);
    sim.EndTick();
  }
  return sim.metrics().tick_overhead.Max();
}

}  // namespace

int main() {
  const HardwareParams hw = HardwareParams::Paper();
  const double limit = hw.LatencyLimitSeconds();
  std::printf("half-tick latency limit at %.0f Hz: %s\n", hw.tick_hz,
              TablePrinter::Seconds(limit).c_str());

  TablePrinter table({"algorithm", "max rate within limit",
                      "peak pause at that rate", "peak pause at 64K"});
  for (AlgorithmKind kind : AllAlgorithms()) {
    // Binary-search the largest updates/tick whose peak pause fits the
    // half-tick budget.
    uint64_t lo = 0, hi = 512000;
    while (lo < hi) {
      const uint64_t mid = (lo + hi + 1) / 2;
      if (PeakPause(kind, mid) <= limit) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    std::string max_rate = std::to_string(lo);
    if (lo == 0 && PeakPause(kind, 0) > limit) {
      max_rate = "none (pause > limit even when idle)";
    } else if (lo >= 512000) {
      max_rate = ">512000";
    }
    table.AddRow({AlgorithmName(kind), max_rate,
                  TablePrinter::Seconds(PeakPause(kind, lo)),
                  TablePrinter::Seconds(PeakPause(kind, 64000))});
    std::printf("."); std::fflush(stdout);
  }
  std::printf("\n\n");
  table.Print();
  std::printf(
      "\nReading: eager methods blow the budget as soon as the dirty set "
      "approaches the full state (their pause is one big memcpy); "
      "copy-on-update methods degrade gradually because their overhead is "
      "spread across the ticks of a checkpoint (paper Figure 3).\n");
  return 0;
}
