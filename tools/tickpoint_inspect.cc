// tickpoint_inspect: operations CLI for checkpoint directories.
//
//   tickpoint_inspect --dir /var/lib/myshard [--rows N] [--cols M]
//
// Prints the staged doublewrite region (what a reopen would replay or
// discard), the state of both double-backup images (validity, sequence,
// consistent tick), any checkpoint-log generations with their segments,
// and the logical log's durable tick range -- everything an operator needs
// to answer "what would this shard recover to right now?".
//
// Inspection is strictly read-only: the backup store is opened with
// doublewrite replay disabled, so pointing this tool at a crashed
// directory never changes what a later recovery will see.
#include <cstdio>
#include <filesystem>

#include "engine/checkpoint_store.h"
#include "engine/doublewrite.h"
#include "engine/engine.h"
#include "engine/logical_log.h"
#include "engine/paths.h"
#include "util/flags.h"
#include "util/table_printer.h"

using namespace tickpoint;

int main(int argc, char** argv) {
  Flags flags;
  TP_CHECK_OK(flags.Parse(argc, argv));
  const std::string dir = flags.GetString("dir", "");
  if (dir.empty() || flags.help_requested()) {
    std::fprintf(stderr,
                 "usage: tickpoint_inspect --dir <checkpoint dir> "
                 "[--rows N] [--cols M] [--object-size B]\n");
    return 2;
  }
  StateLayout layout;
  layout.rows = static_cast<uint64_t>(flags.GetInt64("rows", 1000000));
  layout.cols = static_cast<uint64_t>(flags.GetInt64("cols", 10));
  layout.object_size =
      static_cast<uint64_t>(flags.GetInt64("object-size", 512));
  TP_CHECK(layout.Valid());

  std::printf("inspecting %s (assumed layout: %llu x %llu cells, %llu-byte "
              "objects)\n\n",
              dir.c_str(), static_cast<unsigned long long>(layout.rows),
              static_cast<unsigned long long>(layout.cols),
              static_cast<unsigned long long>(layout.object_size));

  // Staged doublewrite region. Scanned directly from disk -- before and
  // independently of any store open -- so a torn batch is shown exactly as
  // recovery will find it.
  const std::string dw_path = paths::DoublewritePath(dir);
  bool any_doublewrite = false;
  {
    auto chunks_or = DoublewriteRegion::Scan(dw_path);
    TP_CHECK_OK(chunks_or.status());
    if (!chunks_or.value().empty()) {
      any_doublewrite = true;
      const uint64_t batch_seq = chunks_or.value().front().batch_seq;
      TablePrinter table({"chunk", "batch #", "target image", "target offset",
                          "bytes", "payload"});
      size_t index = 0;
      bool replayable = true;
      for (const DoublewriteRegion::Chunk& chunk : chunks_or.value()) {
        if (chunk.batch_seq != batch_seq || !chunk.payload_intact) {
          replayable = false;
        }
        table.AddRow({std::to_string(index++),
                      std::to_string(chunk.batch_seq),
                      std::to_string(chunk.target_image),
                      std::to_string(chunk.target_offset),
                      std::to_string(chunk.length),
                      chunk.payload_intact ? "intact" : "TORN"});
      }
      std::printf("doublewrite region (%zu staged chunks)\n",
                  chunks_or.value().size());
      table.Print();
      std::printf("%s\n\n",
                  replayable
                      ? "reopen would replay this batch into the images, "
                        "then discard the region."
                      : "batch is torn mid-stage; reopen replays the intact "
                        "prefix of the newest batch and discards the rest.");
    } else if (FileExists(dw_path)) {
      any_doublewrite = true;
      std::printf("doublewrite region: empty (no staged batch)\n\n");
    }
  }

  // Double-backup images. Opened with doublewrite replay disabled:
  // inspection must never apply the staged batch shown above.
  bool any_backup = FileExists(dir + "/backup0.img") ||
                    FileExists(dir + "/backup1.img");
  uint64_t best_tick = 0;
  if (any_backup) {
    auto store_or = BackupStore::Open(dir, layout, false, /*backend=*/nullptr,
                                      /*replay_doublewrite=*/false);
    TP_CHECK_OK(store_or.status());
    TablePrinter table({"backup", "status", "checkpoint #",
                        "consistent through tick", "state CRC"});
    for (int i = 0; i < 2; ++i) {
      auto info_or = store_or.value()->Inspect(i);
      if (!info_or.ok()) {
        table.AddRow({std::to_string(i), info_or.status().ToString(), "-",
                      "-", "-"});
        continue;
      }
      const ImageInfo& info = *info_or;
      if (info.valid && info.consistent_tick > best_tick) {
        best_tick = info.consistent_tick;
      }
      char crc[16];
      std::snprintf(crc, sizeof(crc), "%08x", info.state_crc);
      table.AddRow({std::to_string(i),
                    info.valid ? "VALID" : "invalid/torn",
                    info.valid ? std::to_string(info.seq) : "-",
                    info.valid ? std::to_string(info.consistent_tick) : "-",
                    info.valid && info.state_crc ? crc : "(unchecked)"});
    }
    std::printf("double-backup images\n");
    table.Print();
    std::printf("\n");
  }

  // Checkpoint-log generations.
  bool any_log = false;
  {
    auto store_or = LogStore::Open(dir, layout, false);
    TP_CHECK_OK(store_or.status());
    for (uint64_t gen = 0; gen <= store_or.value()->current_generation();
         ++gen) {
      const std::string path = dir + "/log-" + std::to_string(gen) + ".img";
      if (!FileExists(path)) continue;
      any_log = true;
      auto segments_or = store_or.value()->ListSegments(gen);
      if (!segments_or.ok()) {
        std::printf("generation %llu: %s\n",
                    static_cast<unsigned long long>(gen),
                    segments_or.status().ToString().c_str());
        continue;
      }
      TablePrinter table({"segment", "checkpoint #", "consistent tick",
                          "objects", "kind"});
      size_t index = 0;
      for (const SegmentInfo& segment : segments_or.value()) {
        if (segment.consistent_tick > best_tick) {
          best_tick = segment.consistent_tick;
        }
        table.AddRow({std::to_string(index++),
                      std::to_string(segment.seq),
                      std::to_string(segment.consistent_tick),
                      std::to_string(segment.object_count),
                      segment.full_flush ? "FULL FLUSH" : "incremental"});
      }
      std::printf("checkpoint log generation %llu (%zu intact segments)\n",
                  static_cast<unsigned long long>(gen),
                  segments_or.value().size());
      table.Print();
      std::printf("\n");
    }
  }

  // Logical log.
  const std::string logical = Engine::LogicalLogPath(dir);
  if (FileExists(logical)) {
    auto count_or = LogicalLog::CountDurableTicks(logical);
    TP_CHECK_OK(count_or.status());
    std::printf("logical log: %llu durable tick records\n",
                static_cast<unsigned long long>(count_or.value()));
    std::printf(
        "recovery would restore through tick %llu from checkpoints, then "
        "replay the logical log forward.\n",
        static_cast<unsigned long long>(best_tick));
  } else if (!any_backup && !any_log && !any_doublewrite) {
    std::printf("no tickpoint artifacts found in %s\n", dir.c_str());
    return 1;
  }
  return 0;
}
