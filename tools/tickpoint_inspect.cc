// tickpoint_inspect: operations CLI for checkpoint directories.
//
//   tickpoint_inspect --dir /var/lib/myshard [--rows N] [--cols M]
//   tickpoint_inspect --dir /var/lib/myshard --history \
//       [--max-generations N] [--max-retained-ticks T]
//
// Default mode prints the staged doublewrite region (what a reopen would
// replay or discard), the state of both double-backup images (validity,
// sequence, consistent tick), any checkpoint-log generations with their
// segments, and the logical log's durable tick range -- everything an
// operator needs to answer "what would this shard recover to right now?".
//
// --history prints the point-in-time retention state instead: the
// generation table with per-generation on-disk bytes, the archived
// logical-log segments, the retained (restorable) tick window, and what
// the next compaction pass would drop or rewrite under the given policy.
//
// Inspection is strictly read-only: the backup store is opened with
// doublewrite replay disabled and --history only ever reads the index, so
// pointing this tool at a crashed directory never changes what a later
// recovery will see.
#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "engine/checkpoint_store.h"
#include "engine/compactor.h"
#include "engine/doublewrite.h"
#include "engine/engine.h"
#include "engine/history.h"
#include "engine/logical_log.h"
#include "engine/paths.h"
#include "util/flags.h"
#include "util/table_printer.h"

using namespace tickpoint;

namespace {

bool Contains(const std::vector<uint64_t>& ids, uint64_t id) {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

/// The --history mode: generation table, retained window, compaction
/// eligibility. Read-only (ReadIndex + ComputeWindow + a pure plan).
int InspectHistory(const std::string& dir, const Flags& flags) {
  auto index_or = ShardHistory::ReadIndex(dir);
  if (index_or.status().code() == StatusCode::kNotFound) {
    std::printf("no history index under %s (retention off, or no "
                "checkpoint completed yet)\n",
                dir.c_str());
    return 1;
  }
  if (!index_or.ok()) {
    std::printf("history index is unreadable: %s\n"
                "point-in-time recovery would fall back to latest "
                "recovery; a writable reopen resets the history.\n",
                index_or.status().ToString().c_str());
    return 1;
  }
  const HistoryIndex& index = index_or.value();

  RetentionPolicy policy;
  policy.enabled = true;
  policy.max_generations = static_cast<uint64_t>(flags.GetInt64(
      "max-generations", static_cast<int64_t>(policy.max_generations)));
  policy.max_retained_ticks = static_cast<uint64_t>(
      flags.GetInt64("max-retained-ticks", 0));
  const CompactionPlan plan = PlanCompaction(index, policy);

  std::printf("history of %s (%zu generations, %zu segments, %llu bytes, "
              "%llu compactions so far)\n\n",
              dir.c_str(), index.generations.size(), index.segments.size(),
              static_cast<unsigned long long>(index.TotalBytes()),
              static_cast<unsigned long long>(index.compactions_run));

  if (!index.generations.empty()) {
    TablePrinter table({"generation", "consistent through tick", "bytes",
                        "next compaction"});
    for (const auto& gen : index.generations) {
      table.AddRow({std::to_string(gen.seq),
                    std::to_string(gen.consistent_tick),
                    std::to_string(gen.bytes),
                    Contains(plan.drop_generations, gen.seq) ? "DROP"
                                                             : "keep"});
    }
    std::printf("generations\n");
    table.Print();
    std::printf("\n");
  }
  if (!index.segments.empty()) {
    TablePrinter table({"segment", "ticks", "bytes", "next compaction"});
    for (const auto& seg : index.segments) {
      const char* fate = Contains(plan.drop_segments, seg.id) ? "DROP"
                         : Contains(plan.rewrite_segments, seg.id)
                             ? "REWRITE"
                             : "keep";
      table.AddRow({std::to_string(seg.id),
                    "[" + std::to_string(seg.first_tick) + ", " +
                        std::to_string(seg.last_tick) + "]",
                    std::to_string(seg.bytes), fate});
    }
    std::printf("archived logical-log segments\n");
    table.Print();
    std::printf("\n");
  }

  auto window_or = ShardHistory::ComputeWindow(dir, index);
  TP_CHECK_OK(window_or.status());
  if (window_or->any) {
    std::printf("restorable window: every tick in [%llu, %llu] can be "
                "reproduced exactly.\n",
                static_cast<unsigned long long>(window_or->low_tick),
                static_cast<unsigned long long>(window_or->high_tick));
  } else {
    std::printf("restorable window: none (no generation with contiguous "
                "logical coverage).\n");
  }
  if (plan.NoOp()) {
    std::printf("compaction under max-generations=%llu%s: nothing to do.\n",
                static_cast<unsigned long long>(policy.max_generations),
                policy.max_retained_ticks
                    ? (" max-retained-ticks=" +
                       std::to_string(policy.max_retained_ticks))
                          .c_str()
                    : "");
  } else {
    std::printf(
        "compaction under max-generations=%llu would drop %zu "
        "generation(s), drop %zu segment(s), rewrite %zu segment(s); the "
        "window base moves to tick %llu.\n",
        static_cast<unsigned long long>(policy.max_generations),
        plan.drop_generations.size(), plan.drop_segments.size(),
        plan.rewrite_segments.size(),
        static_cast<unsigned long long>(plan.window_base));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  TP_CHECK_OK(flags.Parse(argc, argv));
  const std::string dir = flags.GetString("dir", "");
  if (dir.empty() || flags.help_requested()) {
    std::fprintf(stderr,
                 "usage: tickpoint_inspect --dir <checkpoint dir> "
                 "[--rows N] [--cols M] [--object-size B]\n"
                 "       tickpoint_inspect --dir <checkpoint dir> --history "
                 "[--max-generations N] [--max-retained-ticks T]\n");
    return 2;
  }
  if (flags.GetBool("history", false)) {
    return InspectHistory(dir, flags);
  }
  StateLayout layout;
  layout.rows = static_cast<uint64_t>(flags.GetInt64("rows", 1000000));
  layout.cols = static_cast<uint64_t>(flags.GetInt64("cols", 10));
  layout.object_size =
      static_cast<uint64_t>(flags.GetInt64("object-size", 512));
  TP_CHECK(layout.Valid());

  std::printf("inspecting %s (assumed layout: %llu x %llu cells, %llu-byte "
              "objects)\n\n",
              dir.c_str(), static_cast<unsigned long long>(layout.rows),
              static_cast<unsigned long long>(layout.cols),
              static_cast<unsigned long long>(layout.object_size));

  // Staged doublewrite region. Scanned directly from disk -- before and
  // independently of any store open -- so a torn batch is shown exactly as
  // recovery will find it.
  const std::string dw_path = paths::DoublewritePath(dir);
  bool any_doublewrite = false;
  {
    auto chunks_or = DoublewriteRegion::Scan(dw_path);
    TP_CHECK_OK(chunks_or.status());
    if (!chunks_or.value().empty()) {
      any_doublewrite = true;
      const uint64_t batch_seq = chunks_or.value().front().batch_seq;
      TablePrinter table({"chunk", "batch #", "target image", "target offset",
                          "bytes", "payload"});
      size_t index = 0;
      bool replayable = true;
      for (const DoublewriteRegion::Chunk& chunk : chunks_or.value()) {
        if (chunk.batch_seq != batch_seq || !chunk.payload_intact) {
          replayable = false;
        }
        table.AddRow({std::to_string(index++),
                      std::to_string(chunk.batch_seq),
                      std::to_string(chunk.target_image),
                      std::to_string(chunk.target_offset),
                      std::to_string(chunk.length),
                      chunk.payload_intact ? "intact" : "TORN"});
      }
      std::printf("doublewrite region (%zu staged chunks)\n",
                  chunks_or.value().size());
      table.Print();
      std::printf("%s\n\n",
                  replayable
                      ? "reopen would replay this batch into the images, "
                        "then discard the region."
                      : "batch is torn mid-stage; reopen replays the intact "
                        "prefix of the newest batch and discards the rest.");
    } else if (FileExists(dw_path)) {
      any_doublewrite = true;
      std::printf("doublewrite region: empty (no staged batch)\n\n");
    }
  }

  // Double-backup images. Opened with doublewrite replay disabled:
  // inspection must never apply the staged batch shown above.
  bool any_backup = FileExists(dir + "/backup0.img") ||
                    FileExists(dir + "/backup1.img");
  uint64_t best_tick = 0;
  if (any_backup) {
    auto store_or = BackupStore::Open(dir, layout, false, /*backend=*/nullptr,
                                      /*replay_doublewrite=*/false);
    TP_CHECK_OK(store_or.status());
    TablePrinter table({"backup", "status", "checkpoint #",
                        "consistent through tick", "state CRC"});
    for (int i = 0; i < 2; ++i) {
      auto info_or = store_or.value()->Inspect(i);
      if (!info_or.ok()) {
        table.AddRow({std::to_string(i), info_or.status().ToString(), "-",
                      "-", "-"});
        continue;
      }
      const ImageInfo& info = *info_or;
      if (info.valid && info.consistent_tick > best_tick) {
        best_tick = info.consistent_tick;
      }
      char crc[16];
      std::snprintf(crc, sizeof(crc), "%08x", info.state_crc);
      table.AddRow({std::to_string(i),
                    info.valid ? "VALID" : "invalid/torn",
                    info.valid ? std::to_string(info.seq) : "-",
                    info.valid ? std::to_string(info.consistent_tick) : "-",
                    info.valid && info.state_crc ? crc : "(unchecked)"});
    }
    std::printf("double-backup images\n");
    table.Print();
    std::printf("\n");
  }

  // Checkpoint-log generations.
  bool any_log = false;
  {
    auto store_or = LogStore::Open(dir, layout, false);
    TP_CHECK_OK(store_or.status());
    for (uint64_t gen = 0; gen <= store_or.value()->current_generation();
         ++gen) {
      const std::string path = dir + "/log-" + std::to_string(gen) + ".img";
      if (!FileExists(path)) continue;
      any_log = true;
      auto segments_or = store_or.value()->ListSegments(gen);
      if (!segments_or.ok()) {
        std::printf("generation %llu: %s\n",
                    static_cast<unsigned long long>(gen),
                    segments_or.status().ToString().c_str());
        continue;
      }
      TablePrinter table({"segment", "checkpoint #", "consistent tick",
                          "objects", "kind"});
      size_t index = 0;
      for (const SegmentInfo& segment : segments_or.value()) {
        if (segment.consistent_tick > best_tick) {
          best_tick = segment.consistent_tick;
        }
        table.AddRow({std::to_string(index++),
                      std::to_string(segment.seq),
                      std::to_string(segment.consistent_tick),
                      std::to_string(segment.object_count),
                      segment.full_flush ? "FULL FLUSH" : "incremental"});
      }
      std::printf("checkpoint log generation %llu (%zu intact segments)\n",
                  static_cast<unsigned long long>(gen),
                  segments_or.value().size());
      table.Print();
      std::printf("\n");
    }
  }

  // Logical log.
  const std::string logical = Engine::LogicalLogPath(dir);
  if (FileExists(logical)) {
    auto count_or = LogicalLog::CountDurableTicks(logical);
    TP_CHECK_OK(count_or.status());
    std::printf("logical log: %llu durable tick records\n",
                static_cast<unsigned long long>(count_or.value()));
    std::printf(
        "recovery would restore through tick %llu from checkpoints, then "
        "replay the logical log forward.\n",
        static_cast<unsigned long long>(best_tick));
  } else if (!any_backup && !any_log && !any_doublewrite) {
    std::printf("no tickpoint artifacts found in %s\n", dir.c_str());
    return 1;
  }
  return 0;
}
