#include "sim/simulator.h"

namespace tickpoint {

LockstepSimulator::LockstepSimulator(const SimulationOptions& options,
                                     const std::vector<AlgorithmKind>& kinds,
                                     const StateLayout& layout)
    : options_(options), layout_(layout) {
  TP_CHECK(!kinds.empty());
  sims_.reserve(kinds.size());
  for (AlgorithmKind kind : kinds) {
    sims_.push_back(std::make_unique<CheckpointSim>(kind, layout, options.hw,
                                                    options.params));
  }
}

void LockstepSimulator::Run(UpdateSource* source) {
  TP_CHECK(!ran_);
  ran_ = true;
  TP_CHECK(source->layout().num_objects() == layout_.num_objects());
  source->Reset();

  std::vector<TraceCell> cells;
  std::vector<ObjectId> objects;
  uint64_t ticks = 0;
  while (ticks < options_.max_ticks && source->NextTick(&cells)) {
    ++ticks;
    objects.resize(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      objects[i] = layout_.ObjectOfCell(cells[i]);
    }
    for (auto& sim : sims_) {
      sim->BeginTick();
      for (ObjectId object : objects) {
        sim->OnObjectUpdate(object);
      }
      sim->EndTick();
    }
  }
}

std::vector<AlgorithmRunResult> LockstepSimulator::Results() const {
  std::vector<AlgorithmRunResult> results;
  results.reserve(sims_.size());
  for (const auto& sim : sims_) {
    AlgorithmRunResult result;
    result.kind = sim->kind();
    result.metrics = sim->metrics();
    result.recovery =
        EstimateRecovery(sim->traits(), result.metrics, layout_, sim->cost(),
                         options_.params);
    result.avg_overhead_seconds = result.metrics.AvgOverheadSeconds();
    result.avg_checkpoint_seconds = result.metrics.AvgCheckpointSeconds();
    result.recovery_seconds = result.recovery.total_seconds();
    result.sim_seconds = sim->now();
    result.ticks = sim->current_tick();
    results.push_back(std::move(result));
  }
  return results;
}

std::vector<AlgorithmRunResult> RunSimulation(
    const SimulationOptions& options, const std::vector<AlgorithmKind>& kinds,
    UpdateSource* source) {
  LockstepSimulator simulator(options, kinds, source->layout());
  simulator.Run(source);
  return simulator.Results();
}

}  // namespace tickpoint
