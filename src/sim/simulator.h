// Experiment driver: runs one or more checkpoint algorithms in lockstep over
// a single update source and reports the paper's three metrics (overhead
// time, time to checkpoint, recovery time).
//
// Lockstep execution matters for performance: trace generation (Zipf draws)
// is done once per tick and shared by all algorithms, which is what makes
// the full Figure 2 sweep (3 billion update events across six algorithms)
// tractable.
#ifndef TICKPOINT_SIM_SIMULATOR_H_
#define TICKPOINT_SIM_SIMULATOR_H_

#include <memory>
#include <vector>

#include "core/recovery_model.h"
#include "core/sim_executor.h"
#include "trace/source.h"

namespace tickpoint {

/// Options shared by all algorithms in a run.
struct SimulationOptions {
  HardwareParams hw = HardwareParams::Paper();
  SimParams params;
  /// Cap on the number of ticks consumed from the source.
  uint64_t max_ticks = UINT64_MAX;
};

/// Results of one algorithm's run.
struct AlgorithmRunResult {
  AlgorithmKind kind;
  SimMetrics metrics;
  RecoveryEstimate recovery;

  double avg_overhead_seconds = 0.0;
  double avg_checkpoint_seconds = 0.0;
  double recovery_seconds = 0.0;
  /// Total simulated wall time of the run.
  double sim_seconds = 0.0;
  uint64_t ticks = 0;
};

/// Runs several CheckpointSim instances over the same trace.
class LockstepSimulator {
 public:
  LockstepSimulator(const SimulationOptions& options,
                    const std::vector<AlgorithmKind>& kinds,
                    const StateLayout& layout);

  /// Feeds every tick of `source` (up to max_ticks) to all algorithms.
  /// Resets the source first. Can be called once per simulator.
  void Run(UpdateSource* source);

  /// Per-algorithm results (same order as the constructor's `kinds`).
  std::vector<AlgorithmRunResult> Results() const;

  /// Direct access for tests.
  CheckpointSim* sim(size_t index) { return sims_[index].get(); }
  size_t num_sims() const { return sims_.size(); }

 private:
  SimulationOptions options_;
  StateLayout layout_;
  std::vector<std::unique_ptr<CheckpointSim>> sims_;
  bool ran_ = false;
};

/// One-shot convenience: construct, run, return results.
std::vector<AlgorithmRunResult> RunSimulation(
    const SimulationOptions& options, const std::vector<AlgorithmKind>& kinds,
    UpdateSource* source);

}  // namespace tickpoint

#endif  // TICKPOINT_SIM_SIMULATOR_H_
