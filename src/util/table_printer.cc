#include "util/table_printer.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace tickpoint {

void TablePrinter::AddRow(std::vector<std::string> row) {
  TP_CHECK(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Seconds(double seconds) {
  char buf[64];
  const double abs = std::fabs(seconds);
  if (abs >= 1.0 || abs == 0.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (abs >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else if (abs >= 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.3f us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
  }
  return buf;
}

std::string TablePrinter::Bytes(double bytes) {
  char buf[64];
  if (bytes >= 1073741824.0) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", bytes / 1073741824.0);
  } else if (bytes >= 1048576.0) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / 1048576.0);
  } else if (bytes >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "" : "  ",
                   static_cast<int>(widths[c]), row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(headers_);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    if (c) rule += "  ";
    rule += std::string(widths[c], '-');
  }
  std::fprintf(out, "%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%s", c == 0 ? "" : ",", row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace tickpoint
