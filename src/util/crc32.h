// CRC-32 (IEEE 802.3 polynomial, table-driven). Used to checksum checkpoint
// file headers and to digest state tables in correctness tests.
#ifndef TICKPOINT_UTIL_CRC32_H_
#define TICKPOINT_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace tickpoint {

/// Incremental CRC-32: pass the previous value to chain buffers.
/// Crc32(data, len) == Crc32(data + k, len - k, Crc32(data, k)).
uint32_t Crc32(const void* data, size_t length, uint32_t initial = 0);

}  // namespace tickpoint

#endif  // TICKPOINT_UTIL_CRC32_H_
