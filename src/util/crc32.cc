#include "util/crc32.h"

#include <array>

namespace tickpoint {
namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPolynomial : 0);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t length, uint32_t initial) {
  const auto& table = Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = ~initial;
  for (size_t i = 0; i < length; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFF];
  }
  return ~crc;
}

}  // namespace tickpoint
