// Sample collections for latency analysis: exact-percentile sample buffers
// (tick counts are small enough to keep every sample) and streaming moments.
#ifndef TICKPOINT_UTIL_HISTOGRAM_H_
#define TICKPOINT_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tickpoint {

/// Streaming mean / min / max / variance (Welford).
class RunningStat {
 public:
  void Add(double x);

  uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Keeps all samples; supports exact percentiles. Suitable for per-tick
/// series (1e3..1e6 samples), not for per-update measurements.
class SampleSeries {
 public:
  void Add(double x) { samples_.push_back(x); }
  void Reserve(size_t n) { samples_.reserve(n); }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const std::vector<double>& samples() const { return samples_; }

  double Mean() const;
  double Min() const;
  double Max() const;
  /// Exact percentile by nearest-rank, p in [0, 100].
  double Percentile(double p) const;
  double Sum() const;

 private:
  std::vector<double> samples_;
};

}  // namespace tickpoint

#endif  // TICKPOINT_UTIL_HISTOGRAM_H_
