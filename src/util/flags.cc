#include "util/flags.h"

#include <cstdlib>

namespace tickpoint {

Status Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      help_requested_ = true;
      continue;
    }
    if (token.rfind("--", 0) != 0 || token.size() <= 2) {
      return Status::InvalidArgument("unexpected argument: " + token);
    }
    token = token.substr(2);
    const size_t eq = token.find('=');
    if (eq != std::string::npos) {
      values_[token.substr(0, eq)] = token.substr(eq + 1);
      continue;
    }
    // --key value, unless the next token is another flag (then bool true).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[token] = argv[++i];
    } else {
      values_[token] = "true";
    }
  }
  return Status::OK();
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  used_[key] = true;
  const auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt64(const std::string& key, int64_t default_value) const {
  used_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  used_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& key, bool default_value) const {
  used_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> Flags::UnusedKeys() const {
  std::vector<std::string> unused;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (!used_.count(key)) unused.push_back(key);
  }
  return unused;
}

}  // namespace tickpoint
