#include "util/zipf.h"

#include <cmath>

#include "util/status.h"

namespace tickpoint {

double ZipfGenerator::ZetaStatic(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  TP_CHECK(n >= 1);
  TP_CHECK(theta >= 0.0 && theta < 1.0);
  zetan_ = ZetaStatic(n, theta);
  alpha_ = 1.0 / (1.0 - theta);
  const double zeta2 = ZetaStatic(n >= 2 ? 2 : 1, theta);
  if (n >= 2) {
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2 / zetan_);
  } else {
    eta_ = 1.0;
  }
  half_pow_theta_ = std::pow(0.5, theta);
}

uint64_t ZipfGenerator::Next(Rng* rng) const {
  if (n_ == 1) return 0;
  const double u = rng->NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + half_pow_theta_) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  // Guard against floating point landing exactly on n.
  return rank >= n_ ? n_ - 1 : rank;
}

double ZipfGenerator::Probability(uint64_t rank) const {
  TP_CHECK(rank < n_);
  return 1.0 / (std::pow(static_cast<double>(rank + 1), theta_) * zetan_);
}

}  // namespace tickpoint
