#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace tickpoint {

void RunningStat::Add(double x) {
  ++count_;
  sum_ += x;
  if (count_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double SampleSeries::Mean() const {
  if (samples_.empty()) return 0.0;
  return Sum() / static_cast<double>(samples_.size());
}

double SampleSeries::Sum() const {
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum;
}

double SampleSeries::Min() const {
  TP_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSeries::Max() const {
  TP_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleSeries::Percentile(double p) const {
  TP_CHECK(!samples_.empty());
  TP_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

}  // namespace tickpoint
