// Zipfian rank sampler after Gray et al., "Quickly Generating Billion-Record
// Synthetic Databases" (SIGMOD'94) -- the generator the paper cites as [10]
// for its synthetic update traces.
#ifndef TICKPOINT_UTIL_ZIPF_H_
#define TICKPOINT_UTIL_ZIPF_H_

#include <cstdint>

#include "util/random.h"

namespace tickpoint {

/// Samples ranks in [0, n) with frequency proportional to 1/(rank+1)^theta.
/// theta = 0 degenerates to the uniform distribution; theta -> 1 concentrates
/// probability mass on a few hot ranks. Rank 0 is the hottest item.
class ZipfGenerator {
 public:
  /// Precomputes the normalization constants (O(n) once).
  /// Preconditions: n >= 1, 0 <= theta < 1.
  ZipfGenerator(uint64_t n, double theta);

  /// Draws one rank in [0, n) using the supplied RNG.
  uint64_t Next(Rng* rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  /// Probability of rank r under this distribution (for tests).
  double Probability(uint64_t rank) const;

 private:
  static double ZetaStatic(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double zetan_;   // generalized harmonic number H_{n,theta}
  double alpha_;   // 1 / (1 - theta)
  double eta_;
  double half_pow_theta_;  // 0.5^theta
};

}  // namespace tickpoint

#endif  // TICKPOINT_UTIL_ZIPF_H_
