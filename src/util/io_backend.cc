#include "util/io_backend.h"

#include <fcntl.h>
#include <unistd.h>

#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

// Defined by the build system only when BOTH liburing's header and its
// library were found (header-only presence would compile but fail to link).
#ifdef TICKPOINT_HAVE_LIBURING
#include <liburing.h>
#endif

namespace tickpoint {

const char* IoBackendKindName(IoBackendKind kind) {
  switch (kind) {
    case IoBackendKind::kSync:
      return "sync";
    case IoBackendKind::kAsync:
      return "async";
  }
  return "unknown";
}

StatusOr<IoBackendKind> ParseIoBackendKind(const std::string& name) {
  if (name == "sync") return IoBackendKind::kSync;
  if (name == "async") return IoBackendKind::kAsync;
  return Status::InvalidArgument("unknown io backend: " + name);
}

IoBackendKind DefaultIoBackendKind() {
  static const IoBackendKind kind = [] {
    const char* env = std::getenv("TP_IO_BACKEND");
    if (env != nullptr) {
      auto parsed = ParseIoBackendKind(env);
      if (parsed.ok()) return parsed.value();
    }
    return IoBackendKind::kSync;
  }();
  return kind;
}

IoFile::~IoFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status IoFile::OpenForUpdate(const std::string& path) {
  TP_RETURN_NOT_OK(Close());
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    return Status::IOError("open failed: " + path + ": " +
                           std::strerror(errno));
  }
  path_ = path;
  return Status::OK();
}

Status IoFile::WriteAt(uint64_t offset, const void* data, uint64_t length) {
  if (!is_open()) return Status::FailedPrecondition("file not open");
  const uint8_t* cursor = static_cast<const uint8_t*>(data);
  uint64_t remaining = length;
  while (remaining > 0) {
    const ssize_t written =
        ::pwrite(fd_, cursor, remaining, static_cast<off_t>(offset));
    if (written < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite failed: " + path_ + ": " +
                             std::strerror(errno));
    }
    cursor += written;
    offset += static_cast<uint64_t>(written);
    remaining -= static_cast<uint64_t>(written);
  }
  return Status::OK();
}

Status IoFile::Sync() {
  if (!is_open()) return Status::FailedPrecondition("file not open");
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync failed: " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status IoFile::Truncate(uint64_t length) {
  if (!is_open()) return Status::FailedPrecondition("file not open");
  if (::ftruncate(fd_, static_cast<off_t>(length)) != 0) {
    return Status::IOError("ftruncate failed: " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status IoFile::Close() {
  if (!is_open()) return Status::OK();
  const int rc = ::close(fd_);
  fd_ = -1;
  if (rc != 0) {
    return Status::IOError("close failed: " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

namespace {

/// Submit == complete: the write happens on the submitting thread. This is
/// the crash-sweep baseline -- every byte a test observes on disk was
/// written before the submitting call returned, exactly like the
/// pre-pipeline stores.
class SyncIoBackend : public IoBackend {
 public:
  IoBackendKind kind() const override { return IoBackendKind::kSync; }

  IoTicket SubmitWrite(IoFile* file, uint64_t offset, const void* data,
                       uint64_t length) override {
    if (first_error_.ok()) {
      const Status status = file->WriteAt(offset, data, length);
      if (!status.ok()) first_error_ = status;
    }
    return ++submitted_;
  }

  Status WaitFor(IoTicket) override { return first_error_; }
  Status Drain() override { return first_error_; }

 private:
  IoTicket submitted_ = 0;
  Status first_error_;
};

/// One writer thread draining a bounded request deque. Completions happen
/// in submission order, so the completed-count doubles as the frontier.
/// After the sticky first error the worker stops touching the disk but
/// keeps advancing the frontier, so waiters terminate and see the error.
class ThreadIoBackend : public IoBackend {
 public:
  explicit ThreadIoBackend(uint32_t max_in_flight)
      : max_in_flight_(max_in_flight > 0 ? max_in_flight : 1),
        worker_([this] { WorkerMain(); }) {}

  ~ThreadIoBackend() override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      exit_ = true;
    }
    cv_worker_.notify_one();
    worker_.join();
  }

  IoBackendKind kind() const override { return IoBackendKind::kAsync; }

  IoTicket SubmitWrite(IoFile* file, uint64_t offset, const void* data,
                       uint64_t length) override {
    std::unique_lock<std::mutex> lock(mu_);
    cv_submitter_.wait(
        lock, [this] { return submitted_ - completed_ < max_in_flight_; });
    queue_.push_back(Request{file, offset, data, length});
    const IoTicket ticket = ++submitted_;
    cv_worker_.notify_one();
    return ticket;
  }

  Status WaitFor(IoTicket ticket) override {
    std::unique_lock<std::mutex> lock(mu_);
    cv_submitter_.wait(lock, [&] { return completed_ >= ticket; });
    return first_error_;
  }

  Status Drain() override {
    std::unique_lock<std::mutex> lock(mu_);
    cv_submitter_.wait(lock, [this] { return completed_ >= submitted_; });
    return first_error_;
  }

 private:
  struct Request {
    IoFile* file;
    uint64_t offset;
    const void* data;
    uint64_t length;
  };

  void WorkerMain() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_worker_.wait(lock, [this] { return !queue_.empty() || exit_; });
      if (queue_.empty() && exit_) return;
      const Request request = queue_.front();
      queue_.pop_front();
      Status status;
      if (first_error_.ok()) {
        // The pwrite runs unlocked: submitters must be able to queue (and
        // waiters to park) while the disk is busy.
        lock.unlock();
        status = request.file->WriteAt(request.offset, request.data,
                                       request.length);
        lock.lock();
      }
      if (first_error_.ok() && !status.ok()) first_error_ = status;
      ++completed_;
      cv_submitter_.notify_all();
    }
  }

  const uint64_t max_in_flight_;
  std::mutex mu_;
  std::condition_variable cv_worker_;
  std::condition_variable cv_submitter_;
  std::deque<Request> queue_;
  uint64_t submitted_ = 0;  // guarded by mu_
  uint64_t completed_ = 0;  // guarded by mu_
  Status first_error_;      // guarded by mu_
  bool exit_ = false;       // guarded by mu_
  std::thread worker_;
};

#ifdef TICKPOINT_HAVE_LIBURING

/// Kernel-submitted writes through io_uring. CQEs may complete out of
/// submission order, so the frontier is conservative: WaitFor reaps until
/// the count of completions covers the ticket, which (with dense tickets)
/// guarantees at least every earlier submission has completed once the
/// queue is drained to that depth; the stores only wait at full barriers
/// (seal/apply), where count == submitted implies all writes are done.
class UringIoBackend : public IoBackend {
 public:
  explicit UringIoBackend(uint32_t max_in_flight)
      : max_in_flight_(max_in_flight > 0 ? max_in_flight : 1) {
    ring_ok_ = io_uring_queue_init(max_in_flight_, &ring_, 0) == 0;
  }

  ~UringIoBackend() override {
    Drain();
    if (ring_ok_) io_uring_queue_exit(&ring_);
  }

  IoBackendKind kind() const override { return IoBackendKind::kAsync; }

  IoTicket SubmitWrite(IoFile* file, uint64_t offset, const void* data,
                       uint64_t length) override {
    if (!ring_ok_) {
      if (first_error_.ok()) {
        first_error_ = Status::IOError("io_uring_queue_init failed");
      }
      return ++submitted_;
    }
    while (submitted_ - completed_ >= max_in_flight_) ReapOne(/*wait=*/true);
    struct io_uring_sqe* sqe = io_uring_get_sqe(&ring_);
    while (sqe == nullptr) {
      ReapOne(/*wait=*/true);
      sqe = io_uring_get_sqe(&ring_);
    }
    io_uring_prep_write(sqe, file->fd(), data, static_cast<unsigned>(length),
                        offset);
    io_uring_submit(&ring_);
    return ++submitted_;
  }

  Status WaitFor(IoTicket ticket) override {
    while (ring_ok_ && completed_ < ticket && completed_ < submitted_) {
      ReapOne(/*wait=*/true);
    }
    return first_error_;
  }

  Status Drain() override { return WaitFor(submitted_); }

 private:
  void ReapOne(bool wait) {
    struct io_uring_cqe* cqe = nullptr;
    const int rc = wait ? io_uring_wait_cqe(&ring_, &cqe)
                        : io_uring_peek_cqe(&ring_, &cqe);
    if (rc != 0 || cqe == nullptr) return;
    if (cqe->res < 0 && first_error_.ok()) {
      first_error_ =
          Status::IOError(std::string("io_uring write failed: ") +
                          std::strerror(-cqe->res));
    }
    io_uring_cqe_seen(&ring_, cqe);
    ++completed_;
  }

  const uint64_t max_in_flight_;
  struct io_uring ring_;
  bool ring_ok_ = false;
  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
  Status first_error_;
};

#endif  // TICKPOINT_HAVE_LIBURING

}  // namespace

std::unique_ptr<IoBackend> IoBackend::Create(IoBackendKind kind,
                                             uint32_t max_in_flight) {
  if (kind == IoBackendKind::kSync) {
    return std::make_unique<SyncIoBackend>();
  }
#ifdef TICKPOINT_HAVE_LIBURING
  return std::make_unique<UringIoBackend>(max_in_flight);
#else
  return std::make_unique<ThreadIoBackend>(max_in_flight);
#endif
}

}  // namespace tickpoint
