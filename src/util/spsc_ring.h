// Lock-free bounded single-producer/single-consumer ring.
//
// The ShardRunner mailbox: exactly one producer thread (the fleet facade)
// pushes and exactly one consumer thread (the shard's mutator) pops, so
// the full synchronization cost is two atomic indices.
//
// Memory-order argument (the whole correctness story):
//
//   - `tail_` counts pushes and is written only by the producer; `head_`
//     counts pops and is written only by the consumer. Both increase
//     monotonically; the occupied slots are [head_, tail_), so
//     full == (tail_ - head_ == capacity) and empty == (head_ == tail_).
//   - The producer writes the element into its slot, THEN store-releases
//     `tail_`. The consumer load-acquires `tail_` before reading the slot:
//     the release/acquire pair makes the element write happen-before the
//     element read, so the payload itself needs no atomics.
//   - Symmetrically the consumer moves the element out, THEN
//     store-releases `head_`; the producer load-acquires `head_` before
//     reusing the slot, so reuse happens-after the move-out.
//   - Each side loads its OWN index relaxed (it is the only writer of it).
//
// Cached indices: the producer keeps a stale copy of `head_`
// (`cached_head_`) and only refreshes it from the shared atomic when the
// ring looks full; the consumer mirrors this with `cached_tail_`. In the
// steady state each side therefore touches the other's cache line only
// once per wrap instead of once per operation, which is where the
// mutex+cv mailbox burned its time at high shard counts.
//
// TryPush/TryPop never block; callers that need backpressure (SubmitTick
// on a full mailbox) or a barrier (Drain) spin with backoff at their
// level. TP_SCHED_FUZZ_POINT() marks the interleaving windows for the
// schedule-perturbing stress harness (util/sched_fuzz.h).
#ifndef TICKPOINT_UTIL_SPSC_RING_H_
#define TICKPOINT_UTIL_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/sched_fuzz.h"
#include "util/status.h"

namespace tickpoint {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t capacity) : capacity_(capacity), slots_(capacity) {
    TP_CHECK(capacity_ > 0);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return capacity_; }

  /// Producer only. Moves `item` into the ring and returns true, or
  /// returns false (leaving `item` untouched) when the ring is full.
  bool TryPush(T&& item) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ == capacity_) {
      TP_SCHED_FUZZ_POINT();
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ == capacity_) return false;
    }
    slots_[tail % capacity_] = std::move(item);
    TP_SCHED_FUZZ_POINT();
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer only. Moves the oldest element into `*out` and returns
  /// true, or returns false when the ring is empty.
  bool TryPop(T* out) {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      TP_SCHED_FUZZ_POINT();
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    *out = std::move(slots_[head % capacity_]);
    TP_SCHED_FUZZ_POINT();
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// True when the consumer has caught up with every push. Callable from
  /// either thread; exact on the calling side's own index, conservative
  /// on the other's.
  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  const size_t capacity_;
  std::vector<T> slots_;

  // Each hot index lives on its own cache line, with the owner's cached
  // copy of the opposing index alongside it (same owner, so no sharing).
  alignas(64) std::atomic<size_t> tail_{0};  // producer-owned: push count
  size_t cached_head_ = 0;                   // producer's stale view of head_
  alignas(64) std::atomic<size_t> head_{0};  // consumer-owned: pop count
  size_t cached_tail_ = 0;                   // consumer's stale view of tail_
};

}  // namespace tickpoint

#endif  // TICKPOINT_UTIL_SPSC_RING_H_
