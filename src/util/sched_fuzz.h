// Schedule-perturbing stress hooks for the lock-free hot path.
//
// Weakened memory orders are only as good as their exercise: a ring that
// happens to work under the scheduler's habitual interleavings can still
// hide an ordering bug that only a rare preemption exposes. TP_SCHED_FUZZ
// points mark the interesting interleaving windows (between a load of the
// opposing index and the commit of an element, between an ack publish and
// its fold, ...); when fuzzing is enabled each visit randomly yields or
// spins there, forcing the thread schedule through states production
// timing rarely reaches.
//
// Seeding follows the repo's fuzzer convention (TP_FLEET_FUZZ_SEED,
// TP_GAME_FUZZ_SEED): set TP_SCHED_FUZZ_SEED=<u64> in the environment to
// enable perturbation process-wide with a replayable seed, or call
// SchedFuzz::Enable(seed) from a test. Each thread derives its own
// SplitMix64 stream from the seed and a per-thread ordinal, so a given
// seed replays the same decision sequence per thread.
//
// When disabled (the default), a fuzz point is one relaxed atomic load.
#ifndef TICKPOINT_UTIL_SCHED_FUZZ_H_
#define TICKPOINT_UTIL_SCHED_FUZZ_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <thread>

namespace tickpoint {

class SchedFuzz {
 public:
  /// Programmatic enable (tests); TP_SCHED_FUZZ_SEED does the same from
  /// the environment without recompiling the binary under test.
  static void Enable(uint64_t seed) {
    state().seed.store(seed, std::memory_order_relaxed);
    state().enabled.store(true, std::memory_order_release);
  }
  static void Disable() {
    state().enabled.store(false, std::memory_order_release);
  }
  static bool enabled() {
    return state().enabled.load(std::memory_order_relaxed);
  }
  static uint64_t seed() {
    return state().seed.load(std::memory_order_relaxed);
  }

  /// A marked interleaving point. Near-free when fuzzing is off.
  static void Perturb() {
    if (enabled()) PerturbSlow();
  }

 private:
  struct State {
    std::atomic<bool> enabled{false};
    std::atomic<uint64_t> seed{0};
    std::atomic<uint64_t> next_thread_ordinal{0};
    State() {
      if (const char* env = std::getenv("TP_SCHED_FUZZ_SEED")) {
        char* end = nullptr;
        const uint64_t parsed = std::strtoull(env, &end, 10);
        if (end != env && *end == '\0') {
          seed.store(parsed, std::memory_order_relaxed);
          enabled.store(true, std::memory_order_relaxed);
        }
      }
    }
  };
  static State& state() {
    static State instance;
    return instance;
  }

  static uint64_t SplitMix64Next(uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static void PerturbSlow() {
    // Per-thread stream: seed + ordinal keeps replays deterministic per
    // thread even though thread start order may vary.
    thread_local uint64_t rng_state = [] {
      uint64_t mix =
          state().seed.load(std::memory_order_relaxed) +
          0x9e3779b97f4a7c15ULL *
              (1 + state().next_thread_ordinal.fetch_add(
                       1, std::memory_order_relaxed));
      return SplitMix64Next(mix);
    }();
    const uint64_t r = SplitMix64Next(rng_state);
    // Mostly pass through untouched; occasionally yield the timeslice or
    // burn a short random spin, so perturbed and unperturbed visits
    // interleave.
    switch (r & 7) {
      case 0:
        std::this_thread::yield();
        break;
      case 1: {
        const int spins = static_cast<int>((r >> 3) & 1023);
        volatile int sink = 0;
        for (int i = 0; i < spins; ++i) {
          const int keep = sink;  // volatile load: the spin cannot fold away
          static_cast<void>(keep);
        }
        break;
      }
      default:
        break;
    }
  }
};

}  // namespace tickpoint

/// Marks an interleaving point in lock-free code.
#define TP_SCHED_FUZZ_POINT() ::tickpoint::SchedFuzz::Perturb()

#endif  // TICKPOINT_UTIL_SCHED_FUZZ_H_
