// Bit-vector utilities used for dirty-object tracking.
//
// The checkpointing algorithms need three flavors of per-object flags:
//  - BitVector: a plain packed bit array (one bit per atomic object),
//  - InvertibleBitVector: a bit array whose "set" interpretation can be
//    flipped in O(1). This is the trick the paper attributes to Pu [24]: a
//    Dribble checkpoint sets the bit of every object exactly once, so instead
//    of clearing all bits for the next checkpoint we invert what "set" means.
//  - EpochVector: a per-object epoch stamp giving O(1) bulk clear without the
//    every-bit-touched invariant (used by write-set tracking where only a
//    subset of the bits are ever set within one checkpoint).
#ifndef TICKPOINT_UTIL_BITVEC_H_
#define TICKPOINT_UTIL_BITVEC_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace tickpoint {

/// Packed bit array with word-at-a-time fill.
class BitVector {
 public:
  BitVector() : size_(0) {}
  explicit BitVector(uint64_t size, bool value = false) { Resize(size, value); }

  void Resize(uint64_t size, bool value = false) {
    size_ = size;
    words_.assign((size + 63) / 64, value ? ~uint64_t{0} : 0);
    ClearPadding();
  }

  uint64_t size() const { return size_; }

  bool Get(uint64_t i) const {
    TP_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Set(uint64_t i) {
    TP_DCHECK(i < size_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }

  void Clear(uint64_t i) {
    TP_DCHECK(i < size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  void Assign(uint64_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  /// Sets every bit to `value`. O(size/64).
  void Fill(bool value) {
    for (auto& w : words_) w = value ? ~uint64_t{0} : 0;
    ClearPadding();
  }

  /// Number of set bits. O(size/64).
  uint64_t CountSet() const {
    uint64_t count = 0;
    for (uint64_t w : words_) count += static_cast<uint64_t>(__builtin_popcountll(w));
    return count;
  }

  /// First set bit at index >= from, or size() if none.
  uint64_t FindNextSet(uint64_t from) const {
    if (from >= size_) return size_;
    uint64_t word_idx = from >> 6;
    uint64_t word = words_[word_idx] & (~uint64_t{0} << (from & 63));
    while (true) {
      if (word != 0) {
        const uint64_t bit =
            (word_idx << 6) + static_cast<uint64_t>(__builtin_ctzll(word));
        return bit < size_ ? bit : size_;
      }
      if (++word_idx >= words_.size()) return size_;
      word = words_[word_idx];
    }
  }

 private:
  void ClearPadding() {
    if (size_ & 63) {
      words_.back() &= (~uint64_t{0}) >> (64 - (size_ & 63));
    }
  }

  uint64_t size_;
  std::vector<uint64_t> words_;
};

/// Bit array with O(1) "clear all" by flipping the interpretation of set.
/// Usable only when every bit is driven to the set interpretation before the
/// flip (the Dribble-and-Copy-on-Update invariant: each object is flushed or
/// copied exactly once per checkpoint).
class InvertibleBitVector {
 public:
  explicit InvertibleBitVector(uint64_t size)
      : bits_(size, false), set_meaning_(true) {}

  uint64_t size() const { return bits_.size(); }

  bool Get(uint64_t i) const { return bits_.Get(i) == set_meaning_; }

  void Set(uint64_t i) { bits_.Assign(i, set_meaning_); }

  /// Flips the interpretation: every currently-set bit becomes clear. O(1).
  /// Precondition (checked in debug builds): all bits are currently set.
  void InvertInterpretation() {
    TP_DCHECK(bits_.CountSet() == (set_meaning_ ? size() : 0));
    set_meaning_ = !set_meaning_;
  }

  /// True when every bit is set (ready for InvertInterpretation).
  bool AllSet() const {
    return bits_.CountSet() == (set_meaning_ ? size() : 0);
  }

 private:
  BitVector bits_;
  bool set_meaning_;
};

/// Per-object epoch stamps: Get(i) is true iff Set(i) happened since the last
/// ClearAll(). ClearAll is O(1) (epoch bump) until the 32-bit epoch wraps,
/// which triggers one O(n) rewrite every ~4e9 clears.
class EpochVector {
 public:
  explicit EpochVector(uint64_t size) : epochs_(size, 0), current_(1) {}

  uint64_t size() const { return epochs_.size(); }

  bool Get(uint64_t i) const {
    TP_DCHECK(i < epochs_.size());
    return epochs_[i] == current_;
  }

  void Set(uint64_t i) {
    TP_DCHECK(i < epochs_.size());
    epochs_[i] = current_;
  }

  void ClearAll() {
    if (++current_ == 0) {
      std::fill(epochs_.begin(), epochs_.end(), 0);
      current_ = 1;
    }
  }

  /// Number of set entries. O(n); intended for tests and statistics.
  uint64_t CountSet() const {
    uint64_t count = 0;
    for (uint32_t e : epochs_) count += (e == current_);
    return count;
  }

 private:
  std::vector<uint32_t> epochs_;
  uint32_t current_;
};

}  // namespace tickpoint

#endif  // TICKPOINT_UTIL_BITVEC_H_
