// Status-returning file I/O wrappers used by the real engine's checkpoint
// store, logical log, and trace file format.
#ifndef TICKPOINT_UTIL_IO_H_
#define TICKPOINT_UTIL_IO_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/status.h"

namespace tickpoint {

/// Buffered sequential writer over a stdio FILE with explicit flush/sync.
class FileWriter {
 public:
  FileWriter() = default;
  ~FileWriter();

  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  /// Opens (creates/truncates) `path` for writing.
  Status Open(const std::string& path);
  /// Opens `path` for read/write without truncation, creating it if needed
  /// (used by the double-backup store which writes at absolute offsets).
  Status OpenForUpdate(const std::string& path);

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  Status Append(const void* data, size_t length);
  Status WriteAt(uint64_t offset, const void* data, size_t length);
  /// Flushes stdio buffers to the OS (visible to other readers) without
  /// forcing them to stable storage.
  Status Flush();
  /// Flushes stdio buffers and fsyncs to stable storage.
  Status Sync();
  Status Close();

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t bytes_written_ = 0;
};

/// Sequential/positional reader.
class FileReader {
 public:
  FileReader() = default;
  ~FileReader();

  FileReader(const FileReader&) = delete;
  FileReader& operator=(const FileReader&) = delete;

  Status Open(const std::string& path);
  bool is_open() const { return file_ != nullptr; }

  /// Reads exactly `length` bytes or returns IOError (short read => error).
  Status ReadExact(void* out, size_t length);
  Status ReadAt(uint64_t offset, void* out, size_t length);
  Status Seek(uint64_t offset);
  /// Current read position.
  StatusOr<uint64_t> Tell();
  StatusOr<uint64_t> Size();
  Status Close();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

/// Reads a whole file into `out`.
Status ReadFileToString(const std::string& path, std::string* out);
/// Writes `data` to `path`, replacing any existing file.
Status WriteStringToFile(const std::string& path, const std::string& data);
/// True if the path exists and is a regular file.
bool FileExists(const std::string& path);
/// Removes a file if it exists (missing file is not an error).
Status RemoveFileIfExists(const std::string& path);
/// Creates a directory (and parents) if missing.
Status EnsureDirectory(const std::string& path);
/// fsyncs a directory so renames/creates/unlinks inside it are durable
/// (the other half of the tmp-file + rename commit idiom).
Status SyncDirectory(const std::string& path);

}  // namespace tickpoint

#endif  // TICKPOINT_UTIL_IO_H_
