// Status / StatusOr error handling, in the style used by main-memory storage
// engines (RocksDB, Arrow): library code never throws; fallible operations
// return Status or StatusOr<T>.
#ifndef TICKPOINT_UTIL_STATUS_H_
#define TICKPOINT_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace tickpoint {

/// Coarse error classification carried by every non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kCorruption,
  kFailedPrecondition,
  kInternal,
};

/// Returns a human-readable name for a StatusCode ("OK", "IOError", ...).
const char* StatusCodeName(StatusCode code);

/// The result of an operation that can fail. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled after arrow::Result.
template <typename T>
class StatusOr {
 public:
  /// Implicit conversion from a value (success).
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit conversion from a non-OK status (failure).
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    if (std::get<Status>(rep_).ok()) {
      std::fprintf(stderr, "StatusOr constructed from OK status\n");
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  /// Precondition: ok(). Aborts otherwise.
  T& value() & {
    CheckOk();
    return std::get<T>(rep_);
  }
  const T& value() const& {
    CheckOk();
    return std::get<T>(rep_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "StatusOr::value() on error: %s\n",
                   std::get<Status>(rep_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> rep_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& extra);
}  // namespace internal

// Invariant checks. TP_CHECK is always on (cheap, used on cold paths and in
// constructors); TP_DCHECK compiles out in NDEBUG builds (hot paths).
#define TP_CHECK(expr)                                                \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::tickpoint::internal::CheckFailed(__FILE__, __LINE__, #expr,   \
                                         std::string());              \
    }                                                                 \
  } while (0)

#define TP_CHECK_OK(status_expr)                                      \
  do {                                                                \
    const ::tickpoint::Status _tp_st = (status_expr);                 \
    if (!_tp_st.ok()) {                                               \
      ::tickpoint::internal::CheckFailed(__FILE__, __LINE__,          \
                                         #status_expr,                \
                                         _tp_st.ToString());          \
    }                                                                 \
  } while (0)

#ifdef NDEBUG
#define TP_DCHECK(expr) \
  do {                  \
  } while (0)
#else
#define TP_DCHECK(expr) TP_CHECK(expr)
#endif

#define TP_RETURN_NOT_OK(status_expr)               \
  do {                                              \
    ::tickpoint::Status _tp_st = (status_expr);     \
    if (!_tp_st.ok()) return _tp_st;                \
  } while (0)

#define TP_ASSIGN_OR_RETURN(lhs, statusor_expr)     \
  auto _tp_so_##__LINE__ = (statusor_expr);         \
  if (!_tp_so_##__LINE__.ok()) {                    \
    return _tp_so_##__LINE__.status();              \
  }                                                 \
  lhs = std::move(_tp_so_##__LINE__).value();

}  // namespace tickpoint

#endif  // TICKPOINT_UTIL_STATUS_H_
