// Pluggable write backends for the checkpoint pipeline (ROADMAP item 1).
//
// The checkpoint stores used to push every byte through a buffered
// FileWriter on whichever thread happened to flush; the staged pipeline
// instead submits positional writes to an IoBackend and waits for them at
// explicit barriers, so the same store code runs synchronously (pwrite on
// the submitting thread -- the crash-sweep baseline) or asynchronously
// (io_uring when the build has liburing, otherwise a writer thread) with a
// bounded in-flight depth. FileWriter (util/io.h) remains the right tool
// for manifests, logical logs, and the checkpoint log's appends; IoBackend
// exists for the bulk image data path.
#ifndef TICKPOINT_UTIL_IO_BACKEND_H_
#define TICKPOINT_UTIL_IO_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/status.h"

namespace tickpoint {

/// Which implementation Create() builds. A runtime knob, deliberately NOT
/// persisted in any manifest: the on-disk format is identical under both
/// backends, so the same directory can be written async and recovered sync
/// (and every crash sweep runs against both).
enum class IoBackendKind {
  /// pwrite on the submitting thread; SubmitWrite completes before it
  /// returns and WaitFor only reports the sticky status.
  kSync,
  /// Bounded submission queue drained off-thread (io_uring or a writer
  /// thread); SubmitWrite returns once queued.
  kAsync,
};

const char* IoBackendKindName(IoBackendKind kind);

/// Parses "sync"/"async" (InvalidArgument otherwise).
StatusOr<IoBackendKind> ParseIoBackendKind(const std::string& name);

/// Process-wide default, read once: TP_IO_BACKEND=sync|async, else kSync.
IoBackendKind DefaultIoBackendKind();

/// Unbuffered positional file over a raw descriptor: pwrite needs no
/// shared stream position, so writes for one file may be issued from any
/// backend thread without coordination.
class IoFile {
 public:
  IoFile() = default;
  ~IoFile();

  IoFile(const IoFile&) = delete;
  IoFile& operator=(const IoFile&) = delete;

  /// Opens `path` read/write without truncation, creating it if needed.
  Status OpenForUpdate(const std::string& path);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  int fd() const { return fd_; }

  /// Full-length positional write (loops over short pwrites).
  Status WriteAt(uint64_t offset, const void* data, uint64_t length);
  /// fsync to stable storage.
  Status Sync();
  /// Truncates the file to `length` bytes.
  Status Truncate(uint64_t length);
  Status Close();

 private:
  int fd_ = -1;
  std::string path_;
};

/// Tickets are handed out in submission order and form a monotonic
/// completion frontier: WaitFor(t) guarantees every write submitted with a
/// ticket <= t is complete (implementations may conservatively wait for
/// later submissions too).
using IoTicket = uint64_t;

class IoBackend {
 public:
  /// Builds the backend for `kind`. `max_in_flight` bounds the async
  /// submission queue; SubmitWrite blocks while that many writes are
  /// already queued (the bounded-depth contract -- a runaway checkpoint
  /// cannot buffer the whole image in the queue).
  static std::unique_ptr<IoBackend> Create(IoBackendKind kind,
                                           uint32_t max_in_flight = 8);

  virtual ~IoBackend() = default;

  virtual IoBackendKind kind() const = 0;

  /// Queues `length` bytes at `data` for `file` at `offset` and returns
  /// the write's ticket. The caller must keep both `data` and `file` valid
  /// until a WaitFor/Drain covers the ticket. Write errors are sticky and
  /// surface from WaitFor/Drain, never from SubmitWrite.
  virtual IoTicket SubmitWrite(IoFile* file, uint64_t offset,
                               const void* data, uint64_t length) = 0;

  /// Blocks until the frontier covers `ticket`; returns the sticky first
  /// write error.
  virtual Status WaitFor(IoTicket ticket) = 0;

  /// Barrier over every submission so far.
  virtual Status Drain() = 0;
};

}  // namespace tickpoint

#endif  // TICKPOINT_UTIL_IO_BACKEND_H_
