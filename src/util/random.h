// Deterministic pseudo-random number generation. Every stochastic component
// (trace generators, the game AI, crash injection) takes an explicit seed so
// simulations and recovery replays are bit-reproducible.
#ifndef TICKPOINT_UTIL_RANDOM_H_
#define TICKPOINT_UTIL_RANDOM_H_

#include <cstdint>

#include "util/status.h"

namespace tickpoint {

/// SplitMix64: used to expand a user seed into generator state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator: fast, high-quality, deterministic across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Reseed(seed); }

  /// Re-initializes the state from a seed (same sequence as Rng(seed)).
  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(&sm);
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t Uniform(uint64_t bound) {
    TP_DCHECK(bound > 0);
    // Multiply-shift rejection-free mapping (Lemire); bias is negligible for
    // the bounds used here (< 2^40) and determinism matters more.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi]. Precondition: lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    TP_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with probability p of returning true.
  bool Chance(double p) { return NextDouble() < p; }

  /// Copies the raw generator state out (checkpoint/resume: a restored
  /// generator continues the SAME sequence, unlike Reseed which restarts
  /// it).
  void SaveState(uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) out[i] = state_[i];
  }

  /// Restores state captured by SaveState.
  void RestoreState(const uint64_t in[4]) {
    for (int i = 0; i < 4; ++i) state_[i] = in[i];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace tickpoint

#endif  // TICKPOINT_UTIL_RANDOM_H_
