#include "util/io.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include <filesystem>

namespace tickpoint {
namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::IOError(op + " " + path + ": " + std::strerror(errno));
}

}  // namespace

FileWriter::~FileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileWriter::Open(const std::string& path) {
  TP_CHECK(file_ == nullptr);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return Errno("open", path);
  path_ = path;
  return Status::OK();
}

Status FileWriter::OpenForUpdate(const std::string& path) {
  TP_CHECK(file_ == nullptr);
  // "r+b" fails if missing; fall back to "w+b" to create.
  file_ = std::fopen(path.c_str(), "r+b");
  if (file_ == nullptr) file_ = std::fopen(path.c_str(), "w+b");
  if (file_ == nullptr) return Errno("open", path);
  path_ = path;
  return Status::OK();
}

Status FileWriter::Append(const void* data, size_t length) {
  TP_CHECK(file_ != nullptr);
  if (std::fwrite(data, 1, length, file_) != length) {
    return Errno("write", path_);
  }
  bytes_written_ += length;
  return Status::OK();
}

Status FileWriter::WriteAt(uint64_t offset, const void* data, size_t length) {
  TP_CHECK(file_ != nullptr);
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Errno("seek", path_);
  }
  if (std::fwrite(data, 1, length, file_) != length) {
    return Errno("write", path_);
  }
  bytes_written_ += length;
  return Status::OK();
}

Status FileWriter::Flush() {
  TP_CHECK(file_ != nullptr);
  if (std::fflush(file_) != 0) return Errno("flush", path_);
  return Status::OK();
}

Status FileWriter::Sync() {
  TP_RETURN_NOT_OK(Flush());
  if (::fsync(::fileno(file_)) != 0) return Errno("fsync", path_);
  return Status::OK();
}

Status FileWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Errno("close", path_);
  return Status::OK();
}

FileReader::~FileReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileReader::Open(const std::string& path) {
  TP_CHECK(file_ == nullptr);
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) return Errno("open", path);
  path_ = path;
  return Status::OK();
}

Status FileReader::ReadExact(void* out, size_t length) {
  TP_CHECK(file_ != nullptr);
  if (std::fread(out, 1, length, file_) != length) {
    return Status::IOError("short read from " + path_);
  }
  return Status::OK();
}

Status FileReader::ReadAt(uint64_t offset, void* out, size_t length) {
  TP_RETURN_NOT_OK(Seek(offset));
  return ReadExact(out, length);
}

Status FileReader::Seek(uint64_t offset) {
  TP_CHECK(file_ != nullptr);
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Errno("seek", path_);
  }
  return Status::OK();
}

StatusOr<uint64_t> FileReader::Tell() {
  TP_CHECK(file_ != nullptr);
  const long pos = std::ftell(file_);
  if (pos < 0) return Errno("tell", path_);
  return static_cast<uint64_t>(pos);
}

StatusOr<uint64_t> FileReader::Size() {
  TP_CHECK(file_ != nullptr);
  struct stat st;
  if (::fstat(::fileno(file_), &st) != 0) return Errno("stat", path_);
  return static_cast<uint64_t>(st.st_size);
}

Status FileReader::Close() {
  if (file_ == nullptr) return Status::OK();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Errno("close", path_);
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  FileReader reader;
  TP_RETURN_NOT_OK(reader.Open(path));
  TP_ASSIGN_OR_RETURN(const uint64_t size, reader.Size());
  out->resize(size);
  if (size > 0) {
    TP_RETURN_NOT_OK(reader.ReadExact(out->data(), size));
  }
  return reader.Close();
}

Status WriteStringToFile(const std::string& path, const std::string& data) {
  FileWriter writer;
  TP_RETURN_NOT_OK(writer.Open(path));
  TP_RETURN_NOT_OK(writer.Append(data.data(), data.size()));
  return writer.Close();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink", path);
  }
  return Status::OK();
}

Status EnsureDirectory(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) return Status::IOError("mkdir " + path + ": " + ec.message());
  return Status::OK();
}

Status SyncDirectory(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open dir", path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync dir", path);
  return Status::OK();
}

}  // namespace tickpoint
