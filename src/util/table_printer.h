// Aligned text tables for the benchmark harnesses. Every figure/table bench
// prints its series through this so the output is uniform and diffable.
#ifndef TICKPOINT_UTIL_TABLE_PRINTER_H_
#define TICKPOINT_UTIL_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace tickpoint {

/// Collects rows of strings and prints them with column alignment.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Appends one row; must have the same arity as the headers.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 4);
  /// Scientific-ish compact formatting for seconds (e.g. "0.85 ms").
  static std::string Seconds(double seconds);
  /// "40.0 MB", "512 B", ...
  static std::string Bytes(double bytes);

  /// Writes the table to `out` (default stdout).
  void Print(std::FILE* out = stdout) const;

  /// Writes the table as CSV (for plotting scripts).
  void PrintCsv(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tickpoint

#endif  // TICKPOINT_UTIL_TABLE_PRINTER_H_
