#include "util/status.h"

namespace tickpoint {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& extra) {
  std::fprintf(stderr, "TP_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               extra.empty() ? "" : " -> ", extra.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace tickpoint
