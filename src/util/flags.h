// Minimal command-line flag parsing for bench and example binaries.
// Accepts --key=value and --key value; --help prints registered flags.
#ifndef TICKPOINT_UTIL_FLAGS_H_
#define TICKPOINT_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace tickpoint {

/// Parsed command line. Typical bench usage:
///
///   Flags flags;
///   TP_CHECK_OK(flags.Parse(argc, argv));
///   const int64_t ticks = flags.GetInt64("ticks", 1000);
class Flags {
 public:
  /// Parses argv. Returns InvalidArgument on malformed input
  /// (non --key tokens, trailing valueless keys are treated as bools).
  Status Parse(int argc, char** argv);

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  int64_t GetInt64(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  /// All keys that were never read through a Get*/Has call; benches use this
  /// to reject typos in flag names.
  std::vector<std::string> UnusedKeys() const;

  bool help_requested() const { return help_requested_; }

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
  bool help_requested_ = false;
};

}  // namespace tickpoint

#endif  // TICKPOINT_UTIL_FLAGS_H_
