// The simulation cost model of paper Section 4.2. Pure functions from
// object counts to seconds; the simulator tracks *which* objects are copied
// or written and uses these to account for *how long* that takes.
#ifndef TICKPOINT_MODEL_COST_MODEL_H_
#define TICKPOINT_MODEL_COST_MODEL_H_

#include <cstdint>

#include "model/hardware.h"

namespace tickpoint {

/// Cost formulas parameterized by HardwareParams.
class CostModel {
 public:
  explicit CostModel(const HardwareParams& hw) : hw_(hw) {}

  const HardwareParams& hw() const { return hw_; }

  /// Duration of a synchronous in-memory copy of `num_objects` atomic objects
  /// laid out in `num_runs` contiguous runs:
  ///   Tsync = num_runs * Omem + num_objects * Sobj / Bmem.
  /// The per-run Omem term models memcpy startup and cache-miss cost; the
  /// paper sums its formula "over all contiguous groups of atomic objects".
  double SyncCopySeconds(uint64_t num_objects, uint64_t num_runs) const {
    if (num_objects == 0) return 0.0;
    return static_cast<double>(num_runs) * hw_.mem_latency +
           static_cast<double>(num_objects * hw_.object_size) /
               hw_.mem_bandwidth;
  }

  /// Per-update overhead of the copy-on-update path when the touched object
  /// must be saved: Olock + Tsync(1). The caller adds BitTestSeconds(),
  /// which is charged on *every* update.
  double CopyOnUpdateTouchSeconds() const {
    return hw_.lock_overhead + SyncCopySeconds(1, 1);
  }

  /// Dirty-bit test/set charged on every update handled by any algorithm
  /// that maintains per-object bits (everything except Naive-Snapshot).
  double BitTestSeconds() const { return hw_.bit_overhead; }

  /// Duration of an asynchronous write of `num_objects` objects to a
  /// log-organized file: fully sequential, Tasync = k * Sobj / Bdisk.
  double LogWriteSeconds(uint64_t num_objects) const {
    return static_cast<double>(num_objects * hw_.object_size) /
           hw_.disk_bandwidth;
  }

  /// Duration of an asynchronous sorted write of dirty objects into a
  /// double-backup file holding `total_objects` objects. The paper's model:
  /// with a dirty object on (almost) every track, the sorted pattern costs a
  /// full rotation per track, i.e. the duration of a full transfer,
  /// independent of how many objects are actually written:
  ///   Tasync ~= n * Sobj / Bdisk.
  double DoubleBackupWriteSeconds(uint64_t total_objects) const {
    return LogWriteSeconds(total_objects);
  }

  /// Ablation model: the same write issued as random single-object writes
  /// (no sorting): k * (seek + rotation/2 + transfer).
  double UnsortedWriteSeconds(uint64_t num_objects) const {
    return static_cast<double>(num_objects) *
           (hw_.disk_seek + 0.5 * hw_.disk_rotation +
            static_cast<double>(hw_.object_size) / hw_.disk_bandwidth);
  }

  /// Time to sequentially read `num_objects` objects (checkpoint restore).
  double SequentialReadSeconds(uint64_t num_objects) const {
    return LogWriteSeconds(num_objects);
  }

  /// Restore time for the partial-redo family: the log must be read back
  /// through `full_flush_period` checkpoints of ~`objects_per_checkpoint`
  /// objects each until a full flush of all `total_objects` is found:
  ///   Trestore = (k*C + n) * Sobj / Bdisk.
  double PartialRedoRestoreSeconds(double objects_per_checkpoint,
                                   uint64_t full_flush_period,
                                   uint64_t total_objects) const {
    const double bytes =
        (objects_per_checkpoint * static_cast<double>(full_flush_period) +
         static_cast<double>(total_objects)) *
        static_cast<double>(hw_.object_size);
    return bytes / hw_.disk_bandwidth;
  }

 private:
  HardwareParams hw_;
};

}  // namespace tickpoint

#endif  // TICKPOINT_MODEL_COST_MODEL_H_
