// Hardware cost parameters (paper Table 3). All times in seconds, all sizes
// in bytes, all bandwidths in bytes/second.
#ifndef TICKPOINT_MODEL_HARDWARE_H_
#define TICKPOINT_MODEL_HARDWARE_H_

#include <cstdint>
#include <string>

namespace tickpoint {

/// Parameters for cost estimation. Defaults reproduce Table 3 of the paper:
///
///   Tick Frequency        Ftick  30 Hz
///   Atomic Object Size    Sobj   512 bytes
///   Memory Bandwidth      Bmem   2.2 GB/s
///   Memory Latency        Omem   100 ns
///   Lock overhead         Olock  145 ns
///   Bit test/set overhead Obit   2 ns
///   Disk Bandwidth        Bdisk  60 MB/s
///
/// The seek/rotation fields extend the paper's model; they are used only by
/// the unsorted-I/O ablation (the paper's double-backup model assumes the
/// sorted full-rotation pattern and needs neither).
struct HardwareParams {
  double tick_hz = 30.0;
  uint64_t object_size = 512;
  double mem_bandwidth = 2.2e9;
  double mem_latency = 100e-9;
  double lock_overhead = 145e-9;
  double bit_overhead = 2e-9;
  double disk_bandwidth = 60e6;
  double disk_seek = 8.0e-3;
  double disk_rotation = 8.33e-3;  // 7200 rpm

  /// Length of one game tick in seconds (33.3 ms at 30 Hz).
  double TickSeconds() const { return 1.0 / tick_hz; }

  /// Half a tick: the latency limit the paper argues pauses must respect.
  double LatencyLimitSeconds() const { return 0.5 * TickSeconds(); }

  /// The paper's Table 3 configuration (same as default construction).
  static HardwareParams Paper() { return HardwareParams{}; }

  /// Multi-line human-readable dump (bench headers).
  std::string ToString() const;
};

}  // namespace tickpoint

#endif  // TICKPOINT_MODEL_HARDWARE_H_
