#include "model/hardware.h"

#include <cstdio>

namespace tickpoint {

std::string HardwareParams::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "tick_hz=%.0f object_size=%llu B mem_bw=%.2f GB/s "
                "mem_lat=%.0f ns lock=%.0f ns bit=%.0f ns disk_bw=%.1f MB/s",
                tick_hz, static_cast<unsigned long long>(object_size),
                mem_bandwidth / 1e9, mem_latency * 1e9, lock_overhead * 1e9,
                bit_overhead * 1e9, disk_bandwidth / 1e6);
  return buf;
}

}  // namespace tickpoint
