#include "model/cost_model.h"

// CostModel is header-only today; this translation unit anchors the library
// and keeps room for future out-of-line definitions.
namespace tickpoint {}  // namespace tickpoint
