// Baseline durability architectures the paper positions checkpointing
// against:
//
//  - ARIES-style physical logging (paper Section 1: "their update rate is
//    limited by the logging bandwidth, and they are unable to support the
//    extremely high rate of game updates"),
//  - logical action logging (what the checkpointing schemes pair with),
//  - K-safety active replication (paper Section 7, Lau & Madden /
//    Stonebraker et al.: no logging, K live copies, utilization 1/K).
//
// These are closed-form capacity models used by the motivation bench and by
// capacity-planning code; they answer "can this durability scheme keep up
// with an MMO's update rate on given hardware?".
#ifndef TICKPOINT_MODEL_BASELINES_H_
#define TICKPOINT_MODEL_BASELINES_H_

#include <cstdint>

#include "model/hardware.h"

namespace tickpoint {

/// ARIES-style write-ahead physical logging.
struct PhysicalLoggingModel {
  /// Bytes per physical log record: LSN, transaction id, page id, slot,
  /// and before/after images of the cell. 40 B is a lean REDO+UNDO record
  /// for a 4-byte cell (real systems are larger).
  uint64_t bytes_per_update = 40;

  /// Log bandwidth needed to sustain `updates_per_second`.
  double RequiredBandwidth(double updates_per_second) const {
    return updates_per_second * static_cast<double>(bytes_per_update);
  }

  /// Highest sustainable update rate when the log may use
  /// `fraction` of the disk (the rest is left for checkpoints/data).
  double MaxUpdatesPerSecond(const HardwareParams& hw,
                             double fraction = 1.0) const {
    return hw.disk_bandwidth * fraction /
           static_cast<double>(bytes_per_update);
  }

  double MaxUpdatesPerTick(const HardwareParams& hw,
                           double fraction = 1.0) const {
    return MaxUpdatesPerSecond(hw, fraction) / hw.tick_hz;
  }
};

/// Logical (action) logging: one logged action expands to many physical
/// cell updates during execution (a movement command updates position
/// attributes over several ticks).
struct LogicalLoggingModel {
  /// Bytes per logged action (command id + parameters).
  uint64_t bytes_per_action = 16;
  /// Average physical cell updates produced per logged action.
  double updates_per_action = 10.0;

  double RequiredBandwidth(double updates_per_second) const {
    return updates_per_second / updates_per_action *
           static_cast<double>(bytes_per_action);
  }

  double MaxUpdatesPerSecond(const HardwareParams& hw,
                             double fraction = 1.0) const {
    return hw.disk_bandwidth * fraction * updates_per_action /
           static_cast<double>(bytes_per_action);
  }

  double MaxUpdatesPerTick(const HardwareParams& hw,
                           double fraction = 1.0) const {
    return MaxUpdatesPerSecond(hw, fraction) / hw.tick_hz;
  }
};

/// K-safety active replication: K servers execute every tick redundantly.
struct KSafetyModel {
  uint32_t replicas = 2;  // K

  /// Fraction of aggregate hardware doing non-redundant work (paper
  /// Section 7: "system utilization is rather low (1/K)").
  double Utilization() const { return 1.0 / static_cast<double>(replicas); }

  /// Servers needed to host `shards` shards.
  uint64_t ServersRequired(uint64_t shards) const {
    return shards * replicas;
  }

  /// Failover is a view change, not a restore+replay: effectively the
  /// network reconnection time. Provided for comparison tables.
  double RecoverySeconds() const { return 1.0; }
};

}  // namespace tickpoint

#endif  // TICKPOINT_MODEL_BASELINES_H_
