// Geometry of the in-memory game state.
//
// The state is conceptually a table of `rows` game objects x `cols`
// attributes; each attribute is one `cell` of cell_size bytes. Cells are the
// unit of *update* (the traces address cells); contiguous cells are grouped
// into *atomic objects* of object_size bytes (one disk sector, paper Section
// 4.1), which are the unit of dirty tracking, in-memory copying, and disk
// I/O. With the paper defaults (1M x 10 x 4 B cells, 512 B objects) the
// state is 40 MB in 78,125 atomic objects -- matching the paper's measured
// full-checkpoint time of 40 MB / 60 MB/s ~= 0.68 s.
#ifndef TICKPOINT_MODEL_LAYOUT_H_
#define TICKPOINT_MODEL_LAYOUT_H_

#include <cstdint>

#include "util/status.h"

namespace tickpoint {

/// Atomic-object id: index into the state in disk-offset order.
using ObjectId = uint64_t;
/// Cell id: row-major flattened index, cell = row * cols + col.
using CellId = uint64_t;

/// Table geometry and the cell -> atomic object mapping.
struct StateLayout {
  uint64_t rows = 1000000;
  uint64_t cols = 10;
  uint32_t cell_size = 4;
  uint64_t object_size = 512;

  uint64_t num_cells() const { return rows * cols; }
  uint64_t state_bytes() const { return num_cells() * cell_size; }
  uint64_t num_objects() const {
    return (state_bytes() + object_size - 1) / object_size;
  }
  /// Number of whole cells per atomic object (layout is row-major, so
  /// consecutive cells of consecutive rows share objects).
  uint64_t cells_per_object() const { return object_size / cell_size; }

  ObjectId ObjectOfCell(CellId cell) const {
    return cell * cell_size / object_size;
  }
  CellId CellOf(uint64_t row, uint64_t col) const { return row * cols + col; }

  bool Valid() const {
    return rows > 0 && cols > 0 && cell_size > 0 && object_size > 0 &&
           object_size % cell_size == 0;
  }

  /// Paper Table 4 geometry: 10M cells (1M rows x 10 columns), 40 MB.
  static StateLayout Paper() { return StateLayout{}; }

  /// Knights-and-Archers geometry (paper Table 5): 400,128 units x 13
  /// attributes, ~20.8 MB in 40,638 atomic objects.
  static StateLayout Game() {
    return StateLayout{.rows = 400128, .cols = 13, .cell_size = 4,
                       .object_size = 512};
  }

  /// A scaled-down geometry for unit tests and engine validation runs.
  static StateLayout Small(uint64_t rows = 4096, uint64_t cols = 10) {
    return StateLayout{.rows = rows, .cols = cols, .cell_size = 4,
                       .object_size = 512};
  }
};

}  // namespace tickpoint

#endif  // TICKPOINT_MODEL_LAYOUT_H_
