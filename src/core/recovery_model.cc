#include "core/recovery_model.h"

#include <algorithm>

namespace tickpoint {

RecoveryEstimate EstimateRecovery(const AlgorithmTraits& traits,
                                  const SimMetrics& metrics,
                                  const StateLayout& layout,
                                  const CostModel& cost,
                                  const SimParams& params) {
  RecoveryEstimate estimate;
  if (traits.partial_redo) {
    // k = objects appended per incremental checkpoint (the periodic full
    // flushes are not part of the read-back distance formula).
    const double k = metrics.AvgObjectsPerCheckpoint(/*exclude_full=*/true);
    estimate.restore_seconds = cost.PartialRedoRestoreSeconds(
        k, params.full_flush_period, layout.num_objects());
  } else {
    estimate.restore_seconds =
        cost.SequentialReadSeconds(layout.num_objects());
  }
  // Worst-case replay covers one checkpoint interval: with the paper's
  // back-to-back policy that equals the checkpoint time; with a configured
  // minimum interval the window can be wider.
  estimate.replay_seconds =
      std::max(metrics.AvgCheckpointSeconds(),
               static_cast<double>(params.checkpoint_interval_ticks) *
                   cost.hw().TickSeconds());
  return estimate;
}

}  // namespace tickpoint
