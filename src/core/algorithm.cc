#include "core/algorithm.h"

#include "util/status.h"

namespace tickpoint {
namespace {

constexpr AlgorithmTraits kTraits[] = {
    {AlgorithmKind::kNaiveSnapshot, "Naive-Snapshot", "naive",
     /*eager_copy=*/true, /*dirty_only=*/false, DiskOrganization::kDoubleBackup,
     /*partial_redo=*/false,
     "All objects", "All objects, double backup", "No-op", "No-op"},
    {AlgorithmKind::kDribble, "Dribble-and-Copy-on-Update", "dribble",
     /*eager_copy=*/false, /*dirty_only=*/false, DiskOrganization::kLog,
     /*partial_redo=*/false,
     "No-op", "No-op", "First touched, all", "All objects, log"},
    {AlgorithmKind::kAtomicCopyDirty, "Atomic-Copy-Dirty-Objects",
     "atomic-copy",
     /*eager_copy=*/true, /*dirty_only=*/true, DiskOrganization::kDoubleBackup,
     /*partial_redo=*/false,
     "Dirty objects", "Dirty objects, double backup", "No-op", "No-op"},
    {AlgorithmKind::kPartialRedo, "Partial-Redo", "partial-redo",
     /*eager_copy=*/true, /*dirty_only=*/true, DiskOrganization::kLog,
     /*partial_redo=*/true,
     "Dirty objects", "Dirty objects, log", "No-op", "No-op"},
    {AlgorithmKind::kCopyOnUpdate, "Copy-on-Update", "cou",
     /*eager_copy=*/false, /*dirty_only=*/true, DiskOrganization::kDoubleBackup,
     /*partial_redo=*/false,
     "No-op", "No-op", "First touched, dirty", "Dirty objects, double backup"},
    {AlgorithmKind::kCopyOnUpdatePartialRedo, "Copy-on-Update-Partial-Redo",
     "cou-partial-redo",
     /*eager_copy=*/false, /*dirty_only=*/true, DiskOrganization::kLog,
     /*partial_redo=*/true,
     "No-op", "No-op", "First touched, dirty", "Dirty objects, log"},
};

}  // namespace

const AlgorithmTraits& GetTraits(AlgorithmKind kind) {
  const int index = static_cast<int>(kind);
  TP_CHECK(index >= 0 && index < 6);
  TP_CHECK(kTraits[index].kind == kind);
  return kTraits[index];
}

const std::vector<AlgorithmKind>& AllAlgorithms() {
  static const std::vector<AlgorithmKind> all = {
      AlgorithmKind::kNaiveSnapshot,
      AlgorithmKind::kDribble,
      AlgorithmKind::kAtomicCopyDirty,
      AlgorithmKind::kPartialRedo,
      AlgorithmKind::kCopyOnUpdate,
      AlgorithmKind::kCopyOnUpdatePartialRedo,
  };
  return all;
}

const char* AlgorithmName(AlgorithmKind kind) { return GetTraits(kind).name; }

std::optional<AlgorithmKind> ParseAlgorithm(const std::string& name) {
  for (const AlgorithmTraits& traits : kTraits) {
    if (name == traits.name || name == traits.short_name) return traits.kind;
  }
  return std::nullopt;
}

}  // namespace tickpoint
