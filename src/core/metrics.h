// Metrics collected while simulating (or executing) a checkpoint algorithm.
#ifndef TICKPOINT_CORE_METRICS_H_
#define TICKPOINT_CORE_METRICS_H_

#include <cstdint>
#include <vector>

#include "util/histogram.h"

namespace tickpoint {

/// One completed checkpoint.
struct CheckpointRecord {
  uint64_t seq = 0;            // 0-based checkpoint number
  uint64_t start_tick = 0;     // tick at whose end the checkpoint started
  double start_time = 0.0;     // simulation seconds (after the sync copy)
  double sync_seconds = 0.0;   // duration of the eager in-memory copy
  double async_seconds = 0.0;  // duration of the asynchronous disk write
  uint64_t objects_written = 0;
  uint64_t bytes_written = 0;
  bool all_objects = false;    // wrote the full state
  bool full_flush = false;     // the periodic full flush of a partial-redo run
  uint64_t cou_copies = 0;     // copy-on-update copies during this checkpoint

  /// The paper's "time to checkpoint": Tsync + Tasync (Tsync is zero for
  /// copy-on-update methods).
  double TotalSeconds() const { return sync_seconds + async_seconds; }
  double EndTime() const { return start_time + async_seconds; }
};

/// Full metrics of one simulated run.
struct SimMetrics {
  /// Overhead added to each tick, in seconds (index = tick number).
  SampleSeries tick_overhead;
  /// Completed checkpoints, in order.
  std::vector<CheckpointRecord> checkpoints;

  // Operation counters (used by tests and the micro-op accounting).
  uint64_t updates = 0;
  uint64_t bit_tests = 0;
  uint64_t lock_acquisitions = 0;
  uint64_t cou_copies = 0;
  uint64_t eager_copied_objects = 0;

  /// Mean per-tick overhead in seconds.
  double AvgOverheadSeconds() const { return tick_overhead.Mean(); }

  /// Mean time to checkpoint over completed checkpoints (0 if none).
  double AvgCheckpointSeconds() const {
    if (checkpoints.empty()) return 0.0;
    double sum = 0.0;
    for (const auto& record : checkpoints) sum += record.TotalSeconds();
    return sum / static_cast<double>(checkpoints.size());
  }

  /// Mean objects written per completed checkpoint. When `exclude_full` is
  /// set, the periodic full flushes of partial-redo runs are skipped (this
  /// is the `k` of the paper's restore-time formula).
  double AvgObjectsPerCheckpoint(bool exclude_full) const {
    double sum = 0.0;
    uint64_t count = 0;
    for (const auto& record : checkpoints) {
      if (exclude_full && record.full_flush) continue;
      sum += static_cast<double>(record.objects_written);
      ++count;
    }
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

}  // namespace tickpoint

#endif  // TICKPOINT_CORE_METRICS_H_
