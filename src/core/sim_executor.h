// Simulated execution of the checkpointing algorithmic framework
// (paper Section 4.1/4.2).
//
// CheckpointSim advances a simulation clock tick by tick over an update
// stream. It maintains the algorithms' *real* bookkeeping (dirty stamps,
// write sets, copy-on-update bits, async writer head position) but performs
// no actual copying or I/O: every action is converted to seconds through the
// CostModel, exactly like the paper's simulator.
//
// Lifecycle per tick (mirroring the paper's Checkpointing Algorithmic
// Framework):
//
//   BeginTick();
//   OnObjectUpdate(o);  // for every update in the tick: Handle-Update
//   EndTick();          // end of game tick: complete a drained checkpoint,
//                       // then start the next one (Copy-To-Memory pause +
//                       // scheduling of the asynchronous writes)
#ifndef TICKPOINT_CORE_SIM_EXECUTOR_H_
#define TICKPOINT_CORE_SIM_EXECUTOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/algorithm.h"
#include "core/metrics.h"
#include "model/cost_model.h"
#include "model/layout.h"
#include "util/bitvec.h"

namespace tickpoint {

/// Tunables shared by all algorithms.
struct SimParams {
  /// `C`: a partial-redo run performs a full flush (executed as
  /// Dribble-and-Copy-on-Update, paper Section 3.2) every C-th checkpoint.
  uint64_t full_flush_period = 9;
  /// Paper model: double-backup writes use the sorted full-rotation pattern.
  /// false switches to per-object random writes (ablation).
  bool sorted_io = true;
  /// Minimum ticks between checkpoint starts. 0 reproduces the paper's
  /// back-to-back policy ("take checkpoints as frequently as possible");
  /// larger values trade overhead for a longer replay window at recovery.
  uint64_t checkpoint_interval_ticks = 0;
};

/// Simulated run of one checkpoint algorithm.
class CheckpointSim {
 public:
  CheckpointSim(AlgorithmKind kind, const StateLayout& layout,
                const HardwareParams& hw, const SimParams& params = {});

  /// Starts tick `current_tick()`. Must alternate with EndTick().
  void BeginTick();

  /// Handle-Update for one cell (converted to its atomic object).
  void OnCellUpdate(CellId cell) {
    OnObjectUpdate(layout_.ObjectOfCell(cell));
  }

  /// Handle-Update for one atomic object. May be called only between
  /// BeginTick() and EndTick(). Repeated updates to an object are allowed
  /// and each pays the bit-test cost.
  void OnObjectUpdate(ObjectId object);

  /// Ends the tick: advances the clock by the stretched tick length,
  /// completes the active checkpoint if its asynchronous write drained, and
  /// starts a new checkpoint (charging any synchronous copy as a pause on
  /// the tick that just ended).
  void EndTick();

  AlgorithmKind kind() const { return traits_.kind; }
  const AlgorithmTraits& traits() const { return traits_; }
  const StateLayout& layout() const { return layout_; }
  const CostModel& cost() const { return cost_; }
  const SimParams& params() const { return params_; }
  const SimMetrics& metrics() const { return metrics_; }

  /// Simulation clock, seconds. Between ticks this is the stretched end of
  /// the last tick.
  double now() const { return now_; }
  /// Index of the next tick to run.
  uint64_t current_tick() const { return tick_; }
  bool checkpoint_active() const { return active_.has_value(); }
  /// Objects the active checkpoint will write (valid when active).
  uint64_t active_write_count() const;
  /// True if the active checkpoint writes the full state.
  bool active_all_objects() const;
  /// Asynchronous write duration of the active checkpoint, seconds.
  double active_async_seconds() const;

 private:
  struct ActiveCheckpoint {
    uint64_t seq = 0;
    uint64_t start_tick = 0;
    double start_time = 0.0;  // async write begins here (post sync copy)
    double sync_seconds = 0.0;
    double async_seconds = 0.0;
    uint64_t objects = 0;
    uint64_t bytes = 0;
    bool all_objects = false;
    bool full_flush = false;
    bool cou_mode = false;  // Handle-Update performs copy on update
    DiskOrganization org = DiskOrganization::kDoubleBackup;
    uint64_t cou_copies = 0;
  };

  /// Starts a checkpoint; returns the synchronous pause in seconds.
  double StartCheckpoint();
  void CompleteActive();
  /// Has the asynchronous writer already flushed `object`, as of the start
  /// of the current tick?
  bool FlushedAtTickStart(ObjectId object) const;

  StateLayout layout_;
  AlgorithmTraits traits_;
  CostModel cost_;
  SimParams params_;

  double now_ = 0.0;
  uint64_t tick_ = 0;
  bool in_tick_ = false;
  double tick_overhead_ = 0.0;

  // Dirty tracking: stamp = tick+1 of the last update (dirty-only
  // algorithms). An object is dirty w.r.t. an image boundary b iff
  // last_update_[o] > b.
  std::vector<uint64_t> last_update_;
  // Copy-on-update "already saved this checkpoint" bits.
  EpochVector copied_;
  // Membership of the active checkpoint's write set (dirty-only).
  BitVector write_set_;
  // Rank of each member in disk-offset order (log-organized writers and the
  // unsorted-I/O ablation).
  std::vector<uint32_t> rank_;

  // Double-backup bookkeeping: image boundary per backup, whether each
  // backup holds a complete image yet, and which backup is written next.
  uint64_t backup_asof_[2] = {0, 0};
  bool backup_written_[2] = {false, false};
  int next_backup_ = 0;
  // Log bookkeeping.
  uint64_t log_asof_ = 0;
  bool log_written_ = false;

  uint64_t checkpoint_count_ = 0;
  uint64_t last_start_tick_ = 0;
  std::optional<ActiveCheckpoint> active_;

  SimMetrics metrics_;
};

}  // namespace tickpoint

#endif  // TICKPOINT_CORE_SIM_EXECUTOR_H_
