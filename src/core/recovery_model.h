// Recovery-time estimation (paper Section 4.2, "Recovery time").
#ifndef TICKPOINT_CORE_RECOVERY_MODEL_H_
#define TICKPOINT_CORE_RECOVERY_MODEL_H_

#include "core/algorithm.h"
#include "core/metrics.h"
#include "core/sim_executor.h"
#include "model/cost_model.h"
#include "model/layout.h"

namespace tickpoint {

/// Trecovery = Trestore + Treplay.
struct RecoveryEstimate {
  /// Time to read the newest complete checkpoint back from disk. Sequential
  /// full-state read for double-backup / full-log schemes; for partial-redo
  /// schemes the log is read back through up to C incremental checkpoints:
  /// (k*C + n) * Sobj / Bdisk.
  double restore_seconds = 0.0;
  /// Worst-case replay of the logical log: the simulation redoes the work of
  /// one checkpoint interval, which takes the time of one checkpoint.
  double replay_seconds = 0.0;

  double total_seconds() const { return restore_seconds + replay_seconds; }
};

/// Estimates recovery time from a finished simulation's metrics.
RecoveryEstimate EstimateRecovery(const AlgorithmTraits& traits,
                                  const SimMetrics& metrics,
                                  const StateLayout& layout,
                                  const CostModel& cost,
                                  const SimParams& params);

}  // namespace tickpoint

#endif  // TICKPOINT_CORE_RECOVERY_MODEL_H_
