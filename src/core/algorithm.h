// The checkpoint-recovery algorithm design space (paper Tables 1 and 2).
//
// Algorithms differ along three axes:
//   - in-memory copy timing: eager copy at the end of a tick vs
//     copy-on-update while an asynchronous flush is running,
//   - objects copied: all objects vs only dirty objects,
//   - disk organization: double backup (two alternating in-place images)
//     vs an append-only log (requiring periodic full flushes and log
//     read-back at recovery -- the "partial redo" family).
#ifndef TICKPOINT_CORE_ALGORITHM_H_
#define TICKPOINT_CORE_ALGORITHM_H_

#include <optional>
#include <string>
#include <vector>

namespace tickpoint {

/// The six algorithms evaluated by the paper.
enum class AlgorithmKind {
  kNaiveSnapshot = 0,
  kDribble,             // Dribble-and-Copy-on-Update
  kAtomicCopyDirty,     // Atomic-Copy-Dirty-Objects
  kPartialRedo,
  kCopyOnUpdate,
  kCopyOnUpdatePartialRedo,
};

/// On-disk checkpoint organization.
enum class DiskOrganization {
  kDoubleBackup,
  kLog,
};

/// Static classification of an algorithm (paper Table 1) plus its
/// subroutine instantiations (paper Table 2).
struct AlgorithmTraits {
  AlgorithmKind kind;
  const char* name;        // e.g. "Copy-on-Update"
  const char* short_name;  // e.g. "cou"
  bool eager_copy;         // true: copy at tick end; false: copy on update
  bool dirty_only;         // true: dirty objects; false: all objects
  DiskOrganization disk;
  bool partial_redo;       // log-organized dirty writes: needs periodic full
                           // flush + log read-back at recovery

  // Human-readable Table 2 subroutine descriptions.
  const char* copy_to_memory;
  const char* write_copies;
  const char* handle_update;
  const char* write_objects;
};

/// Traits for one algorithm.
const AlgorithmTraits& GetTraits(AlgorithmKind kind);

/// All six algorithms in paper order.
const std::vector<AlgorithmKind>& AllAlgorithms();

/// Long name ("Naive-Snapshot", ...).
const char* AlgorithmName(AlgorithmKind kind);

/// Parses either the long or the short name; nullopt if unrecognized.
std::optional<AlgorithmKind> ParseAlgorithm(const std::string& name);

}  // namespace tickpoint

#endif  // TICKPOINT_CORE_ALGORITHM_H_
