#include "core/sim_executor.h"

namespace tickpoint {

CheckpointSim::CheckpointSim(AlgorithmKind kind, const StateLayout& layout,
                             const HardwareParams& hw, const SimParams& params)
    : layout_(layout),
      traits_(GetTraits(kind)),
      cost_(hw),
      params_(params),
      copied_(layout.num_objects()),
      write_set_(layout.num_objects()) {
  TP_CHECK(layout_.Valid());
  TP_CHECK(params_.full_flush_period >= 1);
  if (traits_.dirty_only) {
    last_update_.assign(layout_.num_objects(), 0);
  }
  const bool needs_rank =
      traits_.disk == DiskOrganization::kLog || !params_.sorted_io;
  if (needs_rank && traits_.dirty_only) {
    rank_.assign(layout_.num_objects(), 0);
  }
}

void CheckpointSim::BeginTick() {
  TP_CHECK(!in_tick_);
  in_tick_ = true;
}

void CheckpointSim::OnObjectUpdate(ObjectId object) {
  TP_DCHECK(in_tick_);
  TP_DCHECK(object < layout_.num_objects());
  ++metrics_.updates;

  // Naive-Snapshot: Handle-Update is a no-op -- no bits, no cost.
  if (traits_.kind == AlgorithmKind::kNaiveSnapshot) return;

  // All other algorithms maintain per-object bits on every update.
  if (traits_.dirty_only) last_update_[object] = tick_ + 1;
  double overhead = cost_.BitTestSeconds();
  ++metrics_.bit_tests;

  if (active_ && active_->cou_mode) {
    const bool member = active_->all_objects || write_set_.Get(object);
    if (member && !copied_.Get(object) && !FlushedAtTickStart(object)) {
      // First touch of an unflushed member: lock out the writer and save
      // the pre-image (Obit + Olock + Tsync(1), paper Section 4.2).
      copied_.Set(object);
      overhead += cost_.CopyOnUpdateTouchSeconds();
      ++metrics_.lock_acquisitions;
      ++metrics_.cou_copies;
      ++active_->cou_copies;
    }
  }
  tick_overhead_ += overhead;
}

bool CheckpointSim::FlushedAtTickStart(ObjectId object) const {
  TP_DCHECK(active_.has_value());
  // now_ is frozen at the (stretched) end of the previous tick while updates
  // of the current tick are processed, so `elapsed` is the writer's progress
  // when this tick started. A checkpoint started at the end of the previous
  // tick has made no progress yet -- its first tick sees nothing flushed.
  const double elapsed = now_ - active_->start_time;
  if (elapsed <= 0.0 || active_->async_seconds <= 0.0) return false;
  const uint64_t n = layout_.num_objects();
  if (active_->org == DiskOrganization::kDoubleBackup && params_.sorted_io) {
    // Sorted sweep: the head passes offsets 0..n over the full duration.
    const double head = elapsed / active_->async_seconds *
                        static_cast<double>(n);
    return static_cast<double>(object) < head;
  }
  // Log (or unsorted) writers emit write-set members in offset order.
  const double flushed = elapsed / active_->async_seconds *
                         static_cast<double>(active_->objects);
  const uint64_t rank = active_->all_objects
                            ? object
                            : static_cast<uint64_t>(rank_[object]);
  return static_cast<double>(rank) < flushed;
}

void CheckpointSim::EndTick() {
  TP_CHECK(in_tick_);
  in_tick_ = false;

  // The tick body: game logic fills the base tick length; recovery overhead
  // stretches it (paper Section 5.1).
  now_ += cost_.hw().TickSeconds() + tick_overhead_;

  // End-of-tick checkpoint management.
  if (active_ &&
      active_->start_time + active_->async_seconds <= now_) {
    CompleteActive();
  }
  const bool interval_elapsed =
      checkpoint_count_ == 0 ||
      tick_ >= last_start_tick_ + params_.checkpoint_interval_ticks;
  if (!active_ && interval_elapsed) {
    const double sync_pause = StartCheckpoint();
    tick_overhead_ += sync_pause;
    now_ += sync_pause;
    active_->start_time = now_;
    last_start_tick_ = tick_;
  }

  metrics_.tick_overhead.Add(tick_overhead_);
  tick_overhead_ = 0.0;
  ++tick_;
}

double CheckpointSim::StartCheckpoint() {
  TP_CHECK(!active_.has_value());
  ActiveCheckpoint ckpt;
  ckpt.seq = checkpoint_count_++;
  ckpt.start_tick = tick_;
  ckpt.org = traits_.disk;
  // The image is consistent as of the end of tick_: updates applied during
  // tick_ carry stamp tick_ + 1 and are included.
  const uint64_t boundary = tick_ + 1;

  ckpt.full_flush = traits_.partial_redo &&
                    (ckpt.seq % params_.full_flush_period == 0);

  int backup = 0;
  if (traits_.disk == DiskOrganization::kDoubleBackup) {
    backup = next_backup_;
    next_backup_ ^= 1;
  }
  const bool first_image = traits_.disk == DiskOrganization::kDoubleBackup
                               ? !backup_written_[backup]
                               : !log_written_;

  const uint64_t n = layout_.num_objects();
  uint64_t runs = 0;
  if (!traits_.dirty_only || ckpt.full_flush || first_image) {
    // Full-state checkpoint: all algorithms bootstrap with one (each backup
    // file needs a complete base image before incremental writes).
    ckpt.all_objects = true;
    ckpt.objects = n;
    runs = 1;
  } else {
    const uint64_t asof = traits_.disk == DiskOrganization::kDoubleBackup
                              ? backup_asof_[backup]
                              : log_asof_;
    write_set_.Fill(false);
    bool prev = false;
    for (uint64_t o = 0; o < n; ++o) {
      const bool member = last_update_[o] > asof;
      if (member) {
        write_set_.Set(o);
        ++ckpt.objects;
        if (!prev) ++runs;
      }
      prev = member;
    }
    ckpt.all_objects = false;
  }

  // Disk-offset ranks for writers that emit members in sequence.
  const bool needs_rank =
      (ckpt.org == DiskOrganization::kLog || !params_.sorted_io) &&
      !ckpt.all_objects;
  if (needs_rank) {
    uint32_t next_rank = 0;
    for (uint64_t o = 0; o < n; ++o) {
      if (write_set_.Get(o)) rank_[o] = next_rank++;
    }
  }

  // Advance the image boundary of the target organization.
  if (traits_.disk == DiskOrganization::kDoubleBackup) {
    backup_asof_[backup] = boundary;
    backup_written_[backup] = true;
  } else {
    log_asof_ = boundary;
    log_written_ = true;
  }

  // Asynchronous write duration (paper Section 4.2).
  ckpt.bytes = ckpt.objects * layout_.object_size;
  if (ckpt.org == DiskOrganization::kLog) {
    ckpt.async_seconds = cost_.LogWriteSeconds(ckpt.objects);
  } else if (params_.sorted_io) {
    ckpt.async_seconds = cost_.DoubleBackupWriteSeconds(n);
  } else {
    ckpt.async_seconds = cost_.UnsortedWriteSeconds(ckpt.objects);
  }

  // Synchronous in-memory copy for eager algorithms. Partial-redo full
  // flushes run as Dribble-and-Copy-on-Update: no eager copy.
  ckpt.cou_mode = !traits_.eager_copy || ckpt.full_flush;
  double sync_pause = 0.0;
  if (!ckpt.cou_mode) {
    sync_pause = cost_.SyncCopySeconds(ckpt.objects,
                                       ckpt.all_objects ? 1 : runs);
    metrics_.eager_copied_objects += ckpt.objects;
  } else {
    copied_.ClearAll();
  }
  ckpt.sync_seconds = sync_pause;

  active_ = ckpt;
  return sync_pause;
}

void CheckpointSim::CompleteActive() {
  TP_CHECK(active_.has_value());
  CheckpointRecord record;
  record.seq = active_->seq;
  record.start_tick = active_->start_tick;
  record.start_time = active_->start_time;
  record.sync_seconds = active_->sync_seconds;
  record.async_seconds = active_->async_seconds;
  record.objects_written = active_->objects;
  record.bytes_written = active_->bytes;
  record.all_objects = active_->all_objects;
  record.full_flush = active_->full_flush;
  record.cou_copies = active_->cou_copies;
  metrics_.checkpoints.push_back(record);
  active_.reset();
}

uint64_t CheckpointSim::active_write_count() const {
  TP_CHECK(active_.has_value());
  return active_->objects;
}

bool CheckpointSim::active_all_objects() const {
  TP_CHECK(active_.has_value());
  return active_->all_objects;
}

double CheckpointSim::active_async_seconds() const {
  TP_CHECK(active_.has_value());
  return active_->async_seconds;
}

}  // namespace tickpoint
