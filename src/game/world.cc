#include "game/world.h"

#include <algorithm>

namespace tickpoint {
namespace game {

World::World(const WorldConfig& config)
    : config_(config),
      units_(config.num_units),
      grid_(config.map_size, config.bucket_shift),
      rng_(config.seed),
      is_active_(config.num_units, 0) {
  TP_CHECK(config_.num_units >= 16);
  TP_CHECK(config_.active_fraction > 0.0 && config_.active_fraction <= 1.0);
  // Home bases face each other across the map's midline.
  base_x_[0] = config_.map_size / 4;
  base_x_[1] = 3 * config_.map_size / 4;
  base_y_[0] = base_y_[1] = config_.map_size / 2;
  SpawnUnits();

  // Initial active set: uniformly sampled without replacement.
  const uint32_t target = ActiveTarget(config_);
  while (active_.size() < target) {
    const UnitId u =
        static_cast<UnitId>(rng_.Uniform(config_.num_units));
    if (!is_active_[u]) {
      is_active_[u] = 1;
      active_.push_back(u);
    }
  }
}

void World::SpawnUnits() {
  for (UnitId u = 0; u < config_.num_units; ++u) {
    const int32_t team = static_cast<int32_t>(u & 1);
    // Mix: half knights, a third archers, the rest healers.
    UnitType type = UnitType::kKnight;
    const uint32_t role = u % 6;
    if (role >= 3 && role <= 4) {
      type = UnitType::kArcher;
    } else if (role == 5) {
      type = UnitType::kHealer;
    }
    // Deterministic spawn position in a disc around the team base.
    const int32_t r = static_cast<int32_t>(rng_.Uniform(
        static_cast<uint64_t>(config_.spawn_radius)));
    const int32_t ox = static_cast<int32_t>(
                           rng_.Uniform(static_cast<uint64_t>(2 * r + 1))) -
                       r;
    const int32_t remaining = r - std::abs(ox);
    const int32_t oy = static_cast<int32_t>(rng_.Uniform(
                           static_cast<uint64_t>(2 * remaining + 1))) -
                       remaining;
    const int32_t x =
        std::clamp(base_x_[team] + ox, 0, config_.map_size - 1);
    const int32_t y =
        std::clamp(base_y_[team] + oy, 0, config_.map_size - 1);

    // Initial placement uses SetRaw: the pristine world is the baseline
    // captured by the first checkpoint, not a stream of updates.
    units_.SetRaw(u, kAttrType, static_cast<int32_t>(type));
    units_.SetRaw(u, kAttrTeam, team);
    units_.SetRaw(u, kAttrX, x);
    units_.SetRaw(u, kAttrY, y);
    units_.SetRaw(u, kAttrHealth, kMaxHealth);
    units_.SetRaw(u, kAttrState, static_cast<int32_t>(UnitState::kIdle));
    units_.SetRaw(u, kAttrTarget, static_cast<int32_t>(kNoUnit));
    units_.SetRaw(u, kAttrReadyTick, 0);
    units_.SetRaw(u, kAttrSquad, static_cast<int32_t>(u / 16));
    units_.SetRaw(u, kAttrMorale, 10);
    units_.SetRaw(u, kAttrDirX, team == 0 ? 1 : -1);
    units_.SetRaw(u, kAttrDirY, 0);
    units_.SetRaw(u, kAttrKills, 0);
  }
}

uint32_t World::ActiveTarget(const WorldConfig& config) {
  return std::max<uint32_t>(
      1, static_cast<uint32_t>(config.active_fraction *
                               static_cast<double>(config.num_units)));
}

void World::RotateActiveSet() {
  // Each active unit leaves with rotation_probability; a fresh inactive unit
  // takes its slot, keeping the active population constant.
  rotated_slots_.clear();
  for (uint32_t s = 0; s < active_.size(); ++s) {
    UnitId& slot = active_[s];
    if (!rng_.Chance(config_.rotation_probability)) continue;
    const UnitId leaving = slot;
    UnitId joining;
    do {
      joining = static_cast<UnitId>(rng_.Uniform(config_.num_units));
    } while (is_active_[joining]);
    is_active_[leaving] = 0;
    is_active_[joining] = 1;
    // A unit that logs back in re-enters in a neutral state.
    units_.Set(joining, kAttrState, static_cast<int32_t>(UnitState::kIdle));
    units_.Set(joining, kAttrTarget, static_cast<int32_t>(kNoUnit));
    slot = joining;
    rotated_slots_.push_back(s);
  }
}

void World::RestoreSimState(const uint64_t rng_state[4], int32_t tick,
                            std::vector<UnitId> active) {
  TP_CHECK(active.size() == ActiveTarget(config_));
  rng_.RestoreState(rng_state);
  tick_ = tick;
  active_ = std::move(active);
  std::fill(is_active_.begin(), is_active_.end(), 0);
  for (UnitId u : active_) {
    TP_CHECK(u < config_.num_units);
    TP_CHECK(!is_active_[u]);  // distinctness
    is_active_[u] = 1;
  }
  rotated_slots_.clear();
}

void World::RespawnDead() {
  for (UnitId u : active_) {
    if (units_.health(u) > 0) continue;
    const int32_t team = units_.team(u);
    units_.Set(u, kAttrHealth, kMaxHealth);
    units_.Set(u, kAttrX, base_x_[team]);
    units_.Set(u, kAttrY, base_y_[team]);
    units_.Set(u, kAttrState, static_cast<int32_t>(UnitState::kIdle));
    units_.Set(u, kAttrTarget, static_cast<int32_t>(kNoUnit));
    units_.Set(u, kAttrMorale, 10);
  }
}

void World::Tick() {
  RotateActiveSet();
  RespawnDead();
  grid_.Rebuild(units_, active_);

  AiContext ctx;
  ctx.units = &units_;
  ctx.grid = &grid_;
  ctx.tick = tick_;
  // A team's units attack the *other* team's base.
  ctx.enemy_base_x[0] = base_x_[1];
  ctx.enemy_base_y[0] = base_y_[1];
  ctx.enemy_base_x[1] = base_x_[0];
  ctx.enemy_base_y[1] = base_y_[0];

  for (UnitId u : active_) {
    if (units_.health(u) > 0) StepUnit(ctx, u);
  }
  ++tick_;
}

StateLayout World::TraceLayout() const {
  return StateLayout{.rows = config_.num_units,
                     .cols = kNumAttributes,
                     .cell_size = 4,
                     .object_size = 512};
}

namespace {

/// Bridges UnitTable writes into trace cells.
class TraceSink : public UpdateSink {
 public:
  void OnUpdate(UnitId unit, uint32_t attr, int32_t value) override {
    (void)value;
    cells_.push_back(unit * kNumAttributes + attr);
  }

  std::vector<TraceCell>* cells() { return &cells_; }
  void ClearTick() { cells_.clear(); }

 private:
  std::vector<TraceCell> cells_;
};

}  // namespace

MaterializedTrace RecordGameTrace(const WorldConfig& config,
                                  uint64_t num_ticks) {
  World world(config);
  MaterializedTrace trace(world.TraceLayout());
  TraceSink sink;
  world.set_sink(&sink);
  for (uint64_t t = 0; t < num_ticks; ++t) {
    sink.ClearTick();
    world.Tick();
    trace.AppendTick(*sink.cells());
  }
  world.set_sink(nullptr);
  return trace;
}

}  // namespace game
}  // namespace tickpoint
