#include "game/unit.h"

#include "util/random.h"

namespace tickpoint {
namespace game {

UnitTable::UnitTable(uint32_t num_units)
    : num_units_(num_units),
      values_(static_cast<size_t>(num_units) * kNumAttributes, 0) {
  TP_CHECK(num_units > 0);
}

uint64_t HashUnitState(UnitId unit, const int32_t* attrs) {
  // SplitMix64 chain over (unit, attr0..attr12): each value perturbs the
  // running state, so any single-attribute difference flips the result.
  // Callers combine the per-unit hashes with wrap-around '+', which is why
  // this mixer (not the raw values) must already be avalanche-quality:
  // plain sums would cancel symmetric differences between units.
  uint64_t state = 0x9e3779b97f4a7c15ULL ^ (static_cast<uint64_t>(unit) + 1);
  uint64_t digest = SplitMix64(&state);
  for (uint32_t attr = 0; attr < kNumAttributes; ++attr) {
    state ^= static_cast<uint64_t>(static_cast<uint32_t>(attrs[attr])) +
             0x9e3779b97f4a7c15ULL * (attr + 1);
    digest += SplitMix64(&state);
  }
  return digest;
}

uint64_t UnitTable::StateDigest() const {
  uint64_t digest = 0;
  for (UnitId u = 0; u < num_units_; ++u) {
    digest += HashUnitState(u, &values_[Index(u, 0)]);
  }
  return digest;
}

}  // namespace game
}  // namespace tickpoint
