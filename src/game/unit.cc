#include "game/unit.h"

namespace tickpoint {
namespace game {

UnitTable::UnitTable(uint32_t num_units)
    : num_units_(num_units),
      values_(static_cast<size_t>(num_units) * kNumAttributes, 0) {
  TP_CHECK(num_units > 0);
}

}  // namespace game
}  // namespace tickpoint
