// Unit storage: the game-state table (units x 13 int32 attributes).
#ifndef TICKPOINT_GAME_UNIT_H_
#define TICKPOINT_GAME_UNIT_H_

#include <array>
#include <cstdint>
#include <vector>

#include "game/types.h"
#include "util/status.h"

namespace tickpoint {
namespace game {

/// Mixes one unit's id and its 13 attributes into a 64-bit value.
/// Deterministic across platforms and shared by UnitTable::StateDigest and
/// the StateTable-side digest in game/shard_adapter.h, so a recovered
/// checkpoint partition can be compared against a live World without
/// reconstructing one.
uint64_t HashUnitState(UnitId unit, const int32_t* attrs);

/// Row-major unit/attribute table with write instrumentation.
///
/// Writes go through Set(), which forwards to the installed UpdateSink
/// (if any) -- that is the instrumentation the paper describes: "We have
/// instrumented this game to log every update to a trace file."
/// Writes that do not change the stored value are suppressed (they are not
/// state updates and would not need checkpointing).
class UnitTable {
 public:
  explicit UnitTable(uint32_t num_units);

  uint32_t num_units() const { return num_units_; }

  int32_t Get(UnitId unit, uint32_t attr) const {
    TP_DCHECK(unit < num_units_ && attr < kNumAttributes);
    return values_[Index(unit, attr)];
  }

  /// Writes and reports to the sink; no-op if the value is unchanged.
  void Set(UnitId unit, uint32_t attr, int32_t value) {
    TP_DCHECK(unit < num_units_ && attr < kNumAttributes);
    int32_t& slot = values_[Index(unit, attr)];
    if (slot == value) return;
    slot = value;
    if (sink_ != nullptr) sink_->OnUpdate(unit, attr, value);
  }

  /// Writes without instrumentation (initial world setup before tick 0;
  /// the initial state is part of the first full checkpoint, not an update).
  void SetRaw(UnitId unit, uint32_t attr, int32_t value) {
    values_[Index(unit, attr)] = value;
  }

  /// Installs (or removes, with nullptr) the update sink.
  void set_sink(UpdateSink* sink) { sink_ = sink; }

  // Typed accessors for readability in the AI code.
  UnitType type(UnitId u) const {
    return static_cast<UnitType>(Get(u, kAttrType));
  }
  int32_t team(UnitId u) const { return Get(u, kAttrTeam); }
  int32_t x(UnitId u) const { return Get(u, kAttrX); }
  int32_t y(UnitId u) const { return Get(u, kAttrY); }
  int32_t health(UnitId u) const { return Get(u, kAttrHealth); }
  UnitState state(UnitId u) const {
    return static_cast<UnitState>(Get(u, kAttrState));
  }
  UnitId target(UnitId u) const {
    return static_cast<UnitId>(Get(u, kAttrTarget));
  }
  int32_t ready_tick(UnitId u) const { return Get(u, kAttrReadyTick); }

  /// Squared euclidean distance between two units.
  int64_t Dist2(UnitId a, UnitId b) const {
    const int64_t dx = x(a) - x(b);
    const int64_t dy = y(a) - y(b);
    return dx * dx + dy * dy;
  }

  /// Order-independent 64-bit digest of the full entity state: the
  /// wrap-around sum of HashUnitState over every unit. Two tables are
  /// digest-equal iff every unit's 13 attributes match (modulo hash
  /// collisions), regardless of the order units are visited in -- the
  /// recovery oracle for the game workload.
  uint64_t StateDigest() const;

 private:
  size_t Index(UnitId unit, uint32_t attr) const {
    return static_cast<size_t>(unit) * kNumAttributes + attr;
  }

  uint32_t num_units_;
  std::vector<int32_t> values_;
  UpdateSink* sink_ = nullptr;
};

}  // namespace game
}  // namespace tickpoint

#endif  // TICKPOINT_GAME_UNIT_H_
