// Spatial hash grid over the *active* units, rebuilt once per tick.
// Neighbor queries drive the decision-tree AI (nearest enemy, weakest ally).
//
// Buckets hold packed snapshots of (x, y, team, health, id) taken at
// rebuild time, so the hot query loops scan contiguous memory instead of
// chasing rows of the 20+ MB attribute table. Positions are thus up to one
// tick stale for units that already moved this tick -- acceptable for game
// AI and irrelevant to checkpointing (the trace records the real writes).
#ifndef TICKPOINT_GAME_GRID_H_
#define TICKPOINT_GAME_GRID_H_

#include <cstdint>
#include <vector>

#include "game/unit.h"

namespace tickpoint {
namespace game {

/// Uniform bucket grid; bucket side is a power of two.
class SpatialGrid {
 public:
  SpatialGrid(int32_t map_size, int32_t bucket_shift);

  /// Clears and reinserts the given units at their current positions.
  void Rebuild(const UnitTable& units, const std::vector<UnitId>& active);

  /// Nearest living enemy of `unit` within `radius`; kNoUnit if none.
  UnitId NearestEnemy(const UnitTable& units, UnitId unit,
                      int32_t radius) const;

  /// Nearest living ally (not `unit` itself) within `radius`.
  UnitId NearestAlly(const UnitTable& units, UnitId unit,
                     int32_t radius) const;

  /// The living, damaged ally with the lowest health within `radius`,
  /// excluding `unit` itself; kNoUnit if none.
  UnitId WeakestAlly(const UnitTable& units, UnitId unit,
                     int32_t radius) const;

  int32_t map_size() const { return map_size_; }

 private:
  struct Entry {
    int32_t x;
    int32_t y;
    int32_t team;
    int32_t health;
    UnitId id;
  };

  template <typename Filter>
  UnitId ScanNear(const UnitTable& units, UnitId unit, int32_t radius,
                  Filter filter) const;

  int32_t map_size_;
  int32_t bucket_shift_;
  int32_t buckets_per_side_;
  std::vector<std::vector<Entry>> buckets_;
};

}  // namespace game
}  // namespace tickpoint

#endif  // TICKPOINT_GAME_GRID_H_
