// Decision-tree AI for the three unit types (paper Section 4.4):
//   - knights attack and pursue nearby targets,
//   - archers attack from range while staying near allied units,
//   - healers heal their weakest nearby ally,
//   - every unit clusters with allies and otherwise advances on the enemy
//     base.
#ifndef TICKPOINT_GAME_AI_H_
#define TICKPOINT_GAME_AI_H_

#include "game/grid.h"
#include "game/unit.h"

namespace tickpoint {
namespace game {

/// Per-tick context handed to the unit AI.
struct AiContext {
  UnitTable* units;
  const SpatialGrid* grid;
  int32_t tick;
  // Enemy base position for each team's units (attack direction).
  int32_t enemy_base_x[2];
  int32_t enemy_base_y[2];
};

/// Runs one decision-tree step for `unit`. Precondition: unit is active and
/// alive (the world handles death/respawn before calling the AI).
void StepUnit(const AiContext& ctx, UnitId unit);

/// Movement helper (exposed for tests): steps `unit` one kMoveStep toward
/// (tx, ty) along the axis with the larger remaining distance -- units move
/// "possibly only in one dimension" per tick (paper Section 5.4).
void MoveToward(const AiContext& ctx, UnitId unit, int32_t tx, int32_t ty);

}  // namespace game
}  // namespace tickpoint

#endif  // TICKPOINT_GAME_AI_H_
