#include "game/shard_adapter.h"

#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "util/random.h"

namespace tickpoint {
namespace game {

namespace {

// Simulation-state cell map, relative to base = num_units * 13 (the first
// cell past the unit rows). These cells ride the normal update path; the
// digest oracles never read them (TableStateDigest stops at the unit
// rows).
//   base + 0..7   RNG state: 4 x uint64, each split lo/hi into two int32s
//   base + 8      world tick (== engine tick of the last applied tick)
//   base + 9      active-set size (written once at bulk load; constant)
//   base + 10,11  the ZONE's kill events per team during the last world
//                 tick (summed across zones at resume to rebuild the
//                 cross-zone morale pipeline's last_tick_kills_)
//   base + 12+s   active_[s] (slot order matters: rotation iterates slots)
constexpr uint32_t kSimTickCell = 8;
constexpr uint32_t kSimActiveCountCell = 9;
constexpr uint32_t kSimKillsCell = 10;
constexpr uint32_t kSimActiveBase = 12;

uint64_t SimCellBase(const WorldConfig& zone_world) {
  return static_cast<uint64_t>(zone_world.num_units) * kNumAttributes;
}

/// Total simulation-state cells for one zone.
uint64_t SimCellCount(const WorldConfig& zone_world) {
  return kSimActiveBase + World::ActiveTarget(zone_world);
}

int32_t Lo32(uint64_t word) {
  return static_cast<int32_t>(static_cast<uint32_t>(word));
}
int32_t Hi32(uint64_t word) {
  return static_cast<int32_t>(static_cast<uint32_t>(word >> 32));
}
uint64_t Join64(int32_t lo, int32_t hi) {
  return static_cast<uint64_t>(static_cast<uint32_t>(lo)) |
         (static_cast<uint64_t>(static_cast<uint32_t>(hi)) << 32);
}

/// Scales in (0, 1] only: a scale above 1 would push a zone's ActiveTarget
/// past the base config's, which sizes the shared ZoneLayout's sim rows.
Status ValidateZoneActivity(const GameShardAdapterConfig& config) {
  if (config.zone_activity.empty()) return Status::OK();
  if (config.zone_activity.size() != config.engine.num_shards) {
    return Status::InvalidArgument(
        "zone_activity has " + std::to_string(config.zone_activity.size()) +
        " entries for a " + std::to_string(config.engine.num_shards) +
        "-zone fleet");
  }
  for (const double scale : config.zone_activity) {
    if (!(scale > 0.0 && scale <= 1.0)) {
      return Status::InvalidArgument(
          "zone_activity entries must be in (0, 1]");
    }
  }
  return Status::OK();
}

}  // namespace

/// Captures one zone's attribute writes during a world tick: the cell
/// deltas mailed to the zone's shard, plus the kill events feeding the
/// cross-zone tally. One sink per zone, so parallel zone stepping shares
/// no mutable state.
struct GameShardAdapter::ZoneSink : public UpdateSink {
  const UnitTable* units = nullptr;
  std::vector<CellUpdate> updates;
  uint64_t kills[2] = {0, 0};

  void BeginWorldTick() {
    updates.clear();
    kills[0] = kills[1] = 0;
  }

  void OnUpdate(UnitId unit, uint32_t attr, int32_t value) override {
    updates.push_back(
        CellUpdate{static_cast<uint32_t>(unit * kNumAttributes + attr),
                   value});
    // kAttrKills only ever increments by one, so each write is one kill
    // event; the team lookup is why the sink holds the unit table.
    if (attr == kAttrKills) ++kills[units->team(unit) == 0 ? 0 : 1];
  }
};

GameShardAdapter::GameShardAdapter(const GameShardAdapterConfig& config)
    : config_(config) {}

GameShardAdapter::~GameShardAdapter() = default;

StateLayout GameShardAdapter::ZoneLayout(const WorldConfig& zone_world) {
  // Unit rows plus enough system rows for the simulation-state cells.
  const uint32_t sim_rows = static_cast<uint32_t>(
      (SimCellCount(zone_world) + kNumAttributes - 1) / kNumAttributes);
  return StateLayout{.rows = zone_world.num_units + sim_rows,
                     .cols = kNumAttributes,
                     .cell_size = 4,
                     .object_size = 512};
}

uint64_t GameShardAdapter::ZoneSeed(uint64_t fleet_seed, uint32_t zone) {
  // SplitMix64 of (seed, zone): decorrelates the zone battles while
  // keeping every zone a pure function of the explicit fleet seed.
  uint64_t state =
      fleet_seed ^ (0x632be59bd9b4e019ULL * (static_cast<uint64_t>(zone) + 1));
  return SplitMix64(&state);
}

std::vector<double> GameShardAdapter::ZipfZoneActivity(uint32_t zones,
                                                       double skew) {
  std::vector<double> activity(zones, 1.0);
  for (uint32_t z = 0; z < zones; ++z) {
    activity[z] = 1.0 / std::pow(static_cast<double>(z + 1), skew);
  }
  return activity;
}

WorldConfig GameShardAdapter::ZoneWorldConfig(uint32_t z) const {
  WorldConfig zone_config = config_.zone_world;
  zone_config.seed = ZoneSeed(config_.zone_world.seed, z);
  if (!config_.zone_activity.empty()) {
    zone_config.active_fraction *= config_.zone_activity[z];
  }
  return zone_config;
}

void GameShardAdapter::SpawnZones() {
  const uint32_t zones = config_.engine.num_shards;
  zones_.reserve(zones);
  sinks_.reserve(zones);
  for (uint32_t z = 0; z < zones; ++z) {
    zones_.push_back(std::make_unique<World>(ZoneWorldConfig(z)));
    auto sink = std::make_unique<ZoneSink>();
    sink->units = &zones_.back()->units();
    sinks_.push_back(std::move(sink));
  }
}

StatusOr<std::unique_ptr<GameShardAdapter>> GameShardAdapter::Open(
    const GameShardAdapterConfig& config) {
  if (config.zone_world.num_units < 16) {
    return Status::InvalidArgument(
        "zone_world.num_units must be at least 16 per zone");
  }
  TP_RETURN_NOT_OK(ValidateZoneActivity(config));
  GameShardAdapterConfig resolved = config;
  resolved.engine.shard.layout = ZoneLayout(config.zone_world);
  std::unique_ptr<GameShardAdapter> adapter(new GameShardAdapter(resolved));
  TP_ASSIGN_OR_RETURN(
      adapter->fleet_,
      Fleet::Create(resolved.engine.shard.dir, resolved.engine));
  adapter->SpawnZones();
  return adapter;
}

StatusOr<std::unique_ptr<GameShardAdapter>> GameShardAdapter::OpenResumed(
    const GameShardAdapterConfig& config, RecoveredFleet recovered) {
  if (config.zone_world.num_units < 16) {
    return Status::InvalidArgument(
        "zone_world.num_units must be at least 16 per zone");
  }
  TP_RETURN_NOT_OK(ValidateZoneActivity(config));
  GameShardAdapterConfig resolved = config;
  resolved.engine.shard.layout = ZoneLayout(config.zone_world);
  const FleetManifest& manifest = recovered.manifest();
  const StateLayout& expect = resolved.engine.shard.layout;
  if (manifest.layout.rows != expect.rows ||
      manifest.layout.cols != expect.cols ||
      manifest.layout.cell_size != expect.cell_size) {
    return Status::InvalidArgument(
        "recovered fleet layout does not match zone_world (was this fleet "
        "created by a GameShardAdapter with the same WorldConfig?)");
  }
  if (manifest.num_partitions != resolved.engine.num_shards) {
    return Status::InvalidArgument(
        "recovered fleet has " + std::to_string(manifest.num_partitions) +
        " partitions, config expects " +
        std::to_string(resolved.engine.num_shards) + " zones");
  }
  const uint64_t resume_tick = recovered.resume_tick();
  if (resume_tick < 1) {
    return Status::FailedPrecondition(
        "recovered fleet never finished its bulk-load tick; nothing to "
        "resume into");
  }
  std::unique_ptr<GameShardAdapter> adapter(new GameShardAdapter(resolved));
  adapter->SpawnZones();
  const uint32_t num_units = resolved.zone_world.num_units;
  const uint32_t base = static_cast<uint32_t>(SimCellBase(resolved.zone_world));
  adapter->last_tick_kills_[0] = adapter->last_tick_kills_[1] = 0;
  for (uint32_t z = 0; z < adapter->num_zones(); ++z) {
    // zone_activity scales ActiveTarget per zone, so the system-row
    // validation must use the ZONE's config, not the base one.
    const uint32_t target = World::ActiveTarget(adapter->ZoneWorldConfig(z));
    const StateTable& table = recovered.tables()[z];
    World& world = *adapter->zones_[z];
    // Unit rows: overwrite the freshly spawned table via SetRaw (recovery
    // state is the baseline, not an update stream).
    for (UnitId u = 0; u < num_units; ++u) {
      for (uint32_t attr = 0; attr < kNumAttributes; ++attr) {
        world.units().SetRaw(
            u, attr,
            table.ReadCell(static_cast<uint64_t>(u) * kNumAttributes + attr));
      }
    }
    // System rows: the simulation bookkeeping. Validate before restoring
    // -- a disagreement means the partition's image is not this fleet's
    // (or the system rows were clobbered), which exactness cannot repair.
    const int32_t world_tick = table.ReadCell(base + kSimTickCell);
    if (world_tick < 0 ||
        static_cast<uint64_t>(world_tick) != resume_tick - 1) {
      return Status::Corruption(
          "zone " + std::to_string(z) + " system rows record world tick " +
          std::to_string(world_tick) + ", recovery landed at engine tick " +
          std::to_string(resume_tick) + " (expect " +
          std::to_string(resume_tick - 1) + ")");
    }
    const int32_t active_count = table.ReadCell(base + kSimActiveCountCell);
    if (active_count < 0 || static_cast<uint32_t>(active_count) != target) {
      return Status::Corruption(
          "zone " + std::to_string(z) + " system rows record " +
          std::to_string(active_count) + " active units, world expects " +
          std::to_string(target));
    }
    std::vector<UnitId> active(target);
    std::vector<uint8_t> seen(num_units, 0);
    for (uint32_t s = 0; s < target; ++s) {
      const int32_t id = table.ReadCell(base + kSimActiveBase + s);
      if (id < 0 || static_cast<uint32_t>(id) >= num_units ||
          seen[static_cast<uint32_t>(id)]) {
        return Status::Corruption("zone " + std::to_string(z) +
                                  " active slot " + std::to_string(s) +
                                  " holds invalid unit " + std::to_string(id));
      }
      seen[static_cast<uint32_t>(id)] = 1;
      active[s] = static_cast<UnitId>(id);
    }
    uint64_t rng[4];
    for (uint32_t w = 0; w < 4; ++w) {
      rng[w] = Join64(table.ReadCell(base + 2 * w),
                      table.ReadCell(base + 2 * w + 1));
    }
    world.RestoreSimState(rng, world_tick, std::move(active));
    adapter->last_tick_kills_[0] += static_cast<uint32_t>(
        table.ReadCell(base + kSimKillsCell + 0));
    adapter->last_tick_kills_[1] += static_cast<uint32_t>(
        table.ReadCell(base + kSimKillsCell + 1));
  }
  // Resume consumes the tables, so every read above happened first.
  TP_ASSIGN_OR_RETURN(adapter->fleet_, recovered.Resume());
  adapter->engine_ticks_ = resume_tick;
  return adapter;
}

Status GameShardAdapter::BulkLoadTick() {
  // A fresh engine starts zeroed; the spawned worlds do not. Feed the
  // entire initial state through the update path so the first checkpoint
  // and the logical log can reproduce it (the durability contract treats
  // tick 0 like any other tick).
  if (fleet_ == nullptr) return Status::OK();
  fleet_->BeginTick();
  for (uint32_t z = 0; z < num_zones(); ++z) {
    const UnitTable& units = zones_[z]->units();
    for (UnitId u = 0; u < units.num_units(); ++u) {
      for (uint32_t attr = 0; attr < kNumAttributes; ++attr) {
        fleet_->ApplyUpdate(z, u * kNumAttributes + attr,
                            units.Get(u, attr));
      }
    }
    EmitZoneSimState(z, /*full=*/true);
  }
  return fleet_->EndTick();
}

void GameShardAdapter::EmitZoneSimState(uint32_t z, bool full) {
  const uint32_t base = static_cast<uint32_t>(SimCellBase(config_.zone_world));
  const World& world = *zones_[z];
  uint64_t rng[4];
  world.GetRngState(rng);
  for (uint32_t w = 0; w < 4; ++w) {
    fleet_->ApplyUpdate(z, base + 2 * w, Lo32(rng[w]));
    fleet_->ApplyUpdate(z, base + 2 * w + 1, Hi32(rng[w]));
  }
  fleet_->ApplyUpdate(z, base + kSimTickCell, world.tick());
  fleet_->ApplyUpdate(z, base + kSimKillsCell + 0,
                      static_cast<int32_t>(sinks_[z]->kills[0]));
  fleet_->ApplyUpdate(z, base + kSimKillsCell + 1,
                      static_cast<int32_t>(sinks_[z]->kills[1]));
  const std::vector<UnitId>& active = world.active_units();
  if (full) {
    fleet_->ApplyUpdate(z, base + kSimActiveCountCell,
                        static_cast<int32_t>(active.size()));
    for (uint32_t s = 0; s < active.size(); ++s) {
      fleet_->ApplyUpdate(z, base + kSimActiveBase + s,
                          static_cast<int32_t>(active[s]));
    }
  } else {
    // Steady state: only the slots this tick's rotation changed.
    for (uint32_t s : world.rotated_slots()) {
      fleet_->ApplyUpdate(z, base + kSimActiveBase + s,
                          static_cast<int32_t>(active[s]));
    }
  }
}

void GameShardAdapter::StepWorldTick() {
  for (uint32_t z = 0; z < num_zones(); ++z) {
    sinks_[z]->BeginWorldTick();
    zones_[z]->set_sink(sinks_[z].get());
  }
  // Cross-zone resolution happens BEFORE the zones fork: last tick's
  // fleet-wide kill tally is already final, the writes land through the
  // instrumented tables (so they flow into this tick's shard batches), and
  // parallel stepping stays bit-identical to sequential.
  if (config_.cross_zone && last_tick_kills_[0] != last_tick_kills_[1]) {
    const int32_t trailing =
        last_tick_kills_[0] < last_tick_kills_[1] ? 0 : 1;
    for (uint32_t z = 0; z < num_zones(); ++z) {
      World& world = *zones_[z];
      uint32_t heralds = 0;
      for (UnitId u : world.active_units()) {
        if (heralds >= kCrossZoneHeralds) break;
        if (world.units().team(u) != trailing ||
            world.units().health(u) <= 0) {
          continue;
        }
        const int32_t morale = world.units().Get(u, kAttrMorale);
        if (morale > 0) world.units().Set(u, kAttrMorale, morale - 1);
        ++heralds;
      }
    }
  }
  if (config_.parallel_step && zones_.size() > 1) {
    std::vector<std::thread> workers;
    workers.reserve(zones_.size() - 1);
    for (uint32_t z = 1; z < num_zones(); ++z) {
      workers.emplace_back([world = zones_[z].get()] { world->Tick(); });
    }
    zones_[0]->Tick();
    for (std::thread& worker : workers) worker.join();
  } else {
    for (uint32_t z = 0; z < num_zones(); ++z) zones_[z]->Tick();
  }
  last_tick_kills_[0] = last_tick_kills_[1] = 0;
  for (uint32_t z = 0; z < num_zones(); ++z) {
    zones_[z]->set_sink(nullptr);
    last_tick_kills_[0] += sinks_[z]->kills[0];
    last_tick_kills_[1] += sinks_[z]->kills[1];
  }
}

Status GameShardAdapter::SubmitTickToEngine() {
  if (fleet_ == nullptr) return Status::OK();
  fleet_->BeginTick();
  for (uint32_t z = 0; z < num_zones(); ++z) {
    for (const CellUpdate& update : sinks_[z]->updates) {
      fleet_->ApplyUpdate(z, update.cell, update.value);
    }
    game_updates_ += sinks_[z]->updates.size();
    EmitZoneSimState(z, /*full=*/false);
  }
  return fleet_->EndTick();
}

Status GameShardAdapter::Tick() {
  if (engine_ticks_ == 0) {
    TP_RETURN_NOT_OK(BulkLoadTick());
    ++engine_ticks_;
    return Status::OK();
  }
  StepWorldTick();
  TP_RETURN_NOT_OK(SubmitTickToEngine());
  ++engine_ticks_;
  return Status::OK();
}

Status GameShardAdapter::RunTicks(uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) {
    TP_RETURN_NOT_OK(Tick());
  }
  return Status::OK();
}

Status GameShardAdapter::MigrateZone(uint32_t zone, uint32_t to_slot) {
  if (fleet_ == nullptr) {
    return Status::FailedPrecondition("MigrateZone on a golden replay");
  }
  if (zone >= num_zones()) {
    return Status::InvalidArgument("MigrateZone of unknown zone " +
                                   std::to_string(zone));
  }
  // The hand-off point is a committed consistent cut: the game keeps
  // playing real ticks until the fleet reaches the cut tick, so the zone
  // servers never pause for the coordination -- only the migration's own
  // bootstrap write is downtime.
  TP_ASSIGN_OR_RETURN(const uint64_t cut_tick,
                      fleet_->RequestConsistentCut());
  while (engine_ticks_ <= cut_tick) {
    TP_RETURN_NOT_OK(Tick());
  }
  TP_RETURN_NOT_OK(fleet_->CommitConsistentCut());
  return fleet_->MigratePartition(zone, to_slot);
}

std::vector<std::vector<uint64_t>> GameShardAdapter::GoldenZoneDigests(
    const GameShardAdapterConfig& config, uint64_t world_ticks) {
  GameShardAdapter golden(config);  // no engine: pure world replay
  golden.SpawnZones();
  std::vector<std::vector<uint64_t>> digests;
  digests.reserve(world_ticks + 1);
  const auto snapshot = [&golden, &digests] {
    std::vector<uint64_t> row;
    row.reserve(golden.num_zones());
    for (uint32_t z = 0; z < golden.num_zones(); ++z) {
      row.push_back(golden.ZoneDigest(z));
    }
    digests.push_back(std::move(row));
  };
  snapshot();
  for (uint64_t t = 0; t < world_ticks; ++t) {
    golden.StepWorldTick();
    snapshot();
  }
  return digests;
}

uint64_t TableStateDigest(const StateTable& table, uint32_t num_units) {
  TP_CHECK(static_cast<uint64_t>(num_units) * kNumAttributes <=
           table.layout().num_cells());
  uint64_t digest = 0;
  int32_t attrs[kNumAttributes];
  for (UnitId u = 0; u < num_units; ++u) {
    for (uint32_t attr = 0; attr < kNumAttributes; ++attr) {
      attrs[attr] = table.ReadCell(static_cast<uint64_t>(u) * kNumAttributes +
                                   attr);
    }
    digest += HashUnitState(u, attrs);
  }
  return digest;
}

StatusOr<GameFleetBenchResult> MeasureGameFleet(
    const GameShardAdapterConfig& config, uint64_t engine_ticks,
    double tick_hz) {
  using Clock = std::chrono::steady_clock;
  TP_ASSIGN_OR_RETURN(auto adapter, GameShardAdapter::Open(config));
  GameFleetBenchResult result;
  const auto start = Clock::now();
  const std::chrono::duration<double> tick_period(
      tick_hz > 0 ? 1.0 / tick_hz : 0.0);
  double tick_sum = 0.0;
  uint64_t measured = 0;
  for (uint64_t tick = 0; tick < engine_ticks; ++tick) {
    const auto tick_start = Clock::now();
    TP_RETURN_NOT_OK(adapter->Tick());
    const double tick_seconds =
        std::chrono::duration<double>(Clock::now() - tick_start).count();
    if (tick >= 1) {
      // The bulk-load tick is restart cost, not gameplay: exclude it from
      // the steady-state tick timing the same way CheckpointStats skips
      // each shard's cold first checkpoint.
      tick_sum += tick_seconds;
      ++measured;
      if (tick_seconds > result.max_tick_seconds) {
        result.max_tick_seconds = tick_seconds;
      }
    }
    if (tick_hz > 0) {
      std::this_thread::sleep_until(start + (tick + 1) * tick_period);
    }
  }
  if (measured > 0) {
    result.avg_tick_seconds = tick_sum / static_cast<double>(measured);
  }
  result.updates = adapter->game_updates();
  TP_RETURN_NOT_OK(adapter->fleet()->SimulateCrash());
  result.checkpoints = adapter->engine()->CheckpointStats(/*skip_first=*/true);

  // Manifest-driven recovery from the root alone: what a restarting zone
  // server actually has after a crash.
  const auto recovery_start = Clock::now();
  auto recovered_or = Fleet::Recover(adapter->fleet()->root());
  if (!recovered_or.ok()) return recovered_or.status();
  result.recovery_seconds =
      std::chrono::duration<double>(Clock::now() - recovery_start).count();
  RecoveredFleet& recovered = *recovered_or;
  result.recovered_ticks = recovered.result().fleet.min_recovered_ticks;
  result.digests_match = result.recovered_ticks == engine_ticks;
  for (uint32_t z = 0; z < adapter->num_zones(); ++z) {
    result.digests_match =
        result.digests_match &&
        TableStateDigest(recovered.tables()[z],
                         config.zone_world.num_units) == adapter->ZoneDigest(z);
  }
  return result;
}

}  // namespace game
}  // namespace tickpoint
