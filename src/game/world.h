// The game world: unit table, active set management, and the tick loop.
//
// Paper Section 4.4: "In typical MMOs, not all characters are active at all
// times. In the Knights and Archers game, 10% of the characters are active
// at any given moment and the active set changes over time. Units leave and
// join the active set such that it is completely renewed every 100 ticks
// with high probability."
#ifndef TICKPOINT_GAME_WORLD_H_
#define TICKPOINT_GAME_WORLD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "game/ai.h"
#include "game/grid.h"
#include "game/unit.h"
#include "model/layout.h"
#include "trace/materialized.h"
#include "util/random.h"

namespace tickpoint {
namespace game {

/// World construction parameters. Defaults match the paper's trace
/// (Table 5): 400,128 units, 13 attributes, 10% active.
struct WorldConfig {
  uint32_t num_units = 400128;
  double active_fraction = 0.10;
  /// Per-tick probability that an active unit is rotated out. 0.05 renews
  /// ~99.4% of the active set within 100 ticks.
  double rotation_probability = 0.05;
  int32_t map_size = 4096;
  int32_t bucket_shift = 6;  // 64-unit buckets
  /// RNG seed for spawn jitter and active-set rotation. ALWAYS explicit and
  /// fixed -- never derived from wall-clock or std::random_device -- so a
  /// golden (uncrashed) run and a recovery re-execution produce
  /// bit-identical worlds and StateDigest() is a valid recovery oracle.
  /// Every construction site (tests, benches, the shard adapter) passes a
  /// seed rather than relying on this default.
  uint64_t seed = 7;
  /// Spawn disc radius around each team's home base.
  int32_t spawn_radius = 1400;
};

/// A deterministic Knights-and-Archers battle.
class World {
 public:
  explicit World(const WorldConfig& config);

  /// Runs one simulation tick: rotate the active set, rebuild the spatial
  /// index, respawn the fallen, and run every active unit's decision tree.
  void Tick();

  uint32_t num_units() const { return config_.num_units; }
  int32_t tick() const { return tick_; }
  const WorldConfig& config() const { return config_; }
  UnitTable& units() { return units_; }
  const UnitTable& units() const { return units_; }
  const std::vector<UnitId>& active_units() const { return active_; }

  /// Size of the active set under `config` -- constant for a world's whole
  /// lifetime (rotation swaps members, never the count). Single owner of
  /// the formula; the shard adapter sizes its sim-state rows with it.
  static uint32_t ActiveTarget(const WorldConfig& config);

  // ---- Simulation-state capture/restore (checkpointed resume) ----
  //
  // The unit table flows through the engine's normal update/checkpoint
  // path, but a resumed battle is only BIT-IDENTICAL to the uncrashed one
  // if the simulation bookkeeping -- the RNG, the active set, and the tick
  // counter -- comes back too (a reseeded RNG or resampled active set
  // diverges on the first post-resume rotation). The shard adapter
  // serializes these through "system rows" past the unit rows.

  /// Copies the RNG's raw state out (see Rng::SaveState).
  void GetRngState(uint64_t out[4]) const { rng_.SaveState(out); }

  /// Active-set slots RotateActiveSet changed during the last Tick() (slot
  /// index, not unit id): the per-tick delta the adapter serializes
  /// instead of re-emitting the whole active set each tick.
  const std::vector<uint32_t>& rotated_slots() const { return rotated_slots_; }

  /// Restores the simulation bookkeeping captured from a previous
  /// incarnation: RNG state, tick counter, and the active set (slot order
  /// matters -- rotation iterates slots in order). The caller has already
  /// restored the unit table via SetRaw. `active` must hold
  /// ActiveTarget(config()) distinct in-range units.
  void RestoreSimState(const uint64_t rng_state[4], int32_t tick,
                       std::vector<UnitId> active);

  /// Installs an update sink receiving every attribute write (see
  /// UnitTable::Set).
  void set_sink(UpdateSink* sink) { units_.set_sink(sink); }

  /// Order-independent 64-bit digest of the checkpointable entity state
  /// (every unit's 13 attributes; see UnitTable::StateDigest). Simulation
  /// bookkeeping that is NOT part of the durable state table -- the RNG,
  /// the active set, the tick counter -- is deliberately excluded: the
  /// digest answers "would a recovered partition equal this world's state
  /// table", which is exactly what checkpoint recovery guarantees.
  uint64_t StateDigest() const { return units_.StateDigest(); }

  /// The trace-table layout corresponding to this world
  /// (num_units rows x 13 columns).
  StateLayout TraceLayout() const;

 private:
  void SpawnUnits();
  void RotateActiveSet();
  void RespawnDead();

  WorldConfig config_;
  UnitTable units_;
  SpatialGrid grid_;
  Rng rng_;
  int32_t tick_ = 0;
  std::vector<UnitId> active_;
  std::vector<uint8_t> is_active_;
  /// Slots rotated during the last Tick() (see rotated_slots()).
  std::vector<uint32_t> rotated_slots_;
  int32_t base_x_[2];
  int32_t base_y_[2];
};

/// Runs a world for `num_ticks` ticks, recording every attribute update into
/// a materialized trace (cell = unit * 13 + attribute). This is the paper's
/// "update trace from our prototype game server".
MaterializedTrace RecordGameTrace(const WorldConfig& config,
                                  uint64_t num_ticks);

}  // namespace game
}  // namespace tickpoint

#endif  // TICKPOINT_GAME_WORLD_H_
