// The game world: unit table, active set management, and the tick loop.
//
// Paper Section 4.4: "In typical MMOs, not all characters are active at all
// times. In the Knights and Archers game, 10% of the characters are active
// at any given moment and the active set changes over time. Units leave and
// join the active set such that it is completely renewed every 100 ticks
// with high probability."
#ifndef TICKPOINT_GAME_WORLD_H_
#define TICKPOINT_GAME_WORLD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "game/ai.h"
#include "game/grid.h"
#include "game/unit.h"
#include "model/layout.h"
#include "trace/materialized.h"
#include "util/random.h"

namespace tickpoint {
namespace game {

/// World construction parameters. Defaults match the paper's trace
/// (Table 5): 400,128 units, 13 attributes, 10% active.
struct WorldConfig {
  uint32_t num_units = 400128;
  double active_fraction = 0.10;
  /// Per-tick probability that an active unit is rotated out. 0.05 renews
  /// ~99.4% of the active set within 100 ticks.
  double rotation_probability = 0.05;
  int32_t map_size = 4096;
  int32_t bucket_shift = 6;  // 64-unit buckets
  /// RNG seed for spawn jitter and active-set rotation. ALWAYS explicit and
  /// fixed -- never derived from wall-clock or std::random_device -- so a
  /// golden (uncrashed) run and a recovery re-execution produce
  /// bit-identical worlds and StateDigest() is a valid recovery oracle.
  /// Every construction site (tests, benches, the shard adapter) passes a
  /// seed rather than relying on this default.
  uint64_t seed = 7;
  /// Spawn disc radius around each team's home base.
  int32_t spawn_radius = 1400;
};

/// A deterministic Knights-and-Archers battle.
class World {
 public:
  explicit World(const WorldConfig& config);

  /// Runs one simulation tick: rotate the active set, rebuild the spatial
  /// index, respawn the fallen, and run every active unit's decision tree.
  void Tick();

  uint32_t num_units() const { return config_.num_units; }
  int32_t tick() const { return tick_; }
  const WorldConfig& config() const { return config_; }
  UnitTable& units() { return units_; }
  const UnitTable& units() const { return units_; }
  const std::vector<UnitId>& active_units() const { return active_; }

  /// Installs an update sink receiving every attribute write (see
  /// UnitTable::Set).
  void set_sink(UpdateSink* sink) { units_.set_sink(sink); }

  /// Order-independent 64-bit digest of the checkpointable entity state
  /// (every unit's 13 attributes; see UnitTable::StateDigest). Simulation
  /// bookkeeping that is NOT part of the durable state table -- the RNG,
  /// the active set, the tick counter -- is deliberately excluded: the
  /// digest answers "would a recovered partition equal this world's state
  /// table", which is exactly what checkpoint recovery guarantees.
  uint64_t StateDigest() const { return units_.StateDigest(); }

  /// The trace-table layout corresponding to this world
  /// (num_units rows x 13 columns).
  StateLayout TraceLayout() const;

 private:
  void SpawnUnits();
  void RotateActiveSet();
  void RespawnDead();

  WorldConfig config_;
  UnitTable units_;
  SpatialGrid grid_;
  Rng rng_;
  int32_t tick_ = 0;
  std::vector<UnitId> active_;
  std::vector<uint8_t> is_active_;
  int32_t base_x_[2];
  int32_t base_y_[2];
};

/// Runs a world for `num_ticks` ticks, recording every attribute update into
/// a materialized trace (cell = unit * 13 + attribute). This is the paper's
/// "update trace from our prototype game server".
MaterializedTrace RecordGameTrace(const WorldConfig& config,
                                  uint64_t num_ticks);

}  // namespace game
}  // namespace tickpoint

#endif  // TICKPOINT_GAME_WORLD_H_
