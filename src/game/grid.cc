#include "game/grid.h"

#include <algorithm>

namespace tickpoint {
namespace game {

SpatialGrid::SpatialGrid(int32_t map_size, int32_t bucket_shift)
    : map_size_(map_size),
      bucket_shift_(bucket_shift),
      buckets_per_side_((map_size + (1 << bucket_shift) - 1) >> bucket_shift) {
  TP_CHECK(map_size > 0 && bucket_shift >= 4);
  buckets_.resize(static_cast<size_t>(buckets_per_side_) * buckets_per_side_);
}

void SpatialGrid::Rebuild(const UnitTable& units,
                          const std::vector<UnitId>& active) {
  for (auto& bucket : buckets_) bucket.clear();
  for (UnitId u : active) {
    const int32_t x = std::clamp(units.x(u), 0, map_size_ - 1);
    const int32_t y = std::clamp(units.y(u), 0, map_size_ - 1);
    const int32_t bx = x >> bucket_shift_;
    const int32_t by = y >> bucket_shift_;
    buckets_[static_cast<size_t>(by) * buckets_per_side_ + bx].push_back(
        Entry{x, y, units.team(u), units.health(u), u});
  }
}

template <typename Filter>
UnitId SpatialGrid::ScanNear(const UnitTable& units, UnitId unit,
                             int32_t radius, Filter filter) const {
  const int32_t ux = units.x(unit);
  const int32_t uy = units.y(unit);
  const int32_t b0x = std::clamp(ux - radius, 0, map_size_ - 1) >> bucket_shift_;
  const int32_t b1x = std::clamp(ux + radius, 0, map_size_ - 1) >> bucket_shift_;
  const int32_t b0y = std::clamp(uy - radius, 0, map_size_ - 1) >> bucket_shift_;
  const int32_t b1y = std::clamp(uy + radius, 0, map_size_ - 1) >> bucket_shift_;
  const int64_t radius2 = static_cast<int64_t>(radius) * radius;

  UnitId best = kNoUnit;
  int64_t best_key = INT64_MAX;
  for (int32_t by = b0y; by <= b1y; ++by) {
    const size_t row = static_cast<size_t>(by) * buckets_per_side_;
    for (int32_t bx = b0x; bx <= b1x; ++bx) {
      for (const Entry& entry : buckets_[row + bx]) {
        if (entry.id == unit) continue;
        const int64_t dx = entry.x - ux;
        const int64_t dy = entry.y - uy;
        const int64_t d2 = dx * dx + dy * dy;
        if (d2 > radius2) continue;
        int64_t key;
        if (!filter(entry, d2, &key)) continue;
        if (key < best_key) {
          best_key = key;
          best = entry.id;
        }
      }
    }
  }
  return best;
}

UnitId SpatialGrid::NearestEnemy(const UnitTable& units, UnitId unit,
                                 int32_t radius) const {
  const int32_t my_team = units.team(unit);
  return ScanNear(units, unit, radius,
                  [my_team](const Entry& entry, int64_t d2, int64_t* key) {
                    if (entry.team == my_team || entry.health <= 0) {
                      return false;
                    }
                    *key = d2;
                    return true;
                  });
}

UnitId SpatialGrid::NearestAlly(const UnitTable& units, UnitId unit,
                                int32_t radius) const {
  const int32_t my_team = units.team(unit);
  return ScanNear(units, unit, radius,
                  [my_team](const Entry& entry, int64_t d2, int64_t* key) {
                    if (entry.team != my_team || entry.health <= 0) {
                      return false;
                    }
                    *key = d2;
                    return true;
                  });
}

UnitId SpatialGrid::WeakestAlly(const UnitTable& units, UnitId unit,
                                int32_t radius) const {
  const int32_t my_team = units.team(unit);
  return ScanNear(units, unit, radius,
                  [my_team](const Entry& entry, int64_t d2, int64_t* key) {
                    (void)d2;
                    if (entry.team != my_team) return false;
                    if (entry.health <= 0 || entry.health >= kMaxHealth) {
                      return false;
                    }
                    // Order by health, ties by id for determinism.
                    *key = static_cast<int64_t>(entry.health) << 32 | entry.id;
                    return true;
                  });
}

}  // namespace game
}  // namespace tickpoint
