// GameShardAdapter: the bridge that finally runs the paper's ACTUAL
// workload -- the Knights-and-Archers game -- on the sharded checkpoint
// fleet (ROADMAP: "Wire the game workload through ShardedEngine").
//
// The world is partitioned spatially into K zones, the way an MMO shards
// its map: each zone is its own battle arena (own map, own disjoint unit
// population, own deterministic simulation loop) realized as one
// game::World per shard. The adapter steps the K zone worlds each tick
// (optionally in parallel, one thread per zone -- the zone-server pacing
// the fleet was built for), captures every attribute write through a
// per-zone UpdateSink, and mails each zone's delta to its shard through
// the ShardedEngine facade: one fleet tick per world tick, cell = local
// unit * 13 + attribute. The per-shard engines then tick, log, and
// checkpoint on their own mutator/writer threads exactly as they do for
// synthetic workloads.
//
// Cross-zone interactions are resolved at tick boundaries, never mid-tick:
// after all zones finish world tick t, the adapter tallies each team's
// kill events across the whole fleet; at the start of tick t+1 "war news"
// reaches every zone and the trailing team's foremost active units lose
// one morale. The writes go through the instrumented UnitTable, so
// cross-zone traffic flows into the shard batches and logical logs like
// any other game update -- and must survive recovery like any other.
//
// Tick mapping (the contract every conformance test leans on):
//   engine tick 0      = bulk load of the spawned worlds (the initial
//                        state enters the engines as updates, since a
//                        fresh engine starts zeroed)
//   engine tick e >= 1 = world tick e of every zone
// so after a crash with recovered_ticks = R, each recovered partition must
// digest-equal the golden (uncrashed) run's zone after R - 1 world ticks.
//
// Determinism: zone worlds are seeded from the fleet seed by ZoneSeed and
// never from wall-clock; parallel and sequential stepping produce
// bit-identical worlds (zones share no mutable state and cross-zone
// effects are applied before the zones fork); the engines are passive
// observers of the deltas. World::StateDigest() therefore turns recovery
// correctness into an exact 64-bit equality check.
//
// Simulation-state rows: each zone's partition carries, past the unit
// rows, a few SYSTEM rows serializing the world's simulation bookkeeping
// -- RNG state, world tick, active set, and the zone's last-tick kill
// tally (see the cell map in shard_adapter.cc). They ride the normal
// update/log/checkpoint path (bulk load writes them all; each tick
// re-writes the RNG/tick/kills cells plus only the rotated active slots),
// so OpenResumed can put a recovered fleet back INTO the battle: the
// resumed worlds continue the same pseudo-random sequence, the same
// active set, and the same cross-zone morale pipeline, bit-identically to
// the uncrashed run. Digest oracles are unaffected: ZoneDigest and
// TableStateDigest read only the unit rows.
#ifndef TICKPOINT_GAME_SHARD_ADAPTER_H_
#define TICKPOINT_GAME_SHARD_ADAPTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/fleet.h"
#include "engine/recovery.h"
#include "engine/sharded_engine.h"
#include "engine/state_table.h"
#include "game/world.h"

namespace tickpoint {
namespace game {

/// Adapter construction parameters.
struct GameShardAdapterConfig {
  /// Per-ZONE world template: num_units is the population of ONE zone, and
  /// `seed` is the FLEET seed (zone z actually runs with
  /// ZoneSeed(seed, z)).
  WorldConfig zone_world;
  /// The fleet: engine.num_shards is K, the number of zones.
  /// engine.shard.layout is overwritten with ZoneLayout(zone_world).
  ShardedEngineConfig engine;
  /// Step the K zone worlds on one thread per zone (fork-join per tick).
  /// false = step sequentially on the caller's thread; both orders are
  /// bit-identical (asserted by the conformance suite).
  bool parallel_step = true;
  /// Resolve cross-zone "war news" morale effects at tick boundaries.
  bool cross_zone = true;
  /// Per-zone activity scale in (0, 1]: zone z runs with active_fraction
  /// * zone_activity[z], so a skewed vector concentrates the battle (and
  /// the write load) on a few hot zones -- the workload the fleet
  /// rebalancer migrates out of. Empty = uniform (every zone at 1.0).
  /// Populations and layouts are unchanged (scales never exceed 1, so the
  /// base config's ActiveTarget bounds every zone's sim rows); supply the
  /// SAME vector on resume, like every other config field.
  std::vector<double> zone_activity;
};

/// How many units per zone receive the cross-zone morale effect per tick.
constexpr uint32_t kCrossZoneHeralds = 8;

/// The K-zone game world driving a sharded checkpoint fleet.
class GameShardAdapter {
 public:
  /// Creates the fleet (Fleet::Create under engine.shard.dir) and spawns
  /// the K zone worlds.
  static StatusOr<std::unique_ptr<GameShardAdapter>> Open(
      const GameShardAdapterConfig& config);

  /// Re-enters the battle from a recovered fleet (Fleet::Recover or
  /// RecoverToCut output): rebuilds each zone world's unit table from its
  /// recovered partition, restores the simulation bookkeeping from the
  /// system rows, resumes the fleet, and continues ticking where the
  /// crashed incarnation stopped -- bit-identically to an uncrashed run
  /// (the resume-mid-battle regression in fleet_resume_test pins this).
  /// `config` must match the recovered fleet's zone shape
  /// (InvalidArgument); FailedPrecondition when the fleet never finished
  /// its bulk-load tick; Corruption when the system rows are inconsistent
  /// with the recovered tick.
  static StatusOr<std::unique_ptr<GameShardAdapter>> OpenResumed(
      const GameShardAdapterConfig& config, RecoveredFleet recovered);

  ~GameShardAdapter();

  GameShardAdapter(const GameShardAdapter&) = delete;
  GameShardAdapter& operator=(const GameShardAdapter&) = delete;

  /// Runs one fleet tick (see the tick mapping in the header comment).
  Status Tick();

  /// Runs `n` fleet ticks.
  Status RunTicks(uint64_t n);

  /// Zone hand-off: moves zone `zone`'s state partition to the fresh shard
  /// slot `to_slot` at a fleet consistent cut. Arms the cut, drives the
  /// game through the cut tick (real gameplay ticks -- the zones keep
  /// simulating while the fleet reaches the hand-off point), commits, and
  /// migrates. The zone WORLD itself is untouched: zones are addressed by
  /// partition id, which is stable across migration, so the same World
  /// keeps feeding the same partition from its new shard directory --
  /// recovery correctness is still one digest equality per zone.
  Status MigrateZone(uint32_t zone, uint32_t to_slot);

  /// Fleet ticks driven so far (== the engine's current_tick()).
  uint64_t engine_ticks() const { return engine_ticks_; }
  /// World ticks each zone has run (engine_ticks - 1 after the bulk load).
  uint64_t world_ticks() const {
    return engine_ticks_ == 0 ? 0 : engine_ticks_ - 1;
  }

  uint32_t num_zones() const { return static_cast<uint32_t>(zones_.size()); }
  const World& zone(uint32_t z) const { return *zones_[z]; }
  /// Digest of zone z's live entity state (the recovery oracle).
  uint64_t ZoneDigest(uint32_t z) const { return zones_[z]->StateDigest(); }

  /// The fleet handle. Null only inside GoldenZoneDigests replays.
  Fleet* fleet() { return fleet_.get(); }
  /// The fleet's engine (stats and per-shard inspection). Null only
  /// inside GoldenZoneDigests replays.
  ShardedEngine* engine() { return fleet_ ? &fleet_->engine() : nullptr; }

  /// Game updates mailed to the engines so far (bulk load excluded).
  uint64_t game_updates() const { return game_updates_; }

  /// The resolved configuration (engine.shard.layout filled in): what
  /// recovery of this fleet's directory must be run with.
  const GameShardAdapterConfig& config() const { return config_; }

  /// The per-shard state layout of one zone: num_units unit rows (13
  /// attributes each) plus the system rows holding the serialized
  /// simulation state (see the header comment).
  static StateLayout ZoneLayout(const WorldConfig& zone_world);

  /// Deterministic per-zone seed derived from the fleet seed. Zone 0 of a
  /// K=1 fleet therefore plays a DIFFERENT battle than a bare
  /// World(zone_world) -- the fleet namespace is its own world.
  static uint64_t ZoneSeed(uint64_t fleet_seed, uint32_t zone);

  /// A Zipf(skew) activity vector for `zones` zones: zone 0 at 1.0 (the
  /// hot battle), zone z at 1 / (z + 1)^skew -- the bench_fig4 skew
  /// geometry applied to zone populations instead of object accesses.
  static std::vector<double> ZipfZoneActivity(uint32_t zones, double skew);

  /// Golden-run oracle: replays the K zone worlds (no engine, no disk)
  /// and returns digests[t][z] = zone z's StateDigest after t world
  /// ticks, for t in [0, world_ticks]. Index with recovered_ticks - 1:
  /// a fleet recovered to R engine ticks must match digests[R - 1].
  static std::vector<std::vector<uint64_t>> GoldenZoneDigests(
      const GameShardAdapterConfig& config, uint64_t world_ticks);

 private:
  struct ZoneSink;

  explicit GameShardAdapter(const GameShardAdapterConfig& config);

  /// Zone z's resolved WorldConfig: the template with the zone seed and
  /// the zone's activity scale applied (shared by SpawnZones and the
  /// OpenResumed validation, so spawn and resume can never disagree).
  WorldConfig ZoneWorldConfig(uint32_t z) const;

  /// Builds the zone worlds (shared by Open and GoldenZoneDigests).
  void SpawnZones();
  /// Engine tick 0: every cell of every zone enters its shard as an update.
  Status BulkLoadTick();
  /// Applies the previous tick's cross-zone result, then runs world tick
  /// t on every zone (parallel or sequential), filling the zone sinks.
  void StepWorldTick();
  /// Mails each zone's captured delta to its shard as one fleet tick.
  Status SubmitTickToEngine();
  /// Writes zone z's simulation-state cells into the open fleet tick:
  /// everything when `full` (bulk load), otherwise the per-tick delta
  /// (RNG, tick, kills, rotated active slots only).
  void EmitZoneSimState(uint32_t z, bool full);

  GameShardAdapterConfig config_;
  std::vector<std::unique_ptr<World>> zones_;
  std::vector<std::unique_ptr<ZoneSink>> sinks_;
  std::unique_ptr<Fleet> fleet_;  // null in golden replays
  uint64_t engine_ticks_ = 0;
  uint64_t game_updates_ = 0;
  /// Fleet-wide kill events per team during the previous world tick.
  uint64_t last_tick_kills_[2] = {0, 0};
};

/// Digest of a recovered shard partition, computed cell-by-cell with the
/// same per-unit hash as UnitTable::StateDigest: equality against
/// ZoneDigest/GoldenZoneDigests proves exact recovery of that zone.
uint64_t TableStateDigest(const StateTable& table, uint32_t num_units);

/// One row of the game-workload fleet benchmark (the Table 5 analogue per
/// shard count): run the game on a K-shard fleet, crash it, recover.
struct GameFleetBenchResult {
  /// Steady-state checkpoint timing (each shard's cold bootstrap skipped).
  ShardedCheckpointStats checkpoints;
  /// Per-fleet-tick wall time over the world ticks (bulk load excluded).
  double avg_tick_seconds = 0.0;
  double max_tick_seconds = 0.0;
  /// Game updates mailed to the engines (bulk load excluded).
  uint64_t updates = 0;
  /// Timed Fleet::Recover (manifest-driven) after the end-of-run
  /// SimulateCrash.
  double recovery_seconds = 0.0;
  uint64_t recovered_ticks = 0;
  /// Every recovered partition digest-matched its live zone world.
  bool digests_match = false;
};

/// Runs the game workload on a fleet for `engine_ticks` fleet ticks (paced
/// to `tick_hz` when > 0), crashes it, and times the recovery. Shared by
/// bench_table5_game_trace and bench_sharded_engine.
StatusOr<GameFleetBenchResult> MeasureGameFleet(
    const GameShardAdapterConfig& config, uint64_t engine_ticks,
    double tick_hz);

}  // namespace game
}  // namespace tickpoint

#endif  // TICKPOINT_GAME_SHARD_ADAPTER_H_
