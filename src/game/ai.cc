#include "game/ai.h"

#include <algorithm>
#include <cstdlib>

namespace tickpoint {
namespace game {
namespace {

void SetStateIfChanged(UnitTable* units, UnitId u, UnitState s) {
  units->Set(u, kAttrState, static_cast<int32_t>(s));
}

// Applies `damage` to `victim` from `attacker`; handles morale and kill
// accounting. Death is finalized by the world (respawn) next tick.
void DealDamage(UnitTable* units, UnitId attacker, UnitId victim,
                int32_t damage) {
  const int32_t before = units->health(victim);
  const int32_t after = std::max(0, before - damage);
  units->Set(victim, kAttrHealth, after);
  if (after < kLowHealth && before >= kLowHealth) {
    units->Set(victim, kAttrMorale,
               units->Get(victim, kAttrMorale) - kMoraleDrop);
  }
  if (after == 0 && before > 0) {
    units->Set(attacker, kAttrKills, units->Get(attacker, kAttrKills) + 1);
    SetStateIfChanged(units, victim, UnitState::kDead);
  }
}

bool Ready(const UnitTable& units, UnitId u, int32_t tick) {
  return units.ready_tick(u) <= tick;
}

// Re-validates a remembered target: must be alive and within `range` --
// conflict resolution is game logic, not transactions (paper Section 1).
bool TargetValid(const UnitTable& units, UnitId u, UnitId target,
                 int32_t range) {
  if (target == kNoUnit || target >= units.num_units()) return false;
  if (units.health(target) <= 0) return false;
  if (units.team(target) == units.team(u)) return false;
  return units.Dist2(u, target) <=
         static_cast<int64_t>(range) * static_cast<int64_t>(range);
}

void RememberTarget(UnitTable* units, UnitId u, UnitId target) {
  units->Set(u, kAttrTarget, static_cast<int32_t>(target));
}

// Neighbor scans are the expensive part of a tick; units that found nothing
// last time re-scan only every `period` ticks (staggered by unit id), which
// keeps the rear ranks of a 400K-unit battle cheap without affecting units
// already in combat.
bool ScanDue(const AiContext& ctx, UnitId u, uint32_t period) {
  return ((static_cast<uint32_t>(ctx.tick) + u) & (period - 1)) == 0;
}

void StepKnight(const AiContext& ctx, UnitId u) {
  UnitTable* units = ctx.units;
  UnitId target = units->target(u);
  if (!TargetValid(*units, u, target, kKnightSightRange)) {
    target = ScanDue(ctx, u, 4)
                 ? ctx.grid->NearestEnemy(*units, u, kKnightSightRange)
                 : kNoUnit;
    RememberTarget(units, u, target);
  }
  if (target != kNoUnit) {
    const int64_t d2 = units->Dist2(u, target);
    if (d2 <= static_cast<int64_t>(kKnightAttackRange) * kKnightAttackRange) {
      if (Ready(*units, u, ctx.tick)) {
        SetStateIfChanged(units, u, UnitState::kAttacking);
        DealDamage(units, u, target, kKnightDamage);
        units->Set(u, kAttrReadyTick, ctx.tick + kKnightCooldownTicks);
      }
      return;  // in melee: hold position
    }
    SetStateIfChanged(units, u, UnitState::kPursuing);
    MoveToward(ctx, u, units->x(target), units->y(target));
    return;
  }
  // No enemy in sight: cluster with allies, else advance on the enemy base.
  if (ScanDue(ctx, u, 4)) {
    const UnitId ally = ctx.grid->NearestAlly(*units, u, kClusterDistance * 2);
    if (ally != kNoUnit &&
        units->Dist2(u, ally) > static_cast<int64_t>(kClusterDistance) *
                                    kClusterDistance) {
      SetStateIfChanged(units, u, UnitState::kAdvancing);
      MoveToward(ctx, u, units->x(ally), units->y(ally));
      return;
    }
  }
  // March toward the enemy base, resting one tick in four so idle
  // formations do not thrash position updates every single tick.
  if (((ctx.tick + u) & 3) != 3) {
    const int32_t team = units->team(u);
    SetStateIfChanged(units, u, UnitState::kAdvancing);
    MoveToward(ctx, u, ctx.enemy_base_x[team], ctx.enemy_base_y[team]);
  }
}

void StepArcher(const AiContext& ctx, UnitId u) {
  UnitTable* units = ctx.units;
  // Archers keep a remembered threat between scans (they must react to
  // kiting situations, so they re-scan more often than knights).
  UnitId threat = units->target(u);
  if (!TargetValid(*units, u, threat, kArcherSightRange)) {
    threat = ScanDue(ctx, u, 2)
                 ? ctx.grid->NearestEnemy(*units, u, kArcherSightRange)
                 : kNoUnit;
    RememberTarget(units, u, threat);
  }
  if (threat != kNoUnit) {
    const int64_t d2 = units->Dist2(u, threat);
    if (d2 <= static_cast<int64_t>(kArcherPanicRange) * kArcherPanicRange) {
      // Kite: retreat away from the closest threat.
      SetStateIfChanged(units, u, UnitState::kRetreating);
      MoveToward(ctx, u, 2 * units->x(u) - units->x(threat),
                 2 * units->y(u) - units->y(threat));
      return;
    }
    if (d2 <= static_cast<int64_t>(kArcherAttackRange) * kArcherAttackRange) {
      if (Ready(*units, u, ctx.tick)) {
        SetStateIfChanged(units, u, UnitState::kAttacking);
        DealDamage(units, u, threat, kArcherDamage);
        units->Set(u, kAttrReadyTick, ctx.tick + kArcherCooldownTicks);
      }
      return;  // in range, waiting out the cooldown
    }
    // Seen but out of range: close the gap.
    SetStateIfChanged(units, u, UnitState::kPursuing);
    MoveToward(ctx, u, units->x(threat), units->y(threat));
    return;
  }
  // Stay near allied units for support.
  if (ScanDue(ctx, u, 4)) {
    const UnitId ally = ctx.grid->NearestAlly(*units, u, kClusterDistance * 2);
    if (ally != kNoUnit &&
        units->Dist2(u, ally) > static_cast<int64_t>(kClusterDistance) *
                                    kClusterDistance) {
      SetStateIfChanged(units, u, UnitState::kAdvancing);
      MoveToward(ctx, u, units->x(ally), units->y(ally));
      return;
    }
  }
  if (((ctx.tick + u) & 3) != 3) {
    const int32_t team = units->team(u);
    SetStateIfChanged(units, u, UnitState::kAdvancing);
    MoveToward(ctx, u, ctx.enemy_base_x[team], ctx.enemy_base_y[team]);
  }
}

void StepHealer(const AiContext& ctx, UnitId u) {
  UnitTable* units = ctx.units;
  const UnitId patient = ScanDue(ctx, u, 2)
                             ? ctx.grid->WeakestAlly(*units, u, kHealerRange)
                             : kNoUnit;
  if (patient != kNoUnit) {
    if (Ready(*units, u, ctx.tick)) {
      SetStateIfChanged(units, u, UnitState::kHealing);
      RememberTarget(units, u, patient);
      units->Set(patient, kAttrHealth,
                 std::min(kMaxHealth, units->health(patient) + kHealAmount));
      units->Set(u, kAttrReadyTick, ctx.tick + kHealerCooldownTicks);
    } else {
      MoveToward(ctx, u, units->x(patient), units->y(patient));
    }
    return;
  }
  // Nobody to heal: stay with the squad.
  if (ScanDue(ctx, u, 4)) {
    const UnitId ally = ctx.grid->NearestAlly(*units, u, kClusterDistance * 2);
    if (ally != kNoUnit &&
        units->Dist2(u, ally) > static_cast<int64_t>(kClusterDistance / 2) *
                                    (kClusterDistance / 2)) {
      SetStateIfChanged(units, u, UnitState::kAdvancing);
      MoveToward(ctx, u, units->x(ally), units->y(ally));
      return;
    }
  }
  if (((ctx.tick + u) & 3) == 0) {
    const int32_t team = units->team(u);
    SetStateIfChanged(units, u, UnitState::kAdvancing);
    MoveToward(ctx, u, ctx.enemy_base_x[team], ctx.enemy_base_y[team]);
  }
}

}  // namespace

void MoveToward(const AiContext& ctx, UnitId unit, int32_t tx, int32_t ty) {
  UnitTable* units = ctx.units;
  const int32_t map_max = ctx.grid->map_size() - 1;
  const int32_t ux = units->x(unit);
  const int32_t uy = units->y(unit);
  const int32_t dx = tx - ux;
  const int32_t dy = ty - uy;
  if (dx == 0 && dy == 0) return;
  // Step along the dominant axis only: one position-cell update per move.
  if (std::abs(dx) >= std::abs(dy)) {
    const int32_t step = std::clamp(dx, -kMoveStep, kMoveStep);
    units->Set(unit, kAttrX, std::clamp(ux + step, 0, map_max));
    units->Set(unit, kAttrDirX, step > 0 ? 1 : -1);
  } else {
    const int32_t step = std::clamp(dy, -kMoveStep, kMoveStep);
    units->Set(unit, kAttrY, std::clamp(uy + step, 0, map_max));
    units->Set(unit, kAttrDirY, step > 0 ? 1 : -1);
  }
}

void StepUnit(const AiContext& ctx, UnitId unit) {
  switch (ctx.units->type(unit)) {
    case UnitType::kKnight:
      StepKnight(ctx, unit);
      break;
    case UnitType::kArcher:
      StepArcher(ctx, unit);
      break;
    case UnitType::kHealer:
      StepHealer(ctx, unit);
      break;
  }
}

}  // namespace game
}  // namespace tickpoint
