// Core types of the "Knights and Archers" prototype game (paper Section
// 4.4, after White et al., SIGMOD'07).
//
// The game state is a table of units x 13 attributes; every attribute write
// is observable through an UpdateSink, which is how the game server is
// instrumented to produce checkpointing traces (one trace cell = one unit
// attribute). All state is int32 and all logic is integer/deterministic, so
// a re-execution from a checkpoint replays bit-identically.
#ifndef TICKPOINT_GAME_TYPES_H_
#define TICKPOINT_GAME_TYPES_H_

#include <cstdint>

namespace tickpoint {
namespace game {

using UnitId = uint32_t;
constexpr UnitId kNoUnit = 0xFFFFFFFFu;

/// The 13 per-unit attributes (paper Table 5: "number of attributes per
/// unit: 13"). Attribute index == column in the state table.
enum Attribute : uint32_t {
  kAttrType = 0,       // UnitType (static after spawn)
  kAttrTeam = 1,       // 0 or 1 (static after spawn)
  kAttrX = 2,          // map position
  kAttrY = 3,
  kAttrHealth = 4,     // 0..kMaxHealth
  kAttrState = 5,      // UnitState
  kAttrTarget = 6,     // UnitId being attacked/healed, or kNoUnit
  kAttrReadyTick = 7,  // absolute tick when the next action is allowed
  kAttrSquad = 8,      // squad the unit clusters with
  kAttrMorale = 9,     // drops when badly hurt
  kAttrDirX = 10,      // last movement direction (for animation)
  kAttrDirY = 11,
  kAttrKills = 12,     // defeated enemies (the game's objective counter)
};
constexpr uint32_t kNumAttributes = 13;

enum class UnitType : int32_t {
  kKnight = 0,
  kArcher = 1,
  kHealer = 2,
};

enum class UnitState : int32_t {
  kIdle = 0,
  kAdvancing = 1,
  kPursuing = 2,
  kAttacking = 3,
  kHealing = 4,
  kRetreating = 5,
  kDead = 6,
};

// Combat tuning constants (integer distances on the map grid; distances are
// compared squared).
constexpr int32_t kMaxHealth = 100;
constexpr int32_t kKnightDamage = 15;
constexpr int32_t kArcherDamage = 8;
constexpr int32_t kHealAmount = 12;
constexpr int32_t kKnightAttackRange = 24;
constexpr int32_t kKnightSightRange = 96;
constexpr int32_t kArcherAttackRange = 120;
constexpr int32_t kArcherSightRange = 128;
constexpr int32_t kArcherPanicRange = 48;
constexpr int32_t kHealerRange = 96;
constexpr int32_t kClusterDistance = 80;
constexpr int32_t kMoveStep = 8;
constexpr int32_t kKnightCooldownTicks = 8;
constexpr int32_t kArcherCooldownTicks = 10;
constexpr int32_t kHealerCooldownTicks = 6;
constexpr int32_t kMoraleDrop = 1;
constexpr int32_t kLowHealth = 30;

/// Receives every attribute write of the game state; the trace recorder and
/// the real engine both plug in here.
class UpdateSink {
 public:
  virtual ~UpdateSink() = default;
  /// Attribute `attr` of `unit` was set to `value` during the current tick.
  virtual void OnUpdate(UnitId unit, uint32_t attr, int32_t value) = 0;
};

}  // namespace game
}  // namespace tickpoint

#endif  // TICKPOINT_GAME_TYPES_H_
