// In-memory (and on-disk) materialized update traces.
//
// Materialized traces serve three purposes: (1) the game server records its
// updates into one (paper Section 4.4), (2) the real engine replays one as
// its logical workload (Section 6), and (3) tests use tiny hand-built ones.
// The binary file format is self-describing and checksummed.
#ifndef TICKPOINT_TRACE_MATERIALIZED_H_
#define TICKPOINT_TRACE_MATERIALIZED_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "trace/source.h"
#include "util/status.h"

namespace tickpoint {

/// An update trace held in memory, tick-indexed.
class MaterializedTrace : public UpdateSource {
 public:
  explicit MaterializedTrace(const StateLayout& layout);

  /// Appends one tick's updates.
  void AppendTick(std::span<const TraceCell> cells);

  /// Drains every tick of `source` into a new materialized trace.
  static MaterializedTrace Record(UpdateSource* source);

  /// Updates of one tick (tick in [0, num_ticks())).
  std::span<const TraceCell> Tick(uint64_t tick) const;

  uint64_t total_updates() const { return cells_.size(); }

  // UpdateSource interface (streams the stored ticks).
  const StateLayout& layout() const override { return layout_; }
  uint64_t num_ticks() const override { return tick_offsets_.size() - 1; }
  void Reset() override { cursor_ = 0; }
  bool NextTick(std::vector<TraceCell>* cells) override;

  /// Serializes to `path` (magic, layout, offsets, cells, CRC32).
  Status WriteTo(const std::string& path) const;
  /// Loads a trace written by WriteTo, validating the checksum.
  static StatusOr<MaterializedTrace> ReadFrom(const std::string& path);

  bool operator==(const MaterializedTrace& other) const {
    return layout_.rows == other.layout_.rows &&
           layout_.cols == other.layout_.cols &&
           layout_.cell_size == other.layout_.cell_size &&
           layout_.object_size == other.layout_.object_size &&
           tick_offsets_ == other.tick_offsets_ && cells_ == other.cells_;
  }

 private:
  StateLayout layout_;
  std::vector<uint64_t> tick_offsets_;  // size num_ticks + 1
  std::vector<TraceCell> cells_;
  uint64_t cursor_ = 0;
};

}  // namespace tickpoint

#endif  // TICKPOINT_TRACE_MATERIALIZED_H_
