#include "trace/source.h"

// UpdateSource is an interface; this file anchors its vtable.
namespace tickpoint {}  // namespace tickpoint
