#include "trace/materialized.h"

#include <cstring>

#include "util/crc32.h"
#include "util/io.h"

namespace tickpoint {
namespace {

constexpr uint64_t kTraceMagic = 0x54504354524143ULL;  // "TPCTRAC"
constexpr uint32_t kTraceVersion = 1;

struct TraceHeader {
  uint64_t magic;
  uint32_t version;
  uint32_t cell_size;
  uint64_t rows;
  uint64_t cols;
  uint64_t object_size;
  uint64_t num_ticks;
  uint64_t num_cells;  // total update records
};

}  // namespace

MaterializedTrace::MaterializedTrace(const StateLayout& layout)
    : layout_(layout) {
  TP_CHECK(layout_.Valid());
  tick_offsets_.push_back(0);
}

void MaterializedTrace::AppendTick(std::span<const TraceCell> cells) {
  cells_.insert(cells_.end(), cells.begin(), cells.end());
  tick_offsets_.push_back(cells_.size());
}

MaterializedTrace MaterializedTrace::Record(UpdateSource* source) {
  MaterializedTrace trace(source->layout());
  source->Reset();
  std::vector<TraceCell> cells;
  while (source->NextTick(&cells)) {
    trace.AppendTick(cells);
  }
  return trace;
}

std::span<const TraceCell> MaterializedTrace::Tick(uint64_t tick) const {
  TP_CHECK(tick + 1 < tick_offsets_.size());
  return {cells_.data() + tick_offsets_[tick],
          cells_.data() + tick_offsets_[tick + 1]};
}

bool MaterializedTrace::NextTick(std::vector<TraceCell>* cells) {
  if (cursor_ >= num_ticks()) return false;
  const auto span = Tick(cursor_++);
  cells->assign(span.begin(), span.end());
  return true;
}

Status MaterializedTrace::WriteTo(const std::string& path) const {
  FileWriter writer;
  TP_RETURN_NOT_OK(writer.Open(path));
  TraceHeader header{kTraceMagic, kTraceVersion, layout_.cell_size,
                     layout_.rows, layout_.cols, layout_.object_size,
                     num_ticks(),  cells_.size()};
  TP_RETURN_NOT_OK(writer.Append(&header, sizeof(header)));
  TP_RETURN_NOT_OK(writer.Append(tick_offsets_.data(),
                                 tick_offsets_.size() * sizeof(uint64_t)));
  TP_RETURN_NOT_OK(
      writer.Append(cells_.data(), cells_.size() * sizeof(TraceCell)));
  uint32_t crc = Crc32(tick_offsets_.data(),
                       tick_offsets_.size() * sizeof(uint64_t));
  crc = Crc32(cells_.data(), cells_.size() * sizeof(TraceCell), crc);
  TP_RETURN_NOT_OK(writer.Append(&crc, sizeof(crc)));
  TP_RETURN_NOT_OK(writer.Sync());
  return writer.Close();
}

StatusOr<MaterializedTrace> MaterializedTrace::ReadFrom(
    const std::string& path) {
  FileReader reader;
  TP_RETURN_NOT_OK(reader.Open(path));
  TraceHeader header;
  TP_RETURN_NOT_OK(reader.ReadExact(&header, sizeof(header)));
  if (header.magic != kTraceMagic) {
    return Status::Corruption("bad trace magic in " + path);
  }
  if (header.version != kTraceVersion) {
    return Status::Corruption("unsupported trace version in " + path);
  }
  StateLayout layout{header.rows, header.cols, header.cell_size,
                     header.object_size};
  if (!layout.Valid()) {
    return Status::Corruption("invalid layout in trace " + path);
  }
  MaterializedTrace trace(layout);
  trace.tick_offsets_.resize(header.num_ticks + 1);
  TP_RETURN_NOT_OK(reader.ReadExact(trace.tick_offsets_.data(),
                                    trace.tick_offsets_.size() *
                                        sizeof(uint64_t)));
  trace.cells_.resize(header.num_cells);
  TP_RETURN_NOT_OK(reader.ReadExact(trace.cells_.data(),
                                    trace.cells_.size() * sizeof(TraceCell)));
  uint32_t stored_crc = 0;
  TP_RETURN_NOT_OK(reader.ReadExact(&stored_crc, sizeof(stored_crc)));
  uint32_t crc = Crc32(trace.tick_offsets_.data(),
                       trace.tick_offsets_.size() * sizeof(uint64_t));
  crc = Crc32(trace.cells_.data(), trace.cells_.size() * sizeof(TraceCell),
              crc);
  if (crc != stored_crc) {
    return Status::Corruption("trace checksum mismatch in " + path);
  }
  if (trace.tick_offsets_.front() != 0 ||
      trace.tick_offsets_.back() != trace.cells_.size()) {
    return Status::Corruption("inconsistent tick offsets in " + path);
  }
  for (uint64_t cell : trace.cells_) {
    if (cell >= layout.num_cells()) {
      return Status::Corruption("cell id out of range in " + path);
    }
  }
  return trace;
}

}  // namespace tickpoint
