// Zipfian update-trace generator (paper Section 4.4, Table 4).
//
// Each update picks a row and a column independently from Zipf(theta)
// distributions; theta = 0 is uniform, theta -> 1 concentrates updates on a
// few hot rows. The default parameters reproduce Table 4: 1,000 ticks, 10M
// cells, 64,000 updates per tick, skew 0.8.
#ifndef TICKPOINT_TRACE_ZIPF_SOURCE_H_
#define TICKPOINT_TRACE_ZIPF_SOURCE_H_

#include <cstdint>
#include <vector>

#include "trace/source.h"
#include "util/random.h"
#include "util/zipf.h"

namespace tickpoint {

/// Configuration for ZipfUpdateSource. Defaults are the bold values of
/// paper Table 4.
struct ZipfTraceConfig {
  StateLayout layout = StateLayout::Paper();
  uint64_t num_ticks = 1000;
  uint64_t updates_per_tick = 64000;
  double theta = 0.8;
  uint64_t seed = 42;
  /// When true, Zipf ranks are scattered over the row space through a
  /// fixed bijection, so that hot rows do not occupy adjacent atomic
  /// objects. The paper maps ranks to rows directly (hot rows cluster);
  /// scattering is provided for sensitivity analysis.
  bool scatter_rows = false;
};

/// Deterministic streaming Zipf trace.
class ZipfUpdateSource : public UpdateSource {
 public:
  explicit ZipfUpdateSource(const ZipfTraceConfig& config);

  const StateLayout& layout() const override { return config_.layout; }
  uint64_t num_ticks() const override { return config_.num_ticks; }
  void Reset() override;
  bool NextTick(std::vector<TraceCell>* cells) override;

  const ZipfTraceConfig& config() const { return config_; }

 private:
  uint64_t ScatterRow(uint64_t rank) const;

  ZipfTraceConfig config_;
  ZipfGenerator row_zipf_;
  ZipfGenerator col_zipf_;
  Rng rng_;
  uint64_t tick_ = 0;
  uint64_t scatter_multiplier_ = 1;
};

}  // namespace tickpoint

#endif  // TICKPOINT_TRACE_ZIPF_SOURCE_H_
