#include "trace/zipf_source.h"

#include <numeric>

namespace tickpoint {
namespace {

// Finds a multiplier coprime with `n` for the rank-scatter bijection.
uint64_t FindCoprimeMultiplier(uint64_t n) {
  // Knuth's multiplicative constant and a few fallback odd primes.
  const uint64_t candidates[] = {2654435761ULL, 2246822519ULL, 3266489917ULL,
                                 668265263ULL, 374761393ULL};
  for (uint64_t c : candidates) {
    if (std::gcd(c, n) == 1) return c % n == 0 ? 1 : c;
  }
  return 1;
}

}  // namespace

ZipfUpdateSource::ZipfUpdateSource(const ZipfTraceConfig& config)
    : config_(config),
      row_zipf_(config.layout.rows, config.theta),
      col_zipf_(config.layout.cols, config.theta),
      rng_(config.seed) {
  TP_CHECK(config_.layout.Valid());
  TP_CHECK(config_.layout.num_cells() <= UINT32_MAX);
  scatter_multiplier_ = FindCoprimeMultiplier(config_.layout.rows);
}

void ZipfUpdateSource::Reset() {
  rng_.Reseed(config_.seed);
  tick_ = 0;
}

uint64_t ZipfUpdateSource::ScatterRow(uint64_t rank) const {
  if (!config_.scatter_rows) return rank;
  return (rank * scatter_multiplier_) % config_.layout.rows;
}

bool ZipfUpdateSource::NextTick(std::vector<TraceCell>* cells) {
  if (tick_ >= config_.num_ticks) return false;
  ++tick_;
  cells->clear();
  cells->reserve(config_.updates_per_tick);
  for (uint64_t i = 0; i < config_.updates_per_tick; ++i) {
    const uint64_t row = ScatterRow(row_zipf_.Next(&rng_));
    const uint64_t col = col_zipf_.Next(&rng_);
    cells->push_back(
        static_cast<TraceCell>(config_.layout.CellOf(row, col)));
  }
  return true;
}

}  // namespace tickpoint
