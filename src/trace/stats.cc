#include "trace/stats.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "util/bitvec.h"

namespace tickpoint {

TraceStats ComputeTraceStats(UpdateSource* source) {
  source->Reset();
  const StateLayout& layout = source->layout();
  TraceStats stats;
  BitVector cells_seen(layout.num_cells());
  std::vector<uint64_t> object_hits(layout.num_objects(), 0);
  std::vector<TraceCell> cells;
  bool first_tick = true;
  while (source->NextTick(&cells)) {
    ++stats.num_ticks;
    stats.total_updates += cells.size();
    if (first_tick) {
      stats.min_updates_per_tick = stats.max_updates_per_tick = cells.size();
      first_tick = false;
    } else {
      stats.min_updates_per_tick =
          std::min<uint64_t>(stats.min_updates_per_tick, cells.size());
      stats.max_updates_per_tick =
          std::max<uint64_t>(stats.max_updates_per_tick, cells.size());
    }
    for (TraceCell cell : cells) {
      cells_seen.Set(cell);
      ++object_hits[layout.ObjectOfCell(cell)];
    }
  }
  source->Reset();

  stats.avg_updates_per_tick =
      stats.num_ticks == 0
          ? 0.0
          : static_cast<double>(stats.total_updates) /
                static_cast<double>(stats.num_ticks);
  stats.distinct_cells = cells_seen.CountSet();
  stats.distinct_objects = 0;
  for (uint64_t hits : object_hits) stats.distinct_objects += (hits > 0);

  if (stats.total_updates > 0) {
    std::vector<uint64_t> sorted = object_hits;
    std::sort(sorted.begin(), sorted.end(), std::greater<uint64_t>());
    const uint64_t top = std::max<uint64_t>(1, sorted.size() / 100);
    uint64_t top_hits = 0;
    for (uint64_t i = 0; i < top; ++i) top_hits += sorted[i];
    stats.hottest_percentile_share =
        static_cast<double>(top_hits) / static_cast<double>(stats.total_updates);
  }
  return stats;
}

std::string TraceStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "ticks=%llu total_updates=%llu avg/tick=%.1f min/tick=%llu "
      "max/tick=%llu distinct_cells=%llu distinct_objects=%llu "
      "top1%%_share=%.3f",
      static_cast<unsigned long long>(num_ticks),
      static_cast<unsigned long long>(total_updates), avg_updates_per_tick,
      static_cast<unsigned long long>(min_updates_per_tick),
      static_cast<unsigned long long>(max_updates_per_tick),
      static_cast<unsigned long long>(distinct_cells),
      static_cast<unsigned long long>(distinct_objects),
      hottest_percentile_share);
  return buf;
}

}  // namespace tickpoint
