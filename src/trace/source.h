// Streaming interface for update traces.
//
// A trace is a sequence of ticks; each tick carries the cell ids updated
// during that tick (repeats allowed: an object may be updated several times
// per tick, paper Section 4.3). Sources are deterministic and resettable so
// the same trace can drive several algorithms in lockstep, and -- crucially
// for recovery -- can be replayed from the beginning.
#ifndef TICKPOINT_TRACE_SOURCE_H_
#define TICKPOINT_TRACE_SOURCE_H_

#include <cstdint>
#include <vector>

#include "model/layout.h"

namespace tickpoint {

/// Cell ids inside traces are 32-bit (supports up to 4.29e9 cells; the paper
/// maximum is 10M).
using TraceCell = uint32_t;

/// Abstract deterministic update stream.
class UpdateSource {
 public:
  virtual ~UpdateSource() = default;

  /// Geometry of the state this trace updates.
  virtual const StateLayout& layout() const = 0;

  /// Total ticks this source will produce.
  virtual uint64_t num_ticks() const = 0;

  /// Restarts the stream from tick 0 (must reproduce identical output).
  virtual void Reset() = 0;

  /// Produces the next tick's updates into *cells (overwritten). Returns
  /// false when the trace is exhausted.
  virtual bool NextTick(std::vector<TraceCell>* cells) = 0;
};

}  // namespace tickpoint

#endif  // TICKPOINT_TRACE_SOURCE_H_
