// Trace characterization (paper Table 5): update counts, distinct touched
// cells/objects, and per-tick distribution.
#ifndef TICKPOINT_TRACE_STATS_H_
#define TICKPOINT_TRACE_STATS_H_

#include <cstdint>
#include <string>

#include "trace/source.h"
#include "util/histogram.h"

namespace tickpoint {

/// Summary statistics over a full trace.
struct TraceStats {
  uint64_t num_ticks = 0;
  uint64_t total_updates = 0;
  double avg_updates_per_tick = 0.0;
  uint64_t min_updates_per_tick = 0;
  uint64_t max_updates_per_tick = 0;
  uint64_t distinct_cells = 0;
  uint64_t distinct_objects = 0;
  /// Fraction of all updates that hit the hottest 1% of atomic objects.
  double hottest_percentile_share = 0.0;

  std::string ToString() const;
};

/// Scans the whole source (resetting it first and after).
TraceStats ComputeTraceStats(UpdateSource* source);

}  // namespace tickpoint

#endif  // TICKPOINT_TRACE_STATS_H_
