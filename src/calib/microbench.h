// Host calibration micro-benchmarks (paper Section 4.3 / Table 3).
//
// The paper measured its cost-model parameters "for one particular server
// in our lab, using a collection of micro-benchmarks written for the
// purpose". These are those micro-benchmarks:
//   - Bmem: repeated aligned memcpy, each call an order of magnitude larger
//     than the L2 cache;
//   - Omem: small-memcpy startup cost with mixed sequential/random access
//     (hardware cache-miss latency + memcpy startup);
//   - Olock: aggregate cost of uncontested spinlock acquire/release with
//     mixed access patterns;
//   - Obit: incremental cost of naive dirty-bit counting (roughly half the
//     bits set) added to a loop modeling the update phase;
//   - Bdisk: large sequential writes to a file on the target device.
#ifndef TICKPOINT_CALIB_MICROBENCH_H_
#define TICKPOINT_CALIB_MICROBENCH_H_

#include <cstdint>
#include <string>

#include "model/hardware.h"
#include "util/status.h"

namespace tickpoint {

/// Calibration tuning. Defaults finish in a few seconds.
struct CalibrationOptions {
  uint64_t mem_buffer_bytes = 64ull << 20;   // per memcpy call
  uint64_t mem_iterations = 8;
  uint64_t small_copy_count = 200000;        // Omem samples
  uint64_t small_copy_bytes = 512;           // one atomic object
  uint64_t lock_ops = 1000000;
  uint64_t bit_ops = 8000000;
  uint64_t disk_write_bytes = 256ull << 20;
  std::string disk_dir = "/tmp";
};

/// Measured values, in the units of HardwareParams.
struct CalibrationResult {
  double mem_bandwidth = 0.0;   // bytes/s
  double mem_latency = 0.0;     // s per small-copy startup
  double lock_overhead = 0.0;   // s per uncontested lock/unlock pair
  double bit_overhead = 0.0;    // s per dirty-bit test
  double disk_bandwidth = 0.0;  // bytes/s

  /// HardwareParams with the measured values substituted (tick rate and
  /// object size keep the paper's settings).
  HardwareParams ToHardwareParams() const;
};

/// Runs all five micro-benchmarks. The disk benchmark writes (and removes)
/// a scratch file under options.disk_dir.
StatusOr<CalibrationResult> RunCalibration(const CalibrationOptions& options);

// Individual benchmarks (exposed for tests).
double MeasureMemoryBandwidth(uint64_t buffer_bytes, uint64_t iterations);
double MeasureMemoryLatency(uint64_t samples, uint64_t copy_bytes,
                            double mem_bandwidth);
double MeasureLockOverhead(uint64_t ops);
double MeasureBitOverhead(uint64_t ops);
StatusOr<double> MeasureDiskBandwidth(const std::string& dir,
                                      uint64_t total_bytes);

}  // namespace tickpoint

#endif  // TICKPOINT_CALIB_MICROBENCH_H_
