#include "calib/microbench.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <vector>

#include "engine/dirty_map.h"
#include "util/bitvec.h"
#include "util/io.h"
#include "util/random.h"

namespace tickpoint {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Prevents the optimizer from discarding a computed value or hoisting the
// work out of timing loops.
template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "g"(value) : "memory");
}

}  // namespace

HardwareParams CalibrationResult::ToHardwareParams() const {
  HardwareParams hw = HardwareParams::Paper();
  hw.mem_bandwidth = mem_bandwidth;
  hw.mem_latency = mem_latency;
  hw.lock_overhead = lock_overhead;
  hw.bit_overhead = bit_overhead;
  hw.disk_bandwidth = disk_bandwidth;
  return hw;
}

double MeasureMemoryBandwidth(uint64_t buffer_bytes, uint64_t iterations) {
  std::vector<uint8_t> src(buffer_bytes, 0x5A);
  std::vector<uint8_t> dst(buffer_bytes);
  // Warm both buffers (page faults out of the timing loop).
  std::memcpy(dst.data(), src.data(), buffer_bytes);
  const auto t0 = Clock::now();
  for (uint64_t i = 0; i < iterations; ++i) {
    std::memcpy(dst.data(), src.data(), buffer_bytes);
    DoNotOptimize(dst.data()[i % buffer_bytes]);
  }
  const double seconds = SecondsSince(t0);
  return static_cast<double>(buffer_bytes * iterations) / seconds;
}

double MeasureMemoryLatency(uint64_t samples, uint64_t copy_bytes,
                            double mem_bandwidth) {
  // Small copies with "memory reference patterns mixing sequential and
  // random access" (paper Section 4.3): the game's copy-on-update touches
  // both hot (recently updated, cache-resident) and cold objects. The
  // measured per-call time is startup + amortized miss latency + transfer;
  // the transfer component (copy_bytes / Bmem) is subtracted out.
  const uint64_t buffer_bytes = 64ull << 20;  // a game-state-sized buffer
  std::vector<uint8_t> src(buffer_bytes, 1);
  std::vector<uint8_t> dst(copy_bytes * 2);
  Rng rng(7);
  const uint64_t slots = buffer_bytes / copy_bytes - 1;
  // Pre-draw offsets so RNG cost stays out of the loop: alternate a random
  // jump with a sequential neighbor access.
  std::vector<uint64_t> offsets(samples);
  for (size_t i = 0; i < offsets.size(); ++i) {
    if (i % 2 == 0) {
      offsets[i] = rng.Uniform(slots) * copy_bytes;
    } else {
      offsets[i] = (offsets[i - 1] + copy_bytes) % (slots * copy_bytes);
    }
  }
  const auto t0 = Clock::now();
  for (uint64_t offset : offsets) {
    std::memcpy(dst.data(), src.data() + offset, copy_bytes);
    DoNotOptimize(dst.data()[0]);
  }
  const double per_call = SecondsSince(t0) / static_cast<double>(samples);
  const double transfer = static_cast<double>(copy_bytes) / mem_bandwidth;
  return per_call > transfer ? per_call - transfer : 0.0;
}

double MeasureLockOverhead(uint64_t ops) {
  // Uncontested acquire/release over a spread of lock words (mixed access
  // pattern, as in the paper).
  ObjectLockTable locks(4096);
  Rng rng(11);
  std::vector<uint32_t> indices(ops % 65536 + 65536);
  for (auto& index : indices) {
    index = static_cast<uint32_t>(rng.Uniform(4096));
  }
  const auto t0 = Clock::now();
  for (uint64_t i = 0; i < ops; ++i) {
    const uint32_t index = indices[i % indices.size()];
    locks.Lock(index);
    locks.Unlock(index);
  }
  const double seconds = SecondsSince(t0);
  DoNotOptimize(indices.data()[0]);
  return seconds / static_cast<double>(ops);
}

double MeasureBitOverhead(uint64_t ops) {
  // Incremental cost of the dirty-bit check in the update loop: walk a
  // value array (the baseline memory traffic of an update phase), then the
  // same walk plus a bit test on a map with roughly half the bits set.
  const uint64_t n = 1 << 20;
  std::vector<uint32_t> values(n, 3);
  BitVector bits(n);
  for (uint64_t i = 0; i < n; i += 2) bits.Set(i);

  uint64_t sum = 0;
  const auto t0 = Clock::now();
  for (uint64_t i = 0; i < ops; ++i) {
    sum += values[i & (n - 1)];
  }
  DoNotOptimize(sum);
  const double baseline = SecondsSince(t0);

  uint64_t dirty = 0;
  sum = 0;
  const auto t1 = Clock::now();
  for (uint64_t i = 0; i < ops; ++i) {
    const uint64_t index = i & (n - 1);
    sum += values[index];
    dirty += bits.Get(index);
  }
  DoNotOptimize(sum);
  DoNotOptimize(dirty);
  const double with_bits = SecondsSince(t1);
  const double delta = with_bits - baseline;
  return delta > 0 ? delta / static_cast<double>(ops) : 0.0;
}

StatusOr<double> MeasureDiskBandwidth(const std::string& dir,
                                      uint64_t total_bytes) {
  const std::string path = dir + "/tickpoint_disk_calibration.tmp";
  const uint64_t chunk_bytes = 8ull << 20;
  std::vector<uint8_t> chunk(chunk_bytes, 0xA5);
  FileWriter writer;
  TP_RETURN_NOT_OK(writer.Open(path));
  const auto t0 = Clock::now();
  uint64_t written = 0;
  while (written < total_bytes) {
    const uint64_t this_chunk = std::min(chunk_bytes, total_bytes - written);
    TP_RETURN_NOT_OK(writer.Append(chunk.data(), this_chunk));
    written += this_chunk;
  }
  TP_RETURN_NOT_OK(writer.Sync());
  const double seconds = SecondsSince(t0);
  TP_RETURN_NOT_OK(writer.Close());
  TP_RETURN_NOT_OK(RemoveFileIfExists(path));
  return static_cast<double>(total_bytes) / seconds;
}

StatusOr<CalibrationResult> RunCalibration(const CalibrationOptions& options) {
  CalibrationResult result;
  result.mem_bandwidth =
      MeasureMemoryBandwidth(options.mem_buffer_bytes, options.mem_iterations);
  result.mem_latency = MeasureMemoryLatency(
      options.small_copy_count, options.small_copy_bytes,
      result.mem_bandwidth);
  result.lock_overhead = MeasureLockOverhead(options.lock_ops);
  result.bit_overhead = MeasureBitOverhead(options.bit_ops);
  TP_ASSIGN_OR_RETURN(result.disk_bandwidth,
                      MeasureDiskBandwidth(options.disk_dir,
                                           options.disk_write_bytes));
  return result;
}

}  // namespace tickpoint
