// K independent Engine instances behind one tick facade (paper Section 8
// future work: multiple shards per persistence disk).
//
// Each shard owns a disjoint state partition, its own logical log, and its
// own checkpoint directory under the shared root -- exactly the layout a
// multi-zone MMO server would run on one persistence disk. In threaded
// mode (the default) every shard also owns a ShardRunner mutator thread:
// the facade's BeginTick/ApplyUpdate/EndTick only assemble per-shard
// update batches and mail them to the runners, which tick independently --
// the fleet analogue of K zone servers on independent simulation loops.
// The StaggerScheduler decides, per tick, which shards begin a checkpoint
// (fixed i * period / K offsets, or the adaptive plan fed by measured
// write times), so the synchronized-vs-staggered disk-contention tradeoff
// projected by bench_shard_stagger can be measured on the real write path.
// Each shard's writer thread flushes concurrently with the others, which
// is precisely the contention under study.
//
// Fleet-level barriers exist only where the API demands a consistent view:
// Shutdown, SimulateCrash, and WaitForIdle drain every runner to the
// facade tick before acting.
//
// RequestConsistentCut/CommitConsistentCut layer the two-phase fleet-wide
// cut protocol (consistent_cut.h) on top: every shard checkpoints at one
// coordinator-chosen tick T, and a committed cut manifest lets
// Fleet::RecoverToCut restore the whole fleet to exactly T.
//
// Construction is Fleet-only: ShardedEngine::Open/OpenResumed are private
// entry points reached through Fleet::Create and RecoveredFleet::Resume
// (the disk-described lifecycle); there is no public config-supplying way
// to open a fleet.
#ifndef TICKPOINT_ENGINE_SHARDED_ENGINE_H_
#define TICKPOINT_ENGINE_SHARDED_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/consistent_cut.h"
#include "engine/engine.h"
#include "engine/fleet_manifest.h"
#include "engine/shard_runner.h"
#include "engine/stagger_scheduler.h"

namespace tickpoint {

class Fleet;
class RecoveredFleet;

/// Sharded-engine construction parameters.
struct ShardedEngineConfig {
  /// Per-shard template. `shard.layout` is the layout of ONE partition and
  /// `shard.dir` the shared root directory; shard i lives in
  /// ShardDir(shard.dir, i). Interval fields are ignored: checkpoint
  /// scheduling is owned by the stagger scheduler.
  EngineConfig shard;
  /// K: number of shards sharing the persistence disk.
  uint32_t num_shards = 1;
  /// Ticks between one shard's consecutive checkpoint starts.
  uint64_t checkpoint_period_ticks = 8;
  /// Stagger shard starts by i * period / K (false = synchronized).
  bool staggered = true;
  /// Run each shard on its own mutator thread (see header comment).
  /// false = drive every shard inline from the caller's thread: the PR-1
  /// facade, kept for comparison benches and deterministic unit tests.
  bool threaded = true;
  /// Adaptive stagger: learn measured write times and keep concurrent
  /// flushes at or below `disk_budget` (see StaggerConfig).
  bool adaptive = false;
  uint32_t disk_budget = 1;
  /// Threaded mode: max ticks a shard's mailbox may lag behind the facade
  /// before EndTick blocks (bounds memory under a slow shard).
  uint64_t max_queue_ticks = 64;
  /// How far ahead of the fleet tick RequestConsistentCut places the cut
  /// tick T: enough lead for every shard to reach T in stride instead of
  /// stalling on a barrier.
  uint64_t cut_lead_ticks = 2;
  /// Hot failover: stream every partition's per-tick delta to a peer
  /// shard's in-memory ReplicaBuffer, so FailoverShard can rebuild a
  /// crashed shard from its peer's memory instead of disk. Costs one
  /// extra state-table copy per partition plus a per-tick delta copy.
  bool replicate = false;
  /// Bound on each replica's in-flight tick-delta ring (older batches fold
  /// into its base snapshot; committed cuts trim eagerly).
  uint64_t replica_depth = 32;
  /// replica_peer[p] = partition hosting p's replica. Empty = the default
  /// ring (p + 1) % K. Entries must be in range and never self-peered.
  std::vector<uint32_t> replica_peer;

  StaggerConfig ToStaggerConfig() const {
    StaggerConfig config;
    config.num_shards = num_shards;
    config.period_ticks = checkpoint_period_ticks;
    config.staggered = staggered;
    config.adaptive = adaptive;
    config.disk_budget = disk_budget;
    return config;
  }
};

/// Checkpoint timing aggregated across all shards of a run.
struct ShardedCheckpointStats {
  uint64_t checkpoints = 0;
  double avg_total_seconds = 0.0;  // sync pause + async writer wall
  double max_total_seconds = 0.0;
  double avg_sync_seconds = 0.0;
  double avg_async_seconds = 0.0;
};

/// Outcome of the last committed consistent cut (bench/monitoring).
struct ConsistentCutReport {
  uint64_t cut_tick = 0;
  /// Wall time from RequestConsistentCut to the manifest rename.
  double commit_latency_seconds = 0.0;
  /// Slowest shard's mutator block inside the cut tick's EndTick.
  double max_shard_stall_seconds = 0.0;
};

/// Outcome of the last MigratePartition (bench/monitoring).
struct MigrationReport {
  uint32_t partition = 0;
  uint32_t from_slot = 0;
  uint32_t to_slot = 0;
  /// The fleet epoch the migration committed.
  uint64_t epoch = 0;
  /// First tick the partition runs on its new shard (== the cut tick + 1).
  uint64_t first_tick_on_new_shard = 0;
  /// Wall time of the whole move: source drain + destination bootstrap
  /// write + epoch-manifest commit.
  double move_seconds = 0.0;
};

/// Outcome of the last FailoverShard (bench/monitoring).
struct FailoverReport {
  uint32_t partition = 0;
  /// True when the peer's in-memory replica rebuilt the state; false when
  /// the disk-recovery fallback ran (torn buffer, dead peer, or
  /// replication off).
  bool used_peer_memory = false;
  /// Tick count the rebuilt state is consistent through (== the fleet
  /// tick).
  uint64_t rebuilt_ticks = 0;
  /// Wall time to materialize the state (memory rebuild or disk recovery):
  /// the failover-latency number the ROADMAP's "milliseconds, not a disk
  /// replay" claim is about.
  double rebuild_seconds = 0.0;
  /// Wall time of the shard restart on top of it (bootstrap checkpoint +
  /// runner spawn) -- identical on both paths.
  double resume_seconds = 0.0;
};

/// Captures a fleet's durable properties from its open-time config, with
/// the identity partition assignment and epoch 0.
FleetManifest ManifestFromConfig(const ShardedEngineConfig& config);

/// Reconstructs the config to reopen the fleet described by `manifest`
/// under `root` (the Fleet::Open "disk tells you" direction).
ShardedEngineConfig ConfigFromManifest(const FleetManifest& manifest,
                                       const std::string& root);

/// A fleet of K engines sharing one disk. The facade itself is driven by
/// one caller thread; in threaded mode the shards consume its ticks
/// asynchronously on their own mutator threads.
class ShardedEngine {
 public:
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Starts the next fleet tick.
  void BeginTick();

  /// Records one logical update for `shard`'s partition (applied by the
  /// shard when it consumes this tick).
  void ApplyUpdate(uint32_t shard, uint32_t cell, int32_t value);

  /// Ends the fleet tick: mails every shard its batch plus the stagger
  /// scheduler's checkpoint decision, and polls for shard errors. On a
  /// shard failure EVERY other shard still receives and finishes the tick,
  /// the first error is recorded, the fleet tick stays consistent, and the
  /// fleet hard-fails (failed() becomes true; only Shutdown/SimulateCrash
  /// remain legal). In threaded mode an error can surface one or more
  /// ticks after the EndTick that caused it.
  Status EndTick();

  /// Barrier: blocks until every shard has consumed all submitted ticks,
  /// then returns the fleet's sticky error. After it returns OK, per-shard
  /// engines are quiescent and safe to inspect from this thread.
  Status WaitForIdle();

  // ---- Fleet-wide consistent cut (see consistent_cut.h) ----

  /// Phase 1: arms a consistent cut at tick T = current_tick +
  /// cut_lead_ticks and returns T. From now through tick T the stagger
  /// scheduler stands down; at tick T every shard drains to T and
  /// checkpoints exactly there (the shard acks by completing that
  /// checkpoint before consuming another tick). The caller keeps driving
  /// ticks as usual and, once the fleet tick has passed T, calls
  /// CommitConsistentCut. Only one cut may be in flight.
  StatusOr<uint64_t> RequestConsistentCut();

  /// Phase 2: barriers the fleet (WaitForIdle), verifies every shard
  /// produced its cut checkpoint, and atomically commits the fleet cut
  /// manifest. A crash before this commit -- even with all shards acked --
  /// leaves no manifest, and recovery falls back to per-shard exactness.
  /// FailedPrecondition if no cut is armed or tick T has not run yet. On
  /// any error the cut is abandoned (no manifest).
  Status CommitConsistentCut();

  /// True between RequestConsistentCut and CommitConsistentCut.
  bool cut_in_flight() const { return cut_.armed(); }
  /// The armed cut tick (meaningful while cut_in_flight()).
  uint64_t pending_cut_tick() const { return cut_.cut_tick(); }
  /// Timing of the last committed cut.
  const ConsistentCutReport& last_cut_report() const {
    return last_cut_report_;
  }

  // ---- Zone migration at a committed cut (ROADMAP item) ----

  /// Moves `partition`'s state to the fresh shard slot `to_slot` and
  /// commits the new topology as fleet epoch + 1. Must run IMMEDIATELY
  /// after a consistent cut committed at the previous tick (cut tick T ==
  /// current_tick() - 1, no fleet tick in between): the quiesced live
  /// state then equals the durable cut image, so the hand-off point is a
  /// tick every shard agrees on -- the MMOG zone hand-off primitive.
  ///
  /// Protocol (each step durable before the next, so a crash ANYWHERE
  /// lands in a well-defined topology):
  ///   1. drain the fleet; stop and shut down the partition's engine (its
  ///      old directory stays intact -- still the epoch-E recovery source);
  ///   2. bootstrap the partition's state into shard-<to_slot> via
  ///      Engine::OpenResumed (synchronous checkpoint at the cut);
  ///   3. commit fleet-manifest-<E+1> (tmp + rename + dir fsync);
  ///   4. retire the epoch-E manifest, then the source directory
  ///      (best-effort: the rename in 3 is the commit point, and anything
  ///      this sweep leaves behind is unreferenced garbage recovery
  ///      ignores).
  /// A crash before 3 recovers under epoch E (partition still on its old
  /// shard, exact at the current tick); after 3, under E+1 (partition on
  /// the new shard, its bootstrap exact at the same tick). The committed
  /// cut manifest survives the move: the destination bootstrap IS the
  /// partition's image at the cut, so cut recovery stays available.
  ///
  /// Errors: FailedPrecondition when no cut committed at current_tick()-1
  /// or a cut is still in flight; InvalidArgument for an unknown partition
  /// or an occupied destination slot.
  ///
  /// A non-empty `mount_root` relocates the destination slot's directory
  /// under that path instead of the fleet root (a different disk); the v3
  /// manifest records the override per partition, so recovery and every
  /// later reopen resolve the same directory.
  Status MigratePartition(uint32_t partition, uint32_t to_slot,
                          const std::string& mount_root = "");

  /// Timing/shape of the last committed migration.
  const MigrationReport& last_migration_report() const {
    return last_migration_report_;
  }

  /// The durable fleet description this incarnation maintains: epoch,
  /// partition -> shard-slot assignment, and every reopen knob.
  const FleetManifest& manifest() const { return manifest_; }
  /// Current fleet epoch (bumps on MigratePartition).
  uint64_t epoch() const { return manifest_.epoch; }
  /// Shard slot hosting partition `p`.
  uint32_t SlotOfPartition(uint32_t p) const { return manifest_.assignment[p]; }

  /// Graceful stop of every shard (drains mailboxes and in-flight
  /// checkpoints).
  Status Shutdown();

  /// Crash injection across the fleet. Barriers first -- every shard
  /// reaches the fleet tick, as if the crash hit between ticks -- then
  /// every shard's in-flight checkpoint is abandoned mid-write. Because of
  /// staggering, shards are typically at different checkpoint generations
  /// when the crash lands.
  Status SimulateCrash();

  // ---- Hot failover via in-memory cross-shard replication ----

  /// Crash injection on ONE shard (the paper's single-server-death model):
  /// barriers the fleet to the current tick, then kills `partition`'s
  /// engine mid-checkpoint and marks every replica buffer HOSTED BY that
  /// shard torn -- a dead server loses the replicas it held for others
  /// along with its own state. The rest of the fleet stays live but
  /// frozen: BeginTick, cuts, and migration are refused until
  /// FailoverShard brings the partition back. InvalidArgument for an
  /// unknown partition; FailedPrecondition while a cut is in flight or the
  /// partition is already crashed.
  Status SimulateShardCrash(uint32_t partition);

  /// Brings a crashed partition back at the CURRENT fleet tick. Fast
  /// path: the peer designated by manifest().replica_peer[partition]
  /// rebuilds the state from its in-memory ReplicaBuffer (base snapshot +
  /// delta ring) -- no disk read of the dead shard at all. Fallback: when
  /// replication is off, the peer is itself crashed, or its buffer is
  /// torn, the state is recovered from the partition's own disk (logical
  /// log replay), which must be exact at the fleet tick. Either way the
  /// shard restarts via Engine::OpenResumed (synchronous bootstrap
  /// checkpoint outranking every pre-crash image), the partition's
  /// replica topology is re-anchored, and the fleet may tick again.
  /// The rebuilt state is byte-identical on both paths -- the failover
  /// tests pin peer-memory digests against a disk-recovered oracle.
  /// FailedPrecondition when the partition is not crashed.
  Status FailoverShard(uint32_t partition);

  /// Path taken and timing of the last FailoverShard.
  const FailoverReport& last_failover_report() const {
    return last_failover_report_;
  }

  /// Partition `p`'s hosted replica buffer (on its peer's runner), or
  /// nullptr when replication is off. Test/inspection hook: safe only
  /// while the fleet is quiesced (see shard()).
  ReplicaBuffer* replica_buffer(uint32_t p) {
    return config_.replicate ? runners_[manifest_.replica_peer[p]]->replica(p)
                             : nullptr;
  }

  /// Partition `p`'s cumulative dirty-mark count (every dirty-bit Set its
  /// engine ever performed). Monotonic across checkpoints; the delta
  /// between two readings is the partition's write rate over that window
  /// -- the rebalancer's load signal. Relaxed-atomic underneath, so safe
  /// to poll from the facade thread while the runner keeps ticking; resets
  /// to 0 when the partition's engine is replaced (migration, failover).
  uint64_t PartitionDirtyMarks(uint32_t p) const {
    return runners_[p]->engine().CumulativeDirtyMarks();
  }

  const ShardedEngineConfig& config() const { return config_; }
  const StaggerScheduler& scheduler() const { return scheduler_; }
  uint32_t num_shards() const { return config_.num_shards; }
  uint64_t current_tick() const { return tick_; }
  /// True once a shard error hard-failed the fleet.
  bool failed() const { return failed_; }

  /// Shard `i`'s engine. Safe only while the fleet is quiesced (inline
  /// mode, or after WaitForIdle/Shutdown/SimulateCrash).
  Engine& shard(uint32_t i) { return runners_[i]->engine(); }
  const Engine& shard(uint32_t i) const { return runners_[i]->engine(); }

  /// Aggregates checkpoint records across shards, skipping each shard's
  /// first (cold, all-objects) checkpoint when `skip_first` is set so
  /// steady-state incremental timing is not polluted by the bootstrap.
  /// Requires a quiesced fleet (see shard()).
  ShardedCheckpointStats CheckpointStats(bool skip_first = false) const;

  /// Checkpoint/log directory of shard slot `i` under `root` (delegates to
  /// paths::ShardDir, the naming's single owner).
  static std::string ShardDir(const std::string& root, uint32_t shard);

 private:
  // The Fleet facade is the only construction path: Fleet::Create opens
  // fresh fleets and RecoveredFleet::Resume restarts recovered ones.
  friend class Fleet;
  friend class RecoveredFleet;

  /// Fresh open under config.shard.dir: fresh engines at tick 0, identity
  /// assignment, a new epoch-0 manifest (stale manifests and unassigned
  /// shard directories from a previous incarnation are retired first).
  static StatusOr<std::unique_ptr<ShardedEngine>> Open(
      const ShardedEngineConfig& config);

  /// Fleet restart: re-opens every shard from recovered state -- the
  /// output of RecoverFleet or RecoverFleetToCut, one table per partition
  /// in partition order -- and resumes the fleet tick counter at
  /// `first_tick` (crash recovery: the crash fleet's recovered_ticks; cut
  /// recovery: cut_tick + 1). Each shard runs Engine::OpenResumed, so per
  /// shard a synchronous bootstrap checkpoint is written, numbered above
  /// every stale pre-crash image, before the new logical log starts: a
  /// crash at ANY later point -- including before the fleet's first
  /// resumed tick -- recovers to at least `first_tick`. Blocks for K
  /// sequential bootstrap writes; this is fleet restart downtime, not
  /// gameplay latency. The previous incarnation's cut manifest (if any)
  /// is retired only AFTER every shard's bootstrap is durable, so a death
  /// mid-resume never destroys a cut restore point while it is still
  /// reachable: resuming from the cut itself (first_tick == cut_tick + 1)
  /// keeps the fleet recoverable to exactly the cut throughout the
  /// resume, and an older cut degrades to the per-shard fallback inside
  /// the cut-recovery path.
  ///
  /// `bump_epoch` (a point-in-time resume, RecoveredFleet::Resume after
  /// Fleet::RecoverToTick): once every shard's bootstrap is durable, the
  /// manifest is re-committed as epoch + 1 and older epochs retired --
  /// the new timeline's commit point. A crash before that commit leaves
  /// the old epoch intact and the operator simply re-runs the restore.
  static StatusOr<std::unique_ptr<ShardedEngine>> OpenResumed(
      const ShardedEngineConfig& config,
      const std::vector<StateTable>& initial, uint64_t first_tick,
      bool bump_epoch = false);

  explicit ShardedEngine(const ShardedEngineConfig& config);

  /// Shared Open/OpenResumed body: `initial` == nullptr opens fresh
  /// engines at tick 0 (identity assignment, a new epoch-0 manifest);
  /// otherwise every shard resumes from its table at `first_tick`, with
  /// the partition assignment read from the durable manifest.
  static StatusOr<std::unique_ptr<ShardedEngine>> OpenImpl(
      const ShardedEngineConfig& config,
      const std::vector<StateTable>* initial, uint64_t first_tick,
      bool bump_epoch = false);

  /// Builds the ShardRunner for `partition` around `engine`.
  std::unique_ptr<ShardRunner> MakeRunner(uint32_t partition,
                                          std::unique_ptr<Engine> engine);

  /// First sticky error across runners (polled without blocking).
  Status PollShardError();

  ShardedEngineConfig config_;
  /// In-memory twin of the durable superblock (epoch, assignment, knobs).
  FleetManifest manifest_;
  StaggerScheduler scheduler_;
  ConsistentCutCoordinator cut_;
  std::chrono::steady_clock::time_point cut_armed_at_;
  ConsistentCutReport last_cut_report_;
  /// Tick of the last cut committed by THIS incarnation, or UINT64_MAX:
  /// the MigratePartition precondition.
  uint64_t last_committed_cut_tick_ = UINT64_MAX;
  MigrationReport last_migration_report_;
  FailoverReport last_failover_report_;
  std::vector<std::unique_ptr<ShardRunner>> runners_;
  /// Per-shard updates buffered during the open tick.
  std::vector<std::vector<CellUpdate>> pending_;
  /// crashed_[p] = SimulateShardCrash killed partition p and FailoverShard
  /// has not yet revived it (vector<uint8_t>: no bitset proxy games).
  std::vector<uint8_t> crashed_;
  uint32_t crashed_count_ = 0;
  /// Committed-cut tick to broadcast to replica hosts in the NEXT tick's
  /// batches (the trim-at-cut rule), or kNoReplicaTrim when none pending.
  uint64_t pending_replica_trim_ = ShardTickBatch::kNoReplicaTrim;
  uint64_t tick_ = 0;
  bool in_tick_ = false;
  bool failed_ = false;
  Status first_error_;
  bool shut_down_ = false;
};

}  // namespace tickpoint

#endif  // TICKPOINT_ENGINE_SHARDED_ENGINE_H_
