// K independent Engine instances behind one tick facade (paper Section 8
// future work: multiple shards per persistence disk).
//
// Each shard owns a disjoint state partition, its own logical log, and its
// own checkpoint directory under the shared root -- exactly the layout a
// multi-zone MMO server would run on one persistence disk. The facade
// drives all shards in tick lockstep; the StaggerScheduler decides, per
// tick, which shards begin a checkpoint, so the synchronized-vs-staggered
// disk-contention tradeoff projected by bench_shard_stagger can be measured
// on the real write path. Each shard's writer thread flushes concurrently
// with the others, which is precisely the contention under study.
#ifndef TICKPOINT_ENGINE_SHARDED_ENGINE_H_
#define TICKPOINT_ENGINE_SHARDED_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/stagger_scheduler.h"

namespace tickpoint {

/// Sharded-engine construction parameters.
struct ShardedEngineConfig {
  /// Per-shard template. `shard.layout` is the layout of ONE partition and
  /// `shard.dir` the shared root directory; shard i lives in
  /// ShardDir(shard.dir, i). Interval fields are ignored: checkpoint
  /// scheduling is owned by the stagger scheduler.
  EngineConfig shard;
  /// K: number of shards sharing the persistence disk.
  uint32_t num_shards = 1;
  /// Ticks between one shard's consecutive checkpoint starts.
  uint64_t checkpoint_period_ticks = 8;
  /// Stagger shard starts by i * period / K (false = synchronized).
  bool staggered = true;

  StaggerConfig ToStaggerConfig() const {
    return StaggerConfig{num_shards, checkpoint_period_ticks, staggered};
  }
};

/// Checkpoint timing aggregated across all shards of a run.
struct ShardedCheckpointStats {
  uint64_t checkpoints = 0;
  double avg_total_seconds = 0.0;  // sync pause + async writer wall
  double max_total_seconds = 0.0;
  double avg_sync_seconds = 0.0;
  double avg_async_seconds = 0.0;
};

/// A fleet of K engines sharing one disk, driven in tick lockstep.
class ShardedEngine {
 public:
  static StatusOr<std::unique_ptr<ShardedEngine>> Open(
      const ShardedEngineConfig& config);

  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Starts the next tick on every shard.
  void BeginTick();

  /// Applies one logical update to `shard`'s partition.
  void ApplyUpdate(uint32_t shard, uint32_t cell, int32_t value);

  /// Ends the tick on every shard, scheduling checkpoint starts per the
  /// stagger scheduler.
  Status EndTick();

  /// Graceful stop of every shard (drains in-flight checkpoints).
  Status Shutdown();

  /// Crash injection across the fleet: every shard's in-flight checkpoint
  /// is abandoned mid-write. Because of staggering, shards are typically at
  /// different checkpoint generations when the crash lands.
  Status SimulateCrash();

  const ShardedEngineConfig& config() const { return config_; }
  const StaggerScheduler& scheduler() const { return scheduler_; }
  uint32_t num_shards() const { return config_.num_shards; }
  uint64_t current_tick() const { return tick_; }

  Engine& shard(uint32_t i) { return *shards_[i]; }
  const Engine& shard(uint32_t i) const { return *shards_[i]; }

  /// Aggregates checkpoint records across shards, skipping each shard's
  /// first (cold, all-objects) checkpoint when `skip_first` is set so
  /// steady-state incremental timing is not polluted by the bootstrap.
  ShardedCheckpointStats CheckpointStats(bool skip_first = false) const;

  /// Checkpoint/log directory of shard `i` under `root`.
  static std::string ShardDir(const std::string& root, uint32_t shard);

 private:
  explicit ShardedEngine(const ShardedEngineConfig& config);

  ShardedEngineConfig config_;
  StaggerScheduler scheduler_;
  std::vector<std::unique_ptr<Engine>> shards_;
  uint64_t tick_ = 0;
  bool in_tick_ = false;
  bool shut_down_ = false;
};

}  // namespace tickpoint

#endif  // TICKPOINT_ENGINE_SHARDED_ENGINE_H_
