#include "engine/compactor.h"

namespace tickpoint {

CompactionPlan PlanCompaction(const HistoryIndex& index,
                              const RetentionPolicy& policy) {
  CompactionPlan plan;
  if (!policy.enabled || index.generations.empty()) return plan;

  // Generations are kept in ascending seq (= ascending consistent tick)
  // order; find the first survivor. Count bound first, then the tick
  // bound, never dropping the newest.
  const auto& gens = index.generations;
  size_t first_kept = 0;
  if (gens.size() > policy.max_generations) {
    first_kept = gens.size() - policy.max_generations;
  }
  if (policy.max_retained_ticks > 0) {
    const uint64_t newest_tick = gens.back().consistent_tick;
    const uint64_t floor_tick = newest_tick > policy.max_retained_ticks
                                    ? newest_tick - policy.max_retained_ticks
                                    : 0;
    while (first_kept + 1 < gens.size() &&
           gens[first_kept].consistent_tick < floor_tick) {
      ++first_kept;
    }
  }
  for (size_t i = 0; i < first_kept; ++i) {
    plan.drop_generations.push_back(gens[i].seq);
  }
  plan.window_base = gens[first_kept].consistent_tick;

  // Segment records with tick < window_base serve no surviving generation:
  // whole segments below the base are dropped, a segment straddling it is
  // rewritten keeping [window_base, last_tick].
  for (const auto& seg : index.segments) {
    if (seg.last_tick < plan.window_base) {
      plan.drop_segments.push_back(seg.id);
    } else if (seg.first_tick < plan.window_base) {
      plan.rewrite_segments.push_back(seg.id);
    }
  }
  return plan;
}

}  // namespace tickpoint
