#include "engine/fleet_manifest.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <unordered_set>

#include "engine/paths.h"
#include "util/crc32.h"
#include "util/io.h"

namespace tickpoint {
namespace {

constexpr uint64_t kFleetMagic = 0x544B5054464C5431ULL;  // "TKPTFLT1"
// v2 (replication era): the 16-byte extension below plus a replica_peer
// u32 per partition after the assignment. v1 files (no extension, no
// peers) still read back, with replication off.
// v3 (rebalancing era): a length-prefixed mount-root string per partition
// after the peers, so a migrated partition can live on a different disk.
// v1/v2 files read back with every partition under the fleet root.
// v4 (point-in-time recovery era): the 24-byte retention extension after
// the mount roots, carrying the history RetentionPolicy durably. v1-v3
// files read back with retention off.
constexpr uint32_t kFleetVersion = 4;
/// Defensive bound on K when reading untrusted bytes: a corrupt
/// num_partitions must not drive a multi-gigabyte allocation.
constexpr uint32_t kMaxPartitions = 65536;
/// Defensive bound on one mount-root path when reading untrusted bytes.
constexpr uint32_t kMaxMountRootBytes = 4096;

/// The fixed-size half of the on-disk format. Field order is chosen so the
/// struct has no padding holes (static_assert below): the CRC covers raw
/// bytes, so every byte must be deterministic.
struct ManifestHeader {
  uint64_t magic = 0;
  uint32_t version = 0;
  uint32_t num_partitions = 0;
  uint64_t epoch = 0;
  uint64_t rows = 0;
  uint64_t cols = 0;
  uint64_t object_size = 0;
  uint32_t cell_size = 0;
  uint32_t algorithm = 0;
  uint32_t disk_organization = 0;
  uint32_t disk_budget = 0;
  uint64_t full_flush_period = 0;
  uint64_t logical_sync_every = 0;
  uint64_t checkpoint_period_ticks = 0;
  uint64_t max_queue_ticks = 0;
  uint64_t cut_lead_ticks = 0;
  uint8_t fsync = 0;
  uint8_t checksum_state = 0;
  uint8_t staggered = 0;
  uint8_t adaptive = 0;
  uint8_t threaded = 0;
  uint8_t reserved[3] = {0, 0, 0};
};
static_assert(sizeof(ManifestHeader) == 112,
              "ManifestHeader must stay padding-free: the CRC covers raw "
              "bytes");

/// The v2 extension, written (and CRC'd) immediately after ManifestHeader.
/// A separate struct rather than new ManifestHeader fields so v1 files --
/// whose CRC covers exactly the 112 header bytes plus the assignment --
/// keep reading back byte-for-byte.
struct ManifestHeaderV2Ext {
  uint64_t replica_depth = 0;
  uint8_t replicate = 0;
  uint8_t reserved[7] = {0, 0, 0, 0, 0, 0, 0};
};
static_assert(sizeof(ManifestHeaderV2Ext) == 16,
              "ManifestHeaderV2Ext must stay padding-free: the CRC covers "
              "raw bytes");

/// The v4 extension, written (and CRC'd) after the mount-root strings: the
/// durable form of RetentionPolicy (engine/history.h). Trailing so v3
/// files keep reading back byte-for-byte.
struct ManifestHeaderV4Ext {
  uint64_t max_generations = 0;
  uint64_t max_retained_ticks = 0;
  uint8_t retention_enabled = 0;
  uint8_t reserved[7] = {0, 0, 0, 0, 0, 0, 0};
};
static_assert(sizeof(ManifestHeaderV4Ext) == 24,
              "ManifestHeaderV4Ext must stay padding-free: the CRC covers "
              "raw bytes");

Status ValidateManifest(const FleetManifest& manifest,
                        const std::string& path) {
  if (manifest.num_partitions == 0 ||
      manifest.num_partitions > kMaxPartitions) {
    return Status::Corruption("fleet manifest " + path +
                              " records an implausible partition count " +
                              std::to_string(manifest.num_partitions));
  }
  if (manifest.assignment.size() != manifest.num_partitions) {
    return Status::Corruption("fleet manifest " + path +
                              " assignment size mismatch");
  }
  std::unordered_set<uint32_t> slots;
  for (const uint32_t slot : manifest.assignment) {
    if (!slots.insert(slot).second) {
      return Status::Corruption("fleet manifest " + path +
                                " assigns two partitions to shard slot " +
                                std::to_string(slot));
    }
  }
  if (!manifest.layout.Valid()) {
    return Status::Corruption("fleet manifest " + path +
                              " records an invalid state layout");
  }
  if (manifest.algorithm > AlgorithmKind::kCopyOnUpdatePartialRedo) {
    return Status::Corruption("fleet manifest " + path +
                              " records an unknown algorithm");
  }
  if (manifest.replicate) {
    // Structural bounds only (untrusted bytes must not drive out-of-range
    // indexing later); semantic knob validation -- self-peering included --
    // is ShardedEngine::OpenImpl's InvalidArgument, like every other knob.
    if (manifest.replica_depth == 0) {
      return Status::Corruption("fleet manifest " + path +
                                " enables replication with replica_depth 0");
    }
    if (manifest.replica_peer.size() != manifest.num_partitions) {
      return Status::Corruption("fleet manifest " + path +
                                " replica_peer size mismatch");
    }
    for (const uint32_t peer : manifest.replica_peer) {
      if (peer >= manifest.num_partitions) {
        return Status::Corruption(
            "fleet manifest " + path + " names replica peer " +
            std::to_string(peer) + " beyond its partition count");
      }
    }
  }
  if (!manifest.mount_root.empty() &&
      manifest.mount_root.size() != manifest.num_partitions) {
    return Status::Corruption("fleet manifest " + path +
                              " mount_root size mismatch");
  }
  for (const std::string& mount : manifest.mount_root) {
    if (mount.size() > kMaxMountRootBytes) {
      return Status::Corruption("fleet manifest " + path +
                                " records an implausibly long mount root");
    }
  }
  if (!manifest.retention.Valid()) {
    return Status::Corruption("fleet manifest " + path +
                              " enables history retention with "
                              "max_generations 0");
  }
  return Status::OK();
}

}  // namespace

std::string FleetManifest::PartitionDir(const std::string& root,
                                        uint32_t partition) const {
  TP_CHECK(partition < assignment.size());
  return paths::SlotDir(root, MountRootOf(partition), assignment[partition]);
}

std::string FleetManifest::MountRootOf(uint32_t partition) const {
  TP_CHECK(partition < assignment.size());
  if (mount_root.empty()) return "";
  TP_CHECK(mount_root.size() == assignment.size());
  return mount_root[partition];
}

bool FleetManifest::IsIdentityAssignment() const {
  for (uint32_t p = 0; p < assignment.size(); ++p) {
    if (assignment[p] != p) return false;
  }
  return true;
}

Status WriteFleetManifest(const std::string& root,
                          const FleetManifest& manifest, bool fsync) {
  const std::string path = paths::FleetManifestPath(root, manifest.epoch);
  const std::string tmp = path + ".tmp";
  {
    FileWriter writer;
    TP_RETURN_NOT_OK(writer.Open(tmp));
    ManifestHeader header;
    header.magic = kFleetMagic;
    header.version = kFleetVersion;
    header.num_partitions = manifest.num_partitions;
    header.epoch = manifest.epoch;
    header.rows = manifest.layout.rows;
    header.cols = manifest.layout.cols;
    header.object_size = manifest.layout.object_size;
    header.cell_size = manifest.layout.cell_size;
    header.algorithm = static_cast<uint32_t>(manifest.algorithm);
    header.disk_organization =
        static_cast<uint32_t>(GetTraits(manifest.algorithm).disk);
    header.disk_budget = manifest.disk_budget;
    header.full_flush_period = manifest.full_flush_period;
    header.logical_sync_every = manifest.logical_sync_every;
    header.checkpoint_period_ticks = manifest.checkpoint_period_ticks;
    header.max_queue_ticks = manifest.max_queue_ticks;
    header.cut_lead_ticks = manifest.cut_lead_ticks;
    header.fsync = manifest.fsync ? 1 : 0;
    header.checksum_state = manifest.checksum_state ? 1 : 0;
    header.staggered = manifest.staggered ? 1 : 0;
    header.adaptive = manifest.adaptive ? 1 : 0;
    header.threaded = manifest.threaded ? 1 : 0;
    TP_RETURN_NOT_OK(writer.Append(&header, sizeof(header)));
    uint32_t crc = Crc32(&header, sizeof(header));
    ManifestHeaderV2Ext ext;
    ext.replica_depth = manifest.replica_depth;
    ext.replicate = manifest.replicate ? 1 : 0;
    TP_RETURN_NOT_OK(writer.Append(&ext, sizeof(ext)));
    crc = Crc32(&ext, sizeof(ext), crc);
    for (const uint32_t slot : manifest.assignment) {
      TP_RETURN_NOT_OK(writer.Append(&slot, sizeof(slot)));
      crc = Crc32(&slot, sizeof(slot), crc);
    }
    // The peer vector is written resolved even with replication off (the
    // replicate flag gates its meaning), so the v2 record length is a pure
    // function of num_partitions. An empty vector resolves to the default
    // ring here, keeping non-replicated construction sites unchanged.
    std::vector<uint32_t> peers = manifest.replica_peer;
    if (peers.empty()) {
      peers.resize(manifest.num_partitions);
      for (uint32_t p = 0; p < manifest.num_partitions; ++p) {
        peers[p] = (p + 1) % std::max<uint32_t>(1, manifest.num_partitions);
      }
    }
    TP_CHECK(peers.size() == manifest.num_partitions);
    for (const uint32_t peer : peers) {
      TP_RETURN_NOT_OK(writer.Append(&peer, sizeof(peer)));
      crc = Crc32(&peer, sizeof(peer), crc);
    }
    // v3: one length-prefixed mount-root string per partition. An empty
    // manifest vector writes num_partitions empty strings, so the record
    // shape never depends on whether any override is actually set.
    TP_CHECK(manifest.mount_root.empty() ||
             manifest.mount_root.size() == manifest.num_partitions);
    for (uint32_t p = 0; p < manifest.num_partitions; ++p) {
      const std::string mount =
          manifest.mount_root.empty() ? std::string() : manifest.mount_root[p];
      TP_CHECK(mount.size() <= kMaxMountRootBytes);
      const uint32_t len = static_cast<uint32_t>(mount.size());
      TP_RETURN_NOT_OK(writer.Append(&len, sizeof(len)));
      crc = Crc32(&len, sizeof(len), crc);
      if (len > 0) {
        TP_RETURN_NOT_OK(writer.Append(mount.data(), len));
        crc = Crc32(mount.data(), len, crc);
      }
    }
    // v4: the retention policy, written unconditionally (disabled policies
    // serialize their knobs too, so toggling retention never changes the
    // record shape).
    ManifestHeaderV4Ext retention_ext;
    retention_ext.max_generations = manifest.retention.max_generations;
    retention_ext.max_retained_ticks = manifest.retention.max_retained_ticks;
    retention_ext.retention_enabled = manifest.retention.enabled ? 1 : 0;
    TP_RETURN_NOT_OK(writer.Append(&retention_ext, sizeof(retention_ext)));
    crc = Crc32(&retention_ext, sizeof(retention_ext), crc);
    TP_RETURN_NOT_OK(writer.Append(&crc, sizeof(crc)));
    TP_RETURN_NOT_OK(fsync ? writer.Sync() : writer.Flush());
    TP_RETURN_NOT_OK(writer.Close());
  }
  // The rename is the epoch's commit point; the directory fsync makes the
  // commit itself durable. The PREVIOUS epoch's file is untouched here --
  // retirement is a separate, later step, so a crash in between leaves
  // both epochs readable and recovery picks the newest.
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("commit fleet manifest " + path + ": " +
                           ec.message());
  }
  if (fsync) {
    TP_RETURN_NOT_OK(SyncDirectory(root));
  }
  return Status::OK();
}

StatusOr<FleetManifest> ReadFleetManifestFile(const std::string& path) {
  if (!FileExists(path)) {
    return Status::NotFound("no fleet manifest at " + path);
  }
  FileReader reader;
  TP_RETURN_NOT_OK(reader.Open(path));
  TP_ASSIGN_OR_RETURN(const uint64_t size, reader.Size());
  ManifestHeader header;
  if (size < sizeof(header) + sizeof(uint32_t)) {
    return Status::Corruption("fleet manifest " + path + " is truncated");
  }
  TP_RETURN_NOT_OK(reader.ReadExact(&header, sizeof(header)));
  if (header.magic != kFleetMagic) {
    return Status::Corruption("fleet manifest " + path + " has a bad magic");
  }
  if (header.version > kFleetVersion) {
    // Deliberately NOT Corruption: recovery must refuse, not fall back to
    // an older epoch, when the fleet was written by a newer binary.
    return Status::FailedPrecondition(
        "fleet manifest " + path + " has format version " +
        std::to_string(header.version) + "; this binary understands up to " +
        std::to_string(kFleetVersion));
  }
  if (header.version == 0) {
    return Status::Corruption("fleet manifest " + path +
                              " has version 0 (torn header?)");
  }
  if (header.num_partitions == 0 || header.num_partitions > kMaxPartitions) {
    return Status::Corruption("fleet manifest " + path +
                              " records an implausible partition count " +
                              std::to_string(header.num_partitions));
  }
  // v1: header + assignment + CRC. v2 adds the 16-byte extension and one
  // replica_peer u32 per partition. v3 adds one length-prefixed mount-root
  // string per partition (variable length; `expected` counts the length
  // words only, the minimum, and ReadExact catches a body truncated
  // mid-string).
  const bool v2 = header.version >= 2;
  const bool v3 = header.version >= 3;
  const bool v4 = header.version >= 4;
  const uint64_t expected =
      sizeof(header) + (v2 ? sizeof(ManifestHeaderV2Ext) : 0) +
      header.num_partitions * sizeof(uint32_t) *
          ((v2 ? 2 : 1) + (v3 ? 1 : 0)) +
      (v4 ? sizeof(ManifestHeaderV4Ext) : 0) + sizeof(uint32_t);
  if (size < expected) {
    return Status::Corruption("fleet manifest " + path + " is truncated");
  }
  uint32_t crc = Crc32(&header, sizeof(header));
  ManifestHeaderV2Ext ext;
  if (v2) {
    TP_RETURN_NOT_OK(reader.ReadExact(&ext, sizeof(ext)));
    crc = Crc32(&ext, sizeof(ext), crc);
  }
  FleetManifest manifest;
  manifest.epoch = header.epoch;
  manifest.num_partitions = header.num_partitions;
  manifest.layout.rows = header.rows;
  manifest.layout.cols = header.cols;
  manifest.layout.object_size = header.object_size;
  manifest.layout.cell_size = header.cell_size;
  manifest.algorithm = static_cast<AlgorithmKind>(header.algorithm);
  manifest.disk_budget = header.disk_budget;
  manifest.full_flush_period = header.full_flush_period;
  manifest.logical_sync_every = header.logical_sync_every;
  manifest.checkpoint_period_ticks = header.checkpoint_period_ticks;
  manifest.max_queue_ticks = header.max_queue_ticks;
  manifest.cut_lead_ticks = header.cut_lead_ticks;
  manifest.fsync = header.fsync != 0;
  manifest.checksum_state = header.checksum_state != 0;
  manifest.staggered = header.staggered != 0;
  manifest.adaptive = header.adaptive != 0;
  manifest.threaded = header.threaded != 0;
  manifest.assignment.resize(header.num_partitions);
  for (uint32_t& slot : manifest.assignment) {
    TP_RETURN_NOT_OK(reader.ReadExact(&slot, sizeof(slot)));
    crc = Crc32(&slot, sizeof(slot), crc);
  }
  if (v2) {
    manifest.replicate = ext.replicate != 0;
    manifest.replica_depth = ext.replica_depth;
    manifest.replica_peer.resize(header.num_partitions);
    for (uint32_t& peer : manifest.replica_peer) {
      TP_RETURN_NOT_OK(reader.ReadExact(&peer, sizeof(peer)));
      crc = Crc32(&peer, sizeof(peer), crc);
    }
  } else {
    // A pre-replication fleet: resumes with replication off (the struct
    // defaults say depth 32, but nothing consumes it while !replicate).
    manifest.replicate = false;
    manifest.replica_peer.clear();
  }
  if (v3) {
    manifest.mount_root.resize(header.num_partitions);
    for (std::string& mount : manifest.mount_root) {
      uint32_t len = 0;
      TP_RETURN_NOT_OK(reader.ReadExact(&len, sizeof(len)));
      crc = Crc32(&len, sizeof(len), crc);
      if (len > kMaxMountRootBytes) {
        return Status::Corruption("fleet manifest " + path +
                                  " records an implausibly long mount root");
      }
      if (len > 0) {
        mount.resize(len);
        TP_RETURN_NOT_OK(reader.ReadExact(mount.data(), len));
        crc = Crc32(mount.data(), len, crc);
      }
    }
  } else {
    // A pre-rebalancing fleet: every partition lives under the fleet root.
    manifest.mount_root.clear();
  }
  if (v4) {
    ManifestHeaderV4Ext retention_ext;
    TP_RETURN_NOT_OK(reader.ReadExact(&retention_ext, sizeof(retention_ext)));
    crc = Crc32(&retention_ext, sizeof(retention_ext), crc);
    manifest.retention.enabled = retention_ext.retention_enabled != 0;
    manifest.retention.max_generations = retention_ext.max_generations;
    manifest.retention.max_retained_ticks = retention_ext.max_retained_ticks;
  } else {
    // A pre-history fleet: resumes with retention off.
    manifest.retention = RetentionPolicy{};
  }
  uint32_t stored;
  TP_RETURN_NOT_OK(reader.ReadExact(&stored, sizeof(stored)));
  if (stored != crc) {
    return Status::Corruption("fleet manifest " + path + " fails its CRC");
  }
  TP_RETURN_NOT_OK(ValidateManifest(manifest, path));
  if (header.disk_organization !=
      static_cast<uint32_t>(GetTraits(manifest.algorithm).disk)) {
    return Status::Corruption(
        "fleet manifest " + path +
        " records a disk organization inconsistent with its algorithm");
  }
  return manifest;
}

std::vector<uint64_t> ListFleetManifestEpochs(const std::string& root) {
  std::vector<uint64_t> epochs;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root, ec)) {
    uint64_t epoch = 0;
    if (paths::ParseFleetManifestFileName(entry.path().filename().string(),
                                          &epoch)) {
      epochs.push_back(epoch);
    }
  }
  std::sort(epochs.rbegin(), epochs.rend());
  return epochs;
}

StatusOr<FleetManifest> ReadNewestFleetManifest(const std::string& root) {
  const std::vector<uint64_t> epochs = ListFleetManifestEpochs(root);
  if (epochs.empty()) {
    return Status::NotFound("no fleet manifest under " + root +
                            " (not a fleet root, or created before the "
                            "manifest was introduced)");
  }
  Status newest_error = Status::OK();
  for (const uint64_t epoch : epochs) {
    auto manifest_or =
        ReadFleetManifestFile(paths::FleetManifestPath(root, epoch));
    if (manifest_or.ok()) return manifest_or;
    if (manifest_or.status().code() == StatusCode::kFailedPrecondition) {
      // Future-version fleet: refusing is the only safe answer; silently
      // recovering an older epoch would resurrect a pre-upgrade topology.
      return manifest_or.status();
    }
    if (newest_error.ok()) newest_error = manifest_or.status();
    // Torn/corrupt: fall back to the previous epoch (the crash window
    // between an interrupted epoch commit and its retirement).
  }
  return newest_error;
}

Status RetireFleetManifestsBefore(const std::string& root, uint64_t epoch) {
  for (const uint64_t found : ListFleetManifestEpochs(root)) {
    if (found < epoch) {
      TP_RETURN_NOT_OK(
          RemoveFileIfExists(paths::FleetManifestPath(root, found)));
    }
  }
  // Also sweep manifest temp files: a crash inside WriteFleetManifest
  // (before its rename) orphans fleet-manifest-<E>.bin.tmp, which the
  // epoch scan above cannot see. Any tmp present when a retirement runs
  // is stale -- the single-process commit protocol never retires while a
  // write is in flight.
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root, ec)) {
    const std::string name = entry.path().filename().string();
    constexpr char kTmpSuffix[] = ".tmp";
    constexpr size_t kTmpSuffixLen = sizeof(kTmpSuffix) - 1;
    if (name.size() <= kTmpSuffixLen ||
        name.compare(name.size() - kTmpSuffixLen, kTmpSuffixLen,
                     kTmpSuffix) != 0) {
      continue;
    }
    uint64_t tmp_epoch = 0;
    if (paths::ParseFleetManifestFileName(
            name.substr(0, name.size() - kTmpSuffixLen), &tmp_epoch)) {
      TP_RETURN_NOT_OK(RemoveFileIfExists(entry.path().string()));
    }
  }
  return Status::OK();
}

}  // namespace tickpoint
