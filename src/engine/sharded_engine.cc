#include "engine/sharded_engine.h"

#include <algorithm>
#include <utility>

#include "util/io.h"

namespace tickpoint {

std::string ShardedEngine::ShardDir(const std::string& root, uint32_t shard) {
  return root + "/shard-" + std::to_string(shard);
}

ShardedEngine::ShardedEngine(const ShardedEngineConfig& config)
    : config_(config),
      scheduler_(config.ToStaggerConfig()),
      cut_(config.shard.dir, config.num_shards, config.shard.fsync) {}

StatusOr<std::unique_ptr<ShardedEngine>> ShardedEngine::OpenImpl(
    const ShardedEngineConfig& config,
    const std::vector<StateTable>* initial, uint64_t first_tick) {
  if (config.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  if (config.checkpoint_period_ticks == 0) {
    return Status::InvalidArgument("checkpoint_period_ticks must be positive");
  }
  if (config.shard.dir.empty()) {
    return Status::InvalidArgument("ShardedEngineConfig.shard.dir must be set");
  }
  if (config.max_queue_ticks == 0) {
    return Status::InvalidArgument("max_queue_ticks must be positive");
  }
  if (config.disk_budget == 0) {
    // Checked here, before the member initializer constructs the
    // StaggerScheduler, whose TP_CHECK would abort instead of returning.
    return Status::InvalidArgument("disk_budget must be positive");
  }
  if (initial != nullptr && initial->size() != config.num_shards) {
    return Status::InvalidArgument(
        "OpenResumed with " + std::to_string(initial->size()) +
        " shard tables for a " + std::to_string(config.num_shards) +
        "-shard fleet");
  }
  TP_RETURN_NOT_OK(EnsureDirectory(config.shard.dir));
  if (initial == nullptr) {
    // A fresh fleet truncates every shard's logical log and wipes the
    // stale checkpoints, so a cut manifest left by a previous incarnation
    // points at state this run can no longer reproduce: retire it before
    // the first shard opens. The RESUME path must NOT retire it yet -- see
    // the ordering note before the second removal below.
    TP_RETURN_NOT_OK(RemoveFileIfExists(CutManifestPath(config.shard.dir)));
  }
  std::unique_ptr<ShardedEngine> sharded(new ShardedEngine(config));
  sharded->tick_ = first_tick;
  sharded->runners_.reserve(config.num_shards);
  sharded->pending_.resize(config.num_shards);
  // Measured checkpoint completions feed the adaptive stagger; in threaded
  // mode the callbacks arrive on runner threads (the scheduler locks).
  auto observer = [fleet = sharded.get()](
                      uint32_t shard, const EngineCheckpointRecord& record,
                      uint64_t completion_tick) {
    fleet->scheduler_.ObserveCheckpointEnd(shard, completion_tick,
                                           record.TotalSeconds());
  };
  for (uint32_t i = 0; i < config.num_shards; ++i) {
    EngineConfig shard_config = config.shard;
    shard_config.dir = ShardDir(config.shard.dir, i);
    shard_config.manual_checkpoints = true;
    StatusOr<std::unique_ptr<Engine>> engine_or =
        initial == nullptr
            ? Engine::Open(shard_config)
            : Engine::OpenResumed(shard_config, (*initial)[i], first_tick);
    TP_ASSIGN_OR_RETURN(auto engine, std::move(engine_or));
    sharded->runners_.push_back(std::make_unique<ShardRunner>(
        i, std::move(engine), config.threaded, config.max_queue_ticks,
        observer));
  }
  if (initial != nullptr) {
    // Resume ordering: the pre-crash cut manifest is retired only AFTER
    // every shard's bootstrap checkpoint is durable. A death anywhere
    // inside the resume loop above therefore leaves the manifest in
    // place: when the fleet was resumed from the cut itself (first_tick
    // == cut_tick + 1, the RecoverShardedToCut workflow), each
    // already-resumed shard's bootstrap IS a valid image at the cut and
    // the untouched shards still carry their pre-crash sources, so
    // RecoverShardedToCut reproduces the fleet-consistent state at the
    // cut exactly. When the manifest's cut is older than first_tick, the
    // resumed shards can no longer reproduce it and recovery falls back
    // to per-shard exactness (see RecoverShardedToCut) -- but the
    // restore point is never destroyed while it was still reachable.
    TP_RETURN_NOT_OK(RemoveFileIfExists(CutManifestPath(config.shard.dir)));
  }
  return sharded;
}

StatusOr<std::unique_ptr<ShardedEngine>> ShardedEngine::Open(
    const ShardedEngineConfig& config) {
  return OpenImpl(config, /*initial=*/nullptr, /*first_tick=*/0);
}

StatusOr<std::unique_ptr<ShardedEngine>> ShardedEngine::OpenResumed(
    const ShardedEngineConfig& config, const std::vector<StateTable>& initial,
    uint64_t first_tick) {
  return OpenImpl(config, &initial, first_tick);
}

ShardedEngine::~ShardedEngine() {
  if (!shut_down_) {
    (void)Shutdown();
  }
}

void ShardedEngine::BeginTick() {
  TP_CHECK(!in_tick_ && !shut_down_ && !failed_);
  in_tick_ = true;
}

void ShardedEngine::ApplyUpdate(uint32_t shard, uint32_t cell,
                                int32_t value) {
  TP_DCHECK(in_tick_);
  TP_DCHECK(shard < runners_.size());
  pending_[shard].push_back(CellUpdate{cell, value});
}

Status ShardedEngine::EndTick() {
  TP_CHECK(in_tick_);
  in_tick_ = false;
  // While a cut is armed the stagger scheduler stands down up to and
  // including the cut tick, so no regular start can collide with (or
  // delay) the cut generation; afterward the fixed schedule resumes its
  // arithmetic and the adaptive plan is realigned below.
  const bool cut_tick_now = cut_.IsCutTick(tick_);
  const bool suppress_schedule = cut_.SuppressesScheduledStart(tick_);
  // Every shard gets its batch even if a sibling already failed: no shard
  // is ever left mid-tick, and the fleet tick advances exactly once.
  for (uint32_t i = 0; i < runners_.size(); ++i) {
    ShardTickBatch batch;
    batch.tick = tick_;
    batch.cut_checkpoint = cut_tick_now;
    batch.start_checkpoint =
        cut_tick_now ||
        (!suppress_schedule && scheduler_.ShouldCheckpoint(i, tick_));
    batch.updates = std::move(pending_[i]);
    pending_[i].clear();
    runners_[i]->SubmitTick(std::move(batch));
  }
  if (cut_tick_now) scheduler_.RealignAfterCut(tick_);
  ++tick_;
  return PollShardError();
}

StatusOr<uint64_t> ShardedEngine::RequestConsistentCut() {
  TP_CHECK(!in_tick_ && !shut_down_);
  if (failed_) return first_error_;
  TP_ASSIGN_OR_RETURN(const uint64_t cut_tick,
                      cut_.Arm(tick_, config_.cut_lead_ticks));
  cut_armed_at_ = std::chrono::steady_clock::now();
  return cut_tick;
}

Status ShardedEngine::CommitConsistentCut() {
  TP_CHECK(!in_tick_ && !shut_down_);
  if (!cut_.armed()) {
    return Status::FailedPrecondition("no consistent cut in flight");
  }
  const uint64_t cut_tick = cut_.cut_tick();
  if (tick_ <= cut_tick) {
    return Status::FailedPrecondition(
        "cut tick " + std::to_string(cut_tick) +
        " has not been submitted yet (fleet tick " + std::to_string(tick_) +
        ")");
  }
  // Gather the acks: the barrier parks every runner past the cut tick, at
  // which point each shard's cut checkpoint record is final and durable
  // (the cut EndTick wrote it synchronously).
  const Status barrier = WaitForIdle();
  if (!barrier.ok()) {
    cut_.Disarm();
    return barrier;
  }
  std::vector<CutShardRecord> acks;
  acks.reserve(runners_.size());
  double max_stall = 0.0;
  for (uint32_t i = 0; i < runners_.size(); ++i) {
    const auto& records = runners_[i]->engine().metrics().checkpoints;
    const EngineCheckpointRecord* ack = nullptr;
    for (auto it = records.rbegin(); it != records.rend(); ++it) {
      if (it->cut && it->start_tick == cut_tick) {
        ack = &*it;
        break;
      }
    }
    if (ack == nullptr) {
      cut_.Disarm();
      return Status::Internal("shard " + std::to_string(i) +
                              " produced no cut checkpoint at tick " +
                              std::to_string(cut_tick));
    }
    acks.push_back(CutShardRecord{ack->seq, ack->consistent_ticks});
    max_stall = std::max(max_stall, ack->cut_stall_seconds);
  }
  TP_RETURN_NOT_OK(cut_.Commit(acks));
  last_cut_report_.cut_tick = cut_tick;
  last_cut_report_.commit_latency_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    cut_armed_at_)
          .count();
  last_cut_report_.max_shard_stall_seconds = max_stall;
  return Status::OK();
}

Status ShardedEngine::PollShardError() {
  if (!failed_) {
    for (auto& runner : runners_) {
      if (!runner->has_error()) continue;
      const Status status = runner->status();
      if (first_error_.ok() && !status.ok()) first_error_ = status;
      failed_ = true;
    }
  }
  return first_error_;
}

Status ShardedEngine::WaitForIdle() {
  TP_CHECK(!in_tick_);
  for (auto& runner : runners_) {
    const Status status = runner->Drain();
    if (first_error_.ok() && !status.ok()) {
      first_error_ = status;
      failed_ = true;
    }
  }
  return first_error_;
}

Status ShardedEngine::Shutdown() {
  if (shut_down_) return Status::OK();
  shut_down_ = true;
  Status first_error = Status::OK();
  // Barrier: drain mailboxes and park the mutator threads, then stop each
  // engine (which drains its writer thread).
  for (auto& runner : runners_) runner->Stop();
  for (auto& runner : runners_) {
    const Status status = runner->status();
    if (first_error.ok() && !status.ok()) first_error = status;
  }
  for (auto& runner : runners_) {
    const Status status = runner->engine().Shutdown();
    if (first_error.ok() && !status.ok()) first_error = status;
  }
  return first_error;
}

Status ShardedEngine::SimulateCrash() {
  TP_CHECK(!shut_down_);
  shut_down_ = true;
  // Barrier first: every shard reaches the fleet tick, so the crash lands
  // between fleet ticks (the per-shard writer threads are still mid-flush,
  // which is what the crash abandons).
  for (auto& runner : runners_) runner->Stop();
  Status first_error = Status::OK();
  for (auto& runner : runners_) {
    const Status status = runner->engine().SimulateCrash();
    if (first_error.ok() && !status.ok()) first_error = status;
  }
  return first_error;
}

ShardedCheckpointStats ShardedEngine::CheckpointStats(bool skip_first) const {
  ShardedCheckpointStats stats;
  double total_sum = 0.0;
  double sync_sum = 0.0;
  double async_sum = 0.0;
  for (const auto& runner : runners_) {
    const auto& records = runner->engine().metrics().checkpoints;
    for (size_t r = skip_first ? 1 : 0; r < records.size(); ++r) {
      const EngineCheckpointRecord& record = records[r];
      ++stats.checkpoints;
      const double total = record.TotalSeconds();
      total_sum += total;
      sync_sum += record.sync_seconds;
      async_sum += record.async_seconds;
      if (total > stats.max_total_seconds) stats.max_total_seconds = total;
    }
  }
  if (stats.checkpoints > 0) {
    const double n = static_cast<double>(stats.checkpoints);
    stats.avg_total_seconds = total_sum / n;
    stats.avg_sync_seconds = sync_sum / n;
    stats.avg_async_seconds = async_sum / n;
  }
  return stats;
}

}  // namespace tickpoint
