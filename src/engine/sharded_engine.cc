#include "engine/sharded_engine.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <thread>
#include <utility>

#include "engine/paths.h"
#include "engine/recovery.h"
#include "engine/replica_buffer.h"
#include "util/io.h"
#include "util/sched_fuzz.h"

namespace tickpoint {

std::string ShardedEngine::ShardDir(const std::string& root, uint32_t shard) {
  return paths::ShardDir(root, shard);
}

FleetManifest ManifestFromConfig(const ShardedEngineConfig& config) {
  FleetManifest manifest;
  manifest.epoch = 0;
  manifest.num_partitions = config.num_shards;
  manifest.assignment.resize(config.num_shards);
  for (uint32_t p = 0; p < config.num_shards; ++p) manifest.assignment[p] = p;
  manifest.layout = config.shard.layout;
  manifest.algorithm = config.shard.algorithm;
  manifest.full_flush_period = config.shard.full_flush_period;
  manifest.logical_sync_every = config.shard.logical_sync_every;
  manifest.fsync = config.shard.fsync;
  manifest.checksum_state = config.shard.checksum_state;
  manifest.checkpoint_period_ticks = config.checkpoint_period_ticks;
  manifest.staggered = config.staggered;
  manifest.adaptive = config.adaptive;
  manifest.disk_budget = config.disk_budget;
  manifest.threaded = config.threaded;
  manifest.max_queue_ticks = config.max_queue_ticks;
  manifest.cut_lead_ticks = config.cut_lead_ticks;
  manifest.replicate = config.replicate;
  manifest.replica_depth = config.replica_depth;
  // The manifest stores the active-replica designation RESOLVED (an empty
  // config vector means the default ring), so a reopened fleet rebuilds
  // the identical replication topology without re-deriving defaults.
  manifest.replica_peer = config.replica_peer;
  if (manifest.replica_peer.empty()) {
    manifest.replica_peer.resize(config.num_shards);
    for (uint32_t p = 0; p < config.num_shards; ++p) {
      manifest.replica_peer[p] = (p + 1) % std::max<uint32_t>(1, config.num_shards);
    }
  }
  manifest.retention = config.shard.retention;
  return manifest;
}

ShardedEngineConfig ConfigFromManifest(const FleetManifest& manifest,
                                       const std::string& root) {
  ShardedEngineConfig config;
  config.shard.layout = manifest.layout;
  config.shard.algorithm = manifest.algorithm;
  config.shard.dir = root;
  config.shard.full_flush_period = manifest.full_flush_period;
  config.shard.logical_sync_every = manifest.logical_sync_every;
  config.shard.fsync = manifest.fsync;
  config.shard.checksum_state = manifest.checksum_state;
  config.num_shards = manifest.num_partitions;
  config.checkpoint_period_ticks = manifest.checkpoint_period_ticks;
  config.staggered = manifest.staggered;
  config.adaptive = manifest.adaptive;
  config.disk_budget = manifest.disk_budget;
  config.threaded = manifest.threaded;
  config.max_queue_ticks = manifest.max_queue_ticks;
  config.cut_lead_ticks = manifest.cut_lead_ticks;
  config.replicate = manifest.replicate;
  config.replica_depth = manifest.replica_depth;
  config.replica_peer = manifest.replica_peer;
  config.shard.retention = manifest.retention;
  return config;
}

namespace {

/// Fresh opens only: a previous incarnation that migrated partitions may
/// have left shard directories at slots the identity assignment no longer
/// references; wipe them so their stale checkpoints can never be confused
/// for live partitions.
Status RemoveUnassignedShardDirs(const std::string& root,
                                 uint32_t num_shards) {
  std::error_code iter_ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(root, iter_ec)) {
    uint32_t slot = 0;
    if (!paths::ParseShardDirName(entry.path().filename().string(), &slot)) {
      continue;
    }
    if (slot < num_shards) continue;
    std::error_code ec;
    std::filesystem::remove_all(entry.path(), ec);
    if (ec) {
      return Status::IOError("remove stale " + entry.path().string() + ": " +
                             ec.message());
    }
  }
  return Status::OK();
}

}  // namespace

ShardedEngine::ShardedEngine(const ShardedEngineConfig& config)
    : config_(config),
      scheduler_(config.ToStaggerConfig()),
      cut_(config.shard.dir, config.num_shards, config.shard.fsync) {}

StatusOr<std::unique_ptr<ShardedEngine>> ShardedEngine::OpenImpl(
    const ShardedEngineConfig& config,
    const std::vector<StateTable>* initial, uint64_t first_tick,
    bool bump_epoch) {
  if (config.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  if (config.checkpoint_period_ticks == 0) {
    return Status::InvalidArgument("checkpoint_period_ticks must be positive");
  }
  if (config.shard.dir.empty()) {
    return Status::InvalidArgument("ShardedEngineConfig.shard.dir must be set");
  }
  if (config.max_queue_ticks == 0) {
    return Status::InvalidArgument("max_queue_ticks must be positive");
  }
  if (config.cut_lead_ticks == 0) {
    // Caught here, not in the coordinator: Arm would happily pick T ==
    // current_tick and the cut checkpoint would race the tick being
    // assembled.
    return Status::InvalidArgument("cut_lead_ticks must be positive");
  }
  if (config.disk_budget == 0) {
    // Checked here, before the member initializer constructs the
    // StaggerScheduler, whose TP_CHECK would abort instead of returning.
    return Status::InvalidArgument("disk_budget must be positive");
  }
  if (config.replicate) {
    // Replication-knob validation (mirrors the PR-5 posture: reject at
    // Create/Open with InvalidArgument, never TP_CHECK on user input).
    if (config.num_shards < 2) {
      return Status::InvalidArgument(
          "replication requires at least 2 shards (a replica must live on "
          "a different shard than its partition)");
    }
    if (config.replica_depth == 0) {
      return Status::InvalidArgument("replica_depth must be positive");
    }
    if (!config.replica_peer.empty()) {
      if (config.replica_peer.size() != config.num_shards) {
        return Status::InvalidArgument(
            "replica_peer has " + std::to_string(config.replica_peer.size()) +
            " entries for a " + std::to_string(config.num_shards) +
            "-shard fleet");
      }
      for (uint32_t p = 0; p < config.num_shards; ++p) {
        const uint32_t peer = config.replica_peer[p];
        if (peer >= config.num_shards) {
          return Status::InvalidArgument(
              "replica_peer[" + std::to_string(p) + "] = " +
              std::to_string(peer) + " out of range (fleet has " +
              std::to_string(config.num_shards) + " shards)");
        }
        if (peer == p) {
          // A self-hosted replica dies with its shard: worthless.
          return Status::InvalidArgument(
              "replica_peer[" + std::to_string(p) +
              "] is self-peered (a replica must live on a different shard)");
        }
      }
    }
  }
  if (initial != nullptr && initial->size() != config.num_shards) {
    return Status::InvalidArgument(
        "OpenResumed with " + std::to_string(initial->size()) +
        " shard tables for a " + std::to_string(config.num_shards) +
        "-shard fleet");
  }
  TP_RETURN_NOT_OK(EnsureDirectory(config.shard.dir));
  std::unique_ptr<ShardedEngine> sharded(new ShardedEngine(config));
  sharded->manifest_ = ManifestFromConfig(config);
  bool write_manifest_after_open = false;
  if (initial == nullptr) {
    // A fresh fleet truncates every shard's logical log and wipes the
    // stale checkpoints, so a cut manifest left by a previous incarnation
    // points at state this run can no longer reproduce: retire it before
    // the first shard opens. The RESUME path must NOT retire it yet -- see
    // the ordering note before the second removal below. Stale fleet
    // manifests and unassigned shard directories (a migrated past
    // incarnation) die with it; this run's own epoch-0 manifest is
    // committed only after every shard opened.
    TP_RETURN_NOT_OK(RemoveFileIfExists(CutManifestPath(config.shard.dir)));
    TP_RETURN_NOT_OK(
        RetireFleetManifestsBefore(config.shard.dir, UINT64_MAX));
    TP_RETURN_NOT_OK(
        RemoveUnassignedShardDirs(config.shard.dir, config.num_shards));
    write_manifest_after_open = true;
  } else {
    // Resume: the durable manifest -- not the caller -- knows which shard
    // slot hosts each partition (the fleet may have migrated partitions
    // since it was created). A fleet from before the manifest era resumes
    // as identity and gains a manifest below.
    auto manifest_or = ReadNewestFleetManifest(config.shard.dir);
    if (manifest_or.ok()) {
      if (manifest_or.value().num_partitions != config.num_shards) {
        return Status::InvalidArgument(
            "fleet manifest under " + config.shard.dir + " records " +
            std::to_string(manifest_or.value().num_partitions) +
            " partitions, config expects " +
            std::to_string(config.num_shards));
      }
      // Adopt the WHOLE on-disk manifest, not just epoch + assignment:
      // the runtime still honors the caller's config (legacy contract),
      // but any future manifest write (a migration's epoch bump) must
      // re-commit the fleet's durable description, not whatever knobs
      // this caller happened to pass -- Fleet::Open reads the disk.
      sharded->manifest_ = std::move(manifest_or).value();
      if (config.replicate && sharded->manifest_.replica_peer.empty()) {
        // A v1 (pre-replication) manifest resumed with replication turned
        // on: adopt the config's (resolved) replication topology; the
        // next manifest write persists it.
        FleetManifest from_config = ManifestFromConfig(config);
        sharded->manifest_.replicate = true;
        sharded->manifest_.replica_depth = from_config.replica_depth;
        sharded->manifest_.replica_peer = std::move(from_config.replica_peer);
      }
    } else if (manifest_or.status().code() == StatusCode::kNotFound) {
      write_manifest_after_open = true;
    } else {
      return manifest_or.status();
    }
  }
  sharded->tick_ = first_tick;
  sharded->runners_.reserve(config.num_shards);
  sharded->pending_.resize(config.num_shards);
  for (uint32_t i = 0; i < config.num_shards; ++i) {
    EngineConfig shard_config = config.shard;
    // The manifest, not slot arithmetic, resolves each partition's
    // directory: a migrated partition may live on a different slot AND a
    // different mount root.
    shard_config.dir = sharded->manifest_.PartitionDir(config.shard.dir, i);
    shard_config.manual_checkpoints = true;
    StatusOr<std::unique_ptr<Engine>> engine_or =
        initial == nullptr
            ? Engine::Open(shard_config)
            : Engine::OpenResumed(shard_config, (*initial)[i], first_tick);
    TP_ASSIGN_OR_RETURN(auto engine, std::move(engine_or));
    sharded->runners_.push_back(sharded->MakeRunner(i, std::move(engine)));
  }
  sharded->crashed_.assign(config.num_shards, 0);
  if (config.replicate) {
    // Seed every partition's replica on its designated peer's runner,
    // anchored at the just-opened state (the runners are idle, so their
    // engines are safe to read from this thread; HostReplica before any
    // SubmitTick is ordered by the mailbox's release/acquire pair).
    for (uint32_t p = 0; p < config.num_shards; ++p) {
      auto buffer = std::make_unique<ReplicaBuffer>(p, config.shard.layout,
                                                    config.replica_depth);
      buffer->Anchor(sharded->runners_[p]->engine().state(), first_tick);
      sharded->runners_[sharded->manifest_.replica_peer[p]]->HostReplica(
          std::move(buffer));
    }
  }
  if (initial != nullptr) {
    // Resume ordering: the pre-crash cut manifest is retired only AFTER
    // every shard's bootstrap checkpoint is durable. A death anywhere
    // inside the resume loop above therefore leaves the manifest in
    // place: when the fleet was resumed from the cut itself (first_tick
    // == cut_tick + 1, the Fleet::RecoverToCut workflow), each
    // already-resumed shard's bootstrap IS a valid image at the cut and
    // the untouched shards still carry their pre-crash sources, so cut
    // recovery reproduces the fleet-consistent state at the cut exactly.
    // When the manifest's cut is older than first_tick, the resumed
    // shards can no longer reproduce it and recovery falls back to
    // per-shard exactness (see RecoverFleetToCut) -- but the restore
    // point is never destroyed while it was still reachable.
    TP_RETURN_NOT_OK(RemoveFileIfExists(CutManifestPath(config.shard.dir)));
  }
  if (bump_epoch) {
    // A point-in-time resume rewrote every shard's durable state to an
    // older tick; committing the manifest as a NEW epoch (same topology)
    // is the new timeline's commit point, mirroring MigratePartition's
    // epoch protocol. Everything above is idempotent, so a crash before
    // this rename leaves the restore repeatable under the old epoch.
    sharded->manifest_.epoch += 1;
  }
  if (write_manifest_after_open || bump_epoch) {
    // For a fresh fleet the manifest commit is the last step of creation:
    // a crash before it leaves shard directories without a superblock,
    // which Fleet::Open reports as NotFound instead of guessing a
    // topology.
    TP_RETURN_NOT_OK(WriteFleetManifest(config.shard.dir, sharded->manifest_,
                                        config.shard.fsync));
    if (bump_epoch) {
      // Best-effort retirement, like MigratePartition: the rename above
      // is the commit point, and a leftover older epoch is recovery
      // fallback fodder, not a correctness hazard (the newest intact
      // epoch wins).
      (void)RetireFleetManifestsBefore(config.shard.dir,
                                       sharded->manifest_.epoch);
    }
  }
  return sharded;
}

std::unique_ptr<ShardRunner> ShardedEngine::MakeRunner(
    uint32_t partition, std::unique_ptr<Engine> engine) {
  // Measured checkpoint completions feed the adaptive stagger; in threaded
  // mode the callbacks arrive on runner threads (the scheduler locks).
  auto observer = [this](uint32_t shard,
                         const EngineCheckpointRecord& record,
                         uint64_t completion_tick) {
    scheduler_.ObserveCheckpointEnd(shard, completion_tick,
                                    record.TotalSeconds());
  };
  return std::make_unique<ShardRunner>(partition, std::move(engine),
                                       config_.threaded,
                                       config_.max_queue_ticks, observer);
}

StatusOr<std::unique_ptr<ShardedEngine>> ShardedEngine::Open(
    const ShardedEngineConfig& config) {
  return OpenImpl(config, /*initial=*/nullptr, /*first_tick=*/0);
}

StatusOr<std::unique_ptr<ShardedEngine>> ShardedEngine::OpenResumed(
    const ShardedEngineConfig& config, const std::vector<StateTable>& initial,
    uint64_t first_tick, bool bump_epoch) {
  return OpenImpl(config, &initial, first_tick, bump_epoch);
}

ShardedEngine::~ShardedEngine() {
  if (!shut_down_) {
    (void)Shutdown();
  }
}

void ShardedEngine::BeginTick() {
  TP_CHECK(!in_tick_ && !shut_down_ && !failed_);
  // A crashed shard freezes the fleet tick: ticking past it would tear
  // every replica anchored at the crash tick. FailoverShard first.
  TP_CHECK(crashed_count_ == 0);
  in_tick_ = true;
}

void ShardedEngine::ApplyUpdate(uint32_t shard, uint32_t cell,
                                int32_t value) {
  TP_DCHECK(in_tick_);
  TP_DCHECK(shard < runners_.size());
  pending_[shard].push_back(CellUpdate{cell, value});
}

Status ShardedEngine::EndTick() {
  TP_CHECK(in_tick_);
  in_tick_ = false;
  // While a cut is armed the stagger scheduler stands down up to and
  // including the cut tick, so no regular start can collide with (or
  // delay) the cut generation; afterward the fixed schedule resumes its
  // arithmetic and the adaptive plan is realigned below.
  const bool cut_tick_now = cut_.IsCutTick(tick_);
  const bool suppress_schedule = cut_.SuppressesScheduledStart(tick_);
  // Every shard gets its batch even if a sibling already failed: no shard
  // is ever left mid-tick, and the fleet tick advances exactly once.
  if (config_.replicate) {
    // Replicating fan-out: each partition's delta is COPIED into its
    // peer's batch (the host appends it to the replica ring before its
    // own tick) and then MOVED into the owner's batch as usual, so the
    // replica stream is exactly the update stream the owner applies. A
    // cut committed last turn broadcasts its trim tick in this tick's
    // batches (the trim-at-cut rule: everything at or below a committed
    // cut is durable fleet-wide, so the rings fold eagerly).
    std::vector<ShardTickBatch> batches(runners_.size());
    for (uint32_t i = 0; i < runners_.size(); ++i) {
      batches[i].tick = tick_;
      batches[i].cut_checkpoint = cut_tick_now;
      batches[i].start_checkpoint =
          cut_tick_now ||
          (!suppress_schedule && scheduler_.ShouldCheckpoint(i, tick_));
      batches[i].trim_replicas_through = pending_replica_trim_;
    }
    pending_replica_trim_ = ShardTickBatch::kNoReplicaTrim;
    for (uint32_t p = 0; p < runners_.size(); ++p) {
      ShardTickBatch::ReplicaDelta delta;
      delta.partition = p;
      delta.updates = pending_[p];
      batches[manifest_.replica_peer[p]].replica_updates.push_back(
          std::move(delta));
    }
    for (uint32_t i = 0; i < runners_.size(); ++i) {
      batches[i].updates = std::move(pending_[i]);
      pending_[i].clear();
      runners_[i]->SubmitTick(std::move(batches[i]));
    }
  } else {
    for (uint32_t i = 0; i < runners_.size(); ++i) {
      ShardTickBatch batch;
      batch.tick = tick_;
      batch.cut_checkpoint = cut_tick_now;
      batch.start_checkpoint =
          cut_tick_now ||
          (!suppress_schedule && scheduler_.ShouldCheckpoint(i, tick_));
      batch.updates = std::move(pending_[i]);
      pending_[i].clear();
      runners_[i]->SubmitTick(std::move(batch));
    }
  }
  if (cut_tick_now) scheduler_.RealignAfterCut(tick_);
  ++tick_;
  return PollShardError();
}

StatusOr<uint64_t> ShardedEngine::RequestConsistentCut() {
  TP_CHECK(!in_tick_ && !shut_down_);
  if (failed_) return first_error_;
  if (crashed_count_ > 0) {
    return Status::FailedPrecondition(
        "RequestConsistentCut with a crashed shard pending failover");
  }
  TP_ASSIGN_OR_RETURN(const uint64_t cut_tick,
                      cut_.Arm(tick_, config_.cut_lead_ticks));
  // Arm every shard's ack slot before the cut tick's batches can be
  // submitted: the mailbox's release/acquire pair orders the arm before
  // any runner can publish the new cut's ack.
  for (auto& runner : runners_) runner->ArmCutAck(cut_tick);
  cut_armed_at_ = std::chrono::steady_clock::now();
  return cut_tick;
}

Status ShardedEngine::CommitConsistentCut() {
  TP_CHECK(!in_tick_ && !shut_down_);
  if (!cut_.armed()) {
    return Status::FailedPrecondition("no consistent cut in flight");
  }
  const uint64_t cut_tick = cut_.cut_tick();
  if (tick_ <= cut_tick) {
    return Status::FailedPrecondition(
        "cut tick " + std::to_string(cut_tick) +
        " has not been submitted yet (fleet tick " + std::to_string(tick_) +
        ")");
  }
  // Fold the per-shard ack slots, wait-free on the runners: each slot is
  // release-published by its runner the instant the cut checkpoint record
  // lands, so the commit never quiesces the fleet -- shards keep consuming
  // post-cut ticks while the coordinator waits only for the slowest cut
  // write itself. Under the async IO backend a runner finalizes the cut's
  // record at a later tick's EndTick; when no later tick is coming (the
  // runner went idle), the coordinator reaps the pending checkpoint
  // itself below.
  std::vector<CutShardRecord> acks;
  acks.reserve(runners_.size());
  double max_stall = 0.0;
  for (uint32_t i = 0; i < runners_.size(); ++i) {
    ShardRunner& runner = *runners_[i];
    bool folded = false;
    for (;;) {
      if (runner.cut_acked()) break;
      if (runner.has_error()) {
        cut_.Disarm();
        return PollShardError();
      }
      if (runner.ticks_completed() >= runner.ticks_submitted()) {
        // Every submitted batch -- the cut tick's included (the tick_ >
        // cut_tick precondition above proved it was submitted) -- is fully
        // consumed and the runner is parked on an empty mailbox, yet no
        // ack: under the
        // async backend the cut's write may still be in flight on the
        // shard's writer thread with no later tick coming to reap it.
        // This thread is the runner's producer, so the idle state is
        // stable and the ring's release/acquire pair makes the engine
        // safe to touch: complete the pending checkpoint and synthesize
        // the ack from its record.
        if (runner.cut_acked()) break;  // the ack raced in; fold it
        const Status reap = runner.engine().CompletePendingCheckpoint();
        if (!reap.ok()) {
          cut_.Disarm();
          return reap;
        }
        const auto& records = runner.engine().metrics().checkpoints;
        for (size_t r = records.size(); r-- > 0;) {
          if (records[r].cut && records[r].start_tick == cut_tick) {
            acks.push_back(
                CutShardRecord{records[r].seq, records[r].consistent_ticks});
            max_stall = std::max(max_stall, records[r].cut_stall_seconds);
            folded = true;
            break;
          }
        }
        if (!folded) {
          // Fully reaped, still no cut record: the engine broke the cut
          // contract.
          cut_.Disarm();
          return Status::Internal("shard " + std::to_string(i) +
                                  " produced no cut checkpoint at tick " +
                                  std::to_string(cut_tick));
        }
        break;
      }
      TP_SCHED_FUZZ_POINT();
      std::this_thread::yield();
    }
    if (!folded) {
      const ShardRunner::CutAck& ack = runner.cut_ack();
      acks.push_back(CutShardRecord{ack.checkpoint_seq, ack.consistent_ticks});
      max_stall = std::max(max_stall, ack.stall_seconds);
    }
    // Disarm before any later batch can reach the runner: a stale pending
    // cut it still holds (the force-reap path) must drop silently, never
    // publish into a later cut's slot.
    runner.DisarmCutAck();
  }
  TP_RETURN_NOT_OK(cut_.Commit(acks));
  last_committed_cut_tick_ = cut_tick;
  if (config_.replicate) {
    // Trim-at-cut: the cut is durable fleet-wide, so every replica ring
    // may fold its batches through the cut tick. Broadcast the trim in
    // the NEXT tick's batches (the hosts' mutator threads own the rings).
    pending_replica_trim_ = cut_tick;
  }
  last_cut_report_.cut_tick = cut_tick;
  last_cut_report_.commit_latency_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    cut_armed_at_)
          .count();
  last_cut_report_.max_shard_stall_seconds = max_stall;
  return Status::OK();
}

Status ShardedEngine::MigratePartition(uint32_t partition, uint32_t to_slot,
                                       const std::string& mount_root) {
  TP_CHECK(!in_tick_ && !shut_down_);
  if (failed_) return first_error_;
  if (crashed_count_ > 0) {
    return Status::FailedPrecondition(
        "MigratePartition with a crashed shard pending failover");
  }
  if (cut_.armed()) {
    return Status::FailedPrecondition(
        "MigratePartition with a consistent cut still in flight (tick " +
        std::to_string(cut_.cut_tick()) + ")");
  }
  if (partition >= config_.num_shards) {
    return Status::InvalidArgument(
        "MigratePartition of unknown partition " + std::to_string(partition) +
        " (fleet has " + std::to_string(config_.num_shards) + ")");
  }
  for (uint32_t p = 0; p < config_.num_shards; ++p) {
    if (manifest_.assignment[p] == to_slot) {
      return Status::InvalidArgument(
          "shard slot " + std::to_string(to_slot) +
          " already hosts partition " + std::to_string(p));
    }
  }
  if (last_committed_cut_tick_ == UINT64_MAX ||
      last_committed_cut_tick_ + 1 != tick_) {
    // The quiesced live state must EQUAL the durable cut image, which
    // holds only when the cut tick was the last tick the fleet ran.
    // Migrating several partitions back-to-back at the same cut satisfies
    // this too (no tick runs in between).
    return Status::FailedPrecondition(
        "MigratePartition requires a consistent cut committed at the "
        "previous tick (fleet tick " +
        std::to_string(tick_) + ", last committed cut " +
        (last_committed_cut_tick_ == UINT64_MAX
             ? std::string("none")
             : std::to_string(last_committed_cut_tick_)) +
        ")");
  }
  const auto move_start = std::chrono::steady_clock::now();
  TP_RETURN_NOT_OK(WaitForIdle());
  const uint32_t from_slot = manifest_.assignment[partition];
  // Resolve the SOURCE directory under the old topology, before the
  // manifest below replaces the partition's slot and mount entries.
  const std::string from_dir =
      manifest_.PartitionDir(config_.shard.dir, partition);
  // Fallible work first, destructive work last: until the new epoch's
  // manifest commits, nothing the old topology needs is touched, so any
  // error below (or a crash) leaves the fleet recoverable under epoch E --
  // partition still on its old shard, exact at the current tick.
  //
  // The partition's quiesced state is its cut-tick state (precondition
  // above); bootstrap it into the destination slot. Engine::OpenResumed
  // writes the synchronous bootstrap checkpoint before starting the
  // destination's logical log.
  StateTable moved(config_.shard.layout);
  std::memcpy(moved.mutable_data(),
              runners_[partition]->engine().state().data(),
              moved.buffer_bytes());
  if (!mount_root.empty()) {
    // A cross-disk landing: the mount point itself must exist (and be
    // writable) before the destination engine bootstraps under it.
    TP_RETURN_NOT_OK(EnsureDirectory(mount_root));
  }
  EngineConfig dest_config = config_.shard;
  dest_config.dir = paths::SlotDir(config_.shard.dir, mount_root, to_slot);
  dest_config.manual_checkpoints = true;
  TP_ASSIGN_OR_RETURN(auto dest_engine,
                      Engine::OpenResumed(dest_config, moved, tick_));
  // Commit the new topology: fleet-manifest-<E+1> via tmp + rename + dir
  // fsync. This rename is the migration's commit point.
  FleetManifest next = manifest_;
  next.epoch = manifest_.epoch + 1;
  next.assignment[partition] = to_slot;
  if (!mount_root.empty() || !next.mount_root.empty()) {
    if (next.mount_root.empty()) {
      next.mount_root.resize(next.num_partitions);
    }
    next.mount_root[partition] = mount_root;
  }
  TP_RETURN_NOT_OK(
      WriteFleetManifest(config_.shard.dir, next, config_.shard.fsync));
  // The committed cut manifest stays: the destination bootstrap IS the
  // partition's image at the cut (consistent tick == cut + 1), so cut
  // recovery keeps working across the epoch boundary.
  manifest_ = std::move(next);
  // Swap the live engine. The old engine's directory is now unreferenced
  // garbage; a shutdown error here means its writer died earlier, which
  // hard-fails the fleet like any shard error (the migration itself is
  // already committed on disk).
  runners_[partition]->Stop();
  const Status source_shutdown = runners_[partition]->engine().Shutdown();
  runners_[partition] = MakeRunner(partition, std::move(dest_engine));
  // The scheduler's learned write-time EWMAs describe the OLD slot's disk;
  // zero them (and release any reservation the swallowed in-flight
  // checkpoint held) so the adaptive plan re-learns the new placement
  // instead of planning around stale estimates.
  scheduler_.ResetShard(partition, tick_);
  if (config_.replicate) {
    // The swap destroyed the replicas the old runner hosted; re-host them
    // on the new runner, re-anchored at the quiesced current tick (their
    // source partitions are idle and self-peering is forbidden, so
    // runners_[r] is a live sibling safe to read here).
    for (uint32_t r = 0; r < config_.num_shards; ++r) {
      if (manifest_.replica_peer[r] != partition) continue;
      auto buffer = std::make_unique<ReplicaBuffer>(r, config_.shard.layout,
                                                    config_.replica_depth);
      buffer->Anchor(runners_[r]->engine().state(), tick_);
      runners_[partition]->HostReplica(std::move(buffer));
    }
    // And re-anchor the migrated partition's OWN replica on its peer host:
    // the topology is partition-indexed so the peer designation survives
    // the move, but re-anchoring at the quiesced post-move state clears
    // any fold/torn debris in the ring, so a failover right after an
    // automated rebalance rebuilds from a clean base (the
    // failover-after-rebalance digest test pins this).
    const uint32_t host = manifest_.replica_peer[partition];
    if (host != partition) {
      ReplicaBuffer* buffer = runners_[host]->replica(partition);
      if (buffer != nullptr) {
        buffer->Anchor(runners_[partition]->engine().state(), tick_);
      }
    }
  }
  last_migration_report_.partition = partition;
  last_migration_report_.from_slot = from_slot;
  last_migration_report_.to_slot = to_slot;
  last_migration_report_.epoch = manifest_.epoch;
  last_migration_report_.first_tick_on_new_shard = tick_;
  last_migration_report_.move_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    move_start)
          .count();
  if (!source_shutdown.ok()) {
    failed_ = true;
    if (first_error_.ok()) first_error_ = source_shutdown;
    return source_shutdown;
  }
  // Retire the old epoch's manifest, then the source directory --
  // best-effort: the migration is already committed (the manifest rename
  // above), and anything these sweeps leave behind is unreferenced
  // garbage recovery ignores (it picks the newest epoch) and the next
  // fresh Open or migration retires. Failing the committed migration over
  // a cleanup hiccup would misreport its outcome.
  (void)RetireFleetManifestsBefore(config_.shard.dir, manifest_.epoch);
  std::error_code ec;
  std::filesystem::remove_all(from_dir, ec);
  return Status::OK();
}

Status ShardedEngine::PollShardError() {
  if (!failed_) {
    for (auto& runner : runners_) {
      if (!runner->has_error()) continue;
      const Status status = runner->status();
      if (first_error_.ok() && !status.ok()) first_error_ = status;
      failed_ = true;
    }
  }
  return first_error_;
}

Status ShardedEngine::WaitForIdle() {
  TP_CHECK(!in_tick_);
  for (auto& runner : runners_) {
    const Status status = runner->Drain();
    if (first_error_.ok() && !status.ok()) {
      first_error_ = status;
      failed_ = true;
    }
  }
  return first_error_;
}

Status ShardedEngine::Shutdown() {
  if (shut_down_) return Status::OK();
  shut_down_ = true;
  Status first_error = Status::OK();
  // Barrier: drain mailboxes and park the mutator threads, then stop each
  // engine (which drains its writer thread).
  for (auto& runner : runners_) runner->Stop();
  for (auto& runner : runners_) {
    const Status status = runner->status();
    if (first_error.ok() && !status.ok()) first_error = status;
  }
  for (auto& runner : runners_) {
    const Status status = runner->engine().Shutdown();
    if (first_error.ok() && !status.ok()) first_error = status;
  }
  return first_error;
}

Status ShardedEngine::SimulateCrash() {
  TP_CHECK(!shut_down_);
  shut_down_ = true;
  // Barrier first: every shard reaches the fleet tick, so the crash lands
  // between fleet ticks (the per-shard writer threads are still mid-flush,
  // which is what the crash abandons).
  for (auto& runner : runners_) runner->Stop();
  Status first_error = Status::OK();
  for (auto& runner : runners_) {
    const Status status = runner->engine().SimulateCrash();
    if (first_error.ok() && !status.ok()) first_error = status;
  }
  return first_error;
}

Status ShardedEngine::SimulateShardCrash(uint32_t partition) {
  TP_CHECK(!in_tick_ && !shut_down_);
  if (partition >= config_.num_shards) {
    return Status::InvalidArgument(
        "SimulateShardCrash of unknown partition " + std::to_string(partition) +
        " (fleet has " + std::to_string(config_.num_shards) + ")");
  }
  if (cut_.armed()) {
    return Status::FailedPrecondition(
        "SimulateShardCrash with a consistent cut still in flight (tick " +
        std::to_string(cut_.cut_tick()) + ")");
  }
  if (crashed_[partition]) {
    return Status::FailedPrecondition("partition " + std::to_string(partition) +
                                      " is already crashed");
  }
  // Barrier the WHOLE fleet first: the death lands between fleet ticks,
  // with every replica ring consistent through the same tick as its source
  // (the runner appends hosted deltas before its own tick, so a drained
  // runner has consumed both). The siblings stay alive -- their engines
  // and hosted rings are then safe to read from this thread until the next
  // SubmitTick, which is exactly the window FailoverShard runs in.
  TP_RETURN_NOT_OK(WaitForIdle());
  runners_[partition]->Stop();
  const Status crash = runners_[partition]->engine().SimulateCrash();
  // A dead server loses everything in its memory: its own partition AND
  // the replicas it hosted for others.
  for (const auto& buffer : runners_[partition]->replicas()) {
    buffer->MarkTorn();
  }
  crashed_[partition] = 1;
  ++crashed_count_;
  return crash;
}

Status ShardedEngine::FailoverShard(uint32_t partition) {
  TP_CHECK(!in_tick_ && !shut_down_);
  if (failed_) return first_error_;
  if (partition >= config_.num_shards) {
    return Status::InvalidArgument(
        "FailoverShard of unknown partition " + std::to_string(partition) +
        " (fleet has " + std::to_string(config_.num_shards) + ")");
  }
  if (!crashed_[partition]) {
    return Status::FailedPrecondition("FailoverShard of partition " +
                                      std::to_string(partition) +
                                      " which is not crashed");
  }
  // A fresh attempt invalidates the previous failover's report NOW, not at
  // success: an error return below (wrong-tick disk recovery, open
  // failure) must never leave a stale used_peer_memory=true / timing
  // record visible to callers inspecting the failed attempt.
  last_failover_report_ = FailoverReport{};
  FailoverReport report;
  report.partition = partition;
  report.rebuilt_ticks = tick_;
  // Phase 1: materialize the partition's state at the fleet tick. Fast
  // path -- the peer's in-memory replica; fallback -- the partition's own
  // disk. Both must land EXACTLY at tick_ (the fleet froze there when the
  // crash hit), so the rebuilt state is byte-identical either way.
  StateTable table(config_.shard.layout);
  bool from_peer = false;
  const auto rebuild_start = std::chrono::steady_clock::now();
  if (config_.replicate) {
    const uint32_t host = manifest_.replica_peer[partition];
    if (!crashed_[host] && !runners_[host]->has_error()) {
      ReplicaBuffer* buffer = runners_[host]->replica(partition);
      if (buffer != nullptr) {
        StatusOr<uint64_t> ticks_or = buffer->Rebuild(&table);
        from_peer = ticks_or.ok() && ticks_or.value() == tick_;
      }
    }
  }
  if (!from_peer) {
    EngineConfig shard_config = config_.shard;
    shard_config.dir = manifest_.PartitionDir(config_.shard.dir, partition);
    shard_config.manual_checkpoints = true;
    TP_ASSIGN_OR_RETURN(const RecoveryResult recovered,
                        Recover(shard_config, &table));
    if (recovered.recovered_ticks != tick_) {
      return Status::Corruption(
          "disk recovery of partition " + std::to_string(partition) +
          " reached tick " + std::to_string(recovered.recovered_ticks) +
          ", fleet is at " + std::to_string(tick_));
    }
  }
  report.used_peer_memory = from_peer;
  report.rebuild_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    rebuild_start)
          .count();
  // Phase 2: restart the shard on the rebuilt state. Engine::OpenResumed
  // writes the synchronous bootstrap checkpoint (numbered above every
  // pre-crash image) before the new logical log starts, so a second crash
  // at any later point recovers to at least this tick. The old (crashed)
  // runner stays in place until the new engine opened -- an open failure
  // leaves the fleet exactly as FailoverShard found it, retryable.
  const auto resume_start = std::chrono::steady_clock::now();
  EngineConfig shard_config = config_.shard;
  shard_config.dir = manifest_.PartitionDir(config_.shard.dir, partition);
  shard_config.manual_checkpoints = true;
  TP_ASSIGN_OR_RETURN(auto engine,
                      Engine::OpenResumed(shard_config, table, tick_));
  runners_[partition] = MakeRunner(partition, std::move(engine));
  crashed_[partition] = 0;
  --crashed_count_;
  if (config_.replicate) {
    // Re-anchor the partition's replication topology. Its own replica on
    // the (live) peer restarts from the rebuilt state -- Anchor also
    // clears a torn ring, which is how a disk-path failover re-arms the
    // fast path for the next death.
    const uint32_t host = manifest_.replica_peer[partition];
    if (!crashed_[host]) {
      ReplicaBuffer* buffer = runners_[host]->replica(partition);
      if (buffer != nullptr) {
        buffer->Anchor(runners_[partition]->engine().state(), tick_);
      }
    }
    // And the replicas the dead server hosted for others: fresh buffers on
    // the new runner, anchored from their (idle) source engines. A source
    // that is itself still crashed leaves its buffer torn; its own
    // FailoverShard re-anchors it.
    for (uint32_t r = 0; r < config_.num_shards; ++r) {
      if (manifest_.replica_peer[r] != partition) continue;
      auto buffer = std::make_unique<ReplicaBuffer>(r, config_.shard.layout,
                                                    config_.replica_depth);
      if (!crashed_[r]) {
        buffer->Anchor(runners_[r]->engine().state(), tick_);
      }
      runners_[partition]->HostReplica(std::move(buffer));
    }
  }
  report.resume_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    resume_start)
          .count();
  last_failover_report_ = report;
  return Status::OK();
}

ShardedCheckpointStats ShardedEngine::CheckpointStats(bool skip_first) const {
  ShardedCheckpointStats stats;
  double total_sum = 0.0;
  double sync_sum = 0.0;
  double async_sum = 0.0;
  for (const auto& runner : runners_) {
    const auto& records = runner->engine().metrics().checkpoints;
    for (size_t r = skip_first ? 1 : 0; r < records.size(); ++r) {
      const EngineCheckpointRecord& record = records[r];
      ++stats.checkpoints;
      const double total = record.TotalSeconds();
      total_sum += total;
      sync_sum += record.sync_seconds;
      async_sum += record.async_seconds;
      if (total > stats.max_total_seconds) stats.max_total_seconds = total;
    }
  }
  if (stats.checkpoints > 0) {
    const double n = static_cast<double>(stats.checkpoints);
    stats.avg_total_seconds = total_sum / n;
    stats.avg_sync_seconds = sync_sum / n;
    stats.avg_async_seconds = async_sum / n;
  }
  return stats;
}

}  // namespace tickpoint
