#include "engine/sharded_engine.h"

#include "util/io.h"

namespace tickpoint {

std::string ShardedEngine::ShardDir(const std::string& root, uint32_t shard) {
  return root + "/shard-" + std::to_string(shard);
}

ShardedEngine::ShardedEngine(const ShardedEngineConfig& config)
    : config_(config), scheduler_(config.ToStaggerConfig()) {}

StatusOr<std::unique_ptr<ShardedEngine>> ShardedEngine::Open(
    const ShardedEngineConfig& config) {
  if (config.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  if (config.checkpoint_period_ticks == 0) {
    return Status::InvalidArgument("checkpoint_period_ticks must be positive");
  }
  if (config.shard.dir.empty()) {
    return Status::InvalidArgument("ShardedEngineConfig.shard.dir must be set");
  }
  TP_RETURN_NOT_OK(EnsureDirectory(config.shard.dir));
  std::unique_ptr<ShardedEngine> sharded(new ShardedEngine(config));
  sharded->shards_.reserve(config.num_shards);
  for (uint32_t i = 0; i < config.num_shards; ++i) {
    EngineConfig shard_config = config.shard;
    shard_config.dir = ShardDir(config.shard.dir, i);
    shard_config.manual_checkpoints = true;
    TP_ASSIGN_OR_RETURN(auto engine, Engine::Open(shard_config));
    sharded->shards_.push_back(std::move(engine));
  }
  return sharded;
}

ShardedEngine::~ShardedEngine() {
  if (!shut_down_) {
    (void)Shutdown();
  }
}

void ShardedEngine::BeginTick() {
  TP_CHECK(!in_tick_ && !shut_down_);
  in_tick_ = true;
  for (auto& shard : shards_) shard->BeginTick();
}

void ShardedEngine::ApplyUpdate(uint32_t shard, uint32_t cell,
                                int32_t value) {
  TP_DCHECK(in_tick_);
  TP_DCHECK(shard < shards_.size());
  shards_[shard]->ApplyUpdate(cell, value);
}

Status ShardedEngine::EndTick() {
  TP_CHECK(in_tick_);
  in_tick_ = false;
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    if (scheduler_.ShouldCheckpoint(i, tick_)) {
      shards_[i]->ScheduleCheckpoint();
    }
    TP_RETURN_NOT_OK(shards_[i]->EndTick());
  }
  ++tick_;
  return Status::OK();
}

Status ShardedEngine::Shutdown() {
  if (shut_down_) return Status::OK();
  shut_down_ = true;
  Status first_error = Status::OK();
  for (auto& shard : shards_) {
    const Status status = shard->Shutdown();
    if (first_error.ok() && !status.ok()) first_error = status;
  }
  return first_error;
}

Status ShardedEngine::SimulateCrash() {
  TP_CHECK(!shut_down_);
  shut_down_ = true;
  Status first_error = Status::OK();
  for (auto& shard : shards_) {
    const Status status = shard->SimulateCrash();
    if (first_error.ok() && !status.ok()) first_error = status;
  }
  return first_error;
}

ShardedCheckpointStats ShardedEngine::CheckpointStats(bool skip_first) const {
  ShardedCheckpointStats stats;
  double total_sum = 0.0;
  double sync_sum = 0.0;
  double async_sum = 0.0;
  for (const auto& shard : shards_) {
    const auto& records = shard->metrics().checkpoints;
    for (size_t r = skip_first ? 1 : 0; r < records.size(); ++r) {
      const EngineCheckpointRecord& record = records[r];
      ++stats.checkpoints;
      const double total = record.TotalSeconds();
      total_sum += total;
      sync_sum += record.sync_seconds;
      async_sum += record.async_seconds;
      if (total > stats.max_total_seconds) stats.max_total_seconds = total;
    }
  }
  if (stats.checkpoints > 0) {
    const double n = static_cast<double>(stats.checkpoints);
    stats.avg_total_seconds = total_sum / n;
    stats.avg_sync_seconds = sync_sum / n;
    stats.avg_async_seconds = async_sum / n;
  }
  return stats;
}

}  // namespace tickpoint
