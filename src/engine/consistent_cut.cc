#include "engine/consistent_cut.h"

#include <cstring>
#include <filesystem>
#include <vector>

#include "engine/paths.h"
#include "util/crc32.h"
#include "util/io.h"

namespace tickpoint {
namespace {

constexpr uint64_t kManifestMagic = 0x544B505443555431ULL;  // "TKPTCUT1"

struct ManifestHeader {
  uint64_t magic = 0;
  uint32_t version = 1;
  uint32_t num_shards = 0;
  uint64_t cut_tick = 0;
};
static_assert(sizeof(ManifestHeader) == 24);

}  // namespace

std::string CutManifestPath(const std::string& root) {
  return paths::CutManifestPath(root);
}

Status WriteCutManifest(const std::string& root, const CutManifest& manifest,
                        bool fsync) {
  const std::string path = CutManifestPath(root);
  const std::string tmp = path + ".tmp";
  {
    FileWriter writer;
    TP_RETURN_NOT_OK(writer.Open(tmp));
    ManifestHeader header;
    header.magic = kManifestMagic;
    header.num_shards = static_cast<uint32_t>(manifest.shards.size());
    header.cut_tick = manifest.cut_tick;
    TP_RETURN_NOT_OK(writer.Append(&header, sizeof(header)));
    uint32_t crc = Crc32(&header, sizeof(header));
    for (const CutShardRecord& shard : manifest.shards) {
      TP_RETURN_NOT_OK(writer.Append(&shard, sizeof(shard)));
      crc = Crc32(&shard, sizeof(shard), crc);
    }
    TP_RETURN_NOT_OK(writer.Append(&crc, sizeof(crc)));
    TP_RETURN_NOT_OK(fsync ? writer.Sync() : writer.Flush());
    TP_RETURN_NOT_OK(writer.Close());
  }
  // The rename is the commit point: a crash before it leaves the previous
  // manifest (or none) in place, never a torn one. The directory fsync
  // afterwards is what makes the commit itself durable -- without it an OS
  // crash can lose the rename even though the data file was synced.
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("commit cut manifest " + path + ": " +
                           ec.message());
  }
  if (fsync) {
    TP_RETURN_NOT_OK(SyncDirectory(root));
  }
  return Status::OK();
}

StatusOr<CutManifest> ReadCutManifest(const std::string& root) {
  const std::string path = CutManifestPath(root);
  if (!FileExists(path)) {
    return Status::NotFound("no committed cut manifest at " + path);
  }
  FileReader reader;
  TP_RETURN_NOT_OK(reader.Open(path));
  TP_ASSIGN_OR_RETURN(const uint64_t size, reader.Size());
  ManifestHeader header;
  if (size < sizeof(header) + sizeof(uint32_t)) {
    return Status::Corruption("cut manifest " + path + " is truncated");
  }
  TP_RETURN_NOT_OK(reader.ReadExact(&header, sizeof(header)));
  if (header.magic != kManifestMagic || header.version != 1) {
    return Status::Corruption("cut manifest " + path + " has a bad header");
  }
  const uint64_t expected = sizeof(header) +
                            header.num_shards * sizeof(CutShardRecord) +
                            sizeof(uint32_t);
  if (size < expected) {
    return Status::Corruption("cut manifest " + path + " is truncated");
  }
  uint32_t crc = Crc32(&header, sizeof(header));
  CutManifest manifest;
  manifest.cut_tick = header.cut_tick;
  manifest.shards.resize(header.num_shards);
  for (CutShardRecord& shard : manifest.shards) {
    TP_RETURN_NOT_OK(reader.ReadExact(&shard, sizeof(shard)));
    crc = Crc32(&shard, sizeof(shard), crc);
  }
  uint32_t stored;
  TP_RETURN_NOT_OK(reader.ReadExact(&stored, sizeof(stored)));
  if (stored != crc) {
    return Status::Corruption("cut manifest " + path + " fails its CRC");
  }
  return manifest;
}

}  // namespace tickpoint
