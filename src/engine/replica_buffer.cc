#include "engine/replica_buffer.h"

#include <cstring>
#include <string>

namespace tickpoint {

ReplicaBuffer::ReplicaBuffer(uint32_t partition, const StateLayout& layout,
                             uint64_t depth)
    : partition_(partition), depth_(depth), base_(layout) {
  TP_CHECK(depth_ > 0);
}

void ReplicaBuffer::Anchor(const StateTable& base, uint64_t anchor_ticks) {
  TP_CHECK(base.buffer_bytes() == base_.buffer_bytes());
  std::memcpy(base_.mutable_data(), base.data(), base_.buffer_bytes());
  anchor_ticks_ = anchor_ticks;
  batches_.clear();
  torn_ = false;
}

void ReplicaBuffer::FoldOldestIntoBase() {
  ReplicaDeltaBatch& oldest = batches_.front();
  for (const CellUpdate& update : oldest.updates) {
    base_.WriteCell(update.cell, update.value);
  }
  anchor_ticks_ = oldest.tick + 1;
  batches_.pop_front();
}

void ReplicaBuffer::Append(uint64_t tick,
                          const std::vector<CellUpdate>& updates) {
  if (torn_) return;
  if (tick != consistent_ticks()) {
    // A gap in the stream: something dropped a tick. Tearing is the only
    // safe answer -- a rebuild from a gapped ring would be silently wrong,
    // and disk recovery is exactly the fallback for this.
    torn_ = true;
    return;
  }
  // The previous tip is superseded: its tick is finished on the source, so
  // the delta is final and eligible to fold.
  if (!batches_.empty()) {
    batches_.back().state = ReplicaBatchState::kCommitted;
  }
  if (batches_.size() >= depth_) FoldOldestIntoBase();
  ReplicaDeltaBatch batch;
  batch.tick = tick;
  batch.updates = updates;
  batch.state = ReplicaBatchState::kPrepared;
  batches_.push_back(std::move(batch));
}

void ReplicaBuffer::TrimThrough(uint64_t tick) {
  if (torn_) return;
  while (!batches_.empty() && batches_.front().tick <= tick &&
         batches_.front().state == ReplicaBatchState::kCommitted) {
    FoldOldestIntoBase();
  }
}

StatusOr<uint64_t> ReplicaBuffer::Rebuild(StateTable* out) const {
  if (torn_) {
    return Status::Corruption("replica buffer for partition " +
                              std::to_string(partition_) + " is torn");
  }
  TP_CHECK(out->buffer_bytes() == base_.buffer_bytes());
  std::memcpy(out->mutable_data(), base_.data(), base_.buffer_bytes());
  for (const ReplicaDeltaBatch& batch : batches_) {
    for (const CellUpdate& update : batch.updates) {
      out->WriteCell(update.cell, update.value);
    }
  }
  return consistent_ticks();
}

}  // namespace tickpoint
