// On-disk checkpoint organizations (paper Section 3.2, "Data organization
// on disk").
//
// BackupStore -- the double-backup organization of Salem & Garcia-Molina:
// two in-place images; checkpoints alternate between them so one complete,
// consistent image exists at all times. Each image file is
// [header][object 0][object 1]...; objects are written at their fixed
// offsets in increasing order (the sorted-I/O pattern). The write protocol
// is crash-safe: the header is invalidated (fsync) before any data write
// and revalidated (fsync) only after all data is durable, so a torn
// checkpoint is never eligible for recovery while the sibling image stays
// untouched.
//
// The staged pipeline (ROADMAP item 1) layers a doublewrite guard on top
// of that contract: a staged checkpoint submits its group-buffer runs
// through an IoBackend into the CRC'd doublewrite region first, seals it,
// and only then lands the runs in place -- so a torn in-place batch is
// *repaired* by replay on the next open, not merely kept from mattering by
// the invalid header. The plain WriteRange path remains for bootstrap
// writes and tests; both paths preserve the header protocol unchanged.
//
// LogStore -- the log organization of the partial-redo family: checkpoints
// are appended as self-validating segments. A full flush starts a new log
// generation; once it commits, older generations are deleted (this bounds
// the log read-back at recovery to C incremental segments plus one full
// flush, the paper's (k*C + n) model). Appends are already torn-safe (the
// trailing segment CRC), so staged runs append as before -- no doublewrite.
#ifndef TICKPOINT_ENGINE_CHECKPOINT_STORE_H_
#define TICKPOINT_ENGINE_CHECKPOINT_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/doublewrite.h"
#include "engine/state_table.h"
#include "model/layout.h"
#include "util/io.h"
#include "util/io_backend.h"
#include "util/status.h"

namespace tickpoint {

/// Metadata describing one complete on-disk image.
struct ImageInfo {
  bool valid = false;
  uint64_t seq = 0;              // checkpoint sequence number
  uint64_t consistent_tick = 0;  // state is consistent as of this tick's end
  uint32_t state_crc = 0;        // 0 = not recorded
};

/// The double-backup store: files backup0.img and backup1.img under `dir`,
/// plus the doublewrite region (paths::DoublewriteFileName).
class BackupStore {
 public:
  /// Crash-injection hooks for the staged pipeline: the named boundary
  /// returns an injected error instead of proceeding (after draining any
  /// in-flight writes), leaving the disk exactly as a crash there would.
  enum class StageCrashPoint {
    kNone = 0,
    /// After the header invalidate, before any doublewrite staging.
    kAfterBegin,
    /// After the first run's doublewrite chunk, before the seal fsync
    /// (the region may hold a torn batch).
    kAfterFirstStage,
    /// After the doublewrite seal, before any in-place write (replay must
    /// complete the batch).
    kAfterSeal,
    /// After the first in-place run landed, the rest abandoned (the torn
    /// in-place batch replay repairs).
    kAfterFirstApply,
  };

  /// Opens (creating if needed) both backup files sized for `layout`.
  /// `backend` routes the staged pipeline's writes (null: the store owns a
  /// private synchronous backend). `replay_doublewrite` applies and then
  /// discards any batch left in the doublewrite region -- pass false only
  /// for read-only inspection, which must not mutate a crash image; the
  /// staged API is unavailable then.
  static StatusOr<std::unique_ptr<BackupStore>> Open(
      const std::string& dir, const StateLayout& layout, bool fsync_enabled,
      IoBackend* backend = nullptr, bool replay_doublewrite = true);

  /// Bare filename of backup image `index` ("backup0.img"/"backup1.img") --
  /// the single owner of the naming rule.
  static std::string ImageFileName(int index);

  /// Invalidates backup `index`'s header; must precede data writes.
  Status BeginCheckpoint(int index);

  /// Writes `count` consecutive objects starting at `first` from `data`.
  /// The direct (unstaged) path: bootstrap images and tests.
  Status WriteRange(int index, ObjectId first, const void* data,
                    uint64_t count);

  // Staged pipeline: Begin -> Stage* -> SealAndApply -> FinishCheckpoint.

  /// BeginCheckpoint + opens a doublewrite batch for image `index`.
  Status BeginStagedCheckpoint(int index);

  /// Stages one group-buffer run (`count` objects from id `first`) into
  /// the doublewrite region. `data` must stay valid until
  /// SealAndApplyStaged or AbandonStaged returns (the session contract).
  Status StageRun(int index, ObjectId first, const void* data,
                  uint64_t count);

  /// Seals the doublewrite region (fsync), then lands every staged run at
  /// its in-place offset. After this, FinishCheckpoint revalidates the
  /// header exactly as in the unstaged protocol.
  Status SealAndApplyStaged(int index);

  /// Abandons an open staged batch (error/crash paths): drains in-flight
  /// writes so callers may free run buffers; on-disk bytes stay torn.
  void AbandonStaged();

  /// Makes the image durable and valid: fsync data, then write + fsync the
  /// header. `state_crc` may be 0 (unchecked).
  Status FinishCheckpoint(int index, uint64_t seq, uint64_t consistent_tick,
                          uint32_t state_crc);

  /// Reads and validates backup `index`'s header.
  StatusOr<ImageInfo> Inspect(int index);

  /// Sequentially reads the whole image into `out`. If the header recorded
  /// a state CRC, verifies it.
  Status ReadAll(int index, StateTable* out);

  const std::string& path(int index) const;

  /// Arms a one-shot crash at `point` (tests only).
  void SetStageCrashPointForTest(StageCrashPoint point) {
    stage_crash_point_ = point;
  }

 private:
  BackupStore(const StateLayout& layout, bool fsync_enabled);
  /// Flush semantics of the old FileWriter path are free with fds (no
  /// userspace buffer); durability still honors fsync_enabled_.
  Status MakeDurable(int index);
  /// True (once) when the armed crash point is `point`; the caller then
  /// abandons the batch and returns the injected error.
  bool TakeCrashPoint(StageCrashPoint point);

  StateLayout layout_;
  bool fsync_enabled_;
  std::string paths_[2];
  IoFile files_[2];

  /// Write routing. backend_ points at the engine-owned backend, or at
  /// owned_backend_ when the caller supplied none.
  IoBackend* backend_ = nullptr;
  std::unique_ptr<IoBackend> owned_backend_;
  /// Null when opened with replay_doublewrite=false (inspection).
  std::unique_ptr<DoublewriteRegion> dw_;

  struct StagedRun {
    ObjectId first = 0;
    const uint8_t* data = nullptr;
    uint64_t count = 0;
  };
  std::vector<StagedRun> staged_;
  int staged_index_ = -1;
  StageCrashPoint stage_crash_point_ = StageCrashPoint::kNone;
};

/// One segment inside a log generation (for inspection/tests).
struct SegmentInfo {
  uint64_t seq = 0;
  uint64_t consistent_tick = 0;
  uint64_t object_count = 0;
  bool full_flush = false;
};

/// The append-only checkpoint log, organized in generations.
class LogStore {
 public:
  static StatusOr<std::unique_ptr<LogStore>> Open(const std::string& dir,
                                                  const StateLayout& layout,
                                                  bool fsync_enabled);

  /// True if the bare filename `name` is a generation file ("log-N.img"),
  /// storing N in *gen -- the single owner of the naming rule, shared by
  /// the open-time scan, the stale sweeps, and Engine's fresh-open wipe.
  static bool ParseGenerationFileName(const std::string& name, uint64_t* gen);

  /// Starts generation `gen` (creates/truncates log-<gen>.img). Must be
  /// followed by a full-flush segment.
  Status BeginGeneration(uint64_t gen);

  /// Starts appending a segment of exactly `object_count` objects to the
  /// current generation.
  Status BeginSegment(uint64_t seq, uint64_t consistent_tick, bool full_flush,
                      uint64_t object_count);
  /// Appends one object record to the open segment.
  Status AppendObject(ObjectId object, const void* data);
  /// Appends `count` records for consecutive ids starting at `first`, with
  /// payloads packed contiguously at `data` -- one buffered write per
  /// group-buffer run instead of two per object.
  Status AppendRun(ObjectId first, const void* data, uint64_t count);
  /// Seals the segment (trailing CRC) and makes it durable. All declared
  /// objects must have been appended.
  Status CommitSegment();
  /// Abandons an open segment (crash injection); the torn bytes remain.
  void AbortSegment();

  /// Deletes generation files with gen < `gen` in a small window behind it
  /// (generations advance one at a time in normal operation).
  Status DropGenerationsBefore(uint64_t gen);

  /// Deletes EVERY generation file with gen < `gen`, via a full directory
  /// scan. The resume bootstrap uses this to retire stale pre-crash
  /// generations wholesale, whatever numbers they reached.
  Status DropAllGenerationsBefore(uint64_t gen);

  /// First generation number strictly above every generation file found on
  /// disk when the store was opened (0 for a fresh directory): what a
  /// resumed engine must claim so its bootstrap outranks stale state.
  uint64_t NextFreshGeneration() const {
    return found_disk_generations_ ? current_gen_ + 1 : 0;
  }

  /// Restores the newest recoverable image: picks the highest generation
  /// whose full flush is intact and consistent no later than
  /// `max_consistent_tick`, applies its valid segments with consistent
  /// tick <= the bound in order, and reports the consistent tick reached.
  /// `out` must be zero/any state; it is fully overwritten by the full
  /// flush. The bound (default: none) is how cut recovery rewinds past
  /// checkpoints newer than the cut.
  StatusOr<ImageInfo> Restore(StateTable* out,
                              uint64_t max_consistent_tick = UINT64_MAX);

  /// Lists the valid segments of generation `gen` (tests/inspection).
  StatusOr<std::vector<SegmentInfo>> ListSegments(uint64_t gen);

  uint64_t current_generation() const { return current_gen_; }

 private:
  LogStore(std::string dir, const StateLayout& layout, bool fsync_enabled);
  Status MakeDurable(FileWriter* writer);

  std::string GenPath(uint64_t gen) const;
  /// Scans a generation file; applies records of segments with consistent
  /// tick <= `max_consistent_tick` to `out` if non-null (later segments
  /// are still listed).
  StatusOr<std::vector<SegmentInfo>> ScanGeneration(
      uint64_t gen, StateTable* out,
      uint64_t max_consistent_tick = UINT64_MAX);

  std::string dir_;
  StateLayout layout_;
  bool fsync_enabled_;
  uint64_t current_gen_ = 0;
  bool found_disk_generations_ = false;
  bool gen_open_ = false;
  FileWriter writer_;
  uint64_t append_offset_ = 0;
  // Open-segment accounting.
  bool segment_open_ = false;
  uint32_t segment_crc_ = 0;
  uint64_t segment_objects_declared_ = 0;
  uint64_t segment_objects_written_ = 0;
  /// Reused serialization buffer for AppendRun records.
  std::vector<uint8_t> run_buf_;
};

}  // namespace tickpoint

#endif  // TICKPOINT_ENGINE_CHECKPOINT_STORE_H_
