#include "engine/stagger_scheduler.h"

#include <algorithm>
#include <cmath>

namespace tickpoint {

StaggerScheduler::StaggerScheduler(const StaggerConfig& config)
    : config_(config) {
  TP_CHECK(config_.Valid());
  plans_.resize(config_.num_shards);
  for (uint32_t shard = 0; shard < config_.num_shards; ++shard) {
    plans_[shard].next_start = OffsetTicks(shard);
  }
}

uint64_t StaggerScheduler::OffsetTicks(uint32_t shard) const {
  TP_DCHECK(shard < config_.num_shards);
  if (!config_.staggered) return 0;
  return shard * config_.period_ticks / config_.num_shards;
}

bool StaggerScheduler::ShouldCheckpoint(uint32_t shard, uint64_t tick) {
  TP_DCHECK(shard < config_.num_shards);
  if (!config_.adaptive) {
    const uint64_t offset = OffsetTicks(shard);
    if (tick < offset) return false;
    return (tick - offset) % config_.period_ticks == 0;
  }

  std::lock_guard<std::mutex> lock(mu_);
  ShardPlan& plan = plans_[shard];
  if (plan.inflight || tick < plan.next_start) return false;
  if (inflight_ >= config_.disk_budget) {
    // Budget exhausted: stay due (next_start unchanged, so the claim keeps
    // its age) and retry when a flush completes.
    ++deferrals_;
    return false;
  }
  // FIFO fairness: older due claims get the free slots first. Without this
  // the per-tick shard scan always hands a freed slot to the lowest-index
  // due shard, starving the rest on an oversubscribed disk. Yield only
  // when the older claims actually fill the remaining budget, so a large
  // budget never wastes slots.
  const uint32_t free_slots = config_.disk_budget - inflight_;
  uint32_t older_claims = 0;
  for (uint32_t other = 0; other < config_.num_shards; ++other) {
    if (other == shard) continue;
    const ShardPlan& other_plan = plans_[other];
    if (other_plan.inflight || tick < other_plan.next_start) continue;
    if (other_plan.next_start < plan.next_start ||
        (other_plan.next_start == plan.next_start && other < shard)) {
      ++older_claims;
    }
  }
  if (older_claims >= free_slots) {
    ++deferrals_;
    return false;
  }
  plan.inflight = true;
  plan.started_at = tick;
  ++inflight_;
  max_concurrent_starts_ = std::max(max_concurrent_starts_, inflight_);
  plan.next_start = PlanNextStartLocked(shard, tick);
  return true;
}

uint64_t StaggerScheduler::NextCheckpointTick(uint32_t shard,
                                              uint64_t tick) const {
  const uint64_t offset = OffsetTicks(shard);
  if (tick < offset) return offset;
  // Starts land on offset + k * period; take the first one strictly after
  // `tick` (a start at `tick` itself is "now", not "next").
  const uint64_t periods = (tick - offset) / config_.period_ticks + 1;
  return offset + periods * config_.period_ticks;
}

void StaggerScheduler::ObserveCheckpointEnd(uint32_t shard, uint64_t end_tick,
                                            double write_seconds) {
  if (!config_.adaptive) return;
  TP_DCHECK(shard < config_.num_shards);
  std::lock_guard<std::mutex> lock(mu_);
  ShardPlan& plan = plans_[shard];
  if (!plan.inflight) return;  // tolerate duplicate reports
  plan.inflight = false;
  TP_DCHECK(inflight_ > 0);
  --inflight_;
  const double observed_ticks = static_cast<double>(
      end_tick > plan.started_at ? end_tick - plan.started_at : 1);
  const double alpha = config_.ewma_alpha;
  auto ewma = [alpha](double prev, double observed) {
    return prev == 0.0 ? observed : alpha * observed + (1 - alpha) * prev;
  };
  plan.ewma_ticks = ewma(plan.ewma_ticks, observed_ticks);
  plan.ewma_seconds = ewma(plan.ewma_seconds, write_seconds);
}

void StaggerScheduler::RealignAfterCut(uint64_t cut_tick) {
  if (!config_.adaptive) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t shard = 0; shard < config_.num_shards; ++shard) {
    ShardPlan& plan = plans_[shard];
    plan.next_start =
        std::max(plan.next_start, cut_tick + 1 + OffsetTicks(shard));
  }
}

void StaggerScheduler::ResetShard(uint32_t shard, uint64_t tick) {
  if (!config_.adaptive) return;
  TP_DCHECK(shard < config_.num_shards);
  std::lock_guard<std::mutex> lock(mu_);
  ShardPlan& plan = plans_[shard];
  if (plan.inflight) {
    // The migrated engine's in-flight checkpoint died with the old slot;
    // nobody will report its end, so release the reservation here or the
    // budget slot leaks forever.
    plan.inflight = false;
    TP_DCHECK(inflight_ > 0);
    --inflight_;
  }
  plan.ewma_ticks = 0.0;
  plan.ewma_seconds = 0.0;
  plan.next_start = std::max(plan.next_start, tick + 1 + OffsetTicks(shard));
}

uint64_t StaggerScheduler::EstimateTicksLocked(uint32_t shard) const {
  const ShardPlan& plan = plans_[shard];
  if (plan.ewma_ticks > 0.0) {
    return std::max<uint64_t>(
        1, static_cast<uint64_t>(std::llround(std::ceil(plan.ewma_ticks))));
  }
  return std::max<uint64_t>(1, config_.period_ticks / config_.num_shards);
}

uint64_t StaggerScheduler::PlanNextStartLocked(uint32_t shard,
                                               uint64_t start_tick) const {
  const uint64_t est = EstimateTicksLocked(shard);
  uint64_t candidate = start_tick + config_.period_ticks;
  // Greedy: while at least `disk_budget` other windows overlap
  // [candidate, candidate + est), slide the candidate to the earliest end
  // of an overlapping window. Each round passes at least one window, so
  // num_shards rounds suffice.
  for (uint32_t round = 0; round <= config_.num_shards; ++round) {
    uint32_t overlap = 0;
    uint64_t earliest_end = UINT64_MAX;
    for (uint32_t other = 0; other < config_.num_shards; ++other) {
      if (other == shard) continue;
      const ShardPlan& plan = plans_[other];
      const uint64_t other_start =
          plan.inflight ? plan.started_at : plan.next_start;
      const uint64_t other_end = other_start + EstimateTicksLocked(other);
      if (other_start < candidate + est && candidate < other_end) {
        ++overlap;
        earliest_end = std::min(earliest_end, other_end);
      }
    }
    if (overlap < config_.disk_budget) break;
    candidate = std::max(candidate + 1, earliest_end);
  }
  return candidate;
}

uint32_t StaggerScheduler::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

uint32_t StaggerScheduler::max_concurrent_starts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_concurrent_starts_;
}

uint64_t StaggerScheduler::deferrals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return deferrals_;
}

double StaggerScheduler::EwmaTicks(uint32_t shard) const {
  TP_DCHECK(shard < config_.num_shards);
  std::lock_guard<std::mutex> lock(mu_);
  return plans_[shard].ewma_ticks;
}

double StaggerScheduler::EwmaWriteSeconds(uint32_t shard) const {
  TP_DCHECK(shard < config_.num_shards);
  std::lock_guard<std::mutex> lock(mu_);
  return plans_[shard].ewma_seconds;
}

}  // namespace tickpoint
