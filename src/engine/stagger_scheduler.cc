#include "engine/stagger_scheduler.h"

namespace tickpoint {

StaggerScheduler::StaggerScheduler(const StaggerConfig& config)
    : config_(config) {
  TP_CHECK(config_.Valid());
}

uint64_t StaggerScheduler::OffsetTicks(uint32_t shard) const {
  TP_DCHECK(shard < config_.num_shards);
  if (!config_.staggered) return 0;
  return shard * config_.period_ticks / config_.num_shards;
}

bool StaggerScheduler::ShouldCheckpoint(uint32_t shard, uint64_t tick) const {
  const uint64_t offset = OffsetTicks(shard);
  if (tick < offset) return false;
  return (tick - offset) % config_.period_ticks == 0;
}

uint64_t StaggerScheduler::NextCheckpointTick(uint32_t shard,
                                              uint64_t tick) const {
  const uint64_t offset = OffsetTicks(shard);
  if (tick <= offset) return offset;
  const uint64_t since = tick - offset;
  const uint64_t periods =
      (since + config_.period_ticks - 1) / config_.period_ticks;
  return offset + periods * config_.period_ticks;
}

}  // namespace tickpoint
