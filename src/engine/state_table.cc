#include "engine/state_table.h"

#include <cstdlib>

#include "util/crc32.h"

namespace tickpoint {

StateTable::StateTable(const StateLayout& layout)
    : layout_(layout),
      buffer_bytes_(layout.num_objects() * layout.object_size) {
  TP_CHECK(layout_.Valid());
  TP_CHECK(layout_.cell_size == sizeof(int32_t));
  void* raw = nullptr;
  const int rc = ::posix_memalign(&raw, 64, buffer_bytes_);
  TP_CHECK(rc == 0 && raw != nullptr);
  data_.reset(static_cast<uint8_t*>(raw));
  Clear();
}

uint32_t StateTable::Digest() const { return Crc32(data_.get(), buffer_bytes_); }

bool StateTable::ContentEquals(const StateTable& other) const {
  if (buffer_bytes_ != other.buffer_bytes_) return false;
  return std::memcmp(data_.get(), other.data_.get(), buffer_bytes_) == 0;
}

void StateTable::Clear() { std::memset(data_.get(), 0, buffer_bytes_); }

}  // namespace tickpoint
