#include "engine/recovery.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <utility>

#include "engine/checkpoint_store.h"
#include "engine/consistent_cut.h"
#include "engine/history.h"
#include "engine/logical_log.h"
#include "engine/paths.h"
#include "util/io.h"

namespace tickpoint {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

namespace {

/// Shared two-phase recovery body: restores the newest image whose
/// consistent tick does not exceed `up_to_tick` + 1, then replays the
/// logical log from the image boundary through `up_to_tick`.
/// UINT64_MAX = unbounded (plain crash recovery); a finite bound is cut
/// recovery rewinding past newer checkpoints.
StatusOr<RecoveryResult> RecoverImpl(const EngineConfig& config,
                                     uint64_t up_to_tick, StateTable* out) {
  TP_CHECK(out->layout().num_objects() == config.layout.num_objects());
  const AlgorithmTraits& traits = GetTraits(config.algorithm);
  const uint64_t max_image_tick =
      up_to_tick == UINT64_MAX ? UINT64_MAX : up_to_tick + 1;
  RecoveryResult result;
  out->Clear();

  // Phase 1: restore the newest complete checkpoint image within the
  // bound. The default Open replays (then discards) any sealed batch a
  // crash left in the doublewrite region BEFORE the images are inspected
  // -- that replay only ever touches an image whose header was already
  // invalidated, so the sibling this phase restores from is unaffected.
  const auto restore_start = Clock::now();
  if (traits.disk == DiskOrganization::kDoubleBackup) {
    TP_ASSIGN_OR_RETURN(auto store, BackupStore::Open(config.dir,
                                                      config.layout,
                                                      config.fsync));
    int best = -1;
    ImageInfo best_info;
    for (int index = 0; index < 2; ++index) {
      TP_ASSIGN_OR_RETURN(const ImageInfo info, store->Inspect(index));
      if (info.valid && info.consistent_tick <= max_image_tick &&
          (best < 0 || info.seq > best_info.seq)) {
        best = index;
        best_info = info;
      }
    }
    if (best >= 0) {
      TP_RETURN_NOT_OK(store->ReadAll(best, out));
      result.restored_from_checkpoint = true;
      result.image_seq = best_info.seq;
      result.image_consistent_ticks = best_info.consistent_tick;
    }
  } else {
    TP_ASSIGN_OR_RETURN(
        auto store, LogStore::Open(config.dir, config.layout, config.fsync));
    auto image_or = store->Restore(out, max_image_tick);
    if (image_or.ok()) {
      result.restored_from_checkpoint = true;
      result.image_seq = image_or.value().seq;
      result.image_consistent_ticks = image_or.value().consistent_tick;
    } else if (image_or.status().code() != StatusCode::kNotFound) {
      return image_or.status();
    }
  }
  result.restore_seconds = SecondsSince(restore_start);

  // Phase 2: replay the logical log from the image boundary to the bound
  // (or the durable end).
  const auto replay_start = Clock::now();
  const std::string log_path = Engine::LogicalLogPath(config.dir);
  TP_ASSIGN_OR_RETURN(
      const LogicalLog::ReplayStats stats,
      LogicalLog::Replay(log_path, result.image_consistent_ticks, up_to_tick,
                         out));
  result.replay_seconds = SecondsSince(replay_start);
  result.ticks_replayed = stats.records_applied;
  result.recovered_ticks = stats.records_applied > 0
                               ? stats.last_tick + 1
                               : result.image_consistent_ticks;
  return result;
}

}  // namespace

StatusOr<RecoveryResult> Recover(const EngineConfig& config,
                                 StateTable* out) {
  return RecoverImpl(config, UINT64_MAX, out);
}

namespace {

/// Folds one shard's outcome into the fleet aggregate.
void AccumulateShard(const RecoveryResult& shard_result, uint32_t shard,
                     ShardedRecoveryResult* result) {
  result->restore_seconds += shard_result.restore_seconds;
  result->replay_seconds += shard_result.replay_seconds;
  const uint64_t recovered = shard_result.recovered_ticks;
  if (shard == 0) {
    result->min_recovered_ticks = recovered;
    result->max_recovered_ticks = recovered;
  } else {
    result->min_recovered_ticks =
        std::min(result->min_recovered_ticks, recovered);
    result->max_recovered_ticks =
        std::max(result->max_recovered_ticks, recovered);
  }
  result->shards.push_back(shard_result);
}

/// Shared per-partition crash-recovery loop: partition p restores from
/// `dirs[p]` (the manifest's assignment- and mount-resolved directory).
StatusOr<ShardedRecoveryResult> RecoverPartitionsImpl(
    const ShardedEngineConfig& config, const std::vector<std::string>& dirs,
    std::vector<StateTable>* out) {
  ShardedRecoveryResult result;
  result.shards.reserve(config.num_shards);
  out->clear();
  out->reserve(config.num_shards);
  for (uint32_t i = 0; i < config.num_shards; ++i) {
    EngineConfig shard_config = config.shard;
    shard_config.dir = dirs[i];
    out->emplace_back(shard_config.layout);
    TP_ASSIGN_OR_RETURN(const RecoveryResult shard_result,
                        Recover(shard_config, &out->back()));
    AccumulateShard(shard_result, i, &result);
  }
  return result;
}

}  // namespace

StatusOr<RecoveryResult> RecoverToTick(const EngineConfig& config,
                                       uint64_t cut_tick, StateTable* out) {
  TP_ASSIGN_OR_RETURN(const RecoveryResult result,
                      RecoverImpl(config, cut_tick, out));
  // Exactness guards on top of the shared body: the replayed range must
  // butt against the restored image (no gap -- every tick appends one
  // logical record, so applied records are consecutive and their first
  // tick is recovered_ticks - ticks_replayed) and must actually reach the
  // cut.
  if (result.ticks_replayed > 0 &&
      result.recovered_ticks - result.ticks_replayed >
          result.image_consistent_ticks) {
    return Status::Corruption(
        "logical log in " + config.dir + " starts at tick " +
        std::to_string(result.recovered_ticks - result.ticks_replayed) +
        ", after the restored image (" +
        std::to_string(result.image_consistent_ticks) + ")");
  }
  if (result.recovered_ticks != cut_tick + 1) {
    return Status::Corruption(
        "durable state in " + config.dir + " reaches tick " +
        std::to_string(result.recovered_ticks) + ", not the cut tick " +
        std::to_string(cut_tick + 1));
  }
  return result;
}

namespace {

/// Shared cut-recovery body, parameterized by per-partition directories.
StatusOr<ShardedCutRecoveryResult> RecoverPartitionsToCutImpl(
    const ShardedEngineConfig& config, const std::vector<std::string>& dirs,
    std::vector<StateTable>* out) {
  ShardedCutRecoveryResult result;
  auto manifest_or = ReadCutManifest(config.shard.dir);
  if (!manifest_or.ok()) {
    const StatusCode code = manifest_or.status().code();
    // NotFound: the coordinator never committed (including a crash between
    // the last shard ack and the commit rename). Corruption: the manifest
    // is torn. Both mean "no committed cut" -- fall back to per-shard
    // exact recovery. Anything else is a real I/O failure.
    if (code != StatusCode::kNotFound && code != StatusCode::kCorruption) {
      return manifest_or.status();
    }
  }
  if (!manifest_or.ok()) {
    TP_ASSIGN_OR_RETURN(result.fleet,
                        RecoverPartitionsImpl(config, dirs, out));
    return result;
  }
  const CutManifest& manifest = manifest_or.value();
  if (manifest.shards.size() != config.num_shards) {
    // A committed manifest that disagrees with the fleet geometry is a
    // misconfiguration, not a missing cut: surface it instead of silently
    // recovering a partial fleet.
    return Status::InvalidArgument(
        "cut manifest in " + config.shard.dir + " records " +
        std::to_string(manifest.shards.size()) + " shards, config expects " +
        std::to_string(config.num_shards));
  }
  result.used_manifest = true;
  result.cut_tick = manifest.cut_tick;
  result.fleet.shards.reserve(config.num_shards);
  out->clear();
  out->reserve(config.num_shards);
  for (uint32_t i = 0; i < config.num_shards; ++i) {
    EngineConfig shard_config = config.shard;
    shard_config.dir = dirs[i];
    out->emplace_back(shard_config.layout);
    auto shard_or = RecoverToTick(shard_config, manifest.cut_tick,
                                  &out->back());
    if (!shard_or.ok()) {
      if (shard_or.status().code() == StatusCode::kCorruption) {
        // The manifest is committed but its cut is no longer reproducible
        // from this shard's durable sources -- e.g. a death during a
        // fleet resume after this shard's bootstrap truncated the
        // logical log the (older) cut depended on. Same
        // treatment as a torn manifest: per-shard exact fallback
        // (clears and refills `out`).
        ShardedCutRecoveryResult fallback;
        auto fallback_or = RecoverPartitionsImpl(config, dirs, out);
        if (!fallback_or.ok()) return fallback_or.status();
        fallback.fleet = std::move(fallback_or).value();
        return fallback;
      }
      return shard_or.status();
    }
    AccumulateShard(shard_or.value(), i, &result.fleet);
  }
  return result;
}

/// Shared manifest-reading front half of RecoverFleet/RecoverFleetToCut:
/// reads the newest intact manifest and verifies the directory layout it
/// describes actually exists.
StatusOr<FleetManifest> ReadManifestForRecovery(const std::string& root) {
  TP_ASSIGN_OR_RETURN(FleetManifest manifest, ReadNewestFleetManifest(root));
  for (uint32_t p = 0; p < manifest.num_partitions; ++p) {
    const std::string dir = manifest.PartitionDir(root, p);
    std::error_code ec;
    if (!std::filesystem::is_directory(dir, ec)) {
      // The superblock and the directory tree disagree: surface it as
      // corruption instead of "recovering" partition p to zeroed state
      // from a directory that is not there.
      return Status::Corruption(
          "fleet manifest (epoch " + std::to_string(manifest.epoch) +
          ") assigns partition " + std::to_string(p) + " to " + dir +
          ", which does not exist");
    }
  }
  return manifest;
}

/// Assignment- and mount-resolved directory of every partition.
std::vector<std::string> PartitionDirs(const FleetManifest& manifest,
                                       const std::string& root) {
  std::vector<std::string> dirs;
  dirs.reserve(manifest.num_partitions);
  for (uint32_t p = 0; p < manifest.num_partitions; ++p) {
    dirs.push_back(manifest.PartitionDir(root, p));
  }
  return dirs;
}

}  // namespace

StatusOr<FleetRecoveryOutcome> RecoverFleet(const std::string& root,
                                            std::vector<StateTable>* out) {
  FleetRecoveryOutcome outcome;
  TP_ASSIGN_OR_RETURN(outcome.manifest, ReadManifestForRecovery(root));
  const ShardedEngineConfig config = ConfigFromManifest(outcome.manifest,
                                                        root);
  auto fleet_or =
      RecoverPartitionsImpl(config, PartitionDirs(outcome.manifest, root),
                            out);
  if (!fleet_or.ok()) return fleet_or.status();
  outcome.result.fleet = std::move(fleet_or).value();
  return outcome;
}

StatusOr<FleetRecoveryOutcome> RecoverFleetToCut(
    const std::string& root, std::vector<StateTable>* out) {
  FleetRecoveryOutcome outcome;
  TP_ASSIGN_OR_RETURN(outcome.manifest, ReadManifestForRecovery(root));
  const ShardedEngineConfig config = ConfigFromManifest(outcome.manifest,
                                                        root);
  auto cut_or = RecoverPartitionsToCutImpl(
      config, PartitionDirs(outcome.manifest, root), out);
  if (!cut_or.ok()) return cut_or.status();
  outcome.result = std::move(cut_or).value();
  return outcome;
}

StatusOr<RecoveryResult> RecoverToHistoricTick(const EngineConfig& config,
                                               uint64_t tick,
                                               StateTable* out) {
  // The live stores reproduce any tick from the newest image's consistent
  // tick to the crash tick; history exists for everything older. Try live
  // first -- it is exact when it works, and its Corruption is precisely
  // "this tick predates what the live sources cover".
  auto live_or = RecoverToTick(config, tick, out);
  if (live_or.ok()) return live_or;
  if (live_or.status().code() != StatusCode::kCorruption) return live_or;
  const Status live_error = live_or.status();

  auto index_or = ShardHistory::ReadIndex(config.dir);
  if (!index_or.ok()) return live_error;  // no/torn history: live's verdict
  const HistoryIndex index = std::move(index_or).value();

  // Newest retained generation consistent no later than tick + 1.
  const HistoryIndex::Generation* base = nullptr;
  for (const auto& g : index.generations) {
    if (g.consistent_tick <= tick + 1) base = &g;
  }
  if (base == nullptr) {
    return Status::Corruption(
        "no retained generation in " + config.dir +
        " is consistent at or before tick " + std::to_string(tick));
  }

  RecoveryResult result;
  out->Clear();
  const auto restore_start = Clock::now();
  TP_ASSIGN_OR_RETURN(
      const uint64_t consistent,
      ShardHistory::ReadGenerationImage(config.dir, base->seq, out));
  result.restored_from_checkpoint = true;
  result.image_seq = base->seq;
  result.image_consistent_ticks = consistent;
  result.restore_seconds = SecondsSince(restore_start);

  // Replay archived segments (ascending), then the live log, through
  // `tick`. Every applied run must butt against what is already recovered:
  // ticks append one record each, so a source's first applied tick is
  // (last + 1 - applied).
  const auto replay_start = Clock::now();
  uint64_t expected = consistent;
  std::vector<std::string> sources;
  for (const auto& seg : index.segments) {
    sources.push_back(paths::HistoryDir(config.dir) + "/" +
                      paths::HistorySegmentFileName(seg.id));
  }
  sources.push_back(Engine::LogicalLogPath(config.dir));
  for (const std::string& source : sources) {
    if (!FileExists(source)) continue;
    TP_ASSIGN_OR_RETURN(const LogicalLog::ReplayStats stats,
                        LogicalLog::Replay(source, expected, tick, out));
    if (stats.records_applied == 0) continue;
    const uint64_t first = stats.last_tick + 1 - stats.records_applied;
    if (first > expected) {
      return Status::Corruption("history of " + config.dir +
                                " has a logical gap before tick " +
                                std::to_string(first));
    }
    expected = stats.last_tick + 1;
    result.ticks_replayed += stats.records_applied;
  }
  result.replay_seconds = SecondsSince(replay_start);
  result.recovered_ticks = expected;
  if (expected != tick + 1) {
    return Status::Corruption(
        "retained history in " + config.dir + " reaches tick " +
        std::to_string(expected) + ", not the requested tick " +
        std::to_string(tick + 1));
  }
  return result;
}

StatusOr<FleetRecoveryOutcome> RecoverFleetToTick(
    const std::string& root, uint64_t tick, std::vector<StateTable>* out) {
  FleetRecoveryOutcome outcome;
  TP_ASSIGN_OR_RETURN(outcome.manifest, ReadManifestForRecovery(root));
  const ShardedEngineConfig config = ConfigFromManifest(outcome.manifest,
                                                        root);
  const std::vector<std::string> dirs = PartitionDirs(outcome.manifest, root);
  outcome.result.used_manifest = true;
  outcome.result.cut_tick = tick;
  outcome.result.fleet.shards.reserve(config.num_shards);
  out->clear();
  out->reserve(config.num_shards);
  for (uint32_t i = 0; i < config.num_shards; ++i) {
    EngineConfig shard_config = config.shard;
    shard_config.dir = dirs[i];
    out->emplace_back(shard_config.layout);
    auto shard_or = RecoverToHistoricTick(shard_config, tick, &out->back());
    if (!shard_or.ok()) {
      if (shard_or.status().code() == StatusCode::kCorruption) {
        // Some shard cannot reproduce the tick (outside its retained
        // window, or its history is torn). All-or-nothing: fall back to
        // per-shard latest recovery (clears and refills `out`) rather
        // than mixing timelines across shards.
        outcome.result = ShardedCutRecoveryResult{};
        auto fallback_or = RecoverPartitionsImpl(config, dirs, out);
        if (!fallback_or.ok()) return fallback_or.status();
        outcome.result.fleet = std::move(fallback_or).value();
        return outcome;
      }
      return shard_or.status();
    }
    AccumulateShard(shard_or.value(), i, &outcome.result.fleet);
  }
  return outcome;
}

StatusOr<HistoryWindow> RestorableFleetWindow(const std::string& root) {
  TP_ASSIGN_OR_RETURN(const FleetManifest manifest,
                      ReadManifestForRecovery(root));
  HistoryWindow window;
  for (uint32_t p = 0; p < manifest.num_partitions; ++p) {
    const std::string dir = manifest.PartitionDir(root, p);
    auto index_or = ShardHistory::ReadIndex(dir);
    if (!index_or.ok()) {
      const StatusCode code = index_or.status().code();
      // No/torn history on any shard: the fleet advertises no window.
      if (code == StatusCode::kNotFound || code == StatusCode::kCorruption) {
        return HistoryWindow{};
      }
      return index_or.status();
    }
    TP_ASSIGN_OR_RETURN(
        const HistoryWindow shard,
        ShardHistory::ComputeWindow(dir, index_or.value()));
    if (!shard.any) return HistoryWindow{};
    if (!window.any) {
      window = shard;
    } else {
      window.low_tick = std::max(window.low_tick, shard.low_tick);
      window.high_tick = std::min(window.high_tick, shard.high_tick);
      if (window.low_tick > window.high_tick) return HistoryWindow{};
    }
  }
  return window;
}

}  // namespace tickpoint
