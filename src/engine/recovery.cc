#include "engine/recovery.h"

#include <algorithm>
#include <chrono>

#include "engine/checkpoint_store.h"
#include "engine/logical_log.h"

namespace tickpoint {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

StatusOr<RecoveryResult> Recover(const EngineConfig& config,
                                 StateTable* out) {
  TP_CHECK(out->layout().num_objects() == config.layout.num_objects());
  const AlgorithmTraits& traits = GetTraits(config.algorithm);
  RecoveryResult result;
  out->Clear();

  // Phase 1: restore the newest complete checkpoint image.
  const auto restore_start = Clock::now();
  if (traits.disk == DiskOrganization::kDoubleBackup) {
    TP_ASSIGN_OR_RETURN(auto store, BackupStore::Open(config.dir,
                                                      config.layout,
                                                      config.fsync));
    int best = -1;
    ImageInfo best_info;
    for (int index = 0; index < 2; ++index) {
      TP_ASSIGN_OR_RETURN(const ImageInfo info, store->Inspect(index));
      if (info.valid && (best < 0 || info.seq > best_info.seq)) {
        best = index;
        best_info = info;
      }
    }
    if (best >= 0) {
      TP_RETURN_NOT_OK(store->ReadAll(best, out));
      result.restored_from_checkpoint = true;
      result.image_seq = best_info.seq;
      result.image_consistent_ticks = best_info.consistent_tick;
    }
  } else {
    TP_ASSIGN_OR_RETURN(
        auto store, LogStore::Open(config.dir, config.layout, config.fsync));
    auto image_or = store->Restore(out);
    if (image_or.ok()) {
      result.restored_from_checkpoint = true;
      result.image_seq = image_or.value().seq;
      result.image_consistent_ticks = image_or.value().consistent_tick;
    } else if (image_or.status().code() != StatusCode::kNotFound) {
      return image_or.status();
    }
  }
  result.restore_seconds = SecondsSince(restore_start);

  // Phase 2: replay the logical log from the image boundary to the end.
  const auto replay_start = Clock::now();
  const std::string log_path = Engine::LogicalLogPath(config.dir);
  TP_ASSIGN_OR_RETURN(
      const LogicalLog::ReplayStats stats,
      LogicalLog::Replay(log_path, result.image_consistent_ticks, UINT64_MAX,
                         out));
  result.replay_seconds = SecondsSince(replay_start);
  result.ticks_replayed = stats.records_applied;
  result.recovered_ticks = stats.records_applied > 0
                               ? stats.last_tick + 1
                               : result.image_consistent_ticks;
  return result;
}

StatusOr<ShardedRecoveryResult> RecoverSharded(
    const ShardedEngineConfig& config, std::vector<StateTable>* out) {
  if (config.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  if (config.shard.dir.empty()) {
    return Status::InvalidArgument("ShardedEngineConfig.shard.dir must be set");
  }
  ShardedRecoveryResult result;
  result.shards.reserve(config.num_shards);
  out->clear();
  out->reserve(config.num_shards);
  for (uint32_t i = 0; i < config.num_shards; ++i) {
    EngineConfig shard_config = config.shard;
    shard_config.dir = ShardedEngine::ShardDir(config.shard.dir, i);
    out->emplace_back(shard_config.layout);
    TP_ASSIGN_OR_RETURN(const RecoveryResult shard_result,
                        Recover(shard_config, &out->back()));
    result.restore_seconds += shard_result.restore_seconds;
    result.replay_seconds += shard_result.replay_seconds;
    const uint64_t recovered = shard_result.recovered_ticks;
    if (i == 0) {
      result.min_recovered_ticks = recovered;
      result.max_recovered_ticks = recovered;
    } else {
      result.min_recovered_ticks = std::min(result.min_recovered_ticks,
                                            recovered);
      result.max_recovered_ticks = std::max(result.max_recovered_ticks,
                                            recovered);
    }
    result.shards.push_back(shard_result);
  }
  return result;
}

}  // namespace tickpoint
