#include "engine/dirty_map.h"

// Header-only components; this TU anchors the library target.
namespace tickpoint {}  // namespace tickpoint
