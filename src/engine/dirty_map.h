// Concurrent dirty tracking for the real engine.
//
//  - AtomicBitMap: lock-free per-object bit array. The mutator sets bits on
//    update; the writer snapshots-and-clears a whole map at checkpoint start
//    (the write set) and tests/sets the per-checkpoint "copied or flushed"
//    bits.
//  - ObjectLockTable: per-object spinlocks arbitrating the copy-on-update
//    race between the mutator (saving a pre-image) and the asynchronous
//    writer (reading the live object). This is the Olock of the cost model.
#ifndef TICKPOINT_ENGINE_DIRTY_MAP_H_
#define TICKPOINT_ENGINE_DIRTY_MAP_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "model/layout.h"
#include "util/status.h"

namespace tickpoint {

/// Fixed-size atomic bit array.
class AtomicBitMap {
 public:
  explicit AtomicBitMap(uint64_t size)
      : size_(size), words_((size + 63) / 64) {
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  }

  uint64_t size() const { return size_; }

  bool Test(uint64_t i) const {
    TP_DCHECK(i < size_);
    return (words_[i >> 6].load(std::memory_order_acquire) >> (i & 63)) & 1;
  }

  void Set(uint64_t i) {
    TP_DCHECK(i < size_);
    words_[i >> 6].fetch_or(uint64_t{1} << (i & 63),
                            std::memory_order_release);
    // Cumulative mark traffic, NOT the live popcount: checkpoints clear
    // bits but never rewind this counter, so consecutive readings give a
    // per-window dirty RATE (the load signal the rebalancer consumes).
    marks_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Atomically sets bit i; returns its previous value.
  bool TestAndSet(uint64_t i) {
    TP_DCHECK(i < size_);
    const uint64_t mask = uint64_t{1} << (i & 63);
    const uint64_t old =
        words_[i >> 6].fetch_or(mask, std::memory_order_acq_rel);
    return (old & mask) != 0;
  }

  void Clear(uint64_t i) {
    TP_DCHECK(i < size_);
    words_[i >> 6].fetch_and(~(uint64_t{1} << (i & 63)),
                             std::memory_order_release);
  }

  void ClearAll() {
    for (auto& w : words_) w.store(0, std::memory_order_release);
  }

  /// Atomically moves the whole map into `snapshot` (which must have the
  /// same size), clearing this map: the checkpoint write-set handoff.
  /// Updates racing with the swap land either in this checkpoint's set or
  /// in the map for the next one -- both are correct, because the handoff
  /// happens inside the end-of-tick quiescent point.
  void ExchangeInto(AtomicBitMap* snapshot) {
    TP_DCHECK(snapshot->size_ == size_);
    for (size_t w = 0; w < words_.size(); ++w) {
      snapshot->words_[w].store(
          words_[w].exchange(0, std::memory_order_acq_rel),
          std::memory_order_release);
    }
  }

  uint64_t CountSet() const {
    uint64_t count = 0;
    for (const auto& w : words_) {
      count += static_cast<uint64_t>(
          __builtin_popcountll(w.load(std::memory_order_acquire)));
    }
    return count;
  }

  /// Total Set() calls over this map's lifetime (monotonic; Clear/ClearAll/
  /// ExchangeInto never rewind it). Relaxed: a rate signal, not a fence --
  /// safe to poll from any thread while the owner keeps marking.
  uint64_t CumulativeMarks() const {
    return marks_.load(std::memory_order_relaxed);
  }

 private:
  uint64_t size_;
  std::vector<std::atomic<uint64_t>> words_;
  std::atomic<uint64_t> marks_{0};
};

/// One spinlock per atomic object (byte-sized test-and-set).
class ObjectLockTable {
 public:
  explicit ObjectLockTable(uint64_t size) : locks_(size) {
    for (auto& lock : locks_) lock.store(0, std::memory_order_relaxed);
  }

  void Lock(ObjectId o) {
    TP_DCHECK(o < locks_.size());
    while (locks_[o].exchange(1, std::memory_order_acquire) != 0) {
      // Uncontested in the common case (mutator vs one writer);
      // spin briefly.
#if defined(__x86_64__)
      __builtin_ia32_pause();
#endif
    }
  }

  void Unlock(ObjectId o) {
    TP_DCHECK(o < locks_.size());
    locks_[o].store(0, std::memory_order_release);
  }

 private:
  std::vector<std::atomic<uint8_t>> locks_;
};

/// RAII guard for ObjectLockTable.
class ObjectLockGuard {
 public:
  ObjectLockGuard(ObjectLockTable* locks, ObjectId o) : locks_(locks), o_(o) {
    locks_->Lock(o_);
  }
  ~ObjectLockGuard() { locks_->Unlock(o_); }
  ObjectLockGuard(const ObjectLockGuard&) = delete;
  ObjectLockGuard& operator=(const ObjectLockGuard&) = delete;

 private:
  ObjectLockTable* locks_;
  ObjectId o_;
};

}  // namespace tickpoint

#endif  // TICKPOINT_ENGINE_DIRTY_MAP_H_
