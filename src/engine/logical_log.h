// The logical log (paper Section 3.1): "we log all user actions at each
// tick and replay the ticks to recover. This allows us to recover to the
// precise tick at which a failure occurred."
//
// Each tick appends one self-validating record carrying the cell updates of
// that tick. Group commit is per tick (configurable): the record is fsynced
// every `sync_every` ticks, trading a bounded window of lost ticks for
// fewer syncs. Replay applies records after a checkpoint's consistent tick
// to roll the restored state forward to the crash tick.
#ifndef TICKPOINT_ENGINE_LOGICAL_LOG_H_
#define TICKPOINT_ENGINE_LOGICAL_LOG_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "engine/state_table.h"
#include "util/io.h"
#include "util/status.h"

namespace tickpoint {

/// One logical update: a cell and its new value. (A production MMO would
/// log the user *command*; the trace-driven workloads of the paper's
/// validation are already expressed as cell updates.)
struct CellUpdate {
  uint32_t cell = 0;
  int32_t value = 0;

  bool operator==(const CellUpdate&) const = default;
};

/// Append-side handle.
class LogicalLog {
 public:
  /// Opens `path` for appending, truncating any previous content.
  /// `sync_every` = N > 0: fsync after every N-th tick record.
  static StatusOr<std::unique_ptr<LogicalLog>> Create(const std::string& path,
                                                      uint64_t sync_every);

  /// Appends the updates of `tick`. Ticks must be appended in order.
  Status AppendTick(uint64_t tick, std::span<const CellUpdate> updates);

  /// Forces everything appended so far to stable storage.
  Status Sync();
  Status Close();

  /// Crash-injection close: makes the log look as it would after an OS
  /// crash that lost everything past the last group-commit sync. Closes
  /// the file without a final sync, then truncates it back to the last
  /// synced byte plus a partial-record fragment of whatever followed, so
  /// recovery must both stop at the synced prefix and discard a torn tail.
  Status CloseLosingUnsyncedTail();

  uint64_t ticks_appended() const { return ticks_appended_; }
  uint64_t bytes_appended() const { return writer_.bytes_written(); }
  /// Ticks covered by the last group-commit sync.
  uint64_t synced_ticks() const { return synced_ticks_; }

 private:
  LogicalLog(uint64_t sync_every) : sync_every_(sync_every) {}

  void MarkSynced() {
    synced_ticks_ = ticks_appended_;
    synced_bytes_ = writer_.bytes_written();
  }

  FileWriter writer_;
  uint64_t sync_every_;
  uint64_t ticks_appended_ = 0;
  uint64_t synced_ticks_ = 0;
  uint64_t synced_bytes_ = 0;

 public:
  // ---- Recovery side (static: operates on a closed log file) ----

  /// Outcome of a replay pass.
  struct ReplayStats {
    uint64_t records_applied = 0;
    uint64_t last_tick = 0;  // valid only when records_applied > 0
  };

  /// Replays records with tick in [from_tick, up_to_tick] onto `table`.
  /// Pass UINT64_MAX as `up_to_tick` to replay to the durable end. A torn
  /// tail (crash mid-record) terminates replay cleanly.
  static StatusOr<ReplayStats> Replay(const std::string& path,
                                      uint64_t from_tick, uint64_t up_to_tick,
                                      StateTable* table);

  /// Scans the log and returns the number of intact tick records.
  static StatusOr<uint64_t> CountDurableTicks(const std::string& path);

  /// Tick range covered by a log file's intact records.
  struct RangeStats {
    uint64_t records = 0;
    uint64_t first_tick = 0;  // valid only when records > 0
    uint64_t last_tick = 0;   // valid only when records > 0
  };

  /// Scans the log and reports the first/last intact tick.
  static StatusOr<RangeStats> ScanRange(const std::string& path);

  /// Copies intact records with tick in [from_tick, up_to_tick] from
  /// `path` onto `writer`, re-serialized in the on-disk record format (so
  /// the destination file replays with LogicalLog::Replay). The history
  /// subsystem archives live-log slices into retention segments with this.
  static StatusOr<RangeStats> CopyRecords(const std::string& path,
                                          uint64_t from_tick,
                                          uint64_t up_to_tick,
                                          FileWriter* writer);
};

}  // namespace tickpoint

#endif  // TICKPOINT_ENGINE_LOGICAL_LOG_H_
