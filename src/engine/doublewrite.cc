#include "engine/doublewrite.h"

#include <cstring>
#include <filesystem>

#include "util/crc32.h"
#include "util/io.h"

namespace tickpoint {

namespace {

/// "TKPTDWR1" -- distinct from the backup image and segment magics so a
/// chunk header can never be mistaken for either.
constexpr uint64_t kDwMagic = 0x544B505444575231ULL;

/// Chunk slots start on 512-byte boundaries (torn-write granularity of
/// classic disks; also keeps the region layout inspectable by eye).
constexpr uint64_t kDwAlign = 512;

constexpr uint64_t AlignUp(uint64_t value) {
  return (value + kDwAlign - 1) & ~(kDwAlign - 1);
}

/// On-disk chunk header. Fixed-width fields, same-machine layout (the
/// convention all tickpoint on-disk structs follow).
struct DwChunkHeader {
  uint64_t magic = 0;
  uint64_t batch_seq = 0;
  uint64_t target_offset = 0;
  uint64_t length = 0;
  uint32_t target_image = 0;
  uint32_t payload_crc = 0;
  /// CRC over every preceding field; guards a torn header write.
  uint32_t header_crc = 0;
  uint32_t pad = 0;
};
static_assert(sizeof(DwChunkHeader) == 48, "doublewrite header layout");

uint32_t HeaderCrc(const DwChunkHeader& header) {
  return Crc32(&header, offsetof(DwChunkHeader, header_crc));
}

}  // namespace

StatusOr<std::unique_ptr<DoublewriteRegion>> DoublewriteRegion::Open(
    const std::string& dw_path, bool fsync_enabled, IoBackend* backend) {
  TP_CHECK(backend != nullptr);
  auto region = std::unique_ptr<DoublewriteRegion>(
      new DoublewriteRegion(fsync_enabled, backend));
  TP_RETURN_NOT_OK(region->file_.OpenForUpdate(dw_path));
  // Any batch a previous incarnation left behind was already replayed (or
  // was unsealed, i.e. discardable) before we got here; truncating keeps
  // stale chunks from ever aliasing a future batch's tail.
  TP_RETURN_NOT_OK(region->file_.Truncate(0));
  return region;
}

StatusOr<std::vector<DoublewriteRegion::Chunk>> DoublewriteRegion::Scan(
    const std::string& dw_path) {
  std::vector<Chunk> chunks;
  if (!FileExists(dw_path)) return chunks;
  FileReader reader;
  TP_RETURN_NOT_OK(reader.Open(dw_path));
  TP_ASSIGN_OR_RETURN(const uint64_t file_size, reader.Size());
  uint64_t offset = 0;
  while (offset + sizeof(DwChunkHeader) <= file_size) {
    DwChunkHeader header;
    TP_RETURN_NOT_OK(reader.ReadAt(offset, &header, sizeof(header)));
    // The terminator (or a torn header) ends the batch.
    if (header.magic != kDwMagic) break;
    if (header.header_crc != HeaderCrc(header)) break;
    Chunk chunk;
    chunk.batch_seq = header.batch_seq;
    chunk.target_image = header.target_image;
    chunk.target_offset = header.target_offset;
    chunk.length = header.length;
    chunk.payload_file_offset = offset + sizeof(DwChunkHeader);
    chunk.payload_intact = false;
    if (chunk.payload_file_offset + header.length <= file_size) {
      std::vector<uint8_t> payload(header.length);
      TP_RETURN_NOT_OK(reader.ReadAt(chunk.payload_file_offset,
                                     payload.data(), payload.size()));
      chunk.payload_intact =
          Crc32(payload.data(), payload.size()) == header.payload_crc;
    }
    chunks.push_back(chunk);
    // Past a torn payload the slot arithmetic still holds, but the bytes
    // there are leftovers of an older batch; the prefix ends here.
    if (!chunk.payload_intact) break;
    offset = AlignUp(chunk.payload_file_offset + header.length);
  }
  return chunks;
}

StatusOr<uint64_t> DoublewriteRegion::Replay(const std::string& dw_path,
                                             const std::string* image_paths,
                                             size_t num_images,
                                             bool fsync_enabled,
                                             uint64_t apply_at_most) {
  TP_ASSIGN_OR_RETURN(const std::vector<Chunk> chunks, Scan(dw_path));
  uint64_t applied = 0;
  if (!chunks.empty()) {
    FileReader reader;
    TP_RETURN_NOT_OK(reader.Open(dw_path));
    std::vector<std::unique_ptr<FileWriter>> writers(num_images);
    const uint64_t batch_seq = chunks.front().batch_seq;
    std::vector<uint8_t> payload;
    for (const Chunk& chunk : chunks) {
      // Only the longest intact prefix carrying the first chunk's
      // batch_seq is the staged batch; anything else is a leftover.
      if (chunk.batch_seq != batch_seq || !chunk.payload_intact) break;
      if (applied >= apply_at_most) break;
      if (chunk.target_image >= num_images) {
        return Status::Corruption("doublewrite chunk targets image " +
                                  std::to_string(chunk.target_image));
      }
      payload.resize(chunk.length);
      TP_RETURN_NOT_OK(reader.ReadAt(chunk.payload_file_offset,
                                     payload.data(), payload.size()));
      auto& writer = writers[chunk.target_image];
      if (writer == nullptr) {
        writer = std::make_unique<FileWriter>();
        TP_RETURN_NOT_OK(
            writer->OpenForUpdate(image_paths[chunk.target_image]));
      }
      TP_RETURN_NOT_OK(
          writer->WriteAt(chunk.target_offset, payload.data(),
                          payload.size()));
      ++applied;
    }
    for (auto& writer : writers) {
      if (writer == nullptr) continue;
      TP_RETURN_NOT_OK(fsync_enabled ? writer->Sync() : writer->Flush());
      TP_RETURN_NOT_OK(writer->Close());
    }
  }
  if (apply_at_most != UINT64_MAX) {
    // Crash-injection mode: leave the region intact so the next open
    // replays again (the idempotence the tests assert).
    return applied;
  }
  // The batch (if any) is durable in place; discard the region so its
  // chunks can never alias a future batch. A region that never existed
  // (fresh directory) needs no discard.
  if (!FileExists(dw_path)) return applied;
  std::error_code ec;
  std::filesystem::resize_file(dw_path, 0, ec);
  if (ec) {
    return Status::IOError("truncate failed: " + dw_path + ": " +
                           ec.message());
  }
  return applied;
}

Status DoublewriteRegion::BeginBatch() {
  // An abandoned previous batch may still have writes in flight that
  // reference pending_headers_; fence them out before reusing the region.
  TP_RETURN_NOT_OK(backend_->Drain());
  pending_headers_.clear();
  batch_seq_ = next_batch_seq_++;
  write_offset_ = 0;
  last_ticket_ = 0;
  batch_open_ = true;
  return Status::OK();
}

IoTicket DoublewriteRegion::StageChunk(uint32_t target_image,
                                       uint64_t target_offset,
                                       const void* payload, uint64_t length) {
  TP_CHECK(batch_open_);
  DwChunkHeader header;
  header.magic = kDwMagic;
  header.batch_seq = batch_seq_;
  header.target_offset = target_offset;
  header.length = length;
  header.target_image = target_image;
  header.payload_crc = Crc32(payload, length);
  header.header_crc = HeaderCrc(header);
  auto& bytes = pending_headers_.emplace_back(sizeof(DwChunkHeader));
  std::memcpy(bytes.data(), &header, sizeof(header));
  backend_->SubmitWrite(&file_, write_offset_, bytes.data(), bytes.size());
  last_ticket_ = backend_->SubmitWrite(
      &file_, write_offset_ + sizeof(DwChunkHeader), payload, length);
  write_offset_ = AlignUp(write_offset_ + sizeof(DwChunkHeader) + length);
  return last_ticket_;
}

Status DoublewriteRegion::Seal() {
  TP_CHECK(batch_open_);
  batch_open_ = false;
  // Terminator: a zeroed header slot after the last chunk, so Scan stops
  // before any leftover bytes of an earlier (longer) batch.
  auto& terminator = pending_headers_.emplace_back(sizeof(DwChunkHeader), 0);
  last_ticket_ = backend_->SubmitWrite(&file_, write_offset_,
                                       terminator.data(), terminator.size());
  TP_RETURN_NOT_OK(backend_->WaitFor(last_ticket_));
  if (fsync_enabled_) TP_RETURN_NOT_OK(file_.Sync());
  return Status::OK();
}

}  // namespace tickpoint
