#include "engine/logical_log.h"

#include <algorithm>
#include <filesystem>

#include "util/crc32.h"

namespace tickpoint {
namespace {

constexpr uint32_t kRecordMagic = 0x54504C4Cu;  // "TPLL"

struct RecordHeader {
  uint32_t magic = 0;
  uint32_t count = 0;
  uint64_t tick = 0;
};
static_assert(sizeof(RecordHeader) == 16);

}  // namespace

StatusOr<std::unique_ptr<LogicalLog>> LogicalLog::Create(
    const std::string& path, uint64_t sync_every) {
  TP_CHECK(sync_every >= 1);
  std::unique_ptr<LogicalLog> log(new LogicalLog(sync_every));
  TP_RETURN_NOT_OK(log->writer_.Open(path));
  return log;
}

Status LogicalLog::AppendTick(uint64_t tick,
                              std::span<const CellUpdate> updates) {
  RecordHeader header;
  header.magic = kRecordMagic;
  header.count = static_cast<uint32_t>(updates.size());
  header.tick = tick;
  TP_RETURN_NOT_OK(writer_.Append(&header, sizeof(header)));
  uint32_t crc = Crc32(&header, sizeof(header));
  if (!updates.empty()) {
    TP_RETURN_NOT_OK(
        writer_.Append(updates.data(), updates.size() * sizeof(CellUpdate)));
    crc = Crc32(updates.data(), updates.size() * sizeof(CellUpdate), crc);
  }
  TP_RETURN_NOT_OK(writer_.Append(&crc, sizeof(crc)));
  ++ticks_appended_;
  if (ticks_appended_ % sync_every_ == 0) {
    TP_RETURN_NOT_OK(writer_.Sync());
    MarkSynced();
  } else {
    TP_RETURN_NOT_OK(writer_.Flush());
  }
  return Status::OK();
}

Status LogicalLog::Sync() {
  TP_RETURN_NOT_OK(writer_.Sync());
  MarkSynced();
  return Status::OK();
}

Status LogicalLog::Close() {
  if (!writer_.is_open()) return Status::OK();
  TP_RETURN_NOT_OK(writer_.Sync());
  MarkSynced();
  return writer_.Close();
}

Status LogicalLog::CloseLosingUnsyncedTail() {
  if (!writer_.is_open()) return Status::OK();
  const std::string path = writer_.path();
  const uint64_t total_bytes = writer_.bytes_written();
  TP_RETURN_NOT_OK(writer_.Close());  // plain close: no final sync
  // Keep the synced prefix plus a strict prefix of the next record (a full
  // header and two bytes -- every nonempty record is at least 28 bytes), the
  // torn tail a real crash leaves mid-record.
  const uint64_t unsynced = total_bytes - synced_bytes_;
  const uint64_t keep =
      synced_bytes_ +
      std::min<uint64_t>(unsynced, sizeof(RecordHeader) + 2);
  std::error_code ec;
  std::filesystem::resize_file(path, keep, ec);
  if (ec) {
    return Status::IOError("truncate " + path + ": " + ec.message());
  }
  ticks_appended_ = synced_ticks_;
  return Status::OK();
}

namespace {

// Shared scan loop: visits each intact record in order.
template <typename Visitor>
Status ScanLog(const std::string& path, Visitor visit) {
  FileReader reader;
  TP_RETURN_NOT_OK(reader.Open(path));
  TP_ASSIGN_OR_RETURN(const uint64_t size, reader.Size());
  uint64_t offset = 0;
  std::vector<CellUpdate> updates;
  while (offset + sizeof(RecordHeader) + sizeof(uint32_t) <= size) {
    RecordHeader header;
    TP_RETURN_NOT_OK(reader.ReadAt(offset, &header, sizeof(header)));
    if (header.magic != kRecordMagic) break;
    const uint64_t record_bytes = sizeof(RecordHeader) +
                                  header.count * sizeof(CellUpdate) +
                                  sizeof(uint32_t);
    if (offset + record_bytes > size) break;  // torn tail
    updates.resize(header.count);
    if (header.count > 0) {
      TP_RETURN_NOT_OK(reader.ReadExact(updates.data(),
                                        header.count * sizeof(CellUpdate)));
    }
    uint32_t stored;
    TP_RETURN_NOT_OK(reader.ReadExact(&stored, sizeof(stored)));
    uint32_t crc = Crc32(&header, sizeof(header));
    if (header.count > 0) {
      crc = Crc32(updates.data(), header.count * sizeof(CellUpdate), crc);
    }
    if (stored != crc) break;  // torn/corrupt tail
    if (!visit(header.tick, updates)) break;
    offset += record_bytes;
  }
  return Status::OK();
}

}  // namespace

StatusOr<LogicalLog::ReplayStats> LogicalLog::Replay(const std::string& path,
                                                     uint64_t from_tick,
                                                     uint64_t up_to_tick,
                                                     StateTable* table) {
  ReplayStats stats;
  Status visit_error;
  TP_RETURN_NOT_OK(ScanLog(
      path, [&](uint64_t tick, const std::vector<CellUpdate>& updates) {
        if (tick > up_to_tick) return false;
        if (tick < from_tick) return true;
        for (const CellUpdate& update : updates) {
          if (update.cell >= table->layout().num_cells()) {
            visit_error =
                Status::Corruption("cell id out of range in logical log");
            return false;
          }
          table->WriteCell(update.cell, update.value);
        }
        ++stats.records_applied;
        stats.last_tick = tick;
        return true;
      }));
  TP_RETURN_NOT_OK(visit_error);
  return stats;
}

StatusOr<uint64_t> LogicalLog::CountDurableTicks(const std::string& path) {
  uint64_t count = 0;
  TP_RETURN_NOT_OK(
      ScanLog(path, [&](uint64_t, const std::vector<CellUpdate>&) {
        ++count;
        return true;
      }));
  return count;
}

StatusOr<LogicalLog::RangeStats> LogicalLog::ScanRange(
    const std::string& path) {
  RangeStats stats;
  TP_RETURN_NOT_OK(
      ScanLog(path, [&](uint64_t tick, const std::vector<CellUpdate>&) {
        if (stats.records == 0) stats.first_tick = tick;
        stats.last_tick = tick;
        ++stats.records;
        return true;
      }));
  return stats;
}

StatusOr<LogicalLog::RangeStats> LogicalLog::CopyRecords(
    const std::string& path, uint64_t from_tick, uint64_t up_to_tick,
    FileWriter* writer) {
  RangeStats stats;
  Status copy_error;
  TP_RETURN_NOT_OK(ScanLog(
      path, [&](uint64_t tick, const std::vector<CellUpdate>& updates) {
        if (tick > up_to_tick) return false;
        if (tick < from_tick) return true;
        RecordHeader header;
        header.magic = kRecordMagic;
        header.count = static_cast<uint32_t>(updates.size());
        header.tick = tick;
        copy_error = writer->Append(&header, sizeof(header));
        if (!copy_error.ok()) return false;
        uint32_t crc = Crc32(&header, sizeof(header));
        if (!updates.empty()) {
          copy_error = writer->Append(updates.data(),
                                      updates.size() * sizeof(CellUpdate));
          if (!copy_error.ok()) return false;
          crc = Crc32(updates.data(), updates.size() * sizeof(CellUpdate),
                      crc);
        }
        copy_error = writer->Append(&crc, sizeof(crc));
        if (!copy_error.ok()) return false;
        if (stats.records == 0) stats.first_tick = tick;
        stats.last_tick = tick;
        ++stats.records;
        return true;
      }));
  TP_RETURN_NOT_OK(copy_error);
  return stats;
}

}  // namespace tickpoint
