// One shard's mutator thread: a ShardRunner owns the shard's Engine and
// drives it with per-tick update batches pulled from a lock-free bounded
// SPSC ring (util/spsc_ring.h), so K shards tick concurrently the way K
// real zone servers would, instead of being multiplexed onto the facade's
// thread.
//
// The facade (ShardedEngine) stays the single producer: it submits one
// ShardTickBatch per fleet tick carrying the tick's updates and the stagger
// scheduler's checkpoint decision. The runner applies batches in order on
// its own thread (the engine's mutator thread in the Engine thread-safety
// contract); the engine's writer thread continues to flush checkpoints
// underneath it, so a K-shard fleet runs 2K threads plus the caller.
//
// The mailbox contract (unchanged from the mutex+cv generation, asserted
// by tests/shard_runner_test.cc):
//   - SubmitTick blocks while the mailbox holds max_queue_ticks batches,
//     so the producer never leads the runner by more than max_queue_ticks
//     queued batches plus the one batch mid-application.
//   - Drain is a barrier: it returns only when every submitted batch has
//     been consumed, and returns the sticky error status.
//   - Stop drains the mailbox before honoring the stop (a barrier, not an
//     abort) and is idempotent.
// All cross-thread state is a handful of atomics: the ring indices, the
// completion counter, the submit signal, the sticky-error flag, and the
// cut-ack slot. Waits (empty mailbox on the consumer; full mailbox and
// Drain on the producer) spin briefly, then park on a std::atomic
// wait/notify word -- the fast path stays lock-free while an idle or
// oversubscribed fleet stays off the CPU (on few cores, a polling
// consumer would otherwise starve the producer it is waiting on).
//
// Failure semantics: the first Engine error is sticky. After it, the
// runner discards later batches (counting them as consumed so Drain/Stop
// never deadlock) and the fleet surfaces the error on its next poll --
// shards never stall mid-tick waiting on a dead sibling.
#ifndef TICKPOINT_ENGINE_SHARD_RUNNER_H_
#define TICKPOINT_ENGINE_SHARD_RUNNER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "engine/replica_buffer.h"
#include "util/spsc_ring.h"

namespace tickpoint {

/// Everything one shard needs to run one tick.
struct ShardTickBatch {
  /// Sentinel for trim_replicas_through: no trim this tick.
  static constexpr uint64_t kNoReplicaTrim = UINT64_MAX;

  /// One replicated peer partition's delta for this tick (replication on:
  /// the facade fans every partition's delta out to its peer's batch).
  struct ReplicaDelta {
    uint32_t partition = 0;
    std::vector<CellUpdate> updates;
  };

  uint64_t tick = 0;
  std::vector<CellUpdate> updates;
  /// Deltas of the partitions this runner hosts replicas FOR, appended to
  /// the hosted ReplicaBuffers before the shard's own tick runs.
  std::vector<ReplicaDelta> replica_updates;
  /// When != kNoReplicaTrim: a consistent cut committed at this tick --
  /// fold every hosted replica's committed batches through it (the
  /// trim-at-cut rule).
  uint64_t trim_replicas_through = kNoReplicaTrim;
  /// Stagger scheduler's decision: begin a checkpoint at this tick's end.
  bool start_checkpoint = false;
  /// Consistent-cut coordinator's decision: this tick is the fleet cut
  /// tick -- the shard must end it with a durable checkpoint at exactly
  /// this tick (Engine::RequestCutCheckpoint semantics). Implies
  /// start_checkpoint.
  bool cut_checkpoint = false;
};

class ShardRunner {
 public:
  /// Invoked once per completed checkpoint, from the runner's mutator
  /// thread (threaded mode) or the caller's thread (inline mode):
  /// (shard id, the finished record, tick at whose end it finished). Used
  /// to feed measured write times back into the adaptive stagger.
  using CheckpointObserver = std::function<void(
      uint32_t shard, const EngineCheckpointRecord& record,
      uint64_t completion_tick)>;

  /// One shard's durable consistent-cut acknowledgement: published by the
  /// runner the moment its cut checkpoint record lands -- inside the cut
  /// tick's EndTick under the sync IO backend, at a later tick's reap
  /// under the async backend -- folded wait-free by the cut coordinator
  /// (no runner barrier, no shared mutex).
  struct CutAck {
    uint64_t checkpoint_seq = 0;
    uint64_t consistent_ticks = 0;
    /// Mutator block inside the cut tick's EndTick.
    double stall_seconds = 0.0;
  };

  /// Takes ownership of `engine`. threaded=true spawns the mutator thread;
  /// threaded=false applies batches synchronously on the submitting thread
  /// (the PR-1 facade behavior, kept for comparison benches and
  /// deterministic tests). `max_queue_ticks` bounds the mailbox: SubmitTick
  /// blocks while the shard lags that many ticks behind the producer.
  ShardRunner(uint32_t shard_id, std::unique_ptr<Engine> engine,
              bool threaded, uint64_t max_queue_ticks,
              CheckpointObserver observer);

  /// Stops the mutator thread (draining the mailbox first). Does NOT shut
  /// down the engine -- the owner decides between Shutdown and
  /// SimulateCrash.
  ~ShardRunner();

  ShardRunner(const ShardRunner&) = delete;
  ShardRunner& operator=(const ShardRunner&) = delete;

  /// Hands the runner one tick's batch. Ticks must be submitted in order.
  /// Threaded: enqueues (blocking on a full mailbox) and returns; inline:
  /// applies before returning.
  void SubmitTick(ShardTickBatch batch);

  /// Blocks until every submitted batch is consumed, then returns the
  /// sticky error status. The barrier behind fleet-consistent operations
  /// (Shutdown, SimulateCrash, stats snapshots).
  Status Drain();

  /// Drains and joins the mutator thread. Idempotent; implied by the
  /// destructor. After Stop, engine() may be used from any thread.
  void Stop();

  /// Cheap poll: has the sticky error fired? (atomic, no lock)
  bool has_error() const {
    return has_error_.load(std::memory_order_acquire);
  }
  /// The sticky first error. (Written once by the runner before the
  /// has_error_ release-store, so reading it after an acquire-load of
  /// has_error_ is race-free.)
  Status status() const;

  uint32_t shard_id() const { return shard_id_; }
  /// Ticks fully applied (not merely submitted).
  uint64_t ticks_completed() const {
    return ticks_completed_.load(std::memory_order_acquire);
  }
  /// Ticks handed to SubmitTick so far. Producer-thread state: callable
  /// only from the submitting thread, like SubmitTick itself. Paired with
  /// ticks_completed() it is the coordinator's idleness test (completed >=
  /// submitted means the runner is parked on an empty mailbox).
  uint64_t ticks_submitted() const { return ticks_submitted_; }

  /// Sentinel for "no cut armed / pending".
  static constexpr uint64_t kNoCutTick = UINT64_MAX;

  /// Arms the cut-ack slot for the cut at `cut_tick` and resets it. Called
  /// by the coordinator's thread strictly before the cut tick's batch is
  /// submitted (the ring's release/acquire pair orders the arm before any
  /// runner can observe the cut batch). The runner publishes an ack only
  /// while its pending cut matches the armed tick, so the record of a cut
  /// the coordinator already force-reaped can never masquerade as a later
  /// cut's ack.
  void ArmCutAck(uint64_t cut_tick) {
    armed_cut_tick_.store(cut_tick, std::memory_order_relaxed);
    cut_acked_.store(false, std::memory_order_release);
  }
  /// Disarms the slot once the coordinator folded (or synthesized) this
  /// shard's ack. Same calling contract as ArmCutAck: the store is ordered
  /// before any later batch by the ring's release/acquire pair, so a
  /// runner still holding a stale pending cut drops it silently instead of
  /// re-publishing.
  void DisarmCutAck() {
    armed_cut_tick_.store(kNoCutTick, std::memory_order_release);
  }
  /// Has this shard's cut checkpoint landed? (acquire: a true result
  /// makes the cut_ack() fields visible)
  bool cut_acked() const {
    return cut_acked_.load(std::memory_order_acquire);
  }
  /// Valid once cut_acked() returned true.
  const CutAck& cut_ack() const { return cut_ack_; }

  /// The owned engine. Per the Engine thread-safety contract, callers may
  /// touch it only while the runner is quiesced (after Drain/Stop, or
  /// inline mode).
  Engine& engine() { return *engine_; }
  const Engine& engine() const { return *engine_; }

  // ---- Replica hosting (replication on; see replica_buffer.h) ----

  /// Adopts a replica buffer this runner will feed from its batches'
  /// replica_updates. Facade thread, quiesced runner only (construction or
  /// failover): the mailbox's release/acquire pair orders the adoption
  /// before any later batch the mutator thread can consume.
  void HostReplica(std::unique_ptr<ReplicaBuffer> buffer) {
    replicas_.push_back(std::move(buffer));
  }
  /// The hosted replica of `partition`, or nullptr. Same quiesced-access
  /// contract as engine() when called from the facade thread.
  ReplicaBuffer* replica(uint32_t partition) {
    for (auto& buffer : replicas_) {
      if (buffer->partition() == partition) return buffer.get();
    }
    return nullptr;
  }
  /// Every hosted replica (quiesced access only).
  const std::vector<std::unique_ptr<ReplicaBuffer>>& replicas() const {
    return replicas_;
  }

 private:
  void ThreadMain();
  /// BeginTick + updates + checkpoint request + EndTick on the engine;
  /// records the sticky error, publishes the cut ack, and reports
  /// finished checkpoints.
  void ProcessBatch(const ShardTickBatch& batch);

  const uint32_t shard_id_;
  const bool threaded_;
  std::unique_ptr<Engine> engine_;
  CheckpointObserver observer_;
  size_t checkpoints_reported_ = 0;  // mutator thread only
  /// Replicas of peer partitions this shard hosts. The vector is mutated
  /// only while the runner is quiesced (see HostReplica); the mutator
  /// thread touches the buffers only inside ProcessBatch.
  std::vector<std::unique_ptr<ReplicaBuffer>> replicas_;

  SpscRing<ShardTickBatch> mailbox_;
  uint64_t ticks_submitted_ = 0;  // producer thread only
  std::atomic<bool> stop_{false};

  /// Futex words. 32-bit on purpose: libstdc++ waits on a futex-sized
  /// atomic directly, where a 64-bit word goes through the shared
  /// 16-bucket proxy pool -- a measurable cost with 2K+1 threads parking
  /// (wraparound is harmless; the words are only compared by wait).
  ///
  /// The consumer parks on submit_signal_ when the mailbox is empty:
  /// bumped (then notified) after every push and by Stop. The consumer
  /// re-checks the mailbox between reading it and waiting, so a push in
  /// that window cannot be missed.
  std::atomic<uint32_t> submit_signal_{0};
  /// A full-mailbox SubmitTick parks on slots_signal_: bumped (then
  /// notified) right after the pop that frees the slot -- not after the
  /// batch is processed, so backpressure wakes a whole batch earlier.
  std::atomic<uint32_t> slots_signal_{0};
  /// Drain parks on drain_gen_, notified exactly once: the producer
  /// announces its target in drain_target_ before waiting, and the
  /// consumer bumps drain_gen_ only when the completion count reaches it.
  /// The seq_cst store/load pairs around drain_target_/ticks_completed_
  /// (a Dekker handshake) guarantee that either the consumer sees the
  /// target or the producer's re-check sees the completion.
  std::atomic<uint32_t> drain_gen_{0};
  std::atomic<uint64_t> drain_target_{0};

  std::atomic<uint64_t> ticks_completed_{0};
  std::atomic<bool> has_error_{false};
  Status first_error_;  // written once before the has_error_ release

  CutAck cut_ack_;  // written before the cut_acked_ release
  std::atomic<bool> cut_acked_{false};
  /// The cut tick the coordinator armed (kNoCutTick when none). Written by
  /// the coordinator's thread, acquire-read by the runner before it
  /// publishes an ack.
  std::atomic<uint64_t> armed_cut_tick_{kNoCutTick};
  /// The cut this runner still owes an ack for (kNoCutTick when none).
  /// Mutator thread only: set when the cut batch is processed, cleared
  /// when its record is found (async backends finalize the record at a
  /// later tick's EndTick, so the scan repeats each tick until then).
  uint64_t pending_cut_tick_ = kNoCutTick;

  std::thread thread_;
};

}  // namespace tickpoint

#endif  // TICKPOINT_ENGINE_SHARD_RUNNER_H_
