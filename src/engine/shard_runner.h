// One shard's mutator thread: a ShardRunner owns the shard's Engine and
// drives it with per-tick update batches pulled from a mutex+cv mailbox, so
// K shards tick concurrently the way K real zone servers would, instead of
// being multiplexed onto the facade's thread.
//
// The facade (ShardedEngine) stays the single producer: it submits one
// ShardTickBatch per fleet tick carrying the tick's updates and the stagger
// scheduler's checkpoint decision. The runner applies batches in order on
// its own thread (the engine's mutator thread in the Engine thread-safety
// contract); the engine's writer thread continues to flush checkpoints
// underneath it, so a K-shard fleet runs 2K threads plus the caller.
//
// Failure semantics: the first Engine error is sticky. After it, the
// runner discards later batches (counting them as consumed so Drain/Stop
// never deadlock) and the fleet surfaces the error on its next poll --
// shards never stall mid-tick waiting on a dead sibling.
#ifndef TICKPOINT_ENGINE_SHARD_RUNNER_H_
#define TICKPOINT_ENGINE_SHARD_RUNNER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/engine.h"

namespace tickpoint {

/// Everything one shard needs to run one tick.
struct ShardTickBatch {
  uint64_t tick = 0;
  std::vector<CellUpdate> updates;
  /// Stagger scheduler's decision: begin a checkpoint at this tick's end.
  bool start_checkpoint = false;
  /// Consistent-cut coordinator's decision: this tick is the fleet cut
  /// tick -- the shard must end it with a durable checkpoint at exactly
  /// this tick (Engine::RequestCutCheckpoint semantics). Implies
  /// start_checkpoint.
  bool cut_checkpoint = false;
};

class ShardRunner {
 public:
  /// Invoked once per completed checkpoint, from the runner's mutator
  /// thread (threaded mode) or the caller's thread (inline mode):
  /// (shard id, the finished record, tick at whose end it finished). Used
  /// to feed measured write times back into the adaptive stagger.
  using CheckpointObserver = std::function<void(
      uint32_t shard, const EngineCheckpointRecord& record,
      uint64_t completion_tick)>;

  /// Takes ownership of `engine`. threaded=true spawns the mutator thread;
  /// threaded=false applies batches synchronously on the submitting thread
  /// (the PR-1 facade behavior, kept for comparison benches and
  /// deterministic tests). `max_queue_ticks` bounds the mailbox: SubmitTick
  /// blocks while the shard lags that many ticks behind the producer.
  ShardRunner(uint32_t shard_id, std::unique_ptr<Engine> engine,
              bool threaded, uint64_t max_queue_ticks,
              CheckpointObserver observer);

  /// Stops the mutator thread (draining the mailbox first). Does NOT shut
  /// down the engine -- the owner decides between Shutdown and
  /// SimulateCrash.
  ~ShardRunner();

  ShardRunner(const ShardRunner&) = delete;
  ShardRunner& operator=(const ShardRunner&) = delete;

  /// Hands the runner one tick's batch. Ticks must be submitted in order.
  /// Threaded: enqueues (blocking on a full mailbox) and returns; inline:
  /// applies before returning.
  void SubmitTick(ShardTickBatch batch);

  /// Blocks until every submitted batch is consumed, then returns the
  /// sticky error status. The barrier behind fleet-consistent operations
  /// (Shutdown, SimulateCrash, stats snapshots).
  Status Drain();

  /// Drains and joins the mutator thread. Idempotent; implied by the
  /// destructor. After Stop, engine() may be used from any thread.
  void Stop();

  /// Cheap poll: has the sticky error fired? (relaxed atomic, no lock)
  bool has_error() const {
    return has_error_.load(std::memory_order_acquire);
  }
  /// The sticky first error.
  Status status() const;

  uint32_t shard_id() const { return shard_id_; }
  /// Ticks fully applied (not merely submitted).
  uint64_t ticks_completed() const {
    return ticks_completed_.load(std::memory_order_acquire);
  }

  /// The owned engine. Per the Engine thread-safety contract, callers may
  /// touch it only while the runner is quiesced (after Drain/Stop, or
  /// inline mode).
  Engine& engine() { return *engine_; }
  const Engine& engine() const { return *engine_; }

 private:
  void ThreadMain();
  /// BeginTick + updates + checkpoint request + EndTick on the engine;
  /// records the sticky error and reports finished checkpoints.
  void ProcessBatch(const ShardTickBatch& batch);

  const uint32_t shard_id_;
  const bool threaded_;
  const uint64_t max_queue_ticks_;
  std::unique_ptr<Engine> engine_;
  CheckpointObserver observer_;
  size_t checkpoints_reported_ = 0;  // mutator thread only

  mutable std::mutex mu_;
  std::condition_variable batch_ready_cv_;  // signals the mutator thread
  std::condition_variable batch_done_cv_;   // signals producer/Drain
  std::deque<ShardTickBatch> mailbox_;
  uint64_t ticks_submitted_ = 0;
  bool stop_ = false;
  Status first_error_;  // guarded by mu_

  std::atomic<uint64_t> ticks_completed_{0};
  std::atomic<bool> has_error_{false};
  std::thread thread_;
};

}  // namespace tickpoint

#endif  // TICKPOINT_ENGINE_SHARD_RUNNER_H_
