// Fleet-wide consistent cut (ROADMAP cross-shard consistency item; the
// MMO-fleet extension of the paper's per-shard exactness guarantee).
//
// The staggered schedule deliberately leaves the K shards at DIFFERENT
// checkpoint generations, which is perfect for steady-state disk bandwidth
// and useless for zone migration or a whole-world snapshot: those need
// every shard's durable state at the SAME tick. The coordinator runs a
// two-phase protocol on top of the existing per-shard machinery:
//
//   Phase 1 (prepare): the coordinator picks a cut tick T a few ticks
//   ahead of the fleet tick. Every ShardRunner drains its mailbox up to T
//   and checkpoints at exactly T -- overriding the stagger schedule for
//   that one generation -- so each shard ends tick T with a durable image
//   whose consistent tick is exactly T + 1. The shard's ack is the
//   completed cut checkpoint record.
//
//   Phase 2 (commit): only after ALL shards acked does the coordinator
//   write the fleet-level cut manifest (shard count, per-shard checkpoint
//   seq, CRC) with an atomic tmp+rename publish. A crash anywhere before
//   the rename -- including between the last shard ack and the commit --
//   leaves no committed manifest, and recovery falls back to per-shard
//   exact recovery as if no cut had been attempted.
//
// The manifest is what makes Fleet::RecoverToCut possible: it pins the
// fleet to tick T even when later staggered checkpoints exist on disk.
#ifndef TICKPOINT_ENGINE_CONSISTENT_CUT_H_
#define TICKPOINT_ENGINE_CONSISTENT_CUT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace tickpoint {

/// One shard's ack in a committed cut: the checkpoint that carries the
/// shard's state at the cut.
struct CutShardRecord {
  /// Sequence number of the shard's cut checkpoint.
  uint64_t checkpoint_seq = 0;
  /// Ticks whose effects the cut image contains: always cut_tick + 1.
  uint64_t consistent_ticks = 0;
};

/// The committed fleet-level cut: every shard holds a durable checkpoint
/// at exactly `cut_tick`.
struct CutManifest {
  uint64_t cut_tick = 0;
  /// Indexed by shard id; size is the fleet's shard count.
  std::vector<CutShardRecord> shards;
};

/// Path of the cut manifest under the fleet root directory.
std::string CutManifestPath(const std::string& root);

/// Atomically publishes `manifest` as the committed cut: writes a temp
/// file (fsynced when `fsync` is set), then renames it over the manifest
/// path. At most one committed manifest exists; a newer cut replaces it.
Status WriteCutManifest(const std::string& root, const CutManifest& manifest,
                        bool fsync);

/// Reads the committed manifest. NotFound when no cut was ever committed;
/// Corruption when the file is torn or fails its CRC (callers treat both
/// as "no committed cut" and fall back to per-shard recovery).
StatusOr<CutManifest> ReadCutManifest(const std::string& root);

/// The coordinator state machine, driven entirely from the fleet facade's
/// caller thread (no internal locking). ShardedEngine owns one and
/// consults it every EndTick.
class ConsistentCutCoordinator {
 public:
  ConsistentCutCoordinator(std::string root, uint32_t num_shards, bool fsync)
      : root_(std::move(root)), num_shards_(num_shards), fsync_(fsync) {}

  /// Phase 1 start: picks T = current_tick + lead_ticks and arms the cut.
  /// At most one cut may be in flight.
  StatusOr<uint64_t> Arm(uint64_t current_tick, uint64_t lead_ticks) {
    if (armed_) {
      return Status::FailedPrecondition(
          "a consistent cut is already in flight (tick " +
          std::to_string(cut_tick_) + ")");
    }
    armed_ = true;
    cut_tick_ = current_tick + lead_ticks;
    return cut_tick_;
  }

  bool armed() const { return armed_; }
  uint64_t cut_tick() const { return cut_tick_; }

  /// True while the stagger scheduler must stand down: from arming through
  /// the cut tick itself, so no regular checkpoint start can collide with
  /// (or delay) the cut generation. The fixed schedule resumes by itself
  /// after T; adaptive plans are realigned by the facade.
  bool SuppressesScheduledStart(uint64_t tick) const {
    return armed_ && tick <= cut_tick_;
  }

  /// True exactly when `tick` is the armed cut tick.
  bool IsCutTick(uint64_t tick) const { return armed_ && tick == cut_tick_; }

  /// Phase 2: all shards acked; publishes the manifest and disarms. `acks`
  /// must hold one record per shard in shard order.
  Status Commit(const std::vector<CutShardRecord>& acks) {
    if (!armed_) {
      return Status::FailedPrecondition("no consistent cut armed");
    }
    armed_ = false;
    if (acks.size() != num_shards_) {
      return Status::Internal("cut commit with " +
                              std::to_string(acks.size()) + " acks for " +
                              std::to_string(num_shards_) + " shards");
    }
    CutManifest manifest;
    manifest.cut_tick = cut_tick_;
    manifest.shards = acks;
    return WriteCutManifest(root_, manifest, fsync_);
  }

  /// Abandons an armed cut without committing (fleet failure mid-cut).
  void Disarm() { armed_ = false; }

 private:
  std::string root_;
  uint32_t num_shards_;
  bool fsync_;
  bool armed_ = false;
  uint64_t cut_tick_ = 0;
};

}  // namespace tickpoint

#endif  // TICKPOINT_ENGINE_CONSISTENT_CUT_H_
