#include "engine/fleet.h"

#include <filesystem>
#include <utility>

#include "engine/paths.h"

namespace tickpoint {
namespace {

/// True when `root` holds shard directories from a pre-manifest fleet
/// (created before fleets wrote a superblock): data Create must refuse
/// to clobber even though no manifest announces it.
bool HasShardDirs(const std::string& root) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root, ec)) {
    uint32_t slot = 0;
    if (paths::ParseShardDirName(entry.path().filename().string(), &slot)) {
      return true;
    }
  }
  return false;
}

}  // namespace

StatusOr<std::unique_ptr<Fleet>> RecoveredFleet::Resume() {
  const ShardedEngineConfig config = ConfigFromManifest(manifest_, root_);
  // A point-in-time landing resumes as a NEW fleet epoch (committed after
  // every bootstrap is durable): the old timeline's future generations are
  // retired inside each Engine::OpenResumed, and the epoch bump is the
  // fleet-wide commit point of the new timeline.
  TP_ASSIGN_OR_RETURN(
      auto engine,
      ShardedEngine::OpenResumed(config, tables_, resume_tick(),
                                 /*bump_epoch=*/at_tick_));
  return std::unique_ptr<Fleet>(new Fleet(root_, std::move(engine)));
}

StatusOr<std::unique_ptr<Fleet>> Fleet::Create(
    const std::string& root, const ShardedEngineConfig& config) {
  if (!config.shard.dir.empty() && config.shard.dir != root) {
    return Status::InvalidArgument(
        "Fleet::Create: config.shard.dir (" + config.shard.dir +
        ") disagrees with root (" + root + "); leave it empty");
  }
  if (!ListFleetManifestEpochs(root).empty()) {
    return Status::FailedPrecondition(
        root + " already holds a fleet manifest; Fleet::Create never "
               "clobbers an existing fleet (use Fleet::Open)");
  }
  if (HasShardDirs(root)) {
    // Shard dirs with NO manifest: a pre-manifest fleet (whose durable
    // state a "creation" must not truncate) or a Create interrupted
    // before its manifest commit. Either way refuse -- data safety wins
    // -- and name the remedies, since Fleet::Open cannot serve this root
    // (NotFound: no superblock).
    return Status::FailedPrecondition(
        root + " holds shard directories but no fleet manifest (a "
               "pre-manifest fleet, or an interrupted Fleet::Create); "
               "Fleet::Create never clobbers existing shard data. Remove "
               "the shard-* directories to discard them and re-run "
               "Create");
  }
  ShardedEngineConfig create_config = config;
  create_config.shard.dir = root;
  TP_ASSIGN_OR_RETURN(auto engine, ShardedEngine::Open(create_config));
  return std::unique_ptr<Fleet>(new Fleet(root, std::move(engine)));
}

StatusOr<std::unique_ptr<Fleet>> Fleet::Open(const std::string& root) {
  TP_ASSIGN_OR_RETURN(RecoveredFleet recovered, Recover(root));
  return recovered.Resume();
}

StatusOr<RecoveredFleet> Fleet::Recover(const std::string& root) {
  RecoveredFleet recovered;
  recovered.root_ = root;
  TP_ASSIGN_OR_RETURN(FleetRecoveryOutcome outcome,
                      RecoverFleet(root, &recovered.tables_));
  recovered.manifest_ = std::move(outcome.manifest);
  recovered.result_ = std::move(outcome.result);
  return recovered;
}

Status Fleet::EndTick() {
  TP_RETURN_NOT_OK(engine_->EndTick());
  if (rebalancer_ != nullptr) {
    return rebalancer_->OnTickBoundary(engine_.get());
  }
  return Status::OK();
}

Status Fleet::EnableAutoRebalance(const RebalancePolicy& policy) {
  if (!policy.Valid()) {
    return Status::InvalidArgument(
        "invalid RebalancePolicy (imbalance_ratio must exceed 1, "
        "hysteresis_ticks must be positive, ewma_alpha in (0, 1])");
  }
  rebalancer_ = std::make_unique<Rebalancer>(policy);
  return Status::OK();
}

StatusOr<RecoveredFleet> Fleet::RecoverToCut(const std::string& root) {
  RecoveredFleet recovered;
  recovered.root_ = root;
  TP_ASSIGN_OR_RETURN(FleetRecoveryOutcome outcome,
                      RecoverFleetToCut(root, &recovered.tables_));
  recovered.manifest_ = std::move(outcome.manifest);
  recovered.result_ = std::move(outcome.result);
  return recovered;
}

StatusOr<RecoveredFleet> Fleet::RecoverToTick(const std::string& root,
                                              uint64_t tick) {
  RecoveredFleet recovered;
  recovered.root_ = root;
  recovered.target_tick_ = tick;
  TP_ASSIGN_OR_RETURN(FleetRecoveryOutcome outcome,
                      RecoverFleetToTick(root, tick, &recovered.tables_));
  recovered.manifest_ = std::move(outcome.manifest);
  recovered.result_ = std::move(outcome.result);
  recovered.at_tick_ = recovered.result_.used_manifest;
  return recovered;
}

StatusOr<HistoryWindow> Fleet::RestorableWindow(const std::string& root) {
  return RestorableFleetWindow(root);
}

}  // namespace tickpoint
