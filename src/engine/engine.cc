#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <filesystem>

#include "engine/checkpoint_session.h"
#include "engine/paths.h"
#include "util/crc32.h"

namespace tickpoint {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// A fresh Open starts a NEW incarnation: its logical log is truncated, so
// any checkpoint a previous process left in `dir` -- whatever disk
// organization wrote it -- would recover with the ticks between its
// consistent tick and this run's start silently missing. Wipe them before
// the stores open. (The resume path must NOT wipe: OpenResumed loads the
// recovered state first and then outranks + retires the stale files in
// WriteBootstrapCheckpoint.)
Status RemoveStaleCheckpointFiles(const std::string& dir) {
  std::error_code exists_ec;
  if (!std::filesystem::exists(dir, exists_ec)) return Status::OK();
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    uint64_t gen = 0;
    const bool backup_image = name == BackupStore::ImageFileName(0) ||
                              name == BackupStore::ImageFileName(1) ||
                              name == paths::DoublewriteFileName();
    if (backup_image || LogStore::ParseGenerationFileName(name, &gen)) {
      TP_RETURN_NOT_OK(RemoveFileIfExists(entry.path().string()));
    }
  }
  if (ec) {
    return Status::IOError("list " + dir + ": " + ec.message());
  }
  // A previous incarnation's history describes a timeline this fresh
  // incarnation abandons wholesale.
  std::error_code history_ec;
  std::filesystem::remove_all(paths::HistoryDir(dir), history_ec);
  if (history_ec) {
    return Status::IOError("remove " + paths::HistoryDir(dir) + ": " +
                           history_ec.message());
  }
  return Status::OK();
}

}  // namespace

std::string Engine::LogicalLogPath(const std::string& dir) {
  return paths::LogicalLogPath(dir);
}

Engine::Engine(const EngineConfig& config)
    : config_(config),
      traits_(GetTraits(config.algorithm)),
      state_(config.layout),
      dirty_{AtomicBitMap(config.layout.num_objects()),
             AtomicBitMap(config.layout.num_objects())},
      write_set_(config.layout.num_objects()),
      copied_(config.layout.num_objects()),
      locks_(config.layout.num_objects()),
      aux_(state_.buffer_bytes()) {}

StatusOr<std::unique_ptr<Engine>> Engine::Open(const EngineConfig& config) {
  if (!config.layout.Valid()) {
    return Status::InvalidArgument("invalid state layout");
  }
  if (config.dir.empty()) {
    return Status::InvalidArgument("EngineConfig.dir must be set");
  }
  TP_RETURN_NOT_OK(RemoveStaleCheckpointFiles(config.dir));
  std::unique_ptr<Engine> engine(new Engine(config));
  TP_RETURN_NOT_OK(engine->OpenStores());
  if (engine->history_ != nullptr) {
    // Archive the zeroed birth state as generation 0 (consistent tick 0):
    // the restorable window is well-defined from the first tick, and a
    // RecoverToTick aimed before the first checkpoint has a base image.
    TP_RETURN_NOT_OK(engine->history_->RecordGeneration(engine->state_, 0));
  }
  TP_RETURN_NOT_OK(engine->StartLogicalLogAndWriter());
  return engine;
}

StatusOr<std::unique_ptr<Engine>> Engine::OpenResumed(
    const EngineConfig& config, const StateTable& initial,
    uint64_t first_tick) {
  if (initial.layout().num_objects() != config.layout.num_objects()) {
    return Status::InvalidArgument("initial state layout mismatch");
  }
  std::unique_ptr<Engine> engine(new Engine(config));
  std::memcpy(engine->state_.mutable_data(), initial.data(),
              initial.buffer_bytes());
  engine->tick_ = first_tick;
  // Ordering is the crash-safety argument for a death DURING OpenResumed:
  // the bootstrap must be durable before the previous incarnation's
  // logical log is truncated. Die before the bootstrap commits and the old
  // (log, checkpoints) pair is untouched -- recovery repeats verbatim; die
  // after it and the bootstrap is the newest image, so recovery lands on
  // the resume tick whether or not the old log was truncated yet.
  TP_RETURN_NOT_OK(engine->OpenStores());
  if (engine->history_ != nullptr) {
    // Point-in-time history maintenance, BEFORE the live log is truncated
    // by StartLogicalLogAndWriter and before the bootstrap outranks the
    // old images: retire the divergent future (generations/segment ticks
    // at or past the resume tick must never shadow the new timeline), then
    // archive the surviving prefix of the old incarnation's live log --
    // the records history needs to bridge its newest generation up to the
    // resume point. Both are idempotent, and a crash anywhere in here
    // leaves the old stores authoritative (recovery repeats verbatim).
    TP_RETURN_NOT_OK(engine->history_->TruncateAbove(first_tick));
    if (first_tick > 0) {
      TP_RETURN_NOT_OK(engine->history_->ArchiveLiveLog(
          LogicalLogPath(config.dir), first_tick - 1));
    }
  }
  TP_RETURN_NOT_OK(engine->WriteBootstrapCheckpoint());
  TP_RETURN_NOT_OK(engine->StartLogicalLogAndWriter());
  return engine;
}

Status Engine::WriteBootstrapCheckpoint() {
  // Synchronously persist the resumed state as the bootstrap checkpoint so
  // that a crash at any later point recovers from (bootstrap image + new
  // logical log). consistent_ticks = tick_: the image contains everything
  // up to but not including the first tick this engine will run.
  //
  // The directory still holds the previous incarnation's checkpoints, and
  // they are POISON from here on: Init() already truncated the logical
  // log, so any pre-crash image would recover with the ticks between its
  // consistent tick and the resume tick missing. The bootstrap therefore
  // claims a seq/generation strictly above everything on disk and retires
  // the stale state, so recovery can never prefer it. (This ordering --
  // bootstrap durable first, stale state demoted second -- was the dribble
  // resume flake: the bootstrap used to restart generation numbering at 0
  // and lose recovery's newest-generation race to its own past.)
  const uint64_t n = config_.layout.num_objects();
  if (traits_.disk == DiskOrganization::kDoubleBackup) {
    uint64_t bootstrap_seq = 0;
    for (int index = 0; index < 2; ++index) {
      TP_ASSIGN_OR_RETURN(const ImageInfo info, backup_->Inspect(index));
      if (info.valid) bootstrap_seq = std::max(bootstrap_seq, info.seq + 1);
    }
    checkpoint_seq_ = bootstrap_seq + 1;
    TP_RETURN_NOT_OK(backup_->BeginCheckpoint(0));
    TP_RETURN_NOT_OK(backup_->WriteRange(0, 0, state_.data(), n));
    const uint32_t crc =
        config_.checksum_state ? state_.Digest() : 0;
    TP_RETURN_NOT_OK(backup_->FinishCheckpoint(0, bootstrap_seq, tick_, crc));
    // Invalidate the stale sibling only after the bootstrap is durable: a
    // fallback to it would silently skip the ticks the truncated logical
    // log no longer carries.
    TP_RETURN_NOT_OK(backup_->BeginCheckpoint(1));
    backup_written_[0] = true;
    next_backup_ = 1;
  } else {
    checkpoint_seq_ = 1;
    const uint64_t gen = log_->NextFreshGeneration();
    TP_RETURN_NOT_OK(log_->BeginGeneration(gen));
    TP_RETURN_NOT_OK(log_->BeginSegment(0, tick_, /*full_flush=*/true, n));
    for (ObjectId o = 0; o < n; ++o) {
      TP_RETURN_NOT_OK(log_->AppendObject(o, state_.ObjectData(o)));
    }
    TP_RETURN_NOT_OK(log_->CommitSegment());
    // Every stale generation dies now, not lazily: DropGenerationsBefore
    // only sweeps a small window behind each new generation, which would
    // leave high-numbered pre-crash generations shadowing this run's until
    // its counter caught up.
    TP_RETURN_NOT_OK(log_->DropAllGenerationsBefore(gen));
    next_log_gen_ = gen + 1;
    log_started_ = true;
  }
  if (history_ != nullptr) {
    // The resumed state is durable: record it as this incarnation's base
    // generation (RecordGeneration skips it when the previous timeline
    // already holds a generation at this tick).
    TP_RETURN_NOT_OK(history_->RecordGeneration(state_, tick_));
  }
  return Status::OK();
}

Status Engine::OpenStores() {
  TP_RETURN_NOT_OK(EnsureDirectory(config_.dir));
  // One backend per engine: only the writer thread submits checkpoint
  // writes, so a single bounded queue is the whole pipeline.
  io_backend_ = IoBackend::Create(config_.io_backend);
  if (traits_.disk == DiskOrganization::kDoubleBackup) {
    TP_ASSIGN_OR_RETURN(
        backup_, BackupStore::Open(config_.dir, config_.layout, config_.fsync,
                                   io_backend_.get()));
  } else {
    TP_ASSIGN_OR_RETURN(
        log_, LogStore::Open(config_.dir, config_.layout, config_.fsync));
  }
  if (config_.retention.enabled) {
    TP_ASSIGN_OR_RETURN(history_,
                        ShardHistory::Open(config_.dir, config_.layout,
                                           config_.retention, config_.fsync));
  }
  return Status::OK();
}

Status Engine::StartLogicalLogAndWriter() {
  // Creating the logical log TRUNCATES any previous one: from this point
  // the checkpoint store is the only durable source for pre-resume ticks
  // (see the ordering note in OpenResumed).
  TP_ASSIGN_OR_RETURN(logical_,
                      LogicalLog::Create(LogicalLogPath(config_.dir),
                                         config_.logical_sync_every));
  writer_ = std::thread([this] { WriterMain(); });
  return Status::OK();
}

Engine::~Engine() {
  if (!shut_down_) {
    // Best effort; errors are reported through Shutdown in normal use.
    (void)Shutdown();
  }
}

void Engine::BeginTick() {
  TP_CHECK(!in_tick_ && !shut_down_);
  in_tick_ = true;
}

void Engine::ApplyUpdate(uint32_t cell, int32_t value) {
  TP_DCHECK(in_tick_);
  TP_DCHECK(cell < config_.layout.num_cells());
  HandleUpdate(config_.layout.ObjectOfCell(cell));
  state_.WriteCell(cell, value);
  tick_updates_.push_back(CellUpdate{cell, value});
  ++metrics_.updates;
}

void Engine::HandleUpdate(ObjectId object) {
  // Naive-Snapshot: no per-update work at all (Table 2: No-op).
  if (traits_.kind == AlgorithmKind::kNaiveSnapshot) return;

  if (traits_.dirty_only) {
    if (traits_.disk == DiskOrganization::kDoubleBackup) {
      dirty_[0].Set(object);
      dirty_[1].Set(object);
    } else {
      dirty_[0].Set(object);
    }
  }

  if (!active_job_ || !active_job_->cou_mode) return;
  const bool member =
      active_job_->all_objects || write_set_.Test(object);
  if (!member || copied_.Test(object)) return;

  // First touch of an unflushed member: save the pre-image before the
  // update lands. The bit may flip while we wait for the lock (the writer
  // reached the object first); re-check under the lock.
  const auto t0 = Clock::now();
  {
    ObjectLockGuard guard(&locks_, object);
    if (!copied_.Test(object)) {
      state_.CopyObjectTo(object,
                          aux_.data() + object * config_.layout.object_size);
      copied_.Set(object);
      ++metrics_.cou_copies;
    }
  }
  tick_cou_seconds_ += SecondsSince(t0);
}

Status Engine::EndTick() {
  TP_CHECK(in_tick_);
  in_tick_ = false;

  if (!injected_end_tick_error_.ok()) {
    // Fail before the logical append and the tick advance: this tick's
    // updates are lost and the engine freezes at the current tick (a later
    // Shutdown/SimulateCrash still works).
    Status injected = std::move(injected_end_tick_error_);
    injected_end_tick_error_ = Status::OK();
    tick_updates_.clear();
    tick_cou_seconds_ = 0.0;
    return injected;
  }

  // Group-commit the tick's logical updates.
  TP_RETURN_NOT_OK(logical_->AppendTick(tick_, tick_updates_));
  tick_updates_.clear();

  double pause = 0.0;
  if (!crashed_.load(std::memory_order_acquire)) {
    if (active_job_ && job_done_.load(std::memory_order_acquire)) {
      TP_RETURN_NOT_OK(writer_status_);
      FinalizeJob();
    }
    const bool cut_now = cut_checkpoint_requested_.exchange(
        false, std::memory_order_acq_rel);
    if (cut_now) {
      // Consistent-cut checkpoint: unlike the deferrable manual request,
      // the cut MUST cover exactly this tick. Drain whatever flush is
      // still in flight, then start the cut checkpoint at this tick.
      const auto stall_start = Clock::now();
      if (active_job_) {
        WaitForJobDone();
        TP_RETURN_NOT_OK(writer_status_);
        FinalizeJob();
      }
      TP_ASSIGN_OR_RETURN(pause, StartCheckpoint(/*cut=*/true));
      last_start_tick_ = tick_;
      if (config_.io_backend == IoBackendKind::kSync) {
        // Sync backend: block until the cut image is durable; the whole
        // block is the mutator stall the fleet bench reports.
        WaitForJobDone();
        TP_RETURN_NOT_OK(writer_status_);
        active_job_->cut_stall_seconds = SecondsSince(stall_start);
        // The stall subsumes any eager-copy pause: report the whole block
        // as this tick's overhead.
        pause = active_job_->cut_stall_seconds;
        FinalizeJob();
      } else {
        // Async pipeline: StartCheckpoint took the tick-T snapshot (the
        // COW rule -- eager copy or cleared copy-bits), so the image's
        // content is already decided; the write itself completes on the
        // writer thread and is reaped at a later tick boundary (or by
        // CompletePendingCheckpoint). The mutator-visible stall is the
        // drain + snapshot only -- never the disk.
        active_job_->cut_stall_seconds = SecondsSince(stall_start);
        pause = active_job_->cut_stall_seconds;
      }
    }
    const bool interval_elapsed =
        checkpoint_seq_ == 0 ||
        tick_ >= last_start_tick_ + config_.checkpoint_interval_ticks;
    if (!cut_now && !active_job_) {
      // Consume the manual request atomically only when a checkpoint can
      // actually start: a request racing in from another thread is either
      // claimed by this exchange or stays pending for the next EndTick,
      // never silently dropped.
      const bool want_start =
          config_.manual_checkpoints
              ? checkpoint_requested_.exchange(false,
                                               std::memory_order_acq_rel)
              : interval_elapsed;
      if (want_start) {
        TP_ASSIGN_OR_RETURN(pause, StartCheckpoint());
        last_start_tick_ = tick_;
      }
    }
  }

  metrics_.tick_overhead.Add(tick_cou_seconds_ + pause);
  tick_cou_seconds_ = 0.0;
  ++tick_;
  return Status::OK();
}

StatusOr<double> Engine::StartCheckpoint(bool cut) {
  TP_CHECK(!active_job_.has_value());
  Job job;
  job.seq = checkpoint_seq_++;
  job.start_tick = tick_;
  job.consistent_ticks = tick_ + 1;  // effects of ticks [0, tick_] included
  job.cut = cut;
  job.full_flush =
      traits_.partial_redo && (job.seq % config_.full_flush_period == 0);

  if (traits_.disk == DiskOrganization::kDoubleBackup) {
    job.backup_index = next_backup_;
    next_backup_ ^= 1;
  }
  const bool first_image = traits_.disk == DiskOrganization::kDoubleBackup
                               ? !backup_written_[job.backup_index]
                               : !log_started_;
  job.all_objects = !traits_.dirty_only || job.full_flush || first_image;
  job.cou_mode = !traits_.eager_copy || job.full_flush;

  const uint64_t n = config_.layout.num_objects();
  if (job.all_objects) {
    job.object_count = n;
    if (traits_.dirty_only) {
      // The full write covers every pending dirty object of this target.
      if (traits_.disk == DiskOrganization::kDoubleBackup) {
        dirty_[job.backup_index].ClearAll();
      } else {
        dirty_[0].ClearAll();
      }
    }
  } else {
    AtomicBitMap& source = traits_.disk == DiskOrganization::kDoubleBackup
                               ? dirty_[job.backup_index]
                               : dirty_[0];
    source.ExchangeInto(&write_set_);
    job.object_count = write_set_.CountSet();
  }

  if (traits_.disk == DiskOrganization::kDoubleBackup) {
    backup_written_[job.backup_index] = true;
  } else {
    if (job.all_objects) {
      job.log_gen = next_log_gen_++;
      job.new_generation = true;
    } else {
      TP_CHECK(next_log_gen_ > 0);
      job.log_gen = next_log_gen_ - 1;
    }
    log_started_ = true;
  }

  // Copy-To-Memory: the synchronous pause of eager algorithms.
  double pause = 0.0;
  if (!job.cou_mode) {
    const auto t0 = Clock::now();
    if (job.all_objects) {
      std::memcpy(aux_.data(), state_.data(), state_.buffer_bytes());
    } else {
      const uint64_t object_size = config_.layout.object_size;
      for (uint64_t o = 0; o < n; ++o) {
        if (!write_set_.Test(o)) continue;
        // Coalesce contiguous dirty runs into single memcpys.
        uint64_t end = o + 1;
        while (end < n && write_set_.Test(end)) ++end;
        std::memcpy(aux_.data() + o * object_size,
                    state_.ObjectData(o), (end - o) * object_size);
        o = end - 1;
      }
    }
    pause = SecondsSince(t0);
  } else {
    copied_.ClearAll();
  }
  job.sync_seconds = pause;

  active_job_ = job;
  job_done_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_pending_ = true;
  }
  cv_.notify_one();
  return pause;
}

void Engine::FinalizeJob() {
  TP_CHECK(active_job_.has_value());
  EngineCheckpointRecord record;
  record.seq = active_job_->seq;
  record.start_tick = active_job_->start_tick;
  record.consistent_ticks = active_job_->consistent_ticks;
  record.all_objects = active_job_->all_objects;
  record.full_flush = active_job_->full_flush;
  record.cut = active_job_->cut;
  record.cut_stall_seconds = active_job_->cut_stall_seconds;
  record.objects_written = active_job_->object_count;
  record.bytes_written =
      active_job_->object_count * config_.layout.object_size;
  record.sync_seconds = active_job_->sync_seconds;
  record.async_seconds = job_async_seconds_;
  metrics_.checkpoints.push_back(record);
  active_job_.reset();
  job_done_.store(false, std::memory_order_release);
}

void Engine::WriterMain() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return job_pending_ || writer_exit_; });
      if (!job_pending_) return;  // exit requested, nothing in flight
      job = *active_job_;
      job_pending_ = false;
    }
    const auto t0 = Clock::now();
    const Status status = ExecuteJob(job);
    job_async_seconds_ = SecondsSince(t0);
    if (writer_status_.ok() && !status.ok() &&
        !crashed_.load(std::memory_order_acquire)) {
      writer_status_ = status;
    }
    {
      // Publish under mu_ so a mutator blocked in WaitForJobDone (the
      // synchronous cut path) re-checks its predicate under the same lock
      // and can never miss this notify.
      std::lock_guard<std::mutex> lock(mu_);
      job_done_.store(true, std::memory_order_release);
    }
    cv_.notify_all();
  }
}

void Engine::WaitForJobDone() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock,
           [this] { return job_done_.load(std::memory_order_acquire); });
}

const uint8_t* Engine::CouSource(ObjectId object, uint8_t* staging) {
  const uint64_t object_size = config_.layout.object_size;
  if (copied_.Test(object)) {
    // Pre-image saved by the mutator; stable once the bit is visible.
    return aux_.data() + object * object_size;
  }
  ObjectLockGuard guard(&locks_, object);
  if (copied_.Test(object)) {
    return aux_.data() + object * object_size;
  }
  // Copy the live object under the lock, *then* publish the bit: a mutator
  // seeing the bit set may write cells freely without tearing this image.
  state_.CopyObjectTo(object, staging);
  copied_.Set(object);
  return staging;
}

Status Engine::ExecuteJob(const Job& job) {
  const uint64_t n = config_.layout.num_objects();
  const uint64_t object_size = config_.layout.object_size;
  std::vector<uint8_t> staging(object_size);

  auto crashed = [this] {
    return crashed_.load(std::memory_order_relaxed);
  };

  if (traits_.disk == DiskOrganization::kDoubleBackup) {
    // Staged pipeline: objects are gathered into the session's aligned
    // group buffers (the COW point -- after Add returns, the mutator may
    // overwrite the source), each full buffer flushes as one run into the
    // doublewrite region, and only a sealed batch lands in place. The
    // session must outlive SealAndApplyStaged: both the doublewrite chunks
    // and the in-place writes read straight out of its buffers.
    TP_RETURN_NOT_OK(backup_->BeginStagedCheckpoint(job.backup_index));
    {
      const int backup_index = job.backup_index;
      CheckpointWriteSession session(
          object_size, io_backend_.get(),
          [this, backup_index](ObjectId first, const uint8_t* data,
                               uint64_t count) {
            return backup_->StageRun(backup_index, first, data, count);
          });
      Status status = Status::OK();
      for (uint64_t o = 0; o < n && status.ok(); ++o) {
        if (!job.all_objects && !write_set_.Test(o)) continue;
        if (crashed()) {
          status = Status::Internal("crash injected");
          break;
        }
        // Eager jobs read the snapshot in aux_; copy-on-update jobs fetch
        // the live object under its lock (Write-Objects vs Write-Copies).
        const uint8_t* src = job.cou_mode
                                 ? CouSource(o, staging.data())
                                 : aux_.data() + o * object_size;
        status = session.Add(o, src);
      }
      if (status.ok()) status = session.Finish();
      if (status.ok()) status = backup_->SealAndApplyStaged(job.backup_index);
      if (!status.ok()) {
        // Drain in-flight writes before the session (and its buffers) dies.
        backup_->AbandonStaged();
        return status;
      }
    }
    uint32_t state_crc = 0;
    if (config_.checksum_state && !job.cou_mode && job.all_objects) {
      state_crc = Crc32(aux_.data(), state_.buffer_bytes());
    }
    if (crashed()) return Status::Internal("crash injected");
    TP_RETURN_NOT_OK(backup_->FinishCheckpoint(job.backup_index, job.seq,
                                               job.consistent_ticks,
                                               state_crc));
    return ArchiveCompletedCheckpoint(job);
  }

  // Log organization.
  if (job.new_generation) {
    TP_RETURN_NOT_OK(log_->BeginGeneration(job.log_gen));
  }
  TP_RETURN_NOT_OK(log_->BeginSegment(job.seq, job.consistent_ticks,
                                      job.all_objects, job.object_count));
  {
    // Appends are already torn-safe (trailing segment CRC), so log runs
    // skip the doublewrite region and the backend: the session only
    // coalesces objects into group-buffer appends (null backend = the
    // emit callback completes the write before returning).
    CheckpointWriteSession session(
        object_size, /*backend=*/nullptr,
        [this](ObjectId first, const uint8_t* data, uint64_t count) {
          return log_->AppendRun(first, data, count);
        });
    Status status = Status::OK();
    for (uint64_t o = 0; o < n && status.ok(); ++o) {
      if (!job.all_objects && !write_set_.Test(o)) continue;
      if (crashed()) {
        status = Status::Internal("crash injected");
        break;
      }
      const uint8_t* src = job.cou_mode
                               ? CouSource(o, staging.data())
                               : aux_.data() + o * object_size;
      status = session.Add(o, src);
    }
    if (status.ok()) status = session.Finish();
    if (!status.ok()) {
      log_->AbortSegment();
      return status;
    }
  }
  if (crashed()) {
    log_->AbortSegment();
    return Status::Internal("crash injected");
  }
  TP_RETURN_NOT_OK(log_->CommitSegment());
  if (job.new_generation) {
    TP_RETURN_NOT_OK(log_->DropGenerationsBefore(job.log_gen));
  }
  return ArchiveCompletedCheckpoint(job);
}

Status Engine::ArchiveCompletedCheckpoint(const Job& job) {
  if (history_ == nullptr) return Status::OK();
  // Read the image back from the store rather than snapshotting live
  // state: the durable checkpoint is exactly the tick-consistent bytes the
  // generation must mirror, the mutator may already be ticks ahead, and
  // this works identically under both disk organizations and IO backends
  // (the commit point above guarantees the bytes are on disk).
  if (history_scratch_ == nullptr) {
    history_scratch_ = std::make_unique<StateTable>(config_.layout);
  }
  if (traits_.disk == DiskOrganization::kDoubleBackup) {
    TP_RETURN_NOT_OK(backup_->ReadAll(job.backup_index,
                                      history_scratch_.get()));
  } else {
    TP_RETURN_NOT_OK(log_->Restore(history_scratch_.get(),
                                   job.consistent_ticks).status());
  }
  return history_->RecordGeneration(*history_scratch_, job.consistent_ticks);
}

Status Engine::CompletePendingCheckpoint() {
  // The reap half of the async cut: wait for the writer to finish the
  // in-flight job and fold its record into metrics. Callable only between
  // ticks, from the thread that drives EndTick (same ownership rules as
  // StartCheckpoint); a no-op when nothing is in flight.
  TP_CHECK(!in_tick_);
  if (crashed_.load(std::memory_order_acquire)) return writer_status_;
  if (!active_job_) return writer_status_;
  WaitForJobDone();
  TP_RETURN_NOT_OK(writer_status_);
  FinalizeJob();
  return Status::OK();
}

Status Engine::Shutdown() {
  if (shut_down_) return Status::OK();
  shut_down_ = true;
  // Drain the in-flight checkpoint (unless crashed).
  while (active_job_ && !crashed_.load(std::memory_order_acquire) &&
         !job_done_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    writer_exit_ = true;
  }
  cv_.notify_one();
  if (writer_.joinable()) writer_.join();
  if (active_job_ && job_done_.load(std::memory_order_acquire) &&
      writer_status_.ok() && !crashed_.load(std::memory_order_acquire)) {
    FinalizeJob();
  }
  // logical_ is null when construction failed before the log was created
  // (the destructor still runs Shutdown).
  if (logical_ != nullptr) {
    TP_RETURN_NOT_OK(logical_->Close());
  }
  return writer_status_;
}

Status Engine::SimulateCrash() { return SimulateCrashImpl(false); }

Status Engine::SimulateCrashLosingUnsyncedLog() {
  return SimulateCrashImpl(true);
}

Status Engine::SimulateCrashImpl(bool lose_unsynced_log) {
  TP_CHECK(!shut_down_);
  crashed_.store(true, std::memory_order_release);
  shut_down_ = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    writer_exit_ = true;
  }
  cv_.notify_one();
  if (writer_.joinable()) writer_.join();
  // The logical log survives to the last durable group commit; in this
  // harness a plain SimulateCrash syncs the tail on close, the hard
  // variant drops everything after the last group commit instead.
  if (lose_unsynced_log) return logical_->CloseLosingUnsyncedTail();
  return logical_->Close();
}

}  // namespace tickpoint
