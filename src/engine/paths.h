// Single owner of every on-disk name the fleet writes or scans: shard
// directories, checkpoint images, log generations, the logical log, and
// the cut/fleet manifests. Engine, the checkpoint stores, recovery, and
// the manifests all delegate here, so the writer of a file and the scanner
// that must find it again after a crash can never drift apart.
#ifndef TICKPOINT_ENGINE_PATHS_H_
#define TICKPOINT_ENGINE_PATHS_H_

#include <cstdint>
#include <cstdlib>
#include <string>

namespace tickpoint {
namespace paths {

/// Checkpoint/log directory of shard slot `slot` under the fleet root.
inline std::string ShardDir(const std::string& root, uint32_t slot) {
  return root + "/shard-" + std::to_string(slot);
}

/// Checkpoint/log directory of shard slot `slot`, honouring an optional
/// mount-point override: an empty `mount` keeps the slot under the fleet
/// root, a non-empty one relocates the whole shard directory to that path
/// (a different disk). The manifest records the override per partition, so
/// the writer and every post-crash scanner resolve the same directory.
inline std::string SlotDir(const std::string& root, const std::string& mount,
                           uint32_t slot) {
  return ShardDir(mount.empty() ? root : mount, slot);
}

/// True if the bare directory name `name` is a shard slot ("shard-N"),
/// storing N in *slot.
inline bool ParseShardDirName(const std::string& name, uint32_t* slot) {
  if (name.rfind("shard-", 0) != 0) return false;
  const char* digits = name.c_str() + 6;
  if (*digits == '\0') return false;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(digits, &end, 10);
  if (end == digits || *end != '\0') return false;
  *slot = static_cast<uint32_t>(parsed);
  return true;
}

/// The logical (redo) log of one engine directory.
inline std::string LogicalLogPath(const std::string& dir) {
  return dir + "/logical.log";
}

/// Bare filename of double-backup image `index` ("backup0.img").
inline std::string BackupImageFileName(int index) {
  return "backup" + std::to_string(index) + ".img";
}

/// Bare filename of the double-backup store's doublewrite region (the
/// torn-write guard staged ahead of in-place image writes).
inline std::string DoublewriteFileName() { return "doublewrite.img"; }

/// Full path of the doublewrite region inside a shard directory.
inline std::string DoublewritePath(const std::string& dir) {
  return dir + "/" + DoublewriteFileName();
}

/// Bare filename of checkpoint-log generation `gen` ("log-N.img").
inline std::string LogGenerationFileName(uint64_t gen) {
  return "log-" + std::to_string(gen) + ".img";
}

/// True if the bare filename `name` is a generation file, storing N in
/// *gen.
inline bool ParseLogGenerationFileName(const std::string& name,
                                       uint64_t* gen) {
  if (name.rfind("log-", 0) != 0) return false;
  if (name.find(".img") == std::string::npos) return false;
  *gen = std::strtoull(name.c_str() + 4, nullptr, 10);
  return true;
}

/// Bare name of the per-shard history directory (checkpoint generations,
/// archived logical-log segments, and the CRC'd history index).
inline std::string HistoryDirName() { return "history"; }

/// The history directory of one engine directory.
inline std::string HistoryDir(const std::string& dir) {
  return dir + "/" + HistoryDirName();
}

/// The CRC'd history index inside a shard's history directory. The index
/// is the source of truth: files it does not reference are orphans from an
/// interrupted archival and are swept on the next writable open.
inline std::string HistoryIndexPath(const std::string& dir) {
  return HistoryDir(dir) + "/index.bin";
}

/// Bare filename of retained checkpoint generation `seq` ("gen-N.img").
inline std::string HistoryGenerationFileName(uint64_t seq) {
  return "gen-" + std::to_string(seq) + ".img";
}

/// True if the bare filename `name` is a history generation image, storing
/// its sequence number in *seq.
inline bool ParseHistoryGenerationFileName(const std::string& name,
                                           uint64_t* seq) {
  if (name.rfind("gen-", 0) != 0) return false;
  const char* digits = name.c_str() + 4;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(digits, &end, 10);
  if (end == digits || std::string(end) != ".img") return false;
  *seq = parsed;
  return true;
}

/// Bare filename of archived logical-log segment `id` ("seg-N.log"). The
/// segment body is byte-identical to the live logical.log record format,
/// so LogicalLog::Replay works on archived history unchanged.
inline std::string HistorySegmentFileName(uint64_t id) {
  return "seg-" + std::to_string(id) + ".log";
}

/// True if the bare filename `name` is an archived logical-log segment,
/// storing its id in *id.
inline bool ParseHistorySegmentFileName(const std::string& name,
                                        uint64_t* id) {
  if (name.rfind("seg-", 0) != 0) return false;
  const char* digits = name.c_str() + 4;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(digits, &end, 10);
  if (end == digits || std::string(end) != ".log") return false;
  *id = parsed;
  return true;
}

/// The committed consistent-cut manifest under the fleet root.
inline std::string CutManifestPath(const std::string& root) {
  return root + "/cut-manifest.bin";
}

/// Bare filename of the fleet manifest for `epoch`
/// ("fleet-manifest-N.bin").
inline std::string FleetManifestFileName(uint64_t epoch) {
  return "fleet-manifest-" + std::to_string(epoch) + ".bin";
}

/// The fleet manifest (superblock) for `epoch` under the fleet root.
inline std::string FleetManifestPath(const std::string& root,
                                     uint64_t epoch) {
  return root + "/" + FleetManifestFileName(epoch);
}

/// True if the bare filename `name` is a fleet manifest, storing its epoch
/// in *epoch.
inline bool ParseFleetManifestFileName(const std::string& name,
                                       uint64_t* epoch) {
  constexpr char kPrefix[] = "fleet-manifest-";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (name.rfind(kPrefix, 0) != 0) return false;
  const char* digits = name.c_str() + kPrefixLen;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(digits, &end, 10);
  if (end == digits || std::string(end) != ".bin") return false;
  *epoch = parsed;
  return true;
}

}  // namespace paths
}  // namespace tickpoint

#endif  // TICKPOINT_ENGINE_PATHS_H_
