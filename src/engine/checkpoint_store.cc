#include "engine/checkpoint_store.h"

#include <cstring>
#include <filesystem>

#include "engine/paths.h"
#include "util/crc32.h"

namespace tickpoint {
namespace {

constexpr uint64_t kBackupMagic = 0x544B505442414B31ULL;   // "TKPTBAK1"
constexpr uint64_t kSegmentMagic = 0x544B505453454731ULL;  // "TKPTSEG1"

struct BackupHeader {
  uint64_t magic = 0;
  uint32_t version = 1;
  uint32_t pad = 0;
  uint64_t seq = 0;
  uint64_t consistent_tick = 0;
  uint64_t num_objects = 0;
  uint64_t object_size = 0;
  uint32_t state_crc = 0;
  uint32_t header_crc = 0;  // CRC of all preceding fields

  uint32_t ComputeCrc() const {
    return Crc32(this, offsetof(BackupHeader, header_crc));
  }
};
static_assert(sizeof(BackupHeader) == 56);

struct SegmentHeader {
  uint64_t magic = 0;
  uint64_t seq = 0;
  uint64_t consistent_tick = 0;
  uint64_t object_count = 0;
  uint32_t full_flush = 0;
  uint32_t pad = 0;
};
static_assert(sizeof(SegmentHeader) == 40);

constexpr uint64_t kBackupDataOffset = 512;  // header block, sector aligned

}  // namespace

// ---------------------------------------------------------------- Backup --

Status BackupStore::MakeDurable(int index) {
  // fds have no userspace buffer, so the fsync-disabled mode (tests) needs
  // no flush for readers to see the bytes.
  return fsync_enabled_ ? files_[index].Sync() : Status::OK();
}

BackupStore::BackupStore(const StateLayout& layout, bool fsync_enabled)
    : layout_(layout), fsync_enabled_(fsync_enabled) {}

std::string BackupStore::ImageFileName(int index) {
  TP_CHECK(index == 0 || index == 1);
  return paths::BackupImageFileName(index);
}

StatusOr<std::unique_ptr<BackupStore>> BackupStore::Open(
    const std::string& dir, const StateLayout& layout, bool fsync_enabled,
    IoBackend* backend, bool replay_doublewrite) {
  TP_RETURN_NOT_OK(EnsureDirectory(dir));
  std::unique_ptr<BackupStore> store(new BackupStore(layout, fsync_enabled));
  for (int i = 0; i < 2; ++i) {
    store->paths_[i] = dir + "/" + ImageFileName(i);
  }
  if (replay_doublewrite) {
    // Complete any staged in-place batch a crash interrupted, before
    // anyone opens or reads the images (the recovery path inherits this by
    // simply opening the store).
    TP_RETURN_NOT_OK(DoublewriteRegion::Replay(paths::DoublewritePath(dir),
                                               store->paths_, 2,
                                               fsync_enabled)
                         .status());
  }
  for (int i = 0; i < 2; ++i) {
    TP_RETURN_NOT_OK(store->files_[i].OpenForUpdate(store->paths_[i]));
  }
  if (backend != nullptr) {
    store->backend_ = backend;
  } else {
    store->owned_backend_ = IoBackend::Create(IoBackendKind::kSync);
    store->backend_ = store->owned_backend_.get();
  }
  if (replay_doublewrite) {
    TP_ASSIGN_OR_RETURN(
        store->dw_, DoublewriteRegion::Open(paths::DoublewritePath(dir),
                                            fsync_enabled, store->backend_));
  }
  return store;
}

const std::string& BackupStore::path(int index) const {
  TP_CHECK(index == 0 || index == 1);
  return paths_[index];
}

Status BackupStore::BeginCheckpoint(int index) {
  TP_CHECK(index == 0 || index == 1);
  BackupHeader zero;
  zero.magic = 0;  // invalid
  TP_RETURN_NOT_OK(files_[index].WriteAt(0, &zero, sizeof(zero)));
  TP_RETURN_NOT_OK(MakeDurable(index));
  return Status::OK();
}

Status BackupStore::WriteRange(int index, ObjectId first, const void* data,
                               uint64_t count) {
  TP_CHECK(index == 0 || index == 1);
  TP_DCHECK(first + count <= layout_.num_objects());
  const uint64_t offset = kBackupDataOffset + first * layout_.object_size;
  return files_[index].WriteAt(offset, data, count * layout_.object_size);
}

bool BackupStore::TakeCrashPoint(StageCrashPoint point) {
  if (stage_crash_point_ != point) return false;
  stage_crash_point_ = StageCrashPoint::kNone;
  return true;
}

Status BackupStore::BeginStagedCheckpoint(int index) {
  TP_CHECK(index == 0 || index == 1);
  if (dw_ == nullptr) {
    return Status::FailedPrecondition(
        "store opened without doublewrite replay: staged writes disabled");
  }
  TP_CHECK(staged_index_ == -1);
  // Header-invalidate first (durably), exactly as in the unstaged
  // protocol: once a staged batch exists for this image, the image is
  // already ineligible for recovery, so replaying the batch can never
  // touch a recoverable image.
  TP_RETURN_NOT_OK(BeginCheckpoint(index));
  TP_RETURN_NOT_OK(dw_->BeginBatch());
  staged_index_ = index;
  staged_.clear();
  if (TakeCrashPoint(StageCrashPoint::kAfterBegin)) {
    AbandonStaged();
    return Status::Internal("crash injected after staged begin");
  }
  return Status::OK();
}

Status BackupStore::StageRun(int index, ObjectId first, const void* data,
                             uint64_t count) {
  TP_CHECK(staged_index_ == index);
  TP_DCHECK(first + count <= layout_.num_objects());
  const uint64_t offset = kBackupDataOffset + first * layout_.object_size;
  dw_->StageChunk(static_cast<uint32_t>(index), offset, data,
                  count * layout_.object_size);
  staged_.push_back(StagedRun{first, static_cast<const uint8_t*>(data),
                              count});
  if (staged_.size() == 1 &&
      TakeCrashPoint(StageCrashPoint::kAfterFirstStage)) {
    AbandonStaged();
    return Status::Internal("crash injected after first doublewrite stage");
  }
  return Status::OK();
}

Status BackupStore::SealAndApplyStaged(int index) {
  TP_CHECK(staged_index_ == index);
  TP_RETURN_NOT_OK(dw_->Seal());
  if (TakeCrashPoint(StageCrashPoint::kAfterSeal)) {
    AbandonStaged();
    return Status::Internal("crash injected after doublewrite seal");
  }
  IoTicket last = 0;
  bool crash_after_first = false;
  for (const StagedRun& run : staged_) {
    const uint64_t offset = kBackupDataOffset + run.first * layout_.object_size;
    last = backend_->SubmitWrite(&files_[index], offset, run.data,
                                 run.count * layout_.object_size);
    if (last != 0 && TakeCrashPoint(StageCrashPoint::kAfterFirstApply)) {
      crash_after_first = true;
      break;
    }
  }
  if (crash_after_first) {
    AbandonStaged();  // the submitted run lands; the rest never do
    return Status::Internal("crash injected after first in-place apply");
  }
  const Status status = last != 0 ? backend_->WaitFor(last) : Status::OK();
  staged_.clear();
  staged_index_ = -1;
  return status;
}

void BackupStore::AbandonStaged() {
  // Callers free their run buffers right after this; no in-flight write
  // may still reference them (or the doublewrite region's headers).
  if (backend_ != nullptr) backend_->Drain();
  staged_.clear();
  staged_index_ = -1;
}

Status BackupStore::FinishCheckpoint(int index, uint64_t seq,
                                     uint64_t consistent_tick,
                                     uint32_t state_crc) {
  TP_CHECK(index == 0 || index == 1);
  TP_RETURN_NOT_OK(MakeDurable(index));  // data durable first
  BackupHeader header;
  header.magic = kBackupMagic;
  header.seq = seq;
  header.consistent_tick = consistent_tick;
  header.num_objects = layout_.num_objects();
  header.object_size = layout_.object_size;
  header.state_crc = state_crc;
  header.header_crc = header.ComputeCrc();
  TP_RETURN_NOT_OK(files_[index].WriteAt(0, &header, sizeof(header)));
  TP_RETURN_NOT_OK(MakeDurable(index));
  return Status::OK();
}

StatusOr<ImageInfo> BackupStore::Inspect(int index) {
  TP_CHECK(index == 0 || index == 1);
  FileReader reader;
  TP_RETURN_NOT_OK(reader.Open(paths_[index]));
  TP_ASSIGN_OR_RETURN(const uint64_t size, reader.Size());
  ImageInfo info;
  if (size < sizeof(BackupHeader)) return info;  // empty/new file: invalid
  BackupHeader header;
  TP_RETURN_NOT_OK(reader.ReadExact(&header, sizeof(header)));
  if (header.magic != kBackupMagic) return info;
  if (header.header_crc != header.ComputeCrc()) return info;
  if (header.num_objects != layout_.num_objects() ||
      header.object_size != layout_.object_size) {
    return Status::Corruption("backup layout mismatch in " + paths_[index]);
  }
  if (size < kBackupDataOffset + layout_.num_objects() * layout_.object_size) {
    return info;  // truncated data region
  }
  info.valid = true;
  info.seq = header.seq;
  info.consistent_tick = header.consistent_tick;
  info.state_crc = header.state_crc;
  return info;
}

Status BackupStore::ReadAll(int index, StateTable* out) {
  TP_CHECK(out->layout().num_objects() == layout_.num_objects());
  TP_ASSIGN_OR_RETURN(const ImageInfo info, Inspect(index));
  if (!info.valid) {
    return Status::FailedPrecondition("backup " + paths_[index] +
                                      " holds no valid image");
  }
  FileReader reader;
  TP_RETURN_NOT_OK(reader.Open(paths_[index]));
  TP_RETURN_NOT_OK(reader.ReadAt(kBackupDataOffset, out->mutable_data(),
                                 out->buffer_bytes()));
  if (info.state_crc != 0 && out->Digest() != info.state_crc) {
    return Status::Corruption("state CRC mismatch restoring " + paths_[index]);
  }
  return Status::OK();
}

// ------------------------------------------------------------------- Log --

Status LogStore::MakeDurable(FileWriter* writer) {
  return fsync_enabled_ ? writer->Sync() : writer->Flush();
}

LogStore::LogStore(std::string dir, const StateLayout& layout,
                   bool fsync_enabled)
    : dir_(std::move(dir)), layout_(layout), fsync_enabled_(fsync_enabled) {}

bool LogStore::ParseGenerationFileName(const std::string& name,
                                       uint64_t* gen) {
  return paths::ParseLogGenerationFileName(name, gen);
}

StatusOr<std::unique_ptr<LogStore>> LogStore::Open(const std::string& dir,
                                                   const StateLayout& layout,
                                                   bool fsync_enabled) {
  TP_RETURN_NOT_OK(EnsureDirectory(dir));
  std::unique_ptr<LogStore> store(new LogStore(dir, layout, fsync_enabled));
  // Discover generations left by a previous process (recovery reopens the
  // store cold).
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    uint64_t gen = 0;
    if (!ParseGenerationFileName(entry.path().filename().string(), &gen)) {
      continue;
    }
    store->current_gen_ = std::max(store->current_gen_, gen);
    store->found_disk_generations_ = true;
  }
  return store;
}

std::string LogStore::GenPath(uint64_t gen) const {
  return dir_ + "/" + paths::LogGenerationFileName(gen);
}

Status LogStore::BeginGeneration(uint64_t gen) {
  TP_CHECK(!segment_open_);
  if (writer_.is_open()) {
    TP_RETURN_NOT_OK(writer_.Close());
  }
  FileWriter truncate;  // a fresh generation starts empty
  TP_RETURN_NOT_OK(truncate.Open(GenPath(gen)));
  TP_RETURN_NOT_OK(truncate.Close());
  TP_RETURN_NOT_OK(writer_.OpenForUpdate(GenPath(gen)));
  current_gen_ = gen;
  gen_open_ = true;
  append_offset_ = 0;
  return Status::OK();
}

Status LogStore::BeginSegment(uint64_t seq, uint64_t consistent_tick,
                              bool full_flush, uint64_t object_count) {
  TP_CHECK(gen_open_ && !segment_open_);
  SegmentHeader header;
  header.magic = kSegmentMagic;
  header.seq = seq;
  header.consistent_tick = consistent_tick;
  header.object_count = object_count;
  header.full_flush = full_flush ? 1 : 0;
  TP_RETURN_NOT_OK(writer_.WriteAt(append_offset_, &header, sizeof(header)));
  segment_crc_ = Crc32(&header, sizeof(header));
  segment_open_ = true;
  segment_objects_declared_ = object_count;
  segment_objects_written_ = 0;
  return Status::OK();
}

Status LogStore::AppendObject(ObjectId object, const void* data) {
  TP_CHECK(segment_open_);
  TP_CHECK(segment_objects_written_ < segment_objects_declared_);
  const uint64_t id = object;
  TP_RETURN_NOT_OK(writer_.Append(&id, sizeof(id)));
  TP_RETURN_NOT_OK(writer_.Append(data, layout_.object_size));
  segment_crc_ = Crc32(&id, sizeof(id), segment_crc_);
  segment_crc_ = Crc32(data, layout_.object_size, segment_crc_);
  ++segment_objects_written_;
  return Status::OK();
}

Status LogStore::AppendRun(ObjectId first, const void* data, uint64_t count) {
  TP_CHECK(segment_open_);
  TP_CHECK(segment_objects_written_ + count <= segment_objects_declared_);
  const uint64_t record_bytes = sizeof(uint64_t) + layout_.object_size;
  run_buf_.resize(count * record_bytes);
  const uint8_t* src = static_cast<const uint8_t*>(data);
  uint8_t* dst = run_buf_.data();
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t id = first + i;
    std::memcpy(dst, &id, sizeof(id));
    std::memcpy(dst + sizeof(id), src, layout_.object_size);
    dst += record_bytes;
    src += layout_.object_size;
  }
  TP_RETURN_NOT_OK(writer_.Append(run_buf_.data(), run_buf_.size()));
  segment_crc_ = Crc32(run_buf_.data(), run_buf_.size(), segment_crc_);
  segment_objects_written_ += count;
  return Status::OK();
}

Status LogStore::CommitSegment() {
  TP_CHECK(segment_open_);
  TP_CHECK(segment_objects_written_ == segment_objects_declared_);
  TP_RETURN_NOT_OK(writer_.Append(&segment_crc_, sizeof(segment_crc_)));
  TP_RETURN_NOT_OK(MakeDurable(&writer_));
  append_offset_ += sizeof(SegmentHeader) +
                    segment_objects_written_ *
                        (sizeof(uint64_t) + layout_.object_size) +
                    sizeof(uint32_t);
  segment_open_ = false;
  return Status::OK();
}

void LogStore::AbortSegment() { segment_open_ = false; }

Status LogStore::DropGenerationsBefore(uint64_t gen) {
  // Generations advance one at a time; sweeping a small window behind the
  // current one keeps the directory clean without a full listing.
  for (uint64_t g = gen >= 8 ? gen - 8 : 0; g < gen; ++g) {
    TP_RETURN_NOT_OK(RemoveFileIfExists(GenPath(g)));
  }
  return Status::OK();
}

Status LogStore::DropAllGenerationsBefore(uint64_t gen) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    uint64_t g = 0;
    if (!ParseGenerationFileName(entry.path().filename().string(), &g)) {
      continue;
    }
    if (g < gen) {
      TP_RETURN_NOT_OK(RemoveFileIfExists(entry.path().string()));
    }
  }
  if (ec) {
    return Status::IOError("list " + dir_ + ": " + ec.message());
  }
  return Status::OK();
}

StatusOr<std::vector<SegmentInfo>> LogStore::ListSegments(uint64_t gen) {
  return ScanGeneration(gen, nullptr);
}

StatusOr<ImageInfo> LogStore::Restore(StateTable* out,
                                      uint64_t max_consistent_tick) {
  TP_CHECK(out->layout().num_objects() == layout_.num_objects());
  // Find the newest generation with an intact full flush no newer than the
  // bound.
  for (uint64_t gen = current_gen_ + 1; gen-- > 0;) {
    if (!FileExists(GenPath(gen))) continue;
    auto segments_or = ScanGeneration(gen, nullptr);
    if (!segments_or.ok()) continue;
    const auto& segments = segments_or.value();
    if (segments.empty() || !segments.front().full_flush ||
        segments.front().object_count != layout_.num_objects() ||
        segments.front().consistent_tick > max_consistent_tick) {
      // Torn or incomplete full flush, or one entirely past the bound:
      // try an older generation.
      continue;
    }
    TP_RETURN_NOT_OK(ScanGeneration(gen, out, max_consistent_tick).status());
    ImageInfo info;
    info.valid = true;
    // Report the newest segment actually applied (within the bound).
    for (const SegmentInfo& segment : segments) {
      if (segment.consistent_tick > max_consistent_tick) break;
      info.seq = segment.seq;
      info.consistent_tick = segment.consistent_tick;
    }
    return info;
  }
  return Status::NotFound("no recoverable log generation in " + dir_);
}

StatusOr<std::vector<SegmentInfo>> LogStore::ScanGeneration(
    uint64_t gen, StateTable* out, uint64_t max_consistent_tick) {
  FileReader reader;
  TP_RETURN_NOT_OK(reader.Open(GenPath(gen)));
  TP_ASSIGN_OR_RETURN(const uint64_t file_size, reader.Size());
  std::vector<SegmentInfo> segments;
  uint64_t offset = 0;
  std::vector<uint8_t> object_buf(layout_.object_size);
  while (offset + sizeof(SegmentHeader) + sizeof(uint32_t) <= file_size) {
    SegmentHeader header;
    TP_RETURN_NOT_OK(reader.ReadAt(offset, &header, sizeof(header)));
    if (header.magic != kSegmentMagic) break;
    const uint64_t record_bytes = sizeof(uint64_t) + layout_.object_size;
    const uint64_t segment_bytes = sizeof(SegmentHeader) +
                                   header.object_count * record_bytes +
                                   sizeof(uint32_t);
    if (offset + segment_bytes > file_size) break;  // torn tail
    // Validate the whole segment before applying anything from it.
    uint32_t crc = Crc32(&header, sizeof(header));
    for (uint64_t i = 0; i < header.object_count; ++i) {
      uint64_t id;
      TP_RETURN_NOT_OK(reader.ReadExact(&id, sizeof(id)));
      TP_RETURN_NOT_OK(reader.ReadExact(object_buf.data(), object_buf.size()));
      if (id >= layout_.num_objects()) {
        return Status::Corruption("object id out of range in " + GenPath(gen));
      }
      crc = Crc32(&id, sizeof(id), crc);
      crc = Crc32(object_buf.data(), object_buf.size(), crc);
    }
    uint32_t stored;
    TP_RETURN_NOT_OK(reader.ReadExact(&stored, sizeof(stored)));
    if (stored != crc) break;  // uncommitted/corrupt: stop at this segment
    if (out != nullptr && header.consistent_tick <= max_consistent_tick) {
      TP_RETURN_NOT_OK(reader.Seek(offset + sizeof(SegmentHeader)));
      for (uint64_t i = 0; i < header.object_count; ++i) {
        uint64_t id;
        TP_RETURN_NOT_OK(reader.ReadExact(&id, sizeof(id)));
        TP_RETURN_NOT_OK(
            reader.ReadExact(object_buf.data(), object_buf.size()));
        out->LoadObject(id, object_buf.data());
      }
    }
    SegmentInfo info;
    info.seq = header.seq;
    info.consistent_tick = header.consistent_tick;
    info.object_count = header.object_count;
    info.full_flush = header.full_flush != 0;
    segments.push_back(info);
    offset += segment_bytes;
  }
  return segments;
}

}  // namespace tickpoint
