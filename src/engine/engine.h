// The real checkpointing engine (paper Section 6, extended from the paper's
// two validated algorithms to all six).
//
// Threading model: the caller's thread is the *mutator* (the game
// simulation loop); one background *writer* thread flushes checkpoints.
// Checkpoints start only at tick boundaries (EndTick), exploiting the
// natural quiescence point of the discrete-event simulation loop.
//
// Thread-safety contract (relied on by ShardRunner/ShardedEngine, which
// give every shard its own mutator thread):
//   - BeginTick/ApplyUpdate/EndTick/Shutdown/SimulateCrash must all be
//     called from ONE mutator thread (any thread, but the same one); they
//     synchronize with the writer thread internally.
//   - ScheduleCheckpoint is the one cross-thread entry point: any thread
//     may request a checkpoint (the flag is atomic); the mutator serves it
//     at its next EndTick.
//   - metrics()/state()/current_tick() are unsynchronized snapshots owned
//     by the mutator thread; other threads may read them only once the
//     mutator is quiesced (between ticks with the owner parked, or after
//     Shutdown/SimulateCrash).
//
// The paper's four framework subroutines map to real code here:
//   Copy-To-Memory                 -> eager memcpy into the aux buffer
//                                     inside StartCheckpoint (the pause)
//   Handle-Update                  -> HandleUpdate: dirty-bit maintenance +
//                                     pre-image save under per-object locks
//   Write-Copies-To-Stable-Storage -> writer path reading the aux snapshot
//   Write-Objects-To-Stable-Storage-> writer path reading live state under
//                                     the copy-on-update lock protocol
#ifndef TICKPOINT_ENGINE_ENGINE_H_
#define TICKPOINT_ENGINE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/algorithm.h"
#include "engine/checkpoint_store.h"
#include "engine/dirty_map.h"
#include "engine/history.h"
#include "engine/logical_log.h"
#include "engine/state_table.h"
#include "util/histogram.h"
#include "util/io_backend.h"

namespace tickpoint {

/// Engine construction parameters.
struct EngineConfig {
  StateLayout layout = StateLayout::Small();
  AlgorithmKind algorithm = AlgorithmKind::kCopyOnUpdate;
  /// Directory for checkpoint files and the logical log.
  std::string dir;
  /// `C`: full-flush period of the partial-redo family.
  uint64_t full_flush_period = 9;
  /// Minimum ticks between checkpoint starts (0 = back-to-back, the
  /// paper's policy).
  uint64_t checkpoint_interval_ticks = 0;
  /// fsync checkpoint data and the logical log (disable only in unit tests
  /// that do not exercise crashes).
  bool fsync = true;
  /// Record a full-state CRC in eager full checkpoints (verified on
  /// restore).
  bool checksum_state = false;
  /// Group-commit granularity of the logical log, in ticks.
  uint64_t logical_sync_every = 1;
  /// External checkpoint scheduling (ShardedEngine/StaggerScheduler): when
  /// true, EndTick starts a checkpoint only after ScheduleCheckpoint() was
  /// called, instead of applying the interval policy.
  bool manual_checkpoints = false;
  /// How checkpoint image writes reach the disk (util/io_backend.h). A
  /// runtime knob (default: TP_IO_BACKEND, else sync), never persisted:
  /// the on-disk format is identical under both, so a directory written
  /// async recovers sync and vice versa. kAsync additionally splits cut
  /// checkpoints into submit (at the cut tick) and completion (reaped at a
  /// later tick boundary), so the mutator never blocks on the cut write.
  IoBackendKind io_backend = DefaultIoBackendKind();
  /// Point-in-time recovery history (engine/history.h): when enabled,
  /// every completed checkpoint is additionally archived as a generation
  /// under `<dir>/history`, bounded by the policy. Persisted fleet-wide in
  /// the v4 manifest, not per-engine.
  RetentionPolicy retention;
};

/// One completed real checkpoint.
struct EngineCheckpointRecord {
  uint64_t seq = 0;
  uint64_t start_tick = 0;
  uint64_t consistent_ticks = 0;  // ticks whose effects are in the image
  bool all_objects = false;
  bool full_flush = false;
  /// Consistent-cut checkpoint: started at exactly the coordinator's cut
  /// tick. Sync backend: written synchronously inside the cut EndTick.
  /// Async backend: the snapshot is taken at the cut tick and the write
  /// completes on the writer, reaped at a later tick boundary.
  bool cut = false;
  uint64_t objects_written = 0;
  uint64_t bytes_written = 0;
  double sync_seconds = 0.0;   // measured eager-copy pause
  double async_seconds = 0.0;  // measured writer wall time
  /// Cut checkpoints only: total mutator block inside the cut EndTick.
  /// Sync backend: draining the previous flush + the synchronous cut
  /// write. Async backend: draining + the snapshot only -- the
  /// mutator-visible stall the pipeline exists to shrink.
  double cut_stall_seconds = 0.0;

  double TotalSeconds() const { return sync_seconds + async_seconds; }
};

/// Measured metrics of a real engine run.
struct EngineMetrics {
  /// Measured overhead per tick: eager pause + copy-on-update copy time.
  SampleSeries tick_overhead;
  std::vector<EngineCheckpointRecord> checkpoints;
  uint64_t updates = 0;
  uint64_t cou_copies = 0;

  double AvgOverheadSeconds() const { return tick_overhead.Mean(); }
  double AvgCheckpointSeconds() const {
    if (checkpoints.empty()) return 0.0;
    double sum = 0.0;
    for (const auto& r : checkpoints) sum += r.TotalSeconds();
    return sum / static_cast<double>(checkpoints.size());
  }
  double AvgObjectsPerCheckpoint(bool exclude_full) const {
    double sum = 0.0;
    uint64_t count = 0;
    for (const auto& r : checkpoints) {
      if (exclude_full && r.full_flush) continue;
      sum += static_cast<double>(r.objects_written);
      ++count;
    }
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// A durable main-memory state table with tick-consistent checkpointing.
class Engine {
 public:
  /// Creates the engine, its checkpoint store, and a fresh logical log
  /// under config.dir.
  static StatusOr<std::unique_ptr<Engine>> Open(const EngineConfig& config);

  /// Re-opens an engine from recovered state: the shard-restart workflow.
  /// Loads `initial` as the in-memory state, writes a synchronous bootstrap
  /// checkpoint (so the fresh logical log suffices for any later crash),
  /// and resumes the tick counter at `first_tick`. Blocks for the duration
  /// of one full checkpoint write -- this is restart downtime, not gameplay
  /// latency.
  static StatusOr<std::unique_ptr<Engine>> OpenResumed(
      const EngineConfig& config, const StateTable& initial,
      uint64_t first_tick);

  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Starts the next tick (the update phase of the simulation loop).
  void BeginTick();

  /// Applies one logical update: Handle-Update bookkeeping, the actual
  /// state write, and logical-log buffering.
  void ApplyUpdate(uint32_t cell, int32_t value);

  /// Ends the tick: appends the tick's logical-log record, completes a
  /// drained checkpoint, and starts the next one (running any eager copy as
  /// the end-of-tick pause).
  Status EndTick();

  /// Manual mode only: requests that a checkpoint start at the next
  /// EndTick. The request stays pending while a previous checkpoint is
  /// still in flight and is served as soon as it drains. Safe to call from
  /// any thread (the fleet scheduler may run outside the mutator thread).
  void ScheduleCheckpoint() {
    checkpoint_requested_.store(true, std::memory_order_release);
  }

  /// Consistent-cut checkpoint: the next EndTick MUST produce a checkpoint
  /// whose consistent tick is exactly that tick's end. Unlike
  /// ScheduleCheckpoint, the request cannot slip to a later tick: EndTick
  /// first drains any in-flight flush, then starts the cut checkpoint at
  /// that exact tick. Under the sync backend it also blocks until the
  /// image is durable; under the async backend EndTick returns once the
  /// snapshot is taken and the write completes on the writer thread
  /// (reaped by a later EndTick or CompletePendingCheckpoint). Either way
  /// the mutator block is the cut's stall, reported in the record.
  /// Safe to call from any thread; served by the next EndTick.
  void RequestCutCheckpoint() {
    cut_checkpoint_requested_.store(true, std::memory_order_release);
  }

  /// Blocks until the in-flight checkpoint (if any) completes and its
  /// record is finalized; returns the writer's sticky status. The reap
  /// half of the async cut path: the cut coordinator calls this on a
  /// quiesced engine (mutator parked between ticks) when the shard went
  /// idle before a later tick could finalize the record. Must be called
  /// with the engine quiesced, like any cross-thread engine access.
  Status CompletePendingCheckpoint();

  /// Graceful stop: waits for the in-flight checkpoint, stops the writer,
  /// closes the logs.
  Status Shutdown();

  /// Crash injection: abandons the in-flight checkpoint mid-write (leaving
  /// a torn image on disk), makes the logical log durable to the last
  /// EndTick, and stops. The in-memory state stays readable as the "lost"
  /// reference for recovery tests.
  Status SimulateCrash();

  /// Like SimulateCrash, but models an OS-level crash with
  /// logical_sync_every > 1: every logical-log tick after the last group
  /// commit is lost, and a torn fragment of the first unsynced record is
  /// left behind for recovery to discard.
  Status SimulateCrashLosingUnsyncedLog();

  /// Test-only fault injection: the next EndTick fails with `status` after
  /// leaving the tick (in_tick_ cleared) but before the tick's logical-log
  /// append or tick-counter advance -- the shard freezes at its current
  /// tick, exactly the partial-failure scenario ShardedEngine must survive.
  void InjectEndTickErrorForTest(Status status) {
    injected_end_tick_error_ = std::move(status);
  }

  const EngineConfig& config() const { return config_; }
  const AlgorithmTraits& traits() const { return traits_; }
  const EngineMetrics& metrics() const { return metrics_; }
  StateTable& state() { return state_; }
  const StateTable& state() const { return state_; }
  uint64_t current_tick() const { return tick_; }
  bool checkpoint_in_flight() const { return active_job_.has_value(); }

  /// Monotonic count of dirty marks (AtomicBitMap::Set calls) since open.
  /// Checkpoints clear bits but never rewind this, so the delta between two
  /// readings is the partition's write RATE over that window -- the load
  /// signal the fleet rebalancer ranks partitions by. Safe to read from any
  /// thread while the mutator keeps marking (relaxed atomic underneath).
  uint64_t CumulativeDirtyMarks() const {
    return dirty_[0].CumulativeMarks();
  }

  /// Path of the logical log under `dir`.
  static std::string LogicalLogPath(const std::string& dir);

  /// The shard's history handle, or null when retention is off. Same
  /// cross-thread rules as metrics(): other threads may touch it only with
  /// the engine quiesced.
  ShardHistory* history() { return history_.get(); }

 private:
  struct Job {
    uint64_t seq = 0;
    uint64_t start_tick = 0;
    uint64_t consistent_ticks = 0;
    bool all_objects = false;
    bool full_flush = false;
    bool cut = false;
    bool cou_mode = false;
    int backup_index = 0;
    uint64_t log_gen = 0;
    bool new_generation = false;
    uint64_t object_count = 0;
    double sync_seconds = 0.0;
    double cut_stall_seconds = 0.0;
  };

  explicit Engine(const EngineConfig& config);
  /// Opens the checkpoint store (backup or log organization) under dir.
  Status OpenStores();
  /// Creates the logical log (truncating any previous incarnation's) and
  /// starts the writer thread. OpenResumed calls this only AFTER the
  /// bootstrap checkpoint is durable -- see the ordering note there.
  Status StartLogicalLogAndWriter();
  /// Writes the current in-memory state as a complete synchronous
  /// checkpoint (used by OpenResumed before any tick runs).
  Status WriteBootstrapCheckpoint();

  Status SimulateCrashImpl(bool lose_unsynced_log);

  /// Handle-Update (Table 2): dirty-bit maintenance + copy on update.
  void HandleUpdate(ObjectId object);
  /// Copy-To-Memory + checkpoint scheduling; returns the pause seconds.
  StatusOr<double> StartCheckpoint(bool cut = false);
  void FinalizeJob();
  /// Blocks the mutator until the writer reports the in-flight job done
  /// (the synchronous half of a cut checkpoint).
  void WaitForJobDone();

  void WriterMain();
  Status ExecuteJob(const Job& job);
  /// Retention only: reads the just-committed durable image back out of
  /// the store and records it as a history generation. Runs on the writer
  /// thread right after the checkpoint's commit point, so it is uniform
  /// across disk organizations and IO backends.
  Status ArchiveCompletedCheckpoint(const Job& job);
  /// Picks the bytes to persist for `object` under the copy-on-update
  /// protocol: the saved pre-image if one exists, else the live object
  /// (copied to `staging` under the object lock).
  const uint8_t* CouSource(ObjectId object, uint8_t* staging);

  EngineConfig config_;
  AlgorithmTraits traits_;
  StateTable state_;

  /// Declared before the stores: they hold a raw pointer to it, so it must
  /// be destroyed after them (and its destructor joins any async worker).
  std::unique_ptr<IoBackend> io_backend_;
  std::unique_ptr<BackupStore> backup_;
  std::unique_ptr<LogStore> log_;
  std::unique_ptr<LogicalLog> logical_;
  /// Non-null iff config.retention.enabled. Touched by the open path
  /// (before the writer starts) and by the writer thread afterwards.
  std::unique_ptr<ShardHistory> history_;
  /// Writer-thread scratch for reading committed images back out of the
  /// store during archival; allocated lazily on first use.
  std::unique_ptr<StateTable> history_scratch_;

  AtomicBitMap dirty_[2];     // per-backup dirty bits (log family uses [0])
  AtomicBitMap write_set_;    // snapshot of the active checkpoint's members
  AtomicBitMap copied_;       // per-checkpoint "pre-image saved or flushed"
  ObjectLockTable locks_;
  std::vector<uint8_t> aux_;  // eager snapshot / copy-on-update side buffer

  // Tick state (mutator thread only).
  uint64_t tick_ = 0;
  bool in_tick_ = false;
  std::vector<CellUpdate> tick_updates_;
  double tick_cou_seconds_ = 0.0;

  // Checkpoint bookkeeping (mutator thread only).
  uint64_t checkpoint_seq_ = 0;
  uint64_t last_start_tick_ = 0;
  int next_backup_ = 0;
  bool backup_written_[2] = {false, false};
  uint64_t next_log_gen_ = 0;
  bool log_started_ = false;
  // Written by ScheduleCheckpoint (any thread), consumed at EndTick.
  std::atomic<bool> checkpoint_requested_{false};
  // Written by RequestCutCheckpoint (any thread), consumed at EndTick.
  std::atomic<bool> cut_checkpoint_requested_{false};
  Status injected_end_tick_error_;  // test-only, one-shot
  std::optional<Job> active_job_;

  // Writer thread plumbing.
  std::thread writer_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool job_pending_ = false;
  bool writer_exit_ = false;
  std::atomic<bool> job_done_{false};
  std::atomic<bool> crashed_{false};
  double job_async_seconds_ = 0.0;  // written by writer before job_done_
  Status writer_status_;            // sticky first error

  EngineMetrics metrics_;
  bool shut_down_ = false;
};

}  // namespace tickpoint

#endif  // TICKPOINT_ENGINE_ENGINE_H_
