#include "engine/checkpoint_session.h"

#include <cstdlib>
#include <cstring>

namespace tickpoint {

namespace {
constexpr uint64_t kBufferAlign = 4096;
}  // namespace

void CheckpointWriteSession::FreeDeleter::operator()(uint8_t* p) const {
  std::free(p);
}

CheckpointWriteSession::CheckpointWriteSession(uint64_t object_size,
                                               IoBackend* backend,
                                               EmitRun emit,
                                               uint64_t group_buffer_bytes)
    : object_size_(object_size),
      // A buffer must hold at least one object; round up to the alignment
      // (aligned_alloc requires a size that is a multiple of it).
      buffer_bytes_(((group_buffer_bytes > object_size ? group_buffer_bytes
                                                       : object_size) +
                     kBufferAlign - 1) &
                    ~(kBufferAlign - 1)),
      backend_(backend),
      emit_(std::move(emit)) {
  TP_CHECK(object_size_ > 0);
  TP_CHECK(emit_ != nullptr);
}

CheckpointWriteSession::~CheckpointWriteSession() {
  // Buffers are about to die; no async write may still reference them.
  if (backend_ != nullptr) backend_->Drain();
}

void CheckpointWriteSession::EnsureBufferSpace() {
  if (cursor_left_ >= object_size_) return;
  uint8_t* raw =
      static_cast<uint8_t*>(std::aligned_alloc(kBufferAlign, buffer_bytes_));
  TP_CHECK(raw != nullptr);
  buffers_.emplace_back(raw);
  cursor_ = raw;
  cursor_left_ = buffer_bytes_;
}

Status CheckpointWriteSession::Add(ObjectId object, const void* data) {
  const bool extends = run_count_ > 0 && object == run_first_ + run_count_ &&
                       cursor_left_ >= object_size_;
  if (!extends) {
    TP_RETURN_NOT_OK(FlushRun());
    EnsureBufferSpace();
    run_data_ = cursor_;
    run_first_ = object;
  }
  std::memcpy(cursor_, data, object_size_);
  cursor_ += object_size_;
  cursor_left_ -= object_size_;
  ++run_count_;
  ++objects_added_;
  return Status::OK();
}

Status CheckpointWriteSession::FlushRun() {
  if (run_count_ == 0) return Status::OK();
  const Status status = emit_(run_first_, run_data_, run_count_);
  run_count_ = 0;
  run_data_ = nullptr;
  if (status.ok()) ++runs_emitted_;
  return status;
}

Status CheckpointWriteSession::Finish() { return FlushRun(); }

}  // namespace tickpoint
