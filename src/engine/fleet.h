// The unified fleet handle: create / open / recover / resume a sharded
// checkpoint fleet from its ROOT DIRECTORY alone.
//
// The paper's recovery model assumes the restarting server knows the
// crashed server's exact configuration; the pre-manifest API inherited
// that (its config-supplying recovery shims only worked when the caller
// re-supplied a bit-identical ShardedEngineConfig; they are gone). The
// Fleet handle retires the assumption: Fleet::Create persists a durable
// FleetManifest superblock (fleet_manifest.h) next to the data, and
// Fleet::Open / Fleet::Recover discover topology, layout, algorithm, disk
// organization, and every knob from it -- the disk tells you.
//
// Lifecycle:
//   Fleet::Create(root, config)  -- a NEW fleet; refuses a root that is
//                                   already a fleet.
//   Fleet::Open(root)            -- reopen an existing fleet: recover the
//                                   newest exact state and resume in one
//                                   call (Recover + Resume).
//   Fleet::Recover(root)         -- recovery only: returns a
//                                   RecoveredFleet holding the manifest,
//                                   per-partition tables, and recovery
//                                   stats; .Resume() restarts the fleet.
//   Fleet::RecoverToCut(root)    -- like Recover, but lands on the
//                                   committed consistent cut when one is
//                                   reproducible.
// The handle forwards the tick/cut API of ShardedEngine and adds
// MigratePartition -- the zone hand-off at a committed cut that bumps the
// fleet epoch (see ShardedEngine::MigratePartition for the protocol) --
// and the hot-failover pair SimulateShardCrash/FailoverShard, which
// revives a single dead shard from its peer's in-memory replica (disk
// recovery is the fallback; see replica_buffer.h).
#ifndef TICKPOINT_ENGINE_FLEET_H_
#define TICKPOINT_ENGINE_FLEET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/fleet_manifest.h"
#include "engine/rebalancer.h"
#include "engine/recovery.h"
#include "engine/sharded_engine.h"
#include "engine/state_table.h"

namespace tickpoint {

class Fleet;

/// The output of Fleet::Recover/RecoverToCut: everything read back from
/// disk, ready to inspect or to Resume() into a live fleet.
class RecoveredFleet {
 public:
  /// The durable fleet description recovery ran under.
  const FleetManifest& manifest() const { return manifest_; }
  /// Per-partition recovery stats; result().used_manifest distinguishes a
  /// cut landing from the per-shard fallback.
  const ShardedCutRecoveryResult& result() const { return result_; }
  /// True when this recovery landed on a committed consistent cut.
  bool at_cut() const { return result_.used_manifest; }
  /// The recovered per-partition state, indexed by partition.
  std::vector<StateTable>& tables() { return tables_; }
  const std::vector<StateTable>& tables() const { return tables_; }
  /// First tick a resumed incarnation will run: cut_tick + 1 after a cut
  /// landing, otherwise the fleet's minimum recovered tick.
  uint64_t resume_tick() const {
    return at_cut() ? result_.cut_tick + 1
                    : result_.fleet.min_recovered_ticks;
  }

  /// Fleet::RecoverToTick only: true when every shard landed at exactly
  /// the requested tick; false when some shard could not reproduce it and
  /// the whole fleet fell back to latest recovery (see target_tick()).
  bool at_requested_tick() const { return at_tick_; }
  /// The tick Fleet::RecoverToTick was asked for (meaningful whether or
  /// not it was reached).
  uint64_t target_tick() const { return target_tick_; }

  /// Restarts the fleet from this recovered state (the
  /// ShardedEngine::OpenResumed workflow: per-partition synchronous
  /// bootstrap checkpoints, stale state retired). Consumes the tables.
  /// After a point-in-time landing (at_requested_tick()), the resume
  /// additionally commits the manifest as a new fleet epoch once every
  /// bootstrap is durable -- the old timeline's divergent future is
  /// retired and can never shadow the new one.
  StatusOr<std::unique_ptr<Fleet>> Resume();

 private:
  friend class Fleet;
  std::string root_;
  FleetManifest manifest_;
  ShardedCutRecoveryResult result_;
  std::vector<StateTable> tables_;
  bool at_tick_ = false;
  uint64_t target_tick_ = 0;
};

/// A live sharded checkpoint fleet bound to its self-describing root.
class Fleet {
 public:
  /// Creates a NEW fleet under `root` and commits its epoch-0 manifest.
  /// `config.shard.dir` may be empty or equal to `root` (it is overwritten
  /// with `root`). FailedPrecondition if `root` already holds a fleet
  /// manifest OR shard directories (a pre-manifest fleet) -- creation
  /// never silently clobbers existing fleet data (use Open to reopen one).
  static StatusOr<std::unique_ptr<Fleet>> Create(
      const std::string& root, const ShardedEngineConfig& config);

  /// Reopens an existing fleet from its root alone: reads the manifest,
  /// recovers the newest exact per-partition state, and resumes. NotFound
  /// when `root` is not a fleet.
  static StatusOr<std::unique_ptr<Fleet>> Open(const std::string& root);

  /// Recovery without resuming (inspect, verify, or hand the tables to a
  /// different process model). No config argument: the manifest is the
  /// source of truth.
  static StatusOr<RecoveredFleet> Recover(const std::string& root);

  /// Like Recover, but lands on the committed consistent cut when one is
  /// reproducible (per-shard exact fallback otherwise).
  static StatusOr<RecoveredFleet> RecoverToCut(const std::string& root);

  /// Point-in-time recovery (retention must have been enabled when the
  /// fleet ran): lands every partition at EXACTLY the end of `tick`, for
  /// any tick inside RestorableWindow. When some shard cannot reproduce
  /// the tick, falls back to latest recovery fleet-wide -- inspect
  /// at_requested_tick() on the result. Resuming the result continues the
  /// old timeline from `tick` as a NEW fleet epoch.
  static StatusOr<RecoveredFleet> RecoverToTick(const std::string& root,
                                                uint64_t tick);

  /// The fleet's restorable tick window (intersection of every shard's
  /// retained history): every tick inside it satisfies RecoverToTick with
  /// at_requested_tick() true. `any` false = no window (retention off or
  /// no usable history yet).
  static StatusOr<HistoryWindow> RestorableWindow(const std::string& root);

  // ---- Forwarded tick/cut/migration API (see sharded_engine.h) ----

  void BeginTick() { engine_->BeginTick(); }
  void ApplyUpdate(uint32_t partition, uint32_t cell, int32_t value) {
    engine_->ApplyUpdate(partition, cell, value);
  }
  /// Ends the fleet tick, then -- when auto-rebalance is enabled -- runs
  /// one Rebalancer evaluation step at the boundary (detect, cut,
  /// commit+migrate; see rebalancer.h). Rebalancer protocol errors
  /// propagate exactly like shard errors.
  Status EndTick();
  Status WaitForIdle() { return engine_->WaitForIdle(); }
  StatusOr<uint64_t> RequestConsistentCut() {
    return engine_->RequestConsistentCut();
  }
  Status CommitConsistentCut() { return engine_->CommitConsistentCut(); }
  Status MigratePartition(uint32_t partition, uint32_t to_slot,
                          const std::string& mount_root = "") {
    return engine_->MigratePartition(partition, to_slot, mount_root);
  }
  Status Shutdown() { return engine_->Shutdown(); }
  Status SimulateCrash() { return engine_->SimulateCrash(); }

  // ---- Load-driven auto-rebalancing (see rebalancer.h) ----

  /// Installs `policy` and evaluates it at every subsequent EndTick
  /// boundary. Replaces (and resets the learning state of) any previous
  /// policy. InvalidArgument for invalid knobs.
  Status EnableAutoRebalance(const RebalancePolicy& policy);
  /// Stops evaluating; an armed rebalancer cut is left for the caller to
  /// commit or abandon (it shows in cut_in_flight()).
  void DisableAutoRebalance() { rebalancer_.reset(); }
  /// The active rebalancer, or nullptr when auto-rebalance is off.
  Rebalancer* rebalancer() { return rebalancer_.get(); }
  const Rebalancer* rebalancer() const { return rebalancer_.get(); }

  // ---- Hot failover (see ShardedEngine::SimulateShardCrash/FailoverShard;
  // the replication topology lives in the manifest, so failover keeps
  // working after Fleet::Open of a restarted fleet) ----

  Status SimulateShardCrash(uint32_t partition) {
    return engine_->SimulateShardCrash(partition);
  }
  Status FailoverShard(uint32_t partition) {
    return engine_->FailoverShard(partition);
  }
  const FailoverReport& last_failover_report() const {
    return engine_->last_failover_report();
  }

  const std::string& root() const { return root_; }
  uint64_t epoch() const { return engine_->epoch(); }
  const FleetManifest& manifest() const { return engine_->manifest(); }
  uint32_t num_partitions() const { return engine_->num_shards(); }
  uint64_t current_tick() const { return engine_->current_tick(); }
  const MigrationReport& last_migration_report() const {
    return engine_->last_migration_report();
  }

  /// The underlying engine (for stats and per-shard inspection; the fleet
  /// stays the only construction path).
  ShardedEngine& engine() { return *engine_; }
  const ShardedEngine& engine() const { return *engine_; }

 private:
  friend class RecoveredFleet;

  Fleet(std::string root, std::unique_ptr<ShardedEngine> engine)
      : root_(std::move(root)), engine_(std::move(engine)) {}

  std::string root_;
  std::unique_ptr<ShardedEngine> engine_;
  /// Present while auto-rebalance is enabled; evaluated from EndTick.
  std::unique_ptr<Rebalancer> rebalancer_;
};

}  // namespace tickpoint

#endif  // TICKPOINT_ENGINE_FLEET_H_
