#include "engine/rebalancer.h"

#include <algorithm>

#include "engine/sharded_engine.h"

namespace tickpoint {

Rebalancer::Rebalancer(const RebalancePolicy& policy) : policy_(policy) {
  TP_CHECK(policy_.Valid());
}

double Rebalancer::RatePerTick(uint32_t p) const {
  TP_DCHECK(p < rate_.size());
  return rate_[p];
}

uint32_t Rebalancer::HotStreak(uint32_t p) const {
  TP_DCHECK(p < hot_streak_.size());
  return hot_streak_[p];
}

bool Rebalancer::SampleRates(const ShardedEngine& engine) {
  const uint32_t k = engine.num_shards();
  if (prev_marks_.size() != k) {
    prev_marks_.assign(k, 0);
    rate_.assign(k, 0.0);
    hot_streak_.assign(k, 0);
    migrated_.assign(k, 0);
  }
  std::vector<uint64_t> marks(k, 0);
  std::vector<uint64_t> deltas(k, 0);
  uint64_t total = 0;
  for (uint32_t p = 0; p < k; ++p) {
    marks[p] = engine.PartitionDirtyMarks(p);
    // The cumulative counter lives in the partition's ENGINE, so an engine
    // swap (migration, failover) restarts it at 0; a reading below the
    // previous one means exactly that, and the post-swap total IS the
    // window's delta.
    deltas[p] = marks[p] >= prev_marks_[p] ? marks[p] - prev_marks_[p]
                                           : marks[p];
    total += deltas[p];
  }
  // All-zero window: either the fleet is idle or (threaded mode) the
  // runner threads have not applied any batch since the last boundary.
  // Folding zeros in would decay a real hot signal and reset its streak,
  // so the boundary carries no detector signal at all.
  if (total == 0) return false;
  for (uint32_t p = 0; p < k; ++p) {
    prev_marks_[p] = marks[p];
    const double observed = static_cast<double>(deltas[p]);
    rate_[p] = rate_[p] == 0.0
                   ? observed
                   : policy_.ewma_alpha * observed +
                         (1.0 - policy_.ewma_alpha) * rate_[p];
  }
  return true;
}

int Rebalancer::PickHotPartition(const ShardedEngine& engine) {
  const uint32_t k = engine.num_shards();
  if (k < 2) return -1;
  double total = 0.0;
  for (uint32_t p = 0; p < k; ++p) total += rate_[p];
  int best = -1;
  for (uint32_t p = 0; p < k; ++p) {
    const double mean_others =
        (total - rate_[p]) / static_cast<double>(k - 1);
    const bool hot = !migrated_[p] &&
                     rate_[p] >= policy_.min_marks_per_tick &&
                     rate_[p] > policy_.imbalance_ratio * mean_others;
    hot_streak_[p] = hot ? hot_streak_[p] + 1 : 0;
    if (hot_streak_[p] >= policy_.hysteresis_ticks &&
        (best < 0 || rate_[p] > rate_[best])) {
      best = static_cast<int>(p);
    }
  }
  return best;
}

Status Rebalancer::OnTickBoundary(ShardedEngine* engine) {
  if (engine->failed()) return Status::OK();

  // Sample EVERY boundary, whatever the phase: a skipped boundary would
  // make the next delta span several ticks and spike the smoothed rate.
  // An UNINFORMATIVE boundary (no partition shows new marks -- idle
  // fleet, or runners lagging the facade in threaded mode) updates
  // nothing and earns no warmup credit, but an armed cut still commits
  // below: the cut tick passing is a property of the fleet clock, not of
  // observed write traffic.
  const bool informative = SampleRates(*engine);
  if (informative) ++boundaries_seen_;

  if (phase_ == Phase::kCutRequested) {
    if (!engine->cut_in_flight()) {
      // Someone else committed (or disarmed) our cut out from under us --
      // a caller driving the cut API directly. Drop the decision and
      // re-detect; the streaks are still warm.
      phase_ = Phase::kIdle;
    } else if (engine->current_tick() > pending_cut_tick_) {
      // The cut tick has run on every shard; commit it and move the hot
      // partition while the quiesced live state still equals the cut
      // image (the MigratePartition precondition: no tick in between).
      TP_RETURN_NOT_OK(engine->CommitConsistentCut());
      TP_RETURN_NOT_OK(engine->MigratePartition(
          pending_partition_, pending_to_slot_, policy_.spawn_mount_root));
      migrated_[pending_partition_] = 1;
      hot_streak_[pending_partition_] = 0;
      // The fresh engine's counter restarts at 0 and its first window is
      // not comparable; restart the partition's rate from scratch too.
      prev_marks_[pending_partition_] = 0;
      rate_[pending_partition_] = 0.0;
      ++migrations_;
      last_migration_tick_ = engine->current_tick();
      last_event_.partition = pending_partition_;
      last_event_.to_slot = pending_to_slot_;
      last_event_.hot_ratio = pending_ratio_;
      last_event_.decided_tick = pending_decided_tick_;
      last_event_.cut_tick = pending_cut_tick_;
      phase_ = Phase::kIdle;
      return Status::OK();
    }
    // Cut armed but its tick not yet past: keep ticking.
    return Status::OK();
  }

  if (!informative) return Status::OK();
  if (boundaries_seen_ <= policy_.warmup_ticks) return Status::OK();
  if (engine->cut_in_flight()) return Status::OK();  // user cut: stand down
  if (policy_.max_migrations > 0 && migrations_ >= policy_.max_migrations) {
    return Status::OK();
  }
  if (last_migration_tick_ != UINT64_MAX &&
      engine->current_tick() - last_migration_tick_ < policy_.cooldown_ticks) {
    return Status::OK();
  }

  const int hot = PickHotPartition(*engine);
  if (hot < 0) return Status::OK();
  const uint32_t p = static_cast<uint32_t>(hot);

  // Spawn a FRESH slot past every occupied one: the destination is always
  // empty, so the slot space (and with a mount root, the disk fan-out)
  // grows with each migration while the partition count stays fixed.
  uint32_t to_slot = 0;
  for (const uint32_t slot : engine->manifest().assignment) {
    to_slot = std::max(to_slot, slot + 1);
  }

  double total = 0.0;
  for (const double r : rate_) total += r;
  const double mean_others =
      (total - rate_[p]) / static_cast<double>(engine->num_shards() - 1);

  TP_ASSIGN_OR_RETURN(const uint64_t cut_tick,
                      engine->RequestConsistentCut());
  pending_partition_ = p;
  pending_to_slot_ = to_slot;
  pending_cut_tick_ = cut_tick;
  pending_decided_tick_ = engine->current_tick();
  pending_ratio_ = mean_others > 0.0 ? rate_[p] / mean_others : 0.0;
  phase_ = Phase::kCutRequested;
  return Status::OK();
}

}  // namespace tickpoint
