// Doublewrite region: the torn-write guard for in-place checkpoint image
// updates (the InnoDB pattern, via the holystardb exemplar).
//
// An in-place image update overwrites bytes a previous checkpoint already
// made durable; a crash mid-write would leave the page half-old half-new.
// The backup header-invalidate protocol already keeps such an image from
// being *recovered from*, but the doublewrite region goes further: every
// group buffer is first appended to `doublewrite.img` as a CRC'd chunk,
// the region is sealed (fsynced), and only then do the in-place writes
// start. On the next open, Replay() re-applies the sealed batch, so a torn
// in-place write is repaired rather than merely detected.
//
// Batch protocol (one batch per checkpoint):
//   BeginBatch          -> restart at offset 0 with the next batch_seq
//   StageChunk*         -> append header+payload chunks (via the IoBackend)
//   Seal                -> wait for the chunk writes, append a terminator,
//                          fsync: the batch now survives any crash
//   (caller performs the in-place writes, then its data fsync)
//
// Crash contract:
//   - crash before Seal's fsync: the batch may be torn in the region.
//     Replay applies only the longest intact prefix (magic + header CRC +
//     payload CRC, all carrying the FIRST chunk's batch_seq) -- chunks
//     from an older batch that happen to survive beyond the new batch's
//     tail carry a smaller batch_seq and are never adopted. Applying a
//     prefix is harmless: the in-place phase had not started, the target
//     header is still invalidated, and the previous batch's writes were
//     already durable in place.
//   - crash after Seal: Replay re-applies the full batch, completing the
//     interrupted in-place phase byte-for-byte.
//   - Replay is idempotent (a pure function of the region + images), so a
//     crash DURING replay just replays again on the next open.
// A new batch may only begin once the previous batch's in-place writes are
// durable (the engine's one-job-at-a-time writer guarantees this); Open
// truncates any replayed leftovers, so stale chunks never accumulate
// across incarnations.
#ifndef TICKPOINT_ENGINE_DOUBLEWRITE_H_
#define TICKPOINT_ENGINE_DOUBLEWRITE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "util/io_backend.h"
#include "util/status.h"

namespace tickpoint {

class DoublewriteRegion {
 public:
  /// One decoded chunk (Scan output; also the unit Replay applies).
  struct Chunk {
    uint64_t batch_seq = 0;
    uint32_t target_image = 0;
    uint64_t target_offset = 0;
    uint64_t length = 0;
    /// Payload bytes start here in the region file.
    uint64_t payload_file_offset = 0;
    /// Stored payload CRC matches the bytes on disk.
    bool payload_intact = false;
  };

  /// Opens (creating if needed) `dw_path` for staging. Assumes any batch
  /// left by a previous incarnation was already handled by Replay: the
  /// region is truncated to empty, so the first batch starts clean.
  static StatusOr<std::unique_ptr<DoublewriteRegion>> Open(
      const std::string& dw_path, bool fsync_enabled, IoBackend* backend);

  /// Read-only: decodes chunk headers from offset 0, stopping at the first
  /// torn/absent header (the terminator). Never applies or mutates
  /// anything -- safe for tickpoint_inspect on a live crash image.
  static StatusOr<std::vector<Chunk>> Scan(const std::string& dw_path);

  /// Applies the staged batch (the longest intact same-batch_seq prefix)
  /// into the image files (`image_paths[chunk.target_image]`), fsyncs the
  /// touched images (when `fsync_enabled`), then truncates the region.
  /// Returns the number of chunks applied (0 when the region is empty or
  /// its first chunk is torn). `apply_at_most` caps how many chunks land
  /// before returning early WITHOUT truncating -- a crash-injection hook
  /// for tests proving replay is idempotent when interrupted.
  static StatusOr<uint64_t> Replay(const std::string& dw_path,
                                   const std::string* image_paths,
                                   size_t num_images, bool fsync_enabled,
                                   uint64_t apply_at_most = UINT64_MAX);

  /// Starts the next batch at offset 0. The previous batch's in-place
  /// writes must already be durable (see the crash contract above).
  Status BeginBatch();

  /// Appends one chunk for `length` payload bytes targeting
  /// `image_paths[target_image]` at `target_offset`. Submitted through the
  /// IoBackend; `payload` must stay valid until Seal returns. Returns the
  /// payload write's ticket.
  IoTicket StageChunk(uint32_t target_image, uint64_t target_offset,
                      const void* payload, uint64_t length);

  /// Waits for every staged chunk, appends the terminator, and fsyncs the
  /// region: after Seal, the batch survives any crash.
  Status Seal();

  uint64_t current_batch_seq() const { return batch_seq_; }
  /// Bytes the current batch occupies in the region (diagnostics).
  uint64_t staged_bytes() const { return write_offset_; }

 private:
  DoublewriteRegion(bool fsync_enabled, IoBackend* backend)
      : fsync_enabled_(fsync_enabled), backend_(backend) {}

  const bool fsync_enabled_;
  IoBackend* backend_;
  IoFile file_;
  uint64_t next_batch_seq_ = 1;
  uint64_t batch_seq_ = 0;
  uint64_t write_offset_ = 0;
  bool batch_open_ = false;
  IoTicket last_ticket_ = 0;
  /// Headers (and the terminator) live here until Seal: the IoBackend
  /// writes them in place, so they need stable addresses.
  std::deque<std::vector<uint8_t>> pending_headers_;
};

}  // namespace tickpoint

#endif  // TICKPOINT_ENGINE_DOUBLEWRITE_H_
