// CheckpointWriteSession: the staging half of the checkpoint pipeline.
//
// The writer used to hand the stores one object at a time; a session
// instead gathers the dirty pass's objects into large 4096-aligned group
// buffers and emits them as contiguous runs, so the store layer sees a few
// big writes (one doublewrite chunk + one in-place write per run for
// BackupStore, one appended record run for LogStore) instead of thousands
// of small ones.
//
// Lifetime contract: emitted runs point INTO the session's buffers, and
// the stores may still have async writes in flight against them (the
// doublewrite stage, the in-place apply). The session therefore retains
// every buffer until it is destroyed, and its destructor drains the
// IoBackend -- so even an error/crash-injection path that abandons a
// checkpoint mid-flight cannot free memory under a pending write.
#ifndef TICKPOINT_ENGINE_CHECKPOINT_SESSION_H_
#define TICKPOINT_ENGINE_CHECKPOINT_SESSION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "model/layout.h"
#include "util/io_backend.h"
#include "util/status.h"

namespace tickpoint {

class CheckpointWriteSession {
 public:
  /// Receives one coalesced run: `count` objects starting at id `first`,
  /// packed contiguously at `data` (count * object_size bytes, stable
  /// until the session dies).
  using EmitRun = std::function<Status(ObjectId first, const uint8_t* data,
                                       uint64_t count)>;

  /// Group buffers default to 256 KiB -- large enough that a full image
  /// flush is a few hundred submissions, small enough that a fragmented
  /// dirty set wastes little slack.
  static constexpr uint64_t kDefaultGroupBufferBytes = 256 * 1024;

  /// `backend` may be null when the emit path does no async IO (LogStore
  /// appends); otherwise the destructor drains it.
  CheckpointWriteSession(uint64_t object_size, IoBackend* backend,
                         EmitRun emit,
                         uint64_t group_buffer_bytes = kDefaultGroupBufferBytes);
  ~CheckpointWriteSession();

  CheckpointWriteSession(const CheckpointWriteSession&) = delete;
  CheckpointWriteSession& operator=(const CheckpointWriteSession&) = delete;

  /// Snapshots one object into the current group buffer. Consecutive ids
  /// extend the open run; a gap (or a full buffer) flushes it. This is the
  /// copy-on-write point: after Add returns, the mutator may overwrite the
  /// source freely.
  Status Add(ObjectId object, const void* data);

  /// Flushes the open run. Emitted buffers stay valid until destruction.
  Status Finish();

  uint64_t runs_emitted() const { return runs_emitted_; }
  uint64_t objects_added() const { return objects_added_; }

 private:
  Status FlushRun();
  /// Points cursor_ at a buffer with room for at least one object.
  void EnsureBufferSpace();

  struct FreeDeleter {
    void operator()(uint8_t* p) const;
  };
  using AlignedBuffer = std::unique_ptr<uint8_t[], FreeDeleter>;

  const uint64_t object_size_;
  const uint64_t buffer_bytes_;
  IoBackend* backend_;
  EmitRun emit_;

  /// All buffers ever allocated, retained for the session lifetime.
  std::vector<AlignedBuffer> buffers_;
  uint8_t* cursor_ = nullptr;     // next free byte in the current buffer
  uint64_t cursor_left_ = 0;      // bytes left in the current buffer
  const uint8_t* run_data_ = nullptr;
  ObjectId run_first_ = 0;
  uint64_t run_count_ = 0;

  uint64_t runs_emitted_ = 0;
  uint64_t objects_added_ = 0;
};

}  // namespace tickpoint

#endif  // TICKPOINT_ENGINE_CHECKPOINT_SESSION_H_
