// Load-driven placement: moves a HOT partition to a fresh shard slot
// (optionally on a different disk) without operator intervention -- the
// hotspot-migration primitive of the MMOG scaling literature, layered on
// the machinery the repo already has. PR 5 built the mechanism
// (MigratePartition at a committed cut, epoch-bumped manifests); PR 2
// built the signals (per-shard write-time/tick-duration EWMAs in the
// stagger scheduler); this file connects them and adds a third signal,
// the per-partition dirty-mark rate surfaced from the engines' dirty
// maps, which ranks partitions by WRITE LOAD rather than by how long
// their current disk takes to flush.
//
// The policy is deliberately conservative -- it must never oscillate:
//   - a partition is "hot" only while its smoothed dirty-mark rate
//     exceeds `imbalance_ratio` times the mean rate of the OTHER
//     partitions, for `hysteresis_ticks` CONSECUTIVE tick boundaries;
//   - after any migration the policy stands down for `cooldown_ticks`;
//   - a partition is migrated at most once per Rebalancer lifetime (the
//     strongest possible anti-thrash guarantee: a zone never ping-pongs);
//   - an idle fleet never migrates (`min_marks_per_tick` floors the
//     signal), and the first `warmup_ticks` boundaries only observe.
//
// Crash safety comes for free: every action the rebalancer drives --
// RequestConsistentCut, CommitConsistentCut, MigratePartition with its
// v3 manifest commit -- is already atomic-per-step, so a crash at ANY
// boundary lands in a well-defined epoch (the rebalancer crash sweep in
// tests/rebalancer_test.cc walks every step). The rebalancer itself
// holds only volatile bookkeeping and simply re-learns after a restart.
#ifndef TICKPOINT_ENGINE_REBALANCER_H_
#define TICKPOINT_ENGINE_REBALANCER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace tickpoint {

class ShardedEngine;

/// Knobs of the hot-partition detector and the migration it triggers.
struct RebalancePolicy {
  /// A partition is hot while its smoothed dirty-mark rate exceeds this
  /// multiple of the mean rate of the other partitions.
  double imbalance_ratio = 2.0;
  /// Consecutive hot tick boundaries required before a migration is
  /// triggered (the oscillation guard).
  uint32_t hysteresis_ticks = 4;
  /// Tick boundaries to observe (and smooth) before the detector may
  /// trigger at all.
  uint64_t warmup_ticks = 4;
  /// Minimum fleet ticks between two migrations.
  uint64_t cooldown_ticks = 64;
  /// Floor on the hot partition's smoothed marks-per-tick: an idle fleet
  /// (everything near zero) never looks imbalanced.
  double min_marks_per_tick = 1.0;
  /// Upper bound on migrations this rebalancer may drive (0 = unlimited).
  uint32_t max_migrations = 1;
  /// EWMA smoothing factor for the per-partition mark rate.
  double ewma_alpha = 0.4;
  /// Mount-point root for spawned slots: non-empty lands every automated
  /// migration's destination directory under this path (a different
  /// disk), recorded durably in the v3 manifest.
  std::string spawn_mount_root;

  bool Valid() const {
    return imbalance_ratio > 1.0 && hysteresis_ticks > 0 &&
           min_marks_per_tick >= 0.0 && ewma_alpha > 0.0 && ewma_alpha <= 1.0;
  }
};

/// One committed automated migration (inspection/bench).
struct RebalanceEvent {
  uint32_t partition = 0;
  uint32_t to_slot = 0;
  /// Smoothed rate ratio (hot partition vs mean of others) at decision.
  double hot_ratio = 0.0;
  /// Tick boundary at which the detector fired (the cut request).
  uint64_t decided_tick = 0;
  /// The consistent-cut tick the migration ran at.
  uint64_t cut_tick = 0;
};

/// The auto-rebalance driver. Owned by Fleet (EnableAutoRebalance) and
/// evaluated once per fleet tick from Fleet::EndTick, on the facade
/// thread -- no threads or locks of its own. State machine per boundary:
///
///   kIdle          sample mark rates, update hot streaks; when a
///                  partition stays hot through the hysteresis window,
///                  RequestConsistentCut and go to kCutRequested.
///                  A boundary where NO partition shows any new marks is
///                  uninformative -- in threaded mode the facade can run
///                  boundaries faster than the runner threads apply
///                  batches, so an all-zero window means "no progress
///                  observed", not "the fleet went idle". Uninformative
///                  boundaries leave the rates, streaks, and warmup count
///                  untouched (they would otherwise decay a hot signal
///                  into oblivion while the runners catch up).
///   kCutRequested  keep ticking until the fleet tick passes the cut
///                  tick, then CommitConsistentCut + MigratePartition
///                  (to a freshly spawned slot, under the policy's mount
///                  root) and return to kIdle.
///
/// While a USER cut is in flight the detector stands down; conversely a
/// user RequestConsistentCut while the rebalancer's own cut is armed
/// fails with the coordinator's usual one-cut-in-flight error.
class Rebalancer {
 public:
  explicit Rebalancer(const RebalancePolicy& policy);

  /// Runs one evaluation step against the quiesced facade state; called
  /// by Fleet::EndTick after a successful engine tick. Errors from the
  /// cut/migration protocol propagate (they fail the fleet tick exactly
  /// like a shard error would).
  Status OnTickBoundary(ShardedEngine* engine);

  const RebalancePolicy& policy() const { return policy_; }
  /// Committed automated migrations so far.
  uint32_t migrations() const { return migrations_; }
  /// The last committed automated migration (meaningful once
  /// migrations() > 0).
  const RebalanceEvent& last_event() const { return last_event_; }
  /// True between the rebalancer's cut request and its commit+migrate.
  bool migration_pending() const { return phase_ == Phase::kCutRequested; }
  /// Partition `p`'s smoothed dirty-marks-per-tick (0 before warmup).
  double RatePerTick(uint32_t p) const;
  /// Current consecutive-hot-boundary count of partition `p`.
  uint32_t HotStreak(uint32_t p) const;

 private:
  enum class Phase { kIdle, kCutRequested };

  /// Samples every partition's cumulative mark counter and folds the
  /// per-boundary deltas into the smoothed rates. False when the boundary
  /// was uninformative (every delta zero): no state was touched.
  bool SampleRates(const ShardedEngine& engine);
  /// The hysteresis-qualified hot partition, or -1.
  int PickHotPartition(const ShardedEngine& engine);

  RebalancePolicy policy_;
  Phase phase_ = Phase::kIdle;
  /// Previous boundary's cumulative counter per partition.
  std::vector<uint64_t> prev_marks_;
  /// Smoothed marks-per-tick per partition.
  std::vector<double> rate_;
  /// Consecutive boundaries each partition has been hot.
  std::vector<uint32_t> hot_streak_;
  /// Partitions this rebalancer already moved (never re-migrated).
  std::vector<uint8_t> migrated_;
  uint64_t boundaries_seen_ = 0;
  /// Fleet tick of the last committed migration, or UINT64_MAX.
  uint64_t last_migration_tick_ = UINT64_MAX;
  // Pending decision (kCutRequested).
  uint32_t pending_partition_ = 0;
  uint32_t pending_to_slot_ = 0;
  uint64_t pending_cut_tick_ = 0;
  uint64_t pending_decided_tick_ = 0;
  double pending_ratio_ = 0.0;
  uint32_t migrations_ = 0;
  RebalanceEvent last_event_;
};

}  // namespace tickpoint

#endif  // TICKPOINT_ENGINE_REBALANCER_H_
