// Bounded history compaction: decides which retained generations and
// archived logical-log segments a RetentionPolicy lets a shard drop, and
// which straddling segments must be rewritten (truncated at the window
// base) so disk stays bounded while the advertised restorable window stays
// exactly intact.
//
// The split of responsibilities: this file owns the *policy* (a pure plan
// over the HistoryIndex, unit-testable without touching disk);
// ShardHistory::Compact owns the *mechanics* (executing a plan under the
// index-first crash-atomic protocol documented in history.h).
//
// Invariants every plan preserves:
//   - the newest generation always survives;
//   - the window base B is the oldest surviving generation's consistent
//     tick: segments wholly below B are dropped, segments straddling B are
//     rewritten keeping only records with tick >= B (under a NEW segment
//     id -- the old file stays valid until the index repoints);
//   - segments at or above B are never touched, so every tick in the
//     post-compaction window [B - 1, high] remains restorable.
#ifndef TICKPOINT_ENGINE_COMPACTOR_H_
#define TICKPOINT_ENGINE_COMPACTOR_H_

#include <cstdint>
#include <vector>

#include "engine/history.h"

namespace tickpoint {

/// Outcome of one compaction pass (bytes are index-referenced payload
/// bytes before/after -- the bounded-disk measurement the retention bench
/// and the nightly soak assert on).
struct CompactionStats {
  uint64_t generations_dropped = 0;
  uint64_t segments_dropped = 0;
  uint64_t segments_rewritten = 0;
  uint64_t bytes_before = 0;
  uint64_t bytes_after = 0;
};

/// What one compaction pass will do. Empty vectors = nothing to do.
struct CompactionPlan {
  /// Oldest surviving generation's consistent tick: the tick below which
  /// no logical record is needed anymore.
  uint64_t window_base = 0;
  std::vector<uint64_t> drop_generations;   // generation seqs to delete
  std::vector<uint64_t> drop_segments;      // segment ids to delete
  std::vector<uint64_t> rewrite_segments;   // ids straddling window_base

  bool NoOp() const {
    return drop_generations.empty() && drop_segments.empty() &&
           rewrite_segments.empty();
  }
};

/// Plans a compaction of `index` under `policy`: keeps the newest
/// `policy.max_generations` generations, additionally drops generations
/// whose consistent tick trails the newest by more than
/// `policy.max_retained_ticks` (when non-zero), and derives the segment
/// drops/rewrites from the surviving window base. Pure -- no I/O.
CompactionPlan PlanCompaction(const HistoryIndex& index,
                              const RetentionPolicy& policy);

}  // namespace tickpoint

#endif  // TICKPOINT_ENGINE_COMPACTOR_H_
