#include "engine/shard_runner.h"

namespace tickpoint {

ShardRunner::ShardRunner(uint32_t shard_id, std::unique_ptr<Engine> engine,
                         bool threaded, uint64_t max_queue_ticks,
                         CheckpointObserver observer)
    : shard_id_(shard_id),
      threaded_(threaded),
      max_queue_ticks_(max_queue_ticks),
      engine_(std::move(engine)),
      observer_(std::move(observer)) {
  TP_CHECK(engine_ != nullptr);
  TP_CHECK(max_queue_ticks_ > 0);
  if (threaded_) {
    thread_ = std::thread([this] { ThreadMain(); });
  }
}

ShardRunner::~ShardRunner() { Stop(); }

void ShardRunner::SubmitTick(ShardTickBatch batch) {
  if (!threaded_) {
    ProcessBatch(batch);
    ticks_completed_.fetch_add(1, std::memory_order_release);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    TP_CHECK(!stop_);
    // Backpressure: bound how far the fleet can run ahead of a slow shard.
    batch_done_cv_.wait(
        lock, [this] { return mailbox_.size() < max_queue_ticks_; });
    mailbox_.push_back(std::move(batch));
    ++ticks_submitted_;
  }
  batch_ready_cv_.notify_one();
}

Status ShardRunner::Drain() {
  if (threaded_) {
    std::unique_lock<std::mutex> lock(mu_);
    batch_done_cv_.wait(lock, [this] {
      return ticks_completed_.load(std::memory_order_acquire) ==
             ticks_submitted_;
    });
  }
  return status();
}

void ShardRunner::Stop() {
  if (!threaded_ || !thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  batch_ready_cv_.notify_one();
  thread_.join();
}

Status ShardRunner::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_error_;
}

void ShardRunner::ThreadMain() {
  for (;;) {
    ShardTickBatch batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      batch_ready_cv_.wait(lock,
                           [this] { return !mailbox_.empty() || stop_; });
      // Drain the mailbox before honoring stop: Stop() is a barrier, not
      // an abort (SimulateCrash relies on every shard reaching the fleet
      // tick before the crash lands).
      if (mailbox_.empty()) return;
      batch = std::move(mailbox_.front());
      mailbox_.pop_front();
    }
    ProcessBatch(batch);
    {
      // Publish completion under mu_: Drain/SubmitTick re-check their
      // predicates under the same lock, so the notify can never be lost
      // between a predicate check and the wait.
      std::lock_guard<std::mutex> lock(mu_);
      ticks_completed_.fetch_add(1, std::memory_order_release);
    }
    batch_done_cv_.notify_all();
  }
}

void ShardRunner::ProcessBatch(const ShardTickBatch& batch) {
  // After the sticky error the engine is frozen at its failure tick;
  // discard (but account for) later batches so Drain/Stop terminate.
  if (has_error_.load(std::memory_order_acquire)) return;
  engine_->BeginTick();
  for (const CellUpdate& update : batch.updates) {
    engine_->ApplyUpdate(update.cell, update.value);
  }
  if (batch.cut_checkpoint) {
    engine_->RequestCutCheckpoint();
  } else if (batch.start_checkpoint) {
    engine_->ScheduleCheckpoint();
  }
  const Status status = engine_->EndTick();
  if (!status.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (first_error_.ok()) first_error_ = status;
    }
    has_error_.store(true, std::memory_order_release);
    return;
  }
  if (!observer_) return;
  // EndTick finalizes drained checkpoints; report the new records (they
  // finished during this tick's end).
  const auto& records = engine_->metrics().checkpoints;
  while (checkpoints_reported_ < records.size()) {
    observer_(shard_id_, records[checkpoints_reported_], batch.tick);
    ++checkpoints_reported_;
  }
}

}  // namespace tickpoint
