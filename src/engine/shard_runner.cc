#include "engine/shard_runner.h"

#include <chrono>

#include "util/sched_fuzz.h"

namespace tickpoint {

namespace {

/// Wait-loop pacing: spin briefly (the other thread is usually mid-batch
/// and will free a slot or push within microseconds), then yield a few
/// times, then tell the caller to park on its futex word. Parking matters
/// beyond idle-CPU hygiene: on few cores a polling waiter steals the very
/// timeslices the thread it waits on needs.
class Backoff {
 public:
  /// One cheap wait step. Returns true while still in the spin/yield
  /// phase; false once the caller should block on std::atomic::wait.
  bool Spin() {
    TP_SCHED_FUZZ_POINT();
    if (rounds_ < kSpinRounds) {
      ++rounds_;
      return true;
    }
    if (rounds_ < kSpinRounds + kYieldRounds) {
      ++rounds_;
      std::this_thread::yield();
      return true;
    }
    return false;
  }

 private:
  /// Busy-spinning only helps when the peer can run on another core; on a
  /// single hardware thread it burns exactly the timeslice the peer needs,
  /// so go straight to yield there.
  static inline const int kSpinRounds =
      std::thread::hardware_concurrency() > 1 ? 32 : 0;
  static constexpr int kYieldRounds = 2;

  int rounds_ = 0;
};

}  // namespace

ShardRunner::ShardRunner(uint32_t shard_id, std::unique_ptr<Engine> engine,
                         bool threaded, uint64_t max_queue_ticks,
                         CheckpointObserver observer)
    : shard_id_(shard_id),
      threaded_(threaded),
      engine_(std::move(engine)),
      observer_(std::move(observer)),
      mailbox_(static_cast<size_t>(max_queue_ticks)) {
  TP_CHECK(engine_ != nullptr);
  TP_CHECK(max_queue_ticks > 0);
  if (threaded_) {
    thread_ = std::thread([this] { ThreadMain(); });
  }
}

ShardRunner::~ShardRunner() { Stop(); }

void ShardRunner::SubmitTick(ShardTickBatch batch) {
  if (!threaded_) {
    ++ticks_submitted_;
    ProcessBatch(batch);
    ticks_completed_.fetch_add(1, std::memory_order_release);
    return;
  }
  TP_CHECK(!stop_.load(std::memory_order_relaxed));
  // Backpressure: bound how far the fleet can run ahead of a slow shard.
  // TryPush fails only while the ring holds max_queue_ticks batches; the
  // wait parks on the completion count (every completion was preceded by
  // the pop that frees a slot), re-trying the push after reading it so a
  // pop in that window cannot be missed.
  Backoff backoff;
  while (!mailbox_.TryPush(std::move(batch))) {
    if (backoff.Spin()) continue;
    const uint32_t seen = slots_signal_.load(std::memory_order_acquire);
    if (mailbox_.TryPush(std::move(batch))) break;
    slots_signal_.wait(seen, std::memory_order_acquire);
  }
  ++ticks_submitted_;
  submit_signal_.fetch_add(1, std::memory_order_release);
  submit_signal_.notify_one();
}

Status ShardRunner::Drain() {
  if (threaded_) {
    // Announce the target, then wait on the drain generation: the
    // consumer notifies it exactly once, when the completion count
    // reaches the target, so the producer does not wake (and burn the
    // core) on every intermediate completion. The seq_cst store of the
    // target before the seq_cst completion re-check pairs with the
    // consumer's completion bump before its target read -- one side of
    // that Dekker handshake always observes the other.
    const uint64_t target = ticks_submitted_;
    drain_target_.store(target, std::memory_order_seq_cst);
    Backoff backoff;
    for (;;) {
      if (ticks_completed_.load(std::memory_order_seq_cst) >= target) break;
      if (backoff.Spin()) continue;
      const uint32_t seen = drain_gen_.load(std::memory_order_acquire);
      if (ticks_completed_.load(std::memory_order_seq_cst) >= target) break;
      drain_gen_.wait(seen, std::memory_order_acquire);
    }
    // Disarm so steady-state completions skip the target check's notify
    // (0 is never a live target: a zero-submission drain never waits).
    drain_target_.store(0, std::memory_order_relaxed);
  }
  return status();
}

void ShardRunner::Stop() {
  if (!threaded_ || !thread_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  // Wake a consumer parked on an empty mailbox so it can observe stop_.
  submit_signal_.fetch_add(1, std::memory_order_release);
  submit_signal_.notify_one();
  thread_.join();
}

Status ShardRunner::status() const {
  if (!has_error_.load(std::memory_order_acquire)) return Status::OK();
  return first_error_;
}

void ShardRunner::ThreadMain() {
  Backoff backoff;
  for (;;) {
    ShardTickBatch batch;
    while (!mailbox_.TryPop(&batch)) {
      // Drain the mailbox before honoring stop: Stop() is a barrier, not
      // an abort (SimulateCrash relies on every shard reaching the fleet
      // tick before the crash lands). The producer sets stop_ only after
      // its last push, so one more pop attempt after seeing stop_ decides
      // emptiness exactly.
      if (stop_.load(std::memory_order_acquire)) {
        if (!mailbox_.TryPop(&batch)) return;
        break;
      }
      if (backoff.Spin()) continue;
      // Park until the producer pushes or stops: the mailbox is re-tried
      // after reading the signal, so a push (which bumps the signal
      // afterwards) in that window either satisfies the retry or makes
      // the wait return immediately.
      const uint32_t seen = submit_signal_.load(std::memory_order_acquire);
      if (mailbox_.TryPop(&batch)) break;
      if (stop_.load(std::memory_order_acquire)) continue;
      submit_signal_.wait(seen, std::memory_order_acquire);
    }
    backoff = Backoff();
    // The pop above freed a ring slot; wake a full-mailbox SubmitTick now
    // rather than a whole batch-processing later. notify_one: the facade
    // thread is the only producer, so at most one waiter exists.
    slots_signal_.fetch_add(1, std::memory_order_release);
    slots_signal_.notify_one();
    ProcessBatch(batch);
    const uint64_t completed =
        ticks_completed_.fetch_add(1, std::memory_order_seq_cst) + 1;
    // Dekker partner of Drain: the completion bump (seq_cst RMW) precedes
    // the target read, so a drain that armed its target before our bump
    // is seen here, and one that armed it after re-reads our completion.
    const uint64_t target = drain_target_.load(std::memory_order_seq_cst);
    if (target != 0 && completed >= target) {
      drain_gen_.fetch_add(1, std::memory_order_release);
      drain_gen_.notify_one();
    }
  }
}

void ShardRunner::ProcessBatch(const ShardTickBatch& batch) {
  // After the sticky error the engine is frozen at its failure tick;
  // discard (but account for) later batches so Drain/Stop terminate.
  if (has_error_.load(std::memory_order_acquire)) return;
  // Replica hosting first: trim at the committed cut (strictly older than
  // this tick), then append the peers' deltas for this tick. Runs before
  // the shard's own tick so a crash barrier that stops after batch N
  // leaves every hosted replica consistent through N as well.
  if (batch.trim_replicas_through != ShardTickBatch::kNoReplicaTrim) {
    for (auto& buffer : replicas_) {
      buffer->TrimThrough(batch.trim_replicas_through);
    }
  }
  for (const ShardTickBatch::ReplicaDelta& delta : batch.replica_updates) {
    ReplicaBuffer* buffer = replica(delta.partition);
    TP_DCHECK(buffer != nullptr);
    if (buffer != nullptr) buffer->Append(batch.tick, delta.updates);
  }
  engine_->BeginTick();
  for (const CellUpdate& update : batch.updates) {
    engine_->ApplyUpdate(update.cell, update.value);
  }
  if (batch.cut_checkpoint) {
    engine_->RequestCutCheckpoint();
    pending_cut_tick_ = batch.tick;
  } else if (batch.start_checkpoint) {
    engine_->ScheduleCheckpoint();
  }
  const Status status = engine_->EndTick();
  if (!status.ok()) {
    // Write the payload, then release the flag: status() readers acquire
    // the flag before touching first_error_.
    first_error_ = status;
    has_error_.store(true, std::memory_order_release);
    return;
  }
  const auto& records = engine_->metrics().checkpoints;
  if (pending_cut_tick_ != ShardRunner::kNoCutTick) {
    // Under the sync IO backend the cut record lands inside the cut
    // tick's own EndTick; under the async backend the write completes on
    // the engine's writer thread and the record is only reaped at a LATER
    // tick's EndTick -- so keep scanning after every successful tick until
    // it shows up. Publish the ack slot (payload first, then the release
    // flag) only while the coordinator's armed tick still matches this
    // pending cut: a cut the coordinator force-reaped itself (it
    // completed the checkpoint while this runner sat idle) is dropped
    // silently, so its record can never be re-published into a later
    // cut's slot.
    for (size_t i = records.size(); i-- > 0;) {
      if (records[i].cut && records[i].start_tick == pending_cut_tick_) {
        if (armed_cut_tick_.load(std::memory_order_acquire) ==
            pending_cut_tick_) {
          cut_ack_.checkpoint_seq = records[i].seq;
          cut_ack_.consistent_ticks = records[i].consistent_ticks;
          cut_ack_.stall_seconds = records[i].cut_stall_seconds;
          TP_SCHED_FUZZ_POINT();
          cut_acked_.store(true, std::memory_order_release);
        }
        pending_cut_tick_ = ShardRunner::kNoCutTick;
        break;
      }
    }
  }
  if (!observer_) return;
  // EndTick finalizes drained checkpoints; report the new records (they
  // finished during this tick's end).
  while (checkpoints_reported_ < records.size()) {
    observer_(shard_id_, records[checkpoints_reported_], batch.tick);
    ++checkpoints_reported_;
  }
}

}  // namespace tickpoint
