// Crash recovery (paper Sections 3.1 and 4.2): restore the newest complete
// checkpoint, then replay the logical log to the crash tick.
//
// Fleet-level recovery is manifest-driven: RecoverFleet/RecoverFleetToCut
// read the durable fleet manifest and need only the fleet ROOT --
// topology, layout, algorithm, and every knob come from disk (the Fleet
// API builds on these). The config-supplying fleet shims of earlier
// generations are gone; the only config-taking entry point left is the
// single-Engine Recover/RecoverToTick pair.
#ifndef TICKPOINT_ENGINE_RECOVERY_H_
#define TICKPOINT_ENGINE_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/fleet_manifest.h"
#include "engine/sharded_engine.h"
#include "engine/state_table.h"

namespace tickpoint {

/// Outcome of a recovery run.
struct RecoveryResult {
  /// Sequence number of the checkpoint image restored (meaningful only when
  /// restored_from_checkpoint).
  uint64_t image_seq = 0;
  /// Ticks whose effects the restored image contained.
  uint64_t image_consistent_ticks = 0;
  /// false: no complete image existed (early crash); recovery replayed the
  /// whole logical log onto the initial (zeroed) state.
  bool restored_from_checkpoint = false;
  /// Ticks re-applied from the logical log.
  uint64_t ticks_replayed = 0;
  /// One past the last tick whose effects are recovered.
  uint64_t recovered_ticks = 0;
  /// Measured wall time of the two recovery phases.
  double restore_seconds = 0.0;
  double replay_seconds = 0.0;

  double total_seconds() const { return restore_seconds + replay_seconds; }
};

/// Rebuilds the state of an engine previously run with `config` into `out`
/// (overwritten). Reads the checkpoint store and logical log under
/// config.dir. `out` must use config.layout.
StatusOr<RecoveryResult> Recover(const EngineConfig& config, StateTable* out);

/// Outcome of a whole-fleet recovery.
struct ShardedRecoveryResult {
  /// Per-shard outcomes, indexed by shard id. With staggered scheduling the
  /// shards are typically at different checkpoint generations, so
  /// image_seq/image_consistent_ticks differ per shard while every shard
  /// still replays its own logical log to the common crash tick.
  std::vector<RecoveryResult> shards;
  /// Sums of the per-shard phase times (shards recover sequentially: one
  /// disk serves the restore reads).
  double restore_seconds = 0.0;
  double replay_seconds = 0.0;
  /// min/max over shards of RecoveryResult::recovered_ticks. Equal unless a
  /// crash landed between shard group commits.
  uint64_t min_recovered_ticks = 0;
  uint64_t max_recovered_ticks = 0;

  double total_seconds() const { return restore_seconds + replay_seconds; }
};

/// Rebuilds one shard's state at EXACTLY the end of `cut_tick`, even when
/// newer checkpoints exist: restores the newest image consistent no later
/// than cut_tick + 1 (or starts from zeroed state when the logical log
/// reaches back to tick 0) and replays the logical log only through
/// cut_tick. Corruption if the durable sources cannot reproduce the cut
/// exactly (a gap before the restored image, or a log ending short of the
/// cut).
StatusOr<RecoveryResult> RecoverToTick(const EngineConfig& config,
                                       uint64_t cut_tick, StateTable* out);

/// Outcome of a whole-fleet recovery to a consistent cut.
struct ShardedCutRecoveryResult {
  /// True: a committed cut manifest was found and every shard below is at
  /// exactly `cut_tick`. False: no usable cut -- no committed manifest
  /// (never cut, crash before the commit, a torn manifest file), or the
  /// manifest's cut is no longer reproducible from some shard's durable
  /// sources (a death mid-fleet-resume can truncate a log an older cut
  /// depended on) -- and `fleet` holds the per-shard exact
  /// fallback, each shard at its own crash tick.
  bool used_manifest = false;
  uint64_t cut_tick = 0;
  ShardedRecoveryResult fleet;
};

/// Outcome of a manifest-driven fleet recovery: what the disk said the
/// fleet IS, plus the per-partition recovery results.
struct FleetRecoveryOutcome {
  /// The newest intact fleet manifest (epoch, assignment, every knob).
  FleetManifest manifest;
  /// Plain recovery: used_manifest is false and `fleet` holds each
  /// partition at its own crash tick. Cut recovery: as documented on
  /// ShardedCutRecoveryResult.
  ShardedCutRecoveryResult result;
};

/// Manifest-driven whole-fleet recovery to the newest recoverable state:
/// reads the fleet manifest under `root` (no config argument -- the disk
/// tells you), verifies every assigned shard directory exists, and
/// recovers each partition from the shard slot the manifest assigns it.
/// NotFound when `root` holds no manifest; Corruption when the manifest is
/// unreadable or disagrees with the directory layout; FailedPrecondition
/// for a future-version manifest.
StatusOr<FleetRecoveryOutcome> RecoverFleet(const std::string& root,
                                            std::vector<StateTable>* out);

/// Like RecoverFleet, but lands the fleet on the committed consistent cut
/// when one is reproducible (per-shard exact fallback otherwise), with the
/// partition assignment read from the fleet manifest.
StatusOr<FleetRecoveryOutcome> RecoverFleetToCut(const std::string& root,
                                                 std::vector<StateTable>* out);

/// Rebuilds one shard's state at EXACTLY the end of `tick`, reaching back
/// through the shard's retained history (engine/history.h) when the live
/// stores alone cannot reproduce it: tries RecoverToTick first, and on its
/// Corruption loads the newest retained generation consistent no later
/// than tick + 1 and replays the archived segments plus the live logical
/// log through `tick`. Corruption when neither source reproduces the tick
/// exactly (outside the retained window, or a torn history).
StatusOr<RecoveryResult> RecoverToHistoricTick(const EngineConfig& config,
                                               uint64_t tick,
                                               StateTable* out);

/// Manifest-driven whole-fleet point-in-time recovery: lands every
/// partition at exactly the end of `tick` via RecoverToHistoricTick. On
/// success result.used_manifest is true and result.cut_tick == tick. When
/// some shard cannot reproduce the tick (Corruption -- outside its
/// retained window, or torn history), falls back to per-shard latest
/// recovery: used_manifest false, each shard at its own crash tick --
/// never a half-restored fleet. Other errors propagate.
StatusOr<FleetRecoveryOutcome> RecoverFleetToTick(const std::string& root,
                                                  uint64_t tick,
                                                  std::vector<StateTable>* out);

/// The fleet's restorable tick window: the intersection over all
/// partitions of each shard's history window (ShardHistory::ComputeWindow).
/// Every tick T in [low_tick, high_tick] satisfies RecoverFleetToTick with
/// used_manifest true. `any` is false when some shard retains no usable
/// history (retention off included).
StatusOr<HistoryWindow> RestorableFleetWindow(const std::string& root);

}  // namespace tickpoint

#endif  // TICKPOINT_ENGINE_RECOVERY_H_
