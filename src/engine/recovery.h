// Crash recovery (paper Sections 3.1 and 4.2): restore the newest complete
// checkpoint, then replay the logical log to the crash tick.
#ifndef TICKPOINT_ENGINE_RECOVERY_H_
#define TICKPOINT_ENGINE_RECOVERY_H_

#include <cstdint>

#include "engine/engine.h"
#include "engine/state_table.h"

namespace tickpoint {

/// Outcome of a recovery run.
struct RecoveryResult {
  /// Sequence number of the checkpoint image restored (meaningful only when
  /// restored_from_checkpoint).
  uint64_t image_seq = 0;
  /// Ticks whose effects the restored image contained.
  uint64_t image_consistent_ticks = 0;
  /// false: no complete image existed (early crash); recovery replayed the
  /// whole logical log onto the initial (zeroed) state.
  bool restored_from_checkpoint = false;
  /// Ticks re-applied from the logical log.
  uint64_t ticks_replayed = 0;
  /// One past the last tick whose effects are recovered.
  uint64_t recovered_ticks = 0;
  /// Measured wall time of the two recovery phases.
  double restore_seconds = 0.0;
  double replay_seconds = 0.0;

  double total_seconds() const { return restore_seconds + replay_seconds; }
};

/// Rebuilds the state of an engine previously run with `config` into `out`
/// (overwritten). Reads the checkpoint store and logical log under
/// config.dir. `out` must use config.layout.
StatusOr<RecoveryResult> Recover(const EngineConfig& config, StateTable* out);

}  // namespace tickpoint

#endif  // TICKPOINT_ENGINE_RECOVERY_H_
